//! Determinism contract of the simulator and the sweep engine.
//!
//! Two guarantees are pinned here:
//!
//! 1. **Golden windows** — the exact [`WindowMeasurement`] sequence of the
//!    4×4 baseline scenario `(config, uniform traffic, seed 2015)` is checked
//!    in. Any hot-path change that alters simulated behaviour (rather than
//!    just making it faster) trips this test; an intentional behaviour change
//!    must update the constants below *deliberately*.
//! 2. **Serial / parallel parity** — a multi-policy load sweep produces
//!    bit-identical [`OperatingPointResult`]s whether the `(policy × load)`
//!    grid runs on one thread or across all cores, because every operating
//!    point is an independent simulation with an explicit seed.

use noc_dvfs::experiments::{compare_policies_synthetic, ExperimentQuality};
use noc_dvfs::scenario::{scenario_grid, sweep_scenario, sweep_scenario_serial};
use noc_dvfs::sweep::{sweep_policies, sweep_policies_serial};
use noc_dvfs::{ClosedLoopConfig, PolicyKind, RmsdConfig};
use noc_sim::{
    BurstyTraffic, NetworkConfig, NocSimulation, SyntheticTraffic, TrafficPattern, TrafficSpec,
};

/// One expected measurement window (mirrors `WindowMeasurement`, minus the
/// fields that are trivially zero in this scenario).
struct GoldenWindow {
    noc_cycles: u64,
    node_cycles: u64,
    wall_time_ps: f64,
    flits_generated: u64,
    flits_injected: u64,
    packets_ejected: u64,
    flits_ejected: u64,
    latency_cycles_sum: u64,
    delay_ps_sum: f64,
}

/// The 4×4 paper-style baseline used throughout the unit tests.
fn baseline_4x4() -> NetworkConfig {
    NetworkConfig::builder()
        .mesh(4, 4)
        .virtual_channels(2)
        .buffer_depth(4)
        .packet_length(5)
        .build()
        .unwrap()
}

/// Golden `WindowMeasurement` sequence for
/// `(baseline_4x4, uniform @ 0.10 flits/cycle/node, seed 2015)`,
/// six windows of 500 NoC cycles at the default 1 GHz clock.
const GOLDEN_WINDOWS: [GoldenWindow; 6] = [
    GoldenWindow {
        noc_cycles: 500,
        node_cycles: 500,
        wall_time_ps: 500000.0,
        flits_generated: 875,
        flits_injected: 867,
        packets_ejected: 170,
        flits_ejected: 852,
        latency_cycles_sum: 3249,
        delay_ps_sum: 3249000.0,
    },
    GoldenWindow {
        noc_cycles: 500,
        node_cycles: 500,
        wall_time_ps: 500000.0,
        flits_generated: 770,
        flits_injected: 776,
        packets_ejected: 154,
        flits_ejected: 768,
        latency_cycles_sum: 2992,
        delay_ps_sum: 2992000.0,
    },
    GoldenWindow {
        noc_cycles: 500,
        node_cycles: 500,
        wall_time_ps: 500000.0,
        flits_generated: 865,
        flits_injected: 867,
        packets_ejected: 172,
        flits_ejected: 866,
        latency_cycles_sum: 3405,
        delay_ps_sum: 3405000.0,
    },
    GoldenWindow {
        noc_cycles: 500,
        node_cycles: 500,
        wall_time_ps: 500000.0,
        flits_generated: 810,
        flits_injected: 810,
        packets_ejected: 160,
        flits_ejected: 803,
        latency_cycles_sum: 3190,
        delay_ps_sum: 3190000.0,
    },
    GoldenWindow {
        noc_cycles: 500,
        node_cycles: 500,
        wall_time_ps: 500000.0,
        flits_generated: 815,
        flits_injected: 811,
        packets_ejected: 166,
        flits_ejected: 821,
        latency_cycles_sum: 3214,
        delay_ps_sum: 3214000.0,
    },
    GoldenWindow {
        noc_cycles: 500,
        node_cycles: 500,
        wall_time_ps: 500000.0,
        flits_generated: 905,
        flits_injected: 905,
        packets_ejected: 180,
        flits_ejected: 900,
        latency_cycles_sum: 3525,
        delay_ps_sum: 3525000.0,
    },
];

/// The 4×4 torus used by the scenario-engine goldens: the baseline
/// micro-architecture on wrap-around links.
fn torus_4x4() -> NetworkConfig {
    NetworkConfig::builder()
        .torus(4, 4)
        .virtual_channels(2)
        .buffer_depth(4)
        .packet_length(5)
        .build()
        .unwrap()
}

/// Golden `WindowMeasurement` sequence for
/// `(torus_4x4, bursty hotspot @ 0.10 flits/cycle/node, seed 2015)` —
/// bursty parameters: 200-cycle bursts at 4× the average rate. Six windows
/// of 500 NoC cycles at the default 1 GHz clock. Pins the whole new scenario
/// stack at once: torus wrap links, dateline VC classes, hotspot
/// destinations and the MMP injection process (note the ~3× swing in
/// `flits_generated` across windows — that *is* the burstiness).
const GOLDEN_TORUS_WINDOWS: [GoldenWindow; 6] = [
    GoldenWindow {
        noc_cycles: 500,
        node_cycles: 500,
        wall_time_ps: 500000.0,
        flits_generated: 880,
        flits_injected: 862,
        packets_ejected: 167,
        flits_ejected: 841,
        latency_cycles_sum: 3647,
        delay_ps_sum: 3647000.0,
    },
    GoldenWindow {
        noc_cycles: 500,
        node_cycles: 500,
        wall_time_ps: 500000.0,
        flits_generated: 1500,
        flits_injected: 1237,
        packets_ejected: 237,
        flits_ejected: 1191,
        latency_cycles_sum: 7871,
        delay_ps_sum: 7871000.0,
    },
    GoldenWindow {
        noc_cycles: 500,
        node_cycles: 500,
        wall_time_ps: 500000.0,
        flits_generated: 1050,
        flits_injected: 1234,
        packets_ejected: 254,
        flits_ejected: 1260,
        latency_cycles_sum: 28623,
        delay_ps_sum: 28623000.0,
    },
    GoldenWindow {
        noc_cycles: 500,
        node_cycles: 500,
        wall_time_ps: 500000.0,
        flits_generated: 830,
        flits_injected: 907,
        packets_ejected: 179,
        flits_ejected: 898,
        latency_cycles_sum: 6970,
        delay_ps_sum: 6970000.0,
    },
    GoldenWindow {
        noc_cycles: 500,
        node_cycles: 500,
        wall_time_ps: 500000.0,
        flits_generated: 825,
        flits_injected: 830,
        packets_ejected: 169,
        flits_ejected: 846,
        latency_cycles_sum: 3749,
        delay_ps_sum: 3749000.0,
    },
    GoldenWindow {
        noc_cycles: 500,
        node_cycles: 500,
        wall_time_ps: 500000.0,
        flits_generated: 460,
        flits_injected: 472,
        packets_ejected: 95,
        flits_ejected: 472,
        latency_cycles_sum: 2028,
        delay_ps_sum: 2028000.0,
    },
];

fn assert_windows_match(sim: &mut NocSimulation, expected: &[GoldenWindow]) {
    for (i, e) in expected.iter().enumerate() {
        sim.run_cycles(500);
        let w = sim.take_window();
        assert_eq!(w.noc_cycles, e.noc_cycles, "window {i}: noc_cycles");
        assert_eq!(w.node_cycles, e.node_cycles, "window {i}: node_cycles");
        assert_eq!(w.wall_time_ps, e.wall_time_ps, "window {i}: wall_time_ps");
        assert_eq!(w.flits_generated, e.flits_generated, "window {i}: flits_generated");
        assert_eq!(w.flits_injected, e.flits_injected, "window {i}: flits_injected");
        assert_eq!(w.packets_ejected, e.packets_ejected, "window {i}: packets_ejected");
        assert_eq!(w.flits_ejected, e.flits_ejected, "window {i}: flits_ejected");
        assert_eq!(w.latency_cycles_sum, e.latency_cycles_sum, "window {i}: latency_cycles_sum");
        assert_eq!(w.delay_ps_sum, e.delay_ps_sum, "window {i}: delay_ps_sum");
    }
}

#[test]
fn golden_torus_hotspot_bursty_sequence_is_stable() {
    let cfg = torus_4x4();
    let traffic =
        BurstyTraffic::new(TrafficPattern::Hotspot, 0.10, cfg.packet_length(), 200.0, 4.0);
    let mut sim = NocSimulation::new(cfg, Box::new(traffic), 2015);
    assert_windows_match(&mut sim, &GOLDEN_TORUS_WINDOWS);
}

#[test]
fn scenario_grid_sweeps_have_serial_parallel_parity() {
    // The widened (topology × pattern × injection) grid: every scenario the
    // 4×4 base admits, swept once serially and once across all cores; the
    // operating points must be bit-identical. One cheap load point and a
    // single policy per scenario keep the full-grid check affordable.
    let base = baseline_4x4();
    let loads = [0.08];
    let policies = [PolicyKind::NoDvfs];
    let loop_cfg = ClosedLoopConfig::quick();
    let grid = scenario_grid(&base, true);
    assert_eq!(grid.len(), 32, "4x4 admits the full 2 topo x 8 pattern x 2 process grid");
    for scenario in grid {
        let net = scenario.network(&base).expect("grid scenarios are valid");
        let parallel = sweep_scenario(&net, scenario, &loads, &policies, &loop_cfg, 2015);
        let serial = sweep_scenario_serial(&net, scenario, &loads, &policies, &loop_cfg, 2015);
        assert_eq!(parallel, serial, "parity broke for {}", scenario.label());
    }
}

#[test]
fn golden_window_sequence_is_stable() {
    let cfg = baseline_4x4();
    let traffic = SyntheticTraffic::new(TrafficPattern::Uniform, 0.10, cfg.packet_length());
    let mut sim = NocSimulation::new(cfg, Box::new(traffic), 2015);
    for (i, expected) in GOLDEN_WINDOWS.iter().enumerate() {
        sim.run_cycles(500);
        let w = sim.take_window();
        assert_eq!(w.noc_cycles, expected.noc_cycles, "window {i}: noc_cycles");
        assert_eq!(w.node_cycles, expected.node_cycles, "window {i}: node_cycles");
        assert_eq!(w.wall_time_ps, expected.wall_time_ps, "window {i}: wall_time_ps");
        assert_eq!(w.flits_generated, expected.flits_generated, "window {i}: flits_generated");
        assert_eq!(w.flits_injected, expected.flits_injected, "window {i}: flits_injected");
        assert_eq!(w.packets_ejected, expected.packets_ejected, "window {i}: packets_ejected");
        assert_eq!(w.flits_ejected, expected.flits_ejected, "window {i}: flits_ejected");
        assert_eq!(
            w.latency_cycles_sum, expected.latency_cycles_sum,
            "window {i}: latency_cycles_sum"
        );
        assert_eq!(w.delay_ps_sum, expected.delay_ps_sum, "window {i}: delay_ps_sum");
    }
}

#[test]
fn identical_runs_produce_identical_window_sequences() {
    let cfg = baseline_4x4();
    let mk = |seed: u64| {
        let traffic = SyntheticTraffic::new(TrafficPattern::Uniform, 0.18, 5);
        NocSimulation::new(cfg.clone(), Box::new(traffic), seed)
    };
    let mut a = mk(7);
    let mut b = mk(7);
    for _ in 0..10 {
        a.run_cycles(300);
        b.run_cycles(300);
        assert_eq!(a.take_window(), b.take_window());
    }
    assert_eq!(a.stats(), b.stats());
}

#[test]
fn parallel_sweep_is_bit_identical_to_serial() {
    let net = baseline_4x4();
    let loads = [0.05, 0.10, 0.16];
    let make: &(dyn Fn(f64) -> Box<dyn TrafficSpec> + Sync) =
        &|load| Box::new(SyntheticTraffic::new(TrafficPattern::Uniform, load, 5));
    let policies =
        [PolicyKind::NoDvfs, PolicyKind::Rmsd(RmsdConfig::with_lambda_max(0.3))];
    let loop_cfg = ClosedLoopConfig::quick();
    let serial = sweep_policies_serial(&net, &loads, make, &policies, &loop_cfg, 2015);
    let parallel = sweep_policies(&net, &loads, make, &policies, &loop_cfg, 2015);
    assert_eq!(serial, parallel, "parallel sweep must be bit-identical to serial");
}

#[test]
fn figure_driver_is_deterministic_across_invocations() {
    // A Fig. 2-style comparison (smallest budget) run twice end to end —
    // covers the saturation search + parallel sweep pipeline.
    let quality = ExperimentQuality {
        loop_cfg: ClosedLoopConfig {
            control_period_cycles: 600,
            warmup_intervals: 2,
            measure_intervals: 3,
            max_settle_intervals: 12,
            settle_tolerance: 0.02,
        },
        load_points: 2,
        saturation_probe_cycles: 3_000,
        seed: 2015,
    };
    let net = baseline_4x4();
    let a = compare_policies_synthetic("parity", &net, TrafficPattern::Uniform, &quality, None);
    let b = compare_policies_synthetic("parity", &net, TrafficPattern::Uniform, &quality, None);
    assert_eq!(a, b);
}
