//! Fig. 8 bench: the cost of one closed-loop point under each
//! micro-architectural variation axis (virtual channels, buffer depth, packet
//! size, mesh size).

use criterion::{criterion_group, criterion_main, Criterion};
use noc_dvfs::experiments::SensitivityAxis;
use noc_dvfs::{run_operating_point, ClosedLoopConfig, PolicyKind, RmsdConfig};
use noc_sim::{SyntheticTraffic, TrafficPattern, TrafficSpec};
use std::time::Duration;

fn short_loop() -> ClosedLoopConfig {
    ClosedLoopConfig {
        control_period_cycles: 600,
        warmup_intervals: 2,
        measure_intervals: 3,
        max_settle_intervals: 10,
        settle_tolerance: 0.01,
    }
}

fn bench_fig8(c: &mut Criterion) {
    let loop_cfg = short_loop();
    let mut group = c.benchmark_group("fig8_sensitivity");
    group.sample_size(10).measurement_time(Duration::from_secs(4)).warm_up_time(Duration::from_secs(1));
    // One representative (cheap) value per axis; the 8x8 mesh and 16-deep
    // buffers are exercised by the figures binary rather than timed here.
    let cases = [
        (SensitivityAxis::VirtualChannels, 2usize),
        (SensitivityAxis::BufferDepth, 8),
        (SensitivityAxis::PacketSize, 10),
        (SensitivityAxis::MeshSize, 4),
    ];
    for (axis, value) in cases {
        let net = axis.config(value);
        let label = axis.label(value);
        group.bench_function(format!("rmsd_point_{label}"), |b| {
            b.iter(|| {
                let traffic: Box<dyn TrafficSpec> = Box::new(SyntheticTraffic::new(
                    TrafficPattern::Uniform,
                    0.1,
                    net.packet_length(),
                ));
                run_operating_point(
                    &net,
                    traffic,
                    PolicyKind::Rmsd(RmsdConfig::with_lambda_max(0.3)),
                    &loop_cfg,
                    4,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig8);
criterion_main!(benches);
