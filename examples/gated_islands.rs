//! Power gating end to end: a quadrant-partitioned mesh under bursty hotspot
//! traffic with combined per-island DVFS + break-even-aware gating.
//!
//! ```text
//! cargo run --release --example gated_islands [--compare]
//! ```
//!
//! The default run builds a 4×4 mesh split into **four voltage-frequency
//! islands** (quadrants), drives it with **bursty hotspot** traffic at a
//! light average load — the hotspot sits in one quadrant, so the other
//! islands are idle most of the time — and runs **RMSD DVFS together with
//! BreakEvenAware power gating** per island. It prints the aggregate
//! operating point and, per island, the gating residency: how long the
//! island's routers actually slept, how often they transitioned, and
//! whether the sleep/wake energy investment paid off against break-even.
//!
//! With `--compare` it additionally runs the ungated per-island baseline
//! and the thrash-prone ImmediateSleep policy, showing the break-even
//! policy's advantage on both axes: real energy savings without the
//! wakeup-stall delay blow-up.

use noc_dvfs_repro::dvfs::{
    run_operating_point_gated, run_operating_point_islands, BreakEvenConfig, ClosedLoopConfig,
    GatedOperatingPointResult, GatingPolicyKind, PolicyKind, RmsdConfig,
};
use noc_dvfs_repro::sim::{NetworkConfig, RegionLayout, TopologyKind, TrafficPattern};
use noc_dvfs_repro::dvfs::Scenario;

fn base_net() -> NetworkConfig {
    NetworkConfig::builder()
        .mesh(4, 4)
        .virtual_channels(2)
        .buffer_depth(4)
        .packet_length(5)
        .regions(RegionLayout::Quadrants)
        .build()
        .expect("base configuration is valid")
}

fn policy() -> PolicyKind {
    PolicyKind::Rmsd(RmsdConfig::with_lambda_max(0.35))
}

fn print_gated(label: &str, point: &GatedOperatingPointResult) {
    let agg = &point.aggregate;
    println!("\n=== {label} ===");
    println!(
        "aggregate: {:.1} mW ({:.1} dyn + {:.1} stat), delay {:.1} ns, gated {:.1}% of \
         router-cycles, {} packets",
        agg.power_mw,
        agg.dynamic_power_mw,
        agg.static_power_mw,
        agg.avg_delay_ns,
        100.0 * point.gated_fraction(),
        agg.packets_delivered,
    );
    println!(
        "{:>7} {:>6} {:>9} {:>8} {:>8} {:>12} {:>12} {:>12}",
        "island", "nodes", "gated %", "sleeps", "wakes", "saved (pJ)", "trans (pJ)", "net (pJ)"
    );
    for s in point.gating.islands() {
        println!(
            "{:>7} {:>6} {:>9.1} {:>8} {:>8} {:>12.0} {:>12.0} {:>12.0}",
            s.island,
            s.nodes,
            100.0 * s.totals.gated_fraction(),
            s.totals.sleep_events,
            s.totals.wake_events,
            s.totals.saved_pj,
            s.totals.transition_pj,
            s.totals.net_saving_pj(),
        );
    }
}

fn main() {
    let compare = std::env::args().any(|a| a == "--compare");
    let net = base_net();
    // Bursty hotspot at a light average load: long idle gaps in the cold
    // quadrants, concentrated bursts in the hot one.
    let scenario =
        Scenario::new(TopologyKind::Mesh, TrafficPattern::Hotspot).bursty();
    let loop_cfg = ClosedLoopConfig::quick();
    let load = 0.015;

    let gated = run_operating_point_gated(
        &net,
        scenario.traffic(&net, load),
        policy(),
        GatingPolicyKind::BreakEvenAware(BreakEvenConfig::new()),
        &loop_cfg,
        2015,
    );
    print_gated("RMSD + BreakEvenAware gating (quadrants)", &gated);

    if compare {
        let ungated = run_operating_point_islands(
            &net,
            scenario.traffic(&net, load),
            policy(),
            &loop_cfg,
            2015,
        );
        println!("\n=== RMSD, ungated baseline ===");
        println!(
            "aggregate: {:.1} mW ({:.1} dyn + {:.1} stat), delay {:.1} ns, {} packets",
            ungated.aggregate.power_mw,
            ungated.aggregate.dynamic_power_mw,
            ungated.aggregate.static_power_mw,
            ungated.aggregate.avg_delay_ns,
            ungated.aggregate.packets_delivered,
        );

        let imm = run_operating_point_gated(
            &net,
            scenario.traffic(&net, load),
            policy(),
            GatingPolicyKind::ImmediateSleep,
            &loop_cfg,
            2015,
        );
        print_gated("RMSD + ImmediateSleep (thrash-prone)", &imm);

        println!(
            "\nbreak-even vs ungated: {:+.1}% power, {:+.1}% delay",
            100.0 * (gated.aggregate.power_mw / ungated.aggregate.power_mw - 1.0),
            100.0 * (gated.aggregate.avg_delay_ns / ungated.aggregate.avg_delay_ns - 1.0),
        );
        println!(
            "break-even vs immediate: net saving {:+.0} pJ vs {:+.0} pJ, delay {:.1} ns vs {:.1} ns",
            gated.gating.total().net_saving_pj(),
            imm.gating.total().net_saving_pj(),
            gated.aggregate.avg_delay_ns,
            imm.aggregate.avg_delay_ns,
        );
    } else {
        println!("\n(run with --compare for the ungated and immediate-sleep baselines)");
    }
}
