//! Records the simulator-throughput benchmark suite as a JSON artifact.
//!
//! ```text
//! cargo run --release -p noc-bench --bin bench_record -- [--out BENCH_sim_throughput.json] \
//!     [--label current] [--merge existing.json] [--repeats 5] [--cycles 2000] \
//!     [--filter CASE]
//! ```
//!
//! `--filter` runs only the cases whose name contains the given substring
//! (e.g. `--filter light_load`) — handy while iterating on one hot path;
//! the full tracked suite should be recorded without a filter.
//!
//! Each case simulates a fixed number of NoC cycles and reports wall-clock
//! cycles/second computed from the **best (minimum) time** over `--repeats`
//! runs — best-of suppresses scheduler noise but is systematically optimistic,
//! so compare ratios between runs, not absolutes. The figure-regeneration
//! case times one quick-quality Fig. 2-style sweep end to end. With `--merge`, the previously recorded JSON is kept
//! under its original labels and the new run is appended, so the artifact
//! accumulates a perf trajectory across PRs.

use noc_dvfs::experiments::{fig2_rmsd_vs_nodvfs, ExperimentQuality};
use noc_sim::{
    BurstyTraffic, FaultConfig, GatingConfig, HazardConfig, NetworkConfig, NocSimulation,
    RegionLayout, RoutingKind, SyntheticTraffic, TrafficPattern, TrafficSpec,
};
use std::fmt::Write as _;
use std::time::Instant;

struct CaseResult {
    name: String,
    cycles: u64,
    secs: f64,
    cycles_per_sec: f64,
}

fn time_sim_case(
    name: &str,
    cfg: &NetworkConfig,
    make_traffic: &dyn Fn(&NetworkConfig) -> Box<dyn TrafficSpec>,
    cycles: u64,
    repeats: usize,
) -> CaseResult {
    let mut best = f64::INFINITY;
    for _ in 0..repeats.max(1) {
        let mut sim = NocSimulation::new(cfg.clone(), make_traffic(cfg), 1);
        // Warm the allocators/buffers before timing.
        sim.run_cycles(cycles / 10);
        let t0 = Instant::now();
        sim.run_cycles(cycles);
        let dt = t0.elapsed().as_secs_f64();
        if dt < best {
            best = dt;
        }
    }
    CaseResult {
        name: name.to_string(),
        cycles,
        secs: best,
        cycles_per_sec: cycles as f64 / best,
    }
}

fn time_figure_regen(repeats: usize) -> CaseResult {
    let mut best = f64::INFINITY;
    for _ in 0..repeats.max(1) {
        let t0 = Instant::now();
        let cmp = fig2_rmsd_vs_nodvfs(&ExperimentQuality::quick());
        assert!(!cmp.curves.is_empty());
        let dt = t0.elapsed().as_secs_f64();
        if dt < best {
            best = dt;
        }
    }
    CaseResult {
        name: "fig2_regeneration_quick".to_string(),
        cycles: 0,
        secs: best,
        cycles_per_sec: 0.0,
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn render_run(label: &str, results: &[CaseResult]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "    \"{}\": {{", json_escape(label));
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 == results.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "      \"{}\": {{\"cycles\": {}, \"seconds\": {:.6}, \"cycles_per_sec\": {:.1}}}{}",
            json_escape(&r.name),
            r.cycles,
            r.secs,
            r.cycles_per_sec,
            comma
        );
    }
    let _ = write!(out, "    }}");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path = "BENCH_sim_throughput.json".to_string();
    let mut label = "current".to_string();
    let mut merge: Option<String> = None;
    let mut repeats = 5usize;
    let mut cycles = 2_000u64;
    let mut filter: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" if i + 1 < args.len() => {
                out_path = args[i + 1].clone();
                i += 2;
            }
            "--label" if i + 1 < args.len() => {
                label = args[i + 1].clone();
                i += 2;
            }
            "--merge" if i + 1 < args.len() => {
                merge = Some(args[i + 1].clone());
                i += 2;
            }
            "--repeats" if i + 1 < args.len() => {
                repeats = args[i + 1].parse().expect("--repeats takes an integer");
                i += 2;
            }
            "--cycles" if i + 1 < args.len() => {
                cycles = args[i + 1].parse().expect("--cycles takes an integer");
                i += 2;
            }
            "--filter" if i + 1 < args.len() => {
                filter = Some(args[i + 1].clone());
                i += 2;
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: bench_record [--out FILE] [--label NAME] [--merge FILE] [--repeats N] [--cycles N] [--filter CASE]");
                std::process::exit(1);
            }
        }
    }

    let uniform = |rate: f64| {
        move |cfg: &NetworkConfig| -> Box<dyn TrafficSpec> {
            Box::new(SyntheticTraffic::new(TrafficPattern::Uniform, rate, cfg.packet_length()))
        }
    };
    // The new scenario axis, tracked alongside the historical mesh cases:
    // wrap-around links + dateline VC classes + hotspot + MMP injection.
    let torus_hotspot_bursty = |rate: f64| {
        move |cfg: &NetworkConfig| -> Box<dyn TrafficSpec> {
            Box::new(BurstyTraffic::new(
                TrafficPattern::Hotspot,
                rate,
                cfg.packet_length(),
                200.0,
                4.0,
            ))
        }
    };
    type TrafficFactory = Box<dyn Fn(&NetworkConfig) -> Box<dyn TrafficSpec>>;
    let cases: Vec<(&str, NetworkConfig, TrafficFactory)> = vec![
        ("5x5_paper_baseline_light_load", NetworkConfig::paper_baseline(), Box::new(uniform(0.05))),
        ("5x5_paper_baseline_heavy_load", NetworkConfig::paper_baseline(), Box::new(uniform(0.35))),
        ("8x8_mesh_light_load", NetworkConfig::builder().mesh(8, 8).build().unwrap(), Box::new(uniform(0.05))),
        ("8x8_mesh_heavy_load", NetworkConfig::builder().mesh(8, 8).build().unwrap(), Box::new(uniform(0.35))),
        // Size-independence probe for the sparse core: at a fixed light load
        // the idle-router/idle-channel cost used to scale with node count, so
        // 16x16 is where activity-proportional stepping pays the most.
        ("16x16_mesh_light_load", NetworkConfig::builder().mesh(16, 16).build().unwrap(), Box::new(uniform(0.05))),
        (
            "5x5_torus_hotspot_bursty_heavy_load",
            NetworkConfig::builder().torus(5, 5).build().unwrap(),
            Box::new(torus_hotspot_bursty(0.35)),
        ),
        // Voltage-frequency island bookkeeping probe: the quadrant
        // partition with every island at the base rate isolates the cost of
        // the per-island window/fire accounting itself — the number to
        // compare against 8x8_mesh_light_load for "no regression from
        // island bookkeeping".
        (
            "8x8_vfi_quadrants_light_load",
            NetworkConfig::builder().mesh(8, 8).regions(RegionLayout::Quadrants).build().unwrap(),
            Box::new(uniform(0.05)),
        ),
        // Power-gating probe: the same light 8x8 load with routers sleeping
        // through their idle gaps. Gated routers are excluded from the
        // sparse worklists, and the gating bookkeeping is event-driven, so a
        // gated *idle* network steps at plain-idle speed (parity pinned by
        // the idle case below). Under traffic this case runs somewhat below
        // 8x8_mesh_light_load — not from bookkeeping, but because the
        // simulation is faithfully doing more work: every wakeup stalls real
        // flits for the 8-cycle power-up latency, and those extra
        // buffered-router cycles are simulated cycles.
        (
            "8x8_mesh_light_gated",
            NetworkConfig::builder()
                .mesh(8, 8)
                .gating(GatingConfig::enabled(24, 8))
                .build()
                .unwrap(),
            Box::new(uniform(0.05)),
        ),
        // Fault-injection probe: the same light 8x8 load with adaptive
        // routing and a continuous transient-fault storm. The fault tick is
        // event-driven off a geometric next-event draw, so the per-cycle
        // cost of an *armed but quiet* hazard is near zero; what this case
        // pays for is real simulated behaviour — purges, credit resyncs and
        // adaptive detours around fenced links. Compare against
        // 8x8_mesh_light_load for the "no regression from fault
        // bookkeeping" claim on the fault-free cases.
        (
            "8x8_mesh_light_faulted",
            NetworkConfig::builder()
                .mesh(8, 8)
                .virtual_channels(2)
                .routing(RoutingKind::MinimalAdaptive)
                .faults(FaultConfig::none().with_hazard(HazardConfig {
                    link_rate: 1e-4,
                    router_rate: 5e-5,
                    transient_fraction: 1.0,
                    transient_duration: 150,
                }))
                .build()
                .unwrap(),
            Box::new(uniform(0.05)),
        ),
        // The gated-idle half of the claim: a fully gated silent network
        // must step at least as fast as a plain idle one (compare with
        // 8x8_mesh_idle below).
        (
            "8x8_mesh_idle_gated",
            NetworkConfig::builder()
                .mesh(8, 8)
                .gating(GatingConfig::enabled(24, 8))
                .build()
                .unwrap(),
            Box::new(uniform(0.0)),
        ),
        ("8x8_mesh_idle", NetworkConfig::builder().mesh(8, 8).build().unwrap(), Box::new(uniform(0.0))),
    ];

    let selected = |name: &str| filter.as_ref().is_none_or(|f| name.contains(f.as_str()));
    let mut results = Vec::new();
    for (name, cfg, make_traffic) in &cases {
        if !selected(name) {
            continue;
        }
        let r = time_sim_case(name, cfg, make_traffic.as_ref(), cycles, repeats);
        eprintln!("{:<35} {:>12.0} cycles/s  ({:.4} s / {} cycles)", r.name, r.cycles_per_sec, r.secs, r.cycles);
        results.push(r);
    }
    if selected("fig2_regeneration_quick") {
        let fig = time_figure_regen(repeats.min(3));
        eprintln!("{:<35} {:>12.4} s wall-clock", fig.name, fig.secs);
        results.push(fig);
    }
    if results.is_empty() {
        eprintln!("--filter {:?} matched no benchmark case", filter.unwrap_or_default());
        std::process::exit(1);
    }

    // Preserve previously recorded runs (e.g. the pre-refactor baseline) by
    // splicing their top-level entries ahead of the new one.
    let mut runs: Vec<String> = Vec::new();
    if let Some(path) = merge {
        let prior = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read merge file {path}: {e}"));
        // The artifact is always written by this tool, so the runs live
        // between the outer "runs": { ... } braces with 4-space indents.
        if let Some(start) = prior.find("\"runs\": {") {
            let body = &prior[start + "\"runs\": {".len()..];
            if let Some(end) = body.rfind("\n  }") {
                let inner = body[..end].trim_matches('\n');
                if !inner.trim().is_empty() {
                    runs.push(inner.to_string());
                }
            }
        }
    }
    runs.push(render_run(&label, &results));

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"benchmark\": \"sim_throughput\",");
    let _ = writeln!(json, "  \"cycles_per_case\": {cycles},");
    let _ = writeln!(json, "  \"repeats\": {repeats},");
    let _ = writeln!(json, "  \"unit\": \"cycles_per_sec (best of repeats); fig2 case is wall seconds\",");
    let _ = writeln!(json, "  \"runs\": {{");
    let _ = writeln!(json, "{}", runs.join(",\n"));
    json.push_str("  }\n}\n");

    std::fs::write(&out_path, json).unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    eprintln!("wrote {out_path}");
}
