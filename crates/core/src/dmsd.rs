//! DMSD — Delay-based Max Slow Down (Sec. IV of the paper).
//!
//! The receiving nodes timestamp packets and periodically report the average
//! end-to-end delay to the controller node. The controller computes the error
//! between the measured delay and a target delay and feeds it to a
//! proportional-integral loop whose output selects the NoC clock frequency:
//! when the delay exceeds the target the loop raises the frequency, when it
//! is comfortably below the target the loop lowers frequency (and voltage) to
//! save power.
//!
//! The paper uses gains `K_I = 0.025`, `K_P = 0.0125` and a control update
//! period of 10 000 cycles at the highest frequency. The published gains act
//! on the paper's (unstated) normalisation; here the error is normalised by
//! the target delay and the PI output is the frequency expressed as a
//! fraction of `F_max`, which makes the same gain values a good
//! stability/reactivity compromise (the ablation benches explore the
//! neighbourhood).

use crate::pi::PiController;
use crate::policy::{ControlMeasurement, DvfsPolicy};
use noc_sim::{Hertz, NetworkConfig};
use serde::{Deserialize, Serialize};

/// Parameters of the DMSD policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DmsdConfig {
    /// The delay target the PI loop tracks, in nanoseconds (150 ns in the
    /// paper's Fig. 4).
    pub target_delay_ns: f64,
    /// Integral gain (paper: 0.025).
    pub ki: f64,
    /// Proportional gain (paper: 0.0125).
    pub kp: f64,
}

impl DmsdConfig {
    /// The integral gain used in the paper.
    pub const PAPER_KI: f64 = 0.025;
    /// The proportional gain used in the paper.
    pub const PAPER_KP: f64 = 0.0125;

    /// Creates a configuration with the paper's PI gains and the given
    /// target delay.
    ///
    /// # Panics
    ///
    /// Panics if the target is not strictly positive and finite.
    pub fn with_target_ns(target_delay_ns: f64) -> Self {
        assert!(
            target_delay_ns.is_finite() && target_delay_ns > 0.0,
            "target delay must be positive"
        );
        DmsdConfig { target_delay_ns, ki: Self::PAPER_KI, kp: Self::PAPER_KP }
    }

    /// Overrides the PI gains (used by the gain-sensitivity ablation).
    ///
    /// # Panics
    ///
    /// Panics if either gain is negative or not finite.
    pub fn gains(mut self, ki: f64, kp: f64) -> Self {
        assert!(ki.is_finite() && ki >= 0.0 && kp.is_finite() && kp >= 0.0);
        self.ki = ki;
        self.kp = kp;
        self
    }
}

/// The Delay-based Max Slow Down controller.
#[derive(Debug, Clone, PartialEq)]
pub struct Dmsd {
    config: DmsdConfig,
    min_frequency: Hertz,
    max_frequency: Hertz,
    pi: PiController,
}

impl Dmsd {
    /// Creates the controller for a network configuration.
    ///
    /// The PI output is the normalised frequency `u = F / F_max`, clamped to
    /// `[F_min/F_max, 1]`; the controller starts at `F_max` so that the first
    /// control intervals are served at full speed while the loop acquires
    /// delay measurements.
    pub fn new(cfg: &NetworkConfig, config: DmsdConfig) -> Self {
        let u_min = cfg.min_frequency().as_hz() / cfg.max_frequency().as_hz();
        let pi = PiController::new(config.ki, config.kp, u_min, 1.0, 1.0);
        Dmsd {
            config,
            min_frequency: cfg.min_frequency(),
            max_frequency: cfg.max_frequency(),
            pi,
        }
    }

    /// The delay target in nanoseconds.
    pub fn target_delay_ns(&self) -> f64 {
        self.config.target_delay_ns
    }

    /// The current normalised PI output (`F/F_max`).
    pub fn normalized_output(&self) -> f64 {
        self.pi.output()
    }

    fn output_to_frequency(&self, u: f64) -> Hertz {
        Hertz::new(u * self.max_frequency.as_hz())
            .clamp(self.min_frequency, self.max_frequency)
    }
}

impl DvfsPolicy for Dmsd {
    fn name(&self) -> &'static str {
        "DMSD"
    }

    fn next_frequency(&mut self, measurement: &ControlMeasurement) -> Hertz {
        match measurement.avg_delay_ns() {
            Some(delay_ns) => {
                // Positive error (delay above target) must raise the frequency.
                let error = (delay_ns - self.config.target_delay_ns) / self.config.target_delay_ns;
                let u = self.pi.update(error);
                self.output_to_frequency(u)
            }
            // No packet completed in the window (essentially idle network):
            // keep the current actuation; there is nothing to track.
            None => self.output_to_frequency(self.pi.output()),
        }
    }

    fn reset(&mut self) {
        self.pi.reset(1.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_sim::WindowMeasurement;

    fn cfg() -> NetworkConfig {
        NetworkConfig::paper_baseline()
    }

    fn measurement(delay_ns: Option<f64>, f: Hertz) -> ControlMeasurement {
        let packets = 500u64;
        let window = match delay_ns {
            Some(d) => WindowMeasurement {
                noc_cycles: 10_000,
                node_cycles: 10_000,
                packets_ejected: packets,
                delay_ps_sum: d * 1e3 * packets as f64,
                latency_cycles_sum: packets * 60,
                ..Default::default()
            },
            None => WindowMeasurement { noc_cycles: 10_000, node_cycles: 10_000, ..Default::default() },
        };
        ControlMeasurement { window, node_count: 25, current_frequency: f }
    }

    #[test]
    fn delay_below_target_lowers_frequency() {
        let mut dmsd = Dmsd::new(&cfg(), DmsdConfig::with_target_ns(150.0));
        let f0 = cfg().max_frequency();
        let f1 = dmsd.next_frequency(&measurement(Some(60.0), f0));
        assert!(f1 < f0, "delay far below target must slow the NoC down");
    }

    #[test]
    fn delay_above_target_raises_frequency() {
        let mut dmsd = Dmsd::new(&cfg(), DmsdConfig::with_target_ns(150.0));
        // Drive the controller down first.
        for _ in 0..100 {
            dmsd.next_frequency(&measurement(Some(50.0), Hertz::from_mhz(500.0)));
        }
        let low = dmsd.next_frequency(&measurement(Some(50.0), Hertz::from_mhz(500.0)));
        let higher = dmsd.next_frequency(&measurement(Some(400.0), Hertz::from_mhz(500.0)));
        assert!(higher > low);
    }

    #[test]
    fn frequency_stays_inside_the_vco_range() {
        let mut dmsd = Dmsd::new(&cfg(), DmsdConfig::with_target_ns(150.0));
        for _ in 0..500 {
            let f = dmsd.next_frequency(&measurement(Some(10.0), Hertz::from_ghz(1.0)));
            assert!(f >= cfg().min_frequency() && f <= cfg().max_frequency());
        }
        for _ in 0..500 {
            let f = dmsd.next_frequency(&measurement(Some(2_000.0), Hertz::from_ghz(1.0)));
            assert!(f >= cfg().min_frequency() && f <= cfg().max_frequency());
        }
    }

    #[test]
    fn closed_loop_tracks_the_target_on_a_synthetic_plant() {
        // Toy plant: delay = base_latency_cycles / f (cycles fixed, frequency
        // scales the delay), which is exactly the mechanism of the paper.
        let cfg = cfg();
        let mut dmsd = Dmsd::new(&cfg, DmsdConfig::with_target_ns(150.0));
        let base_latency_cycles = 100.0;
        let mut f = cfg.max_frequency();
        for _ in 0..300 {
            let delay_ns = base_latency_cycles / f.as_ghz();
            f = dmsd.next_frequency(&measurement(Some(delay_ns), f));
        }
        let final_delay = base_latency_cycles / f.as_ghz();
        assert!(
            (final_delay - 150.0).abs() < 10.0,
            "PI loop should settle near the 150 ns target, got {final_delay:.1} ns"
        );
    }

    #[test]
    fn missing_measurements_hold_the_frequency() {
        let mut dmsd = Dmsd::new(&cfg(), DmsdConfig::with_target_ns(150.0));
        for _ in 0..50 {
            dmsd.next_frequency(&measurement(Some(40.0), Hertz::from_ghz(1.0)));
        }
        let before = dmsd.next_frequency(&measurement(Some(40.0), Hertz::from_ghz(1.0)));
        let held = dmsd.next_frequency(&measurement(None, before));
        assert_eq!(held, dmsd.next_frequency(&measurement(None, before)));
    }

    #[test]
    fn reset_restores_full_speed() {
        let mut dmsd = Dmsd::new(&cfg(), DmsdConfig::with_target_ns(150.0));
        for _ in 0..100 {
            dmsd.next_frequency(&measurement(Some(30.0), Hertz::from_ghz(1.0)));
        }
        assert!(dmsd.normalized_output() < 1.0);
        dmsd.reset();
        assert_eq!(dmsd.normalized_output(), 1.0);
    }

    #[test]
    fn custom_gains_are_respected() {
        let config = DmsdConfig::with_target_ns(150.0).gains(0.1, 0.05);
        assert_eq!(config.ki, 0.1);
        assert_eq!(config.kp, 0.05);
        let aggressive = Dmsd::new(&cfg(), config);
        let gentle = Dmsd::new(&cfg(), DmsdConfig::with_target_ns(150.0));
        let mut a = aggressive;
        let mut g = gentle;
        let fa = a.next_frequency(&measurement(Some(60.0), Hertz::from_ghz(1.0)));
        let fg = g.next_frequency(&measurement(Some(60.0), Hertz::from_ghz(1.0)));
        assert!(fa < fg, "larger gains move faster for the same error");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn non_positive_target_rejected() {
        let _ = DmsdConfig::with_target_ns(0.0);
    }
}
