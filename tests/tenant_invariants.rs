//! Invariants of the multi-tenant workload engine.
//!
//! Two contracts are pinned here:
//!
//! 1. **Generator properties** — every seeded random DAG
//!    ([`noc_apps::random_task_graph`]) is acyclic, its edge rates are
//!    positive, finite and Pareto-bounded below by the scale parameter,
//!    and its `network_config` mappings are in-range and collision-free on
//!    both mesh and torus topologies.
//! 2. **Per-tenant window conservation** — on any tenant partition of the
//!    fabric, the per-slot windows of
//!    [`NocSimulation::take_tenant_windows`] sum field-by-field (for the
//!    additive flit/packet/latency fields) to the global
//!    [`NocSimulation::take_window`] over the same span, and the
//!    shared-clock fields are identical across slots — the same
//!    conservation contract the per-island windows keep
//!    (`tests/island_invariants.rs`).

use noc_apps::{random_task_graph, DagConfig};
use noc_dvfs::{compose_tenants, run_tenants, MappingPolicy, TenantMix, TenantWorkload};
use noc_sim::{
    Hertz, NetworkConfig, NocSimulation, SyntheticTraffic, TenantMap, TopologyKind,
    TrafficPattern, WindowMeasurement,
};
use proptest::prelude::*;

fn fabric(width: usize, height: usize) -> NetworkConfig {
    NetworkConfig::builder()
        .mesh(width, height)
        .virtual_channels(2)
        .buffer_depth(4)
        .packet_length(5)
        .build()
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::default())]

    /// Every generated DAG is acyclic, Pareto-rated and validly mapped on
    /// mesh and torus.
    #[test]
    fn generated_dags_are_acyclic_pareto_rated_and_mappable(
        tasks in 2usize..=16,
        seed in 0u64..1_000_000,
        shape in 0.8f64..3.0,
        scale in 1.0f64..50.0,
        extra in 0.0f64..0.5,
    ) {
        let cfg = DagConfig {
            pareto_shape: shape,
            pareto_scale: scale,
            extra_edge_prob: extra,
            ..DagConfig::new(tasks, 4, 4, seed)
        };
        let g = random_task_graph("dag", &cfg).unwrap();
        prop_assert_eq!(g.tasks().len(), tasks);
        prop_assert!(!g.edges().is_empty());
        // Acyclic: every edge goes from a lower task index to a higher one,
        // so any cycle would need an index to decrease somewhere.
        for e in g.edges() {
            prop_assert!(e.src_task < e.dst_task);
            // Pareto-shaped rates: positive, finite, bounded below by x_m.
            prop_assert!(e.packets_per_frame.is_finite());
            prop_assert!(e.packets_per_frame >= scale);
        }
        // Mappings are in-range and collision-free; the same placement
        // builds a valid config on both topologies.
        let mut seen = std::collections::HashSet::new();
        for t in g.tasks() {
            prop_assert!(t.mesh_node < 16);
            prop_assert!(seen.insert(t.mesh_node));
        }
        for kind in [TopologyKind::Mesh, TopologyKind::Torus] {
            let net = g.network_config(kind).unwrap();
            prop_assert_eq!(net.node_count(), 16);
        }
        // The Pareto tail is actually long: with enough edges, rates spread
        // beyond the minimum (a constant-rate generator would fail this).
        if g.edges().len() >= 8 {
            let max = g.edges().iter().map(|e| e.packets_per_frame).fold(0.0, f64::max);
            prop_assert!(max > scale, "all {} edges at the minimum rate", g.edges().len());
        }
    }

    /// On any tenant partition, additive slot-window fields sum to the
    /// global window, and shared-clock fields are identical across slots.
    #[test]
    fn tenant_windows_conserve_the_global_window(
        tenants in 1usize..=5,
        shift in 0usize..16,
        unmapped_stride in 2usize..=6,
        rate in 0.03f64..0.3,
        seed in 0u64..1_000_000,
        mhz in 333.0f64..1000.0,
        chunk in 100u64..400,
    ) {
        // A scattered partition with a background share: node n is unmapped
        // every `unmapped_stride` nodes; mapped nodes round-robin over the
        // tenants, so every tenant owns at least one node (16 nodes at
        // stride ≥ 2 leave ≥ 8 mapped ≥ the 5 tenants maximum).
        let mut mapped_idx = 0usize;
        let owner: Vec<Option<u32>> = (0..16usize)
            .map(|n| {
                if n % unmapped_stride == 0 {
                    None
                } else {
                    let t = ((mapped_idx + shift) % tenants) as u32;
                    mapped_idx += 1;
                    Some(t)
                }
            })
            .collect();
        let map = TenantMap::new(owner, tenants).unwrap();
        let cfg = fabric(4, 4);
        let traffic = SyntheticTraffic::new(TrafficPattern::Uniform, rate, cfg.packet_length());
        let mut sim = NocSimulation::new(cfg, Box::new(traffic), seed);
        sim.set_tenant_map(map).unwrap();
        sim.set_noc_frequency(Hertz::from_mhz(mhz));
        for _ in 0..3 {
            sim.run_cycles(chunk);
            let slots = sim.take_tenant_windows();
            let global = sim.take_window();
            prop_assert_eq!(slots.len(), tenants + 1);
            let sum = |f: fn(&WindowMeasurement) -> u64| -> u64 {
                slots.iter().map(f).sum()
            };
            prop_assert_eq!(sum(|w| w.flits_generated), global.flits_generated);
            prop_assert_eq!(sum(|w| w.flits_injected), global.flits_injected);
            prop_assert_eq!(sum(|w| w.flits_ejected), global.flits_ejected);
            prop_assert_eq!(sum(|w| w.packets_ejected), global.packets_ejected);
            prop_assert_eq!(sum(|w| w.latency_cycles_sum), global.latency_cycles_sum);
            prop_assert_eq!(sum(|w| w.flits_dropped), global.flits_dropped);
            let delay_sum: f64 = slots.iter().map(|w| w.delay_ps_sum).sum();
            prop_assert!((delay_sum - global.delay_ps_sum).abs() < 1e-6);
            for w in &slots {
                prop_assert_eq!(w.wall_time_ps, global.wall_time_ps);
                prop_assert_eq!(w.node_cycles, global.node_cycles);
                prop_assert_eq!(w.noc_cycles, global.noc_cycles);
            }
        }
    }
}

#[test]
fn tenant_accounting_is_inert_when_unmapped() {
    // A simulation without a tenant map steps bit-identically to one that
    // never heard of tenants (the None fast path), and returns no ledgers.
    let cfg = fabric(4, 4);
    let traffic = SyntheticTraffic::new(TrafficPattern::Uniform, 0.10, cfg.packet_length());
    let mut sim = NocSimulation::new(cfg, Box::new(traffic), 2015);
    sim.run_cycles(500);
    assert!(sim.take_tenant_windows().is_empty());
    // The golden first window of tests/determinism.rs still holds.
    let golden = WindowMeasurement {
        noc_cycles: 500,
        node_cycles: 500,
        wall_time_ps: 500000.0,
        flits_generated: 875,
        flits_injected: 867,
        packets_ejected: 170,
        flits_ejected: 852,
        latency_cycles_sum: 3249,
        delay_ps_sum: 3249000.0,
        flits_dropped: 0,
    };
    assert_eq!(sim.take_window(), golden);
}

#[test]
fn composed_mix_conserves_through_the_qos_driver() {
    // End to end: a TenantMix composed on a 8x8 fabric, run through the QoS
    // driver — per-slot ledgers and energies partition the global totals.
    let mix = TenantMix::new(4, 8, 1234);
    let comp = mix.compose(8, 8, 5, 0.2).unwrap();
    assert_eq!(comp.map.tenant_count(), 4);
    let net = fabric(8, 8);
    let report = run_tenants(&net, &comp, 500, 2_000, 42);
    assert_eq!(report.slots.len(), 5);
    let gen: u64 = report.slots.iter().map(|q| q.window.flits_generated).sum();
    assert_eq!(gen, report.global.flits_generated);
    let ej: u64 = report.slots.iter().map(|q| q.window.flits_ejected).sum();
    assert_eq!(ej, report.global.flits_ejected);
    let lat: u64 = report.slots.iter().map(|q| q.window.latency_cycles_sum).sum();
    assert_eq!(lat, report.global.latency_cycles_sum);
    let energy: f64 = report.slots.iter().map(|q| q.energy.total_pj()).sum();
    assert!((energy - report.energy.total_pj()).abs() < 1e-9);
    for t in 0..4 {
        assert!(report.tenant(t).unwrap().window.flits_generated > 0, "tenant {t} was idle");
    }
}

#[test]
fn heterogeneous_tile_sizes_compose() {
    // A 5x5 VCE-sized DAG and two 4x4 DAGs pack onto a 16x8 fabric with
    // room left over for the background slot.
    let mut workloads = vec![TenantWorkload::new(
        random_task_graph("big", &DagConfig::new(12, 5, 5, 9)).unwrap(),
    )];
    for t in 0..2 {
        workloads.push(TenantWorkload::new(
            random_task_graph(format!("small{t}"), &DagConfig::new(6, 4, 4, 50 + t)).unwrap(),
        ));
    }
    let comp = compose_tenants(16, 8, &workloads, &MappingPolicy::Tiled, 5, 0.15).unwrap();
    assert_eq!(comp.offsets, vec![(0, 0), (5, 0), (9, 0)]);
    assert_eq!(comp.map.tenant_count(), 3);
    assert!(comp.map.node_counts()[3] > 0, "unclaimed fabric must fall to the background slot");
    let total: usize = comp.map.node_counts().iter().sum();
    assert_eq!(total, 128);
}
