//! Flits, packets and their identifiers.
//!
//! Packets are segmented into flits before injection, exactly as in the
//! reference simulator: a head flit carries the routing information
//! (source, destination), body flits follow it through the same virtual
//! channels, and a tail flit releases the resources. A single-flit packet uses
//! the combined [`FlitKind::HeadTail`] kind.
//!
//! # Performance
//!
//! [`Flit`] is the unit the hot path copies billions of times per experiment,
//! so it is deliberately small (40 bytes) and `Copy`: node indices and the
//! per-packet flit index are narrowed to `u32`, the virtual channel to `u8`
//! and the hop counter to `u16`. Serde derives are gated behind the
//! `flit-serde` feature so the default build carries no serialization code on
//! the hot type; stats/result types keep serialization unconditionally.

use std::fmt;

/// Globally unique identifier of a packet within one simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "flit-serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PacketId(u64);

impl PacketId {
    /// Creates a packet identifier from a raw index.
    pub fn new(raw: u64) -> Self {
        PacketId(raw)
    }

    /// Returns the raw index.
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Display for PacketId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pkt#{}", self.0)
    }
}

/// Position of a flit within its packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "flit-serde", derive(serde::Serialize, serde::Deserialize))]
#[repr(u8)]
pub enum FlitKind {
    /// First flit of a multi-flit packet; carries routing information.
    Head,
    /// Intermediate flit of a multi-flit packet.
    Body,
    /// Last flit of a multi-flit packet; releases virtual channels.
    Tail,
    /// Only flit of a single-flit packet (acts as both head and tail).
    HeadTail,
}

impl FlitKind {
    /// Whether this flit opens a packet (carries the route).
    pub fn is_head(self) -> bool {
        matches!(self, FlitKind::Head | FlitKind::HeadTail)
    }

    /// Whether this flit closes a packet (releases the VC).
    pub fn is_tail(self) -> bool {
        matches!(self, FlitKind::Tail | FlitKind::HeadTail)
    }
}

/// One flow-control unit travelling through the network.
///
/// `Copy` and 40 bytes wide — see the module docs for the layout rationale.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "flit-serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Flit {
    /// Identifier of the packet this flit belongs to.
    pub packet_id: PacketId,
    /// NoC cycle at which the packet was created by its source.
    pub creation_cycle: u64,
    /// Wall-clock time (ps) at which the packet was created by its source.
    pub creation_time_ps: f64,
    /// Source node index.
    pub src: u32,
    /// Destination node index.
    pub dst: u32,
    /// Zero-based index of the flit within its packet.
    pub index_in_packet: u32,
    /// Position of the flit within the packet.
    pub kind: FlitKind,
    /// Virtual channel the flit occupies on the link it is currently using.
    pub vc: u8,
    /// Number of router hops traversed so far (for diagnostics).
    pub hops: u16,
}

impl Flit {
    /// Creates the `index`-th flit (out of `packet_length`) of a packet.
    ///
    /// # Panics
    ///
    /// Panics if `packet_length` is zero or `index >= packet_length`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        packet_id: PacketId,
        src: usize,
        dst: usize,
        index: usize,
        packet_length: usize,
        creation_cycle: u64,
        creation_time_ps: f64,
    ) -> Self {
        assert!(packet_length > 0, "packet length must be positive");
        assert!(index < packet_length, "flit index out of range");
        let kind = if packet_length == 1 {
            FlitKind::HeadTail
        } else if index == 0 {
            FlitKind::Head
        } else if index == packet_length - 1 {
            FlitKind::Tail
        } else {
            FlitKind::Body
        };
        Flit {
            packet_id,
            kind,
            src: src as u32,
            dst: dst as u32,
            index_in_packet: index as u32,
            vc: 0,
            creation_cycle,
            creation_time_ps,
            hops: 0,
        }
    }

    /// Source node index as a `usize` (indexing convenience).
    #[inline]
    pub fn src(&self) -> usize {
        self.src as usize
    }

    /// Destination node index as a `usize` (indexing convenience).
    #[inline]
    pub fn dst(&self) -> usize {
        self.dst as usize
    }

    /// Virtual channel as a `usize` (indexing convenience).
    #[inline]
    pub fn vc(&self) -> usize {
        self.vc as usize
    }

    /// Builds every flit of a packet in order.
    pub fn packet(
        packet_id: PacketId,
        src: usize,
        dst: usize,
        packet_length: usize,
        creation_cycle: u64,
        creation_time_ps: f64,
    ) -> Vec<Flit> {
        (0..packet_length)
            .map(|i| {
                Flit::new(packet_id, src, dst, i, packet_length, creation_cycle, creation_time_ps)
            })
            .collect()
    }
}

#[cfg(feature = "snapshot")]
impl Flit {
    /// Encodes the flit for a simulation checkpoint.
    pub(crate) fn save_state(&self, w: &mut crate::snapshot::SnapWriter) {
        w.put_u64(self.packet_id.as_u64());
        w.put_u64(self.creation_cycle);
        w.put_f64(self.creation_time_ps);
        w.put_u32(self.src);
        w.put_u32(self.dst);
        w.put_u32(self.index_in_packet);
        w.put_u8(match self.kind {
            FlitKind::Head => 0,
            FlitKind::Body => 1,
            FlitKind::Tail => 2,
            FlitKind::HeadTail => 3,
        });
        w.put_u8(self.vc);
        w.put_u32(u32::from(self.hops));
    }

    /// Decodes a flit written by [`save_state`](Self::save_state).
    pub(crate) fn load_state(
        r: &mut crate::snapshot::SnapReader<'_>,
    ) -> Result<Flit, crate::snapshot::SnapshotError> {
        use crate::snapshot::SnapshotError;
        let packet_id = PacketId::new(r.read_u64()?);
        let creation_cycle = r.read_u64()?;
        let creation_time_ps = r.read_f64()?;
        let src = r.read_u32()?;
        let dst = r.read_u32()?;
        let index_in_packet = r.read_u32()?;
        let kind = match r.read_u8()? {
            0 => FlitKind::Head,
            1 => FlitKind::Body,
            2 => FlitKind::Tail,
            3 => FlitKind::HeadTail,
            _ => return Err(SnapshotError::Corrupt("flit kind")),
        };
        let vc = r.read_u8()?;
        let hops = u16::try_from(r.read_u32()?).map_err(|_| SnapshotError::Corrupt("flit hops"))?;
        Ok(Flit {
            packet_id,
            creation_cycle,
            creation_time_ps,
            src,
            dst,
            index_in_packet,
            kind,
            vc,
            hops,
        })
    }
}

impl fmt::Display for Flit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} flit {} ({:?}) {}->{} vc{}",
            self.packet_id, self.index_in_packet, self.kind, self.src, self.dst, self.vc
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_assigned_by_position() {
        let flits = Flit::packet(PacketId::new(1), 0, 5, 4, 0, 0.0);
        assert_eq!(flits.len(), 4);
        assert_eq!(flits[0].kind, FlitKind::Head);
        assert_eq!(flits[1].kind, FlitKind::Body);
        assert_eq!(flits[2].kind, FlitKind::Body);
        assert_eq!(flits[3].kind, FlitKind::Tail);
    }

    #[test]
    fn single_flit_packet_is_head_tail() {
        let flits = Flit::packet(PacketId::new(2), 3, 7, 1, 10, 123.0);
        assert_eq!(flits.len(), 1);
        assert_eq!(flits[0].kind, FlitKind::HeadTail);
        assert!(flits[0].kind.is_head());
        assert!(flits[0].kind.is_tail());
    }

    #[test]
    fn two_flit_packet_has_head_and_tail() {
        let flits = Flit::packet(PacketId::new(3), 0, 1, 2, 0, 0.0);
        assert_eq!(flits[0].kind, FlitKind::Head);
        assert_eq!(flits[1].kind, FlitKind::Tail);
    }

    #[test]
    fn head_and_tail_predicates() {
        assert!(FlitKind::Head.is_head());
        assert!(!FlitKind::Head.is_tail());
        assert!(FlitKind::Tail.is_tail());
        assert!(!FlitKind::Tail.is_head());
        assert!(!FlitKind::Body.is_head());
        assert!(!FlitKind::Body.is_tail());
    }

    #[test]
    fn creation_metadata_is_preserved() {
        let f = Flit::new(PacketId::new(9), 2, 4, 0, 3, 42, 777.5);
        assert_eq!(f.creation_cycle, 42);
        assert_eq!(f.creation_time_ps, 777.5);
        assert_eq!(f.src(), 2);
        assert_eq!(f.dst(), 4);
        assert_eq!(f.hops, 0);
    }

    #[test]
    fn flit_is_small_and_copy() {
        // The hot path depends on Flit staying a small Copy value; catch
        // accidental growth (e.g. a reintroduced wide field) at test time.
        assert!(std::mem::size_of::<Flit>() <= 40, "Flit grew to {} bytes", std::mem::size_of::<Flit>());
        fn assert_copy<T: Copy>() {}
        assert_copy::<Flit>();
    }

    #[test]
    #[should_panic(expected = "flit index out of range")]
    fn out_of_range_index_panics() {
        let _ = Flit::new(PacketId::new(0), 0, 0, 5, 5, 0, 0.0);
    }

    #[test]
    fn packet_id_display() {
        assert_eq!(PacketId::new(17).to_string(), "pkt#17");
    }
}
