//! Differential suite for the crash-safe checkpoint/resume subsystem.
//!
//! The snapshot contract ([`NocSimulation::snapshot`] /
//! [`NocSimulation::restore`]) is **bit-identity**: a run paused at any cycle
//! boundary, saved, and restored into a freshly built simulation produces
//! windows, counters and RNG streams identical — bit for bit — to a run that
//! never paused. Four families of checks pin it:
//!
//! 1. **Randomized save/restore differentials** — scenarios across gating ×
//!    faults × voltage-frequency islands × bursty injection are paused at a
//!    random mid-run cycle, serialized through the byte format, restored
//!    into a fresh simulation (standing in for a restarted process), and
//!    stepped alongside an uninterrupted twin; every subsequent window and
//!    the final ledgers must match exactly. The suite runs under both
//!    stepping engines and with skipping on and off (`NOC_DENSE_STEP=1`,
//!    `NOC_NO_SKIP=1` in CI), and the restored run may resume under a
//!    *different* engine than the one that took the snapshot.
//! 2. **Determinism of the format** — snapshotting twice without stepping,
//!    or snapshotting after a restore, yields byte-identical snapshots.
//! 3. **Rejection of the wrong world** — restoring into a simulation built
//!    from a different configuration fails with `ConfigMismatch` and a
//!    mangled byte stream fails with a decode error; neither panics.
//! 4. **Mid-run actuation** — frequency retunes and gating-threshold changes
//!    before the pause survive the round trip (the island dividers and
//!    runtime-mutable gating parameters are state, not configuration).

use noc_sim::{
    BurstyTraffic, FaultConfig, GatingConfig, HazardConfig, Hertz, NetworkConfig, NocSimulation,
    RegionLayout, RoutingKind, SimSnapshot, SnapshotError, SyntheticTraffic, TopologyKind,
    TrafficPattern, TrafficSpec,
};
use proptest::prelude::*;

/// A 4×4 grid exercising the chosen subsystem combination: power gating, a
/// transient-fault hazard with adaptive routing, and/or quadrant
/// voltage-frequency islands.
fn subsystem_cfg(kind: TopologyKind, gated: bool, faulted: bool, islands: bool) -> NetworkConfig {
    let mut b = NetworkConfig::builder()
        .mesh(4, 4)
        .topology(kind)
        .virtual_channels(2)
        .buffer_depth(4)
        .packet_length(4);
    if gated {
        b = b.gating(GatingConfig::enabled(24, 8));
    }
    if faulted {
        b = b.routing(RoutingKind::MinimalAdaptive).faults(FaultConfig::none().with_hazard(
            HazardConfig {
                link_rate: 2e-4,
                router_rate: 1e-4,
                transient_fraction: 1.0,
                transient_duration: 120,
            },
        ));
    }
    if islands {
        b = b.regions(RegionLayout::Quadrants);
    }
    b.build().expect("subsystem combinations are valid")
}

fn scenario_traffic(rate: f64, packet_length: usize, bursty: bool) -> Box<dyn TrafficSpec> {
    if bursty {
        Box::new(BurstyTraffic::new(TrafficPattern::Uniform, rate, packet_length, 200.0, 4.0))
    } else {
        Box::new(SyntheticTraffic::new(TrafficPattern::Uniform, rate, packet_length))
    }
}

/// Serializes and re-parses the snapshot — every differential goes through
/// the byte format, so the round trip (not just the in-memory object) is
/// what the suite certifies.
fn through_bytes(snap: &SimSnapshot) -> SimSnapshot {
    SimSnapshot::from_bytes(&snap.to_bytes()).expect("a written snapshot must parse back")
}

/// Final-ledger comparison between the uninterrupted reference and the
/// resumed run: aggregate stats plus every conservation-relevant counter.
fn assert_ledgers_match(reference: &NocSimulation, resumed: &NocSimulation) {
    assert_eq!(reference.stats(), resumed.stats());
    assert_eq!(reference.current_cycle(), resumed.current_cycle());
    assert_eq!(reference.wall_time(), resumed.wall_time());
    assert_eq!(reference.total_flits_generated(), resumed.total_flits_generated());
    assert_eq!(reference.total_packets_delivered(), resumed.total_packets_delivered());
    assert_eq!(reference.total_flits_received(), resumed.total_flits_received());
    assert_eq!(reference.total_flits_dropped(), resumed.total_flits_dropped());
    assert_eq!(reference.queued_source_flits(), resumed.queued_source_flits());
    assert_eq!(reference.buffered_network_flits(), resumed.buffered_network_flits());
    assert_eq!(reference.in_flight_flits(), resumed.in_flight_flits());
    assert_eq!(reference.in_flight_credits(), resumed.in_flight_credits());
    assert_eq!(reference.gated_router_count(), resumed.gated_router_count());
}

proptest! {
    #![proptest_config(ProptestConfig::default())]

    /// The headline differential: pause at a random mid-run cycle, restore
    /// into a fresh process-stand-in, and compare every subsequent window
    /// and the final ledgers against an uninterrupted twin — across gating,
    /// faults, islands and bursty injection, resuming under either engine
    /// and with skipping on or off.
    #[test]
    fn save_restore_is_bit_identical_to_an_uninterrupted_run(
        gated in prop_oneof![Just(false), Just(true)],
        faulted in prop_oneof![Just(false), Just(true)],
        islands in prop_oneof![Just(false), Just(true)],
        bursty in prop_oneof![Just(false), Just(true)],
        resume_dense in prop_oneof![Just(false), Just(true)],
        resume_skip in prop_oneof![Just(false), Just(true)],
        rate in 0.0f64..0.3,
        seed in 0u64..1_000_000,
        pause_at in 1u64..700,
        chunk in 60u64..250,
    ) {
        let cfg = subsystem_cfg(TopologyKind::Mesh, gated, faulted, islands);
        let mk = || scenario_traffic(rate, 4, bursty);

        let mut reference = NocSimulation::new(cfg.clone(), mk(), seed);
        let mut paused = NocSimulation::new(cfg.clone(), mk(), seed);
        if islands {
            // A detuned island keeps fractional divider state live across
            // the pause point.
            reference.set_island_frequency(2, Hertz::from_mhz(400.0));
            paused.set_island_frequency(2, Hertz::from_mhz(400.0));
        }

        reference.run_cycles(pause_at);
        paused.run_cycles(pause_at);
        let snap = through_bytes(&paused.snapshot());

        // A fresh simulation from the same configuration, traffic and seed —
        // exactly what a restarted process would build before restoring.
        let mut resumed = NocSimulation::new(cfg.clone(), mk(), seed);
        resumed.restore(&snap).expect("restoring into the same configuration succeeds");
        resumed.set_dense_stepping(resume_dense);
        resumed.set_event_skipping(resume_skip);

        let chunks = [chunk, 2 * chunk, chunk / 2 + 1, chunk + 37];
        for (i, &cycles) in chunks.iter().enumerate() {
            reference.run_cycles(cycles);
            resumed.run_cycles(cycles);
            prop_assert_eq!(
                reference.take_window(),
                resumed.take_window(),
                "window {} diverged (gated={} faulted={} islands={} bursty={} \
                 resume_dense={} resume_skip={} seed={} pause_at={})",
                i, gated, faulted, islands, bursty, resume_dense, resume_skip, seed, pause_at
            );
            prop_assert_eq!(reference.take_island_windows(), resumed.take_island_windows());
        }
        assert_ledgers_match(&reference, &resumed);
    }

    /// Pausing must also preserve the *partial* window: snapshot mid-window,
    /// restore, finish the window — the stitched window equals the
    /// uninterrupted one.
    #[test]
    fn a_window_straddling_the_pause_is_stitched_exactly(
        gated in prop_oneof![Just(false), Just(true)],
        rate in 0.02f64..0.3,
        seed in 0u64..1_000_000,
        first_half in 40u64..400,
        second_half in 40u64..400,
    ) {
        let cfg = subsystem_cfg(TopologyKind::Torus, gated, false, false);
        let mk = || scenario_traffic(rate, 4, false);
        let mut reference = NocSimulation::new(cfg.clone(), mk(), seed);
        let mut paused = NocSimulation::new(cfg.clone(), mk(), seed);

        reference.run_cycles(first_half + second_half);
        paused.run_cycles(first_half);
        let snap = through_bytes(&paused.snapshot());
        let mut resumed = NocSimulation::new(cfg.clone(), mk(), seed);
        resumed.restore(&snap).expect("restore succeeds");
        resumed.run_cycles(second_half);

        prop_assert_eq!(reference.take_window(), resumed.take_window());
        assert_ledgers_match(&reference, &resumed);
    }
}

/// Snapshotting is a pure observation: taking one does not perturb the run,
/// taking two in a row yields identical bytes, and a snapshot taken right
/// after a restore reproduces the restored snapshot byte for byte.
#[test]
fn snapshots_are_deterministic_and_non_perturbing() {
    let cfg = subsystem_cfg(TopologyKind::Mesh, true, true, true);
    let mk = || scenario_traffic(0.12, 4, true);
    let mut sim = NocSimulation::new(cfg.clone(), mk(), 2015);
    let mut twin = NocSimulation::new(cfg.clone(), mk(), 2015);
    sim.run_cycles(333);
    twin.run_cycles(333);

    let first = sim.snapshot();
    let second = sim.snapshot();
    assert_eq!(first.to_bytes(), second.to_bytes(), "snapshot must be deterministic");

    // The observed run continues exactly like the unobserved twin.
    sim.run_cycles(400);
    twin.run_cycles(400);
    assert_eq!(sim.take_window(), twin.take_window());
    assert_ledgers_match(&twin, &sim);

    // restore → snapshot is the identity on the byte format.
    let mut resumed = NocSimulation::new(cfg, mk(), 2015);
    resumed.restore(&first).expect("restore succeeds");
    assert_eq!(resumed.snapshot().to_bytes(), first.to_bytes());
}

/// Restoring into a simulation built from a different configuration must be
/// refused up front via the configuration fingerprint.
#[test]
fn restore_rejects_a_configuration_mismatch() {
    let cfg_a = subsystem_cfg(TopologyKind::Mesh, false, false, false);
    let cfg_b = NetworkConfig::builder()
        .mesh(4, 4)
        .virtual_channels(4) // differs
        .buffer_depth(4)
        .packet_length(4)
        .build()
        .unwrap();
    let mut a = NocSimulation::new(cfg_a, scenario_traffic(0.1, 4, false), 1);
    a.run_cycles(100);
    let snap = a.snapshot();
    let mut b = NocSimulation::new(cfg_b, scenario_traffic(0.1, 4, false), 1);
    assert!(matches!(b.restore(&snap), Err(SnapshotError::ConfigMismatch)));
}

/// A mangled byte stream fails with a decode error — never a panic, and
/// never a silent half-restore that parses.
#[test]
fn corrupt_snapshot_bytes_are_rejected() {
    let cfg = subsystem_cfg(TopologyKind::Mesh, true, false, true);
    let mut sim = NocSimulation::new(cfg.clone(), scenario_traffic(0.15, 4, false), 7);
    sim.run_cycles(250);
    let bytes = sim.snapshot().to_bytes();

    // Truncations anywhere in the stream must surface as errors, either at
    // parse time or at restore time.
    for cut in [0, 1, 7, bytes.len() / 2, bytes.len() - 1] {
        match SimSnapshot::from_bytes(&bytes[..cut]) {
            Err(_) => {}
            Ok(snap) => {
                let mut fresh = NocSimulation::new(cfg.clone(), scenario_traffic(0.15, 4, false), 7);
                assert!(fresh.restore(&snap).is_err(), "truncation at {cut} must not restore");
            }
        }
    }

    // A corrupted magic number is rejected at parse time.
    let mut bad_magic = bytes.clone();
    bad_magic[0] ^= 0xFF;
    assert!(matches!(SimSnapshot::from_bytes(&bad_magic), Err(SnapshotError::BadMagic)));

    // A corrupted leading section tag is rejected at restore time.
    let snap = SimSnapshot::from_bytes(&bytes).unwrap();
    let mut tampered = bytes;
    let payload_start = tampered.len() - snap.payload_len();
    tampered[payload_start] = 0xEE;
    let tampered_snap = SimSnapshot::from_bytes(&tampered).unwrap();
    let mut fresh = NocSimulation::new(cfg, scenario_traffic(0.15, 4, false), 7);
    assert!(matches!(
        fresh.restore(&tampered_snap),
        Err(SnapshotError::Corrupt("section tag mismatch"))
    ));
}

/// Runtime actuation before the pause — per-island frequency retunes and
/// gating-threshold changes — is state and must survive the round trip.
#[test]
fn runtime_actuation_survives_the_round_trip() {
    let cfg = subsystem_cfg(TopologyKind::Mesh, true, false, true);
    let mk = || scenario_traffic(0.1, 4, false);
    let mut reference = NocSimulation::new(cfg.clone(), mk(), 42);
    let mut paused = NocSimulation::new(cfg.clone(), mk(), 42);
    for sim in [&mut reference, &mut paused] {
        sim.run_cycles(200);
        sim.set_island_frequency(1, Hertz::from_mhz(500.0));
        sim.set_island_idle_threshold(3, 64);
        sim.run_cycles(173);
    }
    let snap = through_bytes(&paused.snapshot());
    let mut resumed = NocSimulation::new(cfg, mk(), 42);
    resumed.restore(&snap).expect("restore succeeds");
    assert_eq!(resumed.island_frequency(1), Hertz::from_mhz(500.0));
    assert_eq!(resumed.island_idle_threshold(3), 64);
    for _ in 0..3 {
        reference.run_cycles(250);
        resumed.run_cycles(250);
        assert_eq!(reference.take_window(), resumed.take_window());
        assert_eq!(reference.take_island_windows(), resumed.take_island_windows());
    }
    assert_ledgers_match(&reference, &resumed);
}
