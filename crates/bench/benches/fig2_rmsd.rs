//! Fig. 2 bench: one RMSD closed-loop operating point (latency/delay vs rate
//! under rate-based DVFS) on a reduced mesh. Regenerating the full figure is
//! the job of the `figures` binary; this bench tracks the cost of the
//! underlying experiment so simulator regressions are caught.

use criterion::{criterion_group, criterion_main, Criterion};
use noc_bench::bench_support::{bench_loop, bench_network};
use noc_dvfs::{run_operating_point, PolicyKind, RmsdConfig};
use noc_sim::{SyntheticTraffic, TrafficPattern, TrafficSpec};
use std::time::Duration;

fn traffic(rate: f64) -> Box<dyn TrafficSpec> {
    Box::new(SyntheticTraffic::new(TrafficPattern::Uniform, rate, 5))
}

fn bench_fig2(c: &mut Criterion) {
    let net = bench_network();
    let loop_cfg = bench_loop();
    let mut group = c.benchmark_group("fig2_rmsd_vs_nodvfs");
    group.sample_size(10).measurement_time(Duration::from_secs(4)).warm_up_time(Duration::from_secs(1));
    group.bench_function("no_dvfs_point_rate_0.15", |b| {
        b.iter(|| run_operating_point(&net, traffic(0.15), PolicyKind::NoDvfs, &loop_cfg, 1))
    });
    group.bench_function("rmsd_point_rate_0.15", |b| {
        b.iter(|| {
            run_operating_point(
                &net,
                traffic(0.15),
                PolicyKind::Rmsd(RmsdConfig::with_lambda_max(0.35)),
                &loop_cfg,
                1,
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);
