//! 28-nm FDSOI technology model: maximum frequency vs. supply voltage.
//!
//! The paper extracts the router's maximum clock frequency as a function of
//! Vdd from transistor-level simulation of the synthesized netlist (Fig. 5):
//! the curve runs from roughly 333 MHz at 0.56 V to 1 GHz at 0.90 V. We model
//! the same relationship with the classic alpha-power delay law
//! `F_max(V) = k · (V − V_t)^α / V`, calibrated on the two published
//! endpoints; the resulting velocity-saturation exponent (α ≈ 1.63) is in the
//! usual range for a 28-nm low-power process.

use noc_sim::Hertz;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A supply voltage in volts.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Volts(f64);

impl Volts {
    /// Creates a voltage.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not finite or not strictly positive.
    pub fn new(v: f64) -> Self {
        assert!(v.is_finite() && v > 0.0, "voltage must be positive and finite");
        Volts(v)
    }

    /// Returns the raw value in volts.
    pub fn as_volts(self) -> f64 {
        self.0
    }
}

impl fmt::Display for Volts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} V", self.0)
    }
}

/// A (frequency, voltage) pair the DVFS controller can select.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OperatingPoint {
    /// Clock frequency.
    pub frequency: Hertz,
    /// Minimum supply voltage that sustains that frequency.
    pub vdd: Volts,
}

/// The frequency/voltage law of the 28-nm FDSOI router (Fig. 5 substitute).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FdsoiTech {
    /// Threshold voltage of the alpha-power model.
    threshold_v: f64,
    /// Velocity-saturation exponent.
    alpha: f64,
    /// Scale factor (Hz · V / V^alpha).
    scale_hz: f64,
    /// Lowest voltage the regulator can deliver.
    min_vdd: f64,
    /// Highest voltage the regulator can deliver.
    max_vdd: f64,
}

impl FdsoiTech {
    /// The minimum supply voltage used in the paper (0.56 V → 333 MHz).
    pub const MIN_VDD: f64 = 0.56;
    /// The nominal supply voltage used in the paper (0.90 V → 1 GHz).
    pub const MAX_VDD: f64 = 0.90;

    /// Creates the technology model calibrated on the paper's two published
    /// operating points: 333 MHz @ 0.56 V and 1 GHz @ 0.90 V.
    pub fn new() -> Self {
        let threshold_v = 0.35;
        // Solve F(0.90)/F(0.56) = 3.003 for alpha, then the scale from the
        // 1 GHz anchor (done symbolically once; constants inlined here).
        let f_hi: f64 = 1.0e9;
        let f_lo: f64 = 333.0e6;
        let v_hi: f64 = Self::MAX_VDD;
        let v_lo: f64 = Self::MIN_VDD;
        let ratio = (f_hi / f_lo) * (v_hi / v_lo);
        let alpha = ratio.ln() / ((v_hi - threshold_v) / (v_lo - threshold_v)).ln();
        let scale_hz = f_hi * v_hi / (v_hi - threshold_v).powf(alpha);
        FdsoiTech { threshold_v, alpha, scale_hz, min_vdd: v_lo, max_vdd: v_hi }
    }

    /// The velocity-saturation exponent α of the calibrated model.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Maximum clock frequency sustainable at supply voltage `vdd`.
    ///
    /// # Panics
    ///
    /// Panics if `vdd` is at or below the threshold voltage of the model.
    pub fn max_frequency(&self, vdd: Volts) -> Hertz {
        let v = vdd.as_volts();
        assert!(
            v > self.threshold_v,
            "supply voltage {v} V is at or below the threshold voltage"
        );
        Hertz::new(self.scale_hz * (v - self.threshold_v).powf(self.alpha) / v)
    }

    /// Minimum supply voltage at which the router meets timing at frequency
    /// `f` (the inverse of [`max_frequency`](Self::max_frequency), computed by
    /// bisection). The result is clamped to the regulator range
    /// `[MIN_VDD, MAX_VDD]`.
    pub fn vdd_for_frequency(&self, f: Hertz) -> Volts {
        let target = f.as_hz();
        let mut lo = self.min_vdd;
        let mut hi = self.max_vdd;
        if target <= self.max_frequency(Volts::new(lo)).as_hz() {
            return Volts::new(lo);
        }
        if target >= self.max_frequency(Volts::new(hi)).as_hz() {
            return Volts::new(hi);
        }
        for _ in 0..80 {
            let mid = 0.5 * (lo + hi);
            if self.max_frequency(Volts::new(mid)).as_hz() < target {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Volts::new(hi)
    }

    /// The operating point (frequency + minimum voltage) for frequency `f`.
    pub fn operating_point(&self, f: Hertz) -> OperatingPoint {
        OperatingPoint { frequency: f, vdd: self.vdd_for_frequency(f) }
    }

    /// Samples the Fmax-vs-Vdd curve (Fig. 5) at `points` evenly spaced
    /// voltages across the regulator range.
    ///
    /// # Panics
    ///
    /// Panics if `points < 2`.
    pub fn frequency_voltage_curve(&self, points: usize) -> Vec<OperatingPoint> {
        assert!(points >= 2, "need at least two sample points");
        (0..points)
            .map(|i| {
                let v = self.min_vdd
                    + (self.max_vdd - self.min_vdd) * i as f64 / (points - 1) as f64;
                let vdd = Volts::new(v);
                OperatingPoint { frequency: self.max_frequency(vdd), vdd }
            })
            .collect()
    }
}

impl Default for FdsoiTech {
    fn default() -> Self {
        FdsoiTech::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_matches_published_endpoints() {
        let tech = FdsoiTech::new();
        let f_low = tech.max_frequency(Volts::new(0.56));
        let f_high = tech.max_frequency(Volts::new(0.90));
        assert!((f_low.as_mhz() - 333.0).abs() < 1.0, "got {f_low}");
        assert!((f_high.as_ghz() - 1.0).abs() < 1e-3, "got {f_high}");
    }

    #[test]
    fn frequency_is_monotone_in_voltage() {
        let tech = FdsoiTech::new();
        let mut prev = 0.0;
        for op in tech.frequency_voltage_curve(50) {
            assert!(op.frequency.as_hz() > prev, "Fmax must increase with Vdd");
            prev = op.frequency.as_hz();
        }
    }

    #[test]
    fn inverse_round_trips_within_tolerance() {
        let tech = FdsoiTech::new();
        for mhz in [333.0, 400.0, 500.0, 600.0, 750.0, 900.0, 1000.0] {
            let f = Hertz::from_mhz(mhz);
            let vdd = tech.vdd_for_frequency(f);
            let f_back = tech.max_frequency(vdd);
            assert!(
                f_back.as_hz() >= f.as_hz() * 0.999,
                "voltage chosen for {mhz} MHz must actually sustain it"
            );
            assert!(
                f_back.as_hz() <= f.as_hz() * 1.02 || vdd.as_volts() <= FdsoiTech::MIN_VDD + 1e-9,
                "voltage should not be grossly overprovisioned at {mhz} MHz"
            );
        }
    }

    #[test]
    fn out_of_range_frequencies_clamp_to_regulator_limits() {
        let tech = FdsoiTech::new();
        assert_eq!(tech.vdd_for_frequency(Hertz::from_mhz(100.0)).as_volts(), FdsoiTech::MIN_VDD);
        assert_eq!(tech.vdd_for_frequency(Hertz::from_ghz(3.0)).as_volts(), FdsoiTech::MAX_VDD);
    }

    #[test]
    fn alpha_is_in_the_plausible_deep_submicron_range() {
        let tech = FdsoiTech::new();
        assert!(tech.alpha() > 1.2 && tech.alpha() < 2.0, "alpha = {}", tech.alpha());
    }

    #[test]
    fn curve_sampling_covers_the_full_range() {
        let tech = FdsoiTech::new();
        let curve = tech.frequency_voltage_curve(10);
        assert_eq!(curve.len(), 10);
        assert!((curve[0].vdd.as_volts() - 0.56).abs() < 1e-12);
        assert!((curve[9].vdd.as_volts() - 0.90).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn below_threshold_panics() {
        let tech = FdsoiTech::new();
        let _ = tech.max_frequency(Volts::new(0.2));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn non_positive_voltage_rejected() {
        let _ = Volts::new(0.0);
    }

    #[test]
    fn voltage_display() {
        assert_eq!(Volts::new(0.9).to_string(), "0.900 V");
    }
}
