//! Scenario grids: the topology × pattern × injection × island axis.
//!
//! The paper's figures fix one scenario family (2D mesh, Bernoulli
//! injection, five patterns). This module widens the experiment space into a
//! cross product of
//!
//! * **topology** — mesh or torus ([`TopologyKind`]),
//! * **pattern** — any [`TrafficPattern`], including the hotspot/shuffle/
//!   bit-reverse extensions,
//! * **injection process** — Bernoulli or two-state bursty
//!   ([`InjectionProcess`]),
//! * **island layout** — the named voltage-frequency island partitions
//!   ([`RegionLayout`]: whole / rows / columns / quadrants),
//!
//! so that a DVFS-policy claim can be checked far beyond Fig. 2–4. Every
//! scenario reuses the generic sweep machinery ([`crate::sweep`]), so the
//! serial and parallel executors stay bit-identical per scenario.

use crate::closed_loop::ClosedLoopConfig;
use crate::experiments::{ExperimentQuality, PolicyComparison, PAPER_LAMBDA_MAX_MARGIN};
use crate::gating::{run_operating_point_gated, GatedOperatingPointResult, GatingPolicyKind};
use crate::island::{run_operating_point_islands, IslandOperatingPointResult};
use crate::policy::PolicyKind;
use crate::saturation::find_saturation_load;
use crate::sweep::{load_grid, sweep_policies, sweep_policies_serial, PolicyCurve, SweepPoint};
use noc_sim::{
    BurstyTraffic, ConfigError, Direction, FaultConfig, FaultEvent, FaultTarget, HazardConfig,
    NetworkConfig, RegionLayout, RoutingKind, SyntheticTraffic, Topology, TopologyKind,
    TrafficPattern, TrafficSpec,
};
use serde::{Deserialize, Serialize};

/// How packets are released over time at each node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum InjectionProcess {
    /// Memoryless Bernoulli injection (the paper's process).
    Bernoulli,
    /// Two-state Markov-modulated ON/OFF injection (see
    /// [`BurstyTraffic`]).
    Bursty {
        /// Mean burst (ON-state) duration in node cycles.
        avg_burst_cycles: f64,
        /// Peak-to-average injection-rate ratio while ON.
        burst_factor: f64,
    },
}

impl InjectionProcess {
    /// The default bursty parameterization used by the scenario grids:
    /// 200-cycle bursts at 4× the average rate.
    pub fn default_bursty() -> Self {
        InjectionProcess::Bursty { avg_burst_cycles: 200.0, burst_factor: 4.0 }
    }

    /// A short lowercase name for labels.
    pub fn name(&self) -> &'static str {
        match self {
            InjectionProcess::Bernoulli => "bernoulli",
            InjectionProcess::Bursty { .. } => "bursty",
        }
    }
}

/// One point of the scenario grid: topology, pattern, injection process,
/// voltage-frequency island layout and power-gating policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Mesh or torus.
    pub topology: TopologyKind,
    /// Destination pattern.
    pub pattern: TrafficPattern,
    /// Packet release process.
    pub injection: InjectionProcess,
    /// Voltage-frequency island partition ([`RegionLayout::Whole`] — the
    /// single-island global-DVFS setting — unless widened via
    /// [`islands`](Scenario::islands)).
    pub regions: RegionLayout,
    /// Power-gating axis: `None` (the historical ungated setting) or a
    /// gating policy run alongside DVFS (set via [`gated`](Scenario::gated);
    /// sweeps then dispatch through
    /// [`run_operating_point_gated`]).
    pub gating: Option<GatingPolicyKind>,
    /// Routing-algorithm axis: dimension-ordered XY (the historical
    /// default), YX, or minimal-adaptive escape-VC routing (set via
    /// [`routed`](Scenario::routed)).
    pub routing: RoutingKind,
    /// Fault-injection axis: `None` (the historical fault-free setting) or
    /// a deterministic [`FaultProfile`] materialised into the network's
    /// [`FaultConfig`] by [`network`](Scenario::network) (set via
    /// [`faulted`](Scenario::faulted)).
    pub faults: Option<FaultProfile>,
    /// Multi-tenant axis: `None` (the historical single-workload setting)
    /// or a [`TenantMix`] of seeded random-DAG tenants composed over the
    /// fabric (set via [`tenanted`](Scenario::tenanted)). When set, the
    /// mix **replaces** the synthetic `pattern`/`injection` source:
    /// [`traffic`](Scenario::traffic) builds the composed tenant matrix and
    /// interprets the load level as the per-tenant peak node injection
    /// rate.
    pub tenants: Option<TenantMix>,
}

/// A compact, `Copy` description of a multi-tenant workload that a
/// [`Scenario`] can carry (the full composed [`TenantComposition`] owns
/// heap state and so cannot live in the `Copy` scenario struct; the mix is
/// expanded deterministically from its seed by
/// [`Scenario::traffic`]).
///
/// [`TenantComposition`]: crate::tenant::TenantComposition
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TenantMix {
    /// Number of random-DAG tenants composed onto the fabric.
    pub tenants: u32,
    /// Tasks per generated DAG.
    pub tasks_per_tenant: u32,
    /// Tile width each tenant's DAG is mapped on.
    pub tile_width: u32,
    /// Tile height each tenant's DAG is mapped on.
    pub tile_height: u32,
    /// Base seed; tenant `t` generates its graph from `seed + t`.
    pub seed: u64,
}

impl TenantMix {
    /// A mix of `tenants` DAGs of `tasks_per_tenant` tasks each, tiled on
    /// 4×4 tiles with default Pareto rates.
    pub fn new(tenants: u32, tasks_per_tenant: u32, seed: u64) -> Self {
        TenantMix { tenants, tasks_per_tenant, tile_width: 4, tile_height: 4, seed }
    }

    /// A short label component, e.g. `"tenants8x12s42"` (8 tenants, 12
    /// tasks each, base seed 42).
    pub fn name(&self) -> String {
        format!("tenants{}x{}s{}", self.tenants, self.tasks_per_tenant, self.seed)
    }

    /// Expands the mix into its tenant workloads (one seeded random DAG per
    /// tenant, all at nominal speed).
    ///
    /// # Errors
    ///
    /// Propagates [`noc_apps::DagError`]s from the generator (too many
    /// tasks for the tile, degenerate parameters).
    pub fn workloads(&self) -> Result<Vec<crate::tenant::TenantWorkload>, noc_apps::DagError> {
        (0..self.tenants)
            .map(|t| {
                let cfg = noc_apps::DagConfig::new(
                    self.tasks_per_tenant as usize,
                    self.tile_width as usize,
                    self.tile_height as usize,
                    self.seed + u64::from(t),
                );
                let graph = noc_apps::random_task_graph(format!("tenant{t}"), &cfg)?;
                Ok(crate::tenant::TenantWorkload::new(graph))
            })
            .collect()
    }

    /// Composes the mix onto a `width × height` fabric under tiled
    /// placement.
    ///
    /// # Errors
    ///
    /// Returns a [`TenantComposeError`](crate::tenant::TenantComposeError)
    /// when the tiles do not fit the fabric, wrapping generator errors as
    /// [`InvalidParam`](crate::tenant::TenantComposeError::InvalidParam).
    pub fn compose(
        &self,
        width: usize,
        height: usize,
        packet_length: usize,
        peak_node_rate: f64,
    ) -> Result<crate::tenant::TenantComposition, crate::tenant::TenantComposeError> {
        let workloads = self
            .workloads()
            .map_err(|_| crate::tenant::TenantComposeError::InvalidParam("tenant mix"))?;
        crate::tenant::compose_tenants(
            width,
            height,
            &workloads,
            &crate::tenant::MappingPolicy::Tiled,
            packet_length,
            peak_node_rate,
        )
    }

    /// Whether the mix fits a `width × height` fabric under tiled
    /// placement (used by [`scenario_grid_tenants`] to filter).
    pub fn fits(&self, width: usize, height: usize) -> bool {
        self.compose(width, height, 5, 0.1).is_ok()
    }
}

/// A compact, `Copy` description of a fault workload that a [`Scenario`]
/// can carry (the full [`FaultConfig`] owns a schedule `Vec` and so cannot
/// live in the `Copy` scenario struct). [`Scenario::network`] expands the
/// profile deterministically for the scenario's topology and dimensions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultProfile {
    /// `count` permanent link failures injected at cycle `at_cycle`, spread
    /// evenly over the topology's canonical East/South link list — the same
    /// links on every run, so labels and goldens are stable.
    PermanentLinks {
        /// Number of links to kill (clamped to the links available).
        count: usize,
        /// Injection cycle of every failure.
        at_cycle: u64,
    },
    /// A hazard-driven storm of transient faults: independent per-cycle
    /// failure draws at the given rates, every fault recovering after
    /// `duration` cycles.
    TransientStorm {
        /// Per-link failure probability per cycle, parts per million.
        link_ppm: u32,
        /// Per-router failure probability per cycle, parts per million.
        router_ppm: u32,
        /// Downtime of each transient fault, cycles.
        duration: u64,
    },
}

impl FaultProfile {
    /// A short label component, e.g. `"perm-links2"` or
    /// `"storm-l20r10d150"`.
    pub fn name(&self) -> String {
        match *self {
            FaultProfile::PermanentLinks { count, at_cycle: 0 } => format!("perm-links{count}"),
            FaultProfile::PermanentLinks { count, at_cycle } => {
                format!("perm-links{count}-at{at_cycle}")
            }
            FaultProfile::TransientStorm { link_ppm, router_ppm, duration } => {
                format!("storm-l{link_ppm}r{router_ppm}d{duration}")
            }
        }
    }

    /// Expands the profile into a concrete [`FaultConfig`] for `topo`.
    pub fn fault_config(&self, topo: &Topology) -> FaultConfig {
        match *self {
            FaultProfile::PermanentLinks { count, at_cycle } => {
                let mut links = Vec::new();
                for node in 0..topo.node_count() {
                    for dir in [Direction::East, Direction::South] {
                        if topo.neighbor(node, dir).is_some() {
                            links.push(FaultTarget::Link { node, dir });
                        }
                    }
                }
                let picks = count.min(links.len());
                let schedule = (0..picks)
                    .map(|i| FaultEvent::permanent(links[i * links.len() / picks.max(1)], at_cycle))
                    .collect();
                FaultConfig::scheduled(schedule)
            }
            FaultProfile::TransientStorm { link_ppm, router_ppm, duration } => {
                FaultConfig::none().with_hazard(HazardConfig {
                    link_rate: f64::from(link_ppm) * 1e-6,
                    router_rate: f64::from(router_ppm) * 1e-6,
                    transient_fraction: 1.0,
                    transient_duration: duration,
                })
            }
        }
    }
}

impl Scenario {
    /// A Bernoulli scenario (the paper's injection process) on a single
    /// island, ungated.
    pub fn new(topology: TopologyKind, pattern: TrafficPattern) -> Self {
        Scenario {
            topology,
            pattern,
            injection: InjectionProcess::Bernoulli,
            regions: RegionLayout::Whole,
            gating: None,
            routing: RoutingKind::Xy,
            faults: None,
            tenants: None,
        }
    }

    /// The same scenario with the default bursty injection process.
    pub fn bursty(self) -> Self {
        Scenario { injection: InjectionProcess::default_bursty(), ..self }
    }

    /// The same scenario partitioned into the given island layout.
    pub fn islands(self, regions: RegionLayout) -> Self {
        Scenario { regions, ..self }
    }

    /// The same scenario with power gating run by the given policy.
    pub fn gated(self, gating: GatingPolicyKind) -> Self {
        Scenario { gating: Some(gating), ..self }
    }

    /// The same scenario under the given routing algorithm.
    pub fn routed(self, routing: RoutingKind) -> Self {
        Scenario { routing, ..self }
    }

    /// The same scenario with the given fault profile injected.
    pub fn faulted(self, faults: FaultProfile) -> Self {
        Scenario { faults: Some(faults), ..self }
    }

    /// The same scenario composing the given multi-tenant mix (which then
    /// replaces the synthetic traffic source — see
    /// [`traffic`](Scenario::traffic)).
    pub fn tenanted(self, tenants: TenantMix) -> Self {
        Scenario { tenants: Some(tenants), ..self }
    }

    /// A `topology/pattern/process` label for figures and reports, e.g.
    /// `"torus/hotspot/bursty"`. Non-default axes append fixed-order
    /// suffixes — layout, gating policy, routing (when not XY), fault
    /// profile — so every distinct scenario names a distinct sweep result:
    /// `"mesh/uniform/bernoulli/quadrants/imm-sleep/adaptive/perm-links2"`.
    pub fn label(&self) -> String {
        let mut label =
            format!("{}/{}/{}", self.topology.name(), self.pattern.name(), self.injection.name());
        if self.regions != RegionLayout::Whole {
            label = format!("{label}/{}", self.regions.name());
        }
        if let Some(gating) = self.gating {
            label = format!("{label}/{}", gating.name());
        }
        if self.routing != RoutingKind::Xy {
            label = format!("{label}/{}", self.routing.name());
        }
        if let Some(faults) = self.faults {
            label = format!("{label}/{}", faults.name());
        }
        if let Some(tenants) = self.tenants {
            label = format!("{label}/{}", tenants.name());
        }
        label
    }

    /// Rebuilds `base` with this scenario's topology and island layout (all
    /// other micro-architectural parameters kept) and validates the pattern
    /// on it.
    ///
    /// # Errors
    ///
    /// Propagates [`ConfigError`]s: torus needing ≥2 VCs, transpose needing a
    /// square grid, bit permutations needing a power-of-two node count,
    /// adaptive routing needing ≥2 VCs for its escape class.
    pub fn network(&self, base: &NetworkConfig) -> Result<NetworkConfig, ConfigError> {
        let mut builder = base
            .to_builder()
            .topology(self.topology)
            .regions(self.regions)
            .routing(self.routing);
        if let Some(profile) = self.faults {
            let topo = Topology::with_kind(self.topology, base.width(), base.height());
            builder = builder.faults(profile.fault_config(&topo));
        }
        let net = builder.build()?;
        net.validate_pattern(self.pattern)?;
        Ok(net)
    }

    /// Builds the traffic source for one load level on `net`.
    ///
    /// A tenanted scenario ([`tenants`](Scenario::tenants) set) composes
    /// its DAG mix onto `net`'s fabric instead of the synthetic source, and
    /// `load` becomes the per-tenant peak node injection rate (each
    /// tenant's busiest source node injects `load` flits per node cycle).
    ///
    /// # Panics
    ///
    /// Panics if a tenanted scenario's mix does not fit `net` — validate
    /// with [`TenantMix::fits`] (grids from [`scenario_grid_tenants`]
    /// always do).
    pub fn traffic(&self, net: &NetworkConfig, load: f64) -> Box<dyn TrafficSpec> {
        if let Some(mix) = self.tenants {
            let comp = mix
                .compose(net.width(), net.height(), net.packet_length(), load)
                .unwrap_or_else(|e| {
                    panic!("tenant mix {} does not fit the network: {e}", mix.name())
                });
            return Box::new(comp.traffic);
        }
        match self.injection {
            InjectionProcess::Bernoulli => {
                Box::new(SyntheticTraffic::new(self.pattern, load, net.packet_length()))
            }
            InjectionProcess::Bursty { avg_burst_cycles, burst_factor } => Box::new(
                BurstyTraffic::new(
                    self.pattern,
                    load,
                    net.packet_length(),
                    avg_burst_cycles,
                    burst_factor,
                ),
            ),
        }
    }
}

/// The full cross product of topologies × patterns valid on `base`'s
/// dimensions, in Bernoulli and (when `include_bursty`) bursty flavours.
/// Invalid combinations (e.g. shuffle on 25 nodes) are silently skipped —
/// they are rejected configurations, not errors of the grid.
pub fn scenario_grid(base: &NetworkConfig, include_bursty: bool) -> Vec<Scenario> {
    let mut out = Vec::new();
    for topology in TopologyKind::ALL {
        for pattern in TrafficPattern::ALL {
            let scenario = Scenario::new(topology, pattern);
            if scenario.network(base).is_err() {
                continue;
            }
            out.push(scenario);
            if include_bursty {
                out.push(scenario.bursty());
            }
        }
    }
    out
}

/// The standard No-DVFS / RMSD / DMSD policy set over one scenario: the
/// scenario analogue of
/// [`compare_policies_synthetic`](crate::experiments::compare_policies_synthetic).
///
/// The saturation point is searched with the scenario's own injection
/// process, so bursty sweeps get a bursty-aware `λ_max`. Multi-island
/// scenarios sweep under per-island control (see [`sweep_scenario`]).
///
/// # Errors
///
/// Returns the [`ConfigError`] when the scenario is invalid on `base`'s
/// dimensions (see [`Scenario::network`]).
pub fn compare_policies_scenario(
    base: &NetworkConfig,
    scenario: Scenario,
    quality: &ExperimentQuality,
) -> Result<PolicyComparison, ConfigError> {
    let net = scenario.network(base)?;
    let factory = |load: f64| scenario.traffic(&net, load);
    let estimate =
        find_saturation_load(&net, &factory, 1.0, quality.saturation_probe_cycles, quality.seed);
    let lambda_max = PAPER_LAMBDA_MAX_MARGIN * estimate.load.max(1e-6);
    let policies = crate::experiments::standard_policies(lambda_max);
    let loads = load_grid(0.1 * lambda_max, lambda_max, quality.load_points);
    let curves = sweep_scenario(&net, scenario, &loads, &policies, &quality.loop_cfg, quality.seed);
    Ok(PolicyComparison { label: scenario.label(), lambda_max, curves })
}

/// Runs every scenario of `scenarios` on `base`, skipping none: the caller
/// builds the grid with [`scenario_grid`], which already filters invalid
/// combinations.
///
/// # Panics
///
/// Panics if a scenario is invalid on `base` (grids from [`scenario_grid`]
/// never are).
pub fn sweep_scenario_grid(
    base: &NetworkConfig,
    scenarios: &[Scenario],
    quality: &ExperimentQuality,
) -> Vec<PolicyComparison> {
    scenarios
        .iter()
        .map(|&s| {
            compare_policies_scenario(base, s, quality)
                .unwrap_or_else(|e| panic!("invalid scenario {}: {e}", s.label()))
        })
        .collect()
}

/// Parallel multi-policy sweep of one scenario over explicit loads (used by
/// the figure drivers above and directly by parity tests).
///
/// The island axis is honoured here: a multi-island scenario
/// (`regions != Whole`) runs under **per-island control**
/// ([`run_operating_point_islands`], one policy instance per island) and
/// each curve point carries the aggregate operating point — so the same
/// drivers ([`compare_policies_scenario`], [`sweep_scenario_grid`]) produce
/// genuinely different numbers per layout instead of relabelled global-DVFS
/// runs. Single-island scenarios take the historical global-DVFS path
/// unchanged. For the per-island detail (residency, per-island rates) use
/// [`sweep_scenario_islands`].
pub fn sweep_scenario(
    net: &NetworkConfig,
    scenario: Scenario,
    loads: &[f64],
    policies: &[PolicyKind],
    loop_cfg: &ClosedLoopConfig,
    seed: u64,
) -> Vec<PolicyCurve> {
    if scenario.gating.is_some() {
        return aggregate_gated_curves(
            policies,
            sweep_scenario_gated(net, scenario, loads, policies, loop_cfg, seed),
        );
    }
    if scenario.regions == RegionLayout::Whole {
        let factory = |load: f64| scenario.traffic(net, load);
        return sweep_policies(net, loads, &factory, policies, loop_cfg, seed);
    }
    aggregate_curves(
        policies,
        sweep_scenario_islands(net, scenario, loads, policies, loop_cfg, seed),
    )
}

/// Serial reference implementation of [`sweep_scenario`] — bit-identical
/// results, used by the parity tests.
pub fn sweep_scenario_serial(
    net: &NetworkConfig,
    scenario: Scenario,
    loads: &[f64],
    policies: &[PolicyKind],
    loop_cfg: &ClosedLoopConfig,
    seed: u64,
) -> Vec<PolicyCurve> {
    if scenario.gating.is_some() {
        return aggregate_gated_curves(
            policies,
            sweep_scenario_gated_serial(net, scenario, loads, policies, loop_cfg, seed),
        );
    }
    if scenario.regions == RegionLayout::Whole {
        let factory = |load: f64| scenario.traffic(net, load);
        return sweep_policies_serial(net, loads, &factory, policies, loop_cfg, seed);
    }
    aggregate_curves(
        policies,
        sweep_scenario_islands_serial(net, scenario, loads, policies, loop_cfg, seed),
    )
}

/// Projects per-policy island sweeps onto labelled aggregate
/// [`PolicyCurve`]s (each point keeps the network-level
/// [`OperatingPointResult`](crate::OperatingPointResult), dropping the
/// per-island detail).
fn aggregate_curves(
    policies: &[PolicyKind],
    groups: Vec<Vec<IslandSweepPoint>>,
) -> Vec<PolicyCurve> {
    policies
        .iter()
        .zip(groups)
        .map(|(p, points)| PolicyCurve {
            policy: p.name().to_string(),
            points: points
                .into_iter()
                .map(|point| SweepPoint { load: point.load, result: point.result.aggregate })
                .collect(),
        })
        .collect()
}

/// [`scenario_grid`] crossed with the given voltage-frequency island
/// layouts: every valid `topology × pattern × injection` combination is
/// instantiated once per layout in `layouts` (pass
/// [`RegionLayout::ALL`] for the full axis). Layouts keep the grid's
/// validity — islands partition nodes, never geometry — so no additional
/// combinations are filtered.
pub fn scenario_grid_islands(
    base: &NetworkConfig,
    include_bursty: bool,
    layouts: &[RegionLayout],
) -> Vec<Scenario> {
    scenario_grid(base, include_bursty)
        .into_iter()
        .flat_map(|s| layouts.iter().map(move |&layout| s.islands(layout)))
        .collect()
}

/// Parallel multi-policy, multi-load sweep of one scenario under
/// **per-island DVFS control** ([`run_operating_point_islands`]): the
/// island analogue of [`sweep_scenario`]. Returns, per policy, the
/// `(load, aggregate + per-island)` results in load order.
///
/// Like every sweep, each operating point is an independent simulation with
/// an explicit seed, so the output is bit-identical to
/// [`sweep_scenario_islands_serial`].
///
/// # Panics
///
/// Panics on a gated scenario (`scenario.gating != None`): those sweep
/// through [`sweep_scenario_gated`] (or the [`sweep_scenario`] dispatcher).
pub fn sweep_scenario_islands(
    net: &NetworkConfig,
    scenario: Scenario,
    loads: &[f64],
    policies: &[PolicyKind],
    loop_cfg: &ClosedLoopConfig,
    seed: u64,
) -> Vec<Vec<IslandSweepPoint>> {
    assert!(
        scenario.gating.is_none(),
        "gated scenarios must sweep through sweep_scenario_gated (or the sweep_scenario \
         dispatcher) — running them ungated would mislabel the curves"
    );
    crate::sweep::sweep_policy_grid(loads, policies.len(), |pi, load| IslandSweepPoint {
        load,
        result: run_operating_point_islands(
            net,
            scenario.traffic(net, load),
            policies[pi].clone(),
            loop_cfg,
            seed,
        ),
    })
}

/// Serial reference implementation of [`sweep_scenario_islands`] —
/// bit-identical results, used by the parity tests.
///
/// # Panics
///
/// Panics on a gated scenario (`scenario.gating != None`): those sweep
/// through [`sweep_scenario_gated_serial`] (or the [`sweep_scenario_serial`]
/// dispatcher).
pub fn sweep_scenario_islands_serial(
    net: &NetworkConfig,
    scenario: Scenario,
    loads: &[f64],
    policies: &[PolicyKind],
    loop_cfg: &ClosedLoopConfig,
    seed: u64,
) -> Vec<Vec<IslandSweepPoint>> {
    assert!(
        scenario.gating.is_none(),
        "gated scenarios must sweep through sweep_scenario_gated_serial (or the \
         sweep_scenario_serial dispatcher) — running them ungated would mislabel the curves"
    );
    policies
        .iter()
        .map(|policy| {
            loads
                .iter()
                .map(|&load| IslandSweepPoint {
                    load,
                    result: run_operating_point_islands(
                        net,
                        scenario.traffic(net, load),
                        policy.clone(),
                        loop_cfg,
                        seed,
                    ),
                })
                .collect()
        })
        .collect()
}

/// One `(load, island-controlled result)` pair of an island sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IslandSweepPoint {
    /// The injection-rate load parameter.
    pub load: f64,
    /// The aggregate + per-island operating point.
    pub result: IslandOperatingPointResult,
}

/// Projects per-policy gated sweeps onto labelled aggregate
/// [`PolicyCurve`]s, dropping the per-island and residency detail.
fn aggregate_gated_curves(
    policies: &[PolicyKind],
    groups: Vec<Vec<GatedSweepPoint>>,
) -> Vec<PolicyCurve> {
    policies
        .iter()
        .zip(groups)
        .map(|(p, points)| PolicyCurve {
            policy: p.name().to_string(),
            points: points
                .into_iter()
                .map(|point| SweepPoint { load: point.load, result: point.result.aggregate })
                .collect(),
        })
        .collect()
}

/// [`scenario_grid`] crossed with power-gating policies: every valid
/// `topology × pattern × injection` combination is instantiated once per
/// entry of `gatings` (`None` keeps the ungated scenario in the grid).
pub fn scenario_grid_gated(
    base: &NetworkConfig,
    include_bursty: bool,
    gatings: &[Option<GatingPolicyKind>],
) -> Vec<Scenario> {
    scenario_grid(base, include_bursty)
        .into_iter()
        .flat_map(|s| {
            gatings.iter().map(move |&g| match g {
                Some(kind) => s.gated(kind),
                None => s,
            })
        })
        .collect()
}

/// [`scenario_grid`] crossed with fault profiles under the given routing
/// algorithm: every valid `topology × pattern × injection` combination is
/// instantiated once per entry of `profiles` (`None` keeps the fault-free
/// scenario in the grid). Combinations the routing algorithm rejects (e.g.
/// minimal-adaptive on a 1-VC base, which has no escape class) are filtered
/// out, mirroring [`scenario_grid`]'s treatment of invalid patterns.
pub fn scenario_grid_faulted(
    base: &NetworkConfig,
    include_bursty: bool,
    routing: RoutingKind,
    profiles: &[Option<FaultProfile>],
) -> Vec<Scenario> {
    scenario_grid(base, include_bursty)
        .into_iter()
        .flat_map(|s| {
            profiles.iter().map(move |&p| {
                let s = s.routed(routing);
                match p {
                    Some(profile) => s.faulted(profile),
                    None => s,
                }
            })
        })
        .filter(|s| s.network(base).is_ok())
        .collect()
}

/// Topologies crossed with multi-tenant mixes: one tenanted scenario per
/// `topology × mix` combination that fits `base`'s fabric (the synthetic
/// pattern axis collapses to [`TrafficPattern::Uniform`] because the mix
/// replaces the pattern — crossing patterns would only duplicate
/// scenarios). Mixes whose tiles do not fit the fabric are silently
/// skipped, mirroring [`scenario_grid`]'s treatment of invalid patterns.
pub fn scenario_grid_tenants(base: &NetworkConfig, mixes: &[TenantMix]) -> Vec<Scenario> {
    let mut out = Vec::new();
    for topology in TopologyKind::ALL {
        for &mix in mixes {
            let scenario = Scenario::new(topology, TrafficPattern::Uniform).tenanted(mix);
            if scenario.network(base).is_err() || !mix.fits(base.width(), base.height()) {
                continue;
            }
            out.push(scenario);
        }
    }
    out
}

/// Parallel multi-policy, multi-load sweep of one scenario under **combined
/// DVFS + power-gating control**
/// ([`run_operating_point_gated`]): the
/// gated analogue of [`sweep_scenario_islands`]. Returns, per policy, the
/// `(load, gated result)` points in load order; each point carries the full
/// [`GatingResidency`](noc_power::GatingResidency).
///
/// # Panics
///
/// Panics if the scenario has no gating axis (`scenario.gating == None`).
pub fn sweep_scenario_gated(
    net: &NetworkConfig,
    scenario: Scenario,
    loads: &[f64],
    policies: &[PolicyKind],
    loop_cfg: &ClosedLoopConfig,
    seed: u64,
) -> Vec<Vec<GatedSweepPoint>> {
    let gating = scenario.gating.expect("sweep_scenario_gated needs a gated scenario");
    crate::sweep::sweep_policy_grid(loads, policies.len(), |pi, load| GatedSweepPoint {
        load,
        result: run_operating_point_gated(
            net,
            scenario.traffic(net, load),
            policies[pi].clone(),
            gating,
            loop_cfg,
            seed,
        ),
    })
}

/// Serial reference implementation of [`sweep_scenario_gated`] —
/// bit-identical results, used by the parity tests.
///
/// # Panics
///
/// Panics if the scenario has no gating axis (`scenario.gating == None`).
pub fn sweep_scenario_gated_serial(
    net: &NetworkConfig,
    scenario: Scenario,
    loads: &[f64],
    policies: &[PolicyKind],
    loop_cfg: &ClosedLoopConfig,
    seed: u64,
) -> Vec<Vec<GatedSweepPoint>> {
    let gating = scenario.gating.expect("sweep_scenario_gated needs a gated scenario");
    policies
        .iter()
        .map(|policy| {
            loads
                .iter()
                .map(|&load| GatedSweepPoint {
                    load,
                    result: run_operating_point_gated(
                        net,
                        scenario.traffic(net, load),
                        policy.clone(),
                        gating,
                        loop_cfg,
                        seed,
                    ),
                })
                .collect()
        })
        .collect()
}

/// One `(load, gated result)` pair of a gated sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GatedSweepPoint {
    /// The injection-rate load parameter.
    pub load: f64,
    /// The aggregate + per-island + gating-residency operating point.
    pub result: GatedOperatingPointResult,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_base() -> NetworkConfig {
        NetworkConfig::builder()
            .mesh(4, 4)
            .virtual_channels(2)
            .buffer_depth(4)
            .packet_length(5)
            .build()
            .unwrap()
    }

    fn tiny_quality() -> ExperimentQuality {
        ExperimentQuality {
            loop_cfg: ClosedLoopConfig {
                control_period_cycles: 800,
                warmup_intervals: 3,
                measure_intervals: 6,
                max_settle_intervals: 16,
                settle_tolerance: 0.02,
            },
            load_points: 2,
            saturation_probe_cycles: 3_000,
            seed: 7,
        }
    }

    #[test]
    fn labels_and_constructors_compose() {
        let s = Scenario::new(TopologyKind::Torus, TrafficPattern::Hotspot).bursty();
        assert_eq!(s.label(), "torus/hotspot/bursty");
        let s = Scenario::new(TopologyKind::Mesh, TrafficPattern::Uniform);
        assert_eq!(s.label(), "mesh/uniform/bernoulli");
    }

    #[test]
    fn scenario_network_keeps_microarchitecture_and_swaps_topology() {
        let base = small_base();
        let s = Scenario::new(TopologyKind::Torus, TrafficPattern::Uniform);
        let net = s.network(&base).unwrap();
        assert!(net.topology().is_torus());
        assert_eq!(net.virtual_channels(), base.virtual_channels());
        assert_eq!(net.packet_length(), base.packet_length());
    }

    #[test]
    fn invalid_scenarios_surface_config_errors() {
        let rect = NetworkConfig::builder().mesh(5, 4).build().unwrap();
        let transpose = Scenario::new(TopologyKind::Mesh, TrafficPattern::Transpose);
        assert!(matches!(
            transpose.network(&rect),
            Err(ConfigError::PatternNeedsSquare { .. })
        ));
        let shuffle = Scenario::new(TopologyKind::Torus, TrafficPattern::Shuffle);
        assert!(matches!(
            shuffle.network(&rect),
            Err(ConfigError::PatternNeedsPowerOfTwoNodes { .. })
        ));
        let one_vc = NetworkConfig::builder().mesh(4, 4).virtual_channels(1).build().unwrap();
        let torus = Scenario::new(TopologyKind::Torus, TrafficPattern::Uniform);
        assert!(matches!(torus.network(&one_vc), Err(ConfigError::TorusNeedsVcClasses { .. })));
    }

    #[test]
    fn grid_covers_both_topologies_and_filters_invalid_patterns() {
        // 4x4 (16 nodes, square, power of two): every pattern is valid on
        // both topologies.
        let grid = scenario_grid(&small_base(), false);
        assert_eq!(grid.len(), 2 * TrafficPattern::ALL.len());
        // 5x5: shuffle and bitrev drop out, transpose stays (square).
        let base5 = NetworkConfig::paper_baseline();
        let grid5 = scenario_grid(&base5, false);
        assert_eq!(grid5.len(), 2 * (TrafficPattern::ALL.len() - 2));
        // Bursty doubles the grid.
        assert_eq!(scenario_grid(&small_base(), true).len(), 4 * TrafficPattern::ALL.len());
    }

    #[test]
    fn torus_hotspot_bursty_comparison_runs_end_to_end() {
        let q = tiny_quality();
        let scenario = Scenario::new(TopologyKind::Torus, TrafficPattern::Hotspot).bursty();
        let cmp = compare_policies_scenario(&small_base(), scenario, &q).unwrap();
        assert_eq!(cmp.label, "torus/hotspot/bursty");
        assert_eq!(cmp.curves.len(), 3);
        assert!(cmp.lambda_max > 0.0);
        for curve in &cmp.curves {
            assert_eq!(curve.points.len(), q.load_points);
            for p in &curve.points {
                assert!(p.result.packets_delivered > 0, "every point must deliver packets");
            }
        }
    }

    #[test]
    fn island_labels_and_grid_compose() {
        let s = Scenario::new(TopologyKind::Torus, TrafficPattern::Hotspot)
            .bursty()
            .islands(RegionLayout::Quadrants);
        assert_eq!(s.label(), "torus/hotspot/bursty/quadrants");
        // Whole-island scenarios keep the historical three-part label.
        let s = Scenario::new(TopologyKind::Mesh, TrafficPattern::Uniform);
        assert_eq!(s.label(), "mesh/uniform/bernoulli");
        let base = small_base();
        let grid = scenario_grid_islands(&base, false, &RegionLayout::ALL);
        assert_eq!(grid.len(), 4 * scenario_grid(&base, false).len());
        let net = Scenario::new(TopologyKind::Mesh, TrafficPattern::Uniform)
            .islands(RegionLayout::PerRow)
            .network(&base)
            .unwrap();
        assert_eq!(net.region_map().island_count(), 4);
    }

    #[test]
    fn multi_island_scenarios_run_per_island_control_through_the_standard_sweep() {
        // Hotspot load is concentrated in one quadrant, so per-island RMSD
        // must land on a different operating point than global RMSD: the
        // quadrant layout's curve cannot be a relabelled copy of the whole-
        // island curve. The aggregates must also match the dedicated
        // island-sweep path bit for bit (same seeds, same loop).
        let base = small_base();
        let scenario = Scenario::new(TopologyKind::Mesh, TrafficPattern::Hotspot);
        let quad = scenario.islands(RegionLayout::Quadrants);
        let net_whole = scenario.network(&base).unwrap();
        let net_quad = quad.network(&base).unwrap();
        let loads = [0.1];
        let policies = vec![PolicyKind::Rmsd(crate::rmsd::RmsdConfig::with_lambda_max(0.3))];
        let loop_cfg = ClosedLoopConfig::quick();
        let whole_curves =
            sweep_scenario(&net_whole, scenario, &loads, &policies, &loop_cfg, 2015);
        let quad_curves = sweep_scenario(&net_quad, quad, &loads, &policies, &loop_cfg, 2015);
        assert_ne!(
            whole_curves[0].points[0].result, quad_curves[0].points[0].result,
            "quadrant islands must not be a relabelled global-DVFS run"
        );
        let island_points =
            sweep_scenario_islands(&net_quad, quad, &loads, &policies, &loop_cfg, 2015);
        assert_eq!(quad_curves[0].points[0].result, island_points[0][0].result.aggregate);
        // Serial parity holds on the island-dispatched path too.
        let serial = sweep_scenario_serial(&net_quad, quad, &loads, &policies, &loop_cfg, 2015);
        assert_eq!(quad_curves, serial);
    }

    #[test]
    fn island_scenario_sweep_serial_parallel_parity() {
        let base = small_base();
        let scenario = Scenario::new(TopologyKind::Torus, TrafficPattern::Uniform)
            .islands(RegionLayout::Quadrants);
        let net = scenario.network(&base).unwrap();
        let loads = [0.06, 0.12];
        let policies =
            vec![PolicyKind::NoDvfs, PolicyKind::Rmsd(crate::rmsd::RmsdConfig::with_lambda_max(0.3))];
        let loop_cfg = ClosedLoopConfig::quick();
        let parallel =
            sweep_scenario_islands(&net, scenario, &loads, &policies, &loop_cfg, 2015);
        let serial =
            sweep_scenario_islands_serial(&net, scenario, &loads, &policies, &loop_cfg, 2015);
        assert_eq!(parallel, serial);
        assert_eq!(parallel.len(), 2);
        for curve in &parallel {
            assert_eq!(curve.len(), 2);
            for point in curve {
                assert_eq!(point.result.islands.len(), 4);
                assert!(point.result.aggregate.packets_delivered > 0);
            }
        }
    }

    #[test]
    fn gated_labels_and_grid_compose() {
        use crate::gating::{BreakEvenConfig, GatingPolicyKind};
        let s = Scenario::new(TopologyKind::Mesh, TrafficPattern::Uniform)
            .gated(GatingPolicyKind::BreakEvenAware(BreakEvenConfig::new()));
        assert_eq!(s.label(), "mesh/uniform/bernoulli/break-even");
        let s = Scenario::new(TopologyKind::Torus, TrafficPattern::Hotspot)
            .bursty()
            .islands(RegionLayout::Quadrants)
            .gated(GatingPolicyKind::ImmediateSleep);
        assert_eq!(s.label(), "torus/hotspot/bursty/quadrants/imm-sleep");
        let base = small_base();
        let grid = scenario_grid_gated(
            &base,
            false,
            &[None, Some(GatingPolicyKind::IdleThreshold(16))],
        );
        assert_eq!(grid.len(), 2 * scenario_grid(&base, false).len());
        assert!(grid.iter().filter(|s| s.gating.is_some()).count() * 2 == grid.len());
    }

    #[test]
    fn gated_scenario_sweep_serial_parallel_parity() {
        use crate::gating::GatingPolicyKind;
        let base = small_base();
        let scenario = Scenario::new(TopologyKind::Mesh, TrafficPattern::Uniform)
            .gated(GatingPolicyKind::IdleThreshold(12));
        let net = scenario.network(&base).unwrap();
        let loads = [0.02, 0.05];
        let policies =
            vec![PolicyKind::NoDvfs, PolicyKind::Rmsd(crate::rmsd::RmsdConfig::with_lambda_max(0.3))];
        let loop_cfg = ClosedLoopConfig::quick();
        let parallel = sweep_scenario_gated(&net, scenario, &loads, &policies, &loop_cfg, 2015);
        let serial =
            sweep_scenario_gated_serial(&net, scenario, &loads, &policies, &loop_cfg, 2015);
        assert_eq!(parallel, serial);
        for curve in &parallel {
            for point in curve {
                assert!(point.result.aggregate.packets_delivered > 0);
                assert!(point.result.gated_fraction() > 0.0, "light loads must gate");
            }
        }
        // The standard sweep dispatches gated scenarios to the gated loop:
        // aggregates must match the dedicated path bit for bit.
        let curves = sweep_scenario(&net, scenario, &loads, &policies, &loop_cfg, 2015);
        assert_eq!(curves[0].points[0].result, parallel[0][0].result.aggregate);
        let curves_serial =
            sweep_scenario_serial(&net, scenario, &loads, &policies, &loop_cfg, 2015);
        assert_eq!(curves, curves_serial);
        // And a gated curve is a genuinely different operating point from
        // the ungated one (lower power at light load).
        let ungated = Scenario::new(TopologyKind::Mesh, TrafficPattern::Uniform);
        let plain = sweep_scenario(&net, ungated, &loads, &policies, &loop_cfg, 2015);
        assert!(
            curves[0].points[0].result.power_mw < plain[0].points[0].result.power_mw,
            "gating must show up as saved power"
        );
    }

    #[test]
    #[should_panic(expected = "sweep_scenario_gated")]
    fn island_sweep_rejects_gated_scenarios() {
        use crate::gating::GatingPolicyKind;
        let base = small_base();
        let scenario = Scenario::new(TopologyKind::Mesh, TrafficPattern::Uniform)
            .islands(RegionLayout::Quadrants)
            .gated(GatingPolicyKind::ImmediateSleep);
        let net = scenario.network(&base).unwrap();
        let _ = sweep_scenario_islands(
            &net,
            scenario,
            &[0.05],
            &[PolicyKind::NoDvfs],
            &ClosedLoopConfig::quick(),
            1,
        );
    }

    #[test]
    fn faulted_labels_and_grid_compose() {
        let s = Scenario::new(TopologyKind::Mesh, TrafficPattern::Uniform)
            .routed(RoutingKind::MinimalAdaptive)
            .faulted(FaultProfile::PermanentLinks { count: 2, at_cycle: 0 });
        assert_eq!(s.label(), "mesh/uniform/bernoulli/adaptive/perm-links2");
        // Every axis at once: layout, gating, routing, fault — fixed order.
        let s = Scenario::new(TopologyKind::Torus, TrafficPattern::Hotspot)
            .bursty()
            .islands(RegionLayout::Quadrants)
            .gated(crate::gating::GatingPolicyKind::ImmediateSleep)
            .routed(RoutingKind::MinimalAdaptive)
            .faulted(FaultProfile::TransientStorm { link_ppm: 20, router_ppm: 10, duration: 150 });
        assert_eq!(
            s.label(),
            "torus/hotspot/bursty/quadrants/imm-sleep/adaptive/storm-l20r10d150"
        );
        // XY routing never appends a suffix; the fault suffix still does.
        let s = Scenario::new(TopologyKind::Mesh, TrafficPattern::Uniform)
            .faulted(FaultProfile::PermanentLinks { count: 1, at_cycle: 500 });
        assert_eq!(s.label(), "mesh/uniform/bernoulli/perm-links1-at500");
        let base = small_base();
        let grid = scenario_grid_faulted(
            &base,
            false,
            RoutingKind::MinimalAdaptive,
            &[None, Some(FaultProfile::PermanentLinks { count: 2, at_cycle: 0 })],
        );
        assert_eq!(grid.len(), 2 * scenario_grid(&base, false).len());
        // A 1-VC base has no escape class: adaptive scenarios filter out.
        let one_vc = NetworkConfig::builder().mesh(4, 4).virtual_channels(1).build().unwrap();
        let grid1 =
            scenario_grid_faulted(&one_vc, false, RoutingKind::MinimalAdaptive, &[None]);
        assert!(grid1.is_empty());
    }

    #[test]
    fn faulted_scenario_network_embeds_routing_and_faults() {
        let base = small_base();
        let s = Scenario::new(TopologyKind::Mesh, TrafficPattern::Uniform)
            .routed(RoutingKind::MinimalAdaptive)
            .faulted(FaultProfile::PermanentLinks { count: 3, at_cycle: 0 });
        let net = s.network(&base).unwrap();
        assert_eq!(net.routing(), RoutingKind::MinimalAdaptive);
        assert!(net.faults().is_enabled());
        assert_eq!(net.faults().schedule().len(), 3);
        // The profile expands the same way every time (stable labels ⇒
        // stable goldens).
        let again = s.network(&base).unwrap();
        assert_eq!(net.faults().schedule(), again.faults().schedule());
    }

    #[test]
    fn faulted_scenario_sweep_parity_and_degraded_mode_report() {
        let base = small_base();
        let scenario = Scenario::new(TopologyKind::Mesh, TrafficPattern::Uniform)
            .routed(RoutingKind::MinimalAdaptive)
            .faulted(FaultProfile::PermanentLinks { count: 2, at_cycle: 0 });
        let net = scenario.network(&base).unwrap();
        let loads = [0.05];
        let policies = vec![PolicyKind::NoDvfs];
        let loop_cfg = ClosedLoopConfig::quick();
        let parallel = sweep_scenario(&net, scenario, &loads, &policies, &loop_cfg, 2015);
        let serial = sweep_scenario_serial(&net, scenario, &loads, &policies, &loop_cfg, 2015);
        assert_eq!(parallel, serial);
        let faulted = &parallel[0].points[0].result;
        assert!(faulted.packets_delivered > 0, "adaptive routing must survive 2 dead links");
        // The fault-free reference of the same workload.
        let reference =
            Scenario::new(TopologyKind::Mesh, TrafficPattern::Uniform)
                .routed(RoutingKind::MinimalAdaptive);
        let ref_net = reference.network(&base).unwrap();
        let plain = sweep_scenario(&ref_net, reference, &loads, &policies, &loop_cfg, 2015);
        let fault_free = &plain[0].points[0].result;
        assert_eq!(fault_free.reachability, 1.0);
        assert_eq!(fault_free.flits_dropped, 0);
        let report = crate::closed_loop::degraded_mode_report(faulted, fault_free);
        assert_eq!(report.packets_delivered, faulted.packets_delivered);
        assert!(report.latency_inflation() > 0.0);
        assert!(report.rerouting_energy_pj() >= 0.0);
    }

    #[test]
    fn tenant_labels_and_grid_compose() {
        let mix = TenantMix::new(2, 6, 42);
        let s = Scenario::new(TopologyKind::Mesh, TrafficPattern::Uniform).tenanted(mix);
        assert_eq!(s.label(), "mesh/uniform/bernoulli/tenants2x6s42");
        // The tenant suffix composes after every other axis.
        let s = s.islands(RegionLayout::Quadrants);
        assert_eq!(s.label(), "mesh/uniform/bernoulli/quadrants/tenants2x6s42");
        // An 8x4 fabric fits two 4x4 tiles; a 4x4 fabric fits one mix only.
        let wide = NetworkConfig::builder().mesh(8, 4).virtual_channels(2).build().unwrap();
        let grid = scenario_grid_tenants(&wide, &[TenantMix::new(2, 6, 1)]);
        assert_eq!(grid.len(), 2, "both topologies fit the 2-tenant mix");
        let grid = scenario_grid_tenants(&small_base(), &[TenantMix::new(2, 6, 1)]);
        assert!(grid.is_empty(), "two 4x4 tiles cannot fit a 4x4 fabric");
    }

    #[test]
    fn tenanted_scenario_sweeps_through_the_standard_machinery() {
        let wide = NetworkConfig::builder()
            .mesh(8, 4)
            .virtual_channels(2)
            .buffer_depth(4)
            .packet_length(5)
            .build()
            .unwrap();
        let scenario =
            Scenario::new(TopologyKind::Mesh, TrafficPattern::Uniform).tenanted(TenantMix::new(2, 6, 42));
        let net = scenario.network(&wide).unwrap();
        let loads = [0.1];
        let policies = vec![PolicyKind::NoDvfs];
        let loop_cfg = ClosedLoopConfig::quick();
        let curves = sweep_scenario(&net, scenario, &loads, &policies, &loop_cfg, 2015);
        assert!(curves[0].points[0].result.packets_delivered > 0);
        let serial = sweep_scenario_serial(&net, scenario, &loads, &policies, &loop_cfg, 2015);
        assert_eq!(curves, serial);
    }

    #[test]
    fn scenario_sweep_serial_parallel_parity() {
        let base = small_base();
        let scenario = Scenario::new(TopologyKind::Torus, TrafficPattern::Tornado).bursty();
        let net = scenario.network(&base).unwrap();
        let loads = [0.05, 0.12];
        let policies = vec![PolicyKind::NoDvfs];
        let loop_cfg = ClosedLoopConfig::quick();
        let parallel = sweep_scenario(&net, scenario, &loads, &policies, &loop_cfg, 2015);
        let serial = sweep_scenario_serial(&net, scenario, &loads, &policies, &loop_cfg, 2015);
        assert_eq!(parallel, serial);
    }
}
