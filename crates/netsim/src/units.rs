//! Frequency, time, cycle-count and rate newtypes.
//!
//! The DVFS experiments constantly convert between the *cycle* domain (what a
//! cycle-accurate simulator naturally measures) and the *time* domain (what the
//! paper plots once the clock has been scaled). Using newtypes keeps the two
//! domains from being mixed up silently.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// A clock frequency in hertz.
///
/// ```
/// use noc_sim::Hertz;
/// let f = Hertz::from_mhz(333.0);
/// assert!((f.as_ghz() - 0.333).abs() < 1e-12);
/// assert!((f.period().as_ns() - 3.003).abs() < 1e-2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Hertz(f64);

impl Hertz {
    /// Creates a frequency from a raw value in hertz.
    ///
    /// # Panics
    ///
    /// Panics if `hz` is not finite or is not strictly positive.
    pub fn new(hz: f64) -> Self {
        assert!(hz.is_finite() && hz > 0.0, "frequency must be positive and finite");
        Hertz(hz)
    }

    /// Creates a frequency from a value in megahertz.
    pub fn from_mhz(mhz: f64) -> Self {
        Hertz::new(mhz * 1.0e6)
    }

    /// Creates a frequency from a value in gigahertz.
    pub fn from_ghz(ghz: f64) -> Self {
        Hertz::new(ghz * 1.0e9)
    }

    /// Returns the raw value in hertz.
    pub fn as_hz(self) -> f64 {
        self.0
    }

    /// Returns the value in megahertz.
    pub fn as_mhz(self) -> f64 {
        self.0 / 1.0e6
    }

    /// Returns the value in gigahertz.
    pub fn as_ghz(self) -> f64 {
        self.0 / 1.0e9
    }

    /// Returns the clock period corresponding to this frequency.
    pub fn period(self) -> Picoseconds {
        Picoseconds::new(1.0e12 / self.0)
    }

    /// Clamps this frequency into the closed range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn clamp(self, lo: Hertz, hi: Hertz) -> Hertz {
        assert!(lo.0 <= hi.0, "invalid clamp range");
        Hertz(self.0.clamp(lo.0, hi.0))
    }
}

impl fmt::Display for Hertz {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1.0e9 {
            write!(f, "{:.3} GHz", self.as_ghz())
        } else if self.0 >= 1.0e6 {
            write!(f, "{:.1} MHz", self.as_mhz())
        } else {
            write!(f, "{:.0} Hz", self.0)
        }
    }
}

/// A duration expressed in picoseconds.
///
/// Wall-clock durations in the simulator are tracked in picoseconds so that a
/// 1 GHz clock period (1000 ps) and a 333 MHz period (3003 ps) are both
/// representable without losing resolution over long simulations.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Picoseconds(f64);

impl Picoseconds {
    /// Creates a duration from a raw picosecond value.
    ///
    /// # Panics
    ///
    /// Panics if `ps` is negative or not finite.
    pub fn new(ps: f64) -> Self {
        assert!(ps.is_finite() && ps >= 0.0, "duration must be non-negative and finite");
        Picoseconds(ps)
    }

    /// The zero duration.
    pub fn zero() -> Self {
        Picoseconds(0.0)
    }

    /// Returns the raw value in picoseconds.
    pub fn as_ps(self) -> f64 {
        self.0
    }

    /// Returns the value in nanoseconds.
    pub fn as_ns(self) -> f64 {
        self.0 / 1.0e3
    }

    /// Returns the value in microseconds.
    pub fn as_us(self) -> f64 {
        self.0 / 1.0e6
    }

    /// Returns the value in seconds.
    pub fn as_secs(self) -> f64 {
        self.0 / 1.0e12
    }
}

impl Add for Picoseconds {
    type Output = Picoseconds;
    fn add(self, rhs: Picoseconds) -> Picoseconds {
        Picoseconds(self.0 + rhs.0)
    }
}

impl AddAssign for Picoseconds {
    fn add_assign(&mut self, rhs: Picoseconds) {
        self.0 += rhs.0;
    }
}

impl Sub for Picoseconds {
    type Output = Picoseconds;
    fn sub(self, rhs: Picoseconds) -> Picoseconds {
        Picoseconds((self.0 - rhs.0).max(0.0))
    }
}

impl Mul<f64> for Picoseconds {
    type Output = Picoseconds;
    fn mul(self, rhs: f64) -> Picoseconds {
        Picoseconds(self.0 * rhs)
    }
}

impl Div<f64> for Picoseconds {
    type Output = Picoseconds;
    fn div(self, rhs: f64) -> Picoseconds {
        Picoseconds(self.0 / rhs)
    }
}

impl fmt::Display for Picoseconds {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1.0e6 {
            write!(f, "{:.3} us", self.as_us())
        } else if self.0 >= 1.0e3 {
            write!(f, "{:.3} ns", self.as_ns())
        } else {
            write!(f, "{:.1} ps", self.0)
        }
    }
}

/// A count of clock cycles (in whichever clock domain the context states).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Cycles(u64);

impl Cycles {
    /// Creates a cycle count.
    pub fn new(n: u64) -> Self {
        Cycles(n)
    }

    /// Returns the raw cycle count.
    pub fn as_u64(self) -> u64 {
        self.0
    }

    /// Returns the raw cycle count as a floating-point number.
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }
}

impl Add for Cycles {
    type Output = Cycles;
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 + rhs.0)
    }
}

impl AddAssign for Cycles {
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 += rhs.0;
    }
}

impl Sub for Cycles {
    type Output = Cycles;
    fn sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} cycles", self.0)
    }
}

/// An injection rate expressed in flits per clock cycle per node.
///
/// The paper distinguishes between the rate seen by a *node* clock
/// (`λ_node`) and the rate seen by the *NoC* clock (`λ_noc`); both are
/// represented by this type, with the clock domain stated at the use site.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct FlitsPerCycle(f64);

impl FlitsPerCycle {
    /// Creates a rate.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is negative or not finite.
    pub fn new(rate: f64) -> Self {
        assert!(rate.is_finite() && rate >= 0.0, "rate must be non-negative and finite");
        FlitsPerCycle(rate)
    }

    /// Returns the raw value in flits per cycle.
    pub fn as_f64(self) -> f64 {
        self.0
    }

    /// Converts a rate measured against the node clock into the rate seen by
    /// the NoC clock when the NoC runs at `f_noc` and the nodes at `f_node`
    /// (Eq. (1) of the paper: `λ_noc = λ_node · F_node / F_noc`).
    pub fn to_noc_domain(self, f_node: Hertz, f_noc: Hertz) -> FlitsPerCycle {
        FlitsPerCycle::new(self.0 * f_node.as_hz() / f_noc.as_hz())
    }
}

impl fmt::Display for FlitsPerCycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.4} flits/cycle", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hertz_conversions_round_trip() {
        let f = Hertz::from_ghz(1.0);
        assert_eq!(f.as_hz(), 1.0e9);
        assert_eq!(f.as_mhz(), 1000.0);
        assert!((f.period().as_ps() - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn hertz_display_scales_unit() {
        assert_eq!(format!("{}", Hertz::from_ghz(1.0)), "1.000 GHz");
        assert_eq!(format!("{}", Hertz::from_mhz(333.0)), "333.0 MHz");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn hertz_rejects_zero() {
        let _ = Hertz::new(0.0);
    }

    #[test]
    fn hertz_clamp_respects_bounds() {
        let lo = Hertz::from_mhz(333.0);
        let hi = Hertz::from_ghz(1.0);
        assert_eq!(Hertz::from_mhz(100.0).clamp(lo, hi), lo);
        assert_eq!(Hertz::from_ghz(2.0).clamp(lo, hi), hi);
        assert_eq!(Hertz::from_mhz(500.0).clamp(lo, hi), Hertz::from_mhz(500.0));
    }

    #[test]
    fn picoseconds_arithmetic() {
        let a = Picoseconds::new(1500.0);
        let b = Picoseconds::new(500.0);
        assert_eq!((a + b).as_ps(), 2000.0);
        assert_eq!((a - b).as_ns(), 1.0);
        assert_eq!((b - a).as_ps(), 0.0, "subtraction saturates at zero");
        assert_eq!((a * 2.0).as_ps(), 3000.0);
        assert_eq!((a / 3.0).as_ps(), 500.0);
    }

    #[test]
    fn picoseconds_unit_conversions() {
        let t = Picoseconds::new(2.5e6);
        assert!((t.as_us() - 2.5).abs() < 1e-12);
        assert!((t.as_secs() - 2.5e-6).abs() < 1e-18);
    }

    #[test]
    fn cycles_arithmetic_saturates() {
        let a = Cycles::new(10);
        let b = Cycles::new(4);
        assert_eq!((a + b).as_u64(), 14);
        assert_eq!((a - b).as_u64(), 6);
        assert_eq!((b - a).as_u64(), 0);
    }

    #[test]
    fn rate_domain_conversion_matches_eq1() {
        // λ_noc = λ_node · F_node / F_noc: slowing the NoC to 1/3 of the node
        // clock triples the per-NoC-cycle rate.
        let lambda_node = FlitsPerCycle::new(0.14);
        let lambda_noc =
            lambda_node.to_noc_domain(Hertz::from_ghz(1.0), Hertz::from_mhz(333.333_333));
        assert!((lambda_noc.as_f64() - 0.42).abs() < 1e-6);
    }

    #[test]
    fn rate_display() {
        assert_eq!(format!("{}", FlitsPerCycle::new(0.25)), "0.2500 flits/cycle");
    }
}
