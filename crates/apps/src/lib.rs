//! # noc-apps — multimedia application workloads for the DVFS experiments
//!
//! Section VI of the paper evaluates the DVFS policies on two applications
//! taken from Latif's MPSoC design-space-exploration thesis: an **H.264 /
//! MPEG-4 encoder** mapped on a 4×4 mesh and a **Video Conference Encoder
//! (VCE)** — video + audio encoding plus an OFDM modulator — mapped on a 5×5
//! mesh (Fig. 9 of the paper). Each application is a directed task graph whose
//! edge weights are the number of packets exchanged per encoded frame.
//!
//! The published figure specifies the edge *weights* and the mesh sizes but
//! the scraped text does not preserve the exact vertex placement, so the
//! graphs here are documented reconstructions: every weight printed in Fig. 9
//! appears exactly once, the pipelines follow the standard encoder dataflow,
//! and heavily-communicating tasks are mapped to nearby mesh nodes. The
//! experiments only require a fixed non-uniform traffic matrix whose load
//! scales with the application speed, which this reconstruction provides.
//!
//! ```
//! use noc_apps::h264_encoder;
//! use noc_sim::TrafficSpec;
//!
//! # fn main() {
//! let app = h264_encoder();
//! assert_eq!(app.mesh_size(), (4, 4));
//! let traffic = app.traffic_matrix(1.0, 20, 0.30);
//! assert!(traffic.offered_load() > 0.0);
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod dag;
pub mod h264;
pub mod task_graph;
pub mod vce;

pub use dag::{random_task_graph, DagConfig, DagError};
pub use h264::h264_encoder;
pub use task_graph::{TaskEdge, TaskGraph, TaskGraphError, TaskNode};
pub use vce::video_conference_encoder;
