//! Empirical saturation-rate search.
//!
//! RMSD needs a target rate `λ_max` "10 % lower than the saturation rate"
//! (the paper measures 0.42 flits/cycle/node for the baseline 5×5 uniform
//! configuration). Because every micro-architectural variation of Fig. 8
//! moves the saturation point, the reproduction determines it empirically for
//! each configuration: open-loop simulations at increasing load until the
//! network stops accepting the offered traffic, refined by bisection.

use noc_sim::{NetworkConfig, NocSimulation, SyntheticTraffic, TrafficPattern, TrafficSpec};

/// How a load level is turned into a workload (synthetic rate, application
/// speed, …).
pub trait LoadFactory {
    /// Builds the traffic specification for load level `load`.
    fn traffic(&self, load: f64) -> Box<dyn TrafficSpec>;
}

impl<F> LoadFactory for F
where
    F: Fn(f64) -> Box<dyn TrafficSpec>,
{
    fn traffic(&self, load: f64) -> Box<dyn TrafficSpec> {
        self(load)
    }
}

/// Result of a saturation search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SaturationEstimate {
    /// The highest stable load parameter found.
    pub load: f64,
    /// The average per-node injection rate (flits per node cycle) offered at
    /// that load — equal to `load` for synthetic patterns, but different for
    /// application traffic where `load` is a speed factor.
    pub offered_rate: f64,
}

/// Searches for the saturation point of `net` under the workload family
/// produced by `factory`.
///
/// The network is simulated open-loop at the maximum frequency. A load level
/// is considered *stable* when, after a warm-up of half the probe budget, the
/// accepted throughput over the second half stays within 10 % of the offered
/// load and source queues remain bounded.
///
/// `max_load` bounds the search (1.0 is a safe upper bound for flit rates;
/// use larger values for application-speed searches). `cycles_per_probe`
/// controls accuracy; 20 000–50 000 cycles give a stable estimate for the
/// paper's configurations.
pub fn find_saturation_load(
    net: &NetworkConfig,
    factory: &dyn LoadFactory,
    max_load: f64,
    cycles_per_probe: u64,
    seed: u64,
) -> SaturationEstimate {
    assert!(max_load > 0.0 && max_load.is_finite(), "max_load must be positive");
    assert!(cycles_per_probe >= 1_000, "probe budget too small to be meaningful");

    let coarse_steps = 12;
    let mut last_stable = 0.0;
    let mut first_unstable = max_load;
    let mut found_unstable = false;
    for i in 1..=coarse_steps {
        let load = max_load * i as f64 / coarse_steps as f64;
        if probe_stable(net, factory, load, cycles_per_probe, seed) {
            last_stable = load;
        } else {
            first_unstable = load;
            found_unstable = true;
            break;
        }
    }
    if !found_unstable {
        let offered = factory.traffic(last_stable).offered_load();
        return SaturationEstimate { load: last_stable, offered_rate: offered };
    }
    // Bisection refinement between the last stable and first unstable loads.
    let mut lo = last_stable;
    let mut hi = first_unstable;
    for _ in 0..5 {
        let mid = 0.5 * (lo + hi);
        if probe_stable(net, factory, mid, cycles_per_probe, seed) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let offered = factory.traffic(lo).offered_load();
    SaturationEstimate { load: lo, offered_rate: offered }
}

/// Convenience wrapper: saturation injection rate (flits per node cycle) of a
/// synthetic traffic pattern on `net`.
///
/// ```no_run
/// use noc_dvfs::find_saturation_rate;
/// use noc_sim::{NetworkConfig, TrafficPattern};
///
/// let net = NetworkConfig::paper_baseline();
/// let sat = find_saturation_rate(&net, TrafficPattern::Uniform, 30_000, 1);
/// assert!(sat > 0.1 && sat < 1.0);
/// ```
pub fn find_saturation_rate(
    net: &NetworkConfig,
    pattern: TrafficPattern,
    cycles_per_probe: u64,
    seed: u64,
) -> f64 {
    let packet_length = net.packet_length();
    let factory = move |rate: f64| -> Box<dyn TrafficSpec> {
        Box::new(SyntheticTraffic::new(pattern, rate, packet_length))
    };
    find_saturation_load(net, &factory, 1.0, cycles_per_probe, seed).load
}

/// Runs one open-loop probe and decides whether the load is sustainable.
fn probe_stable(
    net: &NetworkConfig,
    factory: &dyn LoadFactory,
    load: f64,
    cycles: u64,
    seed: u64,
) -> bool {
    let traffic = factory.traffic(load);
    let offered = traffic.offered_load();
    if offered <= 0.0 {
        return true;
    }
    let mut sim = NocSimulation::new(net.clone(), traffic, seed);
    // Warm-up half, measure half.
    sim.run_cycles(cycles / 2);
    let _ = sim.take_window();
    let queued_mid = sim.queued_source_flits();
    sim.run_cycles(cycles / 2);
    let window = sim.take_window();
    let queued_end = sim.queued_source_flits();

    let throughput = window.throughput(sim.node_count());
    // Compare against the *measured* offered rate rather than the nominal
    // one: patterns such as transpose leave some nodes silent (their mapping
    // is the identity), so the nominal per-node rate overestimates the load
    // actually presented to the network.
    let measured_offered = window.node_injection_rate(sim.node_count()).max(1e-9);
    let accepts_offered = throughput >= 0.90 * measured_offered.min(offered);
    // Queue growth over the measured half indicates instability even when the
    // throughput test is borderline.
    let queue_budget = sim.node_count() * net.packet_length() * 6;
    let queues_bounded =
        queued_end <= queue_budget || queued_end <= queued_mid + queue_budget / 2;
    accepts_offered && queues_bounded
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_net() -> NetworkConfig {
        NetworkConfig::builder()
            .mesh(4, 4)
            .virtual_channels(2)
            .buffer_depth(4)
            .packet_length(5)
            .build()
            .unwrap()
    }

    #[test]
    fn low_load_probes_are_stable_and_high_load_probes_are_not() {
        let net = small_net();
        let factory = |rate: f64| -> Box<dyn TrafficSpec> {
            Box::new(SyntheticTraffic::new(TrafficPattern::Uniform, rate, 5))
        };
        assert!(probe_stable(&net, &factory, 0.05, 6_000, 1));
        assert!(!probe_stable(&net, &factory, 0.95, 6_000, 1));
    }

    #[test]
    fn saturation_rate_is_between_the_extremes() {
        let net = small_net();
        let sat = find_saturation_rate(&net, TrafficPattern::Uniform, 6_000, 3);
        assert!(sat > 0.1, "uniform saturation unexpectedly low: {sat}");
        assert!(sat < 0.95, "uniform saturation unexpectedly high: {sat}");
    }

    #[test]
    fn local_traffic_saturates_later_than_uniform_traffic() {
        let net = small_net();
        let uniform = find_saturation_rate(&net, TrafficPattern::Uniform, 6_000, 4);
        let neighbor = find_saturation_rate(&net, TrafficPattern::Neighbor, 6_000, 4);
        assert!(
            neighbor > uniform,
            "nearest-neighbor traffic ({neighbor}) must sustain more load than uniform ({uniform})"
        );
    }

    #[test]
    fn estimate_reports_offered_rate_for_load_factories() {
        let net = small_net();
        let factory = |rate: f64| -> Box<dyn TrafficSpec> {
            Box::new(SyntheticTraffic::new(TrafficPattern::Uniform, rate, 5))
        };
        let est = find_saturation_load(&net, &factory, 1.0, 6_000, 5);
        assert!((est.load - est.offered_rate).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "probe budget")]
    fn tiny_probe_budget_is_rejected()
    {
        let net = small_net();
        let _ = find_saturation_rate(&net, TrafficPattern::Uniform, 10, 1);
    }
}
