//! Fig. 10 bench: one closed-loop point per multimedia application (H.264 on
//! a 4×4 mesh, VCE on a 5×5 mesh) driven by its reconstructed traffic matrix.

use criterion::{criterion_group, criterion_main, Criterion};
use noc_apps::{h264_encoder, video_conference_encoder, TaskGraph};
use noc_dvfs::{run_operating_point, ClosedLoopConfig, DmsdConfig, PolicyKind};
use noc_sim::{NetworkConfig, TrafficSpec};
use std::time::Duration;

fn short_loop() -> ClosedLoopConfig {
    ClosedLoopConfig {
        control_period_cycles: 600,
        warmup_intervals: 2,
        measure_intervals: 3,
        max_settle_intervals: 10,
        settle_tolerance: 0.01,
    }
}

fn bench_app(c: &mut Criterion, group_name: &str, app: &TaskGraph) {
    let (w, h) = app.mesh_size();
    let net = NetworkConfig::builder().mesh(w, h).packet_length(10).build().unwrap();
    let loop_cfg = short_loop();
    let mut group = c.benchmark_group(group_name);
    group.sample_size(10).measurement_time(Duration::from_secs(4)).warm_up_time(Duration::from_secs(1));
    group.bench_function("dmsd_point_speed_0.5", |b| {
        b.iter(|| {
            let traffic: Box<dyn TrafficSpec> = Box::new(app.traffic_matrix(0.5, 10, 0.3));
            run_operating_point(
                &net,
                traffic,
                PolicyKind::Dmsd(DmsdConfig::with_target_ns(150.0)),
                &loop_cfg,
                6,
            )
        })
    });
    group.finish();
}

fn bench_fig10(c: &mut Criterion) {
    bench_app(c, "fig10_h264", &h264_encoder());
    bench_app(c, "fig10_vce", &video_conference_encoder());
}

criterion_group!(benches, bench_fig10);
criterion_main!(benches);
