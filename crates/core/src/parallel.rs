//! A small scoped-thread fork/join executor for embarrassingly parallel
//! sweeps.
//!
//! The build environment is offline, so instead of `rayon` this module
//! provides the one primitive the sweep layer needs: [`par_map`], an
//! order-preserving parallel map over a slice. Work is handed out through an
//! atomic cursor (dynamic load balancing — operating points near saturation
//! take far longer than light-load points), results carry their index back,
//! and the output is reassembled in input order, so **parallel execution is
//! bit-identical to serial execution** as long as `f` itself is
//! deterministic. Every operating point seeds its own RNG from `(seed)`
//! explicitly, so this holds across the whole experiment layer.
//!
//! Thread count comes from [`worker_threads`]: the `NOC_SWEEP_THREADS`
//! environment variable when set (`1` forces serial execution, useful for
//! parity checks), otherwise `std::thread::available_parallelism`.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of worker threads a parallel sweep will use.
///
/// Controlled by `NOC_SWEEP_THREADS` (values `< 1` are clamped to 1); falls
/// back to the machine's available parallelism.
pub fn worker_threads() -> usize {
    if let Ok(v) = std::env::var("NOC_SWEEP_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Applies `f` to every element of `items` across [`worker_threads`] scoped
/// threads and returns the results in input order.
///
/// `f` receives `(index, &item)`. With one worker (or one item) the map runs
/// inline on the calling thread — no spawn overhead for the serial case.
///
/// # Panics
///
/// Propagates panics from `f` (the scope joins all workers first).
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    par_map_with_workers(items, worker_threads(), f)
}

/// [`par_map`] with an explicit worker count (testing hook; `par_map` derives
/// the count from the environment via [`worker_threads`]).
fn par_map_with_workers<T, U, F>(items: &[T], workers: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let workers = workers.min(items.len().max(1));
    if workers <= 1 || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, item)| f(i, item)).collect();
    }

    // Dynamic work distribution: each worker repeatedly claims the next
    // unprocessed index. Results are collected per worker with their indices
    // and spliced back into input order afterwards.
    let cursor = AtomicUsize::new(0);
    let collected: Mutex<Vec<(usize, U)>> = Mutex::new(Vec::with_capacity(items.len()));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut local: Vec<(usize, U)> = Vec::new();
                loop {
                    let index = cursor.fetch_add(1, Ordering::Relaxed);
                    if index >= items.len() {
                        break;
                    }
                    local.push((index, f(index, &items[index])));
                }
                collected.lock().expect("no poisoned worker").extend(local);
            });
        }
    });

    let mut indexed = collected.into_inner().expect("all workers joined");
    indexed.sort_by_key(|(index, _)| *index);
    debug_assert_eq!(indexed.len(), items.len());
    indexed.into_iter().map(|(_, value)| value).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_preserve_input_order() {
        let items: Vec<usize> = (0..100).collect();
        let out = par_map(&items, |i, &x| {
            // Uneven work so completion order differs from input order.
            let spin = (x * 7919) % 97;
            let mut acc = 0u64;
            for k in 0..spin * 1000 {
                acc = acc.wrapping_add(k as u64);
            }
            std::hint::black_box(acc);
            (i, x * 2)
        });
        for (i, (idx, doubled)) in out.iter().enumerate() {
            assert_eq!(*idx, i);
            assert_eq!(*doubled, i * 2);
        }
    }

    #[test]
    fn matches_serial_map() {
        let items: Vec<u64> = (0..37).map(|i| i * 3 + 1).collect();
        let serial: Vec<u64> = items.iter().map(|&x| x * x + 1).collect();
        let parallel = par_map(&items, |_, &x| x * x + 1);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(&empty, |_, &x| x).is_empty());
        assert_eq!(par_map(&[42u32], |_, &x| x + 1), vec![43]);
    }

    #[test]
    fn explicit_worker_counts_agree() {
        // No env mutation here: setenv races concurrently running tests.
        // The NOC_SWEEP_THREADS override only feeds the worker count, which
        // is exercised directly through the internal hook.
        let items: Vec<usize> = (0..16).collect();
        let serial = par_map_with_workers(&items, 1, |_, &x| x * 3);
        let parallel = par_map_with_workers(&items, 4, |_, &x| x * 3);
        assert_eq!(serial, parallel);
        assert_eq!(serial.len(), 16);
    }
}
