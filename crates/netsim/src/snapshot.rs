//! Versioned full-fidelity simulation checkpoints.
//!
//! A [`SimSnapshot`] captures **every piece of mutable simulation state** —
//! router pipelines and VC buffers, delay-channel contents, source/sink
//! queues and counters, all RNG streams (traffic and hazard), the dual clock
//! and per-island accumulators, gating state machines and due-heaps, the
//! fault-process position, and the in-progress stats windows — as a
//! self-describing binary blob with a magic/version/config-fingerprint
//! header.
//!
//! The contract is **bit-identity**: a run paused with
//! [`NocSimulation::snapshot`](crate::NocSimulation::snapshot) and later
//! resumed with [`NocSimulation::restore`](crate::NocSimulation::restore)
//! produces exactly the windows, counters and RNG draws of a run that never
//! paused — under both the sparse and the dense engine, with event-horizon
//! skipping on or off.
//!
//! What is deliberately **not** serialized:
//!
//! * Configuration-derived structure (topology, neighbour tables, island
//!   masks, channel latencies): a snapshot restores **into a simulation
//!   built from the same [`NetworkConfig`]**; the header carries a config
//!   fingerprint and restore fails with [`SnapshotError::ConfigMismatch`]
//!   when it disagrees.
//! * Engine-selection flags (dense stepping, event skipping, parallel
//!   islands) and the `skipped_cycles` diagnostic: engine choice is a
//!   property of the *host* process, not of the simulated state — the
//!   bit-identity contract makes them interchangeable.
//! * Derived acceleration state (sparse worklists, channel timing wheels):
//!   rebuilt from the restored ground truth, exactly like the dense→sparse
//!   engine switch rebuilds them mid-run.
//!
//! The payload encoding is a hand-rolled little-endian binary codec
//! ([`SnapWriter`] / [`SnapReader`]); the workspace serde shim is a marker
//! crate with no wire format, so the snapshot module owns its own. Floats
//! travel as raw IEEE-754 bits, which is what makes the restored
//! clock/accumulator arithmetic bit-exact.

use std::fmt;

use crate::config::NetworkConfig;

/// Magic number leading every serialized snapshot ("NOCSNAP" padded).
pub const SNAP_MAGIC: u64 = 0x4E4F_4353_4E41_5031;

/// Current snapshot format version. Bumped on any layout change; old
/// versions are rejected rather than misread. Version 2 added the tenant
/// accounting section (partition map + per-tenant windows).
pub const SNAP_VERSION: u32 = 2;

/// Errors raised while decoding or applying a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SnapshotError {
    /// The byte stream ended before the expected field.
    UnexpectedEof,
    /// The leading magic number is wrong — not a snapshot at all.
    BadMagic,
    /// The snapshot was written by an unknown (newer or retired) format
    /// version.
    UnsupportedVersion(u32),
    /// The snapshot was taken from a simulation built with a different
    /// [`NetworkConfig`] than the one being restored into.
    ConfigMismatch,
    /// A decoded value is structurally impossible (bad tag, out-of-range
    /// index, inconsistent length).
    Corrupt(&'static str),
    /// Decoding finished with unread bytes left over.
    TrailingBytes,
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::UnexpectedEof => write!(f, "snapshot truncated: unexpected end of data"),
            SnapshotError::BadMagic => write!(f, "not a simulation snapshot (bad magic number)"),
            SnapshotError::UnsupportedVersion(v) => {
                write!(f, "unsupported snapshot format version {v} (expected {SNAP_VERSION})")
            }
            SnapshotError::ConfigMismatch => {
                write!(f, "snapshot was taken under a different network configuration")
            }
            SnapshotError::Corrupt(what) => write!(f, "corrupt snapshot field: {what}"),
            SnapshotError::TrailingBytes => write!(f, "snapshot has trailing bytes after decode"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// A serialized simulation checkpoint.
///
/// Produced by [`NocSimulation::snapshot`](crate::NocSimulation::snapshot);
/// consumed by [`NocSimulation::restore`](crate::NocSimulation::restore).
/// The byte form ([`to_bytes`](Self::to_bytes) /
/// [`from_bytes`](Self::from_bytes)) is what a checkpoint file contains.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimSnapshot {
    version: u32,
    config_fingerprint: u64,
    payload: Vec<u8>,
}

impl SimSnapshot {
    /// Wraps a freshly encoded payload under the current format version.
    pub(crate) fn new(config_fingerprint: u64, payload: Vec<u8>) -> Self {
        SimSnapshot { version: SNAP_VERSION, config_fingerprint, payload }
    }

    /// Format version this snapshot was written under.
    pub fn version(&self) -> u32 {
        self.version
    }

    /// Fingerprint of the [`NetworkConfig`] the snapshot belongs to.
    pub fn config_fingerprint(&self) -> u64 {
        self.config_fingerprint
    }

    /// Borrow of the raw state payload (header excluded).
    pub(crate) fn payload(&self) -> &[u8] {
        &self.payload
    }

    /// Size of the state payload in bytes (header excluded) — useful for
    /// overhead accounting and for locating the payload inside
    /// [`to_bytes`](Self::to_bytes) output.
    pub fn payload_len(&self) -> usize {
        self.payload.len()
    }

    /// Serializes the snapshot (header + payload) into a byte vector
    /// suitable for writing to a checkpoint file.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(24 + self.payload.len());
        out.extend_from_slice(&SNAP_MAGIC.to_le_bytes());
        out.extend_from_slice(&self.version.to_le_bytes());
        out.extend_from_slice(&self.config_fingerprint.to_le_bytes());
        out.extend_from_slice(&(self.payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&self.payload);
        out
    }

    /// Parses a snapshot previously produced by [`to_bytes`](Self::to_bytes),
    /// validating magic, version and payload length.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let mut r = SnapReader::new(bytes);
        if r.read_u64()? != SNAP_MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = r.read_u32()?;
        if version != SNAP_VERSION {
            return Err(SnapshotError::UnsupportedVersion(version));
        }
        let config_fingerprint = r.read_u64()?;
        let len = r.read_u64()? as usize;
        let payload = r.read_bytes(len)?.to_vec();
        r.finish()?;
        Ok(SimSnapshot { version, config_fingerprint, payload })
    }
}

/// FNV-1a fingerprint of a [`NetworkConfig`], used to reject restores into
/// a differently configured simulation.
///
/// The hash runs over the config's complete `Debug` rendering, which covers
/// every builder knob (topology, VCs, depths, latencies, frequency range,
/// regions, gating, routing, faults) without the snapshot module having to
/// enumerate fields — a new config knob automatically extends the
/// fingerprint.
pub fn config_fingerprint(cfg: &NetworkConfig) -> u64 {
    let rendered = format!("{cfg:?}");
    let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
    for byte in rendered.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Little-endian binary encoder for snapshot payloads.
///
/// Each stateful module writes its own fields through this writer; the
/// driver brackets sections with [`put_tag`](Self::put_tag) markers so a
/// desynchronised decode fails loudly instead of misinterpreting bytes.
#[derive(Debug, Default)]
pub struct SnapWriter {
    buf: Vec<u8>,
}

impl SnapWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        SnapWriter { buf: Vec::new() }
    }

    /// Consumes the writer and returns the encoded bytes.
    pub fn into_vec(self) -> Vec<u8> {
        self.buf
    }

    /// Appends a single byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u32` in little-endian order.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64` in little-endian order.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` widened to `u64` (the format is 64-bit on every
    /// host).
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Appends a boolean as one byte (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(u8::from(v));
    }

    /// Appends an `f64` as its raw IEEE-754 bit pattern, preserving the
    /// value exactly (including signed zeros and NaN payloads).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends an `Option<u64>` as a presence byte plus the value.
    pub fn put_opt_u64(&mut self, v: Option<u64>) {
        match v {
            Some(x) => {
                self.put_bool(true);
                self.put_u64(x);
            }
            None => self.put_bool(false),
        }
    }

    /// Appends a section marker byte; [`SnapReader::expect_tag`] checks it.
    pub fn put_tag(&mut self, tag: u8) {
        self.put_u8(tag);
    }
}

/// Little-endian binary decoder for snapshot payloads.
#[derive(Debug)]
pub struct SnapReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SnapReader<'a> {
    /// Wraps a byte slice for decoding.
    pub fn new(buf: &'a [u8]) -> Self {
        SnapReader { buf, pos: 0 }
    }

    fn read_bytes(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self.pos.checked_add(n).ok_or(SnapshotError::UnexpectedEof)?;
        if end > self.buf.len() {
            return Err(SnapshotError::UnexpectedEof);
        }
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    /// Reads a single byte.
    pub fn read_u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.read_bytes(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn read_u32(&mut self) -> Result<u32, SnapshotError> {
        let b = self.read_bytes(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn read_u64(&mut self) -> Result<u64, SnapshotError> {
        let b = self.read_bytes(8)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    /// Reads a `usize` written by [`SnapWriter::put_usize`], rejecting
    /// values that do not fit the host width.
    pub fn read_usize(&mut self) -> Result<usize, SnapshotError> {
        usize::try_from(self.read_u64()?).map_err(|_| SnapshotError::Corrupt("usize overflow"))
    }

    /// Reads a boolean byte, rejecting anything other than 0 or 1.
    pub fn read_bool(&mut self) -> Result<bool, SnapshotError> {
        match self.read_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(SnapshotError::Corrupt("boolean byte")),
        }
    }

    /// Reads an `f64` from its raw bit pattern.
    pub fn read_f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.read_u64()?))
    }

    /// Reads an `Option<u64>` written by [`SnapWriter::put_opt_u64`].
    pub fn read_opt_u64(&mut self) -> Result<Option<u64>, SnapshotError> {
        if self.read_bool()? {
            Ok(Some(self.read_u64()?))
        } else {
            Ok(None)
        }
    }

    /// Checks a section marker written by [`SnapWriter::put_tag`].
    pub fn expect_tag(&mut self, tag: u8) -> Result<(), SnapshotError> {
        if self.read_u8()? == tag {
            Ok(())
        } else {
            Err(SnapshotError::Corrupt("section tag mismatch"))
        }
    }

    /// Asserts that every byte has been consumed.
    pub fn finish(&self) -> Result<(), SnapshotError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(SnapshotError::TrailingBytes)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codec_round_trips_every_primitive() {
        let mut w = SnapWriter::new();
        w.put_u8(0xAB);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 5);
        w.put_usize(123_456);
        w.put_bool(true);
        w.put_bool(false);
        w.put_f64(-0.0);
        w.put_f64(std::f64::consts::PI);
        w.put_opt_u64(Some(42));
        w.put_opt_u64(None);
        w.put_tag(7);
        let bytes = w.into_vec();
        let mut r = SnapReader::new(&bytes);
        assert_eq!(r.read_u8().unwrap(), 0xAB);
        assert_eq!(r.read_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.read_u64().unwrap(), u64::MAX - 5);
        assert_eq!(r.read_usize().unwrap(), 123_456);
        assert!(r.read_bool().unwrap());
        assert!(!r.read_bool().unwrap());
        let neg_zero = r.read_f64().unwrap();
        assert_eq!(neg_zero.to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.read_f64().unwrap(), std::f64::consts::PI);
        assert_eq!(r.read_opt_u64().unwrap(), Some(42));
        assert_eq!(r.read_opt_u64().unwrap(), None);
        r.expect_tag(7).unwrap();
        r.finish().unwrap();
    }

    #[test]
    fn truncated_reads_fail_cleanly() {
        let mut w = SnapWriter::new();
        w.put_u64(9);
        let bytes = w.into_vec();
        let mut r = SnapReader::new(&bytes[..4]);
        assert_eq!(r.read_u64(), Err(SnapshotError::UnexpectedEof));
    }

    #[test]
    fn bad_bools_and_tags_are_corrupt() {
        let bytes = [3u8, 5u8];
        let mut r = SnapReader::new(&bytes);
        assert!(matches!(r.read_bool(), Err(SnapshotError::Corrupt(_))));
        assert!(matches!(r.expect_tag(9), Err(SnapshotError::Corrupt(_))));
    }

    #[test]
    fn snapshot_container_round_trips() {
        let snap = SimSnapshot::new(0x1234_5678_9ABC_DEF0, vec![1, 2, 3, 4, 5]);
        let bytes = snap.to_bytes();
        let back = SimSnapshot::from_bytes(&bytes).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.version(), SNAP_VERSION);
        assert_eq!(back.config_fingerprint(), 0x1234_5678_9ABC_DEF0);
    }

    #[test]
    fn container_rejects_bad_magic_version_and_truncation() {
        let snap = SimSnapshot::new(7, vec![9; 16]);
        let mut bytes = snap.to_bytes();
        assert_eq!(
            SimSnapshot::from_bytes(&bytes[..bytes.len() - 1]),
            Err(SnapshotError::UnexpectedEof)
        );
        bytes[0] ^= 0xFF;
        assert_eq!(SimSnapshot::from_bytes(&bytes), Err(SnapshotError::BadMagic));
        let mut versioned = snap.to_bytes();
        versioned[8] = 0xEE;
        assert!(matches!(
            SimSnapshot::from_bytes(&versioned),
            Err(SnapshotError::UnsupportedVersion(_))
        ));
    }

    #[test]
    fn fingerprint_distinguishes_configs() {
        let a = NetworkConfig::builder()
            .mesh(4, 4)
            .virtual_channels(2)
            .buffer_depth(4)
            .packet_length(4)
            .build()
            .unwrap();
        let b = NetworkConfig::builder()
            .mesh(4, 4)
            .virtual_channels(2)
            .buffer_depth(8)
            .packet_length(4)
            .build()
            .unwrap();
        assert_eq!(config_fingerprint(&a), config_fingerprint(&a.clone()));
        assert_ne!(config_fingerprint(&a), config_fingerprint(&b));
    }
}
