//! Packet ejection and completion records.
//!
//! The sink is where a packet's life ends: when its tail flit leaves the
//! network through a router's local output port, the sink produces a
//! [`PacketRecord`] holding both the latency in NoC cycles and the delay in
//! wall-clock time — the two quantities whose divergence under DVFS is the
//! central topic of the paper.

use crate::flit::Flit;
use crate::stats::PacketRecord;

/// Reassembles packets at their destinations and emits completion records.
///
/// # Performance
///
/// The sink is allocation-free and O(1) per flit: wormhole routing delivers a
/// packet's flits in order, so the tail flit's `index_in_packet + 1` *is* the
/// packet's flit count and no per-packet map is needed. Packets in flight are
/// tracked with two flat counters (heads seen vs tails seen).
#[derive(Debug, Default)]
pub struct Sink {
    packets_started: u64,
    packets_completed: u64,
    flits_received: u64,
}

impl Sink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Sink::default()
    }

    /// Number of packets fully received.
    pub fn packets_completed(&self) -> u64 {
        self.packets_completed
    }

    /// Number of flits received (including those of incomplete packets).
    pub fn flits_received(&self) -> u64 {
        self.flits_received
    }

    /// Number of packets that have started arriving but are not complete.
    pub fn incomplete_packets(&self) -> usize {
        (self.packets_started - self.packets_completed) as usize
    }

    /// Whether any packet is partially received (head seen, tail pending).
    ///
    /// Part of the network quiescence contract: a drained network must have
    /// no partially reassembled packets — every head that entered a sink has
    /// been followed by its tail. The sparse simulation core's
    /// [`NocSimulation::is_quiescent`](crate::NocSimulation::is_quiescent)
    /// implies this (a missing tail would still be buffered or in flight).
    pub fn has_partial_packets(&self) -> bool {
        self.packets_started != self.packets_completed
    }

    /// Accepts an ejected flit. Returns a completion record when the flit was
    /// the tail of its packet.
    ///
    /// `eject_cycle` and `eject_time_ps` are the NoC cycle and wall-clock time
    /// at which the flit left the network.
    #[inline]
    pub fn accept(&mut self, flit: &Flit, eject_cycle: u64, eject_time_ps: f64) -> Option<PacketRecord> {
        self.flits_received += 1;
        if flit.kind.is_head() {
            self.packets_started += 1;
        }
        if flit.kind.is_tail() {
            self.packets_completed += 1;
            Some(PacketRecord {
                packet_id: flit.packet_id,
                src: flit.src(),
                dst: flit.dst(),
                flits: flit.index_in_packet as usize + 1,
                latency_cycles: eject_cycle.saturating_sub(flit.creation_cycle),
                delay_ps: (eject_time_ps - flit.creation_time_ps).max(0.0),
                hops: flit.hops as u32,
            })
        } else {
            None
        }
    }
}

#[cfg(feature = "snapshot")]
impl Sink {
    /// Encodes the reassembly counters for a checkpoint.
    pub(crate) fn save_state(&self, w: &mut crate::snapshot::SnapWriter) {
        w.put_u64(self.packets_started);
        w.put_u64(self.packets_completed);
        w.put_u64(self.flits_received);
    }

    /// Replaces the counters with the checkpointed ones.
    pub(crate) fn load_state(
        &mut self,
        r: &mut crate::snapshot::SnapReader<'_>,
    ) -> Result<(), crate::snapshot::SnapshotError> {
        use crate::snapshot::SnapshotError;
        let started = r.read_u64()?;
        let completed = r.read_u64()?;
        if completed > started {
            return Err(SnapshotError::Corrupt("sink packet counters"));
        }
        self.packets_started = started;
        self.packets_completed = completed;
        self.flits_received = r.read_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flit::{Flit, PacketId};

    #[test]
    fn completion_only_on_tail() {
        let mut sink = Sink::new();
        let flits = Flit::packet(PacketId::new(1), 0, 5, 3, 100, 1000.0);
        assert!(sink.accept(&flits[0], 130, 1300.0).is_none());
        assert!(sink.accept(&flits[1], 131, 1400.0).is_none());
        let rec = sink.accept(&flits[2], 132, 1500.0).expect("tail completes the packet");
        assert_eq!(rec.flits, 3);
        assert_eq!(rec.latency_cycles, 32);
        assert!((rec.delay_ps - 500.0).abs() < 1e-9);
        assert_eq!(sink.packets_completed(), 1);
        assert_eq!(sink.incomplete_packets(), 0);
    }

    #[test]
    fn single_flit_packets_complete_immediately() {
        let mut sink = Sink::new();
        let flits = Flit::packet(PacketId::new(7), 2, 3, 1, 10, 10.0);
        let rec = sink.accept(&flits[0], 15, 25.0).unwrap();
        assert_eq!(rec.flits, 1);
        assert_eq!(rec.latency_cycles, 5);
    }

    #[test]
    fn interleaved_packets_are_tracked_independently() {
        let mut sink = Sink::new();
        let a = Flit::packet(PacketId::new(1), 0, 1, 2, 0, 0.0);
        let b = Flit::packet(PacketId::new(2), 3, 1, 2, 0, 0.0);
        assert!(sink.accept(&a[0], 10, 0.0).is_none());
        assert!(sink.accept(&b[0], 11, 0.0).is_none());
        assert_eq!(sink.incomplete_packets(), 2);
        assert!(sink.has_partial_packets());
        assert!(sink.accept(&b[1], 12, 0.0).is_some());
        assert!(sink.accept(&a[1], 13, 0.0).is_some());
        assert_eq!(sink.packets_completed(), 2);
        assert_eq!(sink.flits_received(), 4);
        assert!(!sink.has_partial_packets());
    }

    #[test]
    fn delay_never_negative() {
        let mut sink = Sink::new();
        let flits = Flit::packet(PacketId::new(1), 0, 1, 1, 100, 5000.0);
        // Pathological clock input: ejection time before creation time.
        let rec = sink.accept(&flits[0], 100, 1000.0).unwrap();
        assert_eq!(rec.delay_ps, 0.0);
    }
}
