//! Quickstart: compare the three DVFS policies on one operating point.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Runs the paper-baseline 5×5 mesh under uniform traffic at a 0.2
//! flits/cycle/node injection rate — the load at which the paper quotes its
//! headline numbers — once per policy, and prints the delay/power trade-off.

use noc_dvfs_repro::dvfs::{
    run_operating_point, ClosedLoopConfig, DmsdConfig, PolicyKind, RmsdConfig,
};
use noc_dvfs_repro::sim::{NetworkConfig, SyntheticTraffic, TrafficPattern, TrafficSpec};

fn main() {
    let net = NetworkConfig::paper_baseline();
    let rate = 0.20;
    // The paper sets lambda_max 10% below the measured saturation rate
    // (~0.42 flits/cycle/node for this configuration).
    let lambda_max = 0.42;
    let loop_cfg = ClosedLoopConfig::quick();

    let make_traffic = |rate: f64| -> Box<dyn TrafficSpec> {
        Box::new(SyntheticTraffic::new(TrafficPattern::Uniform, rate, net.packet_length()))
    };

    println!("Rate-based vs delay-based DVFS, uniform 5x5 mesh, injection rate {rate}");
    println!(
        "{:>10} {:>12} {:>12} {:>12} {:>10}",
        "policy", "delay (ns)", "power (mW)", "freq (GHz)", "Vdd (V)"
    );
    let policies = [
        PolicyKind::NoDvfs,
        PolicyKind::Rmsd(RmsdConfig::with_lambda_max(lambda_max)),
        PolicyKind::Dmsd(DmsdConfig::with_target_ns(150.0)),
    ];
    let mut results = Vec::new();
    for policy in policies {
        let point = run_operating_point(&net, make_traffic(rate), policy, &loop_cfg, 2015);
        println!(
            "{:>10} {:>12.1} {:>12.1} {:>12.3} {:>10.3}",
            point.policy, point.avg_delay_ns, point.power_mw, point.avg_frequency_ghz, point.avg_vdd
        );
        results.push(point);
    }

    let baseline = &results[0];
    let rmsd = &results[1];
    let dmsd = &results[2];
    println!();
    println!(
        "RMSD saves {:.0}% of the no-DVFS power but multiplies the delay by {:.1}x.",
        100.0 * (1.0 - rmsd.power_mw / baseline.power_mw),
        rmsd.avg_delay_ns / baseline.avg_delay_ns
    );
    println!(
        "DMSD spends {:.0}% more power than RMSD yet cuts its delay by {:.1}x — the paper's \
         better power-delay trade-off.",
        100.0 * (dmsd.power_mw / rmsd.power_mw - 1.0),
        rmsd.avg_delay_ns / dmsd.avg_delay_ns
    );
}
