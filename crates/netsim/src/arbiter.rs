//! Round-robin arbiters used by the allocation stages.

/// A work-conserving round-robin arbiter over `n` requesters.
///
/// The arbiter grants the requesting input closest (in circular order) to the
/// position after the last granted input, which provides strong fairness — the
/// same scheme used by the separable allocators of the reference router.
#[derive(Debug, Clone)]
pub struct RoundRobinArbiter {
    size: usize,
    next_priority: usize,
}

impl RoundRobinArbiter {
    /// Creates an arbiter over `size` requesters.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    pub fn new(size: usize) -> Self {
        assert!(size > 0, "arbiter must have at least one requester");
        RoundRobinArbiter { size, next_priority: 0 }
    }

    /// Number of requesters.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Grants one of the requesting inputs, if any, and rotates the priority
    /// pointer past the winner.
    ///
    /// `requests[i] == true` means requester `i` wants a grant.
    ///
    /// # Panics
    ///
    /// Panics if `requests.len() != self.size()`.
    pub fn arbitrate(&mut self, requests: &[bool]) -> Option<usize> {
        assert_eq!(requests.len(), self.size, "request vector size mismatch");
        for offset in 0..self.size {
            let candidate = (self.next_priority + offset) % self.size;
            if requests[candidate] {
                self.next_priority = (candidate + 1) % self.size;
                return Some(candidate);
            }
        }
        None
    }

    /// Grants among requesters without rotating the priority pointer.
    ///
    /// Useful for "speculative" queries where the caller may not accept the
    /// grant; call [`commit`](Self::commit) to rotate afterwards.
    pub fn peek(&self, requests: &[bool]) -> Option<usize> {
        assert_eq!(requests.len(), self.size, "request vector size mismatch");
        (0..self.size)
            .map(|offset| (self.next_priority + offset) % self.size)
            .find(|&candidate| requests[candidate])
    }

    /// Like [`peek`](Self::peek) but the request vector is a bit mask
    /// (bit `i` set means requester `i` wants a grant); avoids building a
    /// slice on the allocator's hot path.
    ///
    /// # Panics
    ///
    /// Panics if the arbiter has more than 64 requesters.
    pub fn peek_mask(&self, requests: u64) -> Option<usize> {
        assert!(self.size <= 64, "mask-based arbitration supports at most 64 requesters");
        let valid = if self.size == 64 { u64::MAX } else { (1u64 << self.size) - 1 };
        let requests = requests & valid;
        if requests == 0 {
            return None;
        }
        // Round-robin in two bit operations: first requester at or after the
        // priority pointer, else wrap to the lowest requester.
        let at_or_after = requests & !((1u64 << self.next_priority) - 1);
        let winner =
            if at_or_after != 0 { at_or_after.trailing_zeros() } else { requests.trailing_zeros() };
        Some(winner as usize)
    }

    /// Rotates the priority pointer past `winner`.
    pub fn commit(&mut self, winner: usize) {
        assert!(winner < self.size, "winner index out of range");
        self.next_priority = (winner + 1) % self.size;
    }
}

#[cfg(feature = "snapshot")]
impl RoundRobinArbiter {
    /// Encodes the priority pointer (the arbiter's only mutable state) for a
    /// checkpoint.
    pub(crate) fn save_state(&self, w: &mut crate::snapshot::SnapWriter) {
        w.put_usize(self.next_priority);
    }

    /// Restores the priority pointer from a checkpoint.
    pub(crate) fn load_state(
        &mut self,
        r: &mut crate::snapshot::SnapReader<'_>,
    ) -> Result<(), crate::snapshot::SnapshotError> {
        let next = r.read_usize()?;
        if next >= self.size {
            return Err(crate::snapshot::SnapshotError::Corrupt("arbiter priority"));
        }
        self.next_priority = next;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grants_only_requesting_inputs() {
        let mut arb = RoundRobinArbiter::new(4);
        assert_eq!(arb.arbitrate(&[false, false, true, false]), Some(2));
        assert_eq!(arb.arbitrate(&[false, false, false, false]), None);
    }

    #[test]
    fn round_robin_is_fair_under_full_load() {
        let mut arb = RoundRobinArbiter::new(3);
        let all = [true, true, true];
        let mut grants = Vec::new();
        for _ in 0..6 {
            grants.push(arb.arbitrate(&all).unwrap());
        }
        assert_eq!(grants, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn priority_rotates_past_winner() {
        let mut arb = RoundRobinArbiter::new(4);
        assert_eq!(arb.arbitrate(&[true, false, false, true]), Some(0));
        // After granting 0 the pointer moves to 1, so requester 3 wins next.
        assert_eq!(arb.arbitrate(&[true, false, false, true]), Some(3));
        assert_eq!(arb.arbitrate(&[true, false, false, true]), Some(0));
    }

    #[test]
    fn peek_does_not_rotate() {
        let mut arb = RoundRobinArbiter::new(2);
        assert_eq!(arb.peek(&[true, true]), Some(0));
        assert_eq!(arb.peek(&[true, true]), Some(0));
        arb.commit(0);
        assert_eq!(arb.peek(&[true, true]), Some(1));
    }

    #[test]
    fn mask_and_slice_peek_agree() {
        let mut arb = RoundRobinArbiter::new(6);
        let slice = [false, true, false, true, false, true];
        let mask = 0b101010u64;
        for _ in 0..10 {
            assert_eq!(arb.peek(&slice), arb.peek_mask(mask));
            let winner = arb.peek_mask(mask).unwrap();
            arb.commit(winner);
        }
        assert_eq!(arb.peek_mask(0), None);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn wrong_request_size_panics() {
        let mut arb = RoundRobinArbiter::new(3);
        let _ = arb.arbitrate(&[true, false]);
    }

    #[test]
    #[should_panic(expected = "at least one requester")]
    fn zero_size_rejected() {
        let _ = RoundRobinArbiter::new(0);
    }

    #[test]
    fn starvation_freedom_over_long_run() {
        // Two persistent requesters must each win about half the grants.
        let mut arb = RoundRobinArbiter::new(5);
        let requests = [true, false, true, false, false];
        let mut wins = [0usize; 5];
        for _ in 0..1000 {
            let w = arb.arbitrate(&requests).unwrap();
            wins[w] += 1;
        }
        assert_eq!(wins[0], 500);
        assert_eq!(wins[2], 500);
        assert_eq!(wins[1] + wins[3] + wins[4], 0);
    }
}
