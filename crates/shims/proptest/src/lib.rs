//! Offline stand-in for `proptest`.
//!
//! Provides deterministic random-sampling property tests: every `#[test]`
//! inside [`proptest!`] runs `ProptestConfig::cases` iterations with inputs
//! drawn from [`Strategy`](strategy::Strategy) values seeded per case
//! index. No shrinking is
//! performed — a failing case panics with the sampled inputs visible in the
//! assertion message, which is enough for a fixed deterministic corpus.

#![forbid(unsafe_code)]

/// Strategy combinators and sampling.
pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A source of random values of one type (`proptest::strategy::Strategy`).
    pub trait Strategy {
        /// The type of the generated values.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy producing one fixed value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn sample(&self, rng: &mut StdRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Uniform choice among several strategies (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> std::fmt::Debug for Union<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "Union({} options)", self.options.len())
        }
    }

    impl<T> Union<T> {
        /// Builds a union over the given options.
        ///
        /// # Panics
        ///
        /// Panics if `options` is empty.
        pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            let idx = rng.gen_range(0..self.options.len());
            self.options[idx].sample(rng)
        }
    }

    /// Boxes a strategy for storage in a [`Union`].
    pub fn boxed<T, S: Strategy<Value = T> + 'static>(s: S) -> Box<dyn Strategy<Value = T>> {
        Box::new(s)
    }

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            self.as_ref().sample(rng)
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut StdRng) -> f64 {
            rng.gen_range(self.clone())
        }
    }

    impl Strategy for Range<usize> {
        type Value = usize;
        fn sample(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl Strategy for Range<u64> {
        type Value = u64;
        fn sample(&self, rng: &mut StdRng) -> u64 {
            rng.gen_range(self.start as usize..self.end as usize) as u64
        }
    }

    impl Strategy for RangeInclusive<usize> {
        type Value = usize;
        fn sample(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(*self.start()..*self.end() + 1)
        }
    }

    impl Strategy for RangeInclusive<u64> {
        type Value = u64;
        fn sample(&self, rng: &mut StdRng) -> u64 {
            rng.gen_range(*self.start() as usize..*self.end() as usize + 1) as u64
        }
    }

    macro_rules! tuple_strategy {
        ($($s:ident / $idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(S0 / 0, S1 / 1);
    tuple_strategy!(S0 / 0, S1 / 1, S2 / 2);
    tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3);
    tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3, S4 / 4);
    tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3, S4 / 4, S5 / 5);
}

/// Collection strategies (`proptest::collection`).
pub mod prop {
    /// `proptest::collection` subset.
    pub mod collection {
        use crate::strategy::Strategy;
        use rand::rngs::StdRng;
        use rand::Rng;
        use std::ops::Range;

        /// Strategy producing `Vec`s with lengths drawn from a range.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            len: Range<usize>,
        }

        /// Generates vectors of `element` samples with a length in `len`.
        pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
            assert!(len.start < len.end, "vec length range must be non-empty");
            VecStrategy { element, len }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
                let n = rng.gen_range(self.len.clone());
                (0..n).map(|_| self.element.sample(rng)).collect()
            }
        }
    }
}

/// Test-runner configuration (`proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of sampled cases per property.
    pub cases: u32,
    /// Unused by the shim (kept so struct-update syntax compiles).
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    /// 64 cases, overridable through the `PROPTEST_CASES` environment
    /// variable — the knob `scripts/ci.sh` uses to pin the CI case budget
    /// (the per-case seeds are fixed regardless, so runs are reproducible).
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.trim().parse::<u32>().ok())
            .filter(|&n| n > 0)
            .unwrap_or(64);
        ProptestConfig { cases, max_shrink_iters: 0 }
    }
}

/// Everything a property-test file imports.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Uniform choice among the listed strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($s)),+])
    };
}

/// Declares deterministic sampling-based property tests.
///
/// Each case `i` seeds its own RNG from the case index, so runs are fully
/// reproducible and independent of execution order.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run $cfg; $($rest)*);
    };
    (@run $cfg:expr; $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases as u64 {
                    let mut prop_rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(
                        0x5EED_0000_0000_0000 ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    );
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut prop_rng);)+
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run $crate::ProptestConfig::default(); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn ranges_stay_in_bounds(x in 1.0f64..2.0, n in 3usize..7, v in prop::collection::vec(0.0f64..1.0, 1..5)) {
            prop_assert!((1.0..2.0).contains(&x));
            prop_assert!((3..7).contains(&n));
            prop_assert!(!v.is_empty() && v.len() < 5);
        }

        #[test]
        fn oneof_and_map_compose(k in prop_oneof![Just(1usize), Just(2usize)], m in (1usize..3, 2usize..4).prop_map(|(a, b)| a * b)) {
            prop_assert!(k == 1 || k == 2);
            prop_assert!((2..12).contains(&m));
        }
    }
}
