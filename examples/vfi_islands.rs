//! Voltage-frequency islands end to end: a quadrant-partitioned torus under
//! bursty traffic with one PI (DMSD) controller per island.
//!
//! ```text
//! cargo run --release --example vfi_islands [--compare]
//! ```
//!
//! The default run builds a 4×4 **torus** split into **four
//! voltage-frequency islands** (quadrants), drives it with **bursty
//! hotspot** traffic — the hotspot sits in one quadrant, so the islands see
//! very different loads — and runs an independent **PI delay controller
//! (DMSD)** per island. It prints the aggregate operating point and, per
//! island, the frequency residency the power model accumulated: where each
//! island's clock actually spent its time.
//!
//! With `--compare` it additionally runs the same scenario under global
//! DVFS (one island) and under per-island RMSD, showing how the partition
//! lets the lightly loaded quadrants slow down while the hotspot quadrant
//! keeps its frequency up.

use noc_dvfs_repro::dvfs::island::{run_operating_point_islands, IslandOperatingPointResult};
use noc_dvfs_repro::dvfs::scenario::Scenario;
use noc_dvfs_repro::dvfs::{ClosedLoopConfig, DmsdConfig, PolicyKind, RmsdConfig};
use noc_dvfs_repro::sim::{NetworkConfig, RegionLayout, TopologyKind, TrafficPattern};

fn base_net() -> NetworkConfig {
    NetworkConfig::builder()
        .mesh(4, 4)
        .virtual_channels(2)
        .buffer_depth(4)
        .packet_length(5)
        .build()
        .expect("base configuration is valid")
}

fn print_point(label: &str, point: &IslandOperatingPointResult) {
    let agg = &point.aggregate;
    println!("\n=== {label} ===");
    println!(
        "aggregate: {:.1} mW ({:.1} dyn + {:.1} stat), delay {:.1} ns, \
         node-weighted avg frequency {:.3} GHz, {} packets",
        agg.power_mw,
        agg.dynamic_power_mw,
        agg.static_power_mw,
        agg.avg_delay_ns,
        agg.avg_frequency_ghz,
        agg.packets_delivered,
    );
    println!(
        "{:>7} {:>6} {:>11} {:>9} {:>11} {:>11} {:>10}",
        "island", "nodes", "freq (GHz)", "vdd (V)", "power (mW)", "rate (f/nc)", "delay (ns)"
    );
    for s in &point.islands {
        println!(
            "{:>7} {:>6} {:>11.3} {:>9.3} {:>11.2} {:>11.4} {:>10.1}",
            s.island,
            s.nodes,
            s.residency.avg_frequency_ghz(),
            s.residency.avg_vdd(),
            s.residency.avg_power_mw(),
            s.measured_rate,
            s.avg_delay_ns,
        );
    }
    for s in &point.islands {
        let levels: Vec<String> = s
            .residency
            .levels()
            .iter()
            .map(|l| {
                format!(
                    "{:.0} MHz: {:.0}%",
                    l.frequency_hz / 1.0e6,
                    100.0 * l.wall_ps / s.residency.wall_ps
                )
            })
            .collect();
        println!("island {} residency — {}", s.island, levels.join(", "));
    }
    println!(
        "frequency spread across islands: {:.3} GHz",
        point.frequency_spread_ghz()
    );
}

fn main() {
    let compare = std::env::args().any(|a| a == "--compare");
    let base = base_net();
    let loop_cfg = ClosedLoopConfig::quick();
    let load = 0.10;
    let seed = 2015;

    // Torus + hotspot + bursty + quadrant islands: the hotspot node sits in
    // one quadrant, so per-island control has real asymmetry to exploit.
    let scenario = Scenario::new(TopologyKind::Torus, TrafficPattern::Hotspot)
        .bursty()
        .islands(RegionLayout::Quadrants);
    let net = scenario.network(&base).expect("scenario is valid on the 4x4 base");
    println!(
        "scenario {} — {} islands of {:?} nodes",
        scenario.label(),
        net.region_map().island_count(),
        net.region_map().node_counts(),
    );

    let dmsd = PolicyKind::Dmsd(DmsdConfig::with_target_ns(150.0));
    let point = run_operating_point_islands(
        &net,
        scenario.traffic(&net, load),
        dmsd.clone(),
        &loop_cfg,
        seed,
    );
    print_point("per-island DMSD (PI controller per island)", &point);

    if compare {
        let whole = scenario.islands(RegionLayout::Whole);
        let whole_net = whole.network(&base).expect("valid");
        let global = run_operating_point_islands(
            &whole_net,
            whole.traffic(&whole_net, load),
            dmsd,
            &loop_cfg,
            seed,
        );
        print_point("global DMSD (single island)", &global);

        let rmsd = PolicyKind::Rmsd(RmsdConfig::with_lambda_max(0.35));
        let rmsd_point = run_operating_point_islands(
            &net,
            scenario.traffic(&net, load),
            rmsd,
            &loop_cfg,
            seed,
        );
        print_point("per-island RMSD", &rmsd_point);

        println!(
            "\nper-island DMSD vs global DMSD: {:.1} mW vs {:.1} mW \
             ({:.1} ns vs {:.1} ns delay)",
            point.aggregate.power_mw,
            global.aggregate.power_mw,
            point.aggregate.avg_delay_ns,
            global.aggregate.avg_delay_ns,
        );
    }
}
