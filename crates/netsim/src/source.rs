//! Per-node packet sources.
//!
//! A [`Source`] generates packets under the control of the *node* clock and
//! queues their flits until the NoC (running on its own, possibly slower,
//! clock) accepts them through the router's local input port. The source also
//! performs virtual-channel selection for the injection channel and obeys the
//! same credit-based flow control as inter-router links.

use crate::flit::{Flit, PacketId};
use crate::topology::Topology;
use crate::traffic::TrafficSpec;
use rand::rngs::StdRng;
use std::collections::VecDeque;

/// State of one node's packet generator and injection queue.
#[derive(Debug)]
pub struct Source {
    node: usize,
    pending: VecDeque<Flit>,
    /// Credits for each VC of the router's local input port.
    credits: Vec<usize>,
    /// VC currently used by the packet being injected (None between packets).
    active_vc: Option<usize>,
    /// Preferred starting VC for the next packet (rotated for fairness).
    next_vc: usize,
    flits_generated: u64,
    packets_generated: u64,
    flits_injected: u64,
}

/// A flit that the source wants to place into the router's local input port
/// this cycle, on virtual channel `vc`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InjectionOffer {
    /// Virtual channel of the local input port to write into.
    pub vc: usize,
    /// The flit to inject.
    pub flit: Flit,
}

impl Source {
    /// Creates a source for `node`, with `vcs` virtual channels of `depth`
    /// flits each on the injection channel.
    pub fn new(node: usize, vcs: usize, depth: usize) -> Self {
        assert!(vcs > 0 && depth > 0);
        Source {
            node,
            pending: VecDeque::new(),
            credits: vec![depth; vcs],
            active_vc: None,
            next_vc: 0,
            flits_generated: 0,
            packets_generated: 0,
            flits_injected: 0,
        }
    }

    /// The node this source injects at.
    pub fn node(&self) -> usize {
        self.node
    }

    /// Number of flits generated so far (includes flits still queued).
    pub fn flits_generated(&self) -> u64 {
        self.flits_generated
    }

    /// Number of packets generated so far.
    pub fn packets_generated(&self) -> u64 {
        self.packets_generated
    }

    /// Number of flits actually handed to the router so far.
    pub fn flits_injected(&self) -> u64 {
        self.flits_injected
    }

    /// Number of flits waiting in the source queue.
    pub fn queued_flits(&self) -> usize {
        self.pending.len()
    }

    /// Whether any flit is waiting to be injected.
    ///
    /// The simulation driver polls [`try_inject`](Self::try_inject) only for
    /// sources with pending flits (tracked in a per-64-node bitset), so an
    /// idle source costs nothing per cycle; a source that is merely blocked
    /// on injection credits stays in the worklist — backed-up traffic *is*
    /// activity.
    #[inline]
    pub fn has_pending_flits(&self) -> bool {
        !self.pending.is_empty()
    }

    /// Runs `node_cycles` node-clock cycles of packet generation, covering
    /// the absolute node cycles `start_node_cycle ..
    /// start_node_cycle + node_cycles` (the clock the event-horizon skip
    /// contract and trace record/replay speak in).
    ///
    /// `next_packet_id` is a monotonically increasing counter shared across
    /// sources (owned by the simulation); newly generated packets consume ids
    /// from it.
    #[allow(clippy::too_many_arguments)]
    #[inline]
    pub fn generate(
        &mut self,
        node_cycles: u64,
        start_node_cycle: u64,
        traffic: &mut dyn TrafficSpec,
        topo: &Topology,
        rng: &mut StdRng,
        next_packet_id: &mut u64,
        current_cycle: u64,
        wall_time_ps: f64,
    ) {
        for offset in 0..node_cycles {
            if let Some(dst) =
                traffic.maybe_generate(self.node, start_node_cycle + offset, topo, rng)
            {
                let id = PacketId::new(*next_packet_id);
                *next_packet_id += 1;
                let flits = Flit::packet(
                    id,
                    self.node,
                    dst,
                    traffic.packet_length(),
                    current_cycle,
                    wall_time_ps,
                );
                self.flits_generated += flits.len() as u64;
                self.packets_generated += 1;
                self.pending.extend(flits);
            }
        }
    }

    /// Picks the virtual channel the front flit would inject on, given the
    /// current credit state, without consuming anything.
    fn injection_vc(&self) -> Option<usize> {
        let front = self.pending.front()?;
        if front.kind.is_head() {
            // Starting a new packet: pick a VC with available credit,
            // scanning round-robin from `next_vc` for fairness.
            let vcs = self.credits.len();
            (0..vcs)
                .map(|offset| (self.next_vc + offset) % vcs)
                .find(|&vc| self.credits[vc] > 0)
        } else {
            // Continuing the current packet on its VC (if credit remains).
            let vc = self.active_vc.expect("body flit without an active packet");
            (self.credits[vc] > 0).then_some(vc)
        }
    }

    /// Proposes at most one flit to inject this NoC cycle, given the credit
    /// state of the injection channel. Call
    /// [`commit_injection`](Self::commit_injection) if the offer
    /// is accepted. `Flit` is `Copy`, so the offer is a cheap stack value —
    /// the hot path uses [`try_inject`](Self::try_inject), which pops the
    /// queue directly instead of going through an offer.
    pub fn injection_offer(&mut self) -> Option<InjectionOffer> {
        let vc = self.injection_vc()?;
        let mut flit = *self.pending.front().expect("injection_vc saw a front flit");
        flit.vc = vc as u8;
        Some(InjectionOffer { vc, flit })
    }

    /// Consumes the offered flit after the network accepted it.
    pub fn commit_injection(&mut self, offer: &InjectionOffer) {
        let flit = self.pending.pop_front().expect("committed injection without pending flit");
        debug_assert_eq!(flit.packet_id, offer.flit.packet_id);
        self.finish_injection(offer.vc, offer.flit.kind);
    }

    /// Pops and returns the front flit if a virtual channel with credit is
    /// available, with `vc` already set — the allocation-free equivalent of
    /// an [`injection_offer`](Self::injection_offer) followed by
    /// [`commit_injection`](Self::commit_injection).
    #[inline]
    pub fn try_inject(&mut self) -> Option<Flit> {
        let vc = self.injection_vc()?;
        let mut flit = self.pending.pop_front().expect("injection_vc saw a front flit");
        flit.vc = vc as u8;
        self.finish_injection(vc, flit.kind);
        Some(flit)
    }

    /// Shared credit/VC bookkeeping after a flit left the queue.
    fn finish_injection(&mut self, vc: usize, kind: crate::flit::FlitKind) {
        self.credits[vc] -= 1;
        self.flits_injected += 1;
        if kind.is_head() {
            self.active_vc = Some(vc);
            self.next_vc = (vc + 1) % self.credits.len();
        }
        if kind.is_tail() {
            self.active_vc = None;
        }
    }

    /// Returns one credit for VC `vc` of the injection channel (the router
    /// read a flit out of the corresponding input buffer).
    pub fn return_credit(&mut self, vc: usize) {
        assert!(vc < self.credits.len(), "credit for unknown vc");
        self.credits[vc] += 1;
    }

    /// Current credit count of a VC (test/diagnostic hook).
    pub fn credits(&self, vc: usize) -> usize {
        self.credits[vc]
    }
}

#[cfg(feature = "snapshot")]
impl Source {
    /// Encodes the injection queue, credit state and counters for a
    /// checkpoint. The node index is configuration and is not written.
    pub(crate) fn save_state(&self, w: &mut crate::snapshot::SnapWriter) {
        w.put_usize(self.pending.len());
        for flit in &self.pending {
            flit.save_state(w);
        }
        w.put_usize(self.credits.len());
        for credit in &self.credits {
            w.put_usize(*credit);
        }
        w.put_opt_u64(self.active_vc.map(|vc| vc as u64));
        w.put_usize(self.next_vc);
        w.put_u64(self.flits_generated);
        w.put_u64(self.packets_generated);
        w.put_u64(self.flits_injected);
    }

    /// Replaces the mutable source state with the checkpointed one.
    pub(crate) fn load_state(
        &mut self,
        r: &mut crate::snapshot::SnapReader<'_>,
    ) -> Result<(), crate::snapshot::SnapshotError> {
        use crate::snapshot::SnapshotError;
        let queued = r.read_usize()?;
        self.pending.clear();
        for _ in 0..queued {
            self.pending.push_back(Flit::load_state(r)?);
        }
        let vcs = r.read_usize()?;
        if vcs != self.credits.len() {
            return Err(SnapshotError::Corrupt("source VC count"));
        }
        for credit in &mut self.credits {
            *credit = r.read_usize()?;
        }
        let active_vc = r.read_opt_u64()?.map(|vc| vc as usize);
        if active_vc.is_some_and(|vc| vc >= self.credits.len()) {
            return Err(SnapshotError::Corrupt("source active VC"));
        }
        self.active_vc = active_vc;
        let next_vc = r.read_usize()?;
        if next_vc >= self.credits.len() {
            return Err(SnapshotError::Corrupt("source next VC"));
        }
        self.next_vc = next_vc;
        self.flits_generated = r.read_u64()?;
        self.packets_generated = r.read_u64()?;
        self.flits_injected = r.read_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Mesh2d;
    use crate::traffic::{SyntheticTraffic, TrafficPattern};
    use rand::SeedableRng;

    /// Traffic that generates a packet on every node cycle (for tests).
    #[derive(Debug)]
    struct Saturating {
        packet_length: usize,
    }

    impl TrafficSpec for Saturating {
        fn packet_length(&self) -> usize {
            self.packet_length
        }
        fn offered_load(&self) -> f64 {
            self.packet_length as f64
        }
        fn maybe_generate(
            &mut self,
            src: usize,
            _node_cycle: u64,
            topo: &Topology,
            _rng: &mut StdRng,
        ) -> Option<usize> {
            Some((src + 1) % topo.node_count())
        }
    }

    #[test]
    fn generation_queues_whole_packets() {
        let mesh = Mesh2d::new(4, 4);
        let mut src = Source::new(0, 2, 4);
        let mut traffic = Saturating { packet_length: 3 };
        let mut rng = StdRng::seed_from_u64(1);
        let mut next_id = 0;
        src.generate(5, 0, &mut traffic, &mesh, &mut rng, &mut next_id, 0, 0.0);
        assert_eq!(src.packets_generated(), 5);
        assert_eq!(src.flits_generated(), 15);
        assert_eq!(src.queued_flits(), 15);
        assert_eq!(next_id, 5);
    }

    #[test]
    fn injection_respects_credits() {
        let mesh = Mesh2d::new(4, 4);
        let mut src = Source::new(0, 1, 2);
        let mut traffic = Saturating { packet_length: 4 };
        let mut rng = StdRng::seed_from_u64(1);
        let mut next_id = 0;
        src.generate(1, 0, &mut traffic, &mesh, &mut rng, &mut next_id, 0, 0.0);
        // Only two credits available on the single VC.
        for _ in 0..2 {
            let offer = src.injection_offer().expect("credit available");
            src.commit_injection(&offer);
        }
        assert!(src.injection_offer().is_none(), "out of credits");
        src.return_credit(0);
        assert!(src.injection_offer().is_some());
    }

    #[test]
    fn new_packet_waits_for_a_free_vc() {
        let mesh = Mesh2d::new(4, 4);
        let mut src = Source::new(0, 2, 1);
        let mut traffic = Saturating { packet_length: 1 };
        let mut rng = StdRng::seed_from_u64(1);
        let mut next_id = 0;
        src.generate(3, 0, &mut traffic, &mesh, &mut rng, &mut next_id, 0, 0.0);
        // Two single-flit packets can go out (one per VC), the third stalls.
        let o1 = src.injection_offer().unwrap();
        src.commit_injection(&o1);
        let o2 = src.injection_offer().unwrap();
        src.commit_injection(&o2);
        assert_ne!(o1.vc, o2.vc, "round-robin VC selection should spread packets");
        assert!(src.injection_offer().is_none());
        src.return_credit(o1.vc);
        assert!(src.injection_offer().is_some());
    }

    #[test]
    fn body_flits_stay_on_the_packet_vc() {
        let mesh = Mesh2d::new(4, 4);
        let mut src = Source::new(0, 4, 8);
        let mut traffic = Saturating { packet_length: 3 };
        let mut rng = StdRng::seed_from_u64(1);
        let mut next_id = 0;
        src.generate(1, 0, &mut traffic, &mesh, &mut rng, &mut next_id, 0, 0.0);
        let head = src.injection_offer().unwrap();
        src.commit_injection(&head);
        let body = src.injection_offer().unwrap();
        src.commit_injection(&body);
        let tail = src.injection_offer().unwrap();
        src.commit_injection(&tail);
        assert_eq!(head.vc, body.vc);
        assert_eq!(head.vc, tail.vc);
        assert_eq!(src.flits_injected(), 3);
    }

    #[test]
    fn bernoulli_source_generates_nothing_at_zero_rate() {
        let mesh = Mesh2d::new(4, 4);
        let mut src = Source::new(3, 2, 4);
        let mut traffic = SyntheticTraffic::new(TrafficPattern::Uniform, 0.0, 5);
        let mut rng = StdRng::seed_from_u64(1);
        let mut next_id = 0;
        src.generate(10_000, 0, &mut traffic, &mesh, &mut rng, &mut next_id, 0, 0.0);
        assert_eq!(src.flits_generated(), 0);
        assert!(src.injection_offer().is_none());
    }
}
