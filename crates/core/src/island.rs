//! Per-island DVFS: independent controller instances over the
//! voltage-frequency island partition of a network.
//!
//! The paper scales one global NoC clock. Real SoCs partition the fabric
//! into **voltage-frequency islands** (VFIs) and run one DVFS loop per
//! island. This module lifts every policy of the paper to that setting:
//!
//! * [`MultiIslandController`] instantiates one [`DvfsPolicy`] (No-DVFS,
//!   RMSD or the PI-based DMSD) per island and feeds each from its island's
//!   own [`WindowMeasurement`];
//! * [`run_operating_point_islands`] is the island analogue of
//!   [`run_operating_point`](crate::run_operating_point): it co-simulates
//!   the network, the per-island controllers and the power model, and
//!   reports the aggregate operating point plus one
//!   [`IslandSummary`] per island — including the island's
//!   frequency/voltage residency ([`FrequencyResidency`]).
//!
//! With the default single-island partition the per-island machinery
//! degenerates to exactly the global loop: same measurements, one
//! controller, one residency.

use crate::closed_loop::{interval_cycles, ClosedLoopConfig, OperatingPointResult};
use crate::policy::{ControlMeasurement, DvfsPolicy, PolicyKind};
use noc_power::{model::EnergyBreakdown, FdsoiTech, FrequencyResidency, RouterPowerModel};
use noc_sim::{Hertz, NetworkActivity, NetworkConfig, NocSimulation, TrafficSpec, WindowMeasurement};
use serde::{Deserialize, Serialize};

/// One DVFS controller instance per voltage-frequency island.
///
/// Each island's controller is an independent instance of the same policy
/// (its own PI integrator, its own smoothing state), sized to the island's
/// node count; the islands only interact through the network traffic itself.
#[derive(Debug)]
pub struct MultiIslandController {
    controllers: Vec<Box<dyn DvfsPolicy>>,
    node_counts: Vec<usize>,
    frequencies: Vec<Hertz>,
}

impl MultiIslandController {
    /// Builds one controller per island of `net`'s region partition,
    /// starting every island at the maximum frequency.
    pub fn new(policy: &PolicyKind, net: &NetworkConfig) -> Self {
        let node_counts = net.region_map().node_counts().to_vec();
        let controllers = node_counts.iter().map(|_| policy.build(net)).collect();
        let frequencies = vec![net.max_frequency(); node_counts.len()];
        MultiIslandController { controllers, node_counts, frequencies }
    }

    /// Number of islands under control.
    pub fn island_count(&self) -> usize {
        self.controllers.len()
    }

    /// The frequency most recently chosen for each island (initially the
    /// maximum frequency).
    pub fn frequencies(&self) -> &[Hertz] {
        &self.frequencies
    }

    /// Feeds every island's controller its island window (as produced by
    /// [`NocSimulation::take_island_windows`]) and returns the frequencies
    /// to apply for the next control interval, indexed by island id.
    ///
    /// # Panics
    ///
    /// Panics if `windows` does not hold exactly one window per island.
    pub fn next_frequencies(&mut self, windows: &[WindowMeasurement]) -> &[Hertz] {
        assert_eq!(windows.len(), self.controllers.len(), "one window per island required");
        for (island, window) in windows.iter().enumerate() {
            let measurement = ControlMeasurement {
                window: *window,
                node_count: self.node_counts[island],
                current_frequency: self.frequencies[island],
            };
            self.frequencies[island] = self.controllers[island].next_frequency(&measurement);
        }
        &self.frequencies
    }

    /// Clears every controller's internal state and restores all islands to
    /// `initial` (typically the maximum frequency).
    pub fn reset(&mut self, initial: Hertz) {
        for (controller, f) in self.controllers.iter_mut().zip(self.frequencies.iter_mut()) {
            controller.reset();
            *f = initial;
        }
    }
}

/// The measured behaviour of one island over the measurement phase of
/// [`run_operating_point_islands`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IslandSummary {
    /// Island id (index into the region partition).
    pub island: usize,
    /// Number of nodes in the island.
    pub nodes: usize,
    /// Frequency/voltage residency and energy of the island over the
    /// measurement phase (time-weighted averages, per-level histogram).
    pub residency: FrequencyResidency,
    /// Average injection rate of the island's sources, flits per node cycle
    /// per node.
    pub measured_rate: f64,
    /// Average end-to-end delay of the packets ejected in this island,
    /// nanoseconds (0 when no packet terminated here).
    pub avg_delay_ns: f64,
    /// Island domain cycles completed during the measurement phase.
    pub domain_cycles: u64,
}

/// Aggregate + per-island result of one island-controlled operating point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IslandOperatingPointResult {
    /// The network-level operating point (power, delay, throughput — the
    /// same shape every sweep and figure driver consumes). The
    /// `avg_frequency_ghz`/`avg_vdd` fields are node-weighted averages over
    /// the islands.
    pub aggregate: OperatingPointResult,
    /// Per-island measurements, indexed by island id.
    pub islands: Vec<IslandSummary>,
}

impl IslandOperatingPointResult {
    /// The spread between the fastest and slowest island's time-averaged
    /// frequency, gigahertz — 0 on a single island, and a direct measure of
    /// how much per-island control actually differentiated the domains.
    pub fn frequency_spread_ghz(&self) -> f64 {
        let freqs = self.islands.iter().map(|i| i.residency.avg_frequency_ghz());
        let max = freqs.clone().fold(f64::NEG_INFINITY, f64::max);
        let min = freqs.fold(f64::INFINITY, f64::min);
        if max.is_finite() && min.is_finite() { max - min } else { 0.0 }
    }
}

/// Runs one closed-loop operating point with **per-island DVFS control**:
/// the island analogue of [`run_operating_point`](crate::run_operating_point).
///
/// Every island of `net`'s region partition gets an independent instance of
/// `policy` fed by its own per-island measurement window; the power model
/// integrates each island's activity at that island's `(frequency, Vdd)`
/// operating level. On the default single-island partition the aggregate
/// result matches the global loop's semantics (one controller, one domain).
///
/// ```
/// use noc_dvfs::island::run_operating_point_islands;
/// use noc_dvfs::{ClosedLoopConfig, PolicyKind, RmsdConfig};
/// use noc_sim::{NetworkConfig, RegionLayout, SyntheticTraffic, TrafficPattern};
///
/// let net = NetworkConfig::builder()
///     .mesh(4, 4)
///     .virtual_channels(2)
///     .buffer_depth(4)
///     .packet_length(5)
///     .regions(RegionLayout::Quadrants)
///     .build()
///     .unwrap();
/// let traffic = SyntheticTraffic::new(TrafficPattern::Uniform, 0.08, 5);
/// let point = run_operating_point_islands(
///     &net,
///     Box::new(traffic),
///     PolicyKind::Rmsd(RmsdConfig::with_lambda_max(0.35)),
///     &ClosedLoopConfig::quick(),
///     7,
/// );
/// assert_eq!(point.islands.len(), 4);
/// assert!(point.aggregate.power_mw > 0.0);
/// ```
///
/// # Panics
///
/// Panics if `loop_cfg` is invalid (zero intervals or period).
pub fn run_operating_point_islands(
    net: &NetworkConfig,
    traffic: Box<dyn TrafficSpec>,
    policy: PolicyKind,
    loop_cfg: &ClosedLoopConfig,
    seed: u64,
) -> IslandOperatingPointResult {
    run_islands_loop(net, traffic, policy, loop_cfg, seed, |_, _, _| {}, |_, _, _| {})
}

/// The island control loop shared by [`run_operating_point_islands`] and the
/// gated variant ([`run_operating_point_gated`](crate::run_operating_point_gated)).
///
/// `control_hook(sim, frequencies, windows)` runs after every control update
/// (warm-up and measurement) with the frequencies just applied — the gated
/// loop actuates per-island idle thresholds there. `measure_hook(activity,
/// frequencies, wall_span_ps)` runs once per measured interval with the
/// interval's activity and the frequencies that were in force — the gated
/// loop accumulates its [`GatingResidency`](noc_power::GatingResidency)
/// there. With no-op hooks this is exactly the historical per-island loop,
/// bit for bit.
pub(crate) fn run_islands_loop(
    net: &NetworkConfig,
    traffic: Box<dyn TrafficSpec>,
    policy: PolicyKind,
    loop_cfg: &ClosedLoopConfig,
    seed: u64,
    mut control_hook: impl FnMut(&mut NocSimulation, &[Hertz], &[WindowMeasurement]),
    mut measure_hook: impl FnMut(&NetworkActivity, &[Hertz], f64),
) -> IslandOperatingPointResult {
    loop_cfg.validate();
    let offered_load = traffic.offered_load();
    let tech = FdsoiTech::new();
    let power_model = RouterPowerModel::new();
    let mut sim = NocSimulation::new(net.clone(), traffic, seed);
    let region_map = net.region_map();
    let island_of = region_map.assignments().to_vec();
    let island_count = region_map.island_count();
    let node_counts = region_map.node_counts().to_vec();
    let mut controller = MultiIslandController::new(&policy, net);

    // The control period is fixed in wall-clock time: `control_period_cycles`
    // cycles of the fastest clock. Interval lengths are counted in base
    // ticks, whose rate is the fastest island's current frequency.
    let period_ps = loop_cfg.control_period_cycles as f64 * net.max_frequency().period().as_ps();
    sim.set_noc_frequency(net.max_frequency());

    // The whole vector is applied atomically: a per-island loop of
    // `set_island_frequency` calls would pass through transient base rates
    // and could spuriously reset an untouched island's clock divider.
    let apply =
        |sim: &mut NocSimulation, freqs: &[Hertz]| sim.set_island_frequencies(freqs);

    // Warm-up plus adaptive settling, discarding measurements: run until
    // every island's controller output is stable (checked over three
    // consecutive intervals), so the measurement phase captures the steady
    // state of all control loops.
    let mut stable_checks = 0;
    for interval in 0..(loop_cfg.warmup_intervals + loop_cfg.max_settle_intervals) {
        if interval >= loop_cfg.warmup_intervals && stable_checks >= 3 {
            break;
        }
        let cycles = interval_cycles(period_ps, sim.noc_frequency());
        sim.run_cycles(cycles);
        let _ = sim.take_window();
        let windows = sim.take_island_windows();
        sim.reset_activity();
        let before: Vec<Hertz> = controller.frequencies().to_vec();
        let next = controller.next_frequencies(&windows);
        let worst_change = before
            .iter()
            .zip(next.iter())
            .map(|(b, n)| (n.as_hz() - b.as_hz()).abs() / b.as_hz())
            .fold(0.0, f64::max);
        if worst_change <= loop_cfg.settle_tolerance {
            stable_checks += 1;
        } else {
            stable_checks = 0;
        }
        let next = next.to_vec();
        apply(&mut sim, &next);
        control_hook(&mut sim, &next, &windows);
    }

    // Measurement phase.
    sim.reset_stats();
    let mut residencies = vec![FrequencyResidency::new(); island_count];
    let mut energy = EnergyBreakdown::default();
    let mut freq_time_product = 0.0; // Hz · ps, node-weighted across islands
    let mut vdd_time_product = 0.0; // V · ps, node-weighted across islands
    let mut total_wall_ps = 0.0;
    let mut flits_generated = 0u64;
    let mut flits_ejected = 0u64;
    let mut flits_dropped = 0u64;
    let mut node_cycles = 0u64;
    let mut noc_cycles = 0u64;
    let mut island_rate_flits = vec![0u64; island_count];
    let mut island_delay_ps = vec![0.0f64; island_count];
    let mut island_packets = vec![0u64; island_count];
    let mut island_cycles = vec![0u64; island_count];
    let total_nodes = sim.node_count() as f64;

    for _ in 0..loop_cfg.measure_intervals {
        let cycles = interval_cycles(period_ps, sim.noc_frequency());
        sim.run_cycles(cycles);
        let window = sim.take_window();
        let windows = sim.take_island_windows();
        let activity = sim.take_activity();

        for island in 0..island_count {
            let f = controller.frequencies()[island];
            let vdd = tech.vdd_for_frequency(f);
            let e = power_model.island_energy(
                &activity,
                &island_of,
                island as u32,
                f,
                vdd,
                window.wall_time_ps,
            );
            residencies[island].record(f, vdd, window.wall_time_ps, e);
            energy += e;
            let weight = node_counts[island] as f64 / total_nodes;
            freq_time_product += f.as_hz() * weight * window.wall_time_ps;
            vdd_time_product += vdd.as_volts() * weight * window.wall_time_ps;
            island_rate_flits[island] += windows[island].flits_generated;
            island_delay_ps[island] += windows[island].delay_ps_sum;
            island_packets[island] += windows[island].packets_ejected;
            island_cycles[island] += windows[island].noc_cycles;
        }

        total_wall_ps += window.wall_time_ps;
        flits_generated += window.flits_generated;
        flits_ejected += window.flits_ejected;
        flits_dropped += window.flits_dropped;
        node_cycles += window.node_cycles;
        noc_cycles += window.noc_cycles;

        measure_hook(&activity, controller.frequencies(), window.wall_time_ps);
        let next = controller.next_frequencies(&windows).to_vec();
        apply(&mut sim, &next);
        control_hook(&mut sim, &next, &windows);
    }

    let stats = sim.stats();
    let measured_rate = if node_cycles > 0 {
        flits_generated as f64 / (node_cycles as f64 * total_nodes)
    } else {
        0.0
    };
    let throughput = if noc_cycles > 0 {
        flits_ejected as f64 / (noc_cycles as f64 * total_nodes)
    } else {
        0.0
    };
    let total_wall_ns = total_wall_ps / 1.0e3;

    let aggregate = OperatingPointResult {
        policy: policy.name().to_string(),
        offered_load,
        measured_rate,
        avg_latency_cycles: stats.avg_latency_cycles().unwrap_or(0.0),
        avg_delay_ns: stats.avg_delay_ns().unwrap_or(0.0),
        max_delay_ns: stats.max_delay_ps / 1.0e3,
        power_mw: if total_wall_ns > 0.0 { energy.total_pj() / total_wall_ns } else { 0.0 },
        dynamic_power_mw: if total_wall_ns > 0.0 { energy.dynamic_pj / total_wall_ns } else { 0.0 },
        static_power_mw: if total_wall_ns > 0.0 { energy.static_pj / total_wall_ns } else { 0.0 },
        avg_frequency_ghz: if total_wall_ps > 0.0 {
            freq_time_product / total_wall_ps / 1.0e9
        } else {
            0.0
        },
        avg_vdd: if total_wall_ps > 0.0 { vdd_time_product / total_wall_ps } else { 0.0 },
        throughput,
        packets_delivered: stats.packets,
        measurement_wall_ns: total_wall_ns,
        flits_dropped,
        reachability: sim.reachable_pairs_fraction(),
    };

    let islands = (0..island_count)
        .map(|island| IslandSummary {
            island,
            nodes: node_counts[island],
            residency: residencies[island].clone(),
            measured_rate: if node_cycles > 0 {
                island_rate_flits[island] as f64
                    / (node_cycles as f64 * node_counts[island] as f64)
            } else {
                0.0
            },
            avg_delay_ns: if island_packets[island] > 0 {
                island_delay_ps[island] / island_packets[island] as f64 / 1.0e3
            } else {
                0.0
            },
            domain_cycles: island_cycles[island],
        })
        .collect();

    IslandOperatingPointResult { aggregate, islands }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dmsd::DmsdConfig;
    use crate::rmsd::RmsdConfig;
    use noc_sim::{RegionLayout, SyntheticTraffic, TrafficPattern};

    fn quad_net() -> NetworkConfig {
        NetworkConfig::builder()
            .mesh(4, 4)
            .virtual_channels(2)
            .buffer_depth(4)
            .packet_length(5)
            .regions(RegionLayout::Quadrants)
            .build()
            .unwrap()
    }

    fn traffic(rate: f64) -> Box<dyn TrafficSpec> {
        Box::new(SyntheticTraffic::new(TrafficPattern::Uniform, rate, 5))
    }

    #[test]
    fn controller_runs_one_policy_instance_per_island() {
        let net = quad_net();
        let mut c = MultiIslandController::new(
            &PolicyKind::Rmsd(RmsdConfig::with_lambda_max(0.3)),
            &net,
        );
        assert_eq!(c.island_count(), 4);
        assert!(c.frequencies().iter().all(|&f| f == net.max_frequency()));
        // Feed island 2 a much higher rate than the others: only its
        // controller should ask for a higher frequency.
        let mut windows = vec![WindowMeasurement::default(); 4];
        for (i, w) in windows.iter_mut().enumerate() {
            w.noc_cycles = 1_000;
            w.node_cycles = 1_000;
            w.flits_generated = if i == 2 { 1_000 } else { 40 };
        }
        let freqs = c.next_frequencies(&windows).to_vec();
        assert!(freqs[2] > freqs[0], "the loaded island must run faster");
        assert_eq!(freqs[0], freqs[1]);
        assert_eq!(freqs[0], freqs[3]);
        c.reset(net.max_frequency());
        assert!(c.frequencies().iter().all(|&f| f == net.max_frequency()));
    }

    #[test]
    #[should_panic(expected = "one window per island")]
    fn controller_rejects_window_count_mismatch() {
        let mut c = MultiIslandController::new(&PolicyKind::NoDvfs, &quad_net());
        let _ = c.next_frequencies(&[WindowMeasurement::default()]);
    }

    #[test]
    fn island_point_runs_end_to_end_with_rmsd() {
        let p = run_operating_point_islands(
            &quad_net(),
            traffic(0.08),
            PolicyKind::Rmsd(RmsdConfig::with_lambda_max(0.35)),
            &ClosedLoopConfig::quick(),
            3,
        );
        assert_eq!(p.islands.len(), 4);
        assert!(p.aggregate.power_mw > 0.0);
        assert!(p.aggregate.packets_delivered > 0);
        for s in &p.islands {
            assert_eq!(s.nodes, 4);
            assert!(s.residency.wall_ps > 0.0);
            assert!(s.residency.avg_frequency_ghz() > 0.0);
            assert!(s.domain_cycles > 0);
        }
        // Uniform light load: every island slows below the maximum.
        assert!(p.aggregate.avg_frequency_ghz < 0.95);
    }

    #[test]
    fn island_dmsd_point_stays_inside_the_frequency_range() {
        let p = run_operating_point_islands(
            &quad_net(),
            traffic(0.1),
            PolicyKind::Dmsd(DmsdConfig::with_target_ns(120.0)),
            &ClosedLoopConfig::quick(),
            5,
        );
        for s in &p.islands {
            let f = s.residency.avg_frequency_ghz();
            assert!((0.332..=1.001).contains(&f), "island {} at {f} GHz", s.island);
        }
        assert!(p.frequency_spread_ghz() >= 0.0);
    }

    #[test]
    fn single_island_point_matches_the_global_loop_shape() {
        let net = NetworkConfig::builder()
            .mesh(4, 4)
            .virtual_channels(2)
            .buffer_depth(4)
            .packet_length(5)
            .build()
            .unwrap();
        let p = run_operating_point_islands(
            &net,
            traffic(0.1),
            PolicyKind::NoDvfs,
            &ClosedLoopConfig::quick(),
            1,
        );
        assert_eq!(p.islands.len(), 1);
        assert_eq!(p.frequency_spread_ghz(), 0.0);
        assert!((p.aggregate.avg_frequency_ghz - 1.0).abs() < 1e-9);
        assert!((p.islands[0].residency.avg_frequency_ghz() - 1.0).abs() < 1e-9);
        // One island owns all packets: its delay is the network delay.
        assert!((p.islands[0].avg_delay_ns - p.aggregate.avg_delay_ns).abs() < 1e-6);
    }

    #[test]
    fn island_points_are_reproducible() {
        let net = quad_net();
        let cfg = ClosedLoopConfig::quick();
        let a = run_operating_point_islands(
            &net,
            traffic(0.1),
            PolicyKind::Rmsd(RmsdConfig::with_lambda_max(0.35)),
            &cfg,
            7,
        );
        let b = run_operating_point_islands(
            &net,
            traffic(0.1),
            PolicyKind::Rmsd(RmsdConfig::with_lambda_max(0.35)),
            &cfg,
            7,
        );
        assert_eq!(a, b);
    }
}
