//! Power-gating residency reports: who slept, for how long, and whether it
//! paid off.
//!
//! The simulator's activity records carry each router's gated residency and
//! sleep/wake transition counts per observation window
//! ([`RouterActivity::gated_cycles`](noc_sim::RouterActivity) et al.). This
//! module turns those into an auditable report: per-router time gated, wake
//! events, leakage + clock energy saved, and the transition cost paid —
//! aggregated per voltage-frequency island, where the gating policies make
//! their decisions.

use crate::model::RouterPowerModel;
use crate::tech::Volts;
use noc_sim::{Hertz, NetworkActivity};
use serde::{Deserialize, Serialize};

/// Gating residency of one router over the recorded intervals.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct RouterGatingStats {
    /// Domain cycles covered by the recorded windows.
    pub cycles: u64,
    /// Domain cycles spent power-gated.
    pub gated_cycles: u64,
    /// Completed sleep (power-down) transitions.
    pub sleep_events: u64,
    /// Wake (power-up) transitions.
    pub wake_events: u64,
    /// Wall-clock time spent gated, picoseconds.
    pub gated_time_ps: f64,
    /// Clock-tree + leakage energy saved while gated, picojoules.
    pub saved_pj: f64,
    /// Sleep/wake transition energy paid, picojoules.
    pub transition_pj: f64,
}

impl RouterGatingStats {
    /// Net energy benefit of gating this router (saving minus transition
    /// cost), picojoules. Negative when the router thrashed below its
    /// break-even time.
    pub fn net_saving_pj(&self) -> f64 {
        self.saved_pj - self.transition_pj
    }

    /// Fraction of the recorded cycles spent gated, in `[0, 1]`.
    pub fn gated_fraction(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.gated_cycles as f64 / self.cycles as f64
        }
    }
}

/// Gating residency of one voltage-frequency island: the sum of its
/// routers' records.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct IslandGatingStats {
    /// Island id.
    pub island: usize,
    /// Number of routers in the island.
    pub nodes: usize,
    /// Summed per-router records (cycles are summed over routers, so the
    /// island's gated fraction is a router-average, not a wall-time share).
    pub totals: RouterGatingStats,
}

/// Per-router + per-island gating residency over a measurement phase.
///
/// A control loop accumulates one of these by calling
/// [`record`](Self::record) each interval with the interval's activity and
/// the per-island operating points; see
/// `noc_dvfs::run_operating_point_gated` for the end-to-end use.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GatingResidency {
    /// Per-router records, indexed by node id.
    pub routers: Vec<RouterGatingStats>,
    /// The node → island assignment the per-island aggregation uses.
    island_of: Vec<u32>,
}

impl GatingResidency {
    /// An empty accumulator over the given node → island assignment (use a
    /// vector of zeros for an unpartitioned network).
    pub fn new(island_of: Vec<u32>) -> Self {
        GatingResidency { routers: vec![RouterGatingStats::default(); island_of.len()], island_of }
    }

    /// Adds one control interval: `activity` is the interval's drained
    /// activity record, `levels[island]` the `(frequency, vdd)` the island
    /// ran at, and `duration_ps` the interval's wall-clock length.
    ///
    /// # Panics
    ///
    /// Panics if the activity record or `levels` do not cover the network.
    pub fn record(
        &mut self,
        model: &RouterPowerModel,
        activity: &NetworkActivity,
        levels: &[(Hertz, Volts)],
        duration_ps: f64,
    ) {
        assert_eq!(activity.routers.len(), self.routers.len(), "router count mismatch");
        for (node, act) in activity.routers.iter().enumerate() {
            let island = self.island_of[node] as usize;
            let (frequency, vdd) = levels[island];
            let stats = &mut self.routers[node];
            stats.cycles += act.cycles;
            stats.gated_cycles += act.gated_cycles;
            stats.sleep_events += act.sleep_events;
            stats.wake_events += act.wake_events;
            if act.gated_cycles > 0 && act.cycles > 0 {
                let gated_ps = duration_ps * (act.gated_cycles as f64 / act.cycles as f64);
                stats.gated_time_ps += gated_ps;
                stats.saved_pj += model.gated_saving_mw(frequency, vdd) * (gated_ps / 1.0e3);
            }
            if act.sleep_events > 0 || act.wake_events > 0 {
                stats.transition_pj +=
                    model.transition_energy_pj(act.sleep_events, act.wake_events, vdd);
            }
        }
    }

    /// Per-island aggregation of the per-router records, indexed by island
    /// id.
    pub fn islands(&self) -> Vec<IslandGatingStats> {
        let island_count =
            self.island_of.iter().map(|&i| i as usize + 1).max().unwrap_or(1);
        let mut out: Vec<IslandGatingStats> = (0..island_count)
            .map(|island| IslandGatingStats { island, ..IslandGatingStats::default() })
            .collect();
        for (node, stats) in self.routers.iter().enumerate() {
            let agg = &mut out[self.island_of[node] as usize];
            agg.nodes += 1;
            agg.totals.cycles += stats.cycles;
            agg.totals.gated_cycles += stats.gated_cycles;
            agg.totals.sleep_events += stats.sleep_events;
            agg.totals.wake_events += stats.wake_events;
            agg.totals.gated_time_ps += stats.gated_time_ps;
            agg.totals.saved_pj += stats.saved_pj;
            agg.totals.transition_pj += stats.transition_pj;
        }
        out
    }

    /// Network-wide totals (the sum of every router's record).
    pub fn total(&self) -> RouterGatingStats {
        self.routers.iter().fold(RouterGatingStats::default(), |mut acc, r| {
            acc.cycles += r.cycles;
            acc.gated_cycles += r.gated_cycles;
            acc.sleep_events += r.sleep_events;
            acc.wake_events += r.wake_events;
            acc.gated_time_ps += r.gated_time_ps;
            acc.saved_pj += r.saved_pj;
            acc.transition_pj += r.transition_pj;
            acc
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_sim::RouterActivity;

    fn gated_activity(cycles: u64, gated: u64, sleeps: u64, wakes: u64) -> RouterActivity {
        RouterActivity {
            cycles,
            gated_cycles: gated,
            sleep_events: sleeps,
            wake_events: wakes,
            ..RouterActivity::new()
        }
    }

    #[test]
    fn residency_accumulates_and_aggregates_per_island() {
        let model = RouterPowerModel::new();
        let mut residency = GatingResidency::new(vec![0, 0, 1, 1]);
        let mut activity = NetworkActivity::new(4);
        activity.routers[0] = gated_activity(1_000, 600, 2, 2);
        activity.routers[2] = gated_activity(1_000, 200, 1, 1);
        activity.routers[3] = gated_activity(1_000, 0, 0, 0);
        // Router 3 stays cycle-accounted even while never gated.
        activity.routers[1] = gated_activity(1_000, 0, 0, 0);
        let levels =
            [(Hertz::from_ghz(1.0), Volts::new(0.9)), (Hertz::from_mhz(500.0), Volts::new(0.7))];
        residency.record(&model, &activity, &levels, 1.0e6);
        residency.record(&model, &activity, &levels, 1.0e6);

        let r0 = residency.routers[0];
        assert_eq!(r0.gated_cycles, 1_200);
        assert_eq!(r0.sleep_events, 4);
        assert!((r0.gated_fraction() - 0.6).abs() < 1e-12);
        assert!((r0.gated_time_ps - 1.2e6).abs() < 1e-6);
        let expected_saved =
            model.gated_saving_mw(Hertz::from_ghz(1.0), Volts::new(0.9)) * (1.2e6 / 1.0e3);
        assert!((r0.saved_pj - expected_saved).abs() < 1e-9);
        assert!(
            (r0.transition_pj - 2.0 * model.transition_energy_pj(2, 2, Volts::new(0.9))).abs()
                < 1e-9
        );

        let islands = residency.islands();
        assert_eq!(islands.len(), 2);
        assert_eq!(islands[0].nodes, 2);
        assert_eq!(islands[0].totals.gated_cycles, 1_200);
        assert_eq!(islands[1].totals.gated_cycles, 400);
        let total = residency.total();
        assert_eq!(total.gated_cycles, 1_600);
        assert_eq!(total.cycles, 8_000);
        assert!(
            (total.saved_pj
                - (islands[0].totals.saved_pj + islands[1].totals.saved_pj))
                .abs()
                < 1e-9
        );
    }

    #[test]
    fn a_long_gated_span_beats_the_transition_cost() {
        let model = RouterPowerModel::new();
        let mut residency = GatingResidency::new(vec![0]);
        let mut activity = NetworkActivity::new(1);
        // One sleep/wake pair, gated for 90% of a 100 µs interval — far past
        // break-even (tens of ns): the net saving must be positive.
        activity.routers[0] = gated_activity(100_000, 90_000, 1, 1);
        residency.record(&model, &activity, &[(Hertz::from_ghz(1.0), Volts::new(0.9))], 1.0e8);
        assert!(residency.routers[0].net_saving_pj() > 0.0);
        // A thrashing router (many transitions, almost no gated time) loses.
        let mut thrash = GatingResidency::new(vec![0]);
        let mut activity = NetworkActivity::new(1);
        activity.routers[0] = gated_activity(100_000, 10, 500, 500);
        thrash.record(&model, &activity, &[(Hertz::from_ghz(1.0), Volts::new(0.9))], 1.0e8);
        assert!(thrash.routers[0].net_saving_pj() < 0.0);
    }

    #[test]
    #[should_panic(expected = "router count mismatch")]
    fn record_rejects_mismatched_activity() {
        let model = RouterPowerModel::new();
        let mut residency = GatingResidency::new(vec![0, 0]);
        let activity = NetworkActivity::new(3);
        residency.record(&model, &activity, &[(Hertz::from_ghz(1.0), Volts::new(0.9))], 1.0);
    }
}
