//! Differential suite for the zero-perturbation telemetry layer.
//!
//! The telemetry fabric ([`NocSimulation::install_telemetry`]) is a pure
//! observer: probes read pipeline outputs that already exist, sampling is
//! driven by the simulated clock, and profiling reads the host clock without
//! feeding it back. Four contracts are pinned here:
//!
//! 1. **Zero perturbation** — an instrumented run produces bit-identical
//!    [`WindowMeasurement`] sequences and aggregate statistics to an
//!    uninstrumented twin across the full subsystem grid (gating × faults ×
//!    islands × bursty injection), on **both** engines (sparse worklist and
//!    the dense reference) and with event-horizon skipping on and off.
//! 2. **Parallel parity** — per-island threaded stepping with per-worker
//!    profiling enabled still matches the uninstrumented serial golden,
//!    window for window.
//! 3. **Bounded memory** — the snapshot ring and the event ring never exceed
//!    their configured capacities, however long the run.
//! 4. **Export shape** — the Perfetto export of a real instrumented run is
//!    structurally valid Chrome `trace_events` JSON (every event carries
//!    `name`/`ph`/`ts`/`pid`, phases drawn from the documented set), and the
//!    congestion heatmap matches the topology's shape; the sweep
//!    coordinator's profile/trace journal the same way.
//!
//! [`NocSimulation::install_telemetry`]: noc_sim::NocSimulation::install_telemetry
//! [`WindowMeasurement`]: noc_sim::WindowMeasurement

use noc_sim::{
    BurstyTraffic, FaultConfig, GatingConfig, HazardConfig, Hertz, NetworkConfig, NocSimulation,
    RegionLayout, RoutingKind, SyntheticTraffic, TelemetryConfig, TrafficPattern,
    TrafficSpec,
};
use proptest::prelude::*;

/// The 4×4 mesh exercising the chosen subsystem combination — the same
/// grid the event-horizon differentials (`tests/sparse_equivalence.rs`)
/// pin, so telemetry is proven inert on exactly the hardest scenarios.
fn subsystem_cfg(gated: bool, faulted: bool, islands: bool) -> NetworkConfig {
    let mut b =
        NetworkConfig::builder().mesh(4, 4).virtual_channels(2).buffer_depth(4).packet_length(4);
    if gated {
        b = b.gating(GatingConfig::enabled(24, 8));
    }
    if faulted {
        b = b.routing(RoutingKind::MinimalAdaptive).faults(FaultConfig::none().with_hazard(
            HazardConfig {
                link_rate: 2e-4,
                router_rate: 1e-4,
                transient_fraction: 1.0,
                transient_duration: 120,
            },
        ));
    }
    if islands {
        b = b.regions(RegionLayout::Quadrants);
    }
    b.build().expect("subsystem combinations are valid")
}

fn scenario_traffic(rate: f64, bursty: bool) -> Box<dyn TrafficSpec> {
    if bursty {
        Box::new(BurstyTraffic::new(TrafficPattern::Uniform, rate, 4, 200.0, 4.0))
    } else {
        Box::new(SyntheticTraffic::new(TrafficPattern::Uniform, rate, 4))
    }
}

/// Runs the window schedule with a mid-run NoC frequency retune (which also
/// lands a `SetFrequency` event in the instrumented twin's trace).
fn window_sequence(sim: &mut NocSimulation, chunks: &[u64]) -> Vec<noc_sim::WindowMeasurement> {
    let mut windows = Vec::with_capacity(chunks.len());
    for (i, &cycles) in chunks.iter().enumerate() {
        if i == 2 {
            sim.set_noc_frequency(Hertz::from_mhz(500.0));
        }
        if i == 4 {
            sim.set_noc_frequency(Hertz::from_ghz(1.0));
        }
        sim.run_cycles(cycles);
        windows.push(sim.take_window());
    }
    windows
}

proptest! {
    #![proptest_config(ProptestConfig::default())]

    /// The hard invariant of the telemetry layer: installing it — counters,
    /// event trace, periodic sampling and the wall-clock profiler all on —
    /// never changes a single measurement, on either engine, with horizon
    /// skipping on or off, across every subsystem combination.
    #[test]
    fn telemetry_never_perturbs_the_simulation(
        gated in prop_oneof![Just(false), Just(true)],
        faulted in prop_oneof![Just(false), Just(true)],
        islands in prop_oneof![Just(false), Just(true)],
        bursty in prop_oneof![Just(false), Just(true)],
        dense in prop_oneof![Just(false), Just(true)],
        skipping in prop_oneof![Just(false), Just(true)],
        rate in 0.05f64..0.3,
        seed in 0u64..1_000_000,
        chunk in 80u64..240,
    ) {
        let cfg = subsystem_cfg(gated, faulted, islands);
        let mut observed = NocSimulation::new(cfg.clone(), scenario_traffic(rate, bursty), seed);
        let mut plain = NocSimulation::new(cfg.clone(), scenario_traffic(rate, bursty), seed);
        observed.install_telemetry(
            TelemetryConfig::default().with_sample_interval(64).with_history(64).with_profile(true),
        );
        for sim in [&mut observed, &mut plain] {
            sim.set_dense_stepping(dense);
            sim.set_event_skipping(skipping);
        }
        if islands {
            observed.set_island_frequency(2, Hertz::from_mhz(400.0));
            plain.set_island_frequency(2, Hertz::from_mhz(400.0));
        }
        let chunks = [chunk, 2 * chunk, chunk / 2 + 1, chunk + 37, chunk];
        let wo = window_sequence(&mut observed, &chunks);
        let wp = window_sequence(&mut plain, &chunks);
        prop_assert_eq!(wo, wp,
            "telemetry perturbed the run (gated={} faulted={} islands={} bursty={} dense={} skip={} seed={})",
            gated, faulted, islands, bursty, dense, skipping, seed);
        prop_assert_eq!(observed.stats(), plain.stats());
        prop_assert_eq!(observed.total_packets_delivered(), plain.total_packets_delivered());
        prop_assert_eq!(observed.queued_source_flits(), plain.queued_source_flits());
        prop_assert_eq!(observed.buffered_network_flits(), plain.buffered_network_flits());
        prop_assert_eq!(observed.in_flight_flits(), plain.in_flight_flits());
        prop_assert_eq!(observed.in_flight_credits(), plain.in_flight_credits());
        prop_assert_eq!(observed.skipped_cycle_count(), plain.skipped_cycle_count());

        // The observer really observed: windows were sampled and — with real
        // traffic flowing — the counter fabric saw grants.
        let telemetry = observed.telemetry().expect("telemetry stays installed");
        prop_assert!(telemetry.snapshots().count() >= 1, "no sample window was taken");
        let grants: u64 = telemetry.snapshots().map(|s| s.grants).sum();
        if observed.total_packets_delivered() > 0 {
            prop_assert!(grants > 0, "delivered traffic must be visible to the probes");
        }
        if observed.skipped_cycle_count() > 0 && !observed.dense_stepping() {
            let jumped: u64 = telemetry.snapshots().map(|s| s.horizon_skipped_cycles).sum();
            prop_assert!(jumped > 0, "horizon jumps must be visible to the probes");
        }
    }

    /// The counter bundle and the conservation ledger: one `counters()` call
    /// agrees with the individual getters and satisfies
    /// `generated = received + in-transit + dropped` at any observation point.
    #[test]
    fn counters_bundle_preserves_the_conservation_ledger(
        faulted in prop_oneof![Just(false), Just(true)],
        rate in 0.05f64..0.3,
        seed in 0u64..1_000_000,
    ) {
        let cfg = subsystem_cfg(false, faulted, false);
        let mut sim = NocSimulation::new(cfg, scenario_traffic(rate, false), seed);
        sim.run_cycles(1_500);
        let c = sim.counters();
        prop_assert_eq!(c.cycle, sim.current_cycle());
        prop_assert_eq!(c.flits_generated, sim.total_flits_generated());
        prop_assert_eq!(c.packets_delivered, sim.total_packets_delivered());
        prop_assert_eq!(c.in_flight_flits, sim.in_flight_flits());
        prop_assert_eq!(c.queued_source_flits, sim.queued_source_flits());
        prop_assert_eq!(c.buffered_network_flits, sim.buffered_network_flits());
        prop_assert_eq!(c.active_routers, sim.active_router_count());
        prop_assert_eq!(
            c.flits_generated,
            c.flits_received + c.in_transit_flits() + c.flits_dropped,
            "conservation ledger must balance"
        );
        if !faulted {
            prop_assert_eq!(c.flits_dropped, 0);
            prop_assert!((c.reachable_pairs - 1.0).abs() < 1e-12);
        }
    }
}

/// Per-island parallel stepping with the profiler armed (per-worker busy
/// tracking included) pinned against the uninstrumented serial golden: the
/// quadrant scenario with 1, 2 and 4 workers must produce bit-identical
/// windows, island windows and aggregate stats.
#[test]
fn profiled_parallel_stepping_matches_the_serial_golden() {
    let cfg = NetworkConfig::builder()
        .mesh(4, 4)
        .virtual_channels(2)
        .buffer_depth(4)
        .packet_length(5)
        .regions(RegionLayout::Quadrants)
        .build()
        .unwrap();
    let mk = || Box::new(SyntheticTraffic::new(TrafficPattern::Uniform, 0.12, 5));
    let mut serial = NocSimulation::new(cfg.clone(), mk(), 2015);
    let mut threaded2 = NocSimulation::new(cfg.clone(), mk(), 2015);
    let mut threaded4 = NocSimulation::new(cfg.clone(), mk(), 2015);
    threaded2.install_telemetry(TelemetryConfig::default().with_profile(true));
    threaded4.install_telemetry(TelemetryConfig::default().with_profile(true));
    for window in 0..6 {
        if window == 2 {
            for sim in [&mut serial, &mut threaded2, &mut threaded4] {
                sim.set_island_frequency(1, Hertz::from_mhz(500.0));
            }
        }
        serial.run_cycles_with_workers(500, 1);
        threaded2.run_cycles_with_workers(500, 2);
        threaded4.run_cycles_with_workers(500, 4);
        let golden = serial.take_window();
        assert_eq!(golden, threaded2.take_window(), "2-worker window {window} diverged");
        assert_eq!(golden, threaded4.take_window(), "4-worker window {window} diverged");
        let island_golden = serial.take_island_windows();
        assert_eq!(island_golden, threaded2.take_island_windows());
        assert_eq!(island_golden, threaded4.take_island_windows());
    }
    assert_eq!(serial.stats(), threaded2.stats());
    assert_eq!(serial.stats(), threaded4.stats());
    // The profiler measured real work on every worker thread. (Under the
    // NOC_DENSE_STEP=1 CI override the explicit worker counts clamp to the
    // serial dense reference, so no worker threads — or busy slots — exist.)
    for (sim, workers) in [(&threaded2, 2), (&threaded4, 4)] {
        let profile = sim.telemetry().expect("telemetry installed").profile();
        assert!(profile.steps >= 3_000, "every base tick is a profiled step");
        assert!(profile.total_ns() > 0);
        if sim.dense_stepping() {
            assert!(profile.worker_busy_ns.is_empty(), "dense reference spawns no workers");
        } else {
            assert_eq!(profile.worker_busy_ns.len(), workers);
            assert!(profile.worker_busy_ns.iter().all(|&ns| ns > 0), "idle profiled worker");
            assert!(profile.worker_imbalance().is_some());
        }
    }
}

/// Snapshot ring and event ring stay bounded; the snapshot windows abut.
#[test]
fn telemetry_memory_stays_bounded() {
    let cfg = subsystem_cfg(true, false, false);
    let mut sim = NocSimulation::new(cfg, scenario_traffic(0.15, false), 7);
    sim.install_telemetry(
        TelemetryConfig::default()
            .with_sample_interval(128)
            .with_history(4)
            .with_trace_capacity(8),
    );
    sim.run_cycles(4_096);
    let telemetry = sim.telemetry_mut().expect("telemetry installed");
    assert_eq!(telemetry.snapshots().count(), 4, "history ring keeps exactly the last K windows");
    let snaps = telemetry.take_snapshots();
    for pair in snaps.windows(2) {
        assert_eq!(pair[0].end_cycle, pair[1].start_cycle, "sample windows must abut");
    }
    for snap in &snaps {
        assert!(snap.end_cycle - snap.start_cycle >= 128, "windows span the sample interval");
    }
    assert!(telemetry.snapshots().count() == 0, "take_snapshots drains the ring");
    let events = telemetry.events();
    assert!(events.len() <= 8, "event ring exceeded its capacity");
    // The gated 4×4 mesh generates far more sleep/wake events than 8 over
    // 4k cycles, so eviction accounting must have kicked in.
    assert!(events.dropped_events() > 0, "expected evictions at capacity 8");
}

/// The Perfetto export of a real instrumented run — gating, faults, islands
/// and a mid-run retune all active — is structurally valid `trace_events`
/// JSON: one object per event, every object carries `name`/`ph`/`ts`/`pid`,
/// and every phase is from the documented M/I/X/C/B/E set.
#[test]
fn perfetto_export_of_a_real_run_has_the_trace_events_shape() {
    let cfg = subsystem_cfg(true, true, true);
    let mut sim = NocSimulation::new(cfg, scenario_traffic(0.15, true), 2015);
    sim.install_telemetry(TelemetryConfig::default().with_sample_interval(256));
    sim.run_cycles(2_000);
    sim.set_island_frequency(2, Hertz::from_mhz(500.0));
    sim.run_cycles(2_000);

    let telemetry = sim.telemetry().expect("telemetry installed");
    let trace = telemetry.events();
    assert!(!trace.is_empty(), "this scenario must emit events");
    let json = trace.perfetto_json();

    // Envelope.
    assert!(json.starts_with("{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n"));
    assert!(json.ends_with("\n]}\n"));
    // Balanced structure (no brace ever appears inside a string here).
    assert_eq!(json.matches('{').count(), json.matches('}').count());
    assert_eq!(json.matches('[').count(), json.matches(']').count());
    // One JSON object per retained event, plus the process-name metadata.
    assert_eq!(json.matches("\"ph\": ").count(), trace.len() + 1);
    assert!(json.contains("\"name\": \"process_name\""));
    // Every event object carries the required trace_events keys and a
    // phase from the documented set.
    let mut phases = std::collections::BTreeSet::new();
    for line in json.lines().filter(|l| l.starts_with('{') && !l.contains("traceEvents")) {
        let object = line.trim_end_matches(',');
        for key in ["\"name\": ", "\"ph\": ", "\"ts\": ", "\"pid\": "] {
            assert!(object.contains(key), "event missing {key}: {object}");
        }
        let ph = object.split("\"ph\": \"").nth(1).and_then(|s| s.chars().next()).unwrap();
        assert!("MIXCBE".contains(ph), "undocumented phase {ph:?} in {object}");
        phases.insert(ph);
    }
    // The retune must be on a counter track; the trace uses several phases.
    assert!(json.contains("island2_freq_mhz"));
    assert!(phases.contains(&'C'), "counter events expected, got {phases:?}");

    // The congestion heatmap matches the topology shape and carries load.
    let heatmap = sim.telemetry_heatmap().expect("telemetry installed");
    assert_eq!((heatmap.width, heatmap.height), (4, 4));
    assert_eq!(heatmap.utilization.len(), 16);
    assert!(heatmap.peak() > 0.0, "a loaded mesh has a hot router");
    assert!(heatmap.utilization.iter().all(|u| u.is_finite() && *u >= 0.0));
    let csv = heatmap.to_csv();
    assert_eq!(csv.lines().count(), 4);
    assert!(csv.lines().all(|row| row.split(',').count() == 4));
}

/// An uninstrumented simulation exports nothing: the heatmap and the state
/// accessors stay `None`, and `clear_telemetry` returns a sim to that state.
#[test]
fn telemetry_is_off_by_default_and_removable() {
    let mut sim =
        NocSimulation::new(subsystem_cfg(false, false, false), scenario_traffic(0.1, false), 3);
    assert!(sim.telemetry().is_none());
    assert!(sim.telemetry_heatmap().is_none());
    sim.run_cycles(200);
    sim.install_telemetry(TelemetryConfig::default());
    sim.run_cycles(200);
    assert!(sim.telemetry().is_some());
    sim.clear_telemetry();
    assert!(sim.telemetry().is_none());
    assert!(sim.telemetry_heatmap().is_none());
    sim.run_cycles(200);
    assert!(sim.telemetry().is_none(), "cleared telemetry must not come back");
}

// ---------------------------------------------------------------------------
// Sweep-coordinator observability
// ---------------------------------------------------------------------------

mod coordinator {
    use noc_dvfs::coordinator::{
        profile_path, run_sweep, ChaosConfig, CoordinatorConfig, PointContext, PointRunner,
        WorkUnit,
    };
    use noc_dvfs::PolicyKind;
    use noc_sim::telemetry::TelemetryEvent;
    use std::path::PathBuf;
    use std::sync::Arc;

    fn grid(n: usize) -> Vec<WorkUnit> {
        (0..n)
            .map(|i| WorkUnit::new(&format!("pt{i}"), PolicyKind::NoDvfs, 0.1 * i as f64, i as u64))
            .collect()
    }

    fn trivial_runner() -> Arc<PointRunner> {
        Arc::new(|unit: &WorkUnit, ctx: &mut PointContext| {
            ctx.checkpoint_tick();
            Ok(format!("seed={}", unit.seed))
        })
    }

    fn temp_journal(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("telemetry-invariants-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir.join(name)
    }

    /// A sweep journals its profile and trace: the profile counts every
    /// point, the trace brackets each point with begin/end events, and the
    /// profile JSON lands next to the journal.
    #[test]
    fn sweep_profile_and_trace_cover_every_point() {
        let units = grid(3);
        let journal = temp_journal("clean.jsonl");
        let report =
            run_sweep(&units, trivial_runner(), &journal, &CoordinatorConfig::quick()).unwrap();
        assert!(report.failures.is_empty());
        let p = &report.profile;
        assert_eq!((p.points_total, p.completed, p.resumed), (3, 3, 0));
        assert_eq!((p.retries, p.watchdog_timeouts, p.chaos_kills, p.failed), (0, 0, 0, 0));
        let starts = report
            .trace
            .events()
            .filter(|e| matches!(e.event, TelemetryEvent::SweepPointStart { .. }))
            .count();
        let completes = report
            .trace
            .events()
            .filter(|e| matches!(e.event, TelemetryEvent::SweepPointComplete { ok: true, .. }))
            .count();
        assert_eq!((starts, completes), (3, 3));
        let sidecar = profile_path(&journal);
        let json = std::fs::read_to_string(&sidecar).expect("profile sidecar written");
        assert_eq!(json, p.to_json());
        for key in ["points_total", "completed", "retries", "wall_micros"] {
            assert!(json.contains(key), "profile JSON missing {key}");
        }

        // Resuming the finished sweep reads everything from the journal.
        let resumed =
            run_sweep(&units, trivial_runner(), &journal, &CoordinatorConfig::quick()).unwrap();
        assert_eq!(resumed.profile.resumed, 3);
        assert_eq!(resumed.profile.completed, 3);
        let _ = std::fs::remove_file(&journal);
        let _ = std::fs::remove_file(&sidecar);
    }

    /// Chaos-killed attempts show up in the profile as kills and retries,
    /// and the converged sweep still completes every point.
    #[test]
    fn chaos_kills_are_counted_in_the_profile() {
        let units = grid(2);
        let journal = temp_journal("chaos.jsonl");
        let cfg = CoordinatorConfig::quick()
            .with_chaos(ChaosConfig { kill_probability: 1.0, seed: 11 });
        let report = run_sweep(&units, trivial_runner(), &journal, &cfg).unwrap();
        assert!(report.failures.is_empty(), "retries must absorb the chaos");
        assert_eq!(report.profile.completed, 2);
        assert!(report.profile.chaos_kills >= 2, "every first attempt was condemned");
        assert!(report.profile.retries >= 2);
        assert_eq!(report.profile.retries, report.retries as u64);
        let retried = report
            .trace
            .events()
            .filter(|e| matches!(e.event, TelemetryEvent::SweepPointRetry { .. }))
            .count();
        assert_eq!(retried as u64, report.profile.retries);
        let _ = std::fs::remove_file(&journal);
        let _ = std::fs::remove_file(profile_path(&journal));
    }
}
