//! Property tests for the routing invariants on randomized mesh and torus
//! topologies: routes terminate, stay on the topology, are minimal for the
//! dimension-ordered algorithms, respect the dateline VC discipline, and
//! `path_length` agrees with an independent hop-by-hop traversal.

use noc_sim::{Direction, RoutingAlgorithm, Topology, TopologyKind, XyRouting, YxRouting};
use proptest::prelude::*;

fn arbitrary_topology() -> impl Strategy<Value = Topology> {
    (
        prop_oneof![Just(TopologyKind::Mesh), Just(TopologyKind::Torus)],
        2usize..=6,
        2usize..=6,
    )
        .prop_map(|(kind, w, h)| Topology::with_kind(kind, w, h))
}

fn algorithms() -> [(&'static str, Box<dyn RoutingAlgorithm>); 2] {
    [
        ("xy", Box::new(XyRouting::new()) as Box<dyn RoutingAlgorithm>),
        ("yx", Box::new(YxRouting::new())),
    ]
}

/// Walks the route hop by hop, independently of `path_length`, panicking if
/// it leaves the topology or exceeds `limit` hops.
fn walk(routing: &dyn RoutingAlgorithm, topo: &Topology, src: usize, dst: usize) -> usize {
    let mut at = src;
    let mut hops = 0;
    let limit = topo.node_count() + 1;
    while at != dst {
        let dir = routing.route(topo, at, dst);
        assert_ne!(dir, Direction::Local, "only the destination may route local");
        let next = topo
            .neighbor(at, dir)
            .unwrap_or_else(|| panic!("route left the topology at node {at} going {dir}"));
        at = next;
        hops += 1;
        assert!(hops <= limit, "route from {src} to {dst} did not terminate");
    }
    hops
}

proptest! {
    #![proptest_config(ProptestConfig::default())]

    /// Routes terminate, never step off the topology, and `path_length`
    /// agrees with the independent hop-by-hop traversal for every pair.
    #[test]
    fn routes_terminate_on_the_topology(
        topo in arbitrary_topology(),
        src in 0usize..36,
        dst in 0usize..36,
    ) {
        let n = topo.node_count();
        let (src, dst) = (src % n, dst % n);
        for (name, routing) in algorithms() {
            let walked = walk(routing.as_ref(), &topo, src, dst);
            prop_assert_eq!(
                routing.path_length(&topo, src, dst),
                walked,
                "{} on {}: path_length disagrees with traversal {}->{}",
                name, topo, src, dst
            );
        }
    }

    /// Dimension-ordered routing is minimal: exactly the topology's hop
    /// distance (Manhattan on the mesh, shortest-way-around on the torus).
    #[test]
    fn dimension_ordered_routes_are_minimal(topo in arbitrary_topology(), seed in 0usize..1) {
        let _ = seed;
        for (name, routing) in algorithms() {
            for src in 0..topo.node_count() {
                for dst in 0..topo.node_count() {
                    prop_assert_eq!(
                        routing.path_length(&topo, src, dst),
                        topo.hop_distance(src, dst),
                        "{} on {}: {}->{} not minimal", name, topo, src, dst
                    );
                }
            }
        }
    }

    /// The destination (and only the destination) routes to the local port.
    #[test]
    fn only_the_destination_routes_local(
        topo in arbitrary_topology(),
        node in 0usize..36,
    ) {
        let node = node % topo.node_count();
        for (_, routing) in algorithms() {
            prop_assert_eq!(routing.route(&topo, node, node), Direction::Local);
        }
    }

    /// Dateline classes are binary, always 0 on meshes, and monotone along a
    /// route: once a packet enters class 1 it stays there until it switches
    /// dimension — the discipline that keeps torus rings deadlock-free.
    #[test]
    fn vc_classes_respect_the_dateline_discipline(
        topo in arbitrary_topology(),
        src in 0usize..36,
        dst in 0usize..36,
    ) {
        let n = topo.node_count();
        let (src, dst) = (src % n, dst % n);
        for (name, routing) in algorithms() {
            let mut at = src;
            let mut prev: Option<(Direction, u8)> = None;
            while at != dst {
                let dir = routing.route(&topo, at, dst);
                let class = routing.next_vc_class(&topo, src, at, dst);
                prop_assert!(class <= 1, "{name}: class must be 0 or 1");
                if !topo.is_torus() {
                    prop_assert_eq!(class, 0, "{} classes must stay 0 on meshes", name);
                }
                if let Some((prev_dir, prev_class)) = prev {
                    if prev_dir == dir {
                        // Same ring: the class may only go 0 -> 1, never back.
                        prop_assert!(
                            class >= prev_class,
                            "{name} on {topo}: class fell from {prev_class} to {class}"
                        );
                    }
                }
                prev = Some((dir, class));
                at = topo.neighbor(at, dir).expect("walk stays on the topology");
            }
        }
    }
}
