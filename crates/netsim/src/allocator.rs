//! Separable input-first allocator.
//!
//! Both the virtual-channel allocator and the switch allocator of the router
//! are instances of the same separable scheme: a first round of per-*requester
//! group* arbitration reduces each group to at most one request, and a second
//! round of per-*resource* arbitration picks a winner among the surviving
//! requests. This mirrors the iSLIP-like separable allocators of the
//! reference router and keeps every stage O(requests).

use crate::arbiter::RoundRobinArbiter;

/// A request from `requester` (identified by a group and a member within the
/// group) for `resource`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocRequest {
    /// Requester group (e.g. input port).
    pub group: usize,
    /// Member within the group (e.g. virtual channel within the input port).
    pub member: usize,
    /// Requested resource (e.g. output port, or output VC index).
    pub resource: usize,
}

/// A granted (requester, resource) pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocGrant {
    /// Requester group of the winner.
    pub group: usize,
    /// Member within the winning group.
    pub member: usize,
    /// Resource that was granted.
    pub resource: usize,
}

/// Separable input-first allocator with round-robin arbiters.
///
/// The allocator owns persistent scratch buffers (`stage1`, `grants`) that
/// are reused across allocation rounds, so steady-state allocation performs
/// no heap allocation; [`allocate`](Self::allocate) returns a slice into the
/// internal grant buffer that stays valid until the next round.
#[derive(Debug, Clone)]
pub struct SeparableAllocator {
    groups: usize,
    members_per_group: usize,
    resources: usize,
    input_arbiters: Vec<RoundRobinArbiter>,
    output_arbiters: Vec<RoundRobinArbiter>,
    /// Scratch: stage-1 winner (member, resource) per group; cleared per round.
    stage1: Vec<Option<(usize, usize)>>,
    /// Scratch: requesting-member bitmask per group; cleared per round.
    member_masks: Vec<u64>,
    /// Scratch: resource requested by (group, member), flat-indexed; only
    /// entries whose `member_masks` bit is set are meaningful.
    resource_of: Vec<usize>,
    /// Scratch: grants of the current round (returned by reference).
    grants: Vec<AllocGrant>,
}

impl SeparableAllocator {
    /// Creates an allocator for `groups × members_per_group` requesters and
    /// `resources` resources.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(groups: usize, members_per_group: usize, resources: usize) -> Self {
        assert!(groups > 0 && members_per_group > 0 && resources > 0);
        SeparableAllocator {
            groups,
            members_per_group,
            resources,
            input_arbiters: (0..groups).map(|_| RoundRobinArbiter::new(members_per_group)).collect(),
            output_arbiters: (0..resources).map(|_| RoundRobinArbiter::new(groups)).collect(),
            stage1: vec![None; groups],
            member_masks: vec![0; groups],
            resource_of: vec![0; groups * members_per_group],
            grants: Vec::with_capacity(groups),
        }
    }

    /// Number of requester groups.
    pub fn groups(&self) -> usize {
        self.groups
    }

    /// Number of resources.
    pub fn resources(&self) -> usize {
        self.resources
    }

    /// Performs one allocation round.
    ///
    /// Each group receives at most one grant and each resource is granted to
    /// at most one group. Requests naming an out-of-range group, member or
    /// resource are ignored.
    ///
    /// # Panics
    ///
    /// Panics if the allocator was built with more than 64 members per group
    /// or more than 64 groups (the router never needs more; the limit keeps
    /// the per-cycle arbitration allocation-free).
    pub fn allocate(&mut self, requests: &[AllocRequest]) -> &[AllocGrant] {
        self.grants.clear();
        if requests.is_empty() {
            return &self.grants;
        }
        assert!(
            self.members_per_group <= 64 && self.groups <= 64,
            "separable allocator supports at most 64 members and 64 groups"
        );
        // Fast path: a lone request wins both stages unconditionally (a
        // single-bit mask makes every arbiter pick that bit regardless of
        // its rotating priority), so the stage machinery can be skipped.
        // The arbiter commits below are exactly the ones the full path
        // performs for a committed grant, keeping round-robin state — and
        // therefore all downstream golden sequences — bit-identical. This is
        // the dominant case at light load, where the sparse simulation core
        // hands the allocator one ready flit at a time.
        if let [req] = requests {
            if req.group < self.groups
                && req.member < self.members_per_group
                && req.resource < self.resources
            {
                self.grants.push(AllocGrant {
                    group: req.group,
                    member: req.member,
                    resource: req.resource,
                });
                self.output_arbiters[req.resource].commit(req.group);
                self.input_arbiters[req.group].commit(req.member);
            }
            return &self.grants;
        }
        // Stage 1: per-group arbitration among that group's requesting
        // members. One pass over the requests fills the per-group member
        // masks and the (group, member) → resource table; when a member
        // appears in several requests the first one wins, matching the
        // original "first matching request" semantics.
        self.member_masks.fill(0);
        for req in requests {
            if req.group < self.groups
                && req.member < self.members_per_group
                && req.resource < self.resources
            {
                let bit = 1u64 << req.member;
                if self.member_masks[req.group] & bit == 0 {
                    self.member_masks[req.group] |= bit;
                    self.resource_of[req.group * self.members_per_group + req.member] =
                        req.resource;
                }
            }
        }
        for group in 0..self.groups {
            self.stage1[group] =
                self.input_arbiters[group].peek_mask(self.member_masks[group]).map(|member| {
                    (member, self.resource_of[group * self.members_per_group + member])
                });
        }

        // Stage 2: per-resource arbitration among groups that survived stage 1.
        // Only resources that were actually requested need an arbitration
        // round; a resource already proposed by an earlier group was arbitrated
        // in that group's iteration, which the `stage1[..g]` scan below detects
        // (linear, but group counts are ≤ 5 in practice).
        for g in 0..self.groups {
            let Some((_member, resource)) = self.stage1[g] else { continue };
            let proposed_earlier = self.stage1[..g]
                .iter()
                .any(|s| matches!(s, Some((_, r)) if *r == resource));
            if proposed_earlier {
                continue;
            }
            let mut group_mask = 0u64;
            for (group, s2) in self.stage1.iter().enumerate() {
                if let Some((_m, r)) = s2 {
                    if *r == resource {
                        group_mask |= 1u64 << group;
                    }
                }
            }
            if let Some(group) = self.output_arbiters[resource].peek_mask(group_mask) {
                let (member, _r) = self.stage1[group].expect("stage-1 winner exists");
                self.grants.push(AllocGrant { group, member, resource });
                // Rotate both arbiters only for committed grants so that
                // losing requesters keep their priority.
                self.output_arbiters[resource].commit(group);
                self.input_arbiters[group].commit(member);
            }
        }
        &self.grants
    }
}

#[cfg(feature = "snapshot")]
impl SeparableAllocator {
    /// Encodes the persistent allocator state (the two arbiter banks) for a
    /// checkpoint. The stage-1/grant buffers are per-round scratch, cleared
    /// by the stage that fills them, and are not written.
    pub(crate) fn save_state(&self, w: &mut crate::snapshot::SnapWriter) {
        for arb in &self.input_arbiters {
            arb.save_state(w);
        }
        for arb in &self.output_arbiters {
            arb.save_state(w);
        }
    }

    /// Restores the arbiter banks from a checkpoint.
    pub(crate) fn load_state(
        &mut self,
        r: &mut crate::snapshot::SnapReader<'_>,
    ) -> Result<(), crate::snapshot::SnapshotError> {
        for arb in &mut self.input_arbiters {
            arb.load_state(r)?;
        }
        for arb in &mut self.output_arbiters {
            arb.load_state(r)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(group: usize, member: usize, resource: usize) -> AllocRequest {
        AllocRequest { group, member, resource }
    }

    #[test]
    fn single_request_is_granted() {
        let mut alloc = SeparableAllocator::new(3, 2, 4);
        let grants = alloc.allocate(&[req(1, 0, 2)]);
        assert_eq!(grants, vec![AllocGrant { group: 1, member: 0, resource: 2 }]);
    }

    #[test]
    fn single_request_fast_path_rotates_arbiters_like_the_full_path() {
        // After a lone grant to group 0, resource 0's round-robin pointer
        // must sit past group 0 — so in the next contended round group 1
        // wins, exactly as if the full two-stage path had arbitrated the
        // lone request.
        let mut alloc = SeparableAllocator::new(2, 2, 2);
        let grants = alloc.allocate(&[req(0, 0, 0)]);
        assert_eq!(grants, vec![AllocGrant { group: 0, member: 0, resource: 0 }]);
        let contended = alloc.allocate(&[req(0, 0, 0), req(1, 0, 0)]);
        assert_eq!(contended.len(), 1);
        assert_eq!(contended[0].group, 1, "priority must have rotated past group 0");
        // The winning group's input arbiter rotated too: with both members
        // of group 0 requesting, member 1 now has priority.
        let members = alloc.allocate(&[req(0, 0, 0), req(0, 1, 1)]);
        assert_eq!(members.len(), 1);
        assert_eq!(members[0].member, 1, "input priority must have rotated past member 0");
    }

    #[test]
    fn each_resource_granted_at_most_once() {
        let mut alloc = SeparableAllocator::new(4, 1, 2);
        let grants = alloc.allocate(&[req(0, 0, 0), req(1, 0, 0), req(2, 0, 0), req(3, 0, 0)]);
        assert_eq!(grants.len(), 1);
        assert_eq!(grants[0].resource, 0);
    }

    #[test]
    fn each_group_granted_at_most_once() {
        let mut alloc = SeparableAllocator::new(1, 4, 4);
        // One group with four members asking for four different resources:
        // input-first arbitration lets only one member through.
        let grants = alloc.allocate(&[req(0, 0, 0), req(0, 1, 1), req(0, 2, 2), req(0, 3, 3)]);
        assert_eq!(grants.len(), 1);
    }

    #[test]
    fn disjoint_requests_all_granted() {
        let mut alloc = SeparableAllocator::new(3, 1, 3);
        let grants = alloc.allocate(&[req(0, 0, 0), req(1, 0, 1), req(2, 0, 2)]);
        assert_eq!(grants.len(), 3);
    }

    #[test]
    fn contention_resolves_fairly_over_rounds() {
        let mut alloc = SeparableAllocator::new(2, 1, 1);
        let requests = [req(0, 0, 0), req(1, 0, 0)];
        let mut wins = [0usize; 2];
        for _ in 0..100 {
            for g in alloc.allocate(&requests) {
                wins[g.group] += 1;
            }
        }
        assert_eq!(wins[0], 50);
        assert_eq!(wins[1], 50);
    }

    #[test]
    fn out_of_range_requests_are_ignored() {
        let mut alloc = SeparableAllocator::new(2, 2, 2);
        let grants = alloc.allocate(&[req(5, 0, 0), req(0, 7, 1), req(1, 0, 9)]);
        assert!(grants.is_empty());
    }

    #[test]
    fn grants_reference_actual_requests() {
        let mut alloc = SeparableAllocator::new(5, 8, 5);
        let requests =
            vec![req(0, 3, 1), req(0, 5, 2), req(2, 1, 1), req(3, 0, 4), req(4, 7, 2)];
        let grants = alloc.allocate(&requests);
        for g in grants {
            assert!(
                requests
                    .iter()
                    .any(|r| r.group == g.group && r.member == g.member && r.resource == g.resource),
                "grant {g:?} does not correspond to any request"
            );
        }
        // Disjoint groups and at least partially disjoint resources: expect
        // at least 3 grants (0→1 or 2, 2→1, 3→4, 4→2).
        assert!(grants.len() >= 3);
    }
}
