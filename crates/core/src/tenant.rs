//! Multi-tenant workload composition and per-tenant QoS accounting.
//!
//! The paper evaluates one application per fabric. Real MPSoCs co-locate
//! many: this module maps N application task graphs — the published
//! H.264/VCE encoders or seeded random DAGs
//! ([`noc_apps::random_task_graph`]) — onto disjoint rectangular tiles of
//! one large fabric and runs them **concurrently over shared routers**,
//! with per-tenant QoS ledgers that sum exactly to the global measurement
//! window (the same conservation contract the per-island windows keep).
//!
//! The pieces:
//!
//! * [`TenantWorkload`] — one application graph plus its relative speed;
//! * [`MappingPolicy`] — where each tenant's tile goes
//!   ([`Tiled`](MappingPolicy::Tiled) row packing, or explicit
//!   [`Offsets`](MappingPolicy::Offsets));
//! * [`compose_tenants`] — the composition itself: one fabric-sized
//!   [`MatrixTraffic`] summing every tenant's scaled traffic, plus the
//!   [`TenantMap`] that attributes counted events to slots;
//! * [`run_tenants`] — a fixed-frequency measurement driver producing a
//!   [`TenantReport`]: global window, per-slot windows and per-slot energy
//!   ([`RouterPowerModel::tenant_energy`]).

use noc_apps::TaskGraph;
use noc_power::{model::EnergyBreakdown, FdsoiTech, RouterPowerModel};
use noc_sim::{
    MatrixTraffic, NetworkConfig, NocSimulation, TenantMap, TenantMapError, WindowMeasurement,
};
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// One tenant: an application task graph (mapped on its own tile) and the
/// relative speed it runs at.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantWorkload {
    /// The application graph, mapped on a `tile_size()` tile.
    pub graph: TaskGraph,
    /// Relative application speed (1.0 ≙ the nominal frame rate).
    pub speed: f64,
}

impl TenantWorkload {
    /// A tenant running at nominal speed.
    pub fn new(graph: TaskGraph) -> Self {
        TenantWorkload { graph, speed: 1.0 }
    }

    /// The `(width, height)` of the tile the graph is mapped on.
    pub fn tile_size(&self) -> (usize, usize) {
        self.graph.mesh_size()
    }
}

/// Where each tenant's tile is placed on the fabric.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MappingPolicy {
    /// Greedy row packing: tiles go left to right in placement order; when a
    /// tile would cross the fabric's right edge, placement moves down past
    /// the tallest tile of the finished row and starts a new one.
    Tiled,
    /// Explicit `(x, y)` top-left corner per tenant, in tenant order.
    Offsets(Vec<(usize, usize)>),
}

/// Errors returned by [`compose_tenants`].
#[derive(Debug, Clone, PartialEq)]
pub enum TenantComposeError {
    /// No workloads were given.
    NoTenants,
    /// A parameter was non-positive or not finite.
    InvalidParam(&'static str),
    /// A tenant's tile does not fit on the fabric at its placement.
    DoesNotFit {
        /// The tenant whose tile fell outside the fabric.
        tenant: usize,
        /// The attempted top-left corner.
        offset: (usize, usize),
        /// The tenant's tile dimensions.
        tile: (usize, usize),
        /// The fabric dimensions.
        fabric: (usize, usize),
    },
    /// [`MappingPolicy::Offsets`] listed a different number of offsets than
    /// there are tenants.
    WrongOffsetCount {
        /// Number of tenants to place.
        tenants: usize,
        /// Number of offsets given.
        offsets: usize,
    },
    /// Two tenants' tiles overlap on a fabric node.
    Overlap {
        /// The doubly-claimed fabric node.
        node: usize,
        /// The tenant that claimed it first.
        first: usize,
        /// The tenant that claimed it again.
        second: usize,
    },
    /// A tenant's graph carries no traffic, so its load cannot be scaled.
    NoTraffic {
        /// The offending tenant.
        tenant: usize,
    },
    /// The assembled assignment failed [`TenantMap`] validation.
    Map(TenantMapError),
}

impl fmt::Display for TenantComposeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TenantComposeError::NoTenants => write!(f, "at least one tenant workload is required"),
            TenantComposeError::InvalidParam(what) => {
                write!(f, "{what} must be positive and finite")
            }
            TenantComposeError::DoesNotFit { tenant, offset, tile, fabric } => write!(
                f,
                "tenant {tenant}: a {}x{} tile at ({}, {}) falls outside the {}x{} fabric",
                tile.0, tile.1, offset.0, offset.1, fabric.0, fabric.1
            ),
            TenantComposeError::WrongOffsetCount { tenants, offsets } => {
                write!(f, "{tenants} tenants but {offsets} placement offsets")
            }
            TenantComposeError::Overlap { node, first, second } => write!(
                f,
                "tenants {first} and {second} both claim fabric node {node}"
            ),
            TenantComposeError::NoTraffic { tenant } => {
                write!(f, "tenant {tenant}'s graph carries no traffic")
            }
            TenantComposeError::Map(err) => write!(f, "tenant map rejected: {err}"),
        }
    }
}

impl Error for TenantComposeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TenantComposeError::Map(err) => Some(err),
            _ => None,
        }
    }
}

impl From<TenantMapError> for TenantComposeError {
    fn from(err: TenantMapError) -> Self {
        TenantComposeError::Map(err)
    }
}

/// The result of [`compose_tenants`]: everything needed to run and account
/// a multi-tenant fabric.
#[derive(Debug, Clone)]
pub struct TenantComposition {
    /// Fabric-wide traffic: the sum of every tenant's scaled matrix.
    pub traffic: MatrixTraffic,
    /// Node → tenant-slot assignment for the accounting ledgers.
    pub map: TenantMap,
    /// The `(x, y)` top-left corner each tenant was placed at.
    pub offsets: Vec<(usize, usize)>,
}

/// Resolves the placement of every tile, either by greedy row packing or
/// from the explicit offset list.
fn place_tiles(
    fabric: (usize, usize),
    workloads: &[TenantWorkload],
    policy: &MappingPolicy,
) -> Result<Vec<(usize, usize)>, TenantComposeError> {
    let (fw, fh) = fabric;
    match policy {
        MappingPolicy::Offsets(offsets) => {
            if offsets.len() != workloads.len() {
                return Err(TenantComposeError::WrongOffsetCount {
                    tenants: workloads.len(),
                    offsets: offsets.len(),
                });
            }
            for (tenant, (w, &(x, y))) in workloads.iter().zip(offsets.iter()).enumerate() {
                let (tw, th) = w.tile_size();
                if x + tw > fw || y + th > fh {
                    return Err(TenantComposeError::DoesNotFit {
                        tenant,
                        offset: (x, y),
                        tile: (tw, th),
                        fabric,
                    });
                }
            }
            Ok(offsets.clone())
        }
        MappingPolicy::Tiled => {
            let mut offsets = Vec::with_capacity(workloads.len());
            let (mut x, mut y, mut row_height) = (0usize, 0usize, 0usize);
            for (tenant, w) in workloads.iter().enumerate() {
                let (tw, th) = w.tile_size();
                if x + tw > fw {
                    x = 0;
                    y += row_height;
                    row_height = 0;
                }
                if x + tw > fw || y + th > fh {
                    return Err(TenantComposeError::DoesNotFit {
                        tenant,
                        offset: (x, y),
                        tile: (tw, th),
                        fabric,
                    });
                }
                offsets.push((x, y));
                x += tw;
                row_height = row_height.max(th);
            }
            Ok(offsets)
        }
    }
}

/// Composes N tenant workloads onto one `fabric_width × fabric_height`
/// fabric.
///
/// Each tenant's packet rates are scaled exactly as
/// [`TaskGraph::traffic_matrix`] scales a solo run — at `speed == 1.0` the
/// tenant's busiest source node injects `peak_node_rate` flits per node
/// cycle — then translated to the tenant's tile placement and summed into
/// one fabric-sized [`MatrixTraffic`]. Every node of a tenant's tile
/// (whether or not it hosts a task) is assigned to that tenant's slot in
/// the returned [`TenantMap`]; fabric nodes outside every tile fall to the
/// map's background slot, so the per-slot ledgers always sum to the global
/// window.
///
/// # Errors
///
/// Returns a [`TenantComposeError`] if the workload list is empty, a
/// parameter is invalid, a tile does not fit or overlaps another, or a
/// graph carries no traffic.
pub fn compose_tenants(
    fabric_width: usize,
    fabric_height: usize,
    workloads: &[TenantWorkload],
    policy: &MappingPolicy,
    packet_length: usize,
    peak_node_rate: f64,
) -> Result<TenantComposition, TenantComposeError> {
    if workloads.is_empty() {
        return Err(TenantComposeError::NoTenants);
    }
    if packet_length == 0 {
        return Err(TenantComposeError::InvalidParam("packet length"));
    }
    if !(peak_node_rate.is_finite() && peak_node_rate > 0.0) {
        return Err(TenantComposeError::InvalidParam("peak node rate"));
    }
    for w in workloads {
        if !(w.speed.is_finite() && w.speed >= 0.0) {
            return Err(TenantComposeError::InvalidParam("tenant speed"));
        }
    }
    let fabric = (fabric_width, fabric_height);
    let offsets = place_tiles(fabric, workloads, policy)?;

    let node_count = fabric_width * fabric_height;
    let mut rates = vec![vec![0.0f64; node_count]; node_count];
    let mut owner: Vec<Option<u32>> = vec![None; node_count];

    for (tenant, (w, &(ox, oy))) in workloads.iter().zip(offsets.iter()).enumerate() {
        let (tw, th) = w.tile_size();
        // Claim the whole tile for the tenant's slot (shared routers inside
        // the tile carry only this tenant's traffic under XY routing).
        for ty in 0..th {
            for tx in 0..tw {
                let node = (oy + ty) * fabric_width + (ox + tx);
                if let Some(first) = owner[node] {
                    return Err(TenantComposeError::Overlap {
                        node,
                        first: first as usize,
                        second: tenant,
                    });
                }
                owner[node] = Some(tenant as u32);
            }
        }
        // The same normalisation as TaskGraph::traffic_matrix, translated to
        // the tile placement.
        let packet_rates = w.graph.node_packet_rates();
        let peak_packets: f64 =
            packet_rates.iter().map(|row| row.iter().sum::<f64>()).fold(0.0, f64::max);
        if peak_packets <= 0.0 {
            return Err(TenantComposeError::NoTraffic { tenant });
        }
        let scale = peak_node_rate / (peak_packets * packet_length as f64);
        for (src, row) in packet_rates.iter().enumerate() {
            let (sx, sy) = (src % tw, src / tw);
            let fabric_src = (oy + sy) * fabric_width + (ox + sx);
            for (dst, &packets) in row.iter().enumerate() {
                if packets <= 0.0 {
                    continue;
                }
                let (dx, dy) = (dst % tw, dst / tw);
                let fabric_dst = (oy + dy) * fabric_width + (ox + dx);
                rates[fabric_src][fabric_dst] +=
                    packets * packet_length as f64 * scale * w.speed;
            }
        }
    }

    let map = TenantMap::new(owner, workloads.len())?;
    Ok(TenantComposition {
        traffic: MatrixTraffic::new(rates, packet_length),
        map,
        offsets,
    })
}

/// Per-slot QoS of one [`run_tenants`] measurement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantQos {
    /// The tenant id, or `None` for the background slot (fabric nodes
    /// outside every tile).
    pub tenant: Option<u32>,
    /// Fabric nodes assigned to the slot.
    pub nodes: usize,
    /// The slot's accounting ledger over the measurement phase. Additive
    /// fields sum to [`TenantReport::global`] across all slots.
    pub window: WindowMeasurement,
    /// Energy consumed by the slot's routers over the measurement phase.
    pub energy: EnergyBreakdown,
}

impl TenantQos {
    /// The slot's throughput in flits ejected per NoC cycle.
    pub fn throughput_flits_per_cycle(&self) -> f64 {
        if self.window.noc_cycles == 0 {
            0.0
        } else {
            self.window.flits_ejected as f64 / self.window.noc_cycles as f64
        }
    }
}

/// The result of one [`run_tenants`] measurement: the global window plus
/// one [`TenantQos`] per slot (tenants first, background slot last).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantReport {
    /// The fabric-wide measurement window.
    pub global: WindowMeasurement,
    /// Per-slot QoS, indexed by slot (`tenant_count` entries for tenants,
    /// then the background slot).
    pub slots: Vec<TenantQos>,
    /// Fabric-wide energy over the measurement phase (the exact sum of the
    /// per-slot energies — same fold, partitioned).
    pub energy: EnergyBreakdown,
}

impl TenantReport {
    /// The QoS entry of tenant `t`, if it exists.
    pub fn tenant(&self, t: u32) -> Option<&TenantQos> {
        self.slots.iter().find(|q| q.tenant == Some(t))
    }

    /// The background slot's QoS entry.
    pub fn background(&self) -> &TenantQos {
        self.slots.last().expect("a report always has the background slot")
    }
}

/// Runs a composed multi-tenant fabric at the network's maximum frequency
/// and reports per-tenant QoS.
///
/// The simulation warms up for `warmup_cycles` (ledgers then reset), then
/// measures for `measure_cycles`. Energy is attributed per slot with
/// [`RouterPowerModel::tenant_energy`] at the maximum frequency's operating
/// point, so the slot energies sum bit-identically to the fabric total.
///
/// # Panics
///
/// Panics if the composition's node count does not match `net` (compose for
/// the same fabric dimensions you run on).
pub fn run_tenants(
    net: &NetworkConfig,
    composition: &TenantComposition,
    warmup_cycles: u64,
    measure_cycles: u64,
    seed: u64,
) -> TenantReport {
    let mut sim = NocSimulation::new(net.clone(), Box::new(composition.traffic.clone()), seed);
    sim.set_noc_frequency(net.max_frequency());
    sim.set_tenant_map(composition.map.clone())
        .expect("composition tile map must match the network dimensions");

    sim.run_cycles(warmup_cycles);
    let _ = sim.take_window();
    let _ = sim.take_tenant_windows();
    let _ = sim.take_activity();

    sim.run_cycles(measure_cycles);
    let global = sim.take_window();
    let windows = sim.take_tenant_windows();
    let activity = sim.take_activity();

    let tech = FdsoiTech::new();
    let power_model = RouterPowerModel::new();
    let f = net.max_frequency();
    let vdd = tech.vdd_for_frequency(f);

    let map = &composition.map;
    let mut energy = EnergyBreakdown::default();
    let slots = windows
        .into_iter()
        .enumerate()
        .map(|(slot, window)| {
            let e = power_model.tenant_energy(
                &activity,
                map.assignments(),
                slot as u32,
                f,
                vdd,
                global.wall_time_ps,
            );
            energy += e;
            TenantQos {
                tenant: (slot < map.tenant_count()).then_some(slot as u32),
                nodes: map.node_counts()[slot],
                window,
                energy: e,
            }
        })
        .collect();

    TenantReport { global, slots, energy }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_apps::{h264_encoder, random_task_graph, DagConfig};

    fn fabric(width: usize, height: usize) -> NetworkConfig {
        NetworkConfig::builder()
            .mesh(width, height)
            .virtual_channels(2)
            .buffer_depth(4)
            .packet_length(5)
            .build()
            .unwrap()
    }

    fn two_dags() -> Vec<TenantWorkload> {
        (0..2)
            .map(|t| {
                TenantWorkload::new(
                    random_task_graph(format!("t{t}"), &DagConfig::new(6, 4, 4, 100 + t)).unwrap(),
                )
            })
            .collect()
    }

    #[test]
    fn tiled_placement_packs_rows() {
        let comp =
            compose_tenants(8, 4, &two_dags(), &MappingPolicy::Tiled, 5, 0.2).unwrap();
        assert_eq!(comp.offsets, vec![(0, 0), (4, 0)]);
        assert_eq!(comp.map.tenant_count(), 2);
        // The whole fabric is tiled: the background slot is empty.
        assert_eq!(comp.map.node_counts()[2], 0);
        // Tile translation: node (x, y) of tile 1 lands at x+4 on the fabric.
        assert_eq!(comp.map.tenant_of(4), Some(1));
        assert_eq!(comp.map.tenant_of(3), Some(0));
    }

    #[test]
    fn explicit_offsets_place_and_leave_background() {
        let comp = compose_tenants(
            8,
            8,
            &two_dags(),
            &MappingPolicy::Offsets(vec![(0, 0), (4, 4)]),
            5,
            0.2,
        )
        .unwrap();
        assert_eq!(comp.map.tenant_of(0), Some(0));
        assert_eq!(comp.map.tenant_of(4 * 8 + 4), Some(1));
        // Node (4, 0) belongs to neither tile: background.
        assert_eq!(comp.map.tenant_of(4), None);
        assert!(comp.map.node_counts()[2] > 0);
    }

    #[test]
    fn composition_errors_cover_misplacement() {
        let w = two_dags();
        assert!(matches!(
            compose_tenants(8, 4, &[], &MappingPolicy::Tiled, 5, 0.2),
            Err(TenantComposeError::NoTenants)
        ));
        assert!(matches!(
            compose_tenants(4, 4, &w, &MappingPolicy::Tiled, 5, 0.2),
            Err(TenantComposeError::DoesNotFit { tenant: 1, .. })
        ));
        assert!(matches!(
            compose_tenants(8, 4, &w, &MappingPolicy::Offsets(vec![(0, 0)]), 5, 0.2),
            Err(TenantComposeError::WrongOffsetCount { tenants: 2, offsets: 1 })
        ));
        assert!(matches!(
            compose_tenants(8, 8, &w, &MappingPolicy::Offsets(vec![(0, 0), (2, 2)]), 5, 0.2),
            Err(TenantComposeError::Overlap { first: 0, second: 1, .. })
        ));
        assert!(matches!(
            compose_tenants(8, 4, &w, &MappingPolicy::Tiled, 0, 0.2),
            Err(TenantComposeError::InvalidParam("packet length"))
        ));
    }

    #[test]
    fn per_tenant_rates_match_the_solo_traffic_matrix() {
        use noc_sim::TrafficSpec;
        // One tenant on an exactly-fitting fabric must reproduce the solo
        // matrix (same normalisation, zero offset).
        let app = h264_encoder();
        let solo = app.traffic_matrix(1.0, 5, 0.2);
        let comp = compose_tenants(
            4,
            4,
            &[TenantWorkload::new(app.clone())],
            &MappingPolicy::Tiled,
            5,
            0.2,
        )
        .unwrap();
        for src in 0..16 {
            for dst in 0..16 {
                assert_eq!(comp.traffic.rate(src, dst), solo.rate(src, dst));
            }
        }
        assert!(comp.traffic.offered_load() > 0.0);
    }

    #[test]
    fn run_tenants_reports_conserving_ledgers_and_energy() {
        let comp = compose_tenants(8, 4, &two_dags(), &MappingPolicy::Tiled, 5, 0.2).unwrap();
        let net = fabric(8, 4);
        let report = run_tenants(&net, &comp, 500, 2_000, 7);
        assert_eq!(report.slots.len(), 3);
        assert!(report.global.packets_ejected > 0);
        // Additive ledger fields sum exactly to the global window.
        let sum: u64 = report.slots.iter().map(|q| q.window.flits_ejected).sum();
        assert_eq!(sum, report.global.flits_ejected);
        let gen: u64 = report.slots.iter().map(|q| q.window.flits_generated).sum();
        assert_eq!(gen, report.global.flits_generated);
        // Both tenants made progress and were charged energy.
        for t in 0..2 {
            let q = report.tenant(t).unwrap();
            assert!(q.window.flits_generated > 0, "tenant {t} generated nothing");
            assert!(q.energy.total_pj() > 0.0);
        }
        // Slot energies partition the fabric total.
        let per_slot: f64 = report.slots.iter().map(|q| q.energy.total_pj()).sum();
        assert!((per_slot - report.energy.total_pj()).abs() < 1e-9);
        // The empty background slot moved nothing.
        assert_eq!(report.background().window.flits_generated, 0);
        assert_eq!(report.background().tenant, None);
    }
}
