//! Error types for the simulator.

use std::error::Error;
use std::fmt;

/// An invalid [`NetworkConfig`](crate::NetworkConfig) was requested.
///
/// Returned by [`NetworkConfigBuilder::build`](crate::NetworkConfigBuilder::build)
/// when the requested parameters cannot describe a functioning network.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// The mesh must have at least 2 nodes in each dimension.
    MeshTooSmall {
        /// Requested width.
        width: usize,
        /// Requested height.
        height: usize,
    },
    /// At least one virtual channel per port is required.
    NoVirtualChannels,
    /// Each virtual channel needs at least one buffer slot.
    NoBufferSlots,
    /// Packets must carry at least one flit.
    EmptyPacket,
    /// The maximum frequency must not be below the minimum frequency.
    InvalidFrequencyRange {
        /// Minimum frequency in Hz.
        min_hz: f64,
        /// Maximum frequency in Hz.
        max_hz: f64,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::MeshTooSmall { width, height } => {
                write!(f, "mesh of {width}x{height} is too small, need at least 2x2")
            }
            ConfigError::NoVirtualChannels => write!(f, "at least one virtual channel is required"),
            ConfigError::NoBufferSlots => {
                write!(f, "each virtual channel needs at least one buffer slot")
            }
            ConfigError::EmptyPacket => write!(f, "packets must carry at least one flit"),
            ConfigError::InvalidFrequencyRange { min_hz, max_hz } => {
                write!(f, "invalid frequency range: min {min_hz} Hz exceeds max {max_hz} Hz")
            }
        }
    }
}

impl Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = ConfigError::MeshTooSmall { width: 1, height: 5 };
        let msg = e.to_string();
        assert!(msg.contains("1x5"));
        assert!(msg.starts_with(char::is_lowercase));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ConfigError>();
    }

    #[test]
    fn frequency_range_message_mentions_both_ends() {
        let e = ConfigError::InvalidFrequencyRange { min_hz: 2.0e9, max_hz: 1.0e9 };
        let msg = e.to_string();
        assert!(msg.contains("2000000000"));
        assert!(msg.contains("1000000000"));
    }
}
