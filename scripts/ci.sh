#!/usr/bin/env bash
# The full local CI gate: release build, the complete test suite, and clippy
# with warnings promoted to errors. Run before every push.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "CI gate passed."
