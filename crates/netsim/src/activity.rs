//! Switching-activity counters.
//!
//! The paper estimates power by exporting the per-component activity recorded
//! by the cycle-accurate simulator into a gate-level power tool. Our
//! equivalent is [`RouterActivity`]: a set of event counters per router that
//! the `noc-power` crate converts into energy given the operating voltage and
//! frequency.

use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign};

/// Switching-activity counters of one router (and its outgoing links) over
/// some observation window.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RouterActivity {
    /// Flits written into input buffers.
    pub buffer_writes: u64,
    /// Flits read out of input buffers.
    pub buffer_reads: u64,
    /// Flits that traversed the crossbar.
    pub crossbar_traversals: u64,
    /// Successful virtual-channel allocations (head flits).
    pub vc_allocations: u64,
    /// Successful switch-allocation grants.
    pub switch_allocations: u64,
    /// Flits sent on inter-router output links (excludes ejection).
    pub link_flits: u64,
    /// Flits ejected to the local node.
    pub ejected_flits: u64,
    /// NoC cycles covered by this activity window.
    pub cycles: u64,
    /// Domain cycles of the window the router spent power-gated (0 unless
    /// gating is enabled; always `<= cycles`).
    pub gated_cycles: u64,
    /// Completed sleep (power-down) transitions in the window.
    pub sleep_events: u64,
    /// Wake (power-up) transitions in the window.
    pub wake_events: u64,
}

impl RouterActivity {
    /// An all-zero activity record.
    pub fn new() -> Self {
        RouterActivity::default()
    }

    /// Total number of "switching events" — a coarse aggregate used by tests
    /// and diagnostics, not by the power model (which weighs each class).
    pub fn total_events(&self) -> u64 {
        self.buffer_writes
            + self.buffer_reads
            + self.crossbar_traversals
            + self.vc_allocations
            + self.switch_allocations
            + self.link_flits
            + self.ejected_flits
    }

    /// Whether no events have been recorded — including gating transitions
    /// and gated residency, so that an idle-record fast path (one energy
    /// evaluation shared by all idle routers) stays exact under gating.
    pub fn is_idle(&self) -> bool {
        self.total_events() == 0
            && self.gated_cycles == 0
            && self.sleep_events == 0
            && self.wake_events == 0
    }
}

#[cfg(feature = "snapshot")]
impl RouterActivity {
    /// Encodes the counters for a simulation checkpoint.
    pub(crate) fn save_state(&self, w: &mut crate::snapshot::SnapWriter) {
        w.put_u64(self.buffer_writes);
        w.put_u64(self.buffer_reads);
        w.put_u64(self.crossbar_traversals);
        w.put_u64(self.vc_allocations);
        w.put_u64(self.switch_allocations);
        w.put_u64(self.link_flits);
        w.put_u64(self.ejected_flits);
        w.put_u64(self.cycles);
        w.put_u64(self.gated_cycles);
        w.put_u64(self.sleep_events);
        w.put_u64(self.wake_events);
    }

    /// Restores the counters from a checkpoint.
    pub(crate) fn load_state(
        &mut self,
        r: &mut crate::snapshot::SnapReader<'_>,
    ) -> Result<(), crate::snapshot::SnapshotError> {
        self.buffer_writes = r.read_u64()?;
        self.buffer_reads = r.read_u64()?;
        self.crossbar_traversals = r.read_u64()?;
        self.vc_allocations = r.read_u64()?;
        self.switch_allocations = r.read_u64()?;
        self.link_flits = r.read_u64()?;
        self.ejected_flits = r.read_u64()?;
        self.cycles = r.read_u64()?;
        self.gated_cycles = r.read_u64()?;
        self.sleep_events = r.read_u64()?;
        self.wake_events = r.read_u64()?;
        Ok(())
    }
}

impl Add for RouterActivity {
    type Output = RouterActivity;
    fn add(self, rhs: RouterActivity) -> RouterActivity {
        RouterActivity {
            buffer_writes: self.buffer_writes + rhs.buffer_writes,
            buffer_reads: self.buffer_reads + rhs.buffer_reads,
            crossbar_traversals: self.crossbar_traversals + rhs.crossbar_traversals,
            vc_allocations: self.vc_allocations + rhs.vc_allocations,
            switch_allocations: self.switch_allocations + rhs.switch_allocations,
            link_flits: self.link_flits + rhs.link_flits,
            ejected_flits: self.ejected_flits + rhs.ejected_flits,
            cycles: self.cycles + rhs.cycles,
            gated_cycles: self.gated_cycles + rhs.gated_cycles,
            sleep_events: self.sleep_events + rhs.sleep_events,
            wake_events: self.wake_events + rhs.wake_events,
        }
    }
}

impl AddAssign for RouterActivity {
    fn add_assign(&mut self, rhs: RouterActivity) {
        *self = *self + rhs;
    }
}

/// Activity of every router in the network over an observation window.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct NetworkActivity {
    /// Per-router activity, indexed by node id.
    pub routers: Vec<RouterActivity>,
}

impl NetworkActivity {
    /// Creates an all-zero record for `node_count` routers.
    pub fn new(node_count: usize) -> Self {
        NetworkActivity { routers: vec![RouterActivity::default(); node_count] }
    }

    /// Sum of the per-router records.
    pub fn total(&self) -> RouterActivity {
        self.routers.iter().copied().fold(RouterActivity::default(), |acc, r| acc + r)
    }

    /// Merges another window into this one (element-wise).
    ///
    /// # Panics
    ///
    /// Panics if the two records cover a different number of routers.
    pub fn merge(&mut self, other: &NetworkActivity) {
        assert_eq!(self.routers.len(), other.routers.len(), "router count mismatch");
        for (a, b) in self.routers.iter_mut().zip(other.routers.iter()) {
            *a += *b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addition_is_field_wise() {
        let a = RouterActivity {
            buffer_writes: 1,
            buffer_reads: 2,
            crossbar_traversals: 3,
            vc_allocations: 4,
            switch_allocations: 5,
            link_flits: 6,
            ejected_flits: 7,
            cycles: 8,
            gated_cycles: 2,
            sleep_events: 1,
            wake_events: 1,
        };
        let b = a;
        let c = a + b;
        assert_eq!(c.buffer_writes, 2);
        assert_eq!(c.cycles, 16);
        assert_eq!(c.total_events(), 2 * a.total_events());
    }

    #[test]
    fn idle_detection() {
        assert!(RouterActivity::new().is_idle());
        let mut a = RouterActivity::new();
        a.link_flits = 1;
        assert!(!a.is_idle());
        // A router that slept is not "idle" for the power model: its gated
        // residency and transition events change its energy.
        let mut b = RouterActivity::new();
        b.gated_cycles = 100;
        assert!(!b.is_idle());
        let mut c = RouterActivity::new();
        c.wake_events = 1;
        assert!(!c.is_idle());
    }

    #[test]
    fn network_total_sums_routers() {
        let mut n = NetworkActivity::new(3);
        n.routers[0].buffer_writes = 10;
        n.routers[2].buffer_writes = 5;
        assert_eq!(n.total().buffer_writes, 15);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = NetworkActivity::new(2);
        let mut b = NetworkActivity::new(2);
        a.routers[0].link_flits = 3;
        b.routers[0].link_flits = 4;
        b.routers[1].crossbar_traversals = 2;
        a.merge(&b);
        assert_eq!(a.routers[0].link_flits, 7);
        assert_eq!(a.routers[1].crossbar_traversals, 2);
    }

    #[test]
    #[should_panic(expected = "router count mismatch")]
    fn merge_rejects_size_mismatch() {
        let mut a = NetworkActivity::new(2);
        let b = NetworkActivity::new(3);
        a.merge(&b);
    }
}
