//! Inter-router flit channels and credit-return channels.
//!
//! A [`DelayChannel`] delivers items a fixed number of NoC cycles after they
//! were sent. Flit channels carry [`Flit`](crate::Flit)s downstream; credit
//! channels carry freed-buffer notifications upstream. Because the whole NoC
//! is a single clock domain (the premise of the paper), both ends of every
//! channel advance on the same clock and no synchronizer model is needed.
//!
//! # Performance
//!
//! Delivery is allocation-free: due items are handed to a caller-provided
//! callback ([`DelayChannel::deliver`]) straight out of the channel's ring
//! buffer instead of being collected into a fresh `Vec` every cycle. The
//! backing `VecDeque` only allocates when a send outgrows the high-water mark
//! of in-flight items, which happens a bounded number of times per run.

use std::collections::VecDeque;

/// A FIFO channel that delivers items `latency` cycles after injection.
#[derive(Debug, Clone)]
pub struct DelayChannel<T> {
    latency: u64,
    in_flight: VecDeque<(u64, T)>,
}

impl<T> DelayChannel<T> {
    /// Creates a channel with the given delivery latency in cycles.
    ///
    /// # Panics
    ///
    /// Panics if `latency` is zero — a combinational (zero-cycle) link would
    /// break the simulator's phase ordering.
    pub fn new(latency: u64) -> Self {
        assert!(latency > 0, "channel latency must be at least one cycle");
        DelayChannel { latency, in_flight: VecDeque::new() }
    }

    /// The configured delivery latency in cycles.
    pub fn latency(&self) -> u64 {
        self.latency
    }

    /// Number of items currently travelling on the channel.
    pub fn occupancy(&self) -> usize {
        self.in_flight.len()
    }

    /// Sends an item at cycle `now`; it will become deliverable at
    /// `now + latency`.
    #[inline]
    pub fn send(&mut self, now: u64, item: T) {
        self.in_flight.push_back((now + self.latency, item));
    }

    /// Hands every item whose delivery time has arrived at cycle `now` to
    /// `sink`, in send order, without allocating.
    #[inline]
    pub fn deliver<F: FnMut(T)>(&mut self, now: u64, mut sink: F) {
        while let Some((when, _)) = self.in_flight.front() {
            if *when <= now {
                let (_, item) = self.in_flight.pop_front().expect("front exists");
                sink(item);
            } else {
                break;
            }
        }
    }

    /// Delivery cycle of the oldest in-flight item, if any.
    ///
    /// This is the cursor the sparse simulation core polls instead of calling
    /// [`deliver`](Self::deliver) on every channel every cycle: a channel with
    /// `next_due() > now` (or `None`) provably delivers nothing at `now`, so
    /// the driver keeps a due-list (timing wheel) of channels keyed by this
    /// cycle and touches only the channels whose deliveries are due.
    pub fn next_due(&self) -> Option<u64> {
        self.in_flight.front().map(|(when, _)| *when)
    }

    /// Collects every due item into a fresh `Vec` — convenience for tests and
    /// diagnostics; the simulation loop uses [`deliver`](Self::deliver).
    pub fn deliver_collect(&mut self, now: u64) -> Vec<T> {
        let mut out = Vec::new();
        self.deliver(now, |item| out.push(item));
        out
    }

    /// Whether no items are in flight.
    pub fn is_empty(&self) -> bool {
        self.in_flight.is_empty()
    }

    /// Hands *every* in-flight item to `sink` regardless of its delivery
    /// time, in send order, emptying the channel. Used when a fault kills a
    /// channel's endpoint: the items cannot be delivered any more and must
    /// be accounted (dropped flits, discarded credits) instead of lingering.
    pub fn drain_all<F: FnMut(T)>(&mut self, mut sink: F) {
        while let Some((_, item)) = self.in_flight.pop_front() {
            sink(item);
        }
    }
}

#[cfg(feature = "snapshot")]
impl<T> DelayChannel<T> {
    /// Encodes the in-flight contents (due cycle + item) for a checkpoint.
    /// The latency is configuration, not state, and is not written.
    pub(crate) fn save_state(
        &self,
        w: &mut crate::snapshot::SnapWriter,
        mut encode: impl FnMut(&T, &mut crate::snapshot::SnapWriter),
    ) {
        w.put_usize(self.in_flight.len());
        for (due, item) in &self.in_flight {
            w.put_u64(*due);
            encode(item, w);
        }
    }

    /// Replaces the in-flight contents with the checkpointed ones.
    pub(crate) fn load_state(
        &mut self,
        r: &mut crate::snapshot::SnapReader<'_>,
        mut decode: impl FnMut(
            &mut crate::snapshot::SnapReader<'_>,
        ) -> Result<T, crate::snapshot::SnapshotError>,
    ) -> Result<(), crate::snapshot::SnapshotError> {
        self.in_flight.clear();
        let n = r.read_usize()?;
        let mut prev_due = 0u64;
        for _ in 0..n {
            let due = r.read_u64()?;
            if due < prev_due {
                // Sends happen at non-decreasing cycles, so a FIFO channel's
                // due times are monotone; anything else is a mangled stream.
                return Err(crate::snapshot::SnapshotError::Corrupt("channel due order"));
            }
            prev_due = due;
            let item = decode(r)?;
            self.in_flight.push_back((due, item));
        }
        Ok(())
    }

    /// Delivery cycles of every in-flight item, in queue order — the restore
    /// path walks these to rebuild the driver's timing wheels.
    pub(crate) fn due_times(&self) -> impl Iterator<Item = u64> + '_ {
        self.in_flight.iter().map(|(due, _)| *due)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn items_arrive_after_latency() {
        let mut ch = DelayChannel::new(2);
        ch.send(10, "a");
        assert!(ch.deliver_collect(10).is_empty());
        assert!(ch.deliver_collect(11).is_empty());
        assert_eq!(ch.deliver_collect(12), vec!["a"]);
        assert!(ch.is_empty());
    }

    #[test]
    fn next_due_tracks_the_oldest_item() {
        let mut ch = DelayChannel::new(3);
        assert_eq!(ch.next_due(), None);
        ch.send(10, 'a');
        ch.send(12, 'b');
        assert_eq!(ch.next_due(), Some(13));
        assert_eq!(ch.deliver_collect(13), vec!['a']);
        assert_eq!(ch.next_due(), Some(15));
        assert_eq!(ch.deliver_collect(15), vec!['b']);
        assert_eq!(ch.next_due(), None);
    }

    #[test]
    fn order_is_preserved() {
        let mut ch = DelayChannel::new(1);
        ch.send(0, 1);
        ch.send(0, 2);
        ch.send(1, 3);
        assert_eq!(ch.deliver_collect(1), vec![1, 2]);
        assert_eq!(ch.deliver_collect(2), vec![3]);
    }

    #[test]
    fn late_delivery_collects_everything_due() {
        let mut ch = DelayChannel::new(1);
        ch.send(0, 'x');
        ch.send(1, 'y');
        ch.send(5, 'z');
        // Skipping ahead to cycle 3 delivers x and y but not z.
        assert_eq!(ch.deliver_collect(3), vec!['x', 'y']);
        assert_eq!(ch.occupancy(), 1);
    }

    #[test]
    fn callback_delivery_is_equivalent_to_collecting() {
        let mut a = DelayChannel::new(2);
        let mut b = DelayChannel::new(2);
        for t in 0..10u64 {
            a.send(t, t);
            b.send(t, t);
        }
        for now in 0..15u64 {
            let mut via_callback = Vec::new();
            a.deliver(now, |item| via_callback.push(item));
            assert_eq!(via_callback, b.deliver_collect(now));
        }
        assert!(a.is_empty() && b.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one cycle")]
    fn zero_latency_rejected() {
        let _ = DelayChannel::<u32>::new(0);
    }

    #[test]
    fn drain_all_empties_the_channel_ignoring_due_times() {
        let mut ch = DelayChannel::new(4);
        ch.send(0, 'a');
        ch.send(3, 'b');
        let mut drained = Vec::new();
        ch.drain_all(|item| drained.push(item));
        assert_eq!(drained, vec!['a', 'b']);
        assert!(ch.is_empty());
        assert_eq!(ch.next_due(), None);
    }
}
