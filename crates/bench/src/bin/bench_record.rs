//! Records the simulator-throughput benchmark suite as a JSON artifact.
//!
//! ```text
//! cargo run --release -p noc-bench --bin bench_record -- [--out BENCH_sim_throughput.json] \
//!     [--label current] [--merge existing.json] [--repeats 5] [--cycles 2000] \
//!     [--filter CASE]
//! ```
//!
//! `--filter` runs only the cases whose name contains the given substring
//! (e.g. `--filter light_load`) — handy while iterating on one hot path;
//! the full tracked suite should be recorded without a filter.
//!
//! Each case simulates a fixed number of NoC cycles and reports wall-clock
//! cycles/second computed from the **best (minimum) time** over `--repeats`
//! runs — best-of suppresses scheduler noise but is systematically optimistic,
//! so compare ratios between runs, not absolutes. The figure-regeneration
//! case times one quick-quality Fig. 2-style sweep end to end.
//!
//! With `--merge`, the previously recorded JSON is merged **case by case**:
//! runs under other labels are preserved verbatim, and re-recording an
//! existing label updates only the cases that actually ran this time — so a
//! `--filter`ed run refreshes its matching cases without dropping or
//! shadowing the label's previously recorded unfiltered cases. The artifact
//! therefore accumulates a perf trajectory across PRs.

use noc_dvfs::experiments::{fig2_rmsd_vs_nodvfs, ExperimentQuality};
use noc_sim::{
    BurstyTraffic, FaultConfig, GatingConfig, HazardConfig, NetworkConfig, NocSimulation,
    RegionLayout, RoutingKind, SyntheticTraffic, TelemetryConfig, TrafficPattern, TrafficSpec,
};
use std::fmt::Write as _;
use std::time::Instant;

/// What a case's number means — simulated-cycle throughput for the
/// simulator cases, plain wall seconds for end-to-end cases like the
/// figure regeneration (which has no meaningful cycle count, so a
/// `cycles_per_sec` of 0.0 there was just misleading).
#[derive(Clone, Copy, PartialEq, Eq)]
enum CaseUnit {
    CyclesPerSec,
    WallSeconds,
}

struct CaseResult {
    name: String,
    cycles: u64,
    secs: f64,
    cycles_per_sec: f64,
    unit: CaseUnit,
}

fn time_sim_case(
    name: &str,
    cfg: &NetworkConfig,
    make_traffic: &dyn Fn(&NetworkConfig) -> Box<dyn TrafficSpec>,
    cycles: u64,
    repeats: usize,
) -> CaseResult {
    let mut best = f64::INFINITY;
    for _ in 0..repeats.max(1) {
        let mut sim = NocSimulation::new(cfg.clone(), make_traffic(cfg), 1);
        // Warm the allocators/buffers before timing.
        sim.run_cycles(cycles / 10);
        let t0 = Instant::now();
        sim.run_cycles(cycles);
        let dt = t0.elapsed().as_secs_f64();
        if dt < best {
            best = dt;
        }
    }
    CaseResult {
        name: name.to_string(),
        cycles,
        secs: best,
        cycles_per_sec: cycles as f64 / best,
        unit: CaseUnit::CyclesPerSec,
    }
}

/// Measures the cost of running *with* periodic checkpointing: the same
/// 8×8 light-load case as `8x8_mesh_light_load`, but taking (and
/// serialising) a full [`NocSimulation::snapshot`] every 200 cycles. The
/// ratio against the plain case is the snapshot overhead a crash-tolerant
/// sweep pays for resumability.
fn time_snapshot_case(cycles: u64, repeats: usize) -> CaseResult {
    let cfg = NetworkConfig::builder().mesh(8, 8).build().unwrap();
    let mut best = f64::INFINITY;
    for _ in 0..repeats.max(1) {
        let traffic = SyntheticTraffic::new(TrafficPattern::Uniform, 0.05, cfg.packet_length());
        let mut sim = NocSimulation::new(cfg.clone(), Box::new(traffic), 1);
        sim.run_cycles(cycles / 10);
        let t0 = Instant::now();
        let mut remaining = cycles;
        while remaining > 0 {
            let chunk = remaining.min(200);
            sim.run_cycles(chunk);
            remaining -= chunk;
            std::hint::black_box(sim.snapshot().to_bytes().len());
        }
        let dt = t0.elapsed().as_secs_f64();
        if dt < best {
            best = dt;
        }
    }
    CaseResult {
        name: "8x8_mesh_light_snapshot_every_200".to_string(),
        cycles,
        secs: best,
        cycles_per_sec: cycles as f64 / best,
        unit: CaseUnit::CyclesPerSec,
    }
}

/// Measures the cost of running *with* the telemetry layer installed: the
/// same 8×8 light-load case as `8x8_mesh_light_load`, but with the counter
/// fabric, the event trace and the periodic snapshots all live. The ratio
/// against the plain case is the probes-enabled overhead (target: within
/// 10%); the plain case itself pins the telemetry-off cost at one dead
/// branch per probe site. The phase profiler is a separate opt-in knob
/// (`with_profile`) that adds clock reads per step on top of the probe
/// cost — `examples/telemetry_heatmap.rs` exercises it.
fn time_telemetry_case(cycles: u64, repeats: usize) -> CaseResult {
    let cfg = NetworkConfig::builder().mesh(8, 8).build().unwrap();
    let mut best = f64::INFINITY;
    for _ in 0..repeats.max(1) {
        let traffic = SyntheticTraffic::new(TrafficPattern::Uniform, 0.05, cfg.packet_length());
        let mut sim = NocSimulation::new(cfg.clone(), Box::new(traffic), 1);
        sim.install_telemetry(TelemetryConfig::default());
        sim.run_cycles(cycles / 10);
        let t0 = Instant::now();
        sim.run_cycles(cycles);
        let dt = t0.elapsed().as_secs_f64();
        std::hint::black_box(sim.telemetry().map(|t| t.snapshots().count()));
        if dt < best {
            best = dt;
        }
    }
    CaseResult {
        name: "8x8_mesh_light_telemetry".to_string(),
        cycles,
        secs: best,
        cycles_per_sec: cycles as f64 / best,
        unit: CaseUnit::CyclesPerSec,
    }
}

fn time_figure_regen(repeats: usize) -> CaseResult {
    let mut best = f64::INFINITY;
    for _ in 0..repeats.max(1) {
        let t0 = Instant::now();
        let cmp = fig2_rmsd_vs_nodvfs(&ExperimentQuality::quick());
        assert!(!cmp.curves.is_empty());
        let dt = t0.elapsed().as_secs_f64();
        if dt < best {
            best = dt;
        }
    }
    CaseResult {
        name: "fig2_regeneration_quick".to_string(),
        cycles: 0,
        secs: best,
        cycles_per_sec: 0.0,
        unit: CaseUnit::WallSeconds,
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn json_unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            if let Some(n) = chars.next() {
                out.push(n);
            }
        } else {
            out.push(c);
        }
    }
    out
}

/// One recorded run: a label plus its cases in recording order. The case
/// payload is kept as the rendered JSON object so merging never re-parses
/// or re-rounds previously recorded numbers.
struct RecordedRun {
    label: String,
    /// `(case name, rendered JSON object)`.
    cases: Vec<(String, String)>,
}

fn render_case(r: &CaseResult) -> String {
    match r.unit {
        CaseUnit::CyclesPerSec => format!(
            "{{\"cycles\": {}, \"seconds\": {:.6}, \"cycles_per_sec\": {:.1}}}",
            r.cycles, r.secs, r.cycles_per_sec
        ),
        // Wall-clock cases carry their own unit tag instead of a bogus
        // cycles_per_sec of 0.0 (simulated cycles are meaningless for an
        // end-to-end sweep timing).
        CaseUnit::WallSeconds => {
            format!("{{\"seconds\": {:.6}, \"unit\": \"wall_seconds\"}}", r.secs)
        }
    }
}

/// Parses the runs out of an artifact previously written by this tool.
/// Line-oriented: a run opens with `"label": {` on its own line, each case
/// is a one-line `"name": {...}` entry, and a lone `}` / `},` closes the
/// run. Anything before the `"runs": {` line is header and skipped.
fn parse_runs(prior: &str) -> Vec<RecordedRun> {
    let mut runs = Vec::new();
    let mut current: Option<RecordedRun> = None;
    let mut in_runs = false;
    for line in prior.lines() {
        let t = line.trim();
        if !in_runs {
            if t.starts_with("\"runs\"") && t.ends_with('{') {
                in_runs = true;
            }
            continue;
        }
        if t == "}" || t == "}," {
            // Closes the current run — or the runs object / document once
            // no run is open, which is harmless.
            runs.extend(current.take());
            continue;
        }
        if let Some(label) =
            t.strip_suffix(": {").and_then(|h| h.strip_prefix('"')).and_then(|h| h.strip_suffix('"'))
        {
            runs.extend(current.take());
            current = Some(RecordedRun { label: json_unescape(label), cases: Vec::new() });
            continue;
        }
        if let (Some(run), Some(colon)) = (current.as_mut(), t.find("\": {")) {
            let name = json_unescape(&t[1..colon]);
            let body = t[colon + 3..].trim_end_matches(',').to_string();
            run.cases.push((name, body));
        }
    }
    runs.extend(current.take());
    runs
}

/// Merges this invocation's results into the previously recorded runs,
/// case by case: an existing label keeps its recording order and every case
/// the new (possibly `--filter`ed) run did not re-measure; re-measured cases
/// are updated in place and genuinely new ones appended. A new label is
/// appended after the existing runs.
fn merge_results(runs: &mut Vec<RecordedRun>, label: &str, results: &[CaseResult]) {
    let new_cases: Vec<(String, String)> =
        results.iter().map(|r| (r.name.clone(), render_case(r))).collect();
    if let Some(run) = runs.iter_mut().find(|r| r.label == label) {
        for (name, body) in new_cases {
            if let Some(slot) = run.cases.iter_mut().find(|(n, _)| *n == name) {
                slot.1 = body;
            } else {
                run.cases.push((name, body));
            }
        }
    } else {
        runs.push(RecordedRun { label: label.to_string(), cases: new_cases });
    }
}

fn render_document(cycles: u64, repeats: usize, runs: &[RecordedRun]) -> String {
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"benchmark\": \"sim_throughput\",");
    let _ = writeln!(json, "  \"cycles_per_case\": {cycles},");
    let _ = writeln!(json, "  \"repeats\": {repeats},");
    let _ = writeln!(
        json,
        "  \"unit\": \"cycles_per_sec (best of repeats); cases tagged 'unit': 'wall_seconds' report end-to-end wall seconds\","
    );
    let _ = writeln!(json, "  \"runs\": {{");
    for (i, run) in runs.iter().enumerate() {
        let _ = writeln!(json, "    \"{}\": {{", json_escape(&run.label));
        for (j, (name, body)) in run.cases.iter().enumerate() {
            let comma = if j + 1 == run.cases.len() { "" } else { "," };
            let _ = writeln!(json, "      \"{}\": {}{}", json_escape(name), body, comma);
        }
        let comma = if i + 1 == runs.len() { "" } else { "," };
        let _ = writeln!(json, "    }}{comma}");
    }
    json.push_str("  }\n}\n");
    json
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path = "BENCH_sim_throughput.json".to_string();
    let mut label = "current".to_string();
    let mut merge: Option<String> = None;
    let mut repeats = 5usize;
    let mut cycles = 2_000u64;
    let mut filter: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" if i + 1 < args.len() => {
                out_path = args[i + 1].clone();
                i += 2;
            }
            "--label" if i + 1 < args.len() => {
                label = args[i + 1].clone();
                i += 2;
            }
            "--merge" if i + 1 < args.len() => {
                merge = Some(args[i + 1].clone());
                i += 2;
            }
            "--repeats" if i + 1 < args.len() => {
                repeats = args[i + 1].parse().expect("--repeats takes an integer");
                i += 2;
            }
            "--cycles" if i + 1 < args.len() => {
                cycles = args[i + 1].parse().expect("--cycles takes an integer");
                i += 2;
            }
            "--filter" if i + 1 < args.len() => {
                filter = Some(args[i + 1].clone());
                i += 2;
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: bench_record [--out FILE] [--label NAME] [--merge FILE] [--repeats N] [--cycles N] [--filter CASE]");
                std::process::exit(1);
            }
        }
    }

    let uniform = |rate: f64| {
        move |cfg: &NetworkConfig| -> Box<dyn TrafficSpec> {
            Box::new(SyntheticTraffic::new(TrafficPattern::Uniform, rate, cfg.packet_length()))
        }
    };
    // The new scenario axis, tracked alongside the historical mesh cases:
    // wrap-around links + dateline VC classes + hotspot + MMP injection.
    let torus_hotspot_bursty = |rate: f64| {
        move |cfg: &NetworkConfig| -> Box<dyn TrafficSpec> {
            Box::new(BurstyTraffic::new(
                TrafficPattern::Hotspot,
                rate,
                cfg.packet_length(),
                200.0,
                4.0,
            ))
        }
    };
    type TrafficFactory = Box<dyn Fn(&NetworkConfig) -> Box<dyn TrafficSpec>>;
    let cases: Vec<(&str, NetworkConfig, TrafficFactory)> = vec![
        ("5x5_paper_baseline_light_load", NetworkConfig::paper_baseline(), Box::new(uniform(0.05))),
        ("5x5_paper_baseline_heavy_load", NetworkConfig::paper_baseline(), Box::new(uniform(0.35))),
        ("8x8_mesh_light_load", NetworkConfig::builder().mesh(8, 8).build().unwrap(), Box::new(uniform(0.05))),
        ("8x8_mesh_heavy_load", NetworkConfig::builder().mesh(8, 8).build().unwrap(), Box::new(uniform(0.35))),
        // Size-independence probe for the sparse core: at a fixed light load
        // the idle-router/idle-channel cost used to scale with node count, so
        // 16x16 is where activity-proportional stepping pays the most.
        ("16x16_mesh_light_load", NetworkConfig::builder().mesh(16, 16).build().unwrap(), Box::new(uniform(0.05))),
        (
            "5x5_torus_hotspot_bursty_heavy_load",
            NetworkConfig::builder().torus(5, 5).build().unwrap(),
            Box::new(torus_hotspot_bursty(0.35)),
        ),
        // Multi-tenant probe: eight seeded random-DAG tenants composed onto
        // one 16x16 torus (the workload of examples/multi_tenant.rs). The
        // traffic is a fabric-sized matrix whose hot rows cluster inside
        // each tenant's tile, so this tracks the sparse core on clustered —
        // rather than uniform — activity at scale.
        (
            "16x16_torus_8tenants",
            NetworkConfig::builder().torus(16, 16).build().unwrap(),
            Box::new(|cfg: &NetworkConfig| -> Box<dyn TrafficSpec> {
                let comp = noc_dvfs::TenantMix::new(8, 10, 2015)
                    .compose(cfg.width(), cfg.height(), cfg.packet_length(), 0.2)
                    .expect("eight 4x4 tiles fit a 16x16 fabric");
                Box::new(comp.traffic)
            }),
        ),
        // Voltage-frequency island bookkeeping probe: the quadrant
        // partition with every island at the base rate isolates the cost of
        // the per-island window/fire accounting itself — the number to
        // compare against 8x8_mesh_light_load for "no regression from
        // island bookkeeping".
        (
            "8x8_vfi_quadrants_light_load",
            NetworkConfig::builder().mesh(8, 8).regions(RegionLayout::Quadrants).build().unwrap(),
            Box::new(uniform(0.05)),
        ),
        // Power-gating probe: the same light 8x8 load with routers sleeping
        // through their idle gaps. Gated routers are excluded from the
        // sparse worklists, and the gating bookkeeping is event-driven, so a
        // gated *idle* network steps at plain-idle speed (parity pinned by
        // the idle case below). Under traffic this case runs somewhat below
        // 8x8_mesh_light_load — not from bookkeeping, but because the
        // simulation is faithfully doing more work: every wakeup stalls real
        // flits for the 8-cycle power-up latency, and those extra
        // buffered-router cycles are simulated cycles.
        (
            "8x8_mesh_light_gated",
            NetworkConfig::builder()
                .mesh(8, 8)
                .gating(GatingConfig::enabled(24, 8))
                .build()
                .unwrap(),
            Box::new(uniform(0.05)),
        ),
        // Fault-injection probe: the same light 8x8 load with adaptive
        // routing and a continuous transient-fault storm. The fault tick is
        // event-driven off a geometric next-event draw, so the per-cycle
        // cost of an *armed but quiet* hazard is near zero; what this case
        // pays for is real simulated behaviour — purges, credit resyncs and
        // adaptive detours around fenced links. Compare against
        // 8x8_mesh_light_load for the "no regression from fault
        // bookkeeping" claim on the fault-free cases.
        (
            "8x8_mesh_light_faulted",
            NetworkConfig::builder()
                .mesh(8, 8)
                .virtual_channels(2)
                .routing(RoutingKind::MinimalAdaptive)
                .faults(FaultConfig::none().with_hazard(HazardConfig {
                    link_rate: 1e-4,
                    router_rate: 5e-5,
                    transient_fraction: 1.0,
                    transient_duration: 150,
                }))
                .build()
                .unwrap(),
            Box::new(uniform(0.05)),
        ),
        // The gated-idle half of the claim: a fully gated silent network
        // must step at least as fast as a plain idle one (compare with
        // 8x8_mesh_idle below).
        (
            "8x8_mesh_idle_gated",
            NetworkConfig::builder()
                .mesh(8, 8)
                .gating(GatingConfig::enabled(24, 8))
                .build()
                .unwrap(),
            Box::new(uniform(0.0)),
        ),
        ("8x8_mesh_idle", NetworkConfig::builder().mesh(8, 8).build().unwrap(), Box::new(uniform(0.0))),
        // Large-fabric probes for event-horizon stepping. The light-load
        // 32x32 case spends most cycles with a quiescent pipeline and long
        // injection gaps, so the clock jumps between due events; the idle
        // 64x64 case is the pure horizon-skip number (nothing is ever due
        // except the measurement window edge) and must sit orders of
        // magnitude above base-tick stepping.
        ("32x32_mesh_light_load", NetworkConfig::builder().mesh(32, 32).build().unwrap(), Box::new(uniform(0.005))),
        ("64x64_mesh_idle", NetworkConfig::builder().mesh(64, 64).build().unwrap(), Box::new(uniform(0.0))),
    ];

    let selected = |name: &str| filter.as_ref().is_none_or(|f| name.contains(f.as_str()));
    let mut results = Vec::new();
    for (name, cfg, make_traffic) in &cases {
        if !selected(name) {
            continue;
        }
        let r = time_sim_case(name, cfg, make_traffic.as_ref(), cycles, repeats);
        eprintln!("{:<35} {:>12.0} cycles/s  ({:.4} s / {} cycles)", r.name, r.cycles_per_sec, r.secs, r.cycles);
        results.push(r);
    }
    if selected("8x8_mesh_light_snapshot_every_200") {
        let r = time_snapshot_case(cycles, repeats);
        eprintln!("{:<35} {:>12.0} cycles/s  ({:.4} s / {} cycles)", r.name, r.cycles_per_sec, r.secs, r.cycles);
        results.push(r);
    }
    if selected("8x8_mesh_light_telemetry") {
        let r = time_telemetry_case(cycles, repeats);
        eprintln!("{:<35} {:>12.0} cycles/s  ({:.4} s / {} cycles)", r.name, r.cycles_per_sec, r.secs, r.cycles);
        results.push(r);
    }
    if selected("fig2_regeneration_quick") {
        let fig = time_figure_regen(repeats.min(3));
        eprintln!("{:<35} {:>12.4} s wall-clock", fig.name, fig.secs);
        results.push(fig);
    }
    if results.is_empty() {
        eprintln!("--filter {:?} matched no benchmark case", filter.unwrap_or_default());
        std::process::exit(1);
    }

    // Preserve previously recorded runs (e.g. the pre-refactor baseline),
    // merging this run's cases into its label rather than appending a
    // duplicate, so a --filtered re-record cannot drop or shadow the
    // label's other cases.
    let mut runs: Vec<RecordedRun> = Vec::new();
    if let Some(path) = merge {
        let prior = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read merge file {path}: {e}"));
        runs = parse_runs(&prior);
    }
    merge_results(&mut runs, &label, &results);

    let json = render_document(cycles, repeats, &runs);
    // Atomic replace: a kill mid-write must not shred a tracked perf
    // trajectory that accumulated across PRs.
    noc_dvfs::coordinator::write_atomic(std::path::Path::new(&out_path), json.as_bytes())
        .unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    eprintln!("wrote {out_path}");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn case(name: &str, cycles: u64, secs: f64) -> CaseResult {
        CaseResult {
            name: name.to_string(),
            cycles,
            secs,
            cycles_per_sec: cycles as f64 / secs,
            unit: CaseUnit::CyclesPerSec,
        }
    }

    #[test]
    fn wall_seconds_cases_carry_a_unit_not_a_zero_rate() {
        let fig = CaseResult {
            name: "fig2_regeneration_quick".to_string(),
            cycles: 0,
            secs: 1.25,
            cycles_per_sec: 0.0,
            unit: CaseUnit::WallSeconds,
        };
        let body = render_case(&fig);
        assert!(body.contains("\"unit\": \"wall_seconds\""));
        assert!(body.contains("\"seconds\": 1.250000"));
        assert!(!body.contains("cycles_per_sec"), "no bogus 0.0 rate: {body}");
        // And it survives the document round trip verbatim.
        let mut runs = Vec::new();
        merge_results(&mut runs, "current", &[fig]);
        let doc = render_document(2000, 5, &runs);
        let parsed = parse_runs(&doc);
        assert_eq!(parsed[0].cases[0].1, body);
    }

    #[test]
    fn render_parse_round_trips() {
        let mut runs = Vec::new();
        merge_results(&mut runs, "baseline", &[case("a", 2000, 0.5), case("b", 2000, 0.25)]);
        merge_results(&mut runs, "current", &[case("a", 2000, 0.4)]);
        let doc = render_document(2000, 5, &runs);
        let parsed = parse_runs(&doc);
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].label, "baseline");
        assert_eq!(parsed[0].cases.len(), 2);
        assert_eq!(parsed[0].cases[0].0, "a");
        assert_eq!(parsed[0].cases[0].1, render_case(&case("a", 2000, 0.5)));
        assert_eq!(parsed[1].label, "current");
        assert_eq!(parsed[1].cases, vec![("a".to_string(), render_case(&case("a", 2000, 0.4)))]);
        // Rendering the parsed runs reproduces the document byte for byte.
        assert_eq!(render_document(2000, 5, &parsed), doc);
    }

    #[test]
    fn filtered_rerecord_keeps_the_labels_other_cases() {
        // An unfiltered "current" run with three cases...
        let mut runs = Vec::new();
        merge_results(
            &mut runs,
            "current",
            &[case("alpha", 2000, 0.5), case("beta", 2000, 0.25), case("gamma", 2000, 0.125)],
        );
        let doc = render_document(2000, 5, &runs);
        // ...then a --filter beta re-record merged on top of it.
        let mut merged = parse_runs(&doc);
        merge_results(&mut merged, "current", &[case("beta", 2000, 0.2)]);
        assert_eq!(merged.len(), 1, "same label must not append a duplicate run");
        let names: Vec<&str> = merged[0].cases.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["alpha", "beta", "gamma"], "unfiltered cases survive in order");
        assert_eq!(merged[0].cases[1].1, render_case(&case("beta", 2000, 0.2)), "re-run updated");
        assert_eq!(merged[0].cases[0].1, render_case(&case("alpha", 2000, 0.5)), "kept verbatim");
    }

    #[test]
    fn new_label_is_appended_and_other_labels_kept_verbatim() {
        let mut runs = Vec::new();
        merge_results(&mut runs, "baseline", &[case("alpha", 2000, 0.5)]);
        let doc = render_document(2000, 5, &runs);
        let mut merged = parse_runs(&doc);
        merge_results(&mut merged, "current", &[case("alpha", 2000, 0.4), case("delta", 2000, 0.1)]);
        assert_eq!(merged.len(), 2);
        assert_eq!(merged[0].label, "baseline");
        assert_eq!(merged[0].cases[0].1, render_case(&case("alpha", 2000, 0.5)));
        assert_eq!(merged[1].label, "current");
        assert_eq!(merged[1].cases.len(), 2);
    }

    #[test]
    fn labels_with_quotes_and_backslashes_round_trip() {
        let mut runs = Vec::new();
        merge_results(&mut runs, r#"odd "label" with \ chars"#, &[case("a", 2000, 0.5)]);
        let doc = render_document(2000, 5, &runs);
        let parsed = parse_runs(&doc);
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].label, r#"odd "label" with \ chars"#);
    }
}
