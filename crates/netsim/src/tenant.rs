//! Multi-tenant partitions of the fabric.
//!
//! A large fabric rarely runs a single application: several independent
//! workloads ("tenants") are mapped onto disjoint node sets and share the
//! interconnect. This module provides the partition the simulator uses for
//! **per-tenant QoS accounting**:
//!
//! * [`TenantMap`] — a dense `node → tenant` table plus per-slot node
//!   counts, installed at run time via
//!   [`NocSimulation::set_tenant_map`](crate::NocSimulation::set_tenant_map).
//!
//! Unlike the voltage-frequency island partition
//! ([`RegionMap`](crate::RegionMap)), a tenant map does not have to cover
//! every node: nodes no tenant owns are assigned to a synthetic
//! **background slot** (index [`tenant_count`](TenantMap::tenant_count), the
//! last slot). Every counted event lands in exactly one slot, so the
//! per-slot windows drained by
//! [`take_tenant_windows`](crate::NocSimulation::take_tenant_windows) sum —
//! exactly, field by field — to the global window over the same span. That
//! conservation contract mirrors the per-island window contract and is
//! pinned by `tests/tenant_invariants.rs`.
//!
//! ```
//! use noc_sim::TenantMap;
//!
//! // Two tenants on a 2x2 fabric; node 3 belongs to neither.
//! let map = TenantMap::new(vec![Some(0), Some(1), Some(0), None], 2).unwrap();
//! assert_eq!(map.tenant_count(), 2);
//! assert_eq!(map.slot_count(), 3); // two tenants + the background slot
//! assert_eq!(map.tenant_of(0), Some(0));
//! assert_eq!(map.tenant_of(3), None);
//! assert_eq!(map.slot_of(3), map.background_slot());
//! assert_eq!(map.node_counts(), &[2, 1, 1]);
//! ```

use serde::{Deserialize, Serialize};

/// Errors building or installing a [`TenantMap`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TenantMapError {
    /// The map declares zero tenants; at least one is required.
    NoTenants,
    /// A node names a tenant id at or beyond the declared tenant count.
    TenantIdOutOfRange {
        /// The offending node.
        node: usize,
        /// The out-of-range tenant id it names.
        tenant: u32,
        /// The declared number of tenants.
        tenant_count: usize,
    },
    /// A declared tenant owns no node.
    EmptyTenant {
        /// The ownerless tenant id.
        tenant: u32,
    },
    /// The map covers a different number of nodes than the network.
    WrongLength {
        /// The network's node count.
        expected: usize,
        /// The map's node count.
        got: usize,
    },
}

impl std::fmt::Display for TenantMapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TenantMapError::NoTenants => {
                write!(f, "a tenant map must declare at least one tenant")
            }
            TenantMapError::TenantIdOutOfRange { node, tenant, tenant_count } => write!(
                f,
                "node {node} names tenant {tenant}, but only {tenant_count} tenants are declared"
            ),
            TenantMapError::EmptyTenant { tenant } => {
                write!(f, "tenant {tenant} owns no node")
            }
            TenantMapError::WrongLength { expected, got } => write!(
                f,
                "tenant map covers {got} nodes but the network has {expected}"
            ),
        }
    }
}

impl std::error::Error for TenantMapError {}

/// A resolved partition of the network's nodes into tenants: the dense
/// `node → slot` table the simulator indexes when attributing counted
/// events, plus per-slot membership counts.
///
/// Slots `0..tenant_count` are the tenants; slot `tenant_count` (the last)
/// is the synthetic background slot collecting every node no tenant owns.
/// The background slot exists even when the map is total — its node count
/// is then zero and its window stays empty.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantMap {
    /// `node → slot`; mapped nodes carry their tenant id, unmapped nodes the
    /// background slot.
    slot_of: Vec<u32>,
    /// Number of real tenants (excluding the background slot).
    tenant_count: usize,
    /// Per-slot node counts, indexed by slot (length `tenant_count + 1`).
    node_counts: Vec<usize>,
}

impl TenantMap {
    /// Builds a map from a per-node owner assignment (`None` = background),
    /// validating it: at least one tenant, every named id below
    /// `tenant_count`, and every declared tenant owning at least one node.
    ///
    /// The node count is taken from `owner_of.len()`;
    /// [`NocSimulation::set_tenant_map`](crate::NocSimulation::set_tenant_map)
    /// checks it against the network.
    ///
    /// # Errors
    ///
    /// [`TenantMapError::NoTenants`], [`TenantMapError::TenantIdOutOfRange`]
    /// or [`TenantMapError::EmptyTenant`].
    pub fn new(owner_of: Vec<Option<u32>>, tenant_count: usize) -> Result<Self, TenantMapError> {
        if tenant_count == 0 {
            return Err(TenantMapError::NoTenants);
        }
        let background = tenant_count as u32;
        let mut node_counts = vec![0usize; tenant_count + 1];
        let mut slot_of = Vec::with_capacity(owner_of.len());
        for (node, owner) in owner_of.into_iter().enumerate() {
            let slot = match owner {
                Some(tenant) => {
                    if tenant >= background {
                        return Err(TenantMapError::TenantIdOutOfRange {
                            node,
                            tenant,
                            tenant_count,
                        });
                    }
                    tenant
                }
                None => background,
            };
            node_counts[slot as usize] += 1;
            slot_of.push(slot);
        }
        if let Some(empty) = node_counts[..tenant_count].iter().position(|&c| c == 0) {
            return Err(TenantMapError::EmptyTenant { tenant: empty as u32 });
        }
        Ok(TenantMap { slot_of, tenant_count, node_counts })
    }

    /// Number of real tenants (the background slot is not counted).
    pub fn tenant_count(&self) -> usize {
        self.tenant_count
    }

    /// Number of accounting slots: `tenant_count + 1` (the last slot is the
    /// background).
    pub fn slot_count(&self) -> usize {
        self.tenant_count + 1
    }

    /// The background slot's index (always the last slot).
    pub fn background_slot(&self) -> u32 {
        self.tenant_count as u32
    }

    /// Number of nodes covered by the map.
    pub fn node_count(&self) -> usize {
        self.slot_of.len()
    }

    /// The accounting slot owning `node` (a tenant id, or the background
    /// slot).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[inline]
    pub fn slot_of(&self, node: usize) -> u32 {
        self.slot_of[node]
    }

    /// The tenant owning `node`, or `None` for a background node.
    #[inline]
    pub fn tenant_of(&self, node: usize) -> Option<u32> {
        let slot = self.slot_of[node];
        (slot < self.tenant_count as u32).then_some(slot)
    }

    /// The full `node → slot` table, in node order.
    pub fn assignments(&self) -> &[u32] {
        &self.slot_of
    }

    /// Per-slot node counts, indexed by slot (the last entry is the
    /// background slot's).
    pub fn node_counts(&self) -> &[usize] {
        &self.node_counts
    }

    /// The nodes of one slot, in ascending node order.
    pub fn nodes_of(&self, slot: u32) -> Vec<usize> {
        self.slot_of
            .iter()
            .enumerate()
            .filter_map(|(node, &s)| (s == slot).then_some(node))
            .collect()
    }
}

#[cfg(feature = "snapshot")]
impl TenantMap {
    pub(crate) fn save_state(&self, w: &mut crate::snapshot::SnapWriter) {
        w.put_usize(self.tenant_count);
        w.put_usize(self.slot_of.len());
        for &slot in &self.slot_of {
            w.put_u32(slot);
        }
    }

    pub(crate) fn load_state(
        r: &mut crate::snapshot::SnapReader<'_>,
    ) -> Result<Self, crate::snapshot::SnapshotError> {
        use crate::snapshot::SnapshotError;
        let tenant_count = r.read_usize()?;
        if tenant_count == 0 {
            return Err(SnapshotError::Corrupt("tenant map declares zero tenants"));
        }
        let nodes = r.read_usize()?;
        let mut node_counts = vec![0usize; tenant_count + 1];
        let mut slot_of = Vec::with_capacity(nodes.min(1 << 20));
        for _ in 0..nodes {
            let slot = r.read_u32()?;
            let Some(count) = node_counts.get_mut(slot as usize) else {
                return Err(SnapshotError::Corrupt("tenant map slot out of range"));
            };
            *count += 1;
            slot_of.push(slot);
        }
        if node_counts[..tenant_count].contains(&0) {
            return Err(SnapshotError::Corrupt("tenant map has an empty tenant"));
        }
        Ok(TenantMap { slot_of, tenant_count, node_counts })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_are_validated() {
        assert_eq!(TenantMap::new(vec![None; 4], 0), Err(TenantMapError::NoTenants));
        assert_eq!(
            TenantMap::new(vec![Some(0), Some(2)], 2),
            Err(TenantMapError::TenantIdOutOfRange { node: 1, tenant: 2, tenant_count: 2 })
        );
        assert_eq!(
            TenantMap::new(vec![Some(0), Some(0), None], 2),
            Err(TenantMapError::EmptyTenant { tenant: 1 })
        );
    }

    #[test]
    fn background_collects_unmapped_nodes() {
        let map = TenantMap::new(vec![Some(1), None, Some(0), None], 2).unwrap();
        assert_eq!(map.slot_count(), 3);
        assert_eq!(map.background_slot(), 2);
        assert_eq!(map.slot_of(1), 2);
        assert_eq!(map.tenant_of(1), None);
        assert_eq!(map.tenant_of(2), Some(0));
        assert_eq!(map.node_counts(), &[1, 1, 2]);
        assert_eq!(map.node_counts().iter().sum::<usize>(), map.node_count());
        assert_eq!(map.nodes_of(2), vec![1, 3]);
    }

    #[test]
    fn total_maps_leave_the_background_empty() {
        let map = TenantMap::new(vec![Some(0), Some(1), Some(1), Some(0)], 2).unwrap();
        assert_eq!(map.node_counts(), &[2, 2, 0]);
        assert_eq!(map.nodes_of(map.background_slot()), Vec::<usize>::new());
    }

    #[cfg(feature = "snapshot")]
    #[test]
    fn snapshot_round_trips() {
        use crate::snapshot::{SnapReader, SnapWriter};
        let map = TenantMap::new(vec![Some(1), None, Some(0), Some(1)], 2).unwrap();
        let mut w = SnapWriter::new();
        map.save_state(&mut w);
        let bytes = w.into_vec();
        let mut r = SnapReader::new(&bytes);
        let back = TenantMap::load_state(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back, map);
    }

    #[cfg(feature = "snapshot")]
    #[test]
    fn corrupt_snapshots_are_rejected() {
        use crate::snapshot::{SnapReader, SnapWriter};
        // A slot id beyond the background slot.
        let mut w = SnapWriter::new();
        w.put_usize(1);
        w.put_usize(2);
        w.put_u32(0);
        w.put_u32(7);
        let bytes = w.into_vec();
        assert!(TenantMap::load_state(&mut SnapReader::new(&bytes)).is_err());
        // An empty tenant.
        let mut w = SnapWriter::new();
        w.put_usize(2);
        w.put_usize(1);
        w.put_u32(2);
        let bytes = w.into_vec();
        assert!(TenantMap::load_state(&mut SnapReader::new(&bytes)).is_err());
    }
}
