//! Invariant suite for the fault-injection subsystem and the
//! minimal-adaptive escape-VC routing that tolerates it.
//!
//! Five contracts are pinned here:
//!
//! 1. **Differential equivalence under fault storms** — randomized hazard
//!    storms (mesh/torus × transient/permanent mix × XY/minimal-adaptive
//!    routing × gating on/off) stepped by the sparse and the dense engine
//!    produce bit-identical windows, stats and in-flight state, including the
//!    drop counters.
//! 2. **Conservation through failures** — the flit ledger stays exact at
//!    every pause point even while routers die with flits buffered inside
//!    them: `generated = received + queued + buffered + in flight + dropped`.
//! 3. **Zero-fault bit-identity** — a configuration with an empty
//!    `FaultConfig` reproduces the unfaulted simulator's behaviour bit for
//!    bit (the golden window constants themselves are re-checked by
//!    `tests/determinism.rs`, which runs with no fault state allocated).
//! 4. **Adaptive delivery where dimension-order strands** — under a
//!    permanent link fault that cuts the unique XY path of a flow, XY
//!    delivers nothing and strands its flits forever, while minimal-adaptive
//!    detours and keeps delivering every packet between the (still fully
//!    connected) pairs, dropping none.
//! 5. **Escape-VC deadlock freedom** — minimal-adaptive routing on mesh and
//!    torus stays live through sustained transient-link storms: delivery
//!    strictly increases in every observation window and nothing is dropped
//!    (link fences stall flits, they never vaporise them).

use noc_sim::{
    BurstyTraffic, Direction, FaultConfig, FaultEvent, FaultTarget, GatingConfig, HazardConfig,
    MatrixTraffic, NetworkConfig, NocSimulation, RoutingKind, SyntheticTraffic, TopologyKind,
    TrafficPattern, TrafficSpec,
};
use proptest::prelude::*;

fn faulted_grid_cfg(
    kind: TopologyKind,
    routing: RoutingKind,
    gated: bool,
    faults: FaultConfig,
) -> NetworkConfig {
    let mut builder = NetworkConfig::builder()
        .mesh(4, 4)
        .topology(kind)
        .virtual_channels(2)
        .buffer_depth(4)
        .packet_length(4)
        .routing(routing)
        .faults(faults);
    if gated {
        builder = builder.gating(GatingConfig::enabled(8, 4));
    }
    builder.build().expect("4x4 faulted grid configurations are valid")
}

fn scenario_traffic(
    pattern: TrafficPattern,
    rate: f64,
    packet_length: usize,
    bursty: bool,
) -> Box<dyn TrafficSpec> {
    if bursty {
        Box::new(BurstyTraffic::new(pattern, rate, packet_length, 200.0, 4.0))
    } else {
        Box::new(SyntheticTraffic::new(pattern, rate, packet_length))
    }
}

/// `generated = received + queued + buffered + in flight + dropped`, exactly.
fn assert_flit_conservation(sim: &NocSimulation, context: &str) {
    let accounted = sim.total_flits_received()
        + sim.queued_source_flits() as u64
        + sim.buffered_network_flits() as u64
        + sim.in_flight_flits() as u64
        + sim.total_flits_dropped();
    assert_eq!(accounted, sim.total_flits_generated(), "flits lost or duplicated: {context}");
}

proptest! {
    #![proptest_config(ProptestConfig::default())]

    /// Sparse and dense stepping stay bit-identical through randomized fault
    /// storms, across topology, routing algorithm and gating settings —
    /// including the drop accounting the degraded-mode report consumes.
    #[test]
    fn sparse_and_dense_agree_under_fault_storms(
        kind in prop_oneof![Just(TopologyKind::Mesh), Just(TopologyKind::Torus)],
        routing in prop_oneof![Just(RoutingKind::Xy), Just(RoutingKind::MinimalAdaptive)],
        gated in prop_oneof![Just(false), Just(true)],
        pattern_idx in 0usize..TrafficPattern::ALL.len(),
        bursty in prop_oneof![Just(false), Just(true)],
        rate in 0.01f64..0.2,
        link_rate in 0f64..4e-4,
        router_rate in 0f64..4e-4,
        transient_fraction in 0f64..1.0,
        transient_duration in 50u64..300,
        seed in 0u64..1_000_000,
        chunk in 80u64..320,
    ) {
        let pattern = TrafficPattern::ALL[pattern_idx];
        let faults = FaultConfig::none().with_hazard(HazardConfig {
            link_rate,
            router_rate,
            transient_fraction,
            transient_duration,
        });
        let cfg = faulted_grid_cfg(kind, routing, gated, faults);
        let mut sparse = NocSimulation::new(
            cfg.clone(),
            scenario_traffic(pattern, rate, cfg.packet_length(), bursty),
            seed,
        );
        let mut dense = NocSimulation::new(
            cfg.clone(),
            scenario_traffic(pattern, rate, cfg.packet_length(), bursty),
            seed,
        );
        sparse.set_dense_stepping(false);
        dense.set_dense_stepping(true);
        for (i, &cycles) in [chunk, 2 * chunk, chunk / 2 + 1, chunk + 37].iter().enumerate() {
            sparse.run_cycles(cycles);
            dense.run_cycles(cycles);
            prop_assert_eq!(sparse.take_window(), dense.take_window(), "window {} diverged", i);
            prop_assert_eq!(sparse.total_flits_dropped(), dense.total_flits_dropped());
            prop_assert_eq!(sparse.reachable_pairs_fraction(), dense.reachable_pairs_fraction());
        }
        prop_assert_eq!(sparse.stats(), dense.stats());
        prop_assert_eq!(sparse.total_packets_delivered(), dense.total_packets_delivered());
        prop_assert_eq!(sparse.queued_source_flits(), dense.queued_source_flits());
        prop_assert_eq!(sparse.buffered_network_flits(), dense.buffered_network_flits());
        prop_assert_eq!(sparse.in_flight_flits(), dense.in_flight_flits());
        prop_assert_eq!(sparse.in_flight_credits(), dense.in_flight_credits());
    }

    /// Nothing escapes the ledger through failures: exact flit conservation
    /// at every pause point, with the drop counter absorbing exactly the
    /// flits that died inside failed components.
    #[test]
    fn conservation_through_fault_storms(
        kind in prop_oneof![Just(TopologyKind::Mesh), Just(TopologyKind::Torus)],
        routing in prop_oneof![Just(RoutingKind::Xy), Just(RoutingKind::MinimalAdaptive)],
        gated in prop_oneof![Just(false), Just(true)],
        rate in 0.02f64..0.15,
        transient_fraction in 0f64..1.0,
        seed in 0u64..1_000_000,
    ) {
        // An aggressive storm plus one scheduled router death under load, so
        // both the hazard path and the schedule path feed the same ledger.
        let faults = FaultConfig::scheduled(vec![FaultEvent::transient(
            FaultTarget::Router { node: 5 },
            700,
            400,
        )])
        .with_hazard(HazardConfig {
            link_rate: 3e-4,
            router_rate: 3e-4,
            transient_fraction,
            transient_duration: 150,
        });
        let cfg = faulted_grid_cfg(kind, routing, gated, faults);
        let mut sim = NocSimulation::new(
            cfg.clone(),
            scenario_traffic(TrafficPattern::Uniform, rate, cfg.packet_length(), true),
            seed,
        );
        for pause in 0..6 {
            sim.run_cycles(1_000);
            assert_flit_conservation(&sim, &format!("pause {pause}"));
        }
        prop_assert!(sim.total_packets_delivered() > 0, "the network must make progress");
    }

    /// An empty fault configuration allocates no fault state and reproduces
    /// the plain simulator bit for bit, window by window.
    #[test]
    fn zero_faults_are_bit_identical(
        kind in prop_oneof![Just(TopologyKind::Mesh), Just(TopologyKind::Torus)],
        rate in 0.02f64..0.3,
        seed in 0u64..1_000_000,
    ) {
        let plain = NetworkConfig::builder()
            .mesh(4, 4)
            .topology(kind)
            .virtual_channels(2)
            .buffer_depth(4)
            .packet_length(4)
            .build()
            .unwrap();
        let empty = plain.to_builder().faults(FaultConfig::none()).build().unwrap();
        let mut a = NocSimulation::new(
            plain.clone(),
            scenario_traffic(TrafficPattern::Uniform, rate, 4, false),
            seed,
        );
        let mut b = NocSimulation::new(
            empty,
            scenario_traffic(TrafficPattern::Uniform, rate, 4, false),
            seed,
        );
        for _ in 0..4 {
            a.run_cycles(400);
            b.run_cycles(400);
            prop_assert_eq!(a.take_window(), b.take_window());
            prop_assert_eq!(a.take_activity(), b.take_activity());
        }
        prop_assert_eq!(a.stats(), b.stats());
        prop_assert_eq!(b.total_flits_dropped(), 0);
        prop_assert_eq!(b.reachable_pairs_fraction(), 1.0);
    }
}

/// The issue's acceptance criterion, pinned: a permanent link fault on the
/// unique XY path of a flow strands dimension-order routing completely,
/// while minimal-adaptive keeps delivering every packet between the still
/// fully connected pair — sustained progress in every window, zero drops,
/// and no unbounded backlog.
#[test]
fn adaptive_delivers_between_connected_pairs_where_xy_strands() {
    // Kill the 5→6 link before any traffic: the XY route 4→7 crosses it.
    let faults = FaultConfig::scheduled(vec![FaultEvent::permanent(
        FaultTarget::Link { node: 5, dir: Direction::East },
        0,
    )]);
    let traffic = |cfg: &NetworkConfig| {
        let mut rates = vec![vec![0.0; 16]; 16];
        rates[4][7] = 0.2;
        Box::new(MatrixTraffic::new(rates, cfg.packet_length()))
    };
    let xy_cfg = faulted_grid_cfg(TopologyKind::Mesh, RoutingKind::Xy, false, faults.clone());
    let ad_cfg =
        faulted_grid_cfg(TopologyKind::Mesh, RoutingKind::MinimalAdaptive, false, faults);
    let mut xy = NocSimulation::new(xy_cfg.clone(), traffic(&xy_cfg), 3);
    let mut adaptive = NocSimulation::new(ad_cfg.clone(), traffic(&ad_cfg), 3);

    let mut delivered_last = 0;
    for chunk in 0..8 {
        xy.run_cycles(1_000);
        adaptive.run_cycles(1_000);
        let delivered = adaptive.total_packets_delivered();
        assert!(delivered > delivered_last, "adaptive stalled in chunk {chunk}");
        delivered_last = delivered;
    }

    // A single dead link leaves the mesh fully connected, so every pair is
    // "still connected" — adaptive must serve all of them.
    assert_eq!(adaptive.reachable_pairs_fraction(), 1.0);
    assert_eq!(adaptive.total_flits_dropped(), 0, "a detour is not a drop");
    let plen = ad_cfg.packet_length() as u64;
    let in_network = adaptive.queued_source_flits() as u64
        + adaptive.buffered_network_flits() as u64
        + adaptive.in_flight_flits() as u64;
    assert_eq!(
        adaptive.total_packets_delivered() * plen + in_network,
        adaptive.total_flits_generated(),
        "everything generated is either delivered or still moving"
    );
    assert!(
        in_network < 16 * plen,
        "the detour path keeps up with the offered load ({in_network} flits backlogged)"
    );

    // Dimension-order routing has exactly one path, and it is dead.
    assert_eq!(xy.reachable_pairs_fraction(), 1.0, "the topology itself is still whole");
    assert_eq!(xy.total_packets_delivered(), 0, "XY cannot route around the dead link");
    assert!(xy.queued_source_flits() + xy.buffered_network_flits() > 0, "XY strands flits");
    assert_flit_conservation(&xy, "stranded XY flow");
    assert_flit_conservation(&adaptive, "detoured adaptive flow");
}

/// Escape-VC deadlock freedom under sustained transient-link storms: the
/// adaptive class may detour arbitrarily, but every blocked head keeps being
/// re-offered the dimension-ordered escape class, so the network keeps
/// delivering through link flaps on both mesh and torus — and link fences
/// only ever stall flits, never drop them.
#[test]
fn escape_vcs_keep_the_network_live_through_link_storms() {
    for (kind, seed) in
        [(TopologyKind::Mesh, 7u64), (TopologyKind::Torus, 11), (TopologyKind::Torus, 2015)]
    {
        let faults = FaultConfig::none().with_hazard(HazardConfig {
            link_rate: 5e-4,
            router_rate: 0.0,
            transient_fraction: 1.0,
            transient_duration: 200,
        });
        let cfg = faulted_grid_cfg(kind, RoutingKind::MinimalAdaptive, false, faults);
        let mut sim = NocSimulation::new(
            cfg.clone(),
            scenario_traffic(TrafficPattern::Uniform, 0.08, cfg.packet_length(), false),
            seed,
        );
        let mut delivered_last = 0;
        for chunk in 0..10 {
            sim.run_cycles(1_500);
            let delivered = sim.total_packets_delivered();
            assert!(
                delivered > delivered_last,
                "{}/seed {seed}: no progress in chunk {chunk} — wedged under link flaps",
                kind.name()
            );
            delivered_last = delivered;
            assert_flit_conservation(&sim, &format!("{}/seed {seed} chunk {chunk}", kind.name()));
        }
        assert_eq!(
            sim.total_flits_dropped(),
            0,
            "{}/seed {seed}: transient link fences must stall, not drop",
            kind.name()
        );
    }
}
