//! Invariants of the voltage-frequency island (VFI) machinery.
//!
//! Three contracts are pinned here:
//!
//! 1. **Single-island bit-identity** — a configuration with an explicit
//!    one-island partition (named `Whole` layout *or* a degenerate custom
//!    map) reproduces the pre-VFI golden window sequence of
//!    `tests/determinism.rs` bit for bit, under both the sparse engine and
//!    the dense reference loop (`NOC_DENSE_STEP=1` in CI re-runs this file
//!    on the dense path). The island machinery must be a structural no-op
//!    when there is nothing to partition.
//! 2. **Window-sum conservation** — on *any* partition, the per-island
//!    windows of [`NocSimulation::take_island_windows`] sum field-by-field
//!    (for the additive flit/packet/latency fields) to the global
//!    [`NocSimulation::take_window`] over the same span, and the shared-clock
//!    fields (`wall_time_ps`, `node_cycles`) are identical across islands.
//! 3. **Sparse ≡ dense under per-island DVFS** — randomized partitions with
//!    randomized per-island frequencies step bit-identically on both
//!    engines, including the per-island window sequences.

use noc_sim::{
    Hertz, NetworkConfig, NocSimulation, RegionLayout, RegionScheme, SyntheticTraffic,
    TrafficPattern, WindowMeasurement,
};
use proptest::prelude::*;

/// The 4×4 baseline of `tests/determinism.rs`, with a caller-chosen island
/// scheme.
fn baseline_4x4(regions: RegionScheme) -> NetworkConfig {
    NetworkConfig::builder()
        .mesh(4, 4)
        .virtual_channels(2)
        .buffer_depth(4)
        .packet_length(5)
        .regions(regions)
        .build()
        .unwrap()
}

/// First golden window of `(baseline_4x4, uniform @ 0.10, seed 2015)` from
/// `tests/determinism.rs` — enough to pin bit-identity (the full sequence is
/// checked there; any divergence shows up in the first window or cascades
/// into the aggregate equality asserted below).
const GOLDEN_FIRST: WindowMeasurement = WindowMeasurement {
    noc_cycles: 500,
    node_cycles: 500,
    wall_time_ps: 500000.0,
    flits_generated: 875,
    flits_injected: 867,
    packets_ejected: 170,
    flits_ejected: 852,
    latency_cycles_sum: 3249,
    delay_ps_sum: 3249000.0,
    flits_dropped: 0,
};

fn golden_sim(regions: RegionScheme) -> NocSimulation {
    let cfg = baseline_4x4(regions);
    let traffic = SyntheticTraffic::new(TrafficPattern::Uniform, 0.10, cfg.packet_length());
    NocSimulation::new(cfg, Box::new(traffic), 2015)
}

#[test]
fn explicit_single_island_reproduces_the_pre_vfi_golden_windows() {
    for regions in [
        RegionScheme::Layout(RegionLayout::Whole),
        RegionScheme::Custom(vec![0; 16]),
    ] {
        let mut sim = golden_sim(regions.clone());
        assert_eq!(sim.island_count(), 1);
        sim.run_cycles(500);
        assert_eq!(sim.take_window(), GOLDEN_FIRST, "regions {regions:?}");
        // The rest of the run must match the implicit-default simulation
        // window for window (six more spans, including the aggregate stats).
        let mut reference = golden_sim(RegionScheme::default());
        reference.run_cycles(500);
        let _ = reference.take_window();
        for _ in 0..6 {
            sim.run_cycles(500);
            reference.run_cycles(500);
            assert_eq!(sim.take_window(), reference.take_window(), "regions {regions:?}");
        }
        assert_eq!(sim.stats(), reference.stats());
    }
}

#[test]
fn single_island_per_island_control_is_the_global_knob() {
    // Driving the one island through set_island_frequency must match a
    // reference run driven through set_noc_frequency, window for window.
    let mut by_island = golden_sim(RegionScheme::default());
    let mut by_global = golden_sim(RegionScheme::default());
    for mhz in [1000.0, 500.0, 333.0, 800.0] {
        let f = Hertz::from_mhz(mhz);
        by_island.set_island_frequency(0, f);
        by_global.set_noc_frequency(f);
        by_island.run_cycles(400);
        by_global.run_cycles(400);
        assert_eq!(by_island.take_window(), by_global.take_window());
    }
    assert_eq!(by_island.stats(), by_global.stats());
}

/// Strategy: a random valid custom partition of the 16-node grid into
/// 1..=5 islands (always contiguous ids — node `n` gets `n % islands`).
fn random_partition(islands: usize, shift: usize) -> RegionScheme {
    RegionScheme::Custom((0..16).map(|n| ((n + shift) % islands) as u32).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::default())]

    /// On any partition, additive island-window fields sum to the global
    /// window, and shared-clock fields are identical across islands.
    #[test]
    fn island_windows_conserve_the_global_window(
        islands in 1usize..=5,
        shift in 0usize..16,
        rate in 0.03f64..0.3,
        seed in 0u64..1_000_000,
        slow_island in 0usize..5,
        slow_mhz in 333.0f64..1000.0,
        chunk in 100u64..400,
    ) {
        let cfg = baseline_4x4(random_partition(islands, shift));
        let traffic = SyntheticTraffic::new(TrafficPattern::Uniform, rate, cfg.packet_length());
        let mut sim = NocSimulation::new(cfg, Box::new(traffic), seed);
        sim.set_island_frequency(slow_island % islands, Hertz::from_mhz(slow_mhz));
        for _ in 0..3 {
            sim.run_cycles(chunk);
            let island_windows = sim.take_island_windows();
            let global = sim.take_window();
            prop_assert_eq!(island_windows.len(), islands);
            let sum = |f: fn(&WindowMeasurement) -> u64| -> u64 {
                island_windows.iter().map(f).sum()
            };
            prop_assert_eq!(sum(|w| w.flits_generated), global.flits_generated);
            prop_assert_eq!(sum(|w| w.flits_injected), global.flits_injected);
            prop_assert_eq!(sum(|w| w.flits_ejected), global.flits_ejected);
            prop_assert_eq!(sum(|w| w.packets_ejected), global.packets_ejected);
            prop_assert_eq!(sum(|w| w.latency_cycles_sum), global.latency_cycles_sum);
            let delay_sum: f64 = island_windows.iter().map(|w| w.delay_ps_sum).sum();
            prop_assert!((delay_sum - global.delay_ps_sum).abs() < 1e-6);
            for w in &island_windows {
                prop_assert_eq!(w.wall_time_ps, global.wall_time_ps);
                prop_assert_eq!(w.node_cycles, global.node_cycles);
                prop_assert!(w.noc_cycles <= global.noc_cycles);
            }
        }
    }

    /// Sparse and dense stepping stay bit-identical under multi-island
    /// partitions with heterogeneous per-island frequencies.
    #[test]
    fn sparse_and_dense_agree_under_per_island_dvfs(
        islands in 2usize..=4,
        shift in 0usize..16,
        rate in 0.05f64..0.3,
        seed in 0u64..1_000_000,
        f0 in 333.0f64..1000.0,
        f1 in 333.0f64..1000.0,
        chunk in 80u64..300,
    ) {
        let cfg = baseline_4x4(random_partition(islands, shift));
        let mk = |cfg: &NetworkConfig| {
            let traffic =
                SyntheticTraffic::new(TrafficPattern::Uniform, rate, cfg.packet_length());
            NocSimulation::new(cfg.clone(), Box::new(traffic), seed)
        };
        let mut sparse = mk(&cfg);
        let mut dense = mk(&cfg);
        sparse.set_dense_stepping(false);
        dense.set_dense_stepping(true);
        for sim in [&mut sparse, &mut dense] {
            sim.set_island_frequency(0, Hertz::from_mhz(f0));
            sim.set_island_frequency(1, Hertz::from_mhz(f1));
        }
        for _ in 0..4 {
            sparse.run_cycles(chunk);
            dense.run_cycles(chunk);
            prop_assert_eq!(sparse.take_window(), dense.take_window());
            prop_assert_eq!(sparse.take_island_windows(), dense.take_island_windows());
        }
        prop_assert_eq!(sparse.stats(), dense.stats());
        prop_assert_eq!(sparse.buffered_network_flits(), dense.buffered_network_flits());
        prop_assert_eq!(sparse.in_flight_flits(), dense.in_flight_flits());
        for island in 0..islands {
            prop_assert_eq!(sparse.island_cycle(island), dense.island_cycle(island));
        }
    }

    /// Per-router activity reports each router's own island-domain cycles,
    /// and the per-island domain cycle counts track the frequency ratios.
    #[test]
    fn activity_cycles_follow_island_clocks(
        islands in 1usize..=4,
        shift in 0usize..16,
        slow_mhz in 333.0f64..1000.0,
        seed in 0u64..1_000_000,
    ) {
        let cfg = baseline_4x4(random_partition(islands, shift));
        let traffic = SyntheticTraffic::new(TrafficPattern::Uniform, 0.1, cfg.packet_length());
        let mut sim = NocSimulation::new(cfg, Box::new(traffic), seed);
        let slow = islands - 1;
        sim.set_island_frequency(slow, Hertz::from_mhz(slow_mhz));
        sim.run_cycles(2_000);
        let act = sim.take_activity();
        let map = sim.region_map().clone();
        for node in 0..sim.node_count() {
            let island = map.island_of(node) as usize;
            prop_assert_eq!(act.routers[node].cycles, sim.island_cycle(island));
        }
        // The slowed island's domain cycle count matches its ratio to the
        // base clock (within rounding). With a single island the "slowed"
        // island *is* the base clock: it still fires on every base tick.
        let expected =
            if islands == 1 { 2_000.0 } else { 2_000.0 * (slow_mhz / 1000.0) };
        let got = sim.island_cycle(slow) as f64;
        prop_assert!(
            (got - expected).abs() <= 2.0,
            "island {} completed {} cycles, expected about {:.1}",
            slow, got, expected
        );
    }
}
