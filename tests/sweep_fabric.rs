//! Integration tests of the crash-tolerant sweep fabric against the real
//! simulator: chaos-killed and kill/resume sweeps must converge to journals
//! byte-identical to an uninterrupted run, and a chaos-killed long point
//! warm-started from a [`SimSnapshot`] checkpoint must reproduce the
//! never-crashed ledger exactly.
//!
//! (The coordinator's own unit tests cover the fabric mechanics — watchdog,
//! backoff, torn journals — with cheap synthetic runners; these tests pin
//! the end-to-end claim with real operating points.)

use noc_dvfs::coordinator::{
    run_sweep, shard_policy_grid, ChaosConfig, CoordinatorConfig, PointContext, PointRunner,
    WorkUnit,
};
use noc_dvfs::{
    encode_operating_point, run_operating_point, ClosedLoopConfig, DmsdConfig, PolicyKind,
};
use noc_sim::{
    FaultConfig, GatingConfig, HazardConfig, NetworkConfig, NocSimulation, SimSnapshot,
    SyntheticTraffic, TrafficPattern,
};
use std::path::{Path, PathBuf};
use std::sync::Arc;

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("sweep-fabric-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("temp dir");
        TempDir(dir)
    }
    fn path(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// A small gated + faulted torus so every point exercises the full state
/// space the snapshot subsystem has to carry.
fn torus_under_fire() -> NetworkConfig {
    NetworkConfig::builder()
        .torus(4, 4)
        .virtual_channels(2)
        .buffer_depth(4)
        .packet_length(4)
        .gating(GatingConfig::enabled(24, 8))
        .faults(FaultConfig::none().with_hazard(HazardConfig {
            link_rate: 1e-4,
            router_rate: 5e-5,
            transient_fraction: 1.0,
            transient_duration: 150,
        }))
        .build()
        .expect("gated faulted torus configuration is valid")
}

fn operating_point_runner() -> Arc<PointRunner> {
    let net = torus_under_fire();
    let loop_cfg = ClosedLoopConfig::quick();
    Arc::new(move |unit: &WorkUnit, ctx: &mut PointContext| {
        ctx.checkpoint_tick();
        let traffic =
            SyntheticTraffic::new(TrafficPattern::Uniform, unit.load, net.packet_length());
        let point =
            run_operating_point(&net, Box::new(traffic), unit.policy.clone(), &loop_cfg, unit.seed);
        Ok(encode_operating_point(&point))
    })
}

fn read(path: &Path) -> String {
    std::fs::read_to_string(path).expect("journal exists")
}

#[test]
fn chaos_and_resume_converge_to_the_uninterrupted_journal() {
    let dir = TempDir::new("converge");
    let policies =
        [PolicyKind::NoDvfs, PolicyKind::Dmsd(DmsdConfig::with_target_ns(150.0))];
    let grid = shard_policy_grid("fabric", &policies, &[0.08], 2015);
    let cfg = CoordinatorConfig::quick();

    let clean = dir.path("clean.jsonl");
    let reference = run_sweep(&grid, operating_point_runner(), &clean, &cfg).unwrap();
    assert!(reference.failures.is_empty());
    assert_eq!(reference.results.len(), grid.len());

    // Kill partway: a first "process" only dispatches a prefix of the grid,
    // then a second one resumes from its journal.
    let resumed_journal = dir.path("resumed.jsonl");
    run_sweep(&grid[..1], operating_point_runner(), &resumed_journal, &cfg).unwrap();
    let resumed = run_sweep(&grid, operating_point_runner(), &resumed_journal, &cfg).unwrap();
    assert_eq!(resumed.resumed, 1, "the journaled prefix must not be recomputed");
    assert_eq!(read(&resumed_journal), read(&clean), "resume must merge to the exact artifact");

    // Chaos: worker attempts killed mid-point still converge byte-for-byte.
    let chaos_journal = dir.path("chaos.jsonl");
    let chaos_cfg = CoordinatorConfig::quick()
        .with_chaos(ChaosConfig { kill_probability: 1.0, seed: 0xC4A0 });
    let chaos = run_sweep(&grid, operating_point_runner(), &chaos_journal, &chaos_cfg).unwrap();
    assert!(chaos.failures.is_empty(), "chaos sweeps must converge");
    assert!(chaos.retries > 0, "a 100% kill rate must actually kill something");
    assert_eq!(read(&chaos_journal), read(&clean), "chaos must converge to the exact artifact");
}

#[test]
fn a_chaos_killed_long_point_warm_starts_bit_identically() {
    let dir = TempDir::new("warmstart");
    let unit = WorkUnit::new("long", PolicyKind::NoDvfs, 0.10, 7);
    // The runner simulates 1200 cycles in 300-cycle chunks, checkpointing a
    // full snapshot after each chunk; a killed attempt's retry restores the
    // latest checkpoint instead of restarting.
    let runner: Arc<PointRunner> = Arc::new(|unit: &WorkUnit, ctx: &mut PointContext| {
        let net = torus_under_fire();
        let traffic =
            SyntheticTraffic::new(TrafficPattern::Uniform, unit.load, net.packet_length());
        let mut sim = NocSimulation::new(net, Box::new(traffic), unit.seed);
        if let Some(bytes) = ctx.load_checkpoint() {
            let snap = SimSnapshot::from_bytes(&bytes).expect("checkpoints are never torn");
            sim.restore(&snap).expect("checkpoint matches the configuration");
            assert!(sim.current_cycle() > 0, "warm start must not begin at cycle 0");
        }
        while sim.current_cycle() < 1_200 {
            sim.run_cycles(300);
            ctx.save_checkpoint(&sim.snapshot().to_bytes());
        }
        Ok(format!(
            "cycle={} gen={} del={} drop={} stats={:?}",
            sim.current_cycle(),
            sim.total_flits_generated(),
            sim.total_packets_delivered(),
            sim.total_flits_dropped(),
            sim.stats(),
        ))
    });
    let chaos_cfg = CoordinatorConfig::quick()
        .with_chaos(ChaosConfig { kill_probability: 1.0, seed: 1 });
    let killed = run_sweep(
        std::slice::from_ref(&unit),
        Arc::clone(&runner),
        &dir.path("warm.jsonl"),
        &chaos_cfg,
    )
    .unwrap();
    assert!(killed.failures.is_empty());
    assert!(killed.retries > 0, "the first attempt must have been chaos-killed");
    let cold = run_sweep(&[unit], runner, &dir.path("cold.jsonl"), &CoordinatorConfig::quick())
        .unwrap();
    assert_eq!(
        killed.results[0].1, cold.results[0].1,
        "the warm-started ledger must equal the never-crashed one bit for bit"
    );
}
