//! Fig. 4 bench: one DMSD closed-loop operating point (PI loop tracking the
//! delay target) including the adaptive settling phase.

use criterion::{criterion_group, criterion_main, Criterion};
use noc_bench::bench_support::{bench_loop, bench_network};
use noc_dvfs::{run_operating_point, DmsdConfig, PolicyKind};
use noc_sim::{SyntheticTraffic, TrafficPattern, TrafficSpec};
use std::time::Duration;

fn traffic(rate: f64) -> Box<dyn TrafficSpec> {
    Box::new(SyntheticTraffic::new(TrafficPattern::Uniform, rate, 5))
}

fn bench_fig4(c: &mut Criterion) {
    let net = bench_network();
    let loop_cfg = bench_loop();
    let mut group = c.benchmark_group("fig4_dmsd_pi_loop");
    group.sample_size(10).measurement_time(Duration::from_secs(4)).warm_up_time(Duration::from_secs(1));
    for rate in [0.08, 0.2] {
        group.bench_function(format!("dmsd_point_rate_{rate}"), |b| {
            b.iter(|| {
                run_operating_point(
                    &net,
                    traffic(rate),
                    PolicyKind::Dmsd(DmsdConfig::with_target_ns(150.0)),
                    &loop_cfg,
                    1,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
