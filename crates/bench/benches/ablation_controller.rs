//! Ablation benches for the design choices called out in `DESIGN.md`:
//! the DMSD PI gains and the control update period. Each case runs one
//! closed-loop DMSD point; the interesting output is both the runtime (here)
//! and, when run through the `figures` binary at higher quality, how far the
//! measured delay lands from the 150 ns target.

use criterion::{criterion_group, criterion_main, Criterion};
use noc_bench::bench_support::bench_network;
use noc_dvfs::{run_operating_point, ClosedLoopConfig, DmsdConfig, PolicyKind};
use noc_sim::{SyntheticTraffic, TrafficPattern, TrafficSpec};
use std::time::Duration;

fn traffic() -> Box<dyn TrafficSpec> {
    Box::new(SyntheticTraffic::new(TrafficPattern::Uniform, 0.12, 5))
}

fn loop_with_period(period: u64) -> ClosedLoopConfig {
    ClosedLoopConfig {
        control_period_cycles: period,
        warmup_intervals: 2,
        measure_intervals: 4,
        max_settle_intervals: 20,
        settle_tolerance: 0.01,
    }
}

fn bench_pi_gains(c: &mut Criterion) {
    let net = bench_network();
    let loop_cfg = loop_with_period(800);
    let mut group = c.benchmark_group("ablation_pi_gains");
    group.sample_size(10).measurement_time(Duration::from_secs(4)).warm_up_time(Duration::from_secs(1));
    // The paper's gains, a slower loop and a faster loop.
    let cases = [("paper_ki0.025_kp0.0125", 0.025, 0.0125), ("slow_ki0.01", 0.01, 0.005), ("fast_ki0.1", 0.1, 0.05)];
    for (name, ki, kp) in cases {
        group.bench_function(name, |b| {
            b.iter(|| {
                run_operating_point(
                    &net,
                    traffic(),
                    PolicyKind::Dmsd(DmsdConfig::with_target_ns(150.0).gains(ki, kp)),
                    &loop_cfg,
                    9,
                )
            })
        });
    }
    group.finish();
}

fn bench_control_period(c: &mut Criterion) {
    let net = bench_network();
    let mut group = c.benchmark_group("ablation_control_period");
    group.sample_size(10).measurement_time(Duration::from_secs(4)).warm_up_time(Duration::from_secs(1));
    for period in [400u64, 800, 1_600] {
        group.bench_function(format!("period_{period}_cycles"), |b| {
            b.iter(|| {
                run_operating_point(
                    &net,
                    traffic(),
                    PolicyKind::Dmsd(DmsdConfig::with_target_ns(150.0)),
                    &loop_with_period(period),
                    9,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pi_gains, bench_control_period);
criterion_main!(benches);
