//! The DVFS policy abstraction and the No-DVFS baseline.

use crate::dmsd::{Dmsd, DmsdConfig};
use crate::rmsd::{Rmsd, RmsdConfig};
use noc_sim::{Hertz, NetworkConfig, WindowMeasurement};
use serde::{Deserialize, Serialize};
use std::fmt::Debug;

/// Everything a DVFS controller learns at one control update: the window of
/// measurements collected since the previous update, plus network-level
/// context.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ControlMeasurement {
    /// The measurement window reported by the nodes.
    pub window: WindowMeasurement,
    /// Number of nodes in the mesh (to turn aggregate counts into per-node
    /// rates).
    pub node_count: usize,
    /// NoC clock frequency that was in force during the window.
    pub current_frequency: Hertz,
}

impl ControlMeasurement {
    /// Average node injection rate `λ_node` over the window, in flits per
    /// node-clock cycle per node.
    pub fn node_injection_rate(&self) -> f64 {
        self.window.node_injection_rate(self.node_count)
    }

    /// Average end-to-end packet delay over the window, in nanoseconds, if
    /// any packet completed.
    pub fn avg_delay_ns(&self) -> Option<f64> {
        self.window.avg_delay_ns()
    }
}

/// A global DVFS policy: given the latest measurements, choose the NoC clock
/// frequency for the next control interval.
///
/// Implementations must be deterministic functions of their own state and the
/// measurements so that experiments are reproducible.
pub trait DvfsPolicy: Debug + Send {
    /// A short name used in reports and figure legends (e.g. `"RMSD"`).
    fn name(&self) -> &'static str;

    /// Chooses the frequency to apply during the next control interval.
    fn next_frequency(&mut self, measurement: &ControlMeasurement) -> Hertz;

    /// Clears any internal state (PI integrators, error history, …).
    fn reset(&mut self);
}

/// The baseline policy: always run the NoC at its maximum frequency.
#[derive(Debug, Clone, PartialEq)]
pub struct NoDvfs {
    max_frequency: Hertz,
}

impl NoDvfs {
    /// Creates the baseline policy for a network configuration.
    pub fn new(cfg: &NetworkConfig) -> Self {
        NoDvfs { max_frequency: cfg.max_frequency() }
    }

    /// Creates the baseline policy with an explicit maximum frequency.
    pub fn with_frequency(max_frequency: Hertz) -> Self {
        NoDvfs { max_frequency }
    }
}

impl DvfsPolicy for NoDvfs {
    fn name(&self) -> &'static str {
        "No-DVFS"
    }

    fn next_frequency(&mut self, _measurement: &ControlMeasurement) -> Hertz {
        self.max_frequency
    }

    fn reset(&mut self) {}
}

/// A value-level description of which policy to run, used by sweeps and
/// experiment drivers (where policies must be constructed repeatedly with the
/// same parameters).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PolicyKind {
    /// The always-at-`F_max` baseline.
    NoDvfs,
    /// Rate-based Max Slow Down with the given parameters.
    Rmsd(RmsdConfig),
    /// Delay-based Max Slow Down with the given parameters.
    Dmsd(DmsdConfig),
}

impl PolicyKind {
    /// A short name used in reports and figure legends.
    pub fn name(&self) -> &'static str {
        match self {
            PolicyKind::NoDvfs => "No-DVFS",
            PolicyKind::Rmsd(_) => "RMSD",
            PolicyKind::Dmsd(_) => "DMSD",
        }
    }

    /// Instantiates the policy for the given network configuration.
    pub fn build(&self, cfg: &NetworkConfig) -> Box<dyn DvfsPolicy> {
        match self {
            PolicyKind::NoDvfs => Box::new(NoDvfs::new(cfg)),
            PolicyKind::Rmsd(rc) => Box::new(Rmsd::new(cfg, rc.clone())),
            PolicyKind::Dmsd(dc) => Box::new(Dmsd::new(cfg, dc.clone())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn measurement(rate: f64, delay_ns: f64, f: Hertz) -> ControlMeasurement {
        let node_count = 25;
        let node_cycles = 10_000;
        let flits_generated = (rate * node_count as f64 * node_cycles as f64) as u64;
        let packets = 100;
        ControlMeasurement {
            window: WindowMeasurement {
                noc_cycles: 10_000,
                node_cycles,
                wall_time_ps: 1.0e7,
                flits_generated,
                flits_injected: flits_generated,
                packets_ejected: packets,
                flits_ejected: packets * 20,
                latency_cycles_sum: packets * 50,
                delay_ps_sum: delay_ns * 1e3 * packets as f64,
                flits_dropped: 0,
            },
            node_count,
            current_frequency: f,
        }
    }

    #[test]
    fn no_dvfs_always_returns_max_frequency() {
        let cfg = NetworkConfig::paper_baseline();
        let mut policy = NoDvfs::new(&cfg);
        for rate in [0.0, 0.1, 0.4] {
            let m = measurement(rate, 100.0, Hertz::from_mhz(500.0));
            assert_eq!(policy.next_frequency(&m), cfg.max_frequency());
        }
        assert_eq!(policy.name(), "No-DVFS");
    }

    #[test]
    fn control_measurement_exposes_rate_and_delay() {
        let m = measurement(0.2, 150.0, Hertz::from_ghz(1.0));
        assert!((m.node_injection_rate() - 0.2).abs() < 1e-9);
        assert!((m.avg_delay_ns().unwrap() - 150.0).abs() < 1e-9);
    }

    #[test]
    fn policy_kind_builds_each_variant() {
        let cfg = NetworkConfig::paper_baseline();
        let kinds = [
            PolicyKind::NoDvfs,
            PolicyKind::Rmsd(RmsdConfig::with_lambda_max(0.378)),
            PolicyKind::Dmsd(DmsdConfig::with_target_ns(150.0)),
        ];
        let names: Vec<&str> = kinds.iter().map(|k| k.build(&cfg).name()).collect();
        assert_eq!(names, vec!["No-DVFS", "RMSD", "DMSD"]);
        assert_eq!(kinds[1].name(), "RMSD");
    }
}
