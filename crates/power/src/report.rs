//! Power reports and frequency/voltage residency accounting.

use crate::model::EnergyBreakdown;
use crate::tech::Volts;
use noc_sim::{CongestionHeatmap, Hertz};
use serde::{Deserialize, Serialize};

/// Power consumed by the NoC over one observation interval, broken down per
/// router and into dynamic vs. static components.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PowerReport {
    /// Average power of each router (plus its outgoing links), in milliwatts.
    pub per_router_mw: Vec<f64>,
    /// Total dynamic (activity + clock tree) power in milliwatts.
    pub dynamic_mw: f64,
    /// Total static (leakage) power in milliwatts.
    pub static_mw: f64,
}

impl PowerReport {
    /// Creates an empty report.
    pub fn new() -> Self {
        PowerReport::default()
    }

    /// Total NoC power in milliwatts.
    pub fn total_mw(&self) -> f64 {
        self.dynamic_mw + self.static_mw
    }

    /// The highest per-router power, useful to locate hotspots.
    pub fn peak_router_mw(&self) -> f64 {
        self.per_router_mw.iter().copied().fold(0.0, f64::max)
    }

    /// Average per-router power in milliwatts.
    pub fn mean_router_mw(&self) -> f64 {
        if self.per_router_mw.is_empty() {
            0.0
        } else {
            self.per_router_mw.iter().sum::<f64>() / self.per_router_mw.len() as f64
        }
    }
}

/// Width of a residency-histogram frequency bin, hertz (10 MHz).
///
/// Discrete-level policies (No-DVFS, quantized actuators) land each level in
/// its own bin exactly; continuous-output policies (the DMSD PI loop emits a
/// slightly different frequency every interval) coalesce into a bounded
/// histogram instead of one "level" per control update.
pub const RESIDENCY_BIN_HZ: f64 = 1.0e7;

/// Wall-clock time spent at one `(frequency, Vdd)` operating level — a
/// [`RESIDENCY_BIN_HZ`]-wide frequency bin.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResidencyLevel {
    /// Representative clock frequency of the level (the first frequency
    /// recorded into the bin), hertz.
    pub frequency_hz: f64,
    /// Time-weighted mean supply voltage over the level's intervals, volts.
    pub vdd: f64,
    /// Wall-clock time spent at the level, picoseconds.
    pub wall_ps: f64,
}

/// Time-weighted frequency/voltage residency of one clock domain (a
/// voltage-frequency island, or the whole NoC under global DVFS).
///
/// A DVFS control loop [`record`](Self::record)s every interval it spent at
/// an operating level; the accumulator tracks the time-weighted averages and
/// the per-level residency histogram, plus the energy attributed to the
/// domain over those intervals. This is the "frequency residency" a power
/// report shows per island.
///
/// ```
/// use noc_power::{report::FrequencyResidency, tech::Volts, model::EnergyBreakdown};
/// use noc_sim::Hertz;
///
/// let mut r = FrequencyResidency::new();
/// r.record(Hertz::from_ghz(1.0), Volts::new(0.9), 3.0e6, EnergyBreakdown::default());
/// r.record(Hertz::from_mhz(500.0), Volts::new(0.7), 1.0e6, EnergyBreakdown::default());
/// assert!((r.avg_frequency_ghz() - 0.875).abs() < 1e-12);
/// assert_eq!(r.levels().len(), 2);
/// assert!((r.share_at(Hertz::from_ghz(1.0)) - 0.75).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FrequencyResidency {
    /// Total recorded wall-clock time, picoseconds.
    pub wall_ps: f64,
    /// `Σ frequency · interval` in Hz·ps (time-weighted frequency numerator).
    pub freq_time_hz_ps: f64,
    /// `Σ Vdd · interval` in V·ps (time-weighted voltage numerator).
    pub vdd_time_v_ps: f64,
    /// Energy attributed to the domain over the recorded intervals.
    pub energy: EnergyBreakdown,
    /// Distinct operating levels visited, in first-visit order.
    levels: Vec<ResidencyLevel>,
}

impl FrequencyResidency {
    /// An empty accumulator.
    pub fn new() -> Self {
        FrequencyResidency::default()
    }

    /// Adds one control interval spent at `(frequency, vdd)` for
    /// `duration_ps` picoseconds, during which the domain consumed `energy`.
    ///
    /// Levels are matched by [`RESIDENCY_BIN_HZ`]-wide frequency bins; the
    /// time-weighted averages ([`avg_frequency_ghz`](Self::avg_frequency_ghz)
    /// etc.) are exact regardless of the binning.
    pub fn record(&mut self, frequency: Hertz, vdd: Volts, duration_ps: f64, energy: EnergyBreakdown) {
        self.wall_ps += duration_ps;
        self.freq_time_hz_ps += frequency.as_hz() * duration_ps;
        self.vdd_time_v_ps += vdd.as_volts() * duration_ps;
        self.energy += energy;
        let bin = residency_bin(frequency.as_hz());
        match self.levels.iter_mut().find(|l| residency_bin(l.frequency_hz) == bin) {
            Some(level) => {
                let total = level.wall_ps + duration_ps;
                if total > 0.0 {
                    level.vdd =
                        (level.vdd * level.wall_ps + vdd.as_volts() * duration_ps) / total;
                }
                level.wall_ps = total;
            }
            None => self.levels.push(ResidencyLevel {
                frequency_hz: frequency.as_hz(),
                vdd: vdd.as_volts(),
                wall_ps: duration_ps,
            }),
        }
    }

    /// Time-weighted average frequency in gigahertz (0 if nothing recorded).
    pub fn avg_frequency_ghz(&self) -> f64 {
        if self.wall_ps > 0.0 { self.freq_time_hz_ps / self.wall_ps / 1.0e9 } else { 0.0 }
    }

    /// Time-weighted average supply voltage in volts (0 if nothing recorded).
    pub fn avg_vdd(&self) -> f64 {
        if self.wall_ps > 0.0 { self.vdd_time_v_ps / self.wall_ps } else { 0.0 }
    }

    /// Average power over the recorded intervals, milliwatts.
    pub fn avg_power_mw(&self) -> f64 {
        if self.wall_ps > 0.0 { self.energy.total_pj() / (self.wall_ps / 1.0e3) } else { 0.0 }
    }

    /// The distinct operating levels visited ([`RESIDENCY_BIN_HZ`]-wide
    /// bins), in first-visit order.
    pub fn levels(&self) -> &[ResidencyLevel] {
        &self.levels
    }

    /// Fraction of the recorded time spent in `frequency`'s residency bin
    /// (0 if the bin was never visited or nothing was recorded).
    pub fn share_at(&self, frequency: Hertz) -> f64 {
        if self.wall_ps <= 0.0 {
            return 0.0;
        }
        let bin = residency_bin(frequency.as_hz());
        self.levels
            .iter()
            .find(|l| residency_bin(l.frequency_hz) == bin)
            .map_or(0.0, |l| l.wall_ps / self.wall_ps)
    }
}

/// The residency-histogram bin index of a frequency.
fn residency_bin(frequency_hz: f64) -> i64 {
    (frequency_hz / RESIDENCY_BIN_HZ).round() as i64
}

/// Degraded-mode summary of a faulted run: what the network still delivered
/// and what the faults cost, relative to a fault-free reference run of the
/// same workload.
///
/// Built by the experiment layer (e.g.
/// `noc_dvfs::degraded_mode_report`) from two operating points; the power
/// crate only defines the report shape and its derived scalars so that
/// figure/report code can consume it next to [`PowerReport`] and
/// [`FrequencyResidency`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct DegradedModeReport {
    /// Fraction of source–destination pairs still connected at the end of
    /// the faulted run (1.0 = the network is whole).
    pub reachability: f64,
    /// Packets delivered by the faulted run.
    pub packets_delivered: u64,
    /// Flits dropped by fault-killed components during the faulted run.
    pub flits_dropped: u64,
    /// Average packet latency of the faulted run, NoC cycles.
    pub avg_latency_cycles: f64,
    /// Average packet latency of the fault-free reference run, NoC cycles.
    pub fault_free_latency_cycles: f64,
    /// Energy per delivered flit of the faulted run, picojoules.
    pub energy_per_flit_pj: f64,
    /// Energy per delivered flit of the fault-free reference, picojoules.
    pub fault_free_energy_per_flit_pj: f64,
}

impl DegradedModeReport {
    /// Latency inflation factor of the faulted run over the fault-free
    /// reference (1.0 when the reference latency is zero/unknown). Detours
    /// taken by adaptive routing around failed components show up here.
    pub fn latency_inflation(&self) -> f64 {
        if self.fault_free_latency_cycles > 0.0 {
            self.avg_latency_cycles / self.fault_free_latency_cycles
        } else {
            1.0
        }
    }

    /// Extra energy attributable to rerouting and congestion around faults,
    /// picojoules: the per-flit energy excess over the fault-free reference
    /// times the flits the faulted run still delivered. Clamped at zero —
    /// a faulted run that delivers less traffic can legitimately spend less
    /// total energy, which is not a rerouting cost.
    pub fn rerouting_energy_pj(&self) -> f64 {
        let excess = (self.energy_per_flit_pj - self.fault_free_energy_per_flit_pj).max(0.0);
        excess * self.packets_delivered as f64
    }

    /// Whether the run degraded at all (lost connectivity or dropped flits).
    pub fn is_degraded(&self) -> bool {
        self.reachability < 1.0 || self.flits_dropped > 0
    }
}

/// Renders a switching-activity window as a [`CongestionHeatmap`]: each
/// router's forwarded link flits per router cycle, laid out row-major over
/// the `width × height` mesh. The figures pipeline consumes it through the
/// same JSON/CSV exporters as the live telemetry heatmap
/// ([`noc_sim::NocSimulation::telemetry_heatmap`]), so post-hoc power
/// analysis and in-run observability plot identically.
///
/// # Panics
///
/// Panics if `width × height` differs from the record's router count.
pub fn activity_heatmap(
    activity: &noc_sim::NetworkActivity,
    width: usize,
    height: usize,
) -> CongestionHeatmap {
    assert_eq!(width * height, activity.routers.len(), "grid shape must match the record");
    let utilization = activity
        .routers
        .iter()
        .map(|r| if r.cycles == 0 { 0.0 } else { r.link_flits as f64 / r.cycles as f64 })
        .collect();
    CongestionHeatmap { width, height, utilization }
}

/// Renders a power report as a heatmap of per-router milliwatts — the
/// thermal-floorplan companion to [`activity_heatmap`].
///
/// # Panics
///
/// Panics if `width × height` differs from the report's router count.
pub fn power_heatmap(report: &PowerReport, width: usize, height: usize) -> CongestionHeatmap {
    assert_eq!(width * height, report.per_router_mw.len(), "grid shape must match the report");
    CongestionHeatmap { width, height, utilization: report.per_router_mw.clone() }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_add_dynamic_and_static() {
        let r = PowerReport {
            per_router_mw: vec![1.0, 2.0, 3.0],
            dynamic_mw: 4.0,
            static_mw: 2.0,
        };
        assert_eq!(r.total_mw(), 6.0);
        assert_eq!(r.peak_router_mw(), 3.0);
        assert_eq!(r.mean_router_mw(), 2.0);
    }

    #[test]
    fn empty_report_is_zero() {
        let r = PowerReport::new();
        assert_eq!(r.total_mw(), 0.0);
        assert_eq!(r.peak_router_mw(), 0.0);
        assert_eq!(r.mean_router_mw(), 0.0);
    }

    #[test]
    fn degraded_mode_report_derives_inflation_and_rerouting_energy() {
        let r = DegradedModeReport {
            reachability: 0.875,
            packets_delivered: 1_000,
            flits_dropped: 42,
            avg_latency_cycles: 30.0,
            fault_free_latency_cycles: 20.0,
            energy_per_flit_pj: 5.5,
            fault_free_energy_per_flit_pj: 5.0,
        };
        assert!((r.latency_inflation() - 1.5).abs() < 1e-12);
        assert!((r.rerouting_energy_pj() - 500.0).abs() < 1e-9);
        assert!(r.is_degraded());
        // A pristine run: no inflation reference, nothing degraded.
        let whole = DegradedModeReport {
            reachability: 1.0,
            packets_delivered: 10,
            energy_per_flit_pj: 4.0,
            fault_free_energy_per_flit_pj: 5.0,
            ..Default::default()
        };
        assert_eq!(whole.latency_inflation(), 1.0);
        assert_eq!(whole.rerouting_energy_pj(), 0.0, "cheaper-than-reference clamps to zero");
        assert!(!whole.is_degraded());
    }

    #[test]
    fn residency_tracks_time_weighted_averages_and_levels() {
        let mut r = FrequencyResidency::new();
        assert_eq!(r.avg_frequency_ghz(), 0.0);
        assert_eq!(r.avg_vdd(), 0.0);
        assert_eq!(r.avg_power_mw(), 0.0);
        let e = EnergyBreakdown { dynamic_pj: 100.0, static_pj: 50.0 };
        r.record(Hertz::from_ghz(1.0), Volts::new(0.9), 1.0e6, e);
        r.record(Hertz::from_ghz(1.0), Volts::new(0.9), 1.0e6, e);
        r.record(Hertz::from_mhz(500.0), Volts::new(0.7), 2.0e6, e);
        // 2 ns at 1 GHz + 2 ns at 0.5 GHz → 0.75 GHz average.
        assert!((r.avg_frequency_ghz() - 0.75).abs() < 1e-12);
        assert!((r.avg_vdd() - 0.8).abs() < 1e-12);
        // Repeated levels merge; order is first-visit.
        assert_eq!(r.levels().len(), 2);
        assert!((r.share_at(Hertz::from_ghz(1.0)) - 0.5).abs() < 1e-12);
        assert!((r.share_at(Hertz::from_mhz(500.0)) - 0.5).abs() < 1e-12);
        assert_eq!(r.share_at(Hertz::from_mhz(333.0)), 0.0);
        // 450 pJ over 4000 ns = 0.1125 mW.
        assert!((r.avg_power_mw() - 0.1125).abs() < 1e-12);
    }

    #[test]
    fn residency_bins_coalesce_continuous_controller_outputs() {
        // A PI controller emits a slightly different frequency every
        // interval; outputs within one 10 MHz bin must merge into a single
        // level (with a time-weighted vdd), while a clearly different
        // frequency opens a new one.
        let mut r = FrequencyResidency::new();
        let e = EnergyBreakdown::default();
        r.record(Hertz::new(600.0e6), Volts::new(0.70), 1.0e6, e);
        r.record(Hertz::new(602.0e6), Volts::new(0.72), 1.0e6, e);
        r.record(Hertz::new(598.5e6), Volts::new(0.70), 2.0e6, e);
        r.record(Hertz::new(612.0e6), Volts::new(0.74), 1.0e6, e);
        assert_eq!(r.levels().len(), 2, "600/602/598.5 MHz share a bin; 612 MHz does not");
        assert!((r.share_at(Hertz::new(601.0e6)) - 0.8).abs() < 1e-12);
        assert!((r.share_at(Hertz::new(612.0e6)) - 0.2).abs() < 1e-12);
        // Level vdd is the time-weighted mean of its merged intervals.
        let level = r.levels()[0];
        assert_eq!(level.frequency_hz, 600.0e6, "representative is first-seen");
        assert!((level.vdd - (0.70 + 0.72 + 2.0 * 0.70) / 4.0).abs() < 1e-12);
        // The exact time-weighted aggregate is unaffected by binning.
        let exact = (600.0e6 + 602.0e6 + 2.0 * 598.5e6 + 612.0e6) / 5.0 / 1.0e9;
        assert!((r.avg_frequency_ghz() - exact).abs() < 1e-12);
    }
}
