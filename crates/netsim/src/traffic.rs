//! Traffic generation: synthetic patterns, bursty sources and custom traffic
//! matrices.
//!
//! The paper evaluates the DVFS policies on five synthetic patterns
//! (uniform, tornado, bit-complement, transpose, neighbor) and on two
//! multimedia applications described by traffic matrices. This module adds
//! the standard Booksim-style extensions — hotspot concentration, the
//! shuffle and bit-reverse permutations, and a two-state Markov-modulated
//! (bursty) injection process — so that policy claims can be checked beyond
//! the paper's exact scenarios. All kinds are provided behind the
//! [`TrafficSpec`] trait.

use crate::error::ConfigError;
use crate::topology::Topology;
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt::Debug;

/// Fraction of Hotspot packets that target the hotspot node; the remainder
/// are uniform background traffic.
pub const HOTSPOT_FRACTION: f64 = 0.25;

/// The synthetic traffic patterns: the five used in Sec. V of the paper plus
/// the standard hotspot / shuffle / bit-reverse extensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TrafficPattern {
    /// Each packet goes to a destination chosen uniformly at random
    /// (excluding the source itself).
    Uniform,
    /// Each node `(x, y)` sends to `((x + ⌈k/2⌉ − 1) mod k, y)`: adversarial
    /// for ring-like dimensions.
    Tornado,
    /// Node `(x, y)` sends to `(k−1−x, k−1−y)` (bit-complement on the grid
    /// coordinates). Deterministic permutation of the non-fixed nodes.
    BitComplement,
    /// Node `(x, y)` sends to `(y, x)`; requires a square grid (validated by
    /// [`NetworkConfig`](crate::NetworkConfig)). Deterministic permutation of
    /// the off-diagonal nodes.
    Transpose,
    /// Node `(x, y)` sends to `((x+1) mod k, y)`: nearest-neighbor traffic.
    /// Deterministic permutation.
    Neighbor,
    /// With probability [`HOTSPOT_FRACTION`] a packet targets the hotspot
    /// node at the grid centre `(w/2, h/2)`; otherwise the destination is
    /// uniform random. Models the concentration that a shared memory
    /// controller or accelerator port creates.
    Hotspot,
    /// Perfect-shuffle permutation on the node index: `dst` is `src` rotated
    /// left by one bit over `log2(n)` bits. Requires a power-of-two node
    /// count (validated by [`NetworkConfig`](crate::NetworkConfig)).
    /// Deterministic permutation.
    Shuffle,
    /// Bit-reversal permutation on the node index over `log2(n)` bits.
    /// Requires a power-of-two node count (validated by
    /// [`NetworkConfig`](crate::NetworkConfig)). Deterministic permutation.
    BitReverse,
}

impl TrafficPattern {
    /// All supported patterns: the paper's five plus the extensions.
    pub const ALL: [TrafficPattern; 8] = [
        TrafficPattern::Uniform,
        TrafficPattern::Tornado,
        TrafficPattern::BitComplement,
        TrafficPattern::Transpose,
        TrafficPattern::Neighbor,
        TrafficPattern::Hotspot,
        TrafficPattern::Shuffle,
        TrafficPattern::BitReverse,
    ];

    /// The five patterns evaluated in the paper's figures.
    pub const PAPER: [TrafficPattern; 5] = [
        TrafficPattern::Uniform,
        TrafficPattern::Tornado,
        TrafficPattern::BitComplement,
        TrafficPattern::Transpose,
        TrafficPattern::Neighbor,
    ];

    /// A short lowercase name (matches the labels used in the paper figures).
    pub fn name(self) -> &'static str {
        match self {
            TrafficPattern::Uniform => "uniform",
            TrafficPattern::Tornado => "tornado",
            TrafficPattern::BitComplement => "bitcomp",
            TrafficPattern::Transpose => "transpose",
            TrafficPattern::Neighbor => "neighbor",
            TrafficPattern::Hotspot => "hotspot",
            TrafficPattern::Shuffle => "shuffle",
            TrafficPattern::BitReverse => "bitrev",
        }
    }

    /// Whether the pattern is a deterministic function of the source (no RNG
    /// involved in destination choice).
    pub fn is_deterministic(self) -> bool {
        !matches!(self, TrafficPattern::Uniform | TrafficPattern::Hotspot)
    }

    /// Checks that this pattern is well-defined on `topo`.
    ///
    /// # Errors
    ///
    /// * [`ConfigError::PatternNeedsSquare`] — [`Transpose`](Self::Transpose)
    ///   on a non-square grid;
    /// * [`ConfigError::PatternNeedsPowerOfTwoNodes`] —
    ///   [`Shuffle`](Self::Shuffle) or [`BitReverse`](Self::BitReverse) on a
    ///   node count that is not a power of two.
    pub fn validate_for(self, topo: &Topology) -> Result<(), ConfigError> {
        match self {
            TrafficPattern::Transpose if topo.width() != topo.height() => {
                Err(ConfigError::PatternNeedsSquare {
                    pattern: self.name(),
                    width: topo.width(),
                    height: topo.height(),
                })
            }
            TrafficPattern::Shuffle | TrafficPattern::BitReverse
                if !topo.node_count().is_power_of_two() =>
            {
                Err(ConfigError::PatternNeedsPowerOfTwoNodes {
                    pattern: self.name(),
                    nodes: topo.node_count(),
                })
            }
            _ => Ok(()),
        }
    }

    /// Destination node for a packet generated at `src`.
    ///
    /// Returns `None` when the pattern maps the source onto itself (such
    /// nodes simply do not inject, as in the reference simulator) or when the
    /// pattern is not defined on `topo` (rejected up front by
    /// [`validate_for`](Self::validate_for)).
    pub fn destination(self, src: usize, topo: &Topology, rng: &mut StdRng) -> Option<usize> {
        let (x, y) = topo.coords(src);
        let w = topo.width();
        let h = topo.height();
        let dst = match self {
            TrafficPattern::Uniform => uniform_excluding(src, topo.node_count(), rng)?,
            TrafficPattern::Tornado => {
                let dx = (x + w.div_ceil(2) - 1) % w;
                let dy = (y + h.div_ceil(2) - 1) % h;
                topo.node_at(dx, dy)
            }
            TrafficPattern::BitComplement => topo.node_at(w - 1 - x, h - 1 - y),
            TrafficPattern::Transpose => {
                if x < h && y < w {
                    topo.node_at(y, x)
                } else {
                    return None;
                }
            }
            TrafficPattern::Neighbor => topo.node_at((x + 1) % w, y),
            TrafficPattern::Hotspot => {
                let hotspot = topo.node_at(w / 2, h / 2);
                if src != hotspot && rng.gen_bool(HOTSPOT_FRACTION) {
                    hotspot
                } else {
                    uniform_excluding(src, topo.node_count(), rng)?
                }
            }
            TrafficPattern::Shuffle => {
                let n = topo.node_count();
                if !n.is_power_of_two() {
                    return None;
                }
                let bits = n.trailing_zeros();
                ((src << 1) | (src >> (bits - 1) as usize)) & (n - 1)
            }
            TrafficPattern::BitReverse => {
                let n = topo.node_count();
                if !n.is_power_of_two() {
                    return None;
                }
                let bits = n.trailing_zeros();
                src.reverse_bits() >> (usize::BITS - bits) as usize
            }
        };
        if dst == src {
            None
        } else {
            Some(dst)
        }
    }
}

/// Uniform destination in `0..n` excluding `src` (rejection-free).
fn uniform_excluding(src: usize, n: usize, rng: &mut StdRng) -> Option<usize> {
    if n <= 1 {
        return None;
    }
    let mut d = rng.gen_range(0..n - 1);
    if d >= src {
        d += 1;
    }
    Some(d)
}

/// A source of traffic: decides, once per node-clock cycle and per node,
/// whether to generate a packet and where it should go.
pub trait TrafficSpec: Debug + Send {
    /// Number of flits in every generated packet.
    fn packet_length(&self) -> usize;

    /// Average offered load in flits per node-clock cycle per node
    /// (used for reporting and by rate-based controllers in open-loop tests).
    fn offered_load(&self) -> f64;

    /// Possibly generates a packet at `src` for the absolute node-clock cycle
    /// `node_cycle` (the same clock [`silent_node_cycles`](Self::silent_node_cycles)
    /// speaks about: cycle 0 is the first node cycle of the run).
    ///
    /// The simulation sweeps nodes in ascending order and, within one node,
    /// cycles in ascending order — the RNG draw order every engine preserves.
    /// Memoryless sources ignore `node_cycle`; recorders log it and replay
    /// sources match against it.
    ///
    /// Returns the destination node if a packet is generated.
    fn maybe_generate(
        &mut self,
        src: usize,
        node_cycle: u64,
        topo: &Topology,
        rng: &mut StdRng,
    ) -> Option<usize>;

    /// Number of consecutive node cycles, starting at the absolute node cycle
    /// `from_node_cycle`, for which [`maybe_generate`](Self::maybe_generate)
    /// is guaranteed to return `None` **and** draw nothing from the RNG, for
    /// every node.
    ///
    /// This is the traffic side of the event-horizon skipping contract: the
    /// simulation may replace the per-node `maybe_generate` calls of a node
    /// cycle inside this span with one [`skip_node_cycles`](Self::skip_node_cycles)
    /// call. Returning `0` (the default) declares the source never provably
    /// silent and disables generation skipping; `u64::MAX` means silent
    /// forever. Implementations must be conservative — claiming silence for a
    /// cycle that would have drawn or generated breaks bit-identity with the
    /// non-skipping engine.
    fn silent_node_cycles(&self, from_node_cycle: u64) -> u64 {
        let _ = from_node_cycle;
        0
    }

    /// Informs the source that `node_cycles` node cycles it declared silent
    /// via [`silent_node_cycles`](Self::silent_node_cycles) elapsed without
    /// per-node `maybe_generate` calls. Stateful sources advance their
    /// internal position here; memoryless sources need no action (default).
    fn skip_node_cycles(&mut self, node_cycles: u64) {
        let _ = node_cycles;
    }

    /// Appends any *mutable* traffic state to `out` for a simulation
    /// checkpoint. Memoryless sources (everything derived from configuration)
    /// write nothing — the default. Stateful sources (e.g. the per-node
    /// ON/OFF chains of [`BurstyTraffic`]) must write every bit their future
    /// draws depend on; the RNG itself is owned and checkpointed by the
    /// simulation.
    fn save_extra_state(&self, out: &mut Vec<u8>) {
        let _ = out;
    }

    /// Restores the state captured by
    /// [`save_extra_state`](Self::save_extra_state). Returns `false` when the
    /// bytes are not a valid encoding for this source (the restore is then
    /// rejected as corrupt). The default accepts only the empty blob written
    /// by the default `save_extra_state`.
    fn load_extra_state(&mut self, bytes: &[u8]) -> bool {
        bytes.is_empty()
    }
}

/// Bernoulli packet injection following one of the synthetic
/// [`TrafficPattern`]s.
///
/// With injection rate `λ_node` (flits per node cycle) and packets of `S`
/// flits, a packet is generated with probability `λ_node / S` per node cycle,
/// which yields an average flit rate of `λ_node`.
#[derive(Debug, Clone)]
pub struct SyntheticTraffic {
    pattern: TrafficPattern,
    injection_rate: f64,
    packet_length: usize,
    /// Cached `min(rate / length, 1)` — drawn against once per node per node
    /// cycle, so the division must not be repaid on every call.
    packet_probability: f64,
}

impl SyntheticTraffic {
    /// Creates a synthetic source.
    ///
    /// # Panics
    ///
    /// Panics if `injection_rate` is negative/not finite or `packet_length`
    /// is zero.
    pub fn new(pattern: TrafficPattern, injection_rate: f64, packet_length: usize) -> Self {
        assert!(injection_rate.is_finite() && injection_rate >= 0.0);
        assert!(packet_length > 0);
        let packet_probability = (injection_rate / packet_length as f64).min(1.0);
        SyntheticTraffic { pattern, injection_rate, packet_length, packet_probability }
    }

    /// The pattern followed by this source.
    pub fn pattern(&self) -> TrafficPattern {
        self.pattern
    }

    /// The configured injection rate in flits per node cycle.
    pub fn injection_rate(&self) -> f64 {
        self.injection_rate
    }
}

impl TrafficSpec for SyntheticTraffic {
    fn packet_length(&self) -> usize {
        self.packet_length
    }

    fn offered_load(&self) -> f64 {
        self.injection_rate
    }

    fn maybe_generate(
        &mut self,
        src: usize,
        _node_cycle: u64,
        topo: &Topology,
        rng: &mut StdRng,
    ) -> Option<usize> {
        // A zero-rate source draws nothing: the draw could never succeed, and
        // skipping it keeps the RNG stream identical whether the engine steps
        // through the cycle or jumps over it (see `silent_node_cycles`).
        if self.packet_probability <= 0.0 {
            return None;
        }
        if rng.gen_bool(self.packet_probability) {
            self.pattern.destination(src, topo, rng)
        } else {
            None
        }
    }

    fn silent_node_cycles(&self, _from_node_cycle: u64) -> u64 {
        if self.packet_probability <= 0.0 {
            u64::MAX
        } else {
            0
        }
    }
}

/// Two-state Markov-modulated (ON/OFF bursty) packet injection.
///
/// Each node carries an independent ON/OFF state evolving once per node
/// cycle: from ON it falls back to OFF with probability `1 / avg_burst`
/// (bursts last `avg_burst` cycles on average, geometrically distributed),
/// and from OFF it ignites with the probability that makes the stationary ON
/// share equal `injection_rate / burst_rate`. While ON the node injects
/// Bernoulli packets at the peak rate `burst_rate = burst_factor ×
/// injection_rate`; while OFF it is silent. The long-run average rate
/// therefore matches a Bernoulli source of the same `injection_rate`, but
/// arrivals cluster — the workload that exposes how quickly a DVFS controller
/// tracks load swings. All nodes start OFF, so runs need the usual warm-up.
#[derive(Debug, Clone)]
pub struct BurstyTraffic {
    pattern: TrafficPattern,
    injection_rate: f64,
    packet_length: usize,
    burst_rate: f64,
    /// Cached `min(burst_rate / length, 1)` — the ON-state per-cycle draw
    /// probability (see [`SyntheticTraffic::packet_probability`]).
    burst_probability: f64,
    p_on_to_off: f64,
    p_off_to_on: f64,
    on: Vec<bool>,
}

impl BurstyTraffic {
    /// Creates a bursty source.
    ///
    /// `injection_rate` is the long-run average in flits per node cycle,
    /// `avg_burst_cycles` the mean ON duration, and `burst_factor` the
    /// peak-to-average ratio (the ON-state rate is clamped so that at most
    /// one packet starts per node cycle).
    ///
    /// # Panics
    ///
    /// Panics if `injection_rate` is negative/not finite, `packet_length` is
    /// zero, `avg_burst_cycles < 1`, or `burst_factor <= 1`.
    pub fn new(
        pattern: TrafficPattern,
        injection_rate: f64,
        packet_length: usize,
        avg_burst_cycles: f64,
        burst_factor: f64,
    ) -> Self {
        assert!(injection_rate.is_finite() && injection_rate >= 0.0);
        assert!(packet_length > 0);
        assert!(avg_burst_cycles >= 1.0, "bursts must last at least one cycle on average");
        assert!(burst_factor > 1.0, "burst factor must exceed 1 (use SyntheticTraffic otherwise)");
        let burst_rate = (injection_rate * burst_factor).min(packet_length as f64);
        let duty = if burst_rate > 0.0 { injection_rate / burst_rate } else { 0.0 };
        let p_on_to_off = 1.0 / avg_burst_cycles;
        let (p_on_to_off, p_off_to_on) = if duty >= 1.0 {
            // Degenerate: the peak rate equals the average (burst_rate was
            // clamped down to it), so the source is permanently ON.
            (0.0, 1.0)
        } else {
            let raw = duty * p_on_to_off / (1.0 - duty);
            if raw > 1.0 {
                // The requested burst length is unachievable at this duty
                // cycle (OFF gaps would need to end faster than one cycle).
                // Scale both transition probabilities by the same factor:
                // the stationary ON share — and therefore the documented
                // long-run average rate — stays exact, and bursts simply run
                // proportionally longer than requested.
                (p_on_to_off / raw, 1.0)
            } else {
                (p_on_to_off, raw)
            }
        };
        BurstyTraffic {
            pattern,
            injection_rate,
            packet_length,
            burst_rate,
            burst_probability: (burst_rate / packet_length as f64).min(1.0),
            p_on_to_off,
            p_off_to_on,
            on: Vec::new(),
        }
    }

    /// The pattern followed by this source.
    pub fn pattern(&self) -> TrafficPattern {
        self.pattern
    }

    /// Peak injection rate while a node is in the ON state.
    pub fn burst_rate(&self) -> f64 {
        self.burst_rate
    }
}

impl TrafficSpec for BurstyTraffic {
    fn packet_length(&self) -> usize {
        self.packet_length
    }

    fn offered_load(&self) -> f64 {
        self.injection_rate
    }

    fn maybe_generate(
        &mut self,
        src: usize,
        _node_cycle: u64,
        topo: &Topology,
        rng: &mut StdRng,
    ) -> Option<usize> {
        if self.injection_rate <= 0.0 {
            return None;
        }
        if self.on.len() <= src {
            self.on.resize(src + 1, false);
        }
        // Advance the per-node Markov chain, then draw in the current state.
        let flip = if self.on[src] {
            rng.gen_bool(self.p_on_to_off)
        } else {
            rng.gen_bool(self.p_off_to_on)
        };
        if flip {
            self.on[src] = !self.on[src];
        }
        if !self.on[src] {
            return None;
        }
        if rng.gen_bool(self.burst_probability) {
            self.pattern.destination(src, topo, rng)
        } else {
            None
        }
    }

    fn silent_node_cycles(&self, _from_node_cycle: u64) -> u64 {
        // The Markov chains advance (and draw) every node cycle whenever the
        // rate is positive, so only the degenerate zero-rate source — which
        // early-outs before touching the RNG — is ever provably silent.
        if self.injection_rate <= 0.0 {
            u64::MAX
        } else {
            0
        }
    }

    fn save_extra_state(&self, out: &mut Vec<u8>) {
        // The per-node ON/OFF chain states are the source's only mutable
        // state (the vector grows lazily, so its length is part of it).
        out.extend_from_slice(&(self.on.len() as u64).to_le_bytes());
        out.extend(self.on.iter().map(|&b| u8::from(b)));
    }

    fn load_extra_state(&mut self, bytes: &[u8]) -> bool {
        if bytes.len() < 8 {
            return false;
        }
        let (len_bytes, rest) = bytes.split_at(8);
        let n = u64::from_le_bytes(len_bytes.try_into().expect("8-byte slice")) as usize;
        if rest.len() != n || rest.iter().any(|&b| b > 1) {
            return false;
        }
        self.on.clear();
        self.on.extend(rest.iter().map(|&b| b != 0));
        true
    }
}

/// Traffic described by a full source→destination rate matrix, used for the
/// multimedia applications of Sec. VI.
///
/// `rates[src][dst]` is the average number of flits per node-clock cycle that
/// `src` sends to `dst`.
#[derive(Debug, Clone)]
pub struct MatrixTraffic {
    rates: Vec<Vec<f64>>,
    row_totals: Vec<f64>,
    /// Cached per-row `min(total / length, 1)` draw probabilities (see
    /// [`SyntheticTraffic::packet_probability`]).
    row_probabilities: Vec<f64>,
    packet_length: usize,
}

impl MatrixTraffic {
    /// Creates a matrix source.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square-by-row (every row must have the
    /// same length as the number of rows), any rate is negative or not
    /// finite, or `packet_length` is zero.
    pub fn new(rates: Vec<Vec<f64>>, packet_length: usize) -> Self {
        assert!(packet_length > 0, "packet length must be positive");
        let n = rates.len();
        for row in &rates {
            assert_eq!(row.len(), n, "traffic matrix must be square");
            for &r in row {
                assert!(r.is_finite() && r >= 0.0, "rates must be non-negative and finite");
            }
        }
        let row_totals: Vec<f64> = rates.iter().map(|row| row.iter().sum()).collect();
        let row_probabilities = row_totals
            .iter()
            .map(|&total| (total / packet_length as f64).min(1.0))
            .collect();
        MatrixTraffic { rates, row_totals, row_probabilities, packet_length }
    }

    /// Number of nodes covered by the matrix.
    pub fn node_count(&self) -> usize {
        self.rates.len()
    }

    /// The rate from `src` to `dst` in flits per node cycle.
    pub fn rate(&self, src: usize, dst: usize) -> f64 {
        self.rates[src][dst]
    }

    /// Total flits per node cycle injected by `src`.
    pub fn row_total(&self, src: usize) -> f64 {
        self.row_totals[src]
    }

    /// Returns a copy of this matrix with every rate multiplied by `factor`
    /// (used to sweep the application speed).
    pub fn scaled(&self, factor: f64) -> MatrixTraffic {
        assert!(factor.is_finite() && factor >= 0.0, "scale factor must be non-negative");
        let rates = self
            .rates
            .iter()
            .map(|row| row.iter().map(|r| r * factor).collect())
            .collect();
        MatrixTraffic::new(rates, self.packet_length)
    }
}

impl TrafficSpec for MatrixTraffic {
    fn packet_length(&self) -> usize {
        self.packet_length
    }

    fn offered_load(&self) -> f64 {
        if self.rates.is_empty() {
            return 0.0;
        }
        self.row_totals.iter().sum::<f64>() / self.rates.len() as f64
    }

    fn maybe_generate(
        &mut self,
        src: usize,
        _node_cycle: u64,
        _topo: &Topology,
        rng: &mut StdRng,
    ) -> Option<usize> {
        if src >= self.rates.len() {
            return None;
        }
        let total = self.row_totals[src];
        if total <= 0.0 {
            return None;
        }
        if !rng.gen_bool(self.row_probabilities[src]) {
            return None;
        }
        // Choose the destination proportionally to its rate.
        let mut pick = rng.gen_range(0.0..total);
        for (dst, &r) in self.rates[src].iter().enumerate() {
            if r <= 0.0 {
                continue;
            }
            if pick < r {
                return if dst == src { None } else { Some(dst) };
            }
            pick -= r;
        }
        None
    }

    fn silent_node_cycles(&self, _from_node_cycle: u64) -> u64 {
        // Each node with a non-zero row draws once per node cycle; only an
        // all-zero matrix is provably silent.
        if self.row_totals.iter().all(|&t| t <= 0.0) {
            u64::MAX
        } else {
            0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Mesh2d;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn uniform_never_sends_to_self_and_covers_all_nodes() {
        let mesh = Mesh2d::new(4, 4);
        let mut r = rng();
        let mut seen = [false; 16];
        for _ in 0..2000 {
            let dst = TrafficPattern::Uniform.destination(5, &mesh, &mut r).unwrap();
            assert_ne!(dst, 5);
            seen[dst] = true;
        }
        assert_eq!(seen.iter().filter(|&&s| s).count(), 15);
    }

    #[test]
    fn tornado_is_deterministic_and_wraps() {
        let mesh = Mesh2d::new(4, 4);
        let mut r = rng();
        // k = 4 => shift = k/2 - 1 = 1 in both dimensions.
        let dst = TrafficPattern::Tornado.destination(mesh.node_at(0, 0), &mesh, &mut r).unwrap();
        assert_eq!(dst, mesh.node_at(1, 1));
        let dst = TrafficPattern::Tornado.destination(mesh.node_at(3, 3), &mesh, &mut r).unwrap();
        assert_eq!(dst, mesh.node_at(0, 0));
    }

    #[test]
    fn bit_complement_mirrors_coordinates() {
        let mesh = Mesh2d::new(5, 5);
        let mut r = rng();
        let dst = TrafficPattern::BitComplement
            .destination(mesh.node_at(0, 0), &mesh, &mut r)
            .unwrap();
        assert_eq!(dst, mesh.node_at(4, 4));
        // The centre of an odd mesh maps onto itself and therefore does not inject.
        assert_eq!(
            TrafficPattern::BitComplement.destination(mesh.node_at(2, 2), &mesh, &mut r),
            None
        );
    }

    #[test]
    fn transpose_swaps_coordinates() {
        let mesh = Mesh2d::new(5, 5);
        let mut r = rng();
        let dst =
            TrafficPattern::Transpose.destination(mesh.node_at(1, 3), &mesh, &mut r).unwrap();
        assert_eq!(dst, mesh.node_at(3, 1));
        assert_eq!(TrafficPattern::Transpose.destination(mesh.node_at(2, 2), &mesh, &mut r), None);
    }

    #[test]
    fn neighbor_sends_one_hop_east_with_wraparound() {
        let mesh = Mesh2d::new(4, 4);
        let mut r = rng();
        let dst = TrafficPattern::Neighbor.destination(mesh.node_at(3, 2), &mesh, &mut r).unwrap();
        assert_eq!(dst, mesh.node_at(0, 2));
    }

    #[test]
    fn hotspot_concentrates_on_the_centre_node() {
        let mesh = Mesh2d::new(4, 4);
        let hotspot = mesh.node_at(2, 2);
        let mut r = rng();
        let mut to_hotspot = 0usize;
        let trials = 20_000;
        for _ in 0..trials {
            let dst = TrafficPattern::Hotspot.destination(0, &mesh, &mut r).unwrap();
            assert_ne!(dst, 0);
            if dst == hotspot {
                to_hotspot += 1;
            }
        }
        let share = to_hotspot as f64 / trials as f64;
        // 25% direct hotspot picks plus the uniform background's 1/15.
        let expected = HOTSPOT_FRACTION + (1.0 - HOTSPOT_FRACTION) / 15.0;
        assert!((share - expected).abs() < 0.02, "hotspot share {share}, expected {expected}");
        // The hotspot node itself falls back to uniform traffic.
        for _ in 0..200 {
            let dst = TrafficPattern::Hotspot.destination(hotspot, &mesh, &mut r).unwrap();
            assert_ne!(dst, hotspot);
        }
    }

    #[test]
    fn shuffle_rotates_the_node_index_bits() {
        let mesh = Mesh2d::new(4, 4); // 16 nodes, 4 bits
        let mut r = rng();
        assert_eq!(TrafficPattern::Shuffle.destination(0b0011, &mesh, &mut r), Some(0b0110));
        assert_eq!(TrafficPattern::Shuffle.destination(0b1000, &mesh, &mut r), Some(0b0001));
        // Fixed points (0 and 15) do not inject.
        assert_eq!(TrafficPattern::Shuffle.destination(0b0000, &mesh, &mut r), None);
        assert_eq!(TrafficPattern::Shuffle.destination(0b1111, &mesh, &mut r), None);
    }

    #[test]
    fn bit_reverse_mirrors_the_node_index_bits() {
        let mesh = Mesh2d::new(4, 4); // 16 nodes, 4 bits
        let mut r = rng();
        assert_eq!(TrafficPattern::BitReverse.destination(0b0001, &mesh, &mut r), Some(0b1000));
        assert_eq!(TrafficPattern::BitReverse.destination(0b0011, &mesh, &mut r), Some(0b1100));
        assert_eq!(TrafficPattern::BitReverse.destination(0b0110, &mesh, &mut r), None);
    }

    #[test]
    fn pattern_validation_rejects_undefined_combinations() {
        let square = Mesh2d::new(4, 4);
        let tall = Mesh2d::new(4, 3);
        assert!(TrafficPattern::Transpose.validate_for(&square).is_ok());
        assert!(matches!(
            TrafficPattern::Transpose.validate_for(&tall),
            Err(ConfigError::PatternNeedsSquare { pattern: "transpose", width: 4, height: 3 })
        ));
        let five = Mesh2d::new(5, 5);
        assert!(TrafficPattern::Shuffle.validate_for(&square).is_ok());
        assert!(matches!(
            TrafficPattern::Shuffle.validate_for(&five),
            Err(ConfigError::PatternNeedsPowerOfTwoNodes { pattern: "shuffle", nodes: 25 })
        ));
        assert!(matches!(
            TrafficPattern::BitReverse.validate_for(&five),
            Err(ConfigError::PatternNeedsPowerOfTwoNodes { pattern: "bitrev", nodes: 25 })
        ));
        for p in TrafficPattern::PAPER {
            if p != TrafficPattern::Transpose {
                assert!(p.validate_for(&tall).is_ok(), "{} should accept 4x3", p.name());
            }
        }
    }

    #[test]
    fn synthetic_rate_matches_configuration() {
        let mesh = Mesh2d::new(4, 4);
        let mut traffic = SyntheticTraffic::new(TrafficPattern::Uniform, 0.3, 5);
        let mut r = rng();
        let trials = 200_000;
        let mut packets = 0;
        for _ in 0..trials {
            if traffic.maybe_generate(0, 0, &mesh, &mut r).is_some() {
                packets += 1;
            }
        }
        let measured_flit_rate = packets as f64 * 5.0 / trials as f64;
        assert!(
            (measured_flit_rate - 0.3).abs() < 0.01,
            "measured {measured_flit_rate}, expected 0.3"
        );
    }

    #[test]
    fn bursty_long_run_rate_matches_configuration() {
        let mesh = Mesh2d::new(4, 4);
        let mut traffic = BurstyTraffic::new(TrafficPattern::Uniform, 0.2, 5, 50.0, 4.0);
        let mut r = rng();
        let trials = 400_000;
        let mut packets = 0;
        for _ in 0..trials {
            if traffic.maybe_generate(0, 0, &mesh, &mut r).is_some() {
                packets += 1;
            }
        }
        let measured_flit_rate = packets as f64 * 5.0 / trials as f64;
        assert!(
            (measured_flit_rate - 0.2).abs() < 0.02,
            "measured {measured_flit_rate}, expected 0.2"
        );
        assert!((traffic.offered_load() - 0.2).abs() < 1e-12);
        assert!((traffic.burst_rate() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn bursty_arrivals_cluster_more_than_bernoulli() {
        // Compare the per-window variance of packet counts at equal average
        // rate: the MMP source must be burstier.
        let mesh = Mesh2d::new(4, 4);
        let mut bursty = BurstyTraffic::new(TrafficPattern::Uniform, 0.2, 5, 100.0, 4.0);
        let mut bernoulli = SyntheticTraffic::new(TrafficPattern::Uniform, 0.2, 5);
        let mut r1 = rng();
        let mut r2 = StdRng::seed_from_u64(43);
        let window = 200;
        let windows = 400;
        let variance = |counts: &[f64]| {
            let mean = counts.iter().sum::<f64>() / counts.len() as f64;
            counts.iter().map(|c| (c - mean) * (c - mean)).sum::<f64>() / counts.len() as f64
        };
        let mut bursty_counts = Vec::new();
        let mut bernoulli_counts = Vec::new();
        for _ in 0..windows {
            let mut a = 0.0;
            let mut b = 0.0;
            for _ in 0..window {
                if bursty.maybe_generate(0, 0, &mesh, &mut r1).is_some() {
                    a += 1.0;
                }
                if bernoulli.maybe_generate(0, 0, &mesh, &mut r2).is_some() {
                    b += 1.0;
                }
            }
            bursty_counts.push(a);
            bernoulli_counts.push(b);
        }
        assert!(
            variance(&bursty_counts) > 2.0 * variance(&bernoulli_counts),
            "bursty variance {} should clearly exceed bernoulli variance {}",
            variance(&bursty_counts),
            variance(&bernoulli_counts)
        );
    }

    #[test]
    fn bursty_rate_guarantee_survives_extreme_parameterizations() {
        // High duty cycle + short bursts: the naive off->on probability
        // exceeds 1 and must be renormalized, not clamped — the long-run
        // rate is the contract, burst length is best-effort.
        let mesh = Mesh2d::new(4, 4);
        let mut traffic = BurstyTraffic::new(TrafficPattern::Uniform, 0.3, 5, 2.0, 1.1);
        let mut r = rng();
        let trials = 400_000;
        let mut packets = 0;
        for _ in 0..trials {
            if traffic.maybe_generate(0, 0, &mesh, &mut r).is_some() {
                packets += 1;
            }
        }
        let measured_flit_rate = packets as f64 * 5.0 / trials as f64;
        assert!(
            (measured_flit_rate - 0.3).abs() < 0.02,
            "measured {measured_flit_rate}, expected 0.3"
        );
    }

    #[test]
    fn bursty_zero_rate_generates_nothing() {
        let mesh = Mesh2d::new(4, 4);
        let mut traffic = BurstyTraffic::new(TrafficPattern::Uniform, 0.0, 5, 10.0, 3.0);
        let mut r = rng();
        for _ in 0..5_000 {
            assert_eq!(traffic.maybe_generate(3, 0, &mesh, &mut r), None);
        }
    }

    #[test]
    fn pattern_names_are_stable() {
        assert_eq!(TrafficPattern::Uniform.name(), "uniform");
        assert_eq!(TrafficPattern::BitComplement.name(), "bitcomp");
        assert_eq!(TrafficPattern::Hotspot.name(), "hotspot");
        assert_eq!(TrafficPattern::Shuffle.name(), "shuffle");
        assert_eq!(TrafficPattern::BitReverse.name(), "bitrev");
        assert_eq!(TrafficPattern::ALL.len(), 8);
        assert_eq!(TrafficPattern::PAPER.len(), 5);
    }

    #[test]
    fn matrix_traffic_respects_row_rates() {
        // Node 0 sends twice as much to node 2 as to node 1.
        let rates = vec![
            vec![0.0, 0.1, 0.2, 0.0],
            vec![0.0; 4],
            vec![0.0; 4],
            vec![0.0; 4],
        ];
        let mut traffic = MatrixTraffic::new(rates, 2);
        let mesh = Mesh2d::new(2, 2);
        let mut r = rng();
        let mut to1 = 0;
        let mut to2 = 0;
        for _ in 0..100_000 {
            match traffic.maybe_generate(0, 0, &mesh, &mut r) {
                Some(1) => to1 += 1,
                Some(2) => to2 += 1,
                Some(other) => panic!("unexpected destination {other}"),
                None => {}
            }
        }
        let ratio = to2 as f64 / to1 as f64;
        assert!((ratio - 2.0).abs() < 0.2, "destination mix should follow the rates, got {ratio}");
        // Node 1 never sends.
        for _ in 0..1000 {
            assert_eq!(traffic.maybe_generate(1, 0, &mesh, &mut r), None);
        }
    }

    #[test]
    fn matrix_scaling_multiplies_offered_load() {
        let rates = vec![vec![0.0, 0.1], vec![0.1, 0.0]];
        let m = MatrixTraffic::new(rates, 4);
        let m2 = m.scaled(2.0);
        assert!((m2.offered_load() - 2.0 * m.offered_load()).abs() < 1e-12);
        assert!((m2.rate(0, 1) - 0.2).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "square")]
    fn matrix_must_be_square() {
        let _ = MatrixTraffic::new(vec![vec![0.0, 0.1], vec![0.0]], 4);
    }

    #[test]
    fn offered_load_averages_rows() {
        let rates = vec![vec![0.0, 0.4], vec![0.0, 0.0]];
        let m = MatrixTraffic::new(rates, 4);
        assert!((m.offered_load() - 0.2).abs() < 1e-12);
        assert!((m.row_total(0) - 0.4).abs() < 1e-12);
        assert_eq!(m.node_count(), 2);
    }
}
