//! 2D mesh topology and port algebra.
//!
//! Every router has five ports: the four mesh directions plus a local port
//! that connects to the injecting/ejecting node. The paper's experiments use
//! 4×4, 5×5 and 8×8 meshes.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Number of ports on a mesh router (North, East, South, West, Local).
pub const PORT_COUNT: usize = 5;

/// One of the five router ports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// Towards decreasing y.
    North,
    /// Towards increasing x.
    East,
    /// Towards increasing y.
    South,
    /// Towards decreasing x.
    West,
    /// The local injection/ejection port.
    Local,
}

impl Direction {
    /// All directions, in port-index order.
    pub const ALL: [Direction; PORT_COUNT] =
        [Direction::North, Direction::East, Direction::South, Direction::West, Direction::Local];

    /// The port index (0–4) used to address router data structures.
    pub fn index(self) -> usize {
        match self {
            Direction::North => 0,
            Direction::East => 1,
            Direction::South => 2,
            Direction::West => 3,
            Direction::Local => 4,
        }
    }

    /// The direction obtained by looking back along this one
    /// (the port a flit arrives on at the downstream router).
    ///
    /// # Panics
    ///
    /// Panics when called on [`Direction::Local`], which has no opposite.
    pub fn opposite(self) -> Direction {
        match self {
            Direction::North => Direction::South,
            Direction::East => Direction::West,
            Direction::South => Direction::North,
            Direction::West => Direction::East,
            Direction::Local => panic!("the local port has no opposite direction"),
        }
    }

    /// Converts a port index back into a direction.
    ///
    /// # Panics
    ///
    /// Panics if `index >= PORT_COUNT`.
    pub fn from_index(index: usize) -> Direction {
        Direction::ALL[index]
    }
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Direction::North => "N",
            Direction::East => "E",
            Direction::South => "S",
            Direction::West => "W",
            Direction::Local => "L",
        };
        f.write_str(s)
    }
}

/// A `width × height` 2D mesh.
///
/// Nodes are numbered row-major: node `id = y * width + x`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Mesh2d {
    width: usize,
    height: usize,
}

impl Mesh2d {
    /// Creates a mesh.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is below 2 (use
    /// [`NetworkConfig`](crate::NetworkConfig) for validated construction).
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width >= 2 && height >= 2, "mesh must be at least 2x2");
        Mesh2d { width, height }
    }

    /// Mesh width (columns).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Mesh height (rows).
    pub fn height(&self) -> usize {
        self.height
    }

    /// Total number of nodes.
    pub fn node_count(&self) -> usize {
        self.width * self.height
    }

    /// Cartesian coordinates `(x, y)` of a node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn coords(&self, node: usize) -> (usize, usize) {
        assert!(node < self.node_count(), "node index out of range");
        (node % self.width, node / self.width)
    }

    /// Node index at coordinates `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are outside the mesh.
    pub fn node_at(&self, x: usize, y: usize) -> usize {
        assert!(x < self.width && y < self.height, "coordinates out of range");
        y * self.width + x
    }

    /// The neighbouring node in direction `dir`, if it exists (meshes have no
    /// wrap-around links).
    pub fn neighbor(&self, node: usize, dir: Direction) -> Option<usize> {
        let (x, y) = self.coords(node);
        match dir {
            Direction::North => (y > 0).then(|| self.node_at(x, y - 1)),
            Direction::South => (y + 1 < self.height).then(|| self.node_at(x, y + 1)),
            Direction::East => (x + 1 < self.width).then(|| self.node_at(x + 1, y)),
            Direction::West => (x > 0).then(|| self.node_at(x - 1, y)),
            Direction::Local => None,
        }
    }

    /// Minimal hop distance between two nodes (Manhattan distance).
    pub fn hop_distance(&self, a: usize, b: usize) -> usize {
        let (ax, ay) = self.coords(a);
        let (bx, by) = self.coords(b);
        ax.abs_diff(bx) + ay.abs_diff(by)
    }

    /// Iterates over every directed inter-router link as
    /// `(from_node, direction, to_node)`.
    pub fn links(&self) -> Vec<(usize, Direction, usize)> {
        let mut out = Vec::new();
        for node in 0..self.node_count() {
            for dir in
                [Direction::North, Direction::East, Direction::South, Direction::West].iter()
            {
                if let Some(n) = self.neighbor(node, *dir) {
                    out.push((node, *dir, n));
                }
            }
        }
        out
    }
}

impl fmt::Display for Mesh2d {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{} mesh", self.width, self.height)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coordinates_round_trip() {
        let m = Mesh2d::new(5, 4);
        for node in 0..m.node_count() {
            let (x, y) = m.coords(node);
            assert_eq!(m.node_at(x, y), node);
        }
    }

    #[test]
    fn corner_neighbors() {
        let m = Mesh2d::new(3, 3);
        // Node 0 is the top-left corner (x=0, y=0).
        assert_eq!(m.neighbor(0, Direction::North), None);
        assert_eq!(m.neighbor(0, Direction::West), None);
        assert_eq!(m.neighbor(0, Direction::East), Some(1));
        assert_eq!(m.neighbor(0, Direction::South), Some(3));
        // Node 8 is the bottom-right corner.
        assert_eq!(m.neighbor(8, Direction::South), None);
        assert_eq!(m.neighbor(8, Direction::East), None);
        assert_eq!(m.neighbor(8, Direction::North), Some(5));
        assert_eq!(m.neighbor(8, Direction::West), Some(7));
    }

    #[test]
    fn local_port_has_no_neighbor() {
        let m = Mesh2d::new(4, 4);
        for node in 0..m.node_count() {
            assert_eq!(m.neighbor(node, Direction::Local), None);
        }
    }

    #[test]
    fn hop_distance_is_manhattan() {
        let m = Mesh2d::new(5, 5);
        assert_eq!(m.hop_distance(0, 24), 8);
        assert_eq!(m.hop_distance(12, 12), 0);
        assert_eq!(m.hop_distance(0, 4), 4);
        assert_eq!(m.hop_distance(m.node_at(1, 1), m.node_at(3, 4)), 5);
    }

    #[test]
    fn link_count_matches_formula() {
        // A k x k mesh has 2*k*(k-1) bidirectional links = 4*k*(k-1) directed.
        let m = Mesh2d::new(5, 5);
        assert_eq!(m.links().len(), 4 * 5 * 4);
        let m = Mesh2d::new(4, 4);
        assert_eq!(m.links().len(), 4 * 4 * 3);
    }

    #[test]
    fn opposite_directions_pair_up() {
        assert_eq!(Direction::North.opposite(), Direction::South);
        assert_eq!(Direction::South.opposite(), Direction::North);
        assert_eq!(Direction::East.opposite(), Direction::West);
        assert_eq!(Direction::West.opposite(), Direction::East);
    }

    #[test]
    #[should_panic(expected = "no opposite")]
    fn local_opposite_panics() {
        let _ = Direction::Local.opposite();
    }

    #[test]
    fn direction_index_round_trip() {
        for dir in Direction::ALL {
            assert_eq!(Direction::from_index(dir.index()), dir);
        }
    }

    #[test]
    fn links_connect_adjacent_nodes_only() {
        let m = Mesh2d::new(4, 3);
        for (from, _dir, to) in m.links() {
            assert_eq!(m.hop_distance(from, to), 1);
        }
    }

    #[test]
    #[should_panic(expected = "at least 2x2")]
    fn degenerate_mesh_panics() {
        let _ = Mesh2d::new(1, 8);
    }
}
