//! A multi-tenant 16×16 fabric: the published encoders co-located with
//! random-DAG tenants, per-tenant QoS, and deterministic trace replay.
//!
//! ```text
//! cargo run --release --example multi_tenant
//! ```
//!
//! Three demonstrations:
//!
//! 1. **Composition.** Eight application task graphs — the paper's H.264
//!    encoder (4×4) and Video Conference Encoder (5×5) plus six seeded
//!    random DAGs with Pareto-distributed rates — are tiled onto one
//!    16×16 fabric with a [`TenantMap`] attributing every counted event
//!    to its tenant.
//! 2. **Per-tenant QoS.** One measurement reports, per tenant, latency /
//!    throughput / energy — and the additive ledger fields sum *exactly*
//!    (`u64`-equal) to the global window, so no flit is lost or double
//!    counted across tenants.
//! 3. **Record / replay.** The same composed run is recorded into a
//!    chunked on-disk trace and replayed on a fresh simulation with a
//!    different seed: the window ledger replays bit for bit.
//!
//! [`TenantMap`]: noc_dvfs_repro::sim::TenantMap

use noc_dvfs_repro::apps::{h264_encoder, random_task_graph, video_conference_encoder, DagConfig};
use noc_dvfs_repro::dvfs::{compose_tenants, run_tenants, MappingPolicy, TenantWorkload};
use noc_dvfs_repro::sim::trace::{RecordingTraffic, TraceTraffic, TraceWriter};
use noc_dvfs_repro::sim::{NetworkConfig, NocSimulation};
use std::sync::{Arc, Mutex};

fn main() {
    // --- 1. Compose eight tenants onto one 16x16 fabric. -----------------
    let mut workloads = vec![
        TenantWorkload::new(h264_encoder()),
        TenantWorkload::new(video_conference_encoder()),
    ];
    for t in 0..6u64 {
        let graph = random_task_graph(
            format!("dag{t}"),
            &DagConfig::new(10, 4, 4, 2015 + t),
        )
        .expect("valid generator config");
        workloads.push(TenantWorkload::new(graph));
    }
    let names: Vec<String> =
        workloads.iter().map(|w| w.graph.name().to_string()).collect();

    let net = NetworkConfig::builder()
        .mesh(16, 16)
        .virtual_channels(2)
        .buffer_depth(4)
        .packet_length(5)
        .build()
        .expect("valid configuration");
    let comp = compose_tenants(16, 16, &workloads, &MappingPolicy::Tiled, 5, 0.2)
        .expect("eight tiles fit a 16x16 fabric");
    println!("composed {} tenants onto a 16x16 fabric:", comp.map.tenant_count());
    for (t, (name, &(x, y))) in names.iter().zip(comp.offsets.iter()).enumerate() {
        let (w, h) = workloads[t].tile_size();
        println!("  tenant {t} ({name:>6}): {w}x{h} tile at ({x:2}, {y:2})");
    }
    println!(
        "  background slot: {} nodes outside every tile\n",
        comp.map.node_counts()[comp.map.tenant_count()]
    );

    // --- 2. Per-tenant QoS over one measurement. --------------------------
    let report = run_tenants(&net, &comp, 2_000, 10_000, 7);
    println!("per-tenant QoS over {} NoC cycles:", report.global.noc_cycles);
    println!(
        "  {:<10} {:>5} {:>10} {:>10} {:>12} {:>12}",
        "tenant", "nodes", "generated", "ejected", "latency cyc", "energy nJ"
    );
    for q in &report.slots {
        let label = match q.tenant {
            Some(t) => names[t as usize].clone(),
            None => "background".to_string(),
        };
        println!(
            "  {:<10} {:>5} {:>10} {:>10} {:>12} {:>12.3}",
            label,
            q.nodes,
            q.window.flits_generated,
            q.window.flits_ejected,
            q.window
                .avg_latency_cycles()
                .map_or_else(|| "-".to_string(), |l| format!("{l:.2}")),
            q.energy.total_pj() / 1e3,
        );
    }

    // The conservation contract: additive fields sum exactly.
    let gen: u64 = report.slots.iter().map(|q| q.window.flits_generated).sum();
    let ej: u64 = report.slots.iter().map(|q| q.window.flits_ejected).sum();
    let energy: f64 = report.slots.iter().map(|q| q.energy.total_pj()).sum();
    assert_eq!(gen, report.global.flits_generated);
    assert_eq!(ej, report.global.flits_ejected);
    assert!((energy - report.energy.total_pj()).abs() < 1e-9);
    println!(
        "\nconservation: {} generated / {} ejected flits across slots == global window exactly",
        gen, ej
    );

    // --- 3. Record the composed run, replay it bit for bit. --------------
    let dir = std::env::temp_dir().join(format!("multi-tenant-trace-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let writer = Arc::new(Mutex::new(
        TraceWriter::create(&dir, net.packet_length(), net.node_count(), 4096)
            .expect("trace directory is writable"),
    ));
    let recording = RecordingTraffic::new(Box::new(comp.traffic.clone()), Arc::clone(&writer))
        .with_tenants(&comp.map);
    let mut record_sim = NocSimulation::new(net.clone(), Box::new(recording), 7);
    record_sim.run_cycles(5_000);
    let recorded = record_sim.take_window();
    let summary = writer.lock().expect("no panics hold the writer").finish().expect("trace flushes");
    println!(
        "\nrecorded {} injections into {} chunks; replaying with a different seed...",
        summary.events, summary.chunks
    );

    let replay = TraceTraffic::open(&dir).expect("finished traces open");
    let mut replay_sim = NocSimulation::new(net, Box::new(replay), 999_999);
    replay_sim.run_cycles(5_000);
    let replayed = replay_sim.take_window();
    assert_eq!(replayed, recorded, "replay must reproduce the window bit for bit");
    println!(
        "replay == record: {} flits ejected, latency sum {} cycles — bit-identical",
        replayed.flits_ejected, replayed.latency_cycles_sum
    );
    let _ = std::fs::remove_dir_all(&dir);
}
