//! Error types for the simulator.

use crate::topology::Direction;
use std::error::Error;
use std::fmt;

/// An invalid [`NetworkConfig`](crate::NetworkConfig) was requested.
///
/// Returned by [`NetworkConfigBuilder::build`](crate::NetworkConfigBuilder::build)
/// when the requested parameters cannot describe a functioning network.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// The mesh must have at least 2 nodes in each dimension.
    MeshTooSmall {
        /// Requested width.
        width: usize,
        /// Requested height.
        height: usize,
    },
    /// At least one virtual channel per port is required.
    NoVirtualChannels,
    /// Each virtual channel needs at least one buffer slot.
    NoBufferSlots,
    /// Packets must carry at least one flit.
    EmptyPacket,
    /// The maximum frequency must not be below the minimum frequency.
    InvalidFrequencyRange {
        /// Minimum frequency in Hz.
        min_hz: f64,
        /// Maximum frequency in Hz.
        max_hz: f64,
    },
    /// A torus needs at least two virtual channels per port so that the
    /// dateline deadlock-avoidance scheme has two VC classes to work with.
    TorusNeedsVcClasses {
        /// The requested number of virtual channels.
        virtual_channels: usize,
    },
    /// The traffic pattern is only defined on square grids.
    PatternNeedsSquare {
        /// Short name of the offending pattern.
        pattern: &'static str,
        /// Requested width.
        width: usize,
        /// Requested height.
        height: usize,
    },
    /// The traffic pattern is a bit permutation and needs a power-of-two node
    /// count.
    PatternNeedsPowerOfTwoNodes {
        /// Short name of the offending pattern.
        pattern: &'static str,
        /// The requested node count.
        nodes: usize,
    },
    /// A custom voltage-frequency island map must assign every node exactly
    /// once.
    RegionMapWrongLength {
        /// Node count of the grid.
        expected: usize,
        /// Length of the supplied assignment vector.
        got: usize,
    },
    /// Island ids of a custom region map must be contiguous from zero (every
    /// id below the maximum assigned id must own at least one node).
    RegionIdsNotContiguous {
        /// Number of islands implied by the largest assigned id.
        island_count: usize,
        /// The smallest id that owns no node.
        missing: u32,
    },
    /// A per-island gating override names an island the region partition
    /// does not have.
    GatingIslandOutOfRange {
        /// The island id named by the override.
        island: usize,
        /// Number of islands in the region partition.
        island_count: usize,
    },
    /// A scheduled fault targets a node beyond the grid.
    FaultNodeOutOfRange {
        /// The node named by the fault.
        node: usize,
        /// Number of nodes in the grid.
        nodes: usize,
    },
    /// A scheduled link fault names a link the topology does not have
    /// (a local "link", or an off-grid direction on a mesh).
    FaultLinkMissing {
        /// The endpoint named by the fault.
        node: usize,
        /// The missing direction.
        dir: Direction,
    },
    /// Transient faults must last at least one cycle.
    ZeroFaultDuration,
    /// Hazard probabilities must lie in `[0, 1]`.
    FaultRateOutOfRange {
        /// The offending rate.
        rate: f64,
    },
    /// Minimal-adaptive routing needs at least two virtual channels per port
    /// so that the escape VC class (dimension-ordered, deadlock-free) and
    /// the adaptive class are disjoint.
    AdaptiveNeedsVcClasses {
        /// The requested number of virtual channels.
        virtual_channels: usize,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::MeshTooSmall { width, height } => {
                write!(f, "mesh of {width}x{height} is too small, need at least 2x2")
            }
            ConfigError::NoVirtualChannels => write!(f, "at least one virtual channel is required"),
            ConfigError::NoBufferSlots => {
                write!(f, "each virtual channel needs at least one buffer slot")
            }
            ConfigError::EmptyPacket => write!(f, "packets must carry at least one flit"),
            ConfigError::InvalidFrequencyRange { min_hz, max_hz } => {
                write!(f, "invalid frequency range: min {min_hz} Hz exceeds max {max_hz} Hz")
            }
            ConfigError::TorusNeedsVcClasses { virtual_channels } => write!(
                f,
                "a torus needs at least 2 virtual channels for dateline deadlock \
                 avoidance, got {virtual_channels}"
            ),
            ConfigError::PatternNeedsSquare { pattern, width, height } => write!(
                f,
                "traffic pattern '{pattern}' is only defined on square grids, got {width}x{height}"
            ),
            ConfigError::PatternNeedsPowerOfTwoNodes { pattern, nodes } => write!(
                f,
                "traffic pattern '{pattern}' needs a power-of-two node count, got {nodes} nodes"
            ),
            ConfigError::RegionMapWrongLength { expected, got } => write!(
                f,
                "region map must assign all {expected} nodes, got {got} assignments"
            ),
            ConfigError::RegionIdsNotContiguous { island_count, missing } => write!(
                f,
                "region map island ids must be contiguous from 0: {island_count} islands \
                 implied but island {missing} owns no node"
            ),
            ConfigError::GatingIslandOutOfRange { island, island_count } => write!(
                f,
                "gating override names island {island} but the region partition has only \
                 {island_count} island(s)"
            ),
            ConfigError::FaultNodeOutOfRange { node, nodes } => {
                write!(f, "fault targets node {node} but the grid has only {nodes} nodes")
            }
            ConfigError::FaultLinkMissing { node, dir } => {
                write!(f, "fault targets the {dir} link of node {node}, which does not exist")
            }
            ConfigError::ZeroFaultDuration => {
                write!(f, "transient faults must last at least one cycle")
            }
            ConfigError::FaultRateOutOfRange { rate } => {
                write!(f, "fault hazard rate {rate} is outside [0, 1]")
            }
            ConfigError::AdaptiveNeedsVcClasses { virtual_channels } => write!(
                f,
                "minimal-adaptive routing needs at least 2 virtual channels for its escape \
                 class, got {virtual_channels}"
            ),
        }
    }
}

impl Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = ConfigError::MeshTooSmall { width: 1, height: 5 };
        let msg = e.to_string();
        assert!(msg.contains("1x5"));
        assert!(msg.starts_with(char::is_lowercase));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ConfigError>();
    }

    #[test]
    fn pattern_and_torus_messages_name_the_culprit() {
        let e = ConfigError::PatternNeedsSquare { pattern: "transpose", width: 5, height: 4 };
        assert!(e.to_string().contains("transpose"));
        assert!(e.to_string().contains("5x4"));
        let e = ConfigError::PatternNeedsPowerOfTwoNodes { pattern: "shuffle", nodes: 25 };
        assert!(e.to_string().contains("shuffle"));
        assert!(e.to_string().contains("25"));
        let e = ConfigError::TorusNeedsVcClasses { virtual_channels: 1 };
        assert!(e.to_string().contains("dateline"));
    }

    #[test]
    fn frequency_range_message_mentions_both_ends() {
        let e = ConfigError::InvalidFrequencyRange { min_hz: 2.0e9, max_hz: 1.0e9 };
        let msg = e.to_string();
        assert!(msg.contains("2000000000"));
        assert!(msg.contains("1000000000"));
    }
}
