//! # noc-power — 28-nm FDSOI technology and activity-driven power model
//!
//! This crate replaces the paper's synthesis/transistor-level flow
//! (Synopsys Design Compiler + Eldo + activity-driven power estimation on a
//! 28-nm FDSOI library) with an analytic model that preserves the two things
//! the paper actually consumes:
//!
//! 1. the **frequency ↔ voltage relationship** of the router's critical path
//!    (Fig. 5 of the paper), provided by [`FdsoiTech`], and
//! 2. the conversion of simulated **switching activity** into milliwatts at a
//!    given `(frequency, Vdd)` operating point, provided by
//!    [`RouterPowerModel`].
//!
//! The absolute calibration targets the published numbers: the no-DVFS 5×5
//! mesh spans roughly 60 mW (idle) to 230 mW (0.4 flits/cycle/node, Fig. 6).
//! All policy comparisons in the paper are *ratios*, which survive any
//! activity-proportional model with a `V²·f` dynamic term and a
//! voltage-dependent static term — see `DESIGN.md` for the substitution
//! argument.
//!
//! ## Example
//!
//! ```
//! use noc_power::{FdsoiTech, RouterPowerModel};
//! use noc_sim::{Hertz, RouterActivity};
//!
//! # fn main() {
//! let tech = FdsoiTech::new();
//! let f = Hertz::from_mhz(600.0);
//! let vdd = tech.vdd_for_frequency(f);
//! assert!(vdd.as_volts() > 0.56 && vdd.as_volts() < 0.9);
//!
//! let model = RouterPowerModel::new();
//! let mut activity = RouterActivity::new();
//! activity.buffer_writes = 1_000;
//! activity.buffer_reads = 1_000;
//! activity.crossbar_traversals = 1_000;
//! activity.link_flits = 1_000;
//! activity.cycles = 10_000;
//! let window_ps = 10_000.0 / f.as_hz() * 1e12;
//! let power = model.router_power_mw(&activity, f, vdd, window_ps);
//! assert!(power > 0.0);
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod gating;
pub mod model;
pub mod report;
pub mod tech;

pub use gating::{GatingResidency, IslandGatingStats, RouterGatingStats};
pub use model::{PowerParams, RouterPowerModel};
pub use report::{
    activity_heatmap, power_heatmap, DegradedModeReport, FrequencyResidency, PowerReport,
    ResidencyLevel, RESIDENCY_BIN_HZ,
};
pub use tech::{FdsoiTech, OperatingPoint, Volts};
