//! Synthetic-traffic sweep: regenerate a reduced version of Figs. 2, 4 and 6.
//!
//! ```text
//! cargo run --release --example synthetic_sweep [pattern]
//! ```
//!
//! `pattern` is one of `uniform` (default), `tornado`, `bitcomp`,
//! `transpose`, `neighbor`. The example sweeps the injection rate from 10 %
//! to 90 % of the measured saturation rate, runs all three policies at every
//! point and prints the latency, delay, power and frequency curves — the same
//! series the paper plots against the injection rate.

use noc_dvfs_repro::dvfs::experiments::{compare_policies_synthetic, ExperimentQuality};
use noc_dvfs_repro::sim::{NetworkConfig, TrafficPattern};
use std::env;

fn main() {
    let pattern_name = env::args().nth(1).unwrap_or_else(|| "uniform".to_string());
    let pattern = match pattern_name.as_str() {
        "uniform" => TrafficPattern::Uniform,
        "tornado" => TrafficPattern::Tornado,
        "bitcomp" => TrafficPattern::BitComplement,
        "transpose" => TrafficPattern::Transpose,
        "neighbor" => TrafficPattern::Neighbor,
        other => {
            eprintln!("unknown pattern '{other}'; use uniform|tornado|bitcomp|transpose|neighbor");
            std::process::exit(1);
        }
    };

    let net = NetworkConfig::paper_baseline();
    let quality = ExperimentQuality::quick();
    println!("Sweeping {} traffic on the paper-baseline 5x5 mesh…", pattern.name());
    let comparison = compare_policies_synthetic(pattern.name(), &net, pattern, &quality, None);

    println!(
        "lambda_max (90% of measured saturation) = {:.3} flits/cycle/node",
        comparison.lambda_max
    );
    println!(
        "{:>10} {:>10} {:>14} {:>12} {:>12} {:>10}",
        "policy", "rate", "latency (cyc)", "delay (ns)", "power (mW)", "freq (GHz)"
    );
    for curve in &comparison.curves {
        for point in &curve.points {
            println!(
                "{:>10} {:>10.3} {:>14.1} {:>12.1} {:>12.1} {:>10.3}",
                curve.policy,
                point.load,
                point.result.avg_latency_cycles,
                point.result.avg_delay_ns,
                point.result.power_mw,
                point.result.avg_frequency_ghz
            );
        }
    }

    // Reproduce the paper's reading of the figures: RMSD is the cheapest in
    // power but the worst in delay; DMSD sits in between on power while
    // keeping the delay close to the 150 ns target.
    if let (Some(rmsd), Some(dmsd)) = (comparison.curve("RMSD"), comparison.curve("DMSD")) {
        let mid = comparison.lambda_max * 0.5;
        let r = rmsd.nearest(mid);
        let d = dmsd.nearest(mid);
        println!();
        println!(
            "At half of lambda_max ({:.3}): RMSD = {:.0} ns / {:.0} mW, DMSD = {:.0} ns / {:.0} mW",
            mid,
            r.result.avg_delay_ns,
            r.result.power_mw,
            d.result.avg_delay_ns,
            d.result.power_mw
        );
    }
}
