//! Deterministic fault injection: transient and permanent link/router
//! failures.
//!
//! Faults come from two sources, both fully deterministic:
//!
//! - an **explicit schedule** ([`FaultEvent`]) naming the component, the
//!   failure cycle, and an optional recovery delay, and
//! - a **hazard process** ([`HazardConfig`]) that draws failures at a
//!   constant per-cycle rate from a dedicated RNG stream (seeded from the
//!   simulation seed XOR a fixed salt, so the traffic RNG's draw order — and
//!   with it every fault-free golden — is untouched).
//!
//! The runtime state machine ([`FaultState`]) resolves both sources into
//! per-node *blocked-port* masks that the simulator feeds into the same
//! fence/drain contract power gating uses: a failed router behaves like a
//! gated router that never wakes, a failed link like a permanently fenced
//! port. Component deaths and recoveries are reported as
//! [`FaultTransition`]s so the driver can purge dying routers (accounting
//! every lost flit as *dropped*, never silently) and resynchronise credits on
//! recovery.

use crate::error::ConfigError;
use crate::topology::{Direction, Topology};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Salt XORed into the simulation seed to derive the hazard RNG stream,
/// keeping fault draws independent of the traffic RNG.
pub const FAULT_RNG_SALT: u64 = 0x_FA17_FA17_FA17_FA17;

/// The component a fault hits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultTarget {
    /// The bidirectional link leaving `node` in direction `dir`. Both
    /// directed channels fail together; flits already on the wire still
    /// deliver (the failure fences the ports, it does not vaporise photons
    /// in flight).
    Link {
        /// One endpoint of the link.
        node: usize,
        /// Direction of the link as seen from `node` (not [`Direction::Local`]).
        dir: Direction,
    },
    /// The whole router at `node`: every buffered flit is dropped (with
    /// credits returned upstream), the local source is parked, and all
    /// neighbouring ports towards the node are fenced.
    Router {
        /// The failing node.
        node: usize,
    },
}

impl FaultTarget {
    /// The node the target lives at (the named endpoint, for links).
    pub fn node(&self) -> usize {
        match *self {
            FaultTarget::Link { node, .. } => node,
            FaultTarget::Router { node } => node,
        }
    }
}

/// One scheduled fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// The component that fails.
    pub target: FaultTarget,
    /// NoC cycle at which the failure strikes.
    pub at_cycle: u64,
    /// `None` for a permanent failure; `Some(d)` for a transient one that
    /// recovers `d ≥ 1` cycles later.
    pub duration: Option<u64>,
}

impl FaultEvent {
    /// A permanent failure of `target` at `at_cycle`.
    pub fn permanent(target: FaultTarget, at_cycle: u64) -> Self {
        FaultEvent { target, at_cycle, duration: None }
    }

    /// A transient failure of `target` at `at_cycle`, recovering after
    /// `duration` cycles.
    pub fn transient(target: FaultTarget, at_cycle: u64, duration: u64) -> Self {
        FaultEvent { target, at_cycle, duration: Some(duration) }
    }
}

/// Constant-rate random fault arrivals.
///
/// Every cycle the hazard stream draws whether a link and whether a router
/// fails (at most one of each per cycle — adequate for realistic rates,
/// which are many orders of magnitude below one per cycle). Victims are
/// uniform over the topology's links/routers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HazardConfig {
    /// Per-link, per-cycle failure probability.
    pub link_rate: f64,
    /// Per-router, per-cycle failure probability.
    pub router_rate: f64,
    /// Fraction of hazard failures that are transient (the rest are
    /// permanent).
    pub transient_fraction: f64,
    /// Recovery delay, in cycles, of transient hazard failures.
    pub transient_duration: u64,
}

impl HazardConfig {
    /// A hazard process where every failure is transient.
    pub fn transient(link_rate: f64, router_rate: f64, duration: u64) -> Self {
        HazardConfig {
            link_rate,
            router_rate,
            transient_fraction: 1.0,
            transient_duration: duration,
        }
    }
}

/// Fault-injection configuration: an explicit schedule, an optional hazard
/// process, or both. The default ([`FaultConfig::none`]) injects nothing and
/// keeps the whole fault machinery structurally inert.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    schedule: Vec<FaultEvent>,
    hazard: Option<HazardConfig>,
}

impl FaultConfig {
    /// No faults (the default).
    pub fn none() -> Self {
        FaultConfig::default()
    }

    /// A configuration replaying exactly the given schedule.
    pub fn scheduled(schedule: Vec<FaultEvent>) -> Self {
        FaultConfig { schedule, hazard: None }
    }

    /// Adds one scheduled event.
    pub fn with_event(mut self, event: FaultEvent) -> Self {
        self.schedule.push(event);
        self
    }

    /// Adds (or replaces) the hazard process.
    pub fn with_hazard(mut self, hazard: HazardConfig) -> Self {
        self.hazard = Some(hazard);
        self
    }

    /// Whether any fault source is configured.
    pub fn is_enabled(&self) -> bool {
        !self.schedule.is_empty() || self.hazard.is_some()
    }

    /// The explicit schedule.
    pub fn schedule(&self) -> &[FaultEvent] {
        &self.schedule
    }

    /// The hazard process, if any.
    pub fn hazard(&self) -> Option<&HazardConfig> {
        self.hazard.as_ref()
    }

    /// Checks every scheduled target against the topology and the hazard
    /// rates against `[0, 1]`.
    ///
    /// # Errors
    ///
    /// [`ConfigError::FaultNodeOutOfRange`] for a target beyond the grid,
    /// [`ConfigError::FaultLinkMissing`] for a link that does not exist
    /// (local "links", or off-grid directions on a mesh),
    /// [`ConfigError::ZeroFaultDuration`] for a transient fault with zero
    /// duration, and [`ConfigError::FaultRateOutOfRange`] for hazard
    /// probabilities outside `[0, 1]`.
    pub fn validate(&self, topo: &Topology) -> Result<(), ConfigError> {
        let nodes = topo.node_count();
        for event in &self.schedule {
            let node = event.target.node();
            if node >= nodes {
                return Err(ConfigError::FaultNodeOutOfRange { node, nodes });
            }
            if let FaultTarget::Link { node, dir } = event.target {
                if dir == Direction::Local || topo.neighbor(node, dir).is_none() {
                    return Err(ConfigError::FaultLinkMissing { node, dir });
                }
            }
            if event.duration == Some(0) {
                return Err(ConfigError::ZeroFaultDuration);
            }
        }
        if let Some(h) = &self.hazard {
            for rate in [h.link_rate, h.router_rate, h.transient_fraction] {
                if !(0.0..=1.0).contains(&rate) {
                    return Err(ConfigError::FaultRateOutOfRange { rate });
                }
            }
            if h.transient_fraction > 0.0 && h.transient_duration == 0 {
                return Err(ConfigError::ZeroFaultDuration);
            }
        }
        Ok(())
    }
}

/// A component death or recovery the driver must act on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultTransition {
    /// The link leaving `node` in `dir` went down (ports fenced on both
    /// ends; nothing to purge).
    LinkDown {
        /// Canonical owner endpoint of the link.
        node: usize,
        /// Direction from the owner ([`Direction::East`] or [`Direction::South`]).
        dir: Direction,
    },
    /// The link leaving `node` in `dir` recovered.
    LinkUp {
        /// Canonical owner endpoint of the link.
        node: usize,
        /// Direction from the owner.
        dir: Direction,
    },
    /// The router at `node` died: the driver purges its buffers and channels
    /// (counting drops, returning credits) and parks its source.
    RouterDown {
        /// The dead node.
        node: usize,
    },
    /// The router at `node` recovered: the driver resynchronises its output
    /// credits against the current state of its neighbours' input VCs.
    RouterUp {
        /// The recovered node.
        node: usize,
    },
}

/// An event waiting to be applied (scheduled fault or pending recovery).
#[derive(Debug, Clone, Copy)]
struct Pending {
    cycle: u64,
    target: FaultTarget,
    /// `Some(d)`: a transient failure recovering after `d`; `None` with
    /// `recover = false`: permanent failure; `recover = true`: a recovery.
    duration: Option<u64>,
    recover: bool,
}

/// Runtime fault state machine.
///
/// Owns the schedule cursor, the hazard RNG, per-component down-counters
/// (transient failures can overlap; a component is up again only when every
/// overlapping failure has recovered and no permanent failure hit it), and
/// the cached per-node blocked-port masks the simulator reads every cycle.
#[derive(Debug)]
pub struct FaultState {
    /// Scheduled faults and pending recoveries (small, scanned per tick).
    pending: Vec<Pending>,
    /// Earliest cycle in `pending`, for a cheap per-tick early-out.
    next_due: u64,
    hazard: Option<HazardConfig>,
    rng: StdRng,
    /// All undirected links, as `(owner, East|South)` pairs.
    links: Vec<(usize, Direction)>,
    /// Down-counter per canonical link (`node * 2 + {0: East, 1: South}`).
    link_down: Vec<u32>,
    /// Permanent-failure flag per canonical link.
    link_perm: Vec<bool>,
    /// Down-counter per router.
    router_down: Vec<u32>,
    /// Permanent-failure flag per router.
    router_perm: Vec<bool>,
    /// Cached per-node mask of output ports towards failed links/routers.
    port_block: Vec<u8>,
    /// Number of currently-down components (for the fencing fast path).
    down_components: u32,
}

impl FaultState {
    /// Builds the runtime state for `cfg` on `topo`. `seed` is the
    /// *simulation* seed; the hazard stream is derived from it with
    /// [`FAULT_RNG_SALT`] so traffic draws are unaffected.
    pub fn new(cfg: &FaultConfig, topo: &Topology, seed: u64) -> Self {
        let nodes = topo.node_count();
        let mut links = Vec::new();
        for node in 0..nodes {
            for dir in [Direction::East, Direction::South] {
                if topo.neighbor(node, dir).is_some() {
                    links.push((node, dir));
                }
            }
        }
        let mut pending: Vec<Pending> = cfg
            .schedule
            .iter()
            .map(|e| Pending {
                cycle: e.at_cycle,
                target: e.target,
                duration: e.duration,
                recover: false,
            })
            .collect();
        // Keep application order deterministic and independent of the order
        // events were listed in the config.
        pending.sort_by_key(|p| p.cycle);
        let next_due = pending.iter().map(|p| p.cycle).min().unwrap_or(u64::MAX);
        FaultState {
            pending,
            next_due,
            hazard: cfg.hazard,
            rng: StdRng::seed_from_u64(seed ^ FAULT_RNG_SALT),
            links,
            link_down: vec![0; nodes * 2],
            link_perm: vec![false; nodes * 2],
            router_down: vec![0; nodes],
            router_perm: vec![false; nodes],
            port_block: vec![0; nodes],
            down_components: 0,
        }
    }

    /// Whether any component is currently down.
    #[inline]
    pub fn any_active(&self) -> bool {
        self.down_components > 0
    }

    /// Earliest NoC cycle at which a scheduled fault or pending transient
    /// recovery is due (`u64::MAX` when nothing is pending).
    ///
    /// This is the fault schedule's contribution to the event horizon: on a
    /// cycle strictly before this bound — and with no hazard process drawing
    /// (see [`hazard_draws_per_cycle`](Self::hazard_draws_per_cycle)) —
    /// [`tick`](Self::tick) is a pure no-op, so the skipping engine may omit
    /// the call entirely without changing any fault state.
    #[inline]
    pub fn next_scheduled_due(&self) -> u64 {
        self.next_due
    }

    /// Whether the hazard process draws from its RNG stream on every tick.
    ///
    /// A hazard with any positive rate must be ticked on every single NoC
    /// cycle to keep its draw order deterministic, which makes the whole
    /// simulation ineligible for event-horizon skipping. Zero-rate hazards
    /// (and pure schedules) never touch the RNG.
    #[inline]
    pub fn hazard_draws_per_cycle(&self) -> bool {
        match self.hazard {
            Some(h) => (h.link_rate > 0.0 && !self.links.is_empty()) || h.router_rate > 0.0,
            None => false,
        }
    }

    /// Whether the router at `node` is currently dead.
    #[inline]
    pub fn router_dead(&self, node: usize) -> bool {
        self.router_perm[node] || self.router_down[node] > 0
    }

    /// Mask of `node`'s output ports that lead into a failed link or a dead
    /// neighbouring router (bit = [`Direction::index`]).
    #[inline]
    pub fn blocked_ports(&self, node: usize) -> u8 {
        self.port_block[node]
    }

    /// Whether the link leaving `node` in `dir` is currently down
    /// (equivalently for either endpoint; router deaths do not count).
    pub fn link_dead(&self, topo: &Topology, node: usize, dir: Direction) -> bool {
        match self.link_key(topo, node, dir) {
            Some(key) => self.link_perm[key] || self.link_down[key] > 0,
            None => false,
        }
    }

    /// Advances the fault process to `cycle`, applying scheduled events,
    /// pending recoveries, and hazard draws. Component deaths/recoveries are
    /// appended to `transitions` for the driver to act on. Call exactly once
    /// per NoC cycle (both simulation engines do, which keeps the hazard
    /// draw order — and therefore the fault pattern — engine-independent).
    pub fn tick(&mut self, cycle: u64, topo: &Topology, transitions: &mut Vec<FaultTransition>) {
        if self.next_due <= cycle {
            let mut i = 0;
            while i < self.pending.len() {
                if self.pending[i].cycle <= cycle {
                    let p = self.pending.remove(i);
                    if p.recover {
                        self.apply_recovery(p.target, topo, transitions);
                    } else {
                        self.apply_failure(p.target, p.duration, cycle, topo, transitions);
                    }
                } else {
                    i += 1;
                }
            }
            self.next_due = self.pending.iter().map(|p| p.cycle).min().unwrap_or(u64::MAX);
        }
        if let Some(h) = self.hazard {
            if h.link_rate > 0.0 && !self.links.is_empty() {
                let p_any = (h.link_rate * self.links.len() as f64).min(1.0);
                if self.rng.gen_bool(p_any) {
                    let idx = self.rng.gen_range(0..self.links.len());
                    let (node, dir) = self.links[idx];
                    let duration = self
                        .rng
                        .gen_bool(h.transient_fraction)
                        .then_some(h.transient_duration);
                    self.apply_failure(
                        FaultTarget::Link { node, dir },
                        duration,
                        cycle,
                        topo,
                        transitions,
                    );
                }
            }
            if h.router_rate > 0.0 {
                let p_any = (h.router_rate * topo.node_count() as f64).min(1.0);
                if self.rng.gen_bool(p_any) {
                    let node = self.rng.gen_range(0..topo.node_count());
                    let duration = self
                        .rng
                        .gen_bool(h.transient_fraction)
                        .then_some(h.transient_duration);
                    self.apply_failure(
                        FaultTarget::Router { node },
                        duration,
                        cycle,
                        topo,
                        transitions,
                    );
                }
            }
        }
    }

    /// Canonical index of the undirected link leaving `node` in `dir`
    /// (`owner * 2 + {0: East, 1: South}`), or `None` when no such link
    /// exists.
    fn link_key(&self, topo: &Topology, node: usize, dir: Direction) -> Option<usize> {
        if dir == Direction::Local {
            return None;
        }
        let neighbor = topo.neighbor(node, dir)?;
        let (owner, owner_dir) = match dir {
            Direction::East | Direction::South => (node, dir),
            _ => (neighbor, dir.opposite()),
        };
        let slot = if owner_dir == Direction::East { 0 } else { 1 };
        Some(owner * 2 + slot)
    }

    fn apply_failure(
        &mut self,
        target: FaultTarget,
        duration: Option<u64>,
        cycle: u64,
        topo: &Topology,
        transitions: &mut Vec<FaultTransition>,
    ) {
        if let Some(d) = duration {
            self.pending.push(Pending {
                cycle: cycle + d.max(1),
                target,
                duration: None,
                recover: true,
            });
            self.next_due = self.next_due.min(cycle + d.max(1));
        }
        match target {
            FaultTarget::Link { node, dir } => {
                let Some(key) = self.link_key(topo, node, dir) else { return };
                let was_down = self.link_perm[key] || self.link_down[key] > 0;
                match duration {
                    None => self.link_perm[key] = true,
                    Some(_) => self.link_down[key] += 1,
                }
                if !was_down {
                    self.down_components += 1;
                    let (owner, owner_dir) =
                        (key / 2, if key % 2 == 0 { Direction::East } else { Direction::South });
                    self.recompute_port_block(owner, topo);
                    if let Some(nbr) = topo.neighbor(owner, owner_dir) {
                        self.recompute_port_block(nbr, topo);
                    }
                    transitions.push(FaultTransition::LinkDown { node: owner, dir: owner_dir });
                }
            }
            FaultTarget::Router { node } => {
                let was_down = self.router_dead(node);
                match duration {
                    None => self.router_perm[node] = true,
                    Some(_) => self.router_down[node] += 1,
                }
                if !was_down {
                    self.down_components += 1;
                    for dir in [Direction::North, Direction::East, Direction::South, Direction::West]
                    {
                        if let Some(nbr) = topo.neighbor(node, dir) {
                            self.recompute_port_block(nbr, topo);
                        }
                    }
                    transitions.push(FaultTransition::RouterDown { node });
                }
            }
        }
    }

    fn apply_recovery(
        &mut self,
        target: FaultTarget,
        topo: &Topology,
        transitions: &mut Vec<FaultTransition>,
    ) {
        match target {
            FaultTarget::Link { node, dir } => {
                let Some(key) = self.link_key(topo, node, dir) else { return };
                debug_assert!(self.link_down[key] > 0, "recovery without matching failure");
                self.link_down[key] -= 1;
                if !self.link_perm[key] && self.link_down[key] == 0 {
                    self.down_components -= 1;
                    let (owner, owner_dir) =
                        (key / 2, if key % 2 == 0 { Direction::East } else { Direction::South });
                    self.recompute_port_block(owner, topo);
                    if let Some(nbr) = topo.neighbor(owner, owner_dir) {
                        self.recompute_port_block(nbr, topo);
                    }
                    transitions.push(FaultTransition::LinkUp { node: owner, dir: owner_dir });
                }
            }
            FaultTarget::Router { node } => {
                debug_assert!(self.router_down[node] > 0, "recovery without matching failure");
                self.router_down[node] -= 1;
                if !self.router_dead(node) {
                    self.down_components -= 1;
                    for dir in [Direction::North, Direction::East, Direction::South, Direction::West]
                    {
                        if let Some(nbr) = topo.neighbor(node, dir) {
                            self.recompute_port_block(nbr, topo);
                        }
                    }
                    self.recompute_port_block(node, topo);
                    transitions.push(FaultTransition::RouterUp { node });
                }
            }
        }
    }

    fn recompute_port_block(&mut self, node: usize, topo: &Topology) {
        let mut mask = 0u8;
        for dir in [Direction::North, Direction::East, Direction::South, Direction::West] {
            if let Some(nbr) = topo.neighbor(node, dir) {
                let link_dead = match self.link_key(topo, node, dir) {
                    Some(key) => self.link_perm[key] || self.link_down[key] > 0,
                    None => false,
                };
                if link_dead || self.router_dead(nbr) {
                    mask |= 1u8 << dir.index();
                }
            }
        }
        self.port_block[node] = mask;
    }
}

#[cfg(feature = "snapshot")]
impl FaultState {
    /// Encodes the mutable fault-process state for a checkpoint: the pending
    /// event queue (in its live order — `tick` scans it front to back, so
    /// order is behaviour), the schedule cursor, the hazard RNG stream, the
    /// per-component down-counters, and the cached port masks. The hazard
    /// parameters and link table are configuration/topology-derived and are
    /// not written.
    pub(crate) fn save_state(&self, w: &mut crate::snapshot::SnapWriter) {
        w.put_usize(self.pending.len());
        for p in &self.pending {
            w.put_u64(p.cycle);
            match p.target {
                FaultTarget::Link { node, dir } => {
                    w.put_u8(0);
                    w.put_usize(node);
                    w.put_u8(dir.index() as u8);
                }
                FaultTarget::Router { node } => {
                    w.put_u8(1);
                    w.put_usize(node);
                    w.put_u8(0);
                }
            }
            w.put_opt_u64(p.duration);
            w.put_bool(p.recover);
        }
        w.put_u64(self.next_due);
        for word in self.rng.state() {
            w.put_u64(word);
        }
        for v in &self.link_down {
            w.put_u32(*v);
        }
        for v in &self.link_perm {
            w.put_bool(*v);
        }
        for v in &self.router_down {
            w.put_u32(*v);
        }
        for v in &self.router_perm {
            w.put_bool(*v);
        }
        for v in &self.port_block {
            w.put_u8(*v);
        }
        w.put_u32(self.down_components);
    }

    /// Restores the fault-process state written by
    /// [`save_state`](Self::save_state) into a state machine built from the
    /// same configuration and topology.
    pub(crate) fn load_state(
        &mut self,
        r: &mut crate::snapshot::SnapReader<'_>,
    ) -> Result<(), crate::snapshot::SnapshotError> {
        use crate::snapshot::SnapshotError;
        let nodes = self.router_down.len();
        self.pending.clear();
        let pending_len = r.read_usize()?;
        for _ in 0..pending_len {
            let cycle = r.read_u64()?;
            let tag = r.read_u8()?;
            let node = r.read_usize()?;
            let dir_idx = r.read_u8()? as usize;
            if node >= nodes {
                return Err(SnapshotError::Corrupt("fault target node"));
            }
            let target = match tag {
                0 => {
                    if dir_idx >= crate::topology::PORT_COUNT {
                        return Err(SnapshotError::Corrupt("fault link direction"));
                    }
                    FaultTarget::Link { node, dir: Direction::from_index(dir_idx) }
                }
                1 => FaultTarget::Router { node },
                _ => return Err(SnapshotError::Corrupt("fault target kind")),
            };
            let duration = r.read_opt_u64()?;
            let recover = r.read_bool()?;
            self.pending.push(Pending { cycle, target, duration, recover });
        }
        self.next_due = r.read_u64()?;
        let mut rng_state = [0u64; 4];
        for word in &mut rng_state {
            *word = r.read_u64()?;
        }
        self.rng = StdRng::from_state(rng_state);
        for v in &mut self.link_down {
            *v = r.read_u32()?;
        }
        for v in &mut self.link_perm {
            *v = r.read_bool()?;
        }
        for v in &mut self.router_down {
            *v = r.read_u32()?;
        }
        for v in &mut self.router_perm {
            *v = r.read_bool()?;
        }
        for v in &mut self.port_block {
            *v = r.read_u8()?;
        }
        self.down_components = r.read_u32()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Mesh2d;

    fn mesh() -> Mesh2d {
        Mesh2d::new(4, 4)
    }

    #[test]
    fn empty_config_is_inert() {
        let topo = mesh();
        let cfg = FaultConfig::none();
        assert!(!cfg.is_enabled());
        assert!(cfg.validate(&topo).is_ok());
        let mut state = FaultState::new(&cfg, &topo, 42);
        let mut tr = Vec::new();
        for cycle in 0..100 {
            state.tick(cycle, &topo, &mut tr);
        }
        assert!(tr.is_empty());
        assert!(!state.any_active());
        assert!((0..16).all(|n| state.blocked_ports(n) == 0 && !state.router_dead(n)));
    }

    #[test]
    fn permanent_link_fault_fences_both_endpoints() {
        let topo = mesh();
        let cfg = FaultConfig::scheduled(vec![FaultEvent::permanent(
            FaultTarget::Link { node: 5, dir: Direction::East },
            10,
        )]);
        let mut state = FaultState::new(&cfg, &topo, 42);
        let mut tr = Vec::new();
        state.tick(9, &topo, &mut tr);
        assert!(tr.is_empty());
        state.tick(10, &topo, &mut tr);
        assert_eq!(tr, vec![FaultTransition::LinkDown { node: 5, dir: Direction::East }]);
        assert!(state.any_active());
        assert_eq!(state.blocked_ports(5), 1 << Direction::East.index());
        assert_eq!(state.blocked_ports(6), 1 << Direction::West.index());
        assert!(state.link_dead(&topo, 5, Direction::East));
        assert!(state.link_dead(&topo, 6, Direction::West), "symmetric view");
        assert!(!state.router_dead(5));
    }

    #[test]
    fn west_link_normalises_to_the_same_key_as_east() {
        let topo = mesh();
        // Killing 6→West is the same undirected link as 5→East.
        let cfg = FaultConfig::scheduled(vec![FaultEvent::permanent(
            FaultTarget::Link { node: 6, dir: Direction::West },
            0,
        )]);
        let mut state = FaultState::new(&cfg, &topo, 42);
        let mut tr = Vec::new();
        state.tick(0, &topo, &mut tr);
        assert_eq!(tr, vec![FaultTransition::LinkDown { node: 5, dir: Direction::East }]);
    }

    #[test]
    fn transient_router_fault_recovers() {
        let topo = mesh();
        let cfg = FaultConfig::scheduled(vec![FaultEvent::transient(
            FaultTarget::Router { node: 9 },
            5,
            20,
        )]);
        let mut state = FaultState::new(&cfg, &topo, 42);
        let mut tr = Vec::new();
        state.tick(5, &topo, &mut tr);
        assert_eq!(tr, vec![FaultTransition::RouterDown { node: 9 }]);
        assert!(state.router_dead(9));
        // Every neighbour's port towards node 9 is blocked.
        assert_ne!(state.blocked_ports(8) & (1 << Direction::East.index()), 0);
        assert_ne!(state.blocked_ports(10) & (1 << Direction::West.index()), 0);
        assert_ne!(state.blocked_ports(5) & (1 << Direction::South.index()), 0);
        assert_ne!(state.blocked_ports(13) & (1 << Direction::North.index()), 0);
        tr.clear();
        for cycle in 6..25 {
            state.tick(cycle, &topo, &mut tr);
            assert!(tr.is_empty(), "still down at cycle {cycle}");
        }
        state.tick(25, &topo, &mut tr);
        assert_eq!(tr, vec![FaultTransition::RouterUp { node: 9 }]);
        assert!(!state.router_dead(9));
        assert!(!state.any_active());
        assert!((0..16).all(|n| state.blocked_ports(n) == 0));
    }

    #[test]
    fn overlapping_transients_only_recover_when_all_expire() {
        let topo = mesh();
        let target = FaultTarget::Link { node: 0, dir: Direction::East };
        let cfg = FaultConfig::scheduled(vec![
            FaultEvent::transient(target, 0, 10),
            FaultEvent::transient(target, 5, 10),
        ]);
        let mut state = FaultState::new(&cfg, &topo, 1);
        let mut tr = Vec::new();
        for cycle in 0..=14 {
            state.tick(cycle, &topo, &mut tr);
        }
        // First failure expired at 10, but the second holds the link down.
        assert_eq!(tr.len(), 1, "one LinkDown, no LinkUp yet: {tr:?}");
        state.tick(15, &topo, &mut tr);
        assert_eq!(tr[1], FaultTransition::LinkUp { node: 0, dir: Direction::East });
        assert!(!state.any_active());
    }

    #[test]
    fn permanent_fault_shadows_transient_recovery() {
        let topo = mesh();
        let target = FaultTarget::Router { node: 3 };
        let cfg = FaultConfig::scheduled(vec![
            FaultEvent::transient(target, 0, 5),
            FaultEvent::permanent(target, 2),
        ]);
        let mut state = FaultState::new(&cfg, &topo, 1);
        let mut tr = Vec::new();
        for cycle in 0..50 {
            state.tick(cycle, &topo, &mut tr);
        }
        assert_eq!(tr, vec![FaultTransition::RouterDown { node: 3 }]);
        assert!(state.router_dead(3), "permanent failure never recovers");
    }

    #[test]
    fn hazard_draws_are_deterministic_and_seed_dependent() {
        let topo = mesh();
        let cfg = FaultConfig::none()
            .with_hazard(HazardConfig::transient(1e-3, 1e-3, 8));
        let run = |seed: u64| {
            let mut state = FaultState::new(&cfg, &topo, seed);
            let mut tr = Vec::new();
            for cycle in 0..5_000 {
                state.tick(cycle, &topo, &mut tr);
            }
            tr
        };
        let a = run(7);
        let b = run(7);
        assert_eq!(a, b, "same seed, same fault pattern");
        assert!(!a.is_empty(), "rates high enough to fire in 5k cycles");
        let c = run(8);
        assert_ne!(a, c, "different seed, different fault pattern");
    }

    #[test]
    fn validation_rejects_bad_targets_and_rates() {
        let topo = mesh();
        let bad_node =
            FaultConfig::scheduled(vec![FaultEvent::permanent(FaultTarget::Router { node: 16 }, 0)]);
        assert_eq!(
            bad_node.validate(&topo),
            Err(ConfigError::FaultNodeOutOfRange { node: 16, nodes: 16 })
        );
        // Node 3 is the north-east corner: no East link on a mesh.
        let bad_link = FaultConfig::scheduled(vec![FaultEvent::permanent(
            FaultTarget::Link { node: 3, dir: Direction::East },
            0,
        )]);
        assert_eq!(
            bad_link.validate(&topo),
            Err(ConfigError::FaultLinkMissing { node: 3, dir: Direction::East })
        );
        // The same link exists on a torus (wrap-around).
        let torus = crate::topology::Topology::with_kind(crate::topology::TopologyKind::Torus, 4, 4);
        assert!(bad_link.validate(&torus).is_ok());
        let local = FaultConfig::scheduled(vec![FaultEvent::permanent(
            FaultTarget::Link { node: 3, dir: Direction::Local },
            0,
        )]);
        assert!(local.validate(&topo).is_err());
        let zero = FaultConfig::scheduled(vec![FaultEvent::transient(
            FaultTarget::Router { node: 0 },
            0,
            0,
        )]);
        assert_eq!(zero.validate(&topo), Err(ConfigError::ZeroFaultDuration));
        let bad_rate = FaultConfig::none().with_hazard(HazardConfig {
            link_rate: 1.5,
            router_rate: 0.0,
            transient_fraction: 0.0,
            transient_duration: 1,
        });
        assert_eq!(bad_rate.validate(&topo), Err(ConfigError::FaultRateOutOfRange { rate: 1.5 }));
    }

    #[test]
    fn torus_wrap_links_are_distinct_canonical_links() {
        let torus =
            crate::topology::Topology::with_kind(crate::topology::TopologyKind::Torus, 4, 4);
        // On a 4x4 torus every node owns exactly an East and a South link.
        let state = FaultState::new(&FaultConfig::none(), &torus, 0);
        assert_eq!(state.links.len(), 32);
        let mesh_state = FaultState::new(&FaultConfig::none(), &mesh(), 0);
        assert_eq!(mesh_state.links.len(), 24, "4x4 mesh has 2*4*3 links");
    }
}
