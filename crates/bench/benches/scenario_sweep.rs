//! Throughput of the widened scenario engine: torus wrap routing with
//! dateline VC classes, hotspot destinations and the Markov-modulated bursty
//! injection process — the cost of everything the topology abstraction added
//! on top of the paper's mesh/Bernoulli dialect, next to that baseline.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use noc_dvfs::scenario::{compare_policies_scenario, Scenario};
use noc_dvfs::experiments::ExperimentQuality;
use noc_sim::{
    BurstyTraffic, NetworkConfig, NocSimulation, SyntheticTraffic, TopologyKind, TrafficPattern,
    TrafficSpec,
};
use std::time::Duration;

fn bench_scenario_throughput(c: &mut Criterion) {
    let cycles: u64 = 2_000;
    let mut group = c.benchmark_group("scenario_throughput");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(4))
        .warm_up_time(Duration::from_secs(1))
        .throughput(Throughput::Elements(cycles));

    let mesh = NetworkConfig::paper_baseline();
    let torus = NetworkConfig::builder().torus(5, 5).build().unwrap();
    type TrafficFactory = Box<dyn Fn(&NetworkConfig) -> Box<dyn TrafficSpec>>;
    let cases: Vec<(&str, NetworkConfig, TrafficFactory)> = vec![
        (
            "5x5_mesh_uniform_bernoulli_heavy",
            mesh,
            Box::new(|cfg: &NetworkConfig| {
                Box::new(SyntheticTraffic::new(TrafficPattern::Uniform, 0.35, cfg.packet_length()))
            }),
        ),
        (
            "5x5_torus_uniform_bernoulli_heavy",
            torus.clone(),
            Box::new(|cfg: &NetworkConfig| {
                Box::new(SyntheticTraffic::new(TrafficPattern::Uniform, 0.35, cfg.packet_length()))
            }),
        ),
        (
            "5x5_torus_hotspot_bursty_heavy",
            torus,
            Box::new(|cfg: &NetworkConfig| {
                Box::new(BurstyTraffic::new(
                    TrafficPattern::Hotspot,
                    0.35,
                    cfg.packet_length(),
                    200.0,
                    4.0,
                ))
            }),
        ),
    ];
    for (name, cfg, make_traffic) in cases {
        group.bench_function(name, |b| {
            b.iter_batched(
                || NocSimulation::new(cfg.clone(), make_traffic(&cfg), 1),
                |mut sim| {
                    sim.run_cycles(cycles);
                    sim
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

/// End-to-end wall-clock time of one quick-quality torus + hotspot + bursty
/// three-policy comparison: saturation search plus the (policy × load) sweep.
fn bench_scenario_regeneration(c: &mut Criterion) {
    let mut group = c.benchmark_group("scenario_regeneration");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(8))
        .warm_up_time(Duration::from_secs(1));
    let base = NetworkConfig::builder()
        .mesh(4, 4)
        .virtual_channels(2)
        .buffer_depth(4)
        .packet_length(5)
        .build()
        .unwrap();
    group.bench_function("torus_hotspot_bursty_quick", |b| {
        b.iter(|| {
            let scenario = Scenario::new(TopologyKind::Torus, TrafficPattern::Hotspot).bursty();
            let cmp =
                compare_policies_scenario(&base, scenario, &ExperimentQuality::quick()).unwrap();
            assert_eq!(cmp.curves.len(), 3);
            cmp
        })
    });
    group.finish();
}

criterion_group!(benches, bench_scenario_throughput, bench_scenario_regeneration);
criterion_main!(benches);
