//! Per-virtual-channel FIFO flit buffers.

use crate::flit::Flit;
use std::collections::VecDeque;

/// A bounded FIFO buffer holding the flits of one virtual channel.
///
/// The router never overflows a `VcBuffer` because credit-based flow control
/// upstream only releases flits when space is known to exist; pushing into a
/// full buffer therefore indicates a protocol bug and panics.
#[derive(Debug, Clone)]
pub struct VcBuffer {
    slots: VecDeque<Flit>,
    capacity: usize,
    peak_occupancy: usize,
}

impl VcBuffer {
    /// Creates a buffer with room for `capacity` flits.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "buffer capacity must be positive");
        VcBuffer { slots: VecDeque::with_capacity(capacity), capacity, peak_occupancy: 0 }
    }

    /// Number of flits currently stored.
    #[inline]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the buffer holds no flits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Whether the buffer is at capacity.
    pub fn is_full(&self) -> bool {
        self.slots.len() >= self.capacity
    }

    /// Total capacity in flits.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Free slots remaining.
    pub fn free_slots(&self) -> usize {
        self.capacity - self.slots.len()
    }

    /// Highest occupancy observed since construction (diagnostics).
    pub fn peak_occupancy(&self) -> usize {
        self.peak_occupancy
    }

    /// Appends a flit at the back.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is already full (credit protocol violation).
    #[inline]
    pub fn push(&mut self, flit: Flit) {
        assert!(!self.is_full(), "buffer overflow: credit protocol violated");
        self.slots.push_back(flit);
        self.peak_occupancy = self.peak_occupancy.max(self.slots.len());
    }

    /// Removes and returns the flit at the front, if any.
    #[inline]
    pub fn pop(&mut self) -> Option<Flit> {
        self.slots.pop_front()
    }

    /// Returns a reference to the flit at the front, if any.
    #[inline]
    pub fn front(&self) -> Option<&Flit> {
        self.slots.front()
    }
}

#[cfg(feature = "snapshot")]
impl VcBuffer {
    /// Encodes the buffered flits and the sticky peak-occupancy diagnostic.
    /// Capacity is configuration and is not written.
    pub(crate) fn save_state(&self, w: &mut crate::snapshot::SnapWriter) {
        w.put_usize(self.slots.len());
        for flit in &self.slots {
            flit.save_state(w);
        }
        w.put_usize(self.peak_occupancy);
    }

    /// Replaces the buffer contents with the checkpointed ones.
    pub(crate) fn load_state(
        &mut self,
        r: &mut crate::snapshot::SnapReader<'_>,
    ) -> Result<(), crate::snapshot::SnapshotError> {
        use crate::snapshot::SnapshotError;
        let n = r.read_usize()?;
        if n > self.capacity {
            return Err(SnapshotError::Corrupt("VC buffer over capacity"));
        }
        self.slots.clear();
        for _ in 0..n {
            self.slots.push_back(Flit::load_state(r)?);
        }
        let peak = r.read_usize()?;
        if peak > self.capacity {
            return Err(SnapshotError::Corrupt("VC buffer peak occupancy"));
        }
        self.peak_occupancy = peak;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flit::{Flit, PacketId};

    fn flit(i: usize) -> Flit {
        Flit::new(PacketId::new(i as u64), 0, 1, 0, 1, 0, 0.0)
    }

    #[test]
    fn fifo_order_is_preserved() {
        let mut buf = VcBuffer::new(4);
        for i in 0..4 {
            buf.push(flit(i));
        }
        for i in 0..4 {
            assert_eq!(buf.pop().unwrap().packet_id, PacketId::new(i as u64));
        }
        assert!(buf.is_empty());
    }

    #[test]
    fn occupancy_accounting() {
        let mut buf = VcBuffer::new(3);
        assert_eq!(buf.free_slots(), 3);
        buf.push(flit(0));
        buf.push(flit(1));
        assert_eq!(buf.len(), 2);
        assert_eq!(buf.free_slots(), 1);
        assert!(!buf.is_full());
        buf.push(flit(2));
        assert!(buf.is_full());
        assert_eq!(buf.peak_occupancy(), 3);
        buf.pop();
        assert_eq!(buf.peak_occupancy(), 3, "peak is sticky");
    }

    #[test]
    #[should_panic(expected = "buffer overflow")]
    fn overflow_panics() {
        let mut buf = VcBuffer::new(1);
        buf.push(flit(0));
        buf.push(flit(1));
    }

    #[test]
    fn front_does_not_consume() {
        let mut buf = VcBuffer::new(2);
        buf.push(flit(7));
        assert_eq!(buf.front().unwrap().packet_id, PacketId::new(7));
        assert_eq!(buf.len(), 1);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = VcBuffer::new(0);
    }
}
