#!/usr/bin/env bash
# The full local CI gate: release build, the complete test suite, and clippy
# with warnings promoted to errors. Run before every push.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

# The property suites (tests/{routing,traffic,simulator,policy}_properties.rs)
# run as part of the workspace test pass below. Their inputs are sampled from
# per-case fixed seeds (see the proptest shim), so runs are reproducible;
# PROPTEST_CASES pins the case budget explicitly so local and CI runs cover
# the same corpus.
echo "==> cargo test -q (property suites at PROPTEST_CASES=${PROPTEST_CASES:-64}, fixed seeds)"
PROPTEST_CASES="${PROPTEST_CASES:-64}" cargo test -q

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "CI gate passed."
