//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! cargo run --release -p noc-bench --bin figures -- [--quality quick|standard|full] [--fig all|2|4|5|6|7|8|10|summary]
//! ```
//!
//! The output is a set of plain-text tables, one per figure, with the same
//! series the paper plots (latency in cycles, delay in ns, power in mW,
//! frequency in GHz against injection rate or application speed). Paste the
//! relevant numbers into `EXPERIMENTS.md` to record a reproduction run.

use noc_bench::{render_comparison, render_fig5, render_summary};
use noc_dvfs::experiments::{
    fig10_multimedia, fig2_rmsd_vs_nodvfs, fig4_fig6_baseline_comparison, fig5_frequency_vs_vdd,
    fig7_synthetic_patterns, fig8_sensitivity, ExperimentQuality,
};
use std::env;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    let mut quality_name = "standard".to_string();
    let mut figure = "all".to_string();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quality" if i + 1 < args.len() => {
                quality_name = args[i + 1].clone();
                i += 2;
            }
            "--fig" if i + 1 < args.len() => {
                figure = args[i + 1].clone();
                i += 2;
            }
            "--help" | "-h" => {
                print_usage();
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument: {other}");
                print_usage();
                return ExitCode::FAILURE;
            }
        }
    }

    let quality = match quality_name.as_str() {
        "quick" => ExperimentQuality::quick(),
        "standard" => ExperimentQuality::standard(),
        "full" => ExperimentQuality::full(),
        other => {
            eprintln!("unknown quality '{other}' (expected quick, standard or full)");
            return ExitCode::FAILURE;
        }
    };

    println!("# DATE 2015 'Rate-based vs Delay-based Control for DVFS in NoC' — reproduction run");
    println!("# quality = {quality_name}, seed = {}", quality.seed);
    println!();

    let all = figure == "all";
    if all || figure == "2" {
        println!("# Fig. 2 — RMSD vs No-DVFS, uniform 5x5 (latency and delay vs injection rate)");
        println!("{}", render_comparison(&fig2_rmsd_vs_nodvfs(&quality)));
    }
    if all || figure == "4" || figure == "6" || figure == "summary" {
        println!("# Figs. 4 & 6 — No-DVFS vs RMSD vs DMSD, uniform 5x5 (frequency, delay, power)");
        let cmp = fig4_fig6_baseline_comparison(&quality);
        println!("{}", render_comparison(&cmp));
        // The paper quotes its headline ratios at a 0.2 injection rate.
        if let Some(summary) = render_summary(&cmp, 0.2) {
            println!("{summary}");
        }
    }
    if all || figure == "5" {
        println!("{}", render_fig5(&fig5_frequency_vs_vdd(12)));
    }
    if all || figure == "7" {
        println!("# Fig. 7 — synthetic patterns (delay and power vs injection rate)");
        for cmp in fig7_synthetic_patterns(&quality) {
            println!("{}", render_comparison(&cmp));
            if let Some(summary) = render_summary(&cmp, 0.2) {
                println!("{summary}");
            }
        }
    }
    if all || figure == "8" {
        println!("# Fig. 8 — sensitivity analysis under uniform traffic");
        for cmp in fig8_sensitivity(&quality, None) {
            println!("{}", render_comparison(&cmp));
        }
    }
    if all || figure == "10" {
        println!("# Fig. 10 — multimedia applications (delay and power vs app speed)");
        for cmp in fig10_multimedia(&quality) {
            println!("{}", render_comparison(&cmp));
        }
    }
    ExitCode::SUCCESS
}

fn print_usage() {
    eprintln!(
        "usage: figures [--quality quick|standard|full] [--fig all|2|4|5|6|7|8|10|summary]"
    );
}
