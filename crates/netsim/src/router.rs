//! The input-queued virtual-channel router.
//!
//! Each router implements the canonical four-stage VC router pipeline:
//!
//! 1. **RC** — route computation for head flits,
//! 2. **VA** — virtual-channel allocation (separable, input-first),
//! 3. **SA** — switch allocation (separable, input-first),
//! 4. **ST** — switch traversal followed by link traversal.
//!
//! Flow control is credit-based: an output virtual channel may only forward a
//! flit when the downstream input buffer is known to have space. The router
//! records switching activity ([`RouterActivity`]) so that the power model can
//! convert simulated behaviour into milliwatts, mirroring the paper's
//! activity-driven power estimation flow.

use crate::activity::RouterActivity;
use crate::allocator::{AllocRequest, SeparableAllocator};
use crate::buffer::VcBuffer;
use crate::config::NetworkConfig;
use crate::flit::Flit;
use crate::routing::RoutingAlgorithm;
use crate::topology::{Topology, TopologyKind, PORT_COUNT};

/// Port index of the local (injection/ejection) port.
pub const LOCAL_PORT: usize = 4;

/// Per-virtual-channel control state on the input side.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VcState {
    /// No packet is using this VC.
    Idle,
    /// A head flit is waiting for route computation.
    Routing,
    /// The route is known; waiting for an output VC.
    VcAllocation,
    /// Output VC assigned; flits compete for the switch.
    Active,
    /// The VC received body/tail flits without a head (the packet's earlier
    /// flits died in a failed component upstream): the orphaned remainder is
    /// discarded flit by flit — with normal credit returns, so upstream flow
    /// control stays exact — until a head flit reaches the front.
    Draining,
}

#[derive(Debug)]
struct InputVc {
    state: VcState,
    buffer: VcBuffer,
    /// Output port chosen by RC (narrow on purpose: ports fit in a `u8` and
    /// the smaller `InputVc` keeps more VC state per cache line).
    out_port: Option<u8>,
    /// Downstream VC assigned by VA.
    out_vc: Option<u8>,
    /// Dateline VC class required downstream (set by RC; always 0 on a mesh).
    next_class: u8,
}

impl InputVc {
    fn new(depth: usize) -> Self {
        InputVc {
            state: VcState::Idle,
            buffer: VcBuffer::new(depth),
            out_port: None,
            out_vc: None,
            next_class: 0,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct OutputVc {
    credits: usize,
    allocated: bool,
}

/// A flit leaving the router towards a neighbouring router.
#[derive(Debug, Clone)]
pub struct OutgoingFlit {
    /// Output port (direction index) the flit leaves through.
    pub out_port: usize,
    /// The flit itself, with `vc` set to the downstream virtual channel.
    pub flit: Flit,
}

/// A credit to return upstream: the router freed one slot of input
/// port `in_port`, virtual channel `vc`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CreditReturn {
    /// Input port whose buffer slot was freed.
    pub in_port: usize,
    /// Virtual channel whose buffer slot was freed.
    pub vc: usize,
}

/// Everything produced by one switch-allocation / switch-traversal step.
///
/// The simulation driver owns one `TraversalOutput` and reuses it for every
/// router every cycle ([`clear`](Self::clear) resets the lists but keeps the
/// capacity), so the steady-state pipeline performs no heap allocation.
#[derive(Debug, Default)]
pub struct TraversalOutput {
    /// Flits sent towards neighbouring routers.
    pub outgoing: Vec<OutgoingFlit>,
    /// Credits to return to upstream routers (or to the local source).
    pub credits: Vec<CreditReturn>,
    /// Flits delivered to the local node.
    pub ejected: Vec<Flit>,
    /// Output ports with at least one buffered flit that
    /// [`sa_st_stage_fenced`](Router::sa_st_stage_fenced) held back because
    /// the port was fenced (its downstream router is power-gated, waking, or
    /// failed). The driver raises a wakeup request towards each such
    /// neighbour (a no-op for failed ones).
    pub fenced_ports: u8,
    /// Orphaned flits discarded this step by [`VcState::Draining`] input VCs
    /// (their packet's head died in a failed component upstream). The driver
    /// adds them to its dropped-flit ledger.
    pub dropped: u64,
}

impl TraversalOutput {
    /// Empties all three lists (retaining their capacity for reuse) and
    /// clears the fenced-port mask and dropped-flit count.
    pub fn clear(&mut self) {
        self.outgoing.clear();
        self.credits.clear();
        self.ejected.clear();
        self.fenced_ports = 0;
        self.dropped = 0;
    }

    /// Whether the step produced nothing.
    pub fn is_empty(&self) -> bool {
        self.outgoing.is_empty() && self.credits.is_empty() && self.ejected.is_empty()
    }
}

/// One mesh router.
///
/// # Scratch-buffer contract
///
/// The router owns persistent scratch (`requests`, plus the grant buffers
/// inside the two allocators) that is cleared and refilled inside each
/// pipeline stage. Callers provide the [`TraversalOutput`] that
/// [`sa_st_stage`](Self::sa_st_stage) appends into and are responsible for
/// clearing it between routers/cycles; the router never clears it, so one
/// buffer can also accumulate output across several routers if desired.
///
/// # Performance
///
/// Input and output VC state lives in flat `Vec`s indexed by
/// `port * vcs + vc`, and every pipeline stage walks per-port bitmasks
/// (`routing_mask`, `va_mask`, `active_mask`) instead of scanning all
/// `PORT_COUNT × vcs` VC slots, so a stage's cost is proportional to the
/// number of VCs that actually need work that cycle. At most 64 VCs per port
/// are supported (the masks are `u64`, matching the allocator's arbiter
/// limit).
#[derive(Debug)]
pub struct Router {
    node: usize,
    vcs: usize,
    /// Input VC state, flat-indexed by `port * vcs + vc`.
    inputs: Vec<InputVc>,
    /// Output VC state, flat-indexed by `port * vcs + vc`.
    outputs: Vec<OutputVc>,
    vc_allocator: SeparableAllocator,
    sw_allocator: SeparableAllocator,
    out_vc_rr: Vec<usize>,
    /// Per-port bitmask of input VCs in the `Routing` state.
    routing_mask: [u64; PORT_COUNT],
    /// Per-port bitmask of input VCs in the `VcAllocation` state.
    va_mask: [u64; PORT_COUNT],
    /// Number of VCs in the `Routing` state across all ports — lets
    /// [`rc_stage`](Self::rc_stage) return without scanning the per-port
    /// masks in the common streaming case (body flits flowing, no new head).
    routing_pending: u32,
    /// Number of VCs in the `VcAllocation` state across all ports (same role
    /// for [`va_stage`](Self::va_stage)).
    va_pending: u32,
    /// Per-port bitmask of input VCs in the `Active` state.
    active_mask: [u64; PORT_COUNT],
    /// Per-port bitmask of input VCs in the `Draining` state (orphaned
    /// packet remainders being discarded after an upstream failure).
    drain_mask: [u64; PORT_COUNT],
    /// Per-port bitmask of output VCs *not* allocated to a packet.
    free_out_mask: [u64; PORT_COUNT],
    /// Dateline VC-class masks: `class_masks[c]` is the set of output VCs a
    /// packet in class `c` may be assigned on an inter-router link. On a mesh
    /// both masks cover every VC (no restriction); on a torus class 0 owns
    /// the lower half and class 1 the upper half, which breaks the in-ring
    /// channel-dependency cycles of wrap-around routes.
    class_masks: [u64; 2],
    activity: RouterActivity,
    /// Total flits currently buffered (kept incrementally so that idle
    /// routers can skip their pipeline stages cheaply).
    buffered: usize,
    /// Scratch: allocation requests of the current VA or SA round.
    requests: Vec<AllocRequest>,
}

impl Router {
    /// Creates a router for mesh node `node` using the buffer/VC parameters
    /// of `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration asks for more than 64 virtual channels
    /// (the per-port state bitmasks are 64 bits wide).
    pub fn new(node: usize, cfg: &NetworkConfig) -> Self {
        let vcs = cfg.virtual_channels();
        assert!(vcs <= 64, "router supports at most 64 virtual channels per port");
        let depth = cfg.buffer_depth();
        let inputs = (0..PORT_COUNT * vcs).map(|_| InputVc::new(depth)).collect();
        let outputs =
            (0..PORT_COUNT * vcs).map(|_| OutputVc { credits: depth, allocated: false }).collect();
        let all_vcs_free = if vcs == 64 { u64::MAX } else { (1u64 << vcs) - 1 };
        let class_masks = match cfg.topology_kind() {
            TopologyKind::Mesh => [all_vcs_free, all_vcs_free],
            TopologyKind::Torus => {
                // Class 0 carries the bulk of the traffic (everything before
                // a dateline crossing), so it gets the larger share when the
                // VC count is odd. `NetworkConfig` guarantees vcs >= 2.
                let low = (1u64 << vcs.div_ceil(2)) - 1;
                [low, all_vcs_free & !low]
            }
        };
        Router {
            node,
            vcs,
            inputs,
            outputs,
            vc_allocator: SeparableAllocator::new(PORT_COUNT, vcs, PORT_COUNT * vcs),
            sw_allocator: SeparableAllocator::new(PORT_COUNT, vcs, PORT_COUNT),
            out_vc_rr: vec![0; PORT_COUNT],
            routing_mask: [0; PORT_COUNT],
            va_mask: [0; PORT_COUNT],
            routing_pending: 0,
            va_pending: 0,
            active_mask: [0; PORT_COUNT],
            drain_mask: [0; PORT_COUNT],
            free_out_mask: [all_vcs_free; PORT_COUNT],
            class_masks,
            activity: RouterActivity::new(),
            buffered: 0,
            requests: Vec::with_capacity(PORT_COUNT * vcs),
        }
    }

    /// The mesh node this router serves.
    pub fn node(&self) -> usize {
        self.node
    }

    /// Number of virtual channels per port.
    pub fn virtual_channels(&self) -> usize {
        self.vcs
    }

    /// Immutable view of the activity counters accumulated so far.
    pub fn activity(&self) -> &RouterActivity {
        &self.activity
    }

    /// Takes and resets the activity counters (one observation window).
    pub fn take_activity(&mut self) -> RouterActivity {
        std::mem::take(&mut self.activity)
    }

    /// Adds `cycles` elapsed cycles to the activity window.
    ///
    /// Standalone harnesses that drive the pipeline stages directly can use
    /// this to keep the `cycles` field meaningful.
    /// [`NocSimulation`](crate::NocSimulation) does **not** call it per cycle any more: the
    /// sparse core skips quiescent routers entirely, so the driver accounts
    /// elapsed cycles centrally when an activity window is taken.
    pub fn add_cycles(&mut self, cycles: u64) {
        self.activity.cycles += cycles;
    }

    /// Whether the router provably has nothing to do this cycle.
    ///
    /// Backed by the incrementally maintained in-flight buffer counter and
    /// the per-port state bitmasks: with zero buffered flits, every pipeline
    /// stage ([`rc_stage`](Self::rc_stage), [`va_stage`](Self::va_stage),
    /// [`sa_st_stage`](Self::sa_st_stage)) is a no-op, because a VC in the
    /// `Routing` or `VcAllocation` state always holds its head flit
    /// (debug-asserted here). `active_mask` *may* be non-zero on a quiescent
    /// router — a wormhole packet whose body flits are still in flight
    /// upstream keeps its VC `Active` — but such a VC has nothing to forward
    /// until [`accept_flit`](Self::accept_flit) re-activates the router.
    ///
    /// The simulation driver uses this predicate to maintain its
    /// active-router worklist: a router is dropped from the worklist the
    /// cycle it becomes quiescent and re-inserted by flit arrival.
    #[inline]
    pub fn is_quiescent(&self) -> bool {
        debug_assert!(
            self.buffered > 0
                || (self.routing_mask.iter().all(|&m| m == 0)
                    && self.va_mask.iter().all(|&m| m == 0)),
            "a VC waiting for RC/VA must have its head flit buffered"
        );
        self.buffered == 0
    }

    /// Control state of input VC (`port`, `vc`) — intended for tests and
    /// debugging.
    pub fn input_vc_state(&self, port: usize, vc: usize) -> VcState {
        self.inputs[port * self.vcs + vc].state
    }

    /// Buffer occupancy of input VC (`port`, `vc`).
    pub fn input_vc_occupancy(&self, port: usize, vc: usize) -> usize {
        self.inputs[port * self.vcs + vc].buffer.len()
    }

    /// Credits currently available on output (`port`, `vc`).
    pub fn output_credits(&self, port: usize, vc: usize) -> usize {
        self.outputs[port * self.vcs + vc].credits
    }

    /// The `(out_port, out_vc)` the packet on input VC (`port`, `vc`) is
    /// routed to — `None` before RC / VC allocation respectively. Intended
    /// for tests and wait-for-graph diagnostics.
    pub fn input_vc_route(&self, port: usize, vc: usize) -> (Option<usize>, Option<usize>) {
        let input = &self.inputs[port * self.vcs + vc];
        (input.out_port.map(usize::from), input.out_vc.map(usize::from))
    }

    /// Total number of flits buffered in this router.
    pub fn buffered_flits(&self) -> usize {
        self.buffered
    }

    /// Accepts a flit arriving on input `in_port` (its `vc` field selects the
    /// virtual channel).
    ///
    /// # Panics
    ///
    /// Panics if `in_port` or the flit's VC is out of range, or the target
    /// buffer is full (which would mean the upstream credit accounting is
    /// broken).
    pub fn accept_flit(&mut self, in_port: usize, flit: Flit) {
        assert!(in_port < PORT_COUNT, "flit arrived on unknown input port {in_port}");
        let vc = flit.vc();
        assert!(vc < self.vcs, "flit arrived on unknown VC {vc}");
        let input = &mut self.inputs[in_port * self.vcs + vc];
        input.buffer.push(flit);
        self.buffered += 1;
        self.activity.buffer_writes += 1;
        let front_is_head = input.buffer.front().map(|f| f.kind.is_head()).unwrap_or(false);
        if input.state == VcState::Idle {
            if front_is_head {
                input.state = VcState::Routing;
                self.routing_mask[in_port] |= 1u64 << vc;
                self.routing_pending += 1;
            } else {
                // A body/tail flit with no packet context: its head died in a
                // failed component upstream. Discard the orphaned remainder.
                input.state = VcState::Draining;
                self.drain_mask[in_port] |= 1u64 << vc;
            }
        } else if input.state == VcState::Draining && front_is_head {
            // The orphan was fully drained and a fresh packet starts.
            input.state = VcState::Routing;
            self.drain_mask[in_port] &= !(1u64 << vc);
            self.routing_mask[in_port] |= 1u64 << vc;
            self.routing_pending += 1;
        }
    }

    /// Accepts a credit for output (`out_port`, `vc`): the downstream router
    /// freed one buffer slot.
    ///
    /// # Panics
    ///
    /// Panics if `out_port` or `vc` is out of range.
    pub fn accept_credit(&mut self, out_port: usize, vc: usize) {
        assert!(out_port < PORT_COUNT, "credit for unknown output port {out_port}");
        assert!(vc < self.vcs, "credit for unknown VC {vc}");
        self.outputs[out_port * self.vcs + vc].credits += 1;
    }

    /// Route-computation stage: resolves the output port (and, on a torus,
    /// the dateline VC class) of every head flit waiting in the `Routing`
    /// state.
    pub fn rc_stage(&mut self, topo: &Topology, routing: &dyn RoutingAlgorithm) {
        self.rc_stage_blocked(topo, routing, 0);
    }

    /// [`rc_stage`](Self::rc_stage) with a mask of output ports that lead to
    /// failed links, failed routers, or fenced (power-gated) neighbours.
    /// Adaptive algorithms deviate around blocked ports via
    /// [`RoutingAlgorithm::route_around`]; dimension-ordered algorithms
    /// ignore the mask (their default `route_around` delegates to `route`),
    /// so with `blocked == 0` — or any DO algorithm — this is byte-for-byte
    /// the plain stage.
    pub fn rc_stage_blocked(
        &mut self,
        topo: &Topology,
        routing: &dyn RoutingAlgorithm,
        blocked: u8,
    ) {
        if self.routing_pending == 0 && self.va_pending == 0 {
            return;
        }
        // Ports with no free adaptive-class VC left, for availability-aware
        // adaptive selection (RC precedes VA, so the mask is stable across
        // this cycle's selections).
        let mut adaptive_full = 0u8;
        for dir_port in 0..LOCAL_PORT {
            if self.free_out_mask[dir_port] & self.class_masks[1] == 0 {
                adaptive_full |= 1u8 << dir_port;
            }
        }
        for port in 0..PORT_COUNT {
            let fresh = self.routing_mask[port];
            // Heads still waiting in VcAllocation re-run route computation
            // every cycle: an adaptive algorithm may pick a different port or
            // VC class as faults/fences appear and disappear, and Duato's
            // deadlock-freedom argument needs blocked packets to keep being
            // offered the escape path. Dimension-ordered algorithms recompute
            // the identical route, so this is behaviour-neutral for them.
            let mut mask = fresh | self.va_mask[port];
            if mask == 0 {
                continue;
            }
            if fresh != 0 {
                // Every VC in Routing state advances to VcAllocation.
                self.va_mask[port] |= fresh;
                self.routing_mask[port] = 0;
                self.va_pending += fresh.count_ones();
                self.routing_pending -= fresh.count_ones();
            }
            while mask != 0 {
                let vc = mask.trailing_zeros() as usize;
                mask &= mask - 1;
                let input = &mut self.inputs[port * self.vcs + vc];
                debug_assert!(
                    input.state == VcState::Routing || input.state == VcState::VcAllocation
                );
                let head = input
                    .buffer
                    .front()
                    .expect("a VC awaiting routing must have a head flit buffered");
                debug_assert!(head.kind.is_head());
                // The class of the VC the head occupies tells the algorithm
                // whether the packet is travelling on the escape network
                // (sticky — see `MinimalAdaptive`).
                let in_class = u8::from(self.class_masks[0] & (1u64 << vc) == 0);
                let (dir, class) = routing.route_around(
                    topo,
                    head.src(),
                    self.node,
                    head.dst(),
                    port,
                    in_class,
                    blocked,
                    adaptive_full,
                );
                input.out_port = Some(dir.index() as u8);
                input.next_class = class;
                input.state = VcState::VcAllocation;
            }
        }
    }

    /// Virtual-channel allocation stage: assigns a free downstream VC to each
    /// winning head flit.
    pub fn va_stage(&mut self) {
        if self.va_pending == 0 {
            return;
        }
        // Gather requests into the persistent scratch buffer: every input VC
        // waiting for VC allocation proposes one candidate output VC on its
        // output port (round-robin pick over the free-VC bitmask: first free
        // VC at or after the rotating start, wrapping to the lowest free VC).
        self.requests.clear();
        for port in 0..PORT_COUNT {
            let mut mask = self.va_mask[port];
            while mask != 0 {
                let vc = mask.trailing_zeros() as usize;
                mask &= mask - 1;
                let input = &self.inputs[port * self.vcs + vc];
                debug_assert_eq!(input.state, VcState::VcAllocation);
                let out_port = input.out_port.expect("out_port set during RC") as usize;
                let mut free = self.free_out_mask[out_port];
                if out_port != LOCAL_PORT {
                    // Dateline discipline: inter-router links only hand out
                    // VCs of the packet's class (no-op on a mesh, where both
                    // class masks cover every VC).
                    free &= self.class_masks[usize::from(input.next_class)];
                }
                if free == 0 {
                    continue;
                }
                let start = self.out_vc_rr[out_port];
                let at_or_after = free & !((1u64 << start) - 1);
                let ovc = if at_or_after != 0 {
                    at_or_after.trailing_zeros() as usize
                } else {
                    free.trailing_zeros() as usize
                };
                self.requests.push(AllocRequest {
                    group: port,
                    member: vc,
                    resource: out_port * self.vcs + ovc,
                });
            }
        }
        if self.requests.is_empty() {
            return;
        }
        for grant in self.vc_allocator.allocate(&self.requests) {
            let out_port = grant.resource / self.vcs;
            let out_vc = grant.resource % self.vcs;
            let output = &mut self.outputs[grant.resource];
            if output.allocated {
                // Another grant in the same round took it (cannot happen with
                // a separable allocator granting each resource once, but keep
                // the invariant explicit).
                continue;
            }
            output.allocated = true;
            self.free_out_mask[out_port] &= !(1u64 << out_vc);
            let input = &mut self.inputs[grant.group * self.vcs + grant.member];
            input.out_vc = Some(out_vc as u8);
            input.state = VcState::Active;
            self.va_mask[grant.group] &= !(1u64 << grant.member);
            self.va_pending -= 1;
            self.active_mask[grant.group] |= 1u64 << grant.member;
            self.activity.vc_allocations += 1;
            self.out_vc_rr[out_port] = (out_vc + 1) % self.vcs;
        }
    }

    /// Switch-allocation and switch-traversal stage.
    ///
    /// Active VCs with a buffered flit and downstream credit compete for the
    /// crossbar; winners move one flit each towards their output port.
    ///
    /// Results are **appended** to `out`, which the caller owns and reuses
    /// across routers/cycles (see the type-level scratch-buffer contract on
    /// [`Router`]); the caller clears it, typically once per cycle.
    pub fn sa_st_stage(&mut self, out: &mut TraversalOutput) {
        self.sa_st_stage_fenced(out, 0);
    }

    /// [`sa_st_stage`](Self::sa_st_stage) with a power-gating fence: output
    /// ports whose bit is set in `fence` belong to a gated (or still waking)
    /// downstream router. A ready flit towards a fenced port stays buffered
    /// — exactly as if the output had no credit, so the arbiter state
    /// evolves identically to a credit stall — and the port is recorded in
    /// [`TraversalOutput::fenced_ports`] so the driver can raise a wakeup
    /// request. With `fence == 0` this is byte-for-byte the unfenced stage.
    pub fn sa_st_stage_fenced(&mut self, out: &mut TraversalOutput, fence: u8) {
        if self.buffered == 0 {
            return;
        }
        self.drain_orphans(out);
        self.requests.clear();
        for port in 0..PORT_COUNT {
            let mut mask = self.active_mask[port];
            while mask != 0 {
                let vc = mask.trailing_zeros() as usize;
                mask &= mask - 1;
                let input = &self.inputs[port * self.vcs + vc];
                debug_assert_eq!(input.state, VcState::Active);
                if input.buffer.is_empty() {
                    continue;
                }
                let out_port = input.out_port.expect("active VC has a route") as usize;
                if fence & (1u8 << out_port) != 0 {
                    out.fenced_ports |= 1u8 << out_port;
                    continue;
                }
                let out_vc = input.out_vc.expect("active VC has an output VC") as usize;
                let has_credit = out_port == LOCAL_PORT
                    || self.outputs[out_port * self.vcs + out_vc].credits > 0;
                if has_credit {
                    self.requests.push(AllocRequest { group: port, member: vc, resource: out_port });
                }
            }
        }
        if self.requests.is_empty() {
            return;
        }
        for grant in self.sw_allocator.allocate(&self.requests) {
            let in_port = grant.group;
            let in_vc = grant.member;
            let in_idx = in_port * self.vcs + in_vc;
            let out_port = grant.resource;
            let out_vc = self.inputs[in_idx].out_vc.expect("active VC has an output VC") as usize;
            let mut flit =
                self.inputs[in_idx].buffer.pop().expect("granted VC has a buffered flit");
            self.buffered -= 1;
            self.activity.buffer_reads += 1;
            self.activity.crossbar_traversals += 1;
            self.activity.switch_allocations += 1;
            out.credits.push(CreditReturn { in_port, vc: in_vc });
            let is_tail = flit.kind.is_tail();
            flit.vc = out_vc as u8;
            flit.hops += 1;
            if out_port == LOCAL_PORT {
                self.activity.ejected_flits += 1;
                out.ejected.push(flit);
            } else {
                let output = &mut self.outputs[out_port * self.vcs + out_vc];
                debug_assert!(output.credits > 0, "switch allocation granted without credit");
                output.credits -= 1;
                self.activity.link_flits += 1;
                out.outgoing.push(OutgoingFlit { out_port, flit });
            }
            if is_tail {
                // The tail releases both the output VC and the input VC.
                self.outputs[out_port * self.vcs + out_vc].allocated = false;
                self.free_out_mask[out_port] |= 1u64 << out_vc;
                self.active_mask[in_port] &= !(1u64 << in_vc);
                let input = &mut self.inputs[in_idx];
                input.state = VcState::Idle;
                input.out_port = None;
                input.out_vc = None;
                if let Some(front) = input.buffer.front() {
                    if front.kind.is_head() {
                        input.state = VcState::Routing;
                        self.routing_mask[in_port] |= 1u64 << in_vc;
                        self.routing_pending += 1;
                    } else {
                        // The next packet lost its head in a failed component
                        // upstream; discard its orphaned remainder.
                        input.state = VcState::Draining;
                        self.drain_mask[in_port] |= 1u64 << in_vc;
                    }
                }
            }
        }
    }

    /// Discards one flit per [`VcState::Draining`] input VC (matching the
    /// one-flit-per-cycle switch rate), returning a credit upstream for each
    /// and counting the drop in [`TraversalOutput::dropped`]. A VC whose
    /// front flit is a head resumes normal routing instead.
    fn drain_orphans(&mut self, out: &mut TraversalOutput) {
        for port in 0..PORT_COUNT {
            let mut mask = self.drain_mask[port];
            while mask != 0 {
                let vc = mask.trailing_zeros() as usize;
                mask &= mask - 1;
                let input = &mut self.inputs[port * self.vcs + vc];
                debug_assert_eq!(input.state, VcState::Draining);
                let Some(front) = input.buffer.front() else { continue };
                if !front.kind.is_head() {
                    input.buffer.pop().expect("front flit exists");
                    self.buffered -= 1;
                    self.activity.buffer_reads += 1;
                    out.credits.push(CreditReturn { in_port: port, vc });
                    out.dropped += 1;
                }
                if input.buffer.front().map(|f| f.kind.is_head()).unwrap_or(false) {
                    input.state = VcState::Routing;
                    self.drain_mask[port] &= !(1u64 << vc);
                    self.routing_mask[port] |= 1u64 << vc;
                    self.routing_pending += 1;
                }
            }
        }
    }

    /// Re-partitions the VC classes into an escape half (class 0) and an
    /// adaptive half (class 1), as required by routing algorithms with
    /// [`RoutingAlgorithm::wants_escape_classes`]. On a torus the dateline
    /// masks already have this shape, so the split only changes mesh routers.
    pub(crate) fn split_vc_classes(&mut self) {
        let all = if self.vcs == 64 { u64::MAX } else { (1u64 << self.vcs) - 1 };
        let low = (1u64 << self.vcs.div_ceil(2)) - 1;
        self.class_masks = [low, all & !low];
    }

    /// Empties every input buffer (router death): each discarded flit is
    /// counted as dropped and produces a [`CreditReturn`] that the driver
    /// routes to the upstream neighbour or local source, keeping their credit
    /// accounting exact. All pipeline state is then factory-reset (`depth` is
    /// the configured buffer depth, restoring full output credits).
    ///
    /// Returns the number of flits dropped.
    pub(crate) fn purge_all(&mut self, depth: usize, credits: &mut Vec<CreditReturn>) -> u64 {
        let mut dropped = 0u64;
        for port in 0..PORT_COUNT {
            for vc in 0..self.vcs {
                let input = &mut self.inputs[port * self.vcs + vc];
                while input.buffer.pop().is_some() {
                    dropped += 1;
                    credits.push(CreditReturn { in_port: port, vc });
                }
                input.state = VcState::Idle;
                input.out_port = None;
                input.out_vc = None;
                input.next_class = 0;
            }
        }
        for out in self.outputs.iter_mut() {
            out.credits = depth;
            out.allocated = false;
        }
        let all = if self.vcs == 64 { u64::MAX } else { (1u64 << self.vcs) - 1 };
        self.routing_mask = [0; PORT_COUNT];
        self.va_mask = [0; PORT_COUNT];
        self.drain_mask = [0; PORT_COUNT];
        self.active_mask = [0; PORT_COUNT];
        self.routing_pending = 0;
        self.va_pending = 0;
        self.free_out_mask = [all; PORT_COUNT];
        self.out_vc_rr.fill(0);
        self.buffered = 0;
        dropped
    }

    /// Overrides the credit/allocation state of output (`port`, `vc`) — used
    /// when a transiently failed router comes back: outputs facing a
    /// neighbour input VC that is idle get a full credit refill, while
    /// outputs facing a VC still holding pre-fault flits are *retired*
    /// (`retired = true`: permanently allocated with zero credits, so they
    /// are never granted again and cannot corrupt the neighbour's state).
    pub(crate) fn resync_output(&mut self, port: usize, vc: usize, credits: usize, retired: bool) {
        let output = &mut self.outputs[port * self.vcs + vc];
        output.credits = credits;
        output.allocated = retired;
        if retired {
            self.free_out_mask[port] &= !(1u64 << vc);
        } else {
            self.free_out_mask[port] |= 1u64 << vc;
        }
    }

    /// Whether a VC index belongs to the escape class (class 0). On a plain
    /// mesh without an adaptive algorithm both class masks cover every VC, so
    /// every VC reads as class 0 — telemetry's escape/adaptive split is only
    /// meaningful where the classes are actually partitioned.
    pub fn vc_is_escape(&self, vc: usize) -> bool {
        self.class_masks[0] & (1u64 << vc) != 0
    }

    /// Takes the telemetry stall census: classifies every input VC that is
    /// holding flits but could not (or will not next cycle) advance, and
    /// accumulates the counts into `census`. Read-only — called by the
    /// driver's telemetry probe after the pipeline stages ran, so `Active`
    /// states reflect post-traversal credit balances (a VC that just spent
    /// its last credit counts as credit-stalled, which is exactly its state
    /// for the next cycle). VCs that merely lost a switch-arbitration round
    /// are not counted: they are throughput-limited, not stalled.
    pub(crate) fn stall_census(&self, fence: u8, census: &mut crate::telemetry::StallCensus) {
        if self.buffered == 0 {
            return;
        }
        let split_classes = self.class_masks[0] != self.class_masks[1];
        for port in 0..PORT_COUNT {
            // One merged test skips ports with no waiting VC at all — the
            // common case on a lightly loaded router — before the per-mask
            // walks below.
            if self.routing_mask[port] | self.va_mask[port] | self.active_mask[port] == 0 {
                continue;
            }
            census.route_wait += u64::from(self.routing_mask[port].count_ones());
            let mut mask = self.va_mask[port];
            while mask != 0 {
                let vc = mask.trailing_zeros() as usize;
                mask &= mask - 1;
                let input = &self.inputs[port * self.vcs + vc];
                let out_port = input.out_port.expect("out_port set during RC") as usize;
                let mut free = self.free_out_mask[out_port];
                if out_port != LOCAL_PORT {
                    free &= self.class_masks[usize::from(input.next_class)];
                }
                if free == 0 && input.next_class == 0 && split_classes {
                    census.escape_hold += 1;
                } else {
                    census.va_wait += 1;
                }
            }
            let mut mask = self.active_mask[port];
            while mask != 0 {
                let vc = mask.trailing_zeros() as usize;
                mask &= mask - 1;
                let input = &self.inputs[port * self.vcs + vc];
                if input.buffer.is_empty() {
                    // Waiting for body flits upstream, not stalled here.
                    continue;
                }
                let out_port = input.out_port.expect("active VC has a route") as usize;
                if fence & (1u8 << out_port) != 0 {
                    census.fenced += 1;
                } else if out_port != LOCAL_PORT {
                    let out_vc = input.out_vc.expect("active VC has an output VC") as usize;
                    if self.outputs[out_port * self.vcs + out_vc].credits == 0 {
                        census.no_credit += 1;
                    }
                }
            }
        }
    }
}

#[cfg(feature = "snapshot")]
impl Router {
    /// Encodes every piece of mutable pipeline state for a checkpoint:
    /// input/output VC state, both allocator arbiter banks, the round-robin
    /// cursors, the per-port state bitmasks and the activity window. The node
    /// index, VC count and allocation scratch are not written (configuration
    /// and per-round scratch respectively).
    pub(crate) fn save_state(&self, w: &mut crate::snapshot::SnapWriter) {
        for input in &self.inputs {
            w.put_u8(match input.state {
                VcState::Idle => 0,
                VcState::Routing => 1,
                VcState::VcAllocation => 2,
                VcState::Active => 3,
                VcState::Draining => 4,
            });
            input.buffer.save_state(w);
            w.put_opt_u64(input.out_port.map(u64::from));
            w.put_opt_u64(input.out_vc.map(u64::from));
            w.put_u8(input.next_class);
        }
        for output in &self.outputs {
            w.put_usize(output.credits);
            w.put_bool(output.allocated);
        }
        self.vc_allocator.save_state(w);
        self.sw_allocator.save_state(w);
        for cursor in &self.out_vc_rr {
            w.put_usize(*cursor);
        }
        for masks in
            [&self.routing_mask, &self.va_mask, &self.active_mask, &self.drain_mask, &self.free_out_mask]
        {
            for mask in masks {
                w.put_u64(*mask);
            }
        }
        w.put_u32(self.routing_pending);
        w.put_u32(self.va_pending);
        w.put_u64(self.class_masks[0]);
        w.put_u64(self.class_masks[1]);
        self.activity.save_state(w);
        w.put_usize(self.buffered);
    }

    /// Restores the pipeline state written by [`save_state`](Self::save_state)
    /// into a router built from the same configuration.
    pub(crate) fn load_state(
        &mut self,
        r: &mut crate::snapshot::SnapReader<'_>,
    ) -> Result<(), crate::snapshot::SnapshotError> {
        use crate::snapshot::SnapshotError;
        let vcs = self.vcs;
        for input in &mut self.inputs {
            input.state = match r.read_u8()? {
                0 => VcState::Idle,
                1 => VcState::Routing,
                2 => VcState::VcAllocation,
                3 => VcState::Active,
                4 => VcState::Draining,
                _ => return Err(SnapshotError::Corrupt("VC state")),
            };
            input.buffer.load_state(r)?;
            let out_port = r.read_opt_u64()?;
            if out_port.is_some_and(|p| p >= PORT_COUNT as u64) {
                return Err(SnapshotError::Corrupt("VC out port"));
            }
            input.out_port = out_port.map(|p| p as u8);
            let out_vc = r.read_opt_u64()?;
            if out_vc.is_some_and(|v| v >= vcs as u64) {
                return Err(SnapshotError::Corrupt("VC out VC"));
            }
            input.out_vc = out_vc.map(|v| v as u8);
            input.next_class = r.read_u8()?;
        }
        for output in &mut self.outputs {
            output.credits = r.read_usize()?;
            output.allocated = r.read_bool()?;
        }
        self.vc_allocator.load_state(r)?;
        self.sw_allocator.load_state(r)?;
        for cursor in &mut self.out_vc_rr {
            let c = r.read_usize()?;
            if c >= vcs {
                return Err(SnapshotError::Corrupt("output VC cursor"));
            }
            *cursor = c;
        }
        for masks in [
            &mut self.routing_mask,
            &mut self.va_mask,
            &mut self.active_mask,
            &mut self.drain_mask,
            &mut self.free_out_mask,
        ] {
            for mask in masks.iter_mut() {
                *mask = r.read_u64()?;
            }
        }
        self.routing_pending = r.read_u32()?;
        self.va_pending = r.read_u32()?;
        self.class_masks[0] = r.read_u64()?;
        self.class_masks[1] = r.read_u64()?;
        self.activity.load_state(r)?;
        let buffered = r.read_usize()?;
        let actual: usize = self.inputs.iter().map(|input| input.buffer.len()).sum();
        if buffered != actual {
            return Err(SnapshotError::Corrupt("router buffered-flit count"));
        }
        self.buffered = buffered;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flit::{Flit, PacketId};
    use crate::routing::XyRouting;
    use crate::topology::{Direction, Mesh2d};

    fn small_config() -> NetworkConfig {
        NetworkConfig::builder()
            .mesh(3, 3)
            .virtual_channels(2)
            .buffer_depth(4)
            .packet_length(3)
            .build()
            .unwrap()
    }

    fn packet(id: u64, src: usize, dst: usize, len: usize) -> Vec<Flit> {
        Flit::packet(PacketId::new(id), src, dst, len, 0, 0.0)
    }

    /// Drives the router's three internal stages once, as the network would.
    fn step(router: &mut Router, mesh: &Mesh2d, routing: &XyRouting) -> TraversalOutput {
        let mut out = TraversalOutput::default();
        router.sa_st_stage(&mut out);
        router.va_stage();
        router.rc_stage(mesh, routing);
        out
    }

    #[test]
    fn head_flit_triggers_routing_state() {
        let cfg = small_config();
        let mut router = Router::new(4, &cfg); // centre of the 3x3 mesh
        let flits = packet(1, 4, 5, 3);
        router.accept_flit(LOCAL_PORT, flits[0]);
        assert_eq!(router.input_vc_state(LOCAL_PORT, 0), VcState::Routing);
        assert_eq!(router.activity().buffer_writes, 1);
    }

    #[test]
    fn packet_traverses_router_towards_east_neighbor() {
        let cfg = small_config();
        let mesh = Mesh2d::new(3, 3);
        let routing = XyRouting::new();
        let mut router = Router::new(4, &cfg);
        // Node 5 is the east neighbour of node 4.
        for f in packet(1, 4, 5, 3) {
            router.accept_flit(LOCAL_PORT, f);
        }
        let mut sent = Vec::new();
        for _ in 0..10 {
            let out = step(&mut router, &mesh, &routing);
            assert!(out.ejected.is_empty());
            sent.extend(out.outgoing);
        }
        assert_eq!(sent.len(), 3, "all three flits leave the router");
        for s in &sent {
            assert_eq!(s.out_port, Direction::East.index());
        }
        assert_eq!(router.buffered_flits(), 0);
        assert_eq!(router.activity().link_flits, 3);
        assert_eq!(router.activity().vc_allocations, 1);
        // The input VC is released after the tail.
        assert_eq!(router.input_vc_state(LOCAL_PORT, 0), VcState::Idle);
    }

    #[test]
    fn packet_destined_here_is_ejected() {
        let cfg = small_config();
        let mesh = Mesh2d::new(3, 3);
        let routing = XyRouting::new();
        let mut router = Router::new(4, &cfg);
        let mut flits = packet(9, 1, 4, 3);
        for f in &mut flits {
            f.vc = 1;
            router.accept_flit(Direction::North.index(), *f);
        }
        let mut ejected = Vec::new();
        for _ in 0..10 {
            ejected.extend(step(&mut router, &mesh, &routing).ejected);
        }
        assert_eq!(ejected.len(), 3);
        assert_eq!(router.activity().ejected_flits, 3);
        assert_eq!(router.activity().link_flits, 0);
    }

    #[test]
    fn credits_are_returned_for_every_forwarded_flit() {
        let cfg = small_config();
        let mesh = Mesh2d::new(3, 3);
        let routing = XyRouting::new();
        let mut router = Router::new(4, &cfg);
        for f in packet(1, 4, 3, 3) {
            router.accept_flit(LOCAL_PORT, f);
        }
        let mut credits = Vec::new();
        for _ in 0..10 {
            credits.extend(step(&mut router, &mesh, &routing).credits);
        }
        assert_eq!(credits.len(), 3);
        assert!(credits.iter().all(|c| c.in_port == LOCAL_PORT && c.vc == 0));
    }

    #[test]
    fn forwarding_consumes_downstream_credits() {
        let cfg = small_config();
        let mesh = Mesh2d::new(3, 3);
        let routing = XyRouting::new();
        let mut router = Router::new(4, &cfg);
        let east = Direction::East.index();
        let initial: usize = (0..cfg.virtual_channels()).map(|v| router.output_credits(east, v)).sum();
        for f in packet(1, 4, 5, 3) {
            router.accept_flit(LOCAL_PORT, f);
        }
        for _ in 0..10 {
            step(&mut router, &mesh, &routing);
        }
        let after: usize = (0..cfg.virtual_channels()).map(|v| router.output_credits(east, v)).sum();
        assert_eq!(initial - after, 3, "three flits consumed three downstream credits");
        router.accept_credit(east, 0);
        let restored: usize =
            (0..cfg.virtual_channels()).map(|v| router.output_credits(east, v)).sum();
        assert_eq!(restored, after + 1);
    }

    #[test]
    fn blocked_without_credits() {
        let cfg = NetworkConfig::builder()
            .mesh(3, 3)
            .virtual_channels(1)
            .buffer_depth(4)
            .packet_length(2)
            .build()
            .unwrap();
        let mesh = Mesh2d::new(3, 3);
        let routing = XyRouting::new();
        let mut router = Router::new(4, &cfg);
        // Drain all four credits of the east output VC with two 2-flit packets.
        for _ in 0..2 {
            for f in packet(1, 4, 5, 2) {
                router.accept_flit(LOCAL_PORT, f);
            }
            for _ in 0..4 {
                step(&mut router, &mesh, &routing);
            }
        }
        assert_eq!(router.output_credits(Direction::East.index(), 0), 0);
        // A further packet cannot traverse until a credit returns.
        for f in packet(2, 4, 5, 2) {
            router.accept_flit(LOCAL_PORT, f);
        }
        let mut forwarded = 0;
        for _ in 0..5 {
            forwarded += step(&mut router, &mesh, &routing).outgoing.len();
        }
        assert_eq!(forwarded, 0, "no credit, no traversal");
        router.accept_credit(Direction::East.index(), 0);
        let mut forwarded = 0;
        for _ in 0..3 {
            forwarded += step(&mut router, &mesh, &routing).outgoing.len();
        }
        assert_eq!(forwarded, 1, "one credit allows exactly one flit");
    }

    #[test]
    fn two_packets_share_bandwidth_through_different_vcs() {
        let cfg = small_config();
        let mesh = Mesh2d::new(3, 3);
        let routing = XyRouting::new();
        let mut router = Router::new(4, &cfg);
        // Two packets from different input ports, both heading east.
        for f in packet(1, 3, 5, 3) {
            let mut f = f;
            f.vc = 0;
            router.accept_flit(Direction::West.index(), f);
        }
        for f in packet(2, 1, 5, 3) {
            let mut f = f;
            f.vc = 0;
            router.accept_flit(Direction::North.index(), f);
        }
        let mut sent = Vec::new();
        for _ in 0..16 {
            sent.extend(step(&mut router, &mesh, &routing).outgoing);
        }
        assert_eq!(sent.len(), 6, "both packets eventually traverse");
        // They must have used different output VCs (VC allocation keeps
        // packets separate on the shared link).
        let vcs: std::collections::HashSet<u8> = sent.iter().map(|s| s.flit.vc).collect();
        assert_eq!(vcs.len(), 2);
    }

    #[test]
    fn quiescence_tracks_buffer_occupancy() {
        let cfg = small_config();
        let mesh = Mesh2d::new(3, 3);
        let routing = XyRouting::new();
        let mut router = Router::new(4, &cfg);
        assert!(router.is_quiescent(), "a fresh router is quiescent");
        // A lone head flit (body still "in flight") makes the router active.
        let flits = packet(1, 4, 5, 3);
        router.accept_flit(LOCAL_PORT, flits[0]);
        assert!(!router.is_quiescent());
        // The head traverses; its input VC stays Active awaiting the body,
        // but with nothing buffered the router is quiescent again.
        for _ in 0..4 {
            step(&mut router, &mesh, &routing);
        }
        assert_eq!(router.buffered_flits(), 0);
        assert!(router.is_quiescent(), "empty buffers => quiescent, even mid-packet");
        assert_eq!(router.input_vc_state(LOCAL_PORT, 0), VcState::Active);
        // A body flit re-activates it.
        router.accept_flit(LOCAL_PORT, flits[1]);
        assert!(!router.is_quiescent());
    }

    #[test]
    fn activity_window_reset() {
        let cfg = small_config();
        let mesh = Mesh2d::new(3, 3);
        let routing = XyRouting::new();
        let mut router = Router::new(4, &cfg);
        for f in packet(1, 4, 5, 3) {
            router.accept_flit(LOCAL_PORT, f);
        }
        for _ in 0..10 {
            step(&mut router, &mesh, &routing);
        }
        let window = router.take_activity();
        assert!(window.total_events() > 0);
        assert!(router.activity().is_idle(), "taking the window resets the counters");
    }

    #[test]
    fn fenced_port_holds_flits_and_reports_the_demand() {
        let cfg = small_config();
        let mesh = Mesh2d::new(3, 3);
        let routing = XyRouting::new();
        let mut router = Router::new(4, &cfg);
        for f in packet(1, 4, 5, 3) {
            router.accept_flit(LOCAL_PORT, f);
        }
        let east = Direction::East.index();
        // Fence the east port: nothing may leave, but the blocked demand is
        // reported so the driver can wake the sleeping neighbour.
        let mut out = TraversalOutput::default();
        for _ in 0..5 {
            out.clear();
            router.rc_stage(&mesh, &routing);
            router.va_stage();
            router.sa_st_stage_fenced(&mut out, 1u8 << east);
            assert!(out.outgoing.is_empty(), "fenced port must not emit flits");
        }
        assert_eq!(out.fenced_ports, 1u8 << east);
        assert_eq!(router.buffered_flits(), 3, "flits wait behind the fence");
        // Dropping the fence releases the traffic unchanged.
        let mut sent = Vec::new();
        for _ in 0..10 {
            let o = step(&mut router, &mesh, &routing);
            sent.extend(o.outgoing);
        }
        assert_eq!(sent.len(), 3);
        assert!(sent.iter().all(|s| s.out_port == east));
    }

    #[test]
    fn back_to_back_packets_on_same_input_vc() {
        let cfg = small_config();
        let mesh = Mesh2d::new(3, 3);
        let routing = XyRouting::new();
        let mut router = Router::new(4, &cfg);
        // Two consecutive 2-flit packets on the same input VC; the second head
        // must be re-routed after the first tail releases the VC.
        for f in packet(1, 4, 5, 2) {
            router.accept_flit(LOCAL_PORT, f);
        }
        for _ in 0..6 {
            step(&mut router, &mesh, &routing);
        }
        for f in packet(2, 4, 3, 2) {
            router.accept_flit(LOCAL_PORT, f);
        }
        let mut ports = Vec::new();
        for _ in 0..8 {
            ports.extend(step(&mut router, &mesh, &routing).outgoing.iter().map(|o| o.out_port));
        }
        assert!(ports.contains(&Direction::West.index()), "second packet routed west");
    }

    // ----- mixed-class escape re-entry deadlock regression ------------------
    //
    // Four routers of a 4x4 mesh (nodes 5, 6, 9, 10) with a hand-armed
    // four-packet wait cycle that mixes the escape and adaptive VC classes.
    // Two links are faulted (5->West and 10->East), each sending one escape
    // packet back into the adaptive class:
    //
    //   P (escape, holds the 6->5 escape VC,   waits on 5's South adaptive
    //      escape hop West faulted)            VC, held by
    //   Q (adaptive, holds the 5->9 adaptive   waits on 9's East escape VC
    //      VC)                                 (Duato fallback), held by
    //   Z (escape, holds the 9->10 escape VC,  waits on 10's North adaptive
    //      escape hop East faulted)            VC, held by
    //   V (adaptive, holds the 10->6 adaptive  waits on 6's West escape VC
    //      VC)                                 (Duato fallback), held by P.
    //
    // Every held VC belongs to a wormhole whose tail is still upstream, so
    // nothing releases: a genuine cycle of packet-held channel waits, closed
    // by the two faulted-escape re-entries. With the pre-fix unrestricted
    // rule, P and Z wait on *full* adaptive VCs held by cycle members and
    // nothing ever moves again — even though free adaptive VCs (5's North,
    // 10's South) exist the whole time. With the restricted rule both take a
    // free detour instead of waiting, and the cycle unwinds.

    use crate::routing::MinimalAdaptive;

    fn adaptive_config() -> NetworkConfig {
        NetworkConfig::builder()
            .mesh(4, 4)
            .virtual_channels(2)
            .buffer_depth(4)
            .packet_length(6)
            .routing(crate::routing::RoutingKind::MinimalAdaptive)
            .build()
            .unwrap()
    }

    struct CycleHarness {
        topo: Topology,
        nodes: [usize; 4], // 5, 6, 9, 10
        routers: Vec<Router>,
        /// Faulted output ports per harness router (parallel to `nodes`).
        blocked: [u8; 4],
    }

    impl CycleHarness {
        fn new() -> Self {
            let cfg = adaptive_config();
            let topo = Topology::mesh(4, 4);
            let nodes = [5usize, 6, 9, 10];
            let routers = nodes
                .iter()
                .map(|&n| {
                    let mut r = Router::new(n, &cfg);
                    r.split_vc_classes();
                    r
                })
                .collect();
            // The two faulted escape hops that send P (at 5, westwards) and
            // Z (at 10, eastwards) back into the adaptive class.
            let mut blocked = [0u8; 4];
            blocked[0] = 1u8 << Direction::West.index();
            blocked[3] = 1u8 << Direction::East.index();
            CycleHarness { topo, nodes, routers, blocked }
        }

        fn idx(&self, node: usize) -> Option<usize> {
            self.nodes.iter().position(|&n| n == node)
        }

        fn feed(&mut self, node: usize, port: Direction, vc: u8, mut flit: Flit) {
            flit.vc = vc;
            let i = self.idx(node).unwrap();
            self.routers[i].accept_flit(port.index(), flit);
        }

        /// Steps one router `cycles` times without delivering anything,
        /// returning every flit it emitted (the caller stashes or voids them).
        fn pump(&mut self, node: usize, routing: &MinimalAdaptive, cycles: usize) -> Vec<OutgoingFlit> {
            let i = self.idx(node).unwrap();
            let mut emitted = Vec::new();
            for _ in 0..cycles {
                let mut out = TraversalOutput::default();
                self.routers[i].sa_st_stage(&mut out);
                self.routers[i].va_stage();
                self.routers[i].rc_stage_blocked(&self.topo, routing, self.blocked[i]);
                emitted.extend(out.outgoing);
                assert!(out.ejected.is_empty(), "harness packets never eject");
            }
            emitted
        }

        /// Steps every router once, then delivers flits and credits between
        /// harness routers (links leaving the harness are voided). Returns
        /// (flits moved anywhere, flits that left the harness at node 5's
        /// North port — the detour drain the restricted rule opens).
        fn step_all(&mut self, routing: &MinimalAdaptive) -> (u64, u64) {
            let mut outs = Vec::new();
            for i in 0..self.routers.len() {
                let mut out = TraversalOutput::default();
                self.routers[i].sa_st_stage(&mut out);
                self.routers[i].va_stage();
                self.routers[i].rc_stage_blocked(&self.topo, routing, self.blocked[i]);
                outs.push(out);
            }
            let mut moved = 0u64;
            let mut north_drained = 0u64;
            for (i, out) in outs.into_iter().enumerate() {
                let node = self.nodes[i];
                moved += out.outgoing.len() as u64 + out.ejected.len() as u64;
                for og in out.outgoing {
                    let dir = Direction::from_index(og.out_port);
                    let nbr = self.topo.neighbor(node, dir);
                    match nbr.and_then(|n| self.idx(n)) {
                        Some(j) => self.routers[j].accept_flit(dir.opposite().index(), og.flit),
                        None => {
                            // Links leaving the harness drain into an
                            // infinite sink: the flit is voided and its
                            // credit comes straight back.
                            self.routers[i].accept_credit(og.out_port, og.flit.vc as usize);
                            if node == 5 && dir == Direction::North {
                                north_drained += 1;
                            }
                        }
                    }
                }
                for cr in out.credits {
                    if cr.in_port == LOCAL_PORT {
                        continue;
                    }
                    let dir = Direction::from_index(cr.in_port);
                    if let Some(j) = self.topo.neighbor(node, dir).and_then(|n| self.idx(n)) {
                        self.routers[j].accept_credit(dir.opposite().index(), cr.vc);
                    }
                }
            }
            (moved, north_drained)
        }

        fn buffered(&self) -> usize {
            self.routers.iter().map(|r| r.buffered_flits()).sum()
        }
    }

    /// Builds the armed cycle described above. Wormhole tails are withheld
    /// upstream of the harness, so every held VC stays allocated until the
    /// test delivers more flits — exactly the backpressured steady state the
    /// deadlock needs.
    fn armed_cycle(routing: &MinimalAdaptive) -> CycleHarness {
        let mut h = CycleHarness::new();

        // Void fillers: each pins one adaptive VC (the head is emitted once
        // and then dropped — never delivered anywhere — while the tail never
        // arrives, so the allocation never releases). They steer every cycle
        // member onto the exact VC the cycle needs:
        //   5's East  adaptive VC full -> Q picks South at node 5;
        //   9's East  adaptive VC full -> Q falls back to escape at node 9;
        //   6's West  adaptive VC full -> V falls back to escape at node 6;
        //  10's West  adaptive VC full -> V picks North at node 10.
        for (id, node, dst, dir) in [
            (90, 5usize, 7usize, Direction::East),
            (91, 9, 11, Direction::East),
            (92, 6, 4, Direction::West),
            (93, 10, 8, Direction::West),
        ] {
            let f = Flit::packet(PacketId::new(id), node, dst, 6, 0, 0.0);
            h.feed(node, Direction::Local, 1, f[0]);
            let out = h.pump(node, routing, 4);
            assert_eq!(out.len(), 1, "filler head leaves node {node}");
            assert_eq!(out[0].out_port, dir.index(), "filler at node {node} pins {dir:?}");
        }

        // P: escape-class wormhole entering node 5 westwards through node 6.
        // Its head will find 5's escape hop (West) faulted. Four flits cross
        // to node 5 (exhausting 6's West escape credits); the last body and
        // the tail stay buffered in 6 behind the credit starvation.
        let p = Flit::packet(PacketId::new(1), 7, 8, 6, 0, 0.0);
        for flit in &p[0..4] {
            h.feed(6, Direction::East, 0, *flit);
        }
        let stash_p = h.pump(6, routing, 10);
        assert_eq!(stash_p.len(), 4, "P's head and three bodies cross to node 5");
        assert!(stash_p.iter().all(|o| o.out_port == Direction::West.index()));
        h.feed(6, Direction::East, 0, p[4]);
        h.feed(6, Direction::East, 0, p[5]);
        assert!(h.pump(6, routing, 4).is_empty(), "no credits left on 6's West escape VC");

        // Q: adaptive-class wormhole through node 5 southwards to node 9
        // (holds 5's South adaptive VC — the one P will wait on).
        let q = Flit::packet(PacketId::new(2), 1, 11, 6, 0, 0.0);
        h.feed(5, Direction::North, 1, q[0]);
        let mut stash_q = h.pump(5, routing, 4);
        h.feed(5, Direction::North, 1, q[1]);
        stash_q.extend(h.pump(5, routing, 4));
        assert_eq!(stash_q.len(), 2, "Q's head and body cross to node 9");
        assert!(stash_q.iter().all(|o| o.out_port == Direction::South.index()));

        // Z: escape-class wormhole through node 9 eastwards to node 10
        // (holds 9's East escape VC — the one Q will wait on). Its head will
        // find 10's escape hop (East) faulted.
        let z = Flit::packet(PacketId::new(3), 8, 3, 6, 0, 0.0);
        h.feed(9, Direction::West, 0, z[0]);
        let mut stash_z = h.pump(9, routing, 4);
        h.feed(9, Direction::West, 0, z[1]);
        stash_z.extend(h.pump(9, routing, 4));
        assert_eq!(stash_z.len(), 2, "Z's head and body cross to node 10");
        assert!(stash_z.iter().all(|o| o.out_port == Direction::East.index()));

        // V: adaptive-class wormhole through node 10 northwards to node 6
        // (holds 10's North adaptive VC — the one Z will wait on).
        let v = Flit::packet(PacketId::new(4), 14, 4, 6, 0, 0.0);
        h.feed(10, Direction::South, 1, v[0]);
        let mut stash_v = h.pump(10, routing, 4);
        h.feed(10, Direction::South, 1, v[1]);
        stash_v.extend(h.pump(10, routing, 4));
        assert_eq!(stash_v.len(), 2, "V's head and body cross to node 6");
        assert!(stash_v.iter().all(|o| o.out_port == Direction::North.index()));

        // Arm: deliver every stashed flit at once, closing the cycle.
        for o in stash_p {
            h.feed(5, Direction::East, o.flit.vc, o.flit);
        }
        for o in stash_q {
            h.feed(9, Direction::North, o.flit.vc, o.flit);
        }
        for o in stash_z {
            h.feed(10, Direction::West, o.flit.vc, o.flit);
        }
        for o in stash_v {
            h.feed(6, Direction::South, o.flit.vc, o.flit);
        }
        h
    }

    #[test]
    fn unrestricted_escape_reentry_deadlocks_on_a_mixed_class_cycle() {
        // Pre-fix behaviour: P and Z re-enter the adaptive class at their
        // faulted escape hops and wait on *full* adaptive VCs held by other
        // cycle members. The four packets wait on each other in a cycle and
        // nothing ever moves again, even though free adaptive VCs (5's North,
        // 10's South) exist the whole time.
        let routing = MinimalAdaptive::with_unrestricted_reentry();
        let mut h = armed_cycle(&routing);
        let before = h.buffered();
        let mut moved = 0u64;
        for _ in 0..300 {
            moved += h.step_all(&routing).0;
        }
        assert_eq!(moved, 0, "the mixed-class cycle must deadlock under unrestricted re-entry");
        assert_eq!(h.buffered(), before, "every flit is frozen in place");
    }

    #[test]
    fn restricted_reentry_escapes_the_mixed_class_cycle() {
        // Post-fix behaviour: a re-entering packet may only *take* a free
        // adaptive VC, never wait on a full one, so P detours through 5's
        // free North VC (and Z through 10's free South VC) and the cycle
        // unwinds behind it: P's tail releases 6's West escape VC, V crosses
        // to node 5 and follows P's detour out through the North port.
        let routing = MinimalAdaptive::new();
        let mut h = armed_cycle(&routing);
        let mut moved = 0u64;
        let mut drained = 0u64;
        for _ in 0..300 {
            let (m, d) = h.step_all(&routing);
            moved += m;
            drained += d;
        }
        assert!(moved > 0, "restricted re-entry must keep the network moving");
        assert!(
            drained >= 6,
            "P's whole wormhole (and V behind it) drains through the North detour, got {drained}"
        );
    }
}
