//! Crash-safe sweeps end to end: journaled progress, a simulated kill,
//! resume, chaos mode, and snapshot warm-starts.
//!
//! ```text
//! cargo run --release --example checkpoint_resume [-- --chaos]
//! ```
//!
//! Four demonstrations on a power-gated, fault-ridden 4×4 torus:
//!
//! 1. **The uninterrupted reference.** A `(policy × load)` sweep runs to
//!    completion through [`run_sweep`], journaling every operating point.
//! 2. **Kill partway, resume.** The same sweep is "killed" after a prefix
//!    of the grid (the process simply stops dispatching, as if SIGKILLed
//!    between points — the journal on disk is always a valid prefix). A
//!    fresh coordinator pointed at the same journal re-runs *only* the
//!    missing points, and the merged journal is byte-identical to the
//!    uninterrupted one.
//! 3. **Chaos mode** (`--chaos`, always summarised). Worker attempts are
//!    randomly killed mid-point; retries with exponential backoff converge
//!    to — again — the byte-identical journal.
//! 4. **Snapshot warm-start.** A long point checkpoints a full
//!    [`SimSnapshot`] between work chunks; a crashed attempt resumes from
//!    the latest checkpoint instead of from scratch, and the bit-identity
//!    contract of the snapshot subsystem makes the warm-started result
//!    indistinguishable from a never-crashed one.

use noc_dvfs_repro::dvfs::coordinator::{
    run_sweep, shard_policy_grid, ChaosConfig, CoordinatorConfig, PointContext, PointRunner,
    WorkUnit,
};
use noc_dvfs_repro::dvfs::{
    encode_operating_point, run_operating_point, ClosedLoopConfig, DmsdConfig, PolicyKind,
    RmsdConfig,
};
use noc_dvfs_repro::sim::{
    FaultConfig, GatingConfig, HazardConfig, NetworkConfig, NocSimulation, SimSnapshot,
    SyntheticTraffic, TrafficPattern,
};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// The gated, faulted torus every sweep below runs on.
fn torus_under_fire() -> NetworkConfig {
    NetworkConfig::builder()
        .torus(4, 4)
        .virtual_channels(2)
        .buffer_depth(4)
        .packet_length(4)
        .gating(GatingConfig::enabled(24, 8))
        .faults(FaultConfig::none().with_hazard(HazardConfig {
            link_rate: 1e-4,
            router_rate: 5e-5,
            transient_fraction: 1.0,
            transient_duration: 150,
        }))
        .build()
        .expect("gated faulted torus configuration is valid")
}

/// The real operating-point runner: each work unit is one closed-loop
/// co-simulation, encoded bit-exactly for the journal.
fn operating_point_runner() -> Arc<PointRunner> {
    let net = torus_under_fire();
    let loop_cfg = ClosedLoopConfig::quick();
    Arc::new(move |unit: &WorkUnit, ctx: &mut PointContext| {
        // Let chaos mode kill this attempt "mid-point".
        ctx.checkpoint_tick();
        let traffic =
            SyntheticTraffic::new(TrafficPattern::Uniform, unit.load, net.packet_length());
        let point =
            run_operating_point(&net, Box::new(traffic), unit.policy.clone(), &loop_cfg, unit.seed);
        Ok(encode_operating_point(&point))
    })
}

fn read(path: &Path) -> String {
    std::fs::read_to_string(path).expect("journal exists")
}

fn main() {
    let chaos_requested = std::env::args().any(|a| a == "--chaos");
    let dir = std::env::temp_dir().join(format!("checkpoint-resume-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let journal = |name: &str| -> PathBuf { dir.join(name) };

    let policies = [
        PolicyKind::NoDvfs,
        PolicyKind::Rmsd(RmsdConfig::with_lambda_max(0.3)),
        PolicyKind::Dmsd(DmsdConfig::with_target_ns(150.0)),
    ];
    let loads = [0.05, 0.10];
    let grid = shard_policy_grid("torus-under-fire", &policies, &loads, 2015);
    let cfg = CoordinatorConfig::quick();

    // --- 1. the uninterrupted reference sweep --------------------------------
    println!("=== 1. uninterrupted sweep ({} points) ===", grid.len());
    let reference =
        run_sweep(&grid, operating_point_runner(), &journal("clean.jsonl"), &cfg).unwrap();
    assert!(reference.failures.is_empty());
    for (key, _) in &reference.results {
        println!("  done  {key}");
    }

    // --- 2. killed partway, resumed from the journal -------------------------
    // Simulate a hard kill: a first process only gets through a prefix of the
    // grid before dying. Its journal is a valid prefix — that is the whole
    // crash-safety contract of the atomic append.
    println!("\n=== 2. kill after 2 points, then resume ===");
    let partial = &grid[..2];
    run_sweep(partial, operating_point_runner(), &journal("resumed.jsonl"), &cfg).unwrap();
    println!("  \"crashed\" with {} of {} points journaled", partial.len(), grid.len());
    let resumed =
        run_sweep(&grid, operating_point_runner(), &journal("resumed.jsonl"), &cfg).unwrap();
    println!(
        "  resumed: {} points from the journal, {} recomputed",
        resumed.resumed,
        grid.len() - resumed.resumed
    );
    assert_eq!(resumed.resumed, partial.len());
    assert_eq!(
        read(&journal("resumed.jsonl")),
        read(&journal("clean.jsonl")),
        "the merged journal must equal the uninterrupted one byte for byte"
    );
    println!("  merged journal is byte-identical to the uninterrupted sweep");

    // --- 3. chaos mode -------------------------------------------------------
    // With --chaos the kill rate is cranked up; either way the converged
    // artifact must match the reference exactly.
    let kill_probability = if chaos_requested { 0.9 } else { 0.4 };
    println!("\n=== 3. chaos mode (kill probability {kill_probability}) ===");
    let chaos_cfg = CoordinatorConfig::quick()
        .with_chaos(ChaosConfig { kill_probability, seed: 0xC4A0 });
    let chaos =
        run_sweep(&grid, operating_point_runner(), &journal("chaos.jsonl"), &chaos_cfg).unwrap();
    assert!(chaos.failures.is_empty(), "chaos sweeps must converge");
    println!("  {} worker kills absorbed via retry", chaos.retries);
    assert_eq!(
        read(&journal("chaos.jsonl")),
        read(&journal("clean.jsonl")),
        "the chaos journal must equal the uninterrupted one byte for byte"
    );
    println!("  chaos journal is byte-identical to the uninterrupted sweep");

    // --- 4. snapshot warm-start ----------------------------------------------
    // A long point that checkpoints a full simulator snapshot between chunks:
    // the first attempt is killed mid-point, the retry warm-starts from the
    // last checkpoint, and the final ledger still matches a run that never
    // crashed — the snapshot bit-identity contract doing its job.
    println!("\n=== 4. snapshot warm-start of a long point ===");
    let long_unit = WorkUnit::new("long-point", PolicyKind::NoDvfs, 0.10, 7);
    let runner: Arc<PointRunner> = Arc::new(|unit: &WorkUnit, ctx: &mut PointContext| {
        let net = torus_under_fire();
        let traffic = SyntheticTraffic::new(TrafficPattern::Uniform, unit.load, net.packet_length());
        let mut sim = NocSimulation::new(net, Box::new(traffic), unit.seed);
        if let Some(bytes) = ctx.load_checkpoint() {
            let snap = SimSnapshot::from_bytes(&bytes).expect("checkpoints are never torn");
            sim.restore(&snap).expect("checkpoint matches the configuration");
            println!("    warm-start from cycle {}", sim.current_cycle());
        }
        while sim.current_cycle() < 2_000 {
            sim.run_cycles(400);
            ctx.save_checkpoint(&sim.snapshot().to_bytes());
        }
        let c = sim.counters();
        Ok(format!(
            "cycle={} generated={} delivered={} dropped={} gated={}",
            c.cycle, c.flits_generated, c.packets_delivered, c.flits_dropped, c.gated_routers,
        ))
    });
    let warm_cfg = CoordinatorConfig::quick()
        .with_chaos(ChaosConfig { kill_probability: 1.0, seed: 1 });
    let killed = run_sweep(
        std::slice::from_ref(&long_unit),
        Arc::clone(&runner),
        &journal("warm.jsonl"),
        &warm_cfg,
    )
    .unwrap();
    assert!(killed.failures.is_empty());
    assert!(killed.retries > 0, "the first attempt must have been chaos-killed");
    let cold = run_sweep(&[long_unit], runner, &journal("cold.jsonl"), &cfg).unwrap();
    assert_eq!(
        killed.results[0].1, cold.results[0].1,
        "warm-started ledger must be bit-identical to the never-crashed run"
    );
    println!("  warm-started result: {}", killed.results[0].1);
    println!("  …identical to the never-crashed run");

    let _ = std::fs::remove_dir_all(&dir);
    println!("\nAll checkpoint/resume invariants held.");
}
