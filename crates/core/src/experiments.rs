//! One driver per figure of the paper's evaluation.
//!
//! | function | paper figure | contents |
//! |---|---|---|
//! | [`fig2_rmsd_vs_nodvfs`] | Fig. 2(a)(b) | RMSD vs No-DVFS latency (cycles) and delay (ns) vs injection rate, uniform 5×5 |
//! | [`fig4_fig6_baseline_comparison`] | Fig. 4(a)(b) and Fig. 6 | frequency, delay and power of No-DVFS / RMSD / DMSD on the baseline scenario |
//! | [`fig5_frequency_vs_vdd`] | Fig. 5 | the 28-nm FDSOI Fmax-vs-Vdd curve |
//! | [`fig7_synthetic_patterns`] | Fig. 7(a–h) | delay and power under tornado, bit-complement, transpose and neighbor traffic |
//! | [`fig8_sensitivity`] | Fig. 8(a–h) | sensitivity to VCs, buffer depth, packet size and mesh size |
//! | [`fig10_multimedia`] | Fig. 10(a–d) | delay and power of the H.264 and VCE applications vs application speed |
//!
//! Every driver returns [`PolicyComparison`] values: the three policy curves
//! over the same load grid, from which delay, latency, power and frequency
//! series can be read (Fig. 4 and Fig. 6 share one driver because they are
//! two views of the same sweep). The `quality` argument trades fidelity for
//! run time; [`ExperimentQuality::full`] matches the paper's simulation
//! budgets while [`ExperimentQuality::quick`] is meant for tests.

use crate::closed_loop::ClosedLoopConfig;
use crate::dmsd::DmsdConfig;
use crate::policy::PolicyKind;
use crate::rmsd::RmsdConfig;
use crate::saturation::{find_saturation_load, find_saturation_rate};
use crate::sweep::{load_grid, sweep_policies, PolicyCurve};
use noc_apps::{h264_encoder, video_conference_encoder, TaskGraph};
use noc_power::{FdsoiTech, OperatingPoint};
use noc_sim::{NetworkConfig, SyntheticTraffic, TopologyKind, TrafficPattern, TrafficSpec};
use serde::{Deserialize, Serialize};

/// The delay target used by DMSD throughout the paper (Fig. 4: 150 ns, chosen
/// as the RMSD delay at `λ_max`).
pub const PAPER_TARGET_DELAY_NS: f64 = 150.0;

/// The margin below the measured saturation rate at which RMSD aims to keep
/// the network (`λ_max = 0.9 × saturation` in the paper).
pub const PAPER_LAMBDA_MAX_MARGIN: f64 = 0.9;

/// Peak per-node injection rate (flits per node cycle) that the busiest
/// application node reaches at application speed 1.0. The paper publishes
/// only relative speeds; this constant sets the absolute traffic scale of the
/// multimedia experiments (see `DESIGN.md`).
pub const APP_PEAK_NODE_RATE: f64 = 0.35;

/// Simulation-budget knobs shared by all experiment drivers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentQuality {
    /// Control-loop timing for every operating point.
    pub loop_cfg: ClosedLoopConfig,
    /// Number of load points per sweep.
    pub load_points: usize,
    /// Cycle budget of each saturation-search probe.
    pub saturation_probe_cycles: u64,
    /// RNG seed shared by all runs (results are deterministic given the seed).
    pub seed: u64,
}

impl ExperimentQuality {
    /// Paper-fidelity budgets (10 000-cycle control period, 8 load points).
    pub fn full() -> Self {
        ExperimentQuality {
            loop_cfg: ClosedLoopConfig::paper(),
            load_points: 8,
            saturation_probe_cycles: 30_000,
            seed: 2015,
        }
    }

    /// A medium budget that preserves the figure shapes at a fraction of the
    /// cost (used by the default `figures` binary run).
    pub fn standard() -> Self {
        ExperimentQuality {
            loop_cfg: ClosedLoopConfig {
                control_period_cycles: 10_000,
                warmup_intervals: 5,
                measure_intervals: 12,
                max_settle_intervals: 80,
                settle_tolerance: 0.004,
            },
            load_points: 6,
            saturation_probe_cycles: 20_000,
            seed: 2015,
        }
    }

    /// A reduced budget for unit tests and smoke benches.
    pub fn quick() -> Self {
        ExperimentQuality {
            loop_cfg: ClosedLoopConfig::quick(),
            load_points: 3,
            saturation_probe_cycles: 6_000,
            seed: 2015,
        }
    }
}

/// The three policy curves of one scenario (one sub-plot of a paper figure).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicyComparison {
    /// Scenario label (traffic pattern, parameter value, application name…).
    pub label: String,
    /// The `λ_max` used by RMSD in this scenario (flits per node cycle).
    pub lambda_max: f64,
    /// Per-policy sweeps over the same load grid.
    pub curves: Vec<PolicyCurve>,
}

impl PolicyComparison {
    /// Returns the curve of the policy with the given name, if present.
    pub fn curve(&self, policy: &str) -> Option<&PolicyCurve> {
        self.curves.iter().find(|c| c.policy == policy)
    }

    /// The load grid shared by all curves.
    pub fn loads(&self) -> Vec<f64> {
        self.curves.first().map(|c| c.loads()).unwrap_or_default()
    }
}

/// The standard policy set of the paper's comparisons.
pub(crate) fn standard_policies(lambda_max: f64) -> Vec<PolicyKind> {
    vec![
        PolicyKind::NoDvfs,
        PolicyKind::Rmsd(RmsdConfig::with_lambda_max(lambda_max)),
        PolicyKind::Dmsd(DmsdConfig::with_target_ns(PAPER_TARGET_DELAY_NS)),
    ]
}

/// Builds the synthetic-traffic closure for a pattern and packet length.
fn synthetic_factory(
    pattern: TrafficPattern,
    packet_length: usize,
) -> impl Fn(f64) -> Box<dyn TrafficSpec> {
    move |rate: f64| -> Box<dyn TrafficSpec> {
        Box::new(SyntheticTraffic::new(pattern, rate, packet_length))
    }
}

/// Runs a three-policy comparison for one synthetic pattern on one network
/// configuration. This is the shared engine behind Figs. 2, 4, 6, 7 and 8.
pub fn compare_policies_synthetic(
    label: &str,
    net: &NetworkConfig,
    pattern: TrafficPattern,
    quality: &ExperimentQuality,
    policies: Option<Vec<PolicyKind>>,
) -> PolicyComparison {
    let saturation =
        find_saturation_rate(net, pattern, quality.saturation_probe_cycles, quality.seed);
    let lambda_max = PAPER_LAMBDA_MAX_MARGIN * saturation;
    let policies = policies.unwrap_or_else(|| standard_policies(lambda_max));
    let loads = load_grid(0.1 * lambda_max, lambda_max, quality.load_points);
    let factory = synthetic_factory(pattern, net.packet_length());
    let curves =
        sweep_policies(net, &loads, &factory, &policies, &quality.loop_cfg, quality.seed);
    PolicyComparison { label: label.to_string(), lambda_max, curves }
}

/// Fig. 2: RMSD vs No-DVFS on the baseline 5×5 uniform scenario.
///
/// The returned comparison contains two curves ("No-DVFS", "RMSD"); the
/// latency-in-cycles view is Fig. 2(a) and the delay-in-nanoseconds view is
/// Fig. 2(b). The RMSD delay curve is expected to be non-monotonic with a
/// peak near `λ_min`.
pub fn fig2_rmsd_vs_nodvfs(quality: &ExperimentQuality) -> PolicyComparison {
    let net = NetworkConfig::paper_baseline();
    let saturation = find_saturation_rate(
        &net,
        TrafficPattern::Uniform,
        quality.saturation_probe_cycles,
        quality.seed,
    );
    let lambda_max = PAPER_LAMBDA_MAX_MARGIN * saturation;
    let policies = vec![
        PolicyKind::NoDvfs,
        PolicyKind::Rmsd(RmsdConfig::with_lambda_max(lambda_max)),
    ];
    let mut comparison = compare_policies_synthetic(
        "uniform 5x5 (Fig. 2)",
        &net,
        TrafficPattern::Uniform,
        quality,
        Some(policies),
    );
    comparison.lambda_max = lambda_max;
    comparison
}

/// Figs. 4 and 6: the full No-DVFS / RMSD / DMSD comparison on the baseline
/// scenario. Fig. 4(a) reads the frequency series, Fig. 4(b) the delay
/// series, Fig. 6 the power series.
pub fn fig4_fig6_baseline_comparison(quality: &ExperimentQuality) -> PolicyComparison {
    let net = NetworkConfig::paper_baseline();
    compare_policies_synthetic(
        "uniform 5x5 (Figs. 4 & 6)",
        &net,
        TrafficPattern::Uniform,
        quality,
        None,
    )
}

/// Fig. 5: the maximum router frequency vs supply voltage in the 28-nm FDSOI
/// technology model.
pub fn fig5_frequency_vs_vdd(points: usize) -> Vec<OperatingPoint> {
    FdsoiTech::new().frequency_voltage_curve(points)
}

/// Fig. 7: delay and power under the four non-uniform synthetic patterns
/// (tornado, bit-complement, transpose, neighbor).
pub fn fig7_synthetic_patterns(quality: &ExperimentQuality) -> Vec<PolicyComparison> {
    let net = NetworkConfig::paper_baseline();
    [
        TrafficPattern::Tornado,
        TrafficPattern::BitComplement,
        TrafficPattern::Transpose,
        TrafficPattern::Neighbor,
    ]
    .iter()
    .map(|&pattern| {
        compare_policies_synthetic(pattern.name(), &net, pattern, quality, None)
    })
    .collect()
}

/// One axis of the Fig. 8 sensitivity analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SensitivityAxis {
    /// Number of virtual channels (paper values: 2, 4, 8).
    VirtualChannels,
    /// Buffer depth per virtual channel (4, 8, 16).
    BufferDepth,
    /// Packet length in flits (10, 15, 20).
    PacketSize,
    /// Mesh size (4×4, 5×5, 8×8).
    MeshSize,
}

impl SensitivityAxis {
    /// All four axes varied in Fig. 8.
    pub const ALL: [SensitivityAxis; 4] = [
        SensitivityAxis::VirtualChannels,
        SensitivityAxis::BufferDepth,
        SensitivityAxis::PacketSize,
        SensitivityAxis::MeshSize,
    ];

    /// The parameter values used in the paper for this axis.
    pub fn paper_values(self) -> Vec<usize> {
        match self {
            SensitivityAxis::VirtualChannels => vec![2, 4, 8],
            SensitivityAxis::BufferDepth => vec![4, 8, 16],
            SensitivityAxis::PacketSize => vec![10, 15, 20],
            SensitivityAxis::MeshSize => vec![4, 5, 8],
        }
    }

    /// Builds the network configuration for one value along this axis, with
    /// every other parameter held at the paper baseline.
    pub fn config(self, value: usize) -> NetworkConfig {
        let builder = NetworkConfig::builder();
        let builder = match self {
            SensitivityAxis::VirtualChannels => builder.virtual_channels(value),
            SensitivityAxis::BufferDepth => builder.buffer_depth(value),
            SensitivityAxis::PacketSize => builder.packet_length(value),
            SensitivityAxis::MeshSize => builder.mesh(value, value),
        };
        builder.build().expect("sensitivity configurations are valid")
    }

    /// A short label for reports (e.g. `"vc=4"`, `"mesh=8x8"`).
    pub fn label(self, value: usize) -> String {
        match self {
            SensitivityAxis::VirtualChannels => format!("vc={value}"),
            SensitivityAxis::BufferDepth => format!("buffers={value}"),
            SensitivityAxis::PacketSize => format!("packet={value}"),
            SensitivityAxis::MeshSize => format!("mesh={value}x{value}"),
        }
    }
}

/// Fig. 8: sensitivity of the comparison to virtual channels, buffer depth,
/// packet size and mesh size, under uniform traffic.
///
/// Returns one comparison per (axis, value) pair — twelve in total with the
/// paper's values. `axes` restricts the sweep (useful for tests); `None`
/// runs all four axes.
pub fn fig8_sensitivity(
    quality: &ExperimentQuality,
    axes: Option<&[SensitivityAxis]>,
) -> Vec<PolicyComparison> {
    let axes = axes.unwrap_or(&SensitivityAxis::ALL);
    let mut out = Vec::new();
    for &axis in axes {
        for value in axis.paper_values() {
            let net = axis.config(value);
            out.push(compare_policies_synthetic(
                &axis.label(value),
                &net,
                TrafficPattern::Uniform,
                quality,
                None,
            ));
        }
    }
    out
}

/// Runs a three-policy comparison for an application task graph on the
/// paper's mesh mapping, sweeping the application speed (Fig. 10's x axis,
/// 1.0 ≙ 75 frames/s).
pub fn compare_policies_application(
    graph: &TaskGraph,
    quality: &ExperimentQuality,
) -> PolicyComparison {
    compare_policies_application_on(graph, TopologyKind::Mesh, quality)
}

/// [`compare_policies_application`] generalized over the topology axis: the
/// same application mapping evaluated on a mesh or on a torus (wrap links
/// shorten the paths of edge-mapped task pairs).
pub fn compare_policies_application_on(
    graph: &TaskGraph,
    topology: TopologyKind,
    quality: &ExperimentQuality,
) -> PolicyComparison {
    let net = graph.network_config(topology).expect("application grids are valid");
    let packet_length = net.packet_length();
    let graph_for_factory = graph.clone();
    let factory = move |speed: f64| -> Box<dyn TrafficSpec> {
        Box::new(graph_for_factory.traffic_matrix(speed, packet_length, APP_PEAK_NODE_RATE))
    };
    // Determine the saturation *speed* and the average injection rate there,
    // which is what the RMSD controller compares its measurement against.
    let estimate = find_saturation_load(
        &net,
        &factory,
        2.0,
        quality.saturation_probe_cycles,
        quality.seed,
    );
    let lambda_max = PAPER_LAMBDA_MAX_MARGIN * estimate.offered_rate.max(1e-6);
    let max_speed = (PAPER_LAMBDA_MAX_MARGIN * estimate.load).clamp(0.2, 1.0);
    let loads = load_grid(0.1 * max_speed, max_speed, quality.load_points);
    let policies = standard_policies(lambda_max);
    let curves =
        sweep_policies(&net, &loads, &factory, &policies, &quality.loop_cfg, quality.seed);
    let label = match topology {
        TopologyKind::Mesh => graph.name().to_string(),
        TopologyKind::Torus => format!("{}/torus", graph.name()),
    };
    PolicyComparison { label, lambda_max, curves }
}

/// Fig. 10: delay and power of the H.264 encoder (4×4 mesh) and the Video
/// Conference Encoder (5×5 mesh) as a function of the application speed.
pub fn fig10_multimedia(quality: &ExperimentQuality) -> Vec<PolicyComparison> {
    vec![
        compare_policies_application(&h264_encoder(), quality),
        compare_policies_application(&video_conference_encoder(), quality),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny network/quality pair so that unit tests stay fast; the
    /// paper-scale drivers are exercised by the integration tests and the
    /// bench harness.
    fn tiny_quality() -> ExperimentQuality {
        ExperimentQuality {
            loop_cfg: ClosedLoopConfig {
                control_period_cycles: 800,
                warmup_intervals: 3,
                measure_intervals: 8,
                max_settle_intervals: 20,
                settle_tolerance: 0.02,
            },
            load_points: 2,
            saturation_probe_cycles: 3_000,
            seed: 7,
        }
    }

    fn tiny_net() -> NetworkConfig {
        NetworkConfig::builder()
            .mesh(4, 4)
            .virtual_channels(2)
            .buffer_depth(4)
            .packet_length(5)
            .build()
            .unwrap()
    }

    #[test]
    fn quality_presets_are_ordered_by_cost() {
        let full = ExperimentQuality::full();
        let std = ExperimentQuality::standard();
        let quick = ExperimentQuality::quick();
        assert!(full.loop_cfg.measure_intervals > std.loop_cfg.measure_intervals);
        assert!(std.loop_cfg.measure_intervals > quick.loop_cfg.measure_intervals);
        assert!(full.load_points >= std.load_points);
        assert!(std.load_points >= quick.load_points);
    }

    #[test]
    fn sensitivity_axis_configs_change_only_their_parameter() {
        let base = NetworkConfig::paper_baseline();
        let cfg = SensitivityAxis::VirtualChannels.config(2);
        assert_eq!(cfg.virtual_channels(), 2);
        assert_eq!(cfg.buffer_depth(), base.buffer_depth());
        assert_eq!(cfg.packet_length(), base.packet_length());
        let cfg = SensitivityAxis::MeshSize.config(8);
        assert_eq!(cfg.node_count(), 64);
        assert_eq!(cfg.virtual_channels(), base.virtual_channels());
        assert_eq!(SensitivityAxis::PacketSize.label(15), "packet=15");
        assert_eq!(SensitivityAxis::MeshSize.label(4), "mesh=4x4");
    }

    #[test]
    fn fig5_curve_spans_the_published_range() {
        let curve = fig5_frequency_vs_vdd(12);
        assert_eq!(curve.len(), 12);
        assert!((curve.first().unwrap().frequency.as_mhz() - 333.0).abs() < 2.0);
        assert!((curve.last().unwrap().frequency.as_ghz() - 1.0).abs() < 1e-3);
    }

    #[test]
    fn synthetic_comparison_produces_three_ordered_curves() {
        let q = tiny_quality();
        let cmp = compare_policies_synthetic(
            "tiny uniform",
            &tiny_net(),
            TrafficPattern::Uniform,
            &q,
            None,
        );
        assert_eq!(cmp.curves.len(), 3);
        assert_eq!(cmp.curves[0].policy, "No-DVFS");
        assert_eq!(cmp.curves[1].policy, "RMSD");
        assert_eq!(cmp.curves[2].policy, "DMSD");
        assert!(cmp.lambda_max > 0.0);
        assert_eq!(cmp.loads().len(), q.load_points);
        // Every policy was swept over the same grid.
        assert_eq!(cmp.curves[0].loads(), cmp.curves[1].loads());
        assert!(cmp.curve("RMSD").is_some());
        assert!(cmp.curve("unknown").is_none());
    }

    #[test]
    fn rmsd_power_never_exceeds_no_dvfs_power_on_the_tiny_scenario() {
        let q = tiny_quality();
        let cmp = compare_policies_synthetic(
            "tiny uniform",
            &tiny_net(),
            TrafficPattern::Uniform,
            &q,
            None,
        );
        let baseline = cmp.curve("No-DVFS").unwrap().powers_mw();
        let rmsd = cmp.curve("RMSD").unwrap().powers_mw();
        for (b, r) in baseline.iter().zip(rmsd.iter()) {
            assert!(r <= b, "RMSD ({r} mW) must not consume more than No-DVFS ({b} mW)");
        }
    }

    #[test]
    fn application_comparison_runs_on_the_h264_torus() {
        let q = tiny_quality();
        let cmp = compare_policies_application_on(&h264_encoder(), TopologyKind::Torus, &q);
        assert_eq!(cmp.label, "h264/torus");
        assert_eq!(cmp.curves.len(), 3);
        for curve in &cmp.curves {
            for p in &curve.points {
                assert!(p.result.packets_delivered > 0, "every point must deliver packets");
            }
        }
    }

    #[test]
    fn application_comparison_runs_on_the_h264_mesh() {
        let q = tiny_quality();
        let cmp = compare_policies_application(&h264_encoder(), &q);
        assert_eq!(cmp.label, "h264");
        assert_eq!(cmp.curves.len(), 3);
        assert!(cmp.lambda_max > 0.0);
        for curve in &cmp.curves {
            for p in &curve.points {
                assert!(p.result.packets_delivered > 0, "every point must deliver packets");
            }
        }
    }
}
