//! The H.264 / MPEG-4 encoder task graph of Fig. 9(a), mapped on a 4×4 mesh.
//!
//! The 15 computation blocks and the 19 edge weights (packets per encoded
//! frame) are those printed in the paper's figure; the exact edge endpoints
//! and the vertex placement are a documented reconstruction that follows the
//! standard H.264 encoder dataflow (see `DESIGN.md`, substitution table).

use crate::task_graph::{TaskEdge, TaskGraph, TaskNode};

/// Builds the H.264 encoder task graph mapped on a 4×4 mesh.
///
/// ```
/// let app = noc_apps::h264_encoder();
/// assert_eq!(app.tasks().len(), 15);
/// assert_eq!(app.edges().len(), 19);
/// ```
pub fn h264_encoder() -> TaskGraph {
    // Task list with its 4x4 mapping (row-major mesh indices). Heavily
    // communicating stages are placed on neighbouring nodes.
    let tasks = vec![
        task("video in", 0),
        task("yuv generator", 1),
        task("padding for mv computation", 2),
        task("chroma resampler", 3),
        task("sample hold", 4),
        task("motion estimation", 5),
        task("motion compensation", 6),
        task("transform dct", 7),
        task("de-blocking filter", 8),
        task("predictor", 9),
        task("idct", 10),
        task("quantization", 11),
        task("stream out", 12),
        task("entropy encoder", 13),
        task("iq", 14),
    ];
    let index = |name: &str| {
        tasks
            .iter()
            .position(|t| t.name == name)
            .unwrap_or_else(|| panic!("unknown task {name}"))
    };
    let edge = |src: &str, dst: &str, packets: f64| TaskEdge {
        src_task: index(src),
        dst_task: index(dst),
        packets_per_frame: packets,
    };
    // The 19 weights of Fig. 9(a), each used exactly once.
    let edges = vec![
        edge("video in", "yuv generator", 420.0),
        edge("yuv generator", "padding for mv computation", 840.0),
        edge("yuv generator", "chroma resampler", 280.0),
        edge("padding for mv computation", "motion estimation", 280.0),
        edge("chroma resampler", "motion estimation", 280.0),
        edge("motion estimation", "motion compensation", 560.0),
        edge("motion compensation", "transform dct", 140.0),
        edge("transform dct", "quantization", 420.0),
        edge("quantization", "iq", 210.0),
        edge("quantization", "entropy encoder", 66.0),
        edge("iq", "idct", 3.0),
        edge("idct", "predictor", 3.0),
        edge("predictor", "motion compensation", 228.0),
        edge("entropy encoder", "stream out", 66.0),
        edge("de-blocking filter", "sample hold", 24.0),
        edge("idct", "de-blocking filter", 60.0),
        edge("sample hold", "predictor", 24.0),
        edge("motion compensation", "de-blocking filter", 221.0),
        edge("predictor", "transform dct", 228.0),
    ];
    TaskGraph::new("h264", 4, 4, tasks, edges).expect("the built-in H.264 graph is valid")
}

fn task(name: &str, mesh_node: usize) -> TaskNode {
    TaskNode { name: name.to_string(), mesh_node }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_sim::TrafficSpec;

    #[test]
    fn graph_matches_figure_9a_inventory() {
        let g = h264_encoder();
        assert_eq!(g.mesh_size(), (4, 4));
        assert_eq!(g.tasks().len(), 15, "Fig. 9(a) has 15 computation blocks");
        assert_eq!(g.edges().len(), 19, "Fig. 9(a) prints 19 edge weights");
        // The sum of the printed weights.
        assert!((g.packets_per_frame() - 4353.0).abs() < 1e-9);
    }

    #[test]
    fn all_published_weights_appear_exactly_once() {
        let g = h264_encoder();
        let mut weights: Vec<f64> = g.edges().iter().map(|e| e.packets_per_frame).collect();
        weights.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut expected = vec![
            420.0, 840.0, 280.0, 280.0, 280.0, 560.0, 140.0, 420.0, 210.0, 66.0, 3.0, 3.0, 228.0,
            66.0, 24.0, 60.0, 24.0, 221.0, 228.0,
        ];
        expected.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(weights, expected);
    }

    #[test]
    fn every_task_maps_inside_the_mesh_without_collisions() {
        let g = h264_encoder();
        let mut nodes: Vec<usize> = g.tasks().iter().map(|t| t.mesh_node).collect();
        nodes.sort_unstable();
        nodes.dedup();
        assert_eq!(nodes.len(), g.tasks().len(), "each task has its own mesh node");
        assert!(nodes.iter().all(|&n| n < 16));
    }

    #[test]
    fn traffic_matrix_is_hotspot_shaped() {
        let g = h264_encoder();
        let m = g.traffic_matrix(1.0, 20, 0.3);
        // The YUV generator (video pipeline front-end) is by far the busiest
        // source: its row total must dominate the average.
        let yuv_node = g.tasks()[g.task_index("yuv generator").unwrap()].mesh_node;
        assert!(m.row_total(yuv_node) > 3.0 * m.offered_load());
        // The unused 16th node carries no traffic.
        let used: Vec<usize> = g.tasks().iter().map(|t| t.mesh_node).collect();
        for node in 0..16 {
            if !used.contains(&node) {
                assert_eq!(m.row_total(node), 0.0);
            }
        }
    }

    #[test]
    fn speed_scaling_is_linear() {
        let g = h264_encoder();
        let full = g.traffic_matrix(1.0, 20, 0.3);
        let quarter = g.traffic_matrix(0.25, 20, 0.3);
        assert!((quarter.offered_load() - 0.25 * full.offered_load()).abs() < 1e-12);
    }
}
