//! Property tests for every [`TrafficPattern`] and for the bursty source:
//! destinations stay in range and are never the source itself, validation
//! gates exactly the undefined combinations, and the deterministic patterns
//! are permutations (of their non-fixed nodes) wherever their doc comments
//! claim so.

use noc_sim::{BurstyTraffic, Topology, TopologyKind, TrafficPattern, TrafficSpec};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arbitrary_topology() -> impl Strategy<Value = Topology> {
    (
        prop_oneof![Just(TopologyKind::Mesh), Just(TopologyKind::Torus)],
        2usize..=6,
        2usize..=6,
    )
        .prop_map(|(kind, w, h)| Topology::with_kind(kind, w, h))
}

fn arbitrary_pattern() -> impl Strategy<Value = TrafficPattern> {
    (0usize..TrafficPattern::ALL.len()).prop_map(|i| TrafficPattern::ALL[i])
}

proptest! {
    #![proptest_config(ProptestConfig::default())]

    /// For every pattern, topology and source: destinations are in range and
    /// never `Some(src)`, across repeated draws (covers the random patterns).
    #[test]
    fn destinations_are_in_range_and_never_the_source(
        topo in arbitrary_topology(),
        pattern in arbitrary_pattern(),
        seed in 0u64..10_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = topo.node_count();
        for src in 0..n {
            for _ in 0..8 {
                if let Some(dst) = pattern.destination(src, &topo, &mut rng) {
                    prop_assert!(dst < n, "{}: dst {} out of range on {}", pattern.name(), dst, topo);
                    prop_assert!(dst != src, "{}: sent to self on {}", pattern.name(), topo);
                }
            }
        }
    }

    /// Deterministic patterns are permutations wherever they are valid:
    /// mapping every source to its destination (or itself, for the fixed
    /// points that do not inject) hits every node exactly once. Random
    /// patterns are excluded by `is_deterministic`.
    #[test]
    fn deterministic_patterns_are_permutations(
        topo in arbitrary_topology(),
        pattern in arbitrary_pattern(),
        seed in 0u64..1_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = topo.node_count();
        if !pattern.is_deterministic() || pattern.validate_for(&topo).is_err() {
            return;
        }
        let mut hit = vec![false; n];
        for src in 0..n {
            let image = pattern.destination(src, &topo, &mut rng).unwrap_or(src);
            prop_assert!(
                !hit[image],
                "{} on {}: node {} hit twice", pattern.name(), topo, image
            );
            hit[image] = true;
        }
        prop_assert!(hit.iter().all(|&h| h), "{} on {}: not surjective", pattern.name(), topo);
        // Determinism: a second pass with a different RNG maps identically.
        let mut rng2 = StdRng::seed_from_u64(seed.wrapping_add(1));
        for src in 0..n {
            prop_assert_eq!(
                pattern.destination(src, &topo, &mut rng),
                pattern.destination(src, &topo, &mut rng2)
            );
        }
    }

    /// Validation gates exactly the undefined combinations: transpose off
    /// square grids, bit permutations off power-of-two node counts —
    /// everything else passes.
    #[test]
    fn validation_matches_the_pattern_domains(
        topo in arbitrary_topology(),
        pattern in arbitrary_pattern(),
    ) {
        let valid = pattern.validate_for(&topo).is_ok();
        let expected = match pattern {
            TrafficPattern::Transpose => topo.width() == topo.height(),
            TrafficPattern::Shuffle | TrafficPattern::BitReverse => {
                topo.node_count().is_power_of_two()
            }
            _ => true,
        };
        prop_assert_eq!(valid, expected, "{} on {}", pattern.name(), topo);
    }

    /// The bursty source honours the pattern contract (range, no self-sends)
    /// and reports its configured average as the offered load.
    #[test]
    fn bursty_source_respects_the_pattern_contract(
        topo in arbitrary_topology(),
        pattern in arbitrary_pattern(),
        rate in 0.01f64..0.4,
        seed in 0u64..1_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut traffic = BurstyTraffic::new(pattern, rate, 5, 50.0, 3.0);
        prop_assert!((traffic.offered_load() - rate).abs() < 1e-12);
        let n = topo.node_count();
        for cycle in 0..400 {
            let src = cycle % n;
            if let Some(dst) = traffic.maybe_generate(src, cycle as u64, &topo, &mut rng) {
                prop_assert!(dst < n && dst != src, "{}: bad dst {}", pattern.name(), dst);
            }
        }
    }
}
