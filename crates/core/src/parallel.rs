//! A small scoped-thread fork/join executor for embarrassingly parallel
//! sweeps.
//!
//! The build environment is offline, so instead of `rayon` this module
//! provides the one primitive the sweep layer needs: [`par_map`], an
//! order-preserving parallel map over a slice. Work is handed out through an
//! atomic cursor (dynamic load balancing — operating points near saturation
//! take far longer than light-load points), results carry their index back,
//! and the output is reassembled in input order, so **parallel execution is
//! bit-identical to serial execution** as long as `f` itself is
//! deterministic. Every operating point seeds its own RNG from `(seed)`
//! explicitly, so this holds across the whole experiment layer.
//!
//! Thread count comes from [`worker_threads`]: the `NOC_SWEEP_THREADS`
//! environment variable when set (`1` forces serial execution, useful for
//! parity checks), otherwise `std::thread::available_parallelism`.

use std::any::Any;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A panic caught while computing one point of a parallel map.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PointPanic {
    /// Input index of the point whose closure panicked.
    pub index: usize,
    /// The panic message (`"<non-string payload>"` when the payload is not
    /// a string).
    pub message: String,
}

impl std::fmt::Display for PointPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "point {} panicked: {}", self.index, self.message)
    }
}

impl std::error::Error for PointPanic {}

/// Number of worker threads a parallel sweep will use.
///
/// Controlled by `NOC_SWEEP_THREADS` (values `< 1` are clamped to 1); falls
/// back to the machine's available parallelism.
pub fn worker_threads() -> usize {
    if let Ok(v) = std::env::var("NOC_SWEEP_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Applies `f` to every element of `items` across [`worker_threads`] scoped
/// threads and returns the results in input order.
///
/// `f` receives `(index, &item)`. With one worker (or one item) the map runs
/// inline on the calling thread — no spawn overhead for the serial case.
///
/// # Panics
///
/// Propagates panics from `f` — but only after the **whole** grid has been
/// computed: a panicking point no longer takes down (or poisons) the other
/// workers mid-sweep, so every finished point's side effects (journal
/// appends, logs) land before the panic resurfaces. When several points
/// panic, the lowest-index payload is rethrown, deterministically. Use
/// [`par_try_map`] to receive panics as per-point errors instead.
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let caught = par_catch_with_workers(items, worker_threads(), f);
    let mut out = Vec::with_capacity(caught.len());
    for result in caught {
        match result {
            Ok(value) => out.push(value),
            Err((payload, _)) => std::panic::resume_unwind(payload),
        }
    }
    out
}

/// The panic-isolating variant of [`par_map`]: every point where `f`
/// panicked comes back as `Err(PointPanic)` while the rest of the grid
/// completes normally. Results stay in input order.
pub fn par_try_map<T, U, F>(items: &[T], f: F) -> Vec<Result<U, PointPanic>>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    par_catch_with_workers(items, worker_threads(), f)
        .into_iter()
        .enumerate()
        .map(|(index, result)| {
            result.map_err(|(_, message)| PointPanic { index, message })
        })
        .collect()
}

/// A caught per-point panic in transit: the raw payload (so [`par_map`] can
/// rethrow it unchanged) plus a rendered message.
type CaughtPanic = (Box<dyn Any + Send>, String);

/// Shared engine of [`par_map`]/[`par_try_map`] with an explicit worker
/// count (testing hook). Each point runs under `catch_unwind`.
fn par_catch_with_workers<T, U, F>(
    items: &[T],
    workers: usize,
    f: F,
) -> Vec<Result<U, CaughtPanic>>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let run_point = |index: usize| {
        std::panic::catch_unwind(AssertUnwindSafe(|| f(index, &items[index]))).map_err(|payload| {
            // `&*payload`: reborrow through the Box, or the Box itself (also
            // `Any`) would be what gets downcast.
            let message = panic_message(&*payload);
            (payload, message)
        })
    };

    let workers = workers.min(items.len().max(1));
    if workers <= 1 || items.len() <= 1 {
        return (0..items.len()).map(run_point).collect();
    }

    // Dynamic work distribution: each worker repeatedly claims the next
    // unprocessed index. Results are collected per worker with their indices
    // and spliced back into input order afterwards.
    let cursor = AtomicUsize::new(0);
    type Caught<U> = Result<U, CaughtPanic>;
    let collected: Mutex<Vec<(usize, Caught<U>)>> = Mutex::new(Vec::with_capacity(items.len()));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut local: Vec<(usize, Caught<U>)> = Vec::new();
                loop {
                    let index = cursor.fetch_add(1, Ordering::Relaxed);
                    if index >= items.len() {
                        break;
                    }
                    local.push((index, run_point(index)));
                }
                collected.lock().expect("no poisoned worker").extend(local);
            });
        }
    });

    let mut indexed = collected.into_inner().expect("all workers joined");
    indexed.sort_by_key(|(index, _)| *index);
    debug_assert_eq!(indexed.len(), items.len());
    indexed.into_iter().map(|(_, value)| value).collect()
}

/// [`par_map`] with an explicit worker count (kept as the test hook of the
/// pre-hardening API).
#[cfg(test)]
fn par_map_with_workers<T, U, F>(items: &[T], workers: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    par_catch_with_workers(items, workers, f)
        .into_iter()
        .map(|r| match r {
            Ok(value) => value,
            Err((payload, _)) => std::panic::resume_unwind(payload),
        })
        .collect()
}

fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string payload>".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_preserve_input_order() {
        let items: Vec<usize> = (0..100).collect();
        let out = par_map(&items, |i, &x| {
            // Uneven work so completion order differs from input order.
            let spin = (x * 7919) % 97;
            let mut acc = 0u64;
            for k in 0..spin * 1000 {
                acc = acc.wrapping_add(k as u64);
            }
            std::hint::black_box(acc);
            (i, x * 2)
        });
        for (i, (idx, doubled)) in out.iter().enumerate() {
            assert_eq!(*idx, i);
            assert_eq!(*doubled, i * 2);
        }
    }

    #[test]
    fn matches_serial_map() {
        let items: Vec<u64> = (0..37).map(|i| i * 3 + 1).collect();
        let serial: Vec<u64> = items.iter().map(|&x| x * x + 1).collect();
        let parallel = par_map(&items, |_, &x| x * x + 1);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(&empty, |_, &x| x).is_empty());
        assert_eq!(par_map(&[42u32], |_, &x| x + 1), vec![43]);
    }

    #[test]
    fn a_panicking_point_does_not_lose_the_other_points() {
        let items: Vec<usize> = (0..24).collect();
        let out = par_try_map(&items, |_, &x| {
            if x == 7 || x == 19 {
                panic!("injected panic at {x}");
            }
            x * 10
        });
        assert_eq!(out.len(), 24);
        for (i, result) in out.iter().enumerate() {
            if i == 7 || i == 19 {
                let err = result.as_ref().unwrap_err();
                assert_eq!(err.index, i);
                assert_eq!(err.message, format!("injected panic at {i}"));
            } else {
                assert_eq!(*result.as_ref().unwrap(), i * 10);
            }
        }
    }

    #[test]
    fn par_map_still_propagates_a_panic_after_the_grid_completes() {
        let items: Vec<usize> = (0..8).collect();
        let completed = AtomicUsize::new(0);
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            par_map(&items, |_, &x| {
                if x == 3 {
                    panic!("boom");
                }
                completed.fetch_add(1, Ordering::Relaxed);
                x
            })
        }));
        assert!(caught.is_err(), "the panic must still surface from par_map");
        assert_eq!(
            completed.load(Ordering::Relaxed),
            7,
            "every healthy point must have completed before the rethrow"
        );
    }

    #[test]
    fn explicit_worker_counts_agree() {
        // No env mutation here: setenv races concurrently running tests.
        // The NOC_SWEEP_THREADS override only feeds the worker count, which
        // is exercised directly through the internal hook.
        let items: Vec<usize> = (0..16).collect();
        let serial = par_map_with_workers(&items, 1, |_, &x| x * 3);
        let parallel = par_map_with_workers(&items, 4, |_, &x| x * 3);
        assert_eq!(serial, parallel);
        assert_eq!(serial.len(), 16);
    }
}
