//! # noc-dvfs — rate-based vs delay-based global DVFS control for NoCs
//!
//! This crate is the primary contribution of the reproduced paper
//! (*Casu & Giaccone, "Rate-based vs Delay-based Control for DVFS in NoC",
//! DATE 2015*): two policies that scale the clock frequency (and hence the
//! supply voltage) of an **entire** NoC at run time,
//!
//! * [`Rmsd`] — *Rate-based Max Slow Down*: measure the average node injection
//!   rate `λ_node` and slow the NoC clock to
//!   `F_noc = F_node · λ_node / λ_max`, the lowest frequency that still keeps
//!   the network below saturation. Maximum power saving, but the packet delay
//!   in nanoseconds becomes large and non-monotonic in the load.
//! * [`Dmsd`] — *Delay-based Max Slow Down*: a proportional-integral loop
//!   ([`PiController`]) measures the average end-to-end packet delay and
//!   drives the frequency so that the delay tracks a target (150 ns in the
//!   paper). It saves less power than RMSD (by 20–50 %) but keeps the delay
//!   2–3× lower — the better power-delay trade-off.
//! * [`NoDvfs`] — the always-at-maximum-frequency baseline.
//!
//! The [`closed_loop`] module co-simulates a policy with the cycle-accurate
//! [`noc_sim`] network and the [`noc_power`] power model; [`experiments`]
//! exposes one driver per figure of the paper, and [`sweep`]/[`summary`]
//! provide the generic sweep machinery and the headline power/delay ratios.
//!
//! ## Quick example
//!
//! ```
//! use noc_dvfs::{ClosedLoopConfig, DmsdConfig, PolicyKind, run_operating_point};
//! use noc_sim::{NetworkConfig, SyntheticTraffic, TrafficPattern};
//!
//! # fn main() {
//! let net = NetworkConfig::builder()
//!     .mesh(4, 4)
//!     .virtual_channels(2)
//!     .buffer_depth(4)
//!     .packet_length(5)
//!     .build()
//!     .unwrap();
//! let traffic = SyntheticTraffic::new(TrafficPattern::Uniform, 0.10, 5);
//! let loop_cfg = ClosedLoopConfig::quick();
//! let point = run_operating_point(
//!     &net,
//!     Box::new(traffic),
//!     PolicyKind::Dmsd(DmsdConfig::with_target_ns(150.0)),
//!     &loop_cfg,
//!     42,
//! );
//! assert!(point.power_mw > 0.0);
//! assert!(point.avg_delay_ns > 0.0);
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod closed_loop;
pub mod coordinator;
pub mod dmsd;
pub mod experiments;
pub mod gating;
pub mod island;
pub mod parallel;
pub mod pi;
pub mod policy;
pub mod rmsd;
pub mod saturation;
pub mod scenario;
pub mod summary;
pub mod sweep;
pub mod tenant;

pub use closed_loop::{
    degraded_mode_report, run_operating_point, ClosedLoopConfig, OperatingPointResult,
};
pub use coordinator::{
    decode_operating_point, encode_operating_point, profile_path, run_sweep, shard_policy_grid,
    write_atomic, ChaosConfig, CoordinatorConfig, CoordinatorError, PointContext, PointFailure,
    PointRunner, SweepProfile, SweepReport, WorkUnit,
};
pub use dmsd::{Dmsd, DmsdConfig};
pub use gating::{
    run_operating_point_gated, BreakEvenConfig, CombinedController, GatedOperatingPointResult,
    GatingPolicyKind, DEFAULT_WAKEUP_LATENCY,
};
pub use island::{
    run_operating_point_islands, IslandOperatingPointResult, IslandSummary, MultiIslandController,
};
pub use parallel::{par_map, par_try_map, worker_threads, PointPanic};
pub use pi::PiController;
pub use policy::{ControlMeasurement, DvfsPolicy, NoDvfs, PolicyKind};
pub use rmsd::{Rmsd, RmsdConfig};
pub use saturation::find_saturation_rate;
pub use scenario::{
    compare_policies_scenario, scenario_grid, scenario_grid_faulted, scenario_grid_gated,
    scenario_grid_islands, scenario_grid_tenants, sweep_scenario_gated, sweep_scenario_grid,
    sweep_scenario_islands, FaultProfile, GatedSweepPoint, InjectionProcess, IslandSweepPoint,
    Scenario, TenantMix,
};
pub use summary::TradeOffSummary;
pub use sweep::{PolicyCurve, SweepPoint};
pub use tenant::{
    compose_tenants, run_tenants, MappingPolicy, TenantComposeError, TenantComposition, TenantQos,
    TenantReport, TenantWorkload,
};
