//! # noc-dvfs-repro — umbrella crate
//!
//! Reproduction of *"Rate-based vs Delay-based Control for DVFS in NoC"*
//! (M. R. Casu and P. Giaccone, DATE 2015). This crate simply re-exports the
//! four workspace crates so that examples and downstream users can depend on
//! a single name:
//!
//! * [`sim`] (`noc-sim`) — cycle-accurate 2D-mesh virtual-channel NoC
//!   simulator with a run-time-scalable network clock;
//! * [`power`] (`noc-power`) — 28-nm FDSOI frequency/voltage model and
//!   activity-driven power estimation;
//! * [`apps`] (`noc-apps`) — H.264 and Video Conference Encoder task graphs
//!   and their traffic matrices;
//! * [`dvfs`] (`noc-dvfs`) — the RMSD and DMSD policies, the closed-loop
//!   co-simulation and the drivers for every figure of the paper.
//!
//! ## Quickstart
//!
//! ```
//! use noc_dvfs_repro::dvfs::{run_operating_point, ClosedLoopConfig, DmsdConfig, PolicyKind};
//! use noc_dvfs_repro::sim::{NetworkConfig, SyntheticTraffic, TrafficPattern};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A small mesh so the example runs in a blink; the paper baseline is
//! // NetworkConfig::paper_baseline() (5x5, 8 VCs, 20-flit packets).
//! let net = NetworkConfig::builder()
//!     .mesh(4, 4)
//!     .virtual_channels(2)
//!     .buffer_depth(4)
//!     .packet_length(5)
//!     .build()?;
//! let traffic = SyntheticTraffic::new(TrafficPattern::Uniform, 0.1, 5);
//! let point = run_operating_point(
//!     &net,
//!     Box::new(traffic),
//!     PolicyKind::Dmsd(DmsdConfig::with_target_ns(150.0)),
//!     &ClosedLoopConfig::quick(),
//!     1,
//! );
//! println!("delay = {:.1} ns, power = {:.1} mW", point.avg_delay_ns, point.power_mw);
//! # Ok(())
//! # }
//! ```
//!
//! See `examples/` for runnable end-to-end scenarios and `crates/bench` for
//! the harness that regenerates every figure of the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use noc_apps as apps;
pub use noc_dvfs as dvfs;
pub use noc_power as power;
pub use noc_sim as sim;
