//! Scenario-engine sweep: the topology × pattern × injection-process grid.
//!
//! ```text
//! cargo run --release --example torus_scenarios [--grid]
//! ```
//!
//! By default this runs the headline new scenario end to end — a **torus**
//! with **hotspot** traffic released by the **bursty** (Markov-modulated)
//! process — through the saturation search, the three-policy closed-loop
//! sweep, and a torus evaluation of the H.264 application mapping. With
//! `--grid` it instead sweeps every scenario the 4×4 base configuration
//! admits (2 topologies × 8 patterns × 2 processes) and prints one summary
//! line per scenario.

use noc_dvfs_repro::apps::h264_encoder;
use noc_dvfs_repro::dvfs::experiments::{compare_policies_application_on, ExperimentQuality};
use noc_dvfs_repro::dvfs::scenario::{compare_policies_scenario, scenario_grid, Scenario};
use noc_dvfs_repro::dvfs::PolicyCurve;
use noc_dvfs_repro::sim::{NetworkConfig, TopologyKind, TrafficPattern};

fn small_base() -> NetworkConfig {
    NetworkConfig::builder()
        .mesh(4, 4)
        .virtual_channels(2)
        .buffer_depth(4)
        .packet_length(5)
        .build()
        .expect("base configuration is valid")
}

fn print_curves(curves: &[PolicyCurve]) {
    println!(
        "{:>10} {:>10} {:>14} {:>12} {:>12} {:>10}",
        "policy", "load", "latency (cyc)", "delay (ns)", "power (mW)", "freq (GHz)"
    );
    for curve in curves {
        for point in &curve.points {
            println!(
                "{:>10} {:>10.3} {:>14.1} {:>12.1} {:>12.1} {:>10.3}",
                curve.policy,
                point.load,
                point.result.avg_latency_cycles,
                point.result.avg_delay_ns,
                point.result.power_mw,
                point.result.avg_frequency_ghz,
            );
        }
    }
}

fn main() {
    let grid_mode = std::env::args().any(|a| a == "--grid");
    let base = small_base();
    let quality = ExperimentQuality::quick();

    if grid_mode {
        let grid = scenario_grid(&base, true);
        println!("Sweeping {} scenarios on the 4x4 base configuration…", grid.len());
        println!(
            "{:>28} {:>10} {:>14} {:>12}",
            "scenario", "lambda_max", "RMSD P (mW)", "DMSD P (mW)"
        );
        for scenario in grid {
            let cmp = compare_policies_scenario(&base, scenario, &quality)
                .expect("grid scenarios are valid");
            let power_at_top = |policy: &str| {
                cmp.curve(policy)
                    .and_then(|c| c.points.last())
                    .map(|p| p.result.power_mw)
                    .unwrap_or(f64::NAN)
            };
            println!(
                "{:>28} {:>10.3} {:>14.1} {:>12.1}",
                cmp.label,
                cmp.lambda_max,
                power_at_top("RMSD"),
                power_at_top("DMSD"),
            );
        }
        return;
    }

    let scenario = Scenario::new(TopologyKind::Torus, TrafficPattern::Hotspot).bursty();
    println!("Scenario: {} on the 4x4 base configuration", scenario.label());
    let cmp =
        compare_policies_scenario(&base, scenario, &quality).expect("scenario is valid on 4x4");
    println!("lambda_max (90% of measured saturation) = {:.3} flits/cycle/node", cmp.lambda_max);
    print_curves(&cmp.curves);

    println!();
    println!("H.264 application mapping on a torus (same placement, wrap links):");
    let app = compare_policies_application_on(&h264_encoder(), TopologyKind::Torus, &quality);
    println!("label = {}, lambda_max = {:.3}", app.label, app.lambda_max);
    print_curves(&app.curves);
}
