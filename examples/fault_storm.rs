//! Fault tolerance end to end: permanent faults, transient storms, and the
//! degraded-mode accounting that prices the difference.
//!
//! ```text
//! cargo run --release --example fault_storm
//! ```
//!
//! Two demonstrations:
//!
//! 1. **Routing around a permanent fault.** A link on the unique XY path of
//!    a flow is killed at cycle 0. Dimension-ordered routing strands every
//!    packet of the flow (visible as queued/buffered backlog, zero
//!    deliveries); minimal-adaptive routing with escape VCs detours and
//!    keeps delivering everything — the topology is still fully connected,
//!    and the conservation ledger `generated = received + queued + buffered
//!    + in flight + dropped` stays exact for both.
//!
//! 2. **A transient fault storm under the closed loop.** An 8×8 mesh runs
//!    the same operating point twice — once fault-free, once under a hazard
//!    process that keeps flipping links and routers down and back up — and
//!    the [`DegradedModeReport`] prices the difference: reachability,
//!    dropped flits, latency inflation, and the energy the detours cost.

use noc_dvfs_repro::dvfs::{
    degraded_mode_report, run_operating_point, ClosedLoopConfig, PolicyKind,
};
use noc_dvfs_repro::sim::{
    Direction, FaultConfig, FaultEvent, FaultTarget, HazardConfig, MatrixTraffic, NetworkConfig,
    NocSimulation, RoutingKind, SyntheticTraffic, TrafficPattern,
};

/// Part 1: one dead link, two routing algorithms, 4×4 mesh.
fn permanent_fault_demo() {
    println!("=== permanent fault: XY strands, minimal-adaptive delivers ===\n");
    // Kill the 5→6 link before any traffic; the single flow 4→7 crosses it
    // under XY routing.
    let faults = FaultConfig::scheduled(vec![FaultEvent::permanent(
        FaultTarget::Link { node: 5, dir: Direction::East },
        0,
    )]);
    for routing in [RoutingKind::Xy, RoutingKind::MinimalAdaptive] {
        let cfg = NetworkConfig::builder()
            .mesh(4, 4)
            .virtual_channels(2)
            .buffer_depth(4)
            .packet_length(4)
            .routing(routing)
            .faults(faults.clone())
            .build()
            .expect("4x4 faulted mesh configuration is valid");
        let mut rates = vec![vec![0.0; 16]; 16];
        rates[4][7] = 0.2;
        let traffic = MatrixTraffic::new(rates, cfg.packet_length());
        let mut sim = NocSimulation::new(cfg, Box::new(traffic), 2015);
        sim.run_cycles(8_000);
        // One diagnostic bundle instead of five separate getters; the
        // stranded backlog is the ledger's in-transit term.
        let c = sim.counters();
        println!(
            "{:<9} delivered {:>4} packets, stranded {:>5} flits, dropped {:>2}, \
             reachability {:.2}",
            routing.name(),
            c.packets_delivered,
            c.in_transit_flits(),
            c.flits_dropped,
            c.reachable_pairs,
        );
    }
}

/// Part 2: a sustained transient storm on an 8×8 mesh, priced against the
/// fault-free run of the same operating point.
fn storm_demo() {
    println!("\n=== transient storm: degraded-mode report ===\n");
    let load = 0.05;
    let base = NetworkConfig::builder()
        .mesh(8, 8)
        .virtual_channels(2)
        .routing(RoutingKind::MinimalAdaptive)
        .build()
        .expect("8x8 mesh configuration is valid");
    let stormy = base
        .to_builder()
        .faults(FaultConfig::none().with_hazard(HazardConfig {
            link_rate: 5e-5,
            router_rate: 2e-5,
            transient_fraction: 1.0,
            transient_duration: 300,
        }))
        .build()
        .expect("hazard configuration is valid");
    let loop_cfg = ClosedLoopConfig::quick();
    let traffic = |cfg: &NetworkConfig| {
        Box::new(SyntheticTraffic::new(TrafficPattern::Uniform, load, cfg.packet_length()))
    };
    let fault_free =
        run_operating_point(&base, traffic(&base), PolicyKind::NoDvfs, &loop_cfg, 2015);
    let faulted =
        run_operating_point(&stormy, traffic(&stormy), PolicyKind::NoDvfs, &loop_cfg, 2015);
    let report = degraded_mode_report(&faulted, &fault_free);
    println!("reachability        {:>10.3}", report.reachability);
    println!("packets delivered   {:>10}", report.packets_delivered);
    println!("flits dropped       {:>10}", report.flits_dropped);
    println!(
        "latency             {:>10.1} cycles  ({:.2}x fault-free)",
        report.avg_latency_cycles,
        report.latency_inflation()
    );
    println!(
        "energy per flit     {:>10.1} pJ      (fault-free {:.1} pJ)",
        report.energy_per_flit_pj, report.fault_free_energy_per_flit_pj
    );
    println!("rerouting energy    {:>10.1} pJ", report.rerouting_energy_pj());
    println!("degraded            {:>10}", report.is_degraded());
}

fn main() {
    permanent_fault_demo();
    storm_demo();
}
