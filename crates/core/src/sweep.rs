//! Load sweeps: run one policy over a list of load levels.
//!
//! Every operating point of a sweep is an independent simulation with an
//! explicit seed, so sweeps are embarrassingly parallel: [`sweep_policies`]
//! and [`sweep_policy`] flatten the `(policy × load)` grid into one work list
//! and fan it out over the [`parallel`](crate::parallel) executor. Results
//! are reassembled in grid order and are **bit-identical** to the serial
//! variants ([`sweep_policies_serial`]) for the same seeds; set
//! `NOC_SWEEP_THREADS=1` to force serial execution globally.

use crate::closed_loop::{run_operating_point, ClosedLoopConfig, OperatingPointResult};
use crate::parallel::par_map;
use crate::policy::PolicyKind;
use noc_sim::{NetworkConfig, TrafficSpec};
use serde::{Deserialize, Serialize};

/// A deterministic `load → workload` closure that can be shared across sweep
/// worker threads.
pub type TrafficFactory<'a> = &'a (dyn Fn(f64) -> Box<dyn TrafficSpec> + Sync);

/// One (load, result) pair of a sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// The load parameter (injection rate for synthetic traffic, relative
    /// application speed for multimedia traffic).
    pub load: f64,
    /// The measured operating point.
    pub result: OperatingPointResult,
}

/// A full load sweep for one policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicyCurve {
    /// Policy name (figure legend label).
    pub policy: String,
    /// The sweep, ordered by increasing load.
    pub points: Vec<SweepPoint>,
}

impl PolicyCurve {
    /// The point whose load is closest to `load`.
    ///
    /// Distances are compared with [`f64::total_cmp`], so `NaN` loads (in the
    /// query or the curve) cannot cause a panic: `NaN` distances order after
    /// every finite distance and the nearest finite point wins.
    ///
    /// # Panics
    ///
    /// Panics if the curve is empty.
    pub fn nearest(&self, load: f64) -> &SweepPoint {
        assert!(!self.points.is_empty(), "cannot query an empty curve");
        self.points
            .iter()
            .min_by(|a, b| (a.load - load).abs().total_cmp(&(b.load - load).abs()))
            .expect("non-empty")
    }

    /// The loads covered by the sweep.
    pub fn loads(&self) -> Vec<f64> {
        self.points.iter().map(|p| p.load).collect()
    }

    /// The average delay (ns) series, ordered like [`loads`](Self::loads).
    pub fn delays_ns(&self) -> Vec<f64> {
        self.points.iter().map(|p| p.result.avg_delay_ns).collect()
    }

    /// The average latency (cycles) series.
    pub fn latencies_cycles(&self) -> Vec<f64> {
        self.points.iter().map(|p| p.result.avg_latency_cycles).collect()
    }

    /// The total power (mW) series.
    pub fn powers_mw(&self) -> Vec<f64> {
        self.points.iter().map(|p| p.result.power_mw).collect()
    }

    /// The time-averaged clock frequency (GHz) series.
    pub fn frequencies_ghz(&self) -> Vec<f64> {
        self.points.iter().map(|p| p.result.avg_frequency_ghz).collect()
    }
}

/// Runs `policy` at every load in `loads`, building the traffic for each load
/// with `make_traffic`. Operating points run in parallel across cores; the
/// returned curve is bit-identical to a serial run with the same seed.
pub fn sweep_policy(
    net: &NetworkConfig,
    loads: &[f64],
    make_traffic: TrafficFactory<'_>,
    policy: &PolicyKind,
    loop_cfg: &ClosedLoopConfig,
    seed: u64,
) -> PolicyCurve {
    let points = par_map(loads, |_, &load| SweepPoint {
        load,
        result: run_operating_point(net, make_traffic(load), policy.clone(), loop_cfg, seed),
    });
    PolicyCurve { policy: policy.name().to_string(), points }
}

/// Flattens a `(policy × load)` grid into one parallel work list and
/// regroups the results per policy (in policy-major, then load order) — the
/// shared engine behind every parallel sweep ([`sweep_policies`], the
/// scenario sweeps, and the per-island sweeps). `point` must be a pure
/// function of its `(policy index, load)` arguments so the parallel
/// execution stays bit-identical to a serial double loop.
pub(crate) fn sweep_policy_grid<P: Send>(
    loads: &[f64],
    policy_count: usize,
    point: impl Fn(usize, f64) -> P + Sync,
) -> Vec<Vec<P>> {
    let grid: Vec<(usize, f64)> = (0..policy_count)
        .flat_map(|pi| loads.iter().map(move |&load| (pi, load)))
        .collect();
    let mut results = par_map(&grid, |_, &(pi, load)| point(pi, load)).into_iter();
    (0..policy_count).map(|_| results.by_ref().take(loads.len()).collect()).collect()
}

/// Runs several policies over the same loads (the standard No-DVFS / RMSD /
/// DMSD comparison of every figure).
///
/// The whole `(policy × load)` grid is flattened into one parallel work list,
/// so all curves of a figure progress simultaneously and a single slow
/// operating point cannot serialize an entire policy. Per-point seeding is
/// unchanged from the serial path, making the output bit-identical to
/// [`sweep_policies_serial`].
pub fn sweep_policies(
    net: &NetworkConfig,
    loads: &[f64],
    make_traffic: TrafficFactory<'_>,
    policies: &[PolicyKind],
    loop_cfg: &ClosedLoopConfig,
    seed: u64,
) -> Vec<PolicyCurve> {
    let curves = sweep_policy_grid(loads, policies.len(), |pi, load| SweepPoint {
        load,
        result: run_operating_point(
            net,
            make_traffic(load),
            policies[pi].clone(),
            loop_cfg,
            seed,
        ),
    });
    policies
        .iter()
        .zip(curves)
        .map(|(p, points)| PolicyCurve { policy: p.name().to_string(), points })
        .collect()
}

/// Serial reference implementation of [`sweep_policy`] — used by the parity
/// tests and available for debugging (`NOC_SWEEP_THREADS=1` achieves the
/// same through the parallel path).
pub fn sweep_policy_serial(
    net: &NetworkConfig,
    loads: &[f64],
    make_traffic: TrafficFactory<'_>,
    policy: &PolicyKind,
    loop_cfg: &ClosedLoopConfig,
    seed: u64,
) -> PolicyCurve {
    let points = loads
        .iter()
        .map(|&load| SweepPoint {
            load,
            result: run_operating_point(net, make_traffic(load), policy.clone(), loop_cfg, seed),
        })
        .collect();
    PolicyCurve { policy: policy.name().to_string(), points }
}

/// Serial reference implementation of [`sweep_policies`].
pub fn sweep_policies_serial(
    net: &NetworkConfig,
    loads: &[f64],
    make_traffic: TrafficFactory<'_>,
    policies: &[PolicyKind],
    loop_cfg: &ClosedLoopConfig,
    seed: u64,
) -> Vec<PolicyCurve> {
    policies
        .iter()
        .map(|p| sweep_policy_serial(net, loads, make_traffic, p, loop_cfg, seed))
        .collect()
}

/// Generates `count` evenly spaced loads in `[lo, hi]` (inclusive).
///
/// # Panics
///
/// Panics if `count < 2` or the interval is inverted.
pub fn load_grid(lo: f64, hi: f64, count: usize) -> Vec<f64> {
    assert!(count >= 2, "need at least two load points");
    assert!(lo <= hi && lo.is_finite() && hi.is_finite(), "invalid load interval");
    (0..count).map(|i| lo + (hi - lo) * i as f64 / (count - 1) as f64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rmsd::RmsdConfig;
    use noc_sim::{SyntheticTraffic, TrafficPattern};

    fn small_net() -> NetworkConfig {
        NetworkConfig::builder()
            .mesh(4, 4)
            .virtual_channels(2)
            .buffer_depth(4)
            .packet_length(5)
            .build()
            .unwrap()
    }

    fn uniform(load: f64) -> Box<dyn TrafficSpec> {
        Box::new(SyntheticTraffic::new(TrafficPattern::Uniform, load, 5))
    }

    #[test]
    fn load_grid_is_inclusive_and_even() {
        let g = load_grid(0.1, 0.3, 5);
        assert_eq!(g.len(), 5);
        assert!((g[0] - 0.1).abs() < 1e-12);
        assert!((g[4] - 0.3).abs() < 1e-12);
        assert!((g[2] - 0.2).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn degenerate_grid_rejected() {
        let _ = load_grid(0.1, 0.3, 1);
    }

    #[test]
    fn sweep_produces_one_point_per_load() {
        let net = small_net();
        let loads = [0.05, 0.15];
        let curve = sweep_policy(
            &net,
            &loads,
            &uniform,
            &PolicyKind::NoDvfs,
            &ClosedLoopConfig::quick(),
            1,
        );
        assert_eq!(curve.points.len(), 2);
        assert_eq!(curve.policy, "No-DVFS");
        assert_eq!(curve.loads(), vec![0.05, 0.15]);
        assert!(curve.delays_ns().iter().all(|&d| d > 0.0));
        assert!(curve.powers_mw()[1] > curve.powers_mw()[0], "more load, more power");
    }

    #[test]
    fn nearest_point_lookup() {
        let net = small_net();
        let curve = sweep_policy(
            &net,
            &[0.05, 0.10, 0.20],
            &uniform,
            &PolicyKind::Rmsd(RmsdConfig::with_lambda_max(0.3)),
            &ClosedLoopConfig::quick(),
            2,
        );
        assert_eq!(curve.nearest(0.11).load, 0.10);
        assert_eq!(curve.nearest(0.0).load, 0.05);
        assert_eq!(curve.nearest(9.0).load, 0.20);
    }

    #[test]
    fn nearest_is_total_and_never_panics_on_nan() {
        // Hand-built curve: no simulation needed to exercise the ordering.
        let point = |load: f64| SweepPoint {
            load,
            result: OperatingPointResult {
                policy: "No-DVFS".to_string(),
                offered_load: load,
                measured_rate: load,
                avg_latency_cycles: 0.0,
                avg_delay_ns: 0.0,
                max_delay_ns: 0.0,
                power_mw: 0.0,
                dynamic_power_mw: 0.0,
                static_power_mw: 0.0,
                avg_frequency_ghz: 1.0,
                avg_vdd: 0.9,
                throughput: load,
                packets_delivered: 1,
                measurement_wall_ns: 1.0,
                flits_dropped: 0,
                reachability: 1.0,
            },
        };
        let curve = PolicyCurve {
            policy: "No-DVFS".to_string(),
            points: vec![point(0.1), point(f64::NAN), point(0.3)],
        };
        // A NaN query must not panic; NaN distances order after finite ones,
        // so the nearest finite point wins when one exists.
        let _ = curve.nearest(f64::NAN);
        assert_eq!(curve.nearest(0.29).load, 0.3);
        assert_eq!(curve.nearest(0.11).load, 0.1);
    }

    #[test]
    fn multi_policy_sweep_keeps_policy_order() {
        let net = small_net();
        let curves = sweep_policies(
            &net,
            &[0.1],
            &uniform,
            &[PolicyKind::NoDvfs, PolicyKind::Rmsd(RmsdConfig::with_lambda_max(0.3))],
            &ClosedLoopConfig::quick(),
            3,
        );
        assert_eq!(curves.len(), 2);
        assert_eq!(curves[0].policy, "No-DVFS");
        assert_eq!(curves[1].policy, "RMSD");
    }
}
