//! Integration test: the multimedia workloads (Sec. VI) run end-to-end.

use noc_apps::{h264_encoder, video_conference_encoder};
use noc_dvfs::{
    run_operating_point, ClosedLoopConfig, DmsdConfig, PolicyKind, RmsdConfig,
};
use noc_sim::{NetworkConfig, TrafficSpec};

fn loop_cfg() -> ClosedLoopConfig {
    ClosedLoopConfig {
        control_period_cycles: 1_200,
        warmup_intervals: 3,
        measure_intervals: 5,
        max_settle_intervals: 40,
        settle_tolerance: 0.006,
    }
}

#[test]
fn h264_traffic_reaches_every_policy_and_keeps_the_power_ordering() {
    let app = h264_encoder();
    let (w, h) = app.mesh_size();
    let net = NetworkConfig::builder().mesh(w, h).packet_length(10).build().unwrap();
    let speed = 0.6;
    let make = || -> Box<dyn TrafficSpec> { Box::new(app.traffic_matrix(speed, 10, 0.3)) };

    let baseline = run_operating_point(&net, make(), PolicyKind::NoDvfs, &loop_cfg(), 3);
    let rmsd = run_operating_point(
        &net,
        make(),
        PolicyKind::Rmsd(RmsdConfig::with_lambda_max(0.08)),
        &loop_cfg(),
        3,
    );
    let dmsd = run_operating_point(
        &net,
        make(),
        PolicyKind::Dmsd(DmsdConfig::with_target_ns(150.0)),
        &loop_cfg(),
        3,
    );

    for p in [&baseline, &rmsd, &dmsd] {
        assert!(p.packets_delivered > 0, "{} must deliver packets", p.policy);
        assert!(p.power_mw > 0.0);
    }
    assert!(rmsd.power_mw < baseline.power_mw, "RMSD saves power on H.264 traffic");
    assert!(dmsd.power_mw <= baseline.power_mw * 1.02);
    assert!(rmsd.avg_delay_ns > baseline.avg_delay_ns, "RMSD pays the power saving in delay");
}

#[test]
fn vce_runs_on_its_5x5_mesh_and_scales_with_app_speed() {
    let app = video_conference_encoder();
    let (w, h) = app.mesh_size();
    assert_eq!((w, h), (5, 5));
    let net = NetworkConfig::builder().mesh(w, h).packet_length(10).build().unwrap();
    let make = |speed: f64| -> Box<dyn TrafficSpec> {
        Box::new(app.traffic_matrix(speed, 10, 0.3))
    };

    let slow = run_operating_point(&net, make(0.2), PolicyKind::NoDvfs, &loop_cfg(), 4);
    let fast = run_operating_point(&net, make(0.8), PolicyKind::NoDvfs, &loop_cfg(), 4);
    assert!(
        fast.power_mw > slow.power_mw,
        "a faster application must burn more NoC power ({} vs {})",
        fast.power_mw,
        slow.power_mw
    );
    assert!(fast.throughput > slow.throughput);
}

#[test]
fn application_traffic_is_hotspot_shaped_not_uniform() {
    // The per-router power spread under application traffic must be much
    // wider than under an equivalent uniform load, because the task mapping
    // concentrates traffic on a few links. This checks that the matrix
    // traffic actually reaches the power model with its spatial structure.
    use noc_power::{FdsoiTech, RouterPowerModel};
    use noc_sim::{Hertz, NocSimulation};

    let app = h264_encoder();
    let net = NetworkConfig::builder().mesh(4, 4).packet_length(10).build().unwrap();
    let traffic = app.traffic_matrix(0.8, 10, 0.3);
    let mut sim = NocSimulation::new(net, Box::new(traffic), 11);
    sim.run_cycles(10_000);
    let activity = sim.take_activity();
    // Switching activity concentrates on the routers along the video
    // pipeline: the busiest router sees far more events than the average one.
    let events: Vec<u64> = activity.routers.iter().map(|r| r.total_events()).collect();
    let peak_events = *events.iter().max().unwrap();
    let mean_events = events.iter().sum::<u64>() as f64 / events.len() as f64;
    assert!(
        peak_events as f64 > 2.0 * mean_events,
        "hotspot traffic should load some routers much more than the average \
         (peak {peak_events} events vs mean {mean_events:.0})"
    );
    // The same structure must survive the conversion to power: the hottest
    // router burns measurably more than the mean even though the static
    // (clock + leakage) component is spatially uniform.
    let model = RouterPowerModel::new();
    let tech = FdsoiTech::new();
    let f = Hertz::from_ghz(1.0);
    let report = model.network_power(&activity, f, tech.vdd_for_frequency(f), sim.wall_time().as_ps());
    assert!(
        report.peak_router_mw() > 1.2 * report.mean_router_mw(),
        "per-router power must reflect the hotspot structure \
         (peak {:.2} mW vs mean {:.2} mW)",
        report.peak_router_mw(),
        report.mean_router_mw()
    );
}
