//! Discrete proportional-integral controller.
//!
//! The DMSD policy uses the incremental ("velocity") form of a PI controller,
//! exactly as written in Fig. 3 of the paper:
//!
//! ```text
//! U_n = U_{n-1} + K_I · E_n + K_P · (E_n − E_{n-1})
//! ```
//!
//! where `E_n` is the control error at update `n` and `U_n` the (clamped)
//! actuation value. Clamping the output inside `[u_min, u_max]` provides
//! anti-windup: because the increment is added to the *clamped* previous
//! output, the integrator cannot accumulate past the actuator limits.

use serde::{Deserialize, Serialize};

/// Incremental PI controller with output clamping.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PiController {
    ki: f64,
    kp: f64,
    u_min: f64,
    u_max: f64,
    output: f64,
    previous_error: f64,
    initialized: bool,
}

impl PiController {
    /// Creates a controller with gains `ki`/`kp`, output range
    /// `[u_min, u_max]` and initial output `u_initial`.
    ///
    /// # Panics
    ///
    /// Panics if the gains are not finite, if `u_min > u_max`, or if the
    /// initial output lies outside the range.
    pub fn new(ki: f64, kp: f64, u_min: f64, u_max: f64, u_initial: f64) -> Self {
        assert!(ki.is_finite() && kp.is_finite(), "gains must be finite");
        assert!(u_min <= u_max, "invalid output range");
        assert!(
            (u_min..=u_max).contains(&u_initial),
            "initial output must be inside the output range"
        );
        PiController {
            ki,
            kp,
            u_min,
            u_max,
            output: u_initial,
            previous_error: 0.0,
            initialized: false,
        }
    }

    /// The integral gain.
    pub fn ki(&self) -> f64 {
        self.ki
    }

    /// The proportional gain.
    pub fn kp(&self) -> f64 {
        self.kp
    }

    /// The current (clamped) output without applying a new error sample.
    pub fn output(&self) -> f64 {
        self.output
    }

    /// Applies one error sample and returns the new clamped output.
    pub fn update(&mut self, error: f64) -> f64 {
        assert!(error.is_finite(), "control error must be finite");
        let delta_error = if self.initialized { error - self.previous_error } else { 0.0 };
        self.initialized = true;
        self.previous_error = error;
        self.output = (self.output + self.ki * error + self.kp * delta_error)
            .clamp(self.u_min, self.u_max);
        self.output
    }

    /// Forgets the error history and restores the output to `u_initial`.
    pub fn reset(&mut self, u_initial: f64) {
        assert!(
            (self.u_min..=self.u_max).contains(&u_initial),
            "initial output must be inside the output range"
        );
        self.output = u_initial;
        self.previous_error = 0.0;
        self.initialized = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn positive_error_raises_output() {
        let mut pi = PiController::new(0.1, 0.05, 0.0, 1.0, 0.5);
        let u = pi.update(1.0);
        assert!(u > 0.5);
    }

    #[test]
    fn negative_error_lowers_output() {
        let mut pi = PiController::new(0.1, 0.05, 0.0, 1.0, 0.5);
        let u = pi.update(-1.0);
        assert!(u < 0.5);
    }

    #[test]
    fn output_is_clamped() {
        let mut pi = PiController::new(1.0, 0.0, 0.0, 1.0, 0.5);
        for _ in 0..100 {
            pi.update(10.0);
        }
        assert_eq!(pi.output(), 1.0);
        for _ in 0..100 {
            pi.update(-10.0);
        }
        assert_eq!(pi.output(), 0.0);
    }

    #[test]
    fn anti_windup_recovers_quickly_after_saturation() {
        // Saturate high for a long time, then apply a small negative error:
        // the output must move below the upper limit immediately, because the
        // incremental form does not accumulate an unbounded integral.
        let mut pi = PiController::new(0.2, 0.1, 0.0, 1.0, 0.5);
        for _ in 0..1000 {
            pi.update(5.0);
        }
        assert_eq!(pi.output(), 1.0);
        let u = pi.update(-1.0);
        assert!(u < 1.0, "output must leave the rail as soon as the error changes sign");
    }

    #[test]
    fn zero_error_holds_output() {
        let mut pi = PiController::new(0.2, 0.1, 0.0, 1.0, 0.7);
        let u1 = pi.update(0.0);
        let u2 = pi.update(0.0);
        assert_eq!(u1, 0.7);
        assert_eq!(u2, 0.7);
    }

    #[test]
    fn converges_on_a_first_order_plant() {
        // Plant: measured value y = 200 * u (e.g. delay falls as u rises the
        // sign is handled by the error definition). Target y* = 120.
        // Error = y* - y must drive u towards 0.6.
        let mut pi = PiController::new(0.02, 0.01, 0.0, 1.0, 1.0);
        let mut u = pi.output();
        for _ in 0..500 {
            let y = 200.0 * u;
            let error = 120.0 - y;
            u = pi.update(error / 120.0);
        }
        assert!((200.0 * u - 120.0).abs() < 5.0, "loop should settle near the target");
    }

    #[test]
    fn proportional_term_reacts_to_error_changes() {
        let mut with_kp = PiController::new(0.0, 0.5, -10.0, 10.0, 0.0);
        // First sample: delta term is suppressed (no previous error), so the
        // pure-P controller holds its output.
        assert_eq!(with_kp.update(1.0), 0.0);
        // A jump in the error now produces a proportional kick.
        assert!(with_kp.update(3.0) > 0.9);
    }

    #[test]
    fn reset_clears_history() {
        let mut pi = PiController::new(0.1, 0.1, 0.0, 1.0, 0.5);
        pi.update(2.0);
        pi.update(-1.0);
        pi.reset(0.5);
        assert_eq!(pi.output(), 0.5);
        // After a reset the next update must not see a stale previous error.
        let u = pi.update(0.0);
        assert_eq!(u, 0.5);
    }

    #[test]
    #[should_panic(expected = "output range")]
    fn invalid_initial_output_panics() {
        let _ = PiController::new(0.1, 0.1, 0.0, 1.0, 2.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_error_panics() {
        let mut pi = PiController::new(0.1, 0.1, 0.0, 1.0, 0.5);
        pi.update(f64::NAN);
    }
}
