//! Power reports.

use serde::{Deserialize, Serialize};

/// Power consumed by the NoC over one observation interval, broken down per
/// router and into dynamic vs. static components.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PowerReport {
    /// Average power of each router (plus its outgoing links), in milliwatts.
    pub per_router_mw: Vec<f64>,
    /// Total dynamic (activity + clock tree) power in milliwatts.
    pub dynamic_mw: f64,
    /// Total static (leakage) power in milliwatts.
    pub static_mw: f64,
}

impl PowerReport {
    /// Creates an empty report.
    pub fn new() -> Self {
        PowerReport::default()
    }

    /// Total NoC power in milliwatts.
    pub fn total_mw(&self) -> f64 {
        self.dynamic_mw + self.static_mw
    }

    /// The highest per-router power, useful to locate hotspots.
    pub fn peak_router_mw(&self) -> f64 {
        self.per_router_mw.iter().copied().fold(0.0, f64::max)
    }

    /// Average per-router power in milliwatts.
    pub fn mean_router_mw(&self) -> f64 {
        if self.per_router_mw.is_empty() {
            0.0
        } else {
            self.per_router_mw.iter().sum::<f64>() / self.per_router_mw.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_add_dynamic_and_static() {
        let r = PowerReport {
            per_router_mw: vec![1.0, 2.0, 3.0],
            dynamic_mw: 4.0,
            static_mw: 2.0,
        };
        assert_eq!(r.total_mw(), 6.0);
        assert_eq!(r.peak_router_mw(), 3.0);
        assert_eq!(r.mean_router_mw(), 2.0);
    }

    #[test]
    fn empty_report_is_zero() {
        let r = PowerReport::new();
        assert_eq!(r.total_mw(), 0.0);
        assert_eq!(r.peak_router_mw(), 0.0);
        assert_eq!(r.mean_router_mw(), 0.0);
    }
}
