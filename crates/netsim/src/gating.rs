//! Router power gating: per-router sleep/wakeup state machines built on the
//! sparse engine's quiescence substrate.
//!
//! DVFS attacks dynamic power; leakage only falls when idle resources are
//! actually switched off. The activity-tracked core already knows, per cycle,
//! exactly which routers are quiescent — this module turns that bookkeeping
//! into a power-gating subsystem:
//!
//! * [`GatingConfig`] — per-network gating parameters (enabled, idle
//!   threshold, wakeup latency) with optional per-island overrides, stored
//!   inside [`NetworkConfig`](crate::NetworkConfig) and validated by its
//!   builder;
//! * [`GateState`] — the per-router sleep state machine
//!   `Active → DrainWait → Gated → WakeUp → Active`;
//! * `GatingController` (crate-internal) — the event-driven mechanics the
//!   [`NocSimulation`](crate::NocSimulation) driver runs each cycle.
//!
//! # The state machine and the drain/fence contract
//!
//! A router that has been continuously quiescent (no buffered flit) for
//! `idle_threshold` of its island's domain cycles enters **DrainWait**: the
//! intent to gate. It actually gates only once every in-flight flit headed
//! for it has landed — all incoming link channels and its injection channel
//! are empty — so a flit can never arrive at a powered-down router. Any
//! arrival during DrainWait aborts back to Active (no wakeup penalty: the
//! power-down had not begun).
//!
//! Once **Gated**, the router's links are *fenced*: a neighbour whose switch
//! allocation wants to forward a flit towards it keeps the flit buffered
//! (exactly as if the output had no credit) and raises a **wakeup request**
//! instead; the local source is likewise fenced and raises a wakeup when it
//! has flits to inject. The first request moves the router to **WakeUp**; it
//! becomes Active `wakeup_latency` domain cycles later and traffic resumes.
//! Nothing is ever dropped: flits wait upstream behind the fence, and
//! credit returns into a gated router simply update its retained credit
//! counters (observationally identical to fencing and replaying them at
//! wakeup, because a gated router runs no allocation until it is Active
//! again). The no-lost-flits / no-lost-credits contract is pinned by
//! `tests/gating_invariants.rs`.
//!
//! With gating disabled (the default) the controller is a structural no-op:
//! every golden window sequence is bit-identical to the ungated simulator
//! under both the sparse and the dense engine.

use crate::config::MAX_CHANNEL_LATENCY;
use crate::error::ConfigError;
use crate::region::RegionMap;
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Idle-threshold value meaning "never gate this island's routers".
///
/// Gating policies use this as the *off* actuator position: the sleep timer
/// is never armed, but routers already gated stay gated until traffic wakes
/// them (switching a sleeping router on without demand would waste the very
/// transition energy the policy is trying to save).
pub const GATE_NEVER: u64 = u64::MAX;

/// Power-gating state of one router.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum GateState {
    /// Powered on and participating normally in the pipeline.
    #[default]
    Active,
    /// Idle past the threshold; waiting for in-flight traffic towards the
    /// router to drain before the power gate closes. Not fenced: an arrival
    /// aborts back to [`Active`](GateState::Active) at no cost.
    DrainWait,
    /// Power-gated: the pipeline is off, links towards the router are
    /// fenced, and only retained state (credit counters) is kept.
    Gated,
    /// Powering back up after a wakeup request; still fenced until the
    /// configured wakeup latency elapses.
    WakeUp,
}

impl GateState {
    /// Whether links towards a router in this state are fenced: neighbours
    /// must hold flits upstream and raise a wakeup request instead of
    /// sending.
    #[inline]
    pub fn is_fenced(&self) -> bool {
        matches!(self, GateState::Gated | GateState::WakeUp)
    }
}

/// A per-island override of the gating parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PerIslandGating {
    /// Island id the override applies to (validated against the region
    /// partition by [`NetworkConfigBuilder::build`](crate::NetworkConfigBuilder::build)).
    pub island: usize,
    /// Idle threshold for the island, domain cycles ([`GATE_NEVER`] disables
    /// gating on the island).
    pub idle_threshold: u64,
    /// Wakeup latency for the island, domain cycles (clamped to
    /// `1..=`[`MAX_CHANNEL_LATENCY`]).
    pub wakeup_latency: u64,
}

/// Power-gating parameters of a network, stored inside
/// [`NetworkConfig`](crate::NetworkConfig).
///
/// ```
/// use noc_sim::{GatingConfig, NetworkConfig};
///
/// let cfg = NetworkConfig::builder()
///     .mesh(4, 4)
///     .virtual_channels(2)
///     .buffer_depth(4)
///     .packet_length(5)
///     .gating(GatingConfig::enabled(32, 8))
///     .build()
///     .unwrap();
/// assert!(cfg.gating().is_enabled());
/// assert_eq!(cfg.gating().idle_threshold(), 32);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GatingConfig {
    enabled: bool,
    idle_threshold: u64,
    wakeup_latency: u64,
    per_island: Vec<PerIslandGating>,
}

impl GatingConfig {
    /// Gating switched off — the default, and a structural no-op in the
    /// simulator (golden windows are bit-identical to the pre-gating core).
    pub fn disabled() -> Self {
        GatingConfig {
            enabled: false,
            idle_threshold: GATE_NEVER,
            wakeup_latency: 1,
            per_island: Vec::new(),
        }
    }

    /// Gating enabled with an `idle_threshold` (domain cycles of continuous
    /// quiescence before a router starts powering down) and a
    /// `wakeup_latency` (domain cycles from the first wakeup request until
    /// the router is usable again).
    ///
    /// The wakeup latency is clamped to
    /// `1..=`[`MAX_CHANNEL_LATENCY`],
    /// mirroring the channel-latency convention.
    pub fn enabled(idle_threshold: u64, wakeup_latency: u64) -> Self {
        GatingConfig {
            enabled: true,
            idle_threshold,
            wakeup_latency: wakeup_latency.clamp(1, MAX_CHANNEL_LATENCY),
            per_island: Vec::new(),
        }
    }

    /// Adds a per-island override (later overrides for the same island win).
    /// The island id is validated against the region partition when the
    /// [`NetworkConfig`](crate::NetworkConfig) is built.
    pub fn with_island_override(
        mut self,
        island: usize,
        idle_threshold: u64,
        wakeup_latency: u64,
    ) -> Self {
        self.per_island.push(PerIslandGating {
            island,
            idle_threshold,
            wakeup_latency: wakeup_latency.clamp(1, MAX_CHANNEL_LATENCY),
        });
        self
    }

    /// Whether gating is enabled at all.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The network-wide idle threshold in domain cycles.
    pub fn idle_threshold(&self) -> u64 {
        self.idle_threshold
    }

    /// The network-wide wakeup latency in domain cycles.
    pub fn wakeup_latency(&self) -> u64 {
        self.wakeup_latency
    }

    /// The per-island overrides, in insertion order.
    pub fn overrides(&self) -> &[PerIslandGating] {
        &self.per_island
    }

    /// Validates the overrides against an island count.
    pub(crate) fn validate(&self, island_count: usize) -> Result<(), ConfigError> {
        for o in &self.per_island {
            if o.island >= island_count {
                return Err(ConfigError::GatingIslandOutOfRange {
                    island: o.island,
                    island_count,
                });
            }
        }
        Ok(())
    }

    /// Resolves `(idle_threshold, wakeup_latency)` per island.
    pub(crate) fn resolve(&self, island_count: usize) -> (Vec<u64>, Vec<u64>) {
        let mut thresholds = vec![self.idle_threshold; island_count];
        let mut latencies = vec![self.wakeup_latency; island_count];
        for o in &self.per_island {
            thresholds[o.island] = o.idle_threshold;
            latencies[o.island] = o.wakeup_latency;
        }
        (thresholds, latencies)
    }
}

impl Default for GatingConfig {
    fn default() -> Self {
        GatingConfig::disabled()
    }
}

/// The event-driven gating mechanics run by the simulation driver.
///
/// Cost model: with gating disabled nothing here is touched; with gating
/// enabled, all per-cycle work is event-driven — sleep timers live in a
/// per-island due-heap armed only when a router *becomes* idle, wake timers
/// in a per-island FIFO (wakeup latency is constant per island, so dues are
/// pushed in order), and the DrainWait population is a small transient list.
/// A fully gated idle network therefore costs O(islands) per cycle, the same
/// as the plain idle sparse core ("gated routers are literally free").
#[derive(Debug)]
pub(crate) struct GatingController {
    /// Master switch (config value; runtime-togglable through the driver).
    pub(crate) enabled: bool,
    /// Per-router gate state.
    pub(crate) states: Vec<GateState>,
    /// Per-router "currently quiescent" mirror maintained by idle/active
    /// events from the driver.
    pub(crate) idle: Vec<bool>,
    /// Island domain cycle at which the router last became idle.
    idle_since: Vec<u64>,
    /// Node → island (copy of the region assignments).
    island_of: Vec<u32>,
    /// Per-island idle threshold in domain cycles ([`GATE_NEVER`] = off).
    thresholds: Vec<u64>,
    /// Per-island wakeup latency in domain cycles (≥ 1).
    wake_latency: Vec<u64>,
    /// Per-island sleep-timer due-heap: `(due domain cycle, node)`, popped
    /// when the island's clock reaches `due`. Entries are hints — validity
    /// (still idle, still Active, threshold still met) is re-checked at pop.
    sleep_due: Vec<BinaryHeap<Reverse<(u64, u32)>>>,
    /// Per-island wakeup FIFO: `(due domain cycle, node)` in push order.
    wake_due: Vec<VecDeque<(u64, u32)>>,
    /// Nodes currently in DrainWait (small, transient; lazily pruned).
    drain_wait: Vec<u32>,
    /// Number of routers in a fenced state (Gated | WakeUp) — the fast-path
    /// gate for fence-mask computation in the pipeline phase.
    pub(crate) fenced_count: usize,
    /// Sources removed from the sparse pending worklist because their router
    /// is fenced; re-inserted when the router wakes.
    pub(crate) fenced_sources: Vec<bool>,
    /// Domain cycle at which the router's current Gated span began.
    gated_since: Vec<u64>,
    /// Per-router gated domain cycles accumulated since the last activity
    /// drain (completed spans only; the open span is closed at drain time).
    win_gated_cycles: Vec<u64>,
    /// Sleep (Active→Gated) transitions since the last activity drain.
    win_sleep_events: Vec<u64>,
    /// Wake (Gated→WakeUp) transitions since the last activity drain.
    win_wake_events: Vec<u64>,
    /// Telemetry transition log (`(node, to_sleep)` in occurrence order),
    /// `None` unless the telemetry layer is installed. Pure observer: it is
    /// drained by the driver after the gating phase, feeds no decision, and
    /// is deliberately not part of snapshots (telemetry describes how the
    /// run was watched, not what the state is).
    transition_log: Option<Vec<(u32, bool)>>,
}

impl GatingController {
    /// Builds the controller for a freshly constructed (empty, cycle-0)
    /// network. With gating enabled every router starts idle and armed.
    pub(crate) fn new(cfg: &GatingConfig, regions: &RegionMap) -> Self {
        let n = regions.node_count();
        let islands = regions.island_count();
        let (thresholds, wake_latency) = cfg.resolve(islands);
        let mut controller = GatingController {
            enabled: cfg.is_enabled(),
            states: vec![GateState::Active; n],
            idle: vec![false; n],
            idle_since: vec![0; n],
            island_of: regions.assignments().to_vec(),
            thresholds,
            wake_latency,
            sleep_due: (0..islands).map(|_| BinaryHeap::new()).collect(),
            wake_due: (0..islands).map(|_| VecDeque::new()).collect(),
            drain_wait: Vec::new(),
            fenced_count: 0,
            fenced_sources: vec![false; n],
            gated_since: vec![0; n],
            win_gated_cycles: vec![0; n],
            win_sleep_events: vec![0; n],
            win_wake_events: vec![0; n],
            transition_log: None,
        };
        if controller.enabled {
            for node in 0..n {
                controller.mark_idle(node, 0);
            }
        }
        controller
    }

    /// Current idle threshold of an island.
    pub(crate) fn threshold(&self, island: usize) -> u64 {
        self.thresholds[island]
    }

    /// Current wakeup latency of an island.
    pub(crate) fn wakeup_latency(&self, island: usize) -> u64 {
        self.wake_latency[island]
    }

    /// Number of routers currently in the [`Gated`](GateState::Gated) state.
    pub(crate) fn gated_count(&self) -> usize {
        self.states.iter().filter(|s| **s == GateState::Gated).count()
    }

    /// Whether no router is currently in DrainWait. A non-empty DrainWait
    /// population does per-cycle work (inbound-clear checks on every firing
    /// island cycle), so the event-horizon engine only skips when this holds.
    #[inline]
    pub(crate) fn drain_wait_empty(&self) -> bool {
        self.drain_wait.is_empty()
    }

    /// Earliest armed sleep/wake timer of an island, in the island's domain
    /// cycles (`u64::MAX` when nothing is armed).
    ///
    /// Entries are hints — a stale sleep timer (its router woke and re-idled
    /// meanwhile) may report an earlier due than any real state change. That
    /// is safe for event-horizon computation: a conservative (too early)
    /// bound only shortens the jump, and the full step taken at the bound
    /// pops and re-validates the hint.
    pub(crate) fn earliest_due(&self, island: usize) -> u64 {
        let sleep =
            self.sleep_due[island].peek().map(|&Reverse((due, _))| due).unwrap_or(u64::MAX);
        let wake = self.wake_due[island].front().map(|&(due, _)| due).unwrap_or(u64::MAX);
        sleep.min(wake)
    }

    /// Marks a router idle as of `now` (its island's domain cycle) and arms
    /// its sleep timer.
    #[inline]
    pub(crate) fn mark_idle(&mut self, node: usize, now: u64) {
        debug_assert!(!self.idle[node], "idle transition of an already idle router");
        self.idle[node] = true;
        self.idle_since[node] = now;
        self.arm(node, now);
    }

    /// (Re-)arms the sleep timer of an idle router.
    fn arm(&mut self, node: usize, idle_since: u64) {
        let island = self.island_of[node] as usize;
        let threshold = self.thresholds[island];
        if threshold != GATE_NEVER {
            self.sleep_due[island]
                .push(Reverse((idle_since.saturating_add(threshold), node as u32)));
        }
    }

    /// Records a flit arrival at `node`: clears the idle flag and aborts a
    /// pending DrainWait (no wakeup penalty — power-down had not begun).
    ///
    /// Must never be called for a fenced router: the fence exists precisely
    /// so that no flit reaches a gated or waking router.
    #[inline]
    pub(crate) fn on_flit_arrival(&mut self, node: usize) {
        debug_assert!(
            !self.states[node].is_fenced(),
            "a flit reached a fenced (gated/waking) router"
        );
        if self.states[node] == GateState::DrainWait {
            self.states[node] = GateState::Active;
        }
        self.idle[node] = false;
    }

    /// Raises a wakeup request towards `node` (neighbour flit demand or
    /// local source demand) at its island's domain cycle `now`. Idempotent:
    /// only the first request of a Gated span starts the wakeup.
    #[inline]
    pub(crate) fn request_wakeup(&mut self, node: usize, now: u64) {
        if self.states[node] != GateState::Gated {
            return;
        }
        let island = self.island_of[node] as usize;
        self.states[node] = GateState::WakeUp;
        self.win_wake_events[node] += 1;
        self.win_gated_cycles[node] += now - self.gated_since[node];
        self.wake_due[island].push_back((now + self.wake_latency[island], node as u32));
    }

    /// Completes due wakeups of one island (`now` = the island's domain
    /// cycle). Calls `source_unfenced` for every woken router whose local
    /// source had been fenced off the pending worklist, so the driver can
    /// restore it.
    pub(crate) fn complete_wakeups(
        &mut self,
        island: usize,
        now: u64,
        mut source_unfenced: impl FnMut(usize),
    ) {
        while let Some(&(due, node)) = self.wake_due[island].front() {
            if due > now {
                break;
            }
            self.wake_due[island].pop_front();
            let node = node as usize;
            debug_assert_eq!(self.states[node], GateState::WakeUp);
            self.states[node] = GateState::Active;
            self.fenced_count -= 1;
            if let Some(log) = self.transition_log.as_mut() {
                log.push((node as u32, false));
            }
            // A freshly woken router is empty, hence idle again; re-arm so a
            // spurious wakeup can put it back to sleep after the threshold.
            self.idle[node] = true;
            self.idle_since[node] = now;
            self.arm(node, now);
            if self.fenced_sources[node] {
                self.fenced_sources[node] = false;
                source_unfenced(node);
            }
        }
    }

    /// Pops due sleep timers of one island and moves still-idle routers into
    /// DrainWait. `source_pending(node)` lets the driver veto a power-down
    /// while the local source has queued flits (they would wake it right
    /// back up).
    pub(crate) fn start_drains(
        &mut self,
        island: usize,
        now: u64,
        mut source_pending: impl FnMut(usize) -> bool,
    ) {
        let threshold = self.thresholds[island];
        while let Some(&Reverse((due, node))) = self.sleep_due[island].peek() {
            if due > now {
                break;
            }
            self.sleep_due[island].pop();
            let n = node as usize;
            // Entries are hints: re-validate against the current state (the
            // router may have woken and re-idled, or the threshold changed).
            if self.states[n] != GateState::Active
                || !self.idle[n]
                || threshold == GATE_NEVER
                || now.saturating_sub(self.idle_since[n]) < threshold
                || source_pending(n)
            {
                continue;
            }
            self.states[n] = GateState::DrainWait;
            self.drain_wait.push(node);
        }
    }

    /// Walks the DrainWait population and gates every router whose inbound
    /// traffic has fully drained. The driver supplies `fires(island)`,
    /// `inbound_clear(node)` (incoming link + injection channels empty) and
    /// `source_pending(node)`.
    pub(crate) fn complete_drains(
        &mut self,
        fires: impl Fn(usize) -> bool,
        inbound_clear: impl Fn(usize) -> bool,
        source_pending: impl Fn(usize) -> bool,
        island_cycle: impl Fn(usize) -> u64,
    ) {
        if self.drain_wait.is_empty() {
            return;
        }
        let mut drain_wait = std::mem::take(&mut self.drain_wait);
        drain_wait.retain(|&node| {
            let n = node as usize;
            if self.states[n] != GateState::DrainWait {
                // Aborted by a flit arrival; already back to Active.
                return false;
            }
            let island = self.island_of[n] as usize;
            if !fires(island) {
                return true;
            }
            if !inbound_clear(n) || source_pending(n) {
                return true;
            }
            self.states[n] = GateState::Gated;
            self.gated_since[n] = island_cycle(island);
            self.win_sleep_events[n] += 1;
            self.fenced_count += 1;
            if let Some(log) = self.transition_log.as_mut() {
                log.push((node, true));
            }
            false
        });
        self.drain_wait = drain_wait;
    }

    /// Changes one island's idle threshold and re-arms the sleep timers of
    /// its currently idle Active routers against the new value (stale heap
    /// entries are invalidated at pop time).
    pub(crate) fn set_island_threshold(&mut self, island: usize, threshold: u64, now: u64) {
        if self.thresholds[island] == threshold {
            return;
        }
        self.thresholds[island] = threshold;
        if !self.enabled || threshold == GATE_NEVER {
            return;
        }
        for node in 0..self.states.len() {
            if self.island_of[node] as usize == island
                && self.states[node] == GateState::Active
                && self.idle[node]
            {
                let due = self.idle_since[node].saturating_add(threshold).max(now);
                self.sleep_due[island].push(Reverse((due, node as u32)));
            }
        }
    }

    /// Runtime-enables gating: every quiescent router starts its idle span
    /// at its island's current domain cycle. `island_cycle(island)` supplies
    /// the clocks, `quiescent(node)` the router state.
    pub(crate) fn enable(
        &mut self,
        island_cycle: impl Fn(usize) -> u64,
        quiescent: impl Fn(usize) -> bool,
    ) {
        if self.enabled {
            return;
        }
        self.enabled = true;
        for node in 0..self.states.len() {
            if quiescent(node) {
                // Idle spans start from scratch — the time a router sat idle
                // while gating was off does not count towards the threshold.
                let now = island_cycle(self.island_of[node] as usize);
                self.idle[node] = true;
                self.idle_since[node] = now;
                self.arm(node, now);
            } else {
                self.idle[node] = false;
            }
        }
    }

    /// Runtime-disables gating: every gated/waking/draining router returns
    /// to Active immediately (un-gating counts as a wake event for the
    /// energy accounting) and all timers are cleared. Calls `source_unfenced`
    /// for each router whose local source had been fenced, so the driver can
    /// restore it to the pending worklist.
    pub(crate) fn disable(
        &mut self,
        island_cycle: impl Fn(usize) -> u64,
        mut source_unfenced: impl FnMut(usize),
    ) {
        if !self.enabled {
            return;
        }
        self.enabled = false;
        for node in 0..self.states.len() {
            match self.states[node] {
                GateState::Gated => {
                    let now = island_cycle(self.island_of[node] as usize);
                    self.win_wake_events[node] += 1;
                    self.win_gated_cycles[node] += now - self.gated_since[node];
                    self.states[node] = GateState::Active;
                    if let Some(log) = self.transition_log.as_mut() {
                        log.push((node as u32, false));
                    }
                }
                GateState::WakeUp | GateState::DrainWait => {
                    self.states[node] = GateState::Active;
                }
                GateState::Active => {}
            }
            if self.fenced_sources[node] {
                self.fenced_sources[node] = false;
                source_unfenced(node);
            }
        }
        self.fenced_count = 0;
        self.drain_wait.clear();
        for heap in &mut self.sleep_due {
            heap.clear();
        }
        for fifo in &mut self.wake_due {
            fifo.clear();
        }
    }

    /// Switches the telemetry transition log on or off. Turning it on starts
    /// an empty log; turning it off discards any pending entries.
    pub(crate) fn set_transition_log(&mut self, enabled: bool) {
        self.transition_log = if enabled { Some(Vec::new()) } else { None };
    }

    /// Drains the telemetry transition log (if installed), calling
    /// `f(node, to_sleep)` for each transition in occurrence order.
    pub(crate) fn drain_transition_log(&mut self, mut f: impl FnMut(u32, bool)) {
        if let Some(log) = self.transition_log.as_mut() {
            for (node, to_sleep) in log.drain(..) {
                f(node, to_sleep);
            }
        }
    }

    /// Drains one router's gating window counters (gated domain cycles,
    /// sleep events, wake events) for an activity report; `now` is the
    /// router's island domain cycle, used to close an open Gated span.
    pub(crate) fn drain_router_window(&mut self, node: usize, now: u64) -> (u64, u64, u64) {
        let mut gated = std::mem::take(&mut self.win_gated_cycles[node]);
        if self.states[node] == GateState::Gated {
            gated += now - self.gated_since[node];
            self.gated_since[node] = now;
        }
        (
            gated,
            std::mem::take(&mut self.win_sleep_events[node]),
            std::mem::take(&mut self.win_wake_events[node]),
        )
    }
}

#[cfg(feature = "snapshot")]
impl GatingController {
    /// Encodes the complete gating state for a checkpoint: the master switch
    /// and per-island parameters (runtime-mutable, hence state), every
    /// router's gate machine, and the sleep/wake timers. The node→island map
    /// is configuration and is not written.
    ///
    /// The sleep-timer heaps are written as their sorted ascending contents:
    /// a heap's pop sequence is a function of the multiset of `(due, node)`
    /// entries alone, so rebuilding by pushing in sorted order reproduces the
    /// original pop-for-pop behaviour exactly.
    pub(crate) fn save_state(&self, w: &mut crate::snapshot::SnapWriter) {
        w.put_bool(self.enabled);
        for state in &self.states {
            w.put_u8(match state {
                GateState::Active => 0,
                GateState::DrainWait => 1,
                GateState::Gated => 2,
                GateState::WakeUp => 3,
            });
        }
        for idle in &self.idle {
            w.put_bool(*idle);
        }
        for since in &self.idle_since {
            w.put_u64(*since);
        }
        for threshold in &self.thresholds {
            w.put_u64(*threshold);
        }
        for latency in &self.wake_latency {
            w.put_u64(*latency);
        }
        for heap in &self.sleep_due {
            let mut entries: Vec<(u64, u32)> =
                heap.iter().map(|&Reverse((due, node))| (due, node)).collect();
            entries.sort_unstable();
            w.put_usize(entries.len());
            for (due, node) in entries {
                w.put_u64(due);
                w.put_u32(node);
            }
        }
        for fifo in &self.wake_due {
            w.put_usize(fifo.len());
            for (due, node) in fifo {
                w.put_u64(*due);
                w.put_u32(*node);
            }
        }
        w.put_usize(self.drain_wait.len());
        for node in &self.drain_wait {
            w.put_u32(*node);
        }
        w.put_usize(self.fenced_count);
        for fenced in &self.fenced_sources {
            w.put_bool(*fenced);
        }
        for since in &self.gated_since {
            w.put_u64(*since);
        }
        for win in [&self.win_gated_cycles, &self.win_sleep_events, &self.win_wake_events] {
            for v in win {
                w.put_u64(*v);
            }
        }
    }

    /// Restores the gating state written by [`save_state`](Self::save_state)
    /// into a controller built from the same configuration.
    pub(crate) fn load_state(
        &mut self,
        r: &mut crate::snapshot::SnapReader<'_>,
    ) -> Result<(), crate::snapshot::SnapshotError> {
        use crate::snapshot::SnapshotError;
        let n = self.states.len() as u32;
        self.enabled = r.read_bool()?;
        for state in &mut self.states {
            *state = match r.read_u8()? {
                0 => GateState::Active,
                1 => GateState::DrainWait,
                2 => GateState::Gated,
                3 => GateState::WakeUp,
                _ => return Err(SnapshotError::Corrupt("gate state")),
            };
        }
        for idle in &mut self.idle {
            *idle = r.read_bool()?;
        }
        for since in &mut self.idle_since {
            *since = r.read_u64()?;
        }
        for threshold in &mut self.thresholds {
            *threshold = r.read_u64()?;
        }
        for latency in &mut self.wake_latency {
            *latency = r.read_u64()?;
        }
        for heap in &mut self.sleep_due {
            heap.clear();
            let len = r.read_usize()?;
            for _ in 0..len {
                let due = r.read_u64()?;
                let node = r.read_u32()?;
                if node >= n {
                    return Err(SnapshotError::Corrupt("sleep-timer node"));
                }
                heap.push(Reverse((due, node)));
            }
        }
        for fifo in &mut self.wake_due {
            fifo.clear();
            let len = r.read_usize()?;
            for _ in 0..len {
                let due = r.read_u64()?;
                let node = r.read_u32()?;
                if node >= n {
                    return Err(SnapshotError::Corrupt("wake-timer node"));
                }
                fifo.push_back((due, node));
            }
        }
        self.drain_wait.clear();
        let drain_len = r.read_usize()?;
        for _ in 0..drain_len {
            let node = r.read_u32()?;
            if node >= n {
                return Err(SnapshotError::Corrupt("drain-wait node"));
            }
            self.drain_wait.push(node);
        }
        let fenced_count = r.read_usize()?;
        if fenced_count > self.states.len() {
            return Err(SnapshotError::Corrupt("fenced count"));
        }
        self.fenced_count = fenced_count;
        for fenced in &mut self.fenced_sources {
            *fenced = r.read_bool()?;
        }
        for since in &mut self.gated_since {
            *since = r.read_u64()?;
        }
        for win in
            [&mut self.win_gated_cycles, &mut self.win_sleep_events, &mut self.win_wake_events]
        {
            for v in win.iter_mut() {
                *v = r.read_u64()?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::RegionLayout;

    #[test]
    fn disabled_config_is_the_default() {
        assert_eq!(GatingConfig::default(), GatingConfig::disabled());
        assert!(!GatingConfig::default().is_enabled());
    }

    #[test]
    fn enabled_config_clamps_wakeup_latency() {
        let g = GatingConfig::enabled(10, 0);
        assert_eq!(g.wakeup_latency(), 1);
        let g = GatingConfig::enabled(10, u64::MAX);
        assert_eq!(g.wakeup_latency(), MAX_CHANNEL_LATENCY);
    }

    #[test]
    fn overrides_resolve_per_island_with_last_wins() {
        let g = GatingConfig::enabled(16, 4)
            .with_island_override(1, 64, 2)
            .with_island_override(1, 32, 8);
        let (thresholds, latencies) = g.resolve(3);
        assert_eq!(thresholds, vec![16, 32, 16]);
        assert_eq!(latencies, vec![4, 8, 4]);
        assert!(g.validate(3).is_ok());
        assert_eq!(
            g.validate(1),
            Err(ConfigError::GatingIslandOutOfRange { island: 1, island_count: 1 })
        );
    }

    #[test]
    fn fenced_states_are_gated_and_wakeup() {
        assert!(!GateState::Active.is_fenced());
        assert!(!GateState::DrainWait.is_fenced());
        assert!(GateState::Gated.is_fenced());
        assert!(GateState::WakeUp.is_fenced());
    }

    #[test]
    fn controller_walks_the_state_machine() {
        let map = RegionLayout::Whole.build(2, 2);
        let mut c = GatingController::new(&GatingConfig::enabled(3, 2), &map);
        assert!(c.enabled);
        // All four routers idle from cycle 0; due at cycle 3.
        c.start_drains(0, 2, |_| false);
        assert!(c.drain_wait.is_empty());
        c.start_drains(0, 3, |_| false);
        assert_eq!(c.drain_wait.len(), 4);
        assert_eq!(c.states[0], GateState::DrainWait);
        // Inbound clear on every node: all gate.
        c.complete_drains(|_| true, |_| true, |_| false, |_| 3);
        assert_eq!(c.gated_count(), 4);
        assert_eq!(c.fenced_count, 4);
        // Wake node 2 at cycle 10; due at 12.
        c.request_wakeup(2, 10);
        assert_eq!(c.states[2], GateState::WakeUp);
        c.request_wakeup(2, 10); // idempotent
        c.fenced_sources[2] = true;
        let mut unfenced = Vec::new();
        c.complete_wakeups(0, 11, |n| unfenced.push(n));
        assert!(unfenced.is_empty());
        c.complete_wakeups(0, 12, |n| unfenced.push(n));
        assert_eq!(unfenced, vec![2], "the fenced source is handed back at wakeup");
        assert!(!c.fenced_sources[2]);
        assert_eq!(c.states[2], GateState::Active);
        assert!(c.idle[2], "a woken router is empty, hence idle again");
        let (gated, sleeps, wakes) = c.drain_router_window(2, 12);
        assert_eq!(gated, 10 - 3);
        assert_eq!(sleeps, 1);
        assert_eq!(wakes, 1);
    }

    #[test]
    fn arrival_aborts_drain_wait_without_a_wake_event() {
        let map = RegionLayout::Whole.build(2, 2);
        let mut c = GatingController::new(&GatingConfig::enabled(1, 4), &map);
        c.start_drains(0, 1, |_| false);
        assert_eq!(c.states[0], GateState::DrainWait);
        c.on_flit_arrival(0);
        assert_eq!(c.states[0], GateState::Active);
        assert!(!c.idle[0]);
        c.complete_drains(|_| true, |_| true, |_| false, |_| 1);
        assert_eq!(c.states[0], GateState::Active, "the arrival aborted node 0's power-down");
        assert_eq!(c.gated_count(), 3, "the untouched routers gate normally");
        let (gated, sleeps, wakes) = c.drain_router_window(0, 5);
        assert_eq!((gated, sleeps, wakes), (0, 0, 0));
    }
}
