//! Traffic generation: synthetic patterns and custom traffic matrices.
//!
//! The paper evaluates the DVFS policies on five synthetic patterns
//! (uniform, tornado, bit-complement, transpose, neighbor) and on two
//! multimedia applications described by traffic matrices; both kinds are
//! provided here behind the [`TrafficSpec`] trait.

use crate::topology::Mesh2d;
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt::Debug;

/// The synthetic traffic patterns used in Sec. V of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TrafficPattern {
    /// Each packet goes to a destination chosen uniformly at random
    /// (excluding the source itself).
    Uniform,
    /// Each node `(x, y)` sends to `((x + ⌈k/2⌉ − 1) mod k, y)`: adversarial
    /// for ring-like dimensions.
    Tornado,
    /// Node `(x, y)` sends to `(k−1−x, k−1−y)` (bit-complement on the mesh
    /// coordinates).
    BitComplement,
    /// Node `(x, y)` sends to `(y, x)`; requires a square mesh.
    Transpose,
    /// Node `(x, y)` sends to `((x+1) mod k, y)`: nearest-neighbor traffic.
    Neighbor,
}

impl TrafficPattern {
    /// All deterministic and random patterns evaluated in the paper.
    pub const ALL: [TrafficPattern; 5] = [
        TrafficPattern::Uniform,
        TrafficPattern::Tornado,
        TrafficPattern::BitComplement,
        TrafficPattern::Transpose,
        TrafficPattern::Neighbor,
    ];

    /// A short lowercase name (matches the labels used in the paper figures).
    pub fn name(self) -> &'static str {
        match self {
            TrafficPattern::Uniform => "uniform",
            TrafficPattern::Tornado => "tornado",
            TrafficPattern::BitComplement => "bitcomp",
            TrafficPattern::Transpose => "transpose",
            TrafficPattern::Neighbor => "neighbor",
        }
    }

    /// Destination node for a packet generated at `src`.
    ///
    /// Returns `None` when the pattern maps the source onto itself (such
    /// nodes simply do not inject, as in the reference simulator).
    pub fn destination(self, src: usize, mesh: &Mesh2d, rng: &mut StdRng) -> Option<usize> {
        let (x, y) = mesh.coords(src);
        let w = mesh.width();
        let h = mesh.height();
        let dst = match self {
            TrafficPattern::Uniform => {
                let n = mesh.node_count();
                if n <= 1 {
                    return None;
                }
                // Rejection-free uniform choice excluding the source.
                let mut d = rng.gen_range(0..n - 1);
                if d >= src {
                    d += 1;
                }
                d
            }
            TrafficPattern::Tornado => {
                let dx = (x + w.div_ceil(2) - 1) % w;
                let dy = (y + h.div_ceil(2) - 1) % h;
                mesh.node_at(dx, dy)
            }
            TrafficPattern::BitComplement => mesh.node_at(w - 1 - x, h - 1 - y),
            TrafficPattern::Transpose => {
                if x < h && y < w {
                    mesh.node_at(y, x)
                } else {
                    return None;
                }
            }
            TrafficPattern::Neighbor => mesh.node_at((x + 1) % w, y),
        };
        if dst == src {
            None
        } else {
            Some(dst)
        }
    }
}

/// A source of traffic: decides, once per node-clock cycle and per node,
/// whether to generate a packet and where it should go.
pub trait TrafficSpec: Debug + Send {
    /// Number of flits in every generated packet.
    fn packet_length(&self) -> usize;

    /// Average offered load in flits per node-clock cycle per node
    /// (used for reporting and by rate-based controllers in open-loop tests).
    fn offered_load(&self) -> f64;

    /// Possibly generates a packet at `src` for this node-clock cycle.
    ///
    /// Returns the destination node if a packet is generated.
    fn maybe_generate(&mut self, src: usize, mesh: &Mesh2d, rng: &mut StdRng) -> Option<usize>;
}

/// Bernoulli packet injection following one of the synthetic
/// [`TrafficPattern`]s.
///
/// With injection rate `λ_node` (flits per node cycle) and packets of `S`
/// flits, a packet is generated with probability `λ_node / S` per node cycle,
/// which yields an average flit rate of `λ_node`.
#[derive(Debug, Clone)]
pub struct SyntheticTraffic {
    pattern: TrafficPattern,
    injection_rate: f64,
    packet_length: usize,
}

impl SyntheticTraffic {
    /// Creates a synthetic source.
    ///
    /// # Panics
    ///
    /// Panics if `injection_rate` is negative/not finite or `packet_length`
    /// is zero.
    pub fn new(pattern: TrafficPattern, injection_rate: f64, packet_length: usize) -> Self {
        assert!(injection_rate.is_finite() && injection_rate >= 0.0);
        assert!(packet_length > 0);
        SyntheticTraffic { pattern, injection_rate, packet_length }
    }

    /// The pattern followed by this source.
    pub fn pattern(&self) -> TrafficPattern {
        self.pattern
    }

    /// The configured injection rate in flits per node cycle.
    pub fn injection_rate(&self) -> f64 {
        self.injection_rate
    }
}

impl TrafficSpec for SyntheticTraffic {
    fn packet_length(&self) -> usize {
        self.packet_length
    }

    fn offered_load(&self) -> f64 {
        self.injection_rate
    }

    fn maybe_generate(&mut self, src: usize, mesh: &Mesh2d, rng: &mut StdRng) -> Option<usize> {
        let p = (self.injection_rate / self.packet_length as f64).min(1.0);
        if rng.gen_bool(p) {
            self.pattern.destination(src, mesh, rng)
        } else {
            None
        }
    }
}

/// Traffic described by a full source→destination rate matrix, used for the
/// multimedia applications of Sec. VI.
///
/// `rates[src][dst]` is the average number of flits per node-clock cycle that
/// `src` sends to `dst`.
#[derive(Debug, Clone)]
pub struct MatrixTraffic {
    rates: Vec<Vec<f64>>,
    row_totals: Vec<f64>,
    packet_length: usize,
}

impl MatrixTraffic {
    /// Creates a matrix source.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square-by-row (every row must have the
    /// same length as the number of rows), any rate is negative or not
    /// finite, or `packet_length` is zero.
    pub fn new(rates: Vec<Vec<f64>>, packet_length: usize) -> Self {
        assert!(packet_length > 0, "packet length must be positive");
        let n = rates.len();
        for row in &rates {
            assert_eq!(row.len(), n, "traffic matrix must be square");
            for &r in row {
                assert!(r.is_finite() && r >= 0.0, "rates must be non-negative and finite");
            }
        }
        let row_totals = rates.iter().map(|row| row.iter().sum()).collect();
        MatrixTraffic { rates, row_totals, packet_length }
    }

    /// Number of nodes covered by the matrix.
    pub fn node_count(&self) -> usize {
        self.rates.len()
    }

    /// The rate from `src` to `dst` in flits per node cycle.
    pub fn rate(&self, src: usize, dst: usize) -> f64 {
        self.rates[src][dst]
    }

    /// Total flits per node cycle injected by `src`.
    pub fn row_total(&self, src: usize) -> f64 {
        self.row_totals[src]
    }

    /// Returns a copy of this matrix with every rate multiplied by `factor`
    /// (used to sweep the application speed).
    pub fn scaled(&self, factor: f64) -> MatrixTraffic {
        assert!(factor.is_finite() && factor >= 0.0, "scale factor must be non-negative");
        let rates = self
            .rates
            .iter()
            .map(|row| row.iter().map(|r| r * factor).collect())
            .collect();
        MatrixTraffic::new(rates, self.packet_length)
    }
}

impl TrafficSpec for MatrixTraffic {
    fn packet_length(&self) -> usize {
        self.packet_length
    }

    fn offered_load(&self) -> f64 {
        if self.rates.is_empty() {
            return 0.0;
        }
        self.row_totals.iter().sum::<f64>() / self.rates.len() as f64
    }

    fn maybe_generate(&mut self, src: usize, _mesh: &Mesh2d, rng: &mut StdRng) -> Option<usize> {
        if src >= self.rates.len() {
            return None;
        }
        let total = self.row_totals[src];
        if total <= 0.0 {
            return None;
        }
        let p = (total / self.packet_length as f64).min(1.0);
        if !rng.gen_bool(p) {
            return None;
        }
        // Choose the destination proportionally to its rate.
        let mut pick = rng.gen_range(0.0..total);
        for (dst, &r) in self.rates[src].iter().enumerate() {
            if r <= 0.0 {
                continue;
            }
            if pick < r {
                return if dst == src { None } else { Some(dst) };
            }
            pick -= r;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn uniform_never_sends_to_self_and_covers_all_nodes() {
        let mesh = Mesh2d::new(4, 4);
        let mut r = rng();
        let mut seen = [false; 16];
        for _ in 0..2000 {
            let dst = TrafficPattern::Uniform.destination(5, &mesh, &mut r).unwrap();
            assert_ne!(dst, 5);
            seen[dst] = true;
        }
        assert_eq!(seen.iter().filter(|&&s| s).count(), 15);
    }

    #[test]
    fn tornado_is_deterministic_and_wraps() {
        let mesh = Mesh2d::new(4, 4);
        let mut r = rng();
        // k = 4 => shift = k/2 - 1 = 1 in both dimensions.
        let dst = TrafficPattern::Tornado.destination(mesh.node_at(0, 0), &mesh, &mut r).unwrap();
        assert_eq!(dst, mesh.node_at(1, 1));
        let dst = TrafficPattern::Tornado.destination(mesh.node_at(3, 3), &mesh, &mut r).unwrap();
        assert_eq!(dst, mesh.node_at(0, 0));
    }

    #[test]
    fn bit_complement_mirrors_coordinates() {
        let mesh = Mesh2d::new(5, 5);
        let mut r = rng();
        let dst = TrafficPattern::BitComplement
            .destination(mesh.node_at(0, 0), &mesh, &mut r)
            .unwrap();
        assert_eq!(dst, mesh.node_at(4, 4));
        // The centre of an odd mesh maps onto itself and therefore does not inject.
        assert_eq!(
            TrafficPattern::BitComplement.destination(mesh.node_at(2, 2), &mesh, &mut r),
            None
        );
    }

    #[test]
    fn transpose_swaps_coordinates() {
        let mesh = Mesh2d::new(5, 5);
        let mut r = rng();
        let dst =
            TrafficPattern::Transpose.destination(mesh.node_at(1, 3), &mesh, &mut r).unwrap();
        assert_eq!(dst, mesh.node_at(3, 1));
        assert_eq!(TrafficPattern::Transpose.destination(mesh.node_at(2, 2), &mesh, &mut r), None);
    }

    #[test]
    fn neighbor_sends_one_hop_east_with_wraparound() {
        let mesh = Mesh2d::new(4, 4);
        let mut r = rng();
        let dst = TrafficPattern::Neighbor.destination(mesh.node_at(3, 2), &mesh, &mut r).unwrap();
        assert_eq!(dst, mesh.node_at(0, 2));
    }

    #[test]
    fn synthetic_rate_matches_configuration() {
        let mesh = Mesh2d::new(4, 4);
        let mut traffic = SyntheticTraffic::new(TrafficPattern::Uniform, 0.3, 5);
        let mut r = rng();
        let trials = 200_000;
        let mut packets = 0;
        for _ in 0..trials {
            if traffic.maybe_generate(0, &mesh, &mut r).is_some() {
                packets += 1;
            }
        }
        let measured_flit_rate = packets as f64 * 5.0 / trials as f64;
        assert!(
            (measured_flit_rate - 0.3).abs() < 0.01,
            "measured {measured_flit_rate}, expected 0.3"
        );
    }

    #[test]
    fn pattern_names_are_stable() {
        assert_eq!(TrafficPattern::Uniform.name(), "uniform");
        assert_eq!(TrafficPattern::BitComplement.name(), "bitcomp");
        assert_eq!(TrafficPattern::ALL.len(), 5);
    }

    #[test]
    fn matrix_traffic_respects_row_rates() {
        // Node 0 sends twice as much to node 2 as to node 1.
        let rates = vec![
            vec![0.0, 0.1, 0.2, 0.0],
            vec![0.0; 4],
            vec![0.0; 4],
            vec![0.0; 4],
        ];
        let mut traffic = MatrixTraffic::new(rates, 2);
        let mesh = Mesh2d::new(2, 2);
        let mut r = rng();
        let mut to1 = 0;
        let mut to2 = 0;
        for _ in 0..100_000 {
            match traffic.maybe_generate(0, &mesh, &mut r) {
                Some(1) => to1 += 1,
                Some(2) => to2 += 1,
                Some(other) => panic!("unexpected destination {other}"),
                None => {}
            }
        }
        let ratio = to2 as f64 / to1 as f64;
        assert!((ratio - 2.0).abs() < 0.2, "destination mix should follow the rates, got {ratio}");
        // Node 1 never sends.
        for _ in 0..1000 {
            assert_eq!(traffic.maybe_generate(1, &mesh, &mut r), None);
        }
    }

    #[test]
    fn matrix_scaling_multiplies_offered_load() {
        let rates = vec![vec![0.0, 0.1], vec![0.1, 0.0]];
        let m = MatrixTraffic::new(rates, 4);
        let m2 = m.scaled(2.0);
        assert!((m2.offered_load() - 2.0 * m.offered_load()).abs() < 1e-12);
        assert!((m2.rate(0, 1) - 0.2).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "square")]
    fn matrix_must_be_square() {
        let _ = MatrixTraffic::new(vec![vec![0.0, 0.1], vec![0.0]], 4);
    }

    #[test]
    fn offered_load_averages_rows() {
        let rates = vec![vec![0.0, 0.4], vec![0.0, 0.0]];
        let m = MatrixTraffic::new(rates, 4);
        assert!((m.offered_load() - 0.2).abs() < 1e-12);
        assert!((m.row_total(0) - 0.4).abs() < 1e-12);
        assert_eq!(m.node_count(), 2);
    }
}
