//! RMSD — Rate-based Max Slow Down (Sec. III of the paper).
//!
//! The transmitting nodes periodically report how many flits they injected;
//! the controller computes the average node injection rate `λ_node` and sets
//!
//! ```text
//! F_noc = F_node · λ_node / λ_max      (Eq. 2)
//! ```
//!
//! clipped to the `[F_min, F_max]` range of the voltage-controlled oscillator.
//! `λ_max` is chosen a safety margin below the network's saturation rate
//! (10 % below in the paper), so that after slowing down the NoC still
//! sustains the offered throughput — but nothing more.

use crate::policy::{ControlMeasurement, DvfsPolicy};
use noc_sim::{Hertz, NetworkConfig};
use serde::{Deserialize, Serialize};

/// Parameters of the RMSD policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RmsdConfig {
    /// The target per-NoC-cycle injection rate `λ_max` (flits per NoC cycle
    /// per node); usually `0.9 ×` the measured saturation rate.
    pub lambda_max: f64,
    /// Exponential-smoothing factor applied to the measured rate
    /// (`1.0` = use the raw window measurement, smaller values average over
    /// several windows). The paper averages over the reporting interval; a
    /// mild smoothing makes the Bernoulli-noise behaviour comparable.
    pub rate_smoothing: f64,
}

impl RmsdConfig {
    /// Creates a configuration with the given `λ_max` and no smoothing.
    ///
    /// # Panics
    ///
    /// Panics if `lambda_max` is not strictly positive and finite.
    pub fn with_lambda_max(lambda_max: f64) -> Self {
        assert!(lambda_max.is_finite() && lambda_max > 0.0, "lambda_max must be positive");
        RmsdConfig { lambda_max, rate_smoothing: 1.0 }
    }

    /// Sets the exponential smoothing factor (`0 < factor <= 1`).
    ///
    /// # Panics
    ///
    /// Panics if the factor is outside `(0, 1]`.
    pub fn smoothing(mut self, factor: f64) -> Self {
        assert!(factor > 0.0 && factor <= 1.0, "smoothing factor must be in (0, 1]");
        self.rate_smoothing = factor;
        self
    }
}

/// The Rate-based Max Slow Down controller.
#[derive(Debug, Clone, PartialEq)]
pub struct Rmsd {
    config: RmsdConfig,
    node_frequency: Hertz,
    min_frequency: Hertz,
    max_frequency: Hertz,
    smoothed_rate: Option<f64>,
}

impl Rmsd {
    /// Creates the controller for a network configuration.
    pub fn new(cfg: &NetworkConfig, config: RmsdConfig) -> Self {
        Rmsd {
            config,
            node_frequency: cfg.node_frequency(),
            min_frequency: cfg.min_frequency(),
            max_frequency: cfg.max_frequency(),
            smoothed_rate: None,
        }
    }

    /// The `λ_max` target rate in use.
    pub fn lambda_max(&self) -> f64 {
        self.config.lambda_max
    }

    /// The node injection rate below which the frequency clips to `F_min`
    /// (the `λ_min` of the paper: `λ_max · F_min / F_max`).
    pub fn lambda_min(&self) -> f64 {
        self.config.lambda_max * self.min_frequency.as_hz() / self.max_frequency.as_hz()
    }

    /// The frequency-scaling law of Eq. (2), before clipping.
    pub fn unclipped_frequency(&self, lambda_node: f64) -> Hertz {
        let hz = self.node_frequency.as_hz() * lambda_node / self.config.lambda_max;
        Hertz::new(hz.max(1.0))
    }
}

impl DvfsPolicy for Rmsd {
    fn name(&self) -> &'static str {
        "RMSD"
    }

    fn next_frequency(&mut self, measurement: &ControlMeasurement) -> Hertz {
        let raw = measurement.node_injection_rate();
        let alpha = self.config.rate_smoothing;
        let rate = match self.smoothed_rate {
            Some(prev) => alpha * raw + (1.0 - alpha) * prev,
            None => raw,
        };
        self.smoothed_rate = Some(rate);
        self.unclipped_frequency(rate).clamp(self.min_frequency, self.max_frequency)
    }

    fn reset(&mut self) {
        self.smoothed_rate = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_sim::WindowMeasurement;

    fn cfg() -> NetworkConfig {
        NetworkConfig::paper_baseline()
    }

    fn measurement(rate: f64) -> ControlMeasurement {
        let node_count = 25;
        let node_cycles = 10_000u64;
        ControlMeasurement {
            window: WindowMeasurement {
                node_cycles,
                noc_cycles: 10_000,
                flits_generated: (rate * node_count as f64 * node_cycles as f64).round() as u64,
                ..Default::default()
            },
            node_count,
            current_frequency: Hertz::from_ghz(1.0),
        }
    }

    #[test]
    fn frequency_follows_eq2_inside_the_range() {
        let mut rmsd = Rmsd::new(&cfg(), RmsdConfig::with_lambda_max(0.378));
        // λ_node = 0.2 → F = 1 GHz · 0.2 / 0.378 ≈ 529 MHz.
        let f = rmsd.next_frequency(&measurement(0.2));
        assert!((f.as_mhz() - 529.1).abs() < 2.0, "got {f}");
    }

    #[test]
    fn frequency_clips_to_fmin_at_low_rate() {
        let mut rmsd = Rmsd::new(&cfg(), RmsdConfig::with_lambda_max(0.378));
        let f = rmsd.next_frequency(&measurement(0.05));
        assert_eq!(f, cfg().min_frequency());
        // λ_min for the paper baseline: 0.378 · 333/1000 ≈ 0.126.
        assert!((rmsd.lambda_min() - 0.1259).abs() < 1e-3);
    }

    #[test]
    fn frequency_clips_to_fmax_at_high_rate() {
        let mut rmsd = Rmsd::new(&cfg(), RmsdConfig::with_lambda_max(0.378));
        let f = rmsd.next_frequency(&measurement(0.45));
        assert_eq!(f, cfg().max_frequency());
    }

    #[test]
    fn at_lambda_max_the_clock_runs_at_node_speed() {
        let mut rmsd = Rmsd::new(&cfg(), RmsdConfig::with_lambda_max(0.378));
        let f = rmsd.next_frequency(&measurement(0.378));
        assert!((f.as_ghz() - 1.0).abs() < 1e-3);
    }

    #[test]
    fn smoothing_averages_consecutive_windows() {
        let mut rmsd =
            Rmsd::new(&cfg(), RmsdConfig::with_lambda_max(0.378).smoothing(0.5));
        let f1 = rmsd.next_frequency(&measurement(0.2));
        // A sudden spike is only partially followed.
        let f2 = rmsd.next_frequency(&measurement(0.36));
        let expected_rate = 0.5 * 0.36 + 0.5 * 0.2;
        let expected = 1.0e9 * expected_rate / 0.378;
        assert!(f2 > f1);
        assert!((f2.as_hz() - expected).abs() / expected < 1e-6);
    }

    #[test]
    fn reset_clears_the_rate_history() {
        let mut rmsd =
            Rmsd::new(&cfg(), RmsdConfig::with_lambda_max(0.378).smoothing(0.25));
        let _ = rmsd.next_frequency(&measurement(0.35));
        rmsd.reset();
        let f = rmsd.next_frequency(&measurement(0.15));
        // After reset the first sample is taken at face value.
        let expected = 1.0e9 * 0.15 / 0.378;
        assert!((f.as_hz() - expected).abs() / expected < 1e-6);
    }

    #[test]
    fn zero_rate_clips_to_fmin_without_panicking() {
        let mut rmsd = Rmsd::new(&cfg(), RmsdConfig::with_lambda_max(0.378));
        let f = rmsd.next_frequency(&measurement(0.0));
        assert_eq!(f, cfg().min_frequency());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn non_positive_lambda_max_rejected() {
        let _ = RmsdConfig::with_lambda_max(0.0);
    }

    #[test]
    #[should_panic(expected = "smoothing factor")]
    fn invalid_smoothing_rejected() {
        let _ = RmsdConfig::with_lambda_max(0.3).smoothing(0.0);
    }
}
