//! Headline power-delay trade-off metrics.
//!
//! The paper's argument is carried by a handful of ratios quoted in the
//! abstract and throughout Secs. IV–VI: how much power RMSD saves relative to
//! No-DVFS and DMSD, and how much delay it costs relative to DMSD.
//! [`TradeOffSummary`] extracts those numbers from a set of policy curves so
//! that tests, benches and EXPERIMENTS.md all report the same quantities.

use crate::sweep::PolicyCurve;
use serde::{Deserialize, Serialize};

/// The headline ratios at one reference load.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TradeOffSummary {
    /// The load at which the ratios were evaluated.
    pub load: f64,
    /// `P(No-DVFS) / P(RMSD)` — the paper quotes ≈2.2× at a 0.2 injection rate.
    pub power_ratio_nodvfs_over_rmsd: f64,
    /// `P(No-DVFS) / P(DMSD)`.
    pub power_ratio_nodvfs_over_dmsd: f64,
    /// `P(DMSD) / P(RMSD)` — the paper quotes 1.2–1.5× (DMSD spends 20–50 %
    /// more power than RMSD).
    pub power_ratio_dmsd_over_rmsd: f64,
    /// `delay(RMSD) / delay(DMSD)` — the paper quotes ≈2–3×.
    pub delay_ratio_rmsd_over_dmsd: f64,
    /// `delay(RMSD) / delay(No-DVFS)`.
    pub delay_ratio_rmsd_over_nodvfs: f64,
}

impl TradeOffSummary {
    /// Computes the summary at the sweep point nearest to `load`.
    ///
    /// # Panics
    ///
    /// Panics if any curve is empty or if a denominator quantity is zero
    /// (which would indicate a broken experiment rather than a legitimate
    /// operating point).
    pub fn at_load(
        load: f64,
        no_dvfs: &PolicyCurve,
        rmsd: &PolicyCurve,
        dmsd: &PolicyCurve,
    ) -> TradeOffSummary {
        let b = &no_dvfs.nearest(load).result;
        let r = &rmsd.nearest(load).result;
        let d = &dmsd.nearest(load).result;
        assert!(r.power_mw > 0.0 && d.power_mw > 0.0, "power must be positive");
        assert!(d.avg_delay_ns > 0.0 && b.avg_delay_ns > 0.0, "delay must be positive");
        TradeOffSummary {
            load,
            power_ratio_nodvfs_over_rmsd: b.power_mw / r.power_mw,
            power_ratio_nodvfs_over_dmsd: b.power_mw / d.power_mw,
            power_ratio_dmsd_over_rmsd: d.power_mw / r.power_mw,
            delay_ratio_rmsd_over_dmsd: r.avg_delay_ns / d.avg_delay_ns,
            delay_ratio_rmsd_over_nodvfs: r.avg_delay_ns / b.avg_delay_ns,
        }
    }

    /// The paper's qualitative claim: DMSD pays a bounded power premium over
    /// RMSD but wins a larger factor back in delay. Returns `true` when the
    /// delay advantage of DMSD exceeds its power premium.
    pub fn dmsd_wins_trade_off(&self) -> bool {
        self.delay_ratio_rmsd_over_dmsd > self.power_ratio_dmsd_over_rmsd
    }
}

impl std::fmt::Display for TradeOffSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "at load {:.3}: P(NoDVFS)/P(RMSD)={:.2}x, P(DMSD)/P(RMSD)={:.2}x, \
             delay(RMSD)/delay(DMSD)={:.2}x",
            self.load,
            self.power_ratio_nodvfs_over_rmsd,
            self.power_ratio_dmsd_over_rmsd,
            self.delay_ratio_rmsd_over_dmsd
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::closed_loop::OperatingPointResult;
    use crate::sweep::SweepPoint;

    fn point(policy: &str, load: f64, delay_ns: f64, power_mw: f64) -> SweepPoint {
        SweepPoint {
            load,
            result: OperatingPointResult {
                policy: policy.to_string(),
                offered_load: load,
                measured_rate: load,
                avg_latency_cycles: 50.0,
                avg_delay_ns: delay_ns,
                max_delay_ns: delay_ns * 2.0,
                power_mw,
                dynamic_power_mw: power_mw * 0.8,
                static_power_mw: power_mw * 0.2,
                avg_frequency_ghz: 1.0,
                avg_vdd: 0.9,
                throughput: load,
                packets_delivered: 1000,
                measurement_wall_ns: 1e6,
                flits_dropped: 0,
                reachability: 1.0,
            },
        }
    }

    fn curve(policy: &str, rows: &[(f64, f64, f64)]) -> PolicyCurve {
        PolicyCurve {
            policy: policy.to_string(),
            points: rows.iter().map(|&(l, d, p)| point(policy, l, d, p)).collect(),
        }
    }

    #[test]
    fn ratios_match_hand_computation() {
        let no_dvfs = curve("No-DVFS", &[(0.2, 100.0, 150.0)]);
        let rmsd = curve("RMSD", &[(0.2, 300.0, 68.0)]);
        let dmsd = curve("DMSD", &[(0.2, 150.0, 88.0)]);
        let s = TradeOffSummary::at_load(0.2, &no_dvfs, &rmsd, &dmsd);
        assert!((s.power_ratio_nodvfs_over_rmsd - 150.0 / 68.0).abs() < 1e-12);
        assert!((s.power_ratio_dmsd_over_rmsd - 88.0 / 68.0).abs() < 1e-12);
        assert!((s.delay_ratio_rmsd_over_dmsd - 2.0).abs() < 1e-12);
        assert!(s.dmsd_wins_trade_off());
    }

    #[test]
    fn trade_off_can_go_the_other_way() {
        // If DMSD spent 3x the power of RMSD for only a 1.5x delay advantage,
        // the claim would not hold; the summary must report that faithfully.
        let no_dvfs = curve("No-DVFS", &[(0.2, 100.0, 150.0)]);
        let rmsd = curve("RMSD", &[(0.2, 150.0, 40.0)]);
        let dmsd = curve("DMSD", &[(0.2, 100.0, 120.0)]);
        let s = TradeOffSummary::at_load(0.2, &no_dvfs, &rmsd, &dmsd);
        assert!(!s.dmsd_wins_trade_off());
    }

    #[test]
    fn display_is_human_readable() {
        let no_dvfs = curve("No-DVFS", &[(0.2, 100.0, 150.0)]);
        let rmsd = curve("RMSD", &[(0.2, 300.0, 68.0)]);
        let dmsd = curve("DMSD", &[(0.2, 150.0, 88.0)]);
        let s = TradeOffSummary::at_load(0.2, &no_dvfs, &rmsd, &dmsd);
        let text = s.to_string();
        assert!(text.contains("P(NoDVFS)/P(RMSD)"));
        assert!(text.contains("2.21x") || text.contains("2.20x"));
    }
}
