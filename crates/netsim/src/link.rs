//! Inter-router flit channels and credit-return channels.
//!
//! A [`DelayChannel`] delivers items a fixed number of NoC cycles after they
//! were sent. Flit channels carry [`Flit`](crate::Flit)s downstream; credit
//! channels carry freed-buffer notifications upstream. Because the whole NoC
//! is a single clock domain (the premise of the paper), both ends of every
//! channel advance on the same clock and no synchronizer model is needed.

use std::collections::VecDeque;

/// A FIFO channel that delivers items `latency` cycles after injection.
#[derive(Debug, Clone)]
pub struct DelayChannel<T> {
    latency: u64,
    in_flight: VecDeque<(u64, T)>,
}

impl<T> DelayChannel<T> {
    /// Creates a channel with the given delivery latency in cycles.
    ///
    /// # Panics
    ///
    /// Panics if `latency` is zero — a combinational (zero-cycle) link would
    /// break the simulator's phase ordering.
    pub fn new(latency: u64) -> Self {
        assert!(latency > 0, "channel latency must be at least one cycle");
        DelayChannel { latency, in_flight: VecDeque::new() }
    }

    /// The configured delivery latency in cycles.
    pub fn latency(&self) -> u64 {
        self.latency
    }

    /// Number of items currently travelling on the channel.
    pub fn occupancy(&self) -> usize {
        self.in_flight.len()
    }

    /// Sends an item at cycle `now`; it will become deliverable at
    /// `now + latency`.
    pub fn send(&mut self, now: u64, item: T) {
        self.in_flight.push_back((now + self.latency, item));
    }

    /// Removes and returns every item whose delivery time has arrived at
    /// cycle `now`, preserving send order.
    pub fn deliver(&mut self, now: u64) -> Vec<T> {
        let mut out = Vec::new();
        while let Some((when, _)) = self.in_flight.front() {
            if *when <= now {
                let (_, item) = self.in_flight.pop_front().expect("front exists");
                out.push(item);
            } else {
                break;
            }
        }
        out
    }

    /// Whether no items are in flight.
    pub fn is_empty(&self) -> bool {
        self.in_flight.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn items_arrive_after_latency() {
        let mut ch = DelayChannel::new(2);
        ch.send(10, "a");
        assert!(ch.deliver(10).is_empty());
        assert!(ch.deliver(11).is_empty());
        assert_eq!(ch.deliver(12), vec!["a"]);
        assert!(ch.is_empty());
    }

    #[test]
    fn order_is_preserved() {
        let mut ch = DelayChannel::new(1);
        ch.send(0, 1);
        ch.send(0, 2);
        ch.send(1, 3);
        assert_eq!(ch.deliver(1), vec![1, 2]);
        assert_eq!(ch.deliver(2), vec![3]);
    }

    #[test]
    fn late_delivery_collects_everything_due() {
        let mut ch = DelayChannel::new(1);
        ch.send(0, 'x');
        ch.send(1, 'y');
        ch.send(5, 'z');
        // Skipping ahead to cycle 3 delivers x and y but not z.
        assert_eq!(ch.deliver(3), vec!['x', 'y']);
        assert_eq!(ch.occupancy(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one cycle")]
    fn zero_latency_rejected() {
        let _ = DelayChannel::<u32>::new(0);
    }
}
