//! 2D mesh / torus topology and port algebra.
//!
//! Every router has five ports: the four grid directions plus a local port
//! that connects to the injecting/ejecting node. The paper's experiments use
//! 4×4, 5×5 and 8×8 meshes; the torus variant adds the wrap-around links that
//! standard NoC evaluation (Booksim-style) expects, so that the DVFS policies
//! can be exercised on ring-closed dimensions as well.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Number of ports on a grid router (North, East, South, West, Local).
pub const PORT_COUNT: usize = 5;

/// One of the five router ports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// Towards decreasing y.
    North,
    /// Towards increasing x.
    East,
    /// Towards increasing y.
    South,
    /// Towards decreasing x.
    West,
    /// The local injection/ejection port.
    Local,
}

impl Direction {
    /// All directions, in port-index order.
    pub const ALL: [Direction; PORT_COUNT] =
        [Direction::North, Direction::East, Direction::South, Direction::West, Direction::Local];

    /// The port index (0–4) used to address router data structures.
    pub fn index(self) -> usize {
        match self {
            Direction::North => 0,
            Direction::East => 1,
            Direction::South => 2,
            Direction::West => 3,
            Direction::Local => 4,
        }
    }

    /// The direction obtained by looking back along this one
    /// (the port a flit arrives on at the downstream router).
    ///
    /// # Panics
    ///
    /// Panics when called on [`Direction::Local`], which has no opposite.
    pub fn opposite(self) -> Direction {
        match self {
            Direction::North => Direction::South,
            Direction::East => Direction::West,
            Direction::South => Direction::North,
            Direction::West => Direction::East,
            Direction::Local => panic!("the local port has no opposite direction"),
        }
    }

    /// Converts a port index back into a direction.
    ///
    /// # Panics
    ///
    /// Panics if `index >= PORT_COUNT`.
    pub fn from_index(index: usize) -> Direction {
        Direction::ALL[index]
    }
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Direction::North => "N",
            Direction::East => "E",
            Direction::South => "S",
            Direction::West => "W",
            Direction::Local => "L",
        };
        f.write_str(s)
    }
}

/// Whether the grid's dimensions are open chains (mesh) or closed rings
/// (torus with wrap-around links).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TopologyKind {
    /// Open 2D mesh: boundary routers have no neighbour beyond the edge.
    Mesh,
    /// 2D torus: every row and column closes into a ring via wrap-around
    /// links. Requires dateline-aware routing for deadlock freedom (see
    /// [`crate::routing`]).
    Torus,
}

impl TopologyKind {
    /// Both supported kinds.
    pub const ALL: [TopologyKind; 2] = [TopologyKind::Mesh, TopologyKind::Torus];

    /// A short lowercase name (`"mesh"` / `"torus"`).
    pub fn name(self) -> &'static str {
        match self {
            TopologyKind::Mesh => "mesh",
            TopologyKind::Torus => "torus",
        }
    }
}

impl fmt::Display for TopologyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A `width × height` 2D grid, either mesh (open) or torus (wrap-around).
///
/// Nodes are numbered row-major: node `id = y * width + x`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Topology {
    kind: TopologyKind,
    width: usize,
    height: usize,
}

/// Backwards-compatible name from before the topology abstraction: a
/// [`Topology`] constructed through [`Topology::new`] is an open mesh.
pub type Mesh2d = Topology;

impl Topology {
    /// Creates an open mesh (kept as the historical constructor name).
    ///
    /// # Panics
    ///
    /// Panics if either dimension is below 2 (use
    /// [`NetworkConfig`](crate::NetworkConfig) for validated construction).
    pub fn new(width: usize, height: usize) -> Self {
        Topology::mesh(width, height)
    }

    /// Creates an open `width × height` mesh.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is below 2.
    pub fn mesh(width: usize, height: usize) -> Self {
        Topology::with_kind(TopologyKind::Mesh, width, height)
    }

    /// Creates a `width × height` torus (wrap-around links in both
    /// dimensions).
    ///
    /// # Panics
    ///
    /// Panics if either dimension is below 2.
    pub fn torus(width: usize, height: usize) -> Self {
        Topology::with_kind(TopologyKind::Torus, width, height)
    }

    /// Creates a topology of the given kind.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is below 2.
    pub fn with_kind(kind: TopologyKind, width: usize, height: usize) -> Self {
        assert!(width >= 2 && height >= 2, "topology must be at least 2x2");
        Topology { kind, width, height }
    }

    /// Whether the dimensions are open chains or closed rings.
    pub fn kind(&self) -> TopologyKind {
        self.kind
    }

    /// Whether this topology has wrap-around links.
    pub fn is_torus(&self) -> bool {
        self.kind == TopologyKind::Torus
    }

    /// Grid width (columns).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Grid height (rows).
    pub fn height(&self) -> usize {
        self.height
    }

    /// Total number of nodes.
    pub fn node_count(&self) -> usize {
        self.width * self.height
    }

    /// Cartesian coordinates `(x, y)` of a node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn coords(&self, node: usize) -> (usize, usize) {
        assert!(node < self.node_count(), "node index out of range");
        (node % self.width, node / self.width)
    }

    /// Node index at coordinates `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are outside the grid.
    pub fn node_at(&self, x: usize, y: usize) -> usize {
        assert!(x < self.width && y < self.height, "coordinates out of range");
        y * self.width + x
    }

    /// The neighbouring node in direction `dir`, if it exists. On a mesh,
    /// boundary routers have no neighbour beyond the edge; on a torus every
    /// non-local direction wraps around, so the answer is always `Some`.
    pub fn neighbor(&self, node: usize, dir: Direction) -> Option<usize> {
        let (x, y) = self.coords(node);
        match self.kind {
            TopologyKind::Mesh => match dir {
                Direction::North => (y > 0).then(|| self.node_at(x, y - 1)),
                Direction::South => (y + 1 < self.height).then(|| self.node_at(x, y + 1)),
                Direction::East => (x + 1 < self.width).then(|| self.node_at(x + 1, y)),
                Direction::West => (x > 0).then(|| self.node_at(x - 1, y)),
                Direction::Local => None,
            },
            TopologyKind::Torus => match dir {
                Direction::North => Some(self.node_at(x, (y + self.height - 1) % self.height)),
                Direction::South => Some(self.node_at(x, (y + 1) % self.height)),
                Direction::East => Some(self.node_at((x + 1) % self.width, y)),
                Direction::West => Some(self.node_at((x + self.width - 1) % self.width, y)),
                Direction::Local => None,
            },
        }
    }

    /// Minimal hop distance between two nodes: Manhattan distance on the
    /// mesh, per-dimension shortest-way-around distance on the torus.
    pub fn hop_distance(&self, a: usize, b: usize) -> usize {
        let (ax, ay) = self.coords(a);
        let (bx, by) = self.coords(b);
        match self.kind {
            TopologyKind::Mesh => ax.abs_diff(bx) + ay.abs_diff(by),
            TopologyKind::Torus => {
                let dx = ax.abs_diff(bx);
                let dy = ay.abs_diff(by);
                dx.min(self.width - dx) + dy.min(self.height - dy)
            }
        }
    }

    /// Iterates over every directed inter-router link as
    /// `(from_node, direction, to_node)`. Torus wrap-around links are
    /// included.
    pub fn links(&self) -> Vec<(usize, Direction, usize)> {
        let mut out = Vec::new();
        for node in 0..self.node_count() {
            for dir in
                [Direction::North, Direction::East, Direction::South, Direction::West].iter()
            {
                if let Some(n) = self.neighbor(node, *dir) {
                    out.push((node, *dir, n));
                }
            }
        }
        out
    }
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{} {}", self.width, self.height, self.kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coordinates_round_trip() {
        let m = Mesh2d::new(5, 4);
        for node in 0..m.node_count() {
            let (x, y) = m.coords(node);
            assert_eq!(m.node_at(x, y), node);
        }
    }

    #[test]
    fn corner_neighbors() {
        let m = Mesh2d::new(3, 3);
        // Node 0 is the top-left corner (x=0, y=0).
        assert_eq!(m.neighbor(0, Direction::North), None);
        assert_eq!(m.neighbor(0, Direction::West), None);
        assert_eq!(m.neighbor(0, Direction::East), Some(1));
        assert_eq!(m.neighbor(0, Direction::South), Some(3));
        // Node 8 is the bottom-right corner.
        assert_eq!(m.neighbor(8, Direction::South), None);
        assert_eq!(m.neighbor(8, Direction::East), None);
        assert_eq!(m.neighbor(8, Direction::North), Some(5));
        assert_eq!(m.neighbor(8, Direction::West), Some(7));
    }

    #[test]
    fn local_port_has_no_neighbor() {
        for topo in [Topology::mesh(4, 4), Topology::torus(4, 4)] {
            for node in 0..topo.node_count() {
                assert_eq!(topo.neighbor(node, Direction::Local), None);
            }
        }
    }

    #[test]
    fn hop_distance_is_manhattan() {
        let m = Mesh2d::new(5, 5);
        assert_eq!(m.hop_distance(0, 24), 8);
        assert_eq!(m.hop_distance(12, 12), 0);
        assert_eq!(m.hop_distance(0, 4), 4);
        assert_eq!(m.hop_distance(m.node_at(1, 1), m.node_at(3, 4)), 5);
    }

    #[test]
    fn link_count_matches_formula() {
        // A k x k mesh has 2*k*(k-1) bidirectional links = 4*k*(k-1) directed.
        let m = Mesh2d::new(5, 5);
        assert_eq!(m.links().len(), 4 * 5 * 4);
        let m = Mesh2d::new(4, 4);
        assert_eq!(m.links().len(), 4 * 4 * 3);
    }

    #[test]
    fn opposite_directions_pair_up() {
        assert_eq!(Direction::North.opposite(), Direction::South);
        assert_eq!(Direction::South.opposite(), Direction::North);
        assert_eq!(Direction::East.opposite(), Direction::West);
        assert_eq!(Direction::West.opposite(), Direction::East);
    }

    #[test]
    #[should_panic(expected = "no opposite")]
    fn local_opposite_panics() {
        let _ = Direction::Local.opposite();
    }

    #[test]
    fn direction_index_round_trip() {
        for dir in Direction::ALL {
            assert_eq!(Direction::from_index(dir.index()), dir);
        }
    }

    #[test]
    fn links_connect_adjacent_nodes_only() {
        for topo in [Topology::mesh(4, 3), Topology::torus(4, 3)] {
            for (from, _dir, to) in topo.links() {
                assert_eq!(topo.hop_distance(from, to), 1, "{topo}: {from} -> {to}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least 2x2")]
    fn degenerate_mesh_panics() {
        let _ = Mesh2d::new(1, 8);
    }

    #[test]
    fn torus_neighbors_wrap_around() {
        let t = Topology::torus(4, 3);
        // Top-left corner wraps in all four directions.
        assert_eq!(t.neighbor(0, Direction::North), Some(t.node_at(0, 2)));
        assert_eq!(t.neighbor(0, Direction::West), Some(t.node_at(3, 0)));
        assert_eq!(t.neighbor(0, Direction::East), Some(1));
        assert_eq!(t.neighbor(0, Direction::South), Some(4));
        // East off the right edge wraps to column 0.
        let right = t.node_at(3, 1);
        assert_eq!(t.neighbor(right, Direction::East), Some(t.node_at(0, 1)));
    }

    #[test]
    fn torus_hop_distance_takes_the_short_way_around() {
        let t = Topology::torus(5, 5);
        // Corner to opposite corner is 2 hops on the torus (wrap both dims).
        assert_eq!(t.hop_distance(t.node_at(0, 0), t.node_at(4, 4)), 2);
        assert_eq!(t.hop_distance(t.node_at(0, 0), t.node_at(2, 2)), 4);
        assert_eq!(t.hop_distance(12, 12), 0);
        // A mesh of the same size is strictly farther across the diagonal.
        let m = Topology::mesh(5, 5);
        assert!(m.hop_distance(0, 24) > t.hop_distance(0, 24));
    }

    #[test]
    fn torus_has_a_link_per_node_and_direction() {
        // Every node has all four neighbours on a torus: 4*w*h directed links.
        let t = Topology::torus(4, 4);
        assert_eq!(t.links().len(), 4 * 16);
        let t = Topology::torus(5, 3);
        assert_eq!(t.links().len(), 4 * 15);
    }

    #[test]
    fn kind_accessors_and_display() {
        let m = Topology::mesh(4, 4);
        let t = Topology::torus(4, 4);
        assert_eq!(m.kind(), TopologyKind::Mesh);
        assert!(!m.is_torus());
        assert!(t.is_torus());
        assert_eq!(m.to_string(), "4x4 mesh");
        assert_eq!(t.to_string(), "4x4 torus");
        assert_ne!(m, t, "kind participates in equality");
    }
}
