//! # noc-sim — cycle-accurate 2D-mesh virtual-channel NoC simulator
//!
//! `noc-sim` is the simulation substrate used by the
//! [`noc-dvfs`](../noc_dvfs/index.html) crate to reproduce the experiments of
//! *"Rate-based vs Delay-based Control for DVFS in NoC"* (Casu & Giaccone,
//! DATE 2015). It plays the role that a modified Booksim 2.0 plays in the
//! paper: an input-queued virtual-channel router mesh with credit-based flow
//! control, dimension-ordered routing, and — crucially for the paper — a NoC
//! clock that is **decoupled** from the clock of the injecting nodes so that a
//! DVFS controller can slow the network down at run time.
//!
//! The simulator tracks both *cycles* (network clock ticks) and *wall-clock
//! time* (picoseconds), because the paper's central observation is that a
//! latency that is constant in cycles can be wildly non-monotonic in seconds
//! once the clock is scaled.
//!
//! ## Quick example
//!
//! ```
//! use noc_sim::{NetworkConfig, NocSimulation, SyntheticTraffic, TrafficPattern, Hertz};
//!
//! # fn main() {
//! let cfg = NetworkConfig::builder()
//!     .mesh(4, 4)
//!     .virtual_channels(2)
//!     .buffer_depth(4)
//!     .packet_length(5)
//!     .build()
//!     .expect("valid configuration");
//! let traffic = SyntheticTraffic::new(TrafficPattern::Uniform, 0.1, cfg.packet_length());
//! let mut sim = NocSimulation::new(cfg, Box::new(traffic), 7);
//! sim.set_noc_frequency(Hertz::from_mhz(500.0));
//! sim.run_cycles(5_000);
//! let m = sim.take_window();
//! assert!(m.packets_ejected > 0);
//! # }
//! ```
//!
//! ## Module map
//!
//! | module | role | hot-path notes |
//! |---|---|---|
//! | [`units`] | frequency / time / rate newtypes | — |
//! | [`config`] | [`NetworkConfig`] and its builder | — |
//! | [`flit`] | flits, packets and their identifiers | 40-byte `Copy` [`Flit`]; serde gated behind `flit-serde` |
//! | [`topology`] | 2D mesh / torus geometry and port algebra | coordinate math precomputed into a neighbour table by [`sim`] |
//! | [`region`] | voltage-frequency island partitions ([`RegionMap`]) | resolved once; per-island node bitmasks gate the sparse worklists |
//! | [`tenant`] | multi-tenant partitions ([`TenantMap`]) for per-tenant QoS accounting | inert (`None`) unless a map is installed; one slot lookup per counted event |
//! | [`gating`] | router power gating: sleep/wakeup state machines ([`GatingConfig`]) | event-driven timers; fenced routers cost nothing per cycle |
//! | [`fault`] | deterministic fault injection ([`FaultConfig`]): scheduled/hazard link & router failures | separate RNG stream; cached blocked-port masks; inert when unconfigured |
//! | [`routing`] | dimension-ordered (XY/YX) + minimal-adaptive escape-VC routing, torus datelines | invoked once per head flit, not per flit |
//! | [`buffer`] | per-VC FIFO buffers | capacity fixed at construction; never reallocates |
//! | [`arbiter`] | round-robin arbiters | mask-based grant in two bit operations |
//! | [`allocator`] | separable input-first allocator | single pass over requests; persistent scratch, zero allocation per round |
//! | [`router`] | the VC router pipeline (RC → VA → SA → ST) | flat VC arrays + per-port state bitmasks; appends into a caller-owned [`TraversalOutput`](router::TraversalOutput) |
//! | [`link`] | inter-router flit and credit channels | callback delivery ([`DelayChannel::deliver`](link::DelayChannel::deliver)), no per-cycle `Vec`; [`next_due`](link::DelayChannel::next_due) cursor feeds the driver's due-lists |
//! | [`traffic`] | synthetic patterns, bursty sources and traffic matrices | — |
//! | [`source`] | node-clock-driven packet generation | clone-free injection ([`Source::try_inject`](source::Source::try_inject)) |
//! | [`sink`] | ejection and per-packet recording | flat counters, no per-packet map |
//! | [`snapshot`] | versioned checkpoints ([`SimSnapshot`], `snapshot` feature) | cold path; bit-identical pause/resume |
//! | [`trace`] | injection record / replay ([`TraceWriter`] / [`TraceTraffic`], `snapshot` feature) | chunked streaming, one chunk resident; replay draws no RNG |
//! | [`activity`] | switching-activity counters for power estimation | — |
//! | [`stats`] | latency / delay / throughput statistics | — |
//! | [`telemetry`] | zero-perturbation observability: counter fabric, event trace + Perfetto export, heatmaps, profiling | inert (`None`) unless installed; one branch per probe site |
//! | [`clock`] | dual-clock (node vs NoC) bookkeeping | per-cycle divisions cached on frequency change |
//! | [`sim`] | the [`NocSimulation`] driver | sparse activity-tracked stepping (worklists + channel due-lists); owns the per-cycle scratch; see below |
//!
//! ## Performance: sparse stepping and the scratch-buffer contract
//!
//! The cycle loop is **activity-tracked**: an active-router worklist (one
//! `u64` bitset word per 64 nodes), per-channel due-lists (timing wheels
//! keyed by delivery cycle) and a pending-source worklist make the per-cycle
//! cost proportional to the flits actually moving, not to `nodes × ports`.
//! Quiescent routers, empty channels and idle sources cost nothing. Packet
//! generation keeps its exact per-node-per-cycle RNG draw order, so the
//! sparse engine is bit-identical to the dense reference loop retained
//! behind `NOC_DENSE_STEP=1` (see the [`sim`] module docs and the README's
//! *Activity-tracked stepping* section for the quiescence contract).
//!
//! The steady-state cycle loop ([`NocSimulation::step`]) also performs
//! **zero heap allocations**. That property rests on a simple ownership
//! contract:
//!
//! * **Routers own their allocation scratch.** The request list reused by the
//!   VA and SA stages and the grant buffers inside the two
//!   [`SeparableAllocator`](allocator::SeparableAllocator)s live in the
//!   [`Router`](router::Router) / allocator and are cleared *by the stage
//!   that fills them*, at the start of each round.
//! * **The driver owns the traversal scratch.** One
//!   [`TraversalOutput`](router::TraversalOutput) lives in [`NocSimulation`]
//!   and is cleared by the driver before each router's SA/ST stage; the
//!   router only appends. Capacity is retained across cycles, so the lists
//!   stop allocating after the first few congested cycles.
//! * **Channels deliver through callbacks.** A
//!   [`DelayChannel`](link::DelayChannel) hands due items straight out of its
//!   ring buffer to a caller closure; `deliver_collect` (allocating) exists
//!   for tests only.
//! * **Flits are 40-byte `Copy` values.** Injection pops them from the source
//!   queue ([`Source::try_inject`](source::Source::try_inject)); nothing on
//!   the flit path clones.
//!
//! Benchmarks: `cargo bench -p noc-bench --bench sim_throughput` measures raw
//! cycles/second; `scripts/bench.sh` records the tracked suite into
//! `BENCH_sim_throughput.json` at the repo root (see the README's
//! Performance section for the current numbers).

// `deny`, not `forbid`: the per-island parallel stepper in [`sim`] carries
// the crate's only `unsafe` (a shared simulation pointer dereferenced by
// barrier-synchronised workers over disjoint island state); each use site
// allows the lint explicitly and documents its safety argument.
#![deny(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod activity;
pub mod allocator;
pub mod arbiter;
pub mod buffer;
pub mod clock;
pub mod config;
pub mod error;
pub mod fault;
pub mod flit;
pub mod gating;
pub mod link;
pub mod region;
pub mod router;
pub mod routing;
pub mod sim;
pub mod sink;
#[cfg(feature = "snapshot")]
pub mod snapshot;
pub mod source;
pub mod stats;
pub mod telemetry;
pub mod tenant;
pub mod topology;
#[cfg(feature = "snapshot")]
pub mod trace;
pub mod traffic;
pub mod units;

pub use activity::{NetworkActivity, RouterActivity};
pub use clock::DualClock;
pub use config::{NetworkConfig, NetworkConfigBuilder};
pub use error::ConfigError;
pub use fault::{FaultConfig, FaultEvent, FaultState, FaultTarget, FaultTransition, HazardConfig};
pub use flit::{Flit, FlitKind, PacketId};
pub use gating::{GateState, GatingConfig, PerIslandGating, GATE_NEVER};
pub use region::{RegionLayout, RegionMap, RegionScheme};
pub use routing::{MinimalAdaptive, RoutingAlgorithm, RoutingKind, XyRouting, YxRouting};
pub use sim::{NocSimulation, WindowMeasurement};
#[cfg(feature = "snapshot")]
pub use snapshot::{SimSnapshot, SnapshotError};
pub use stats::{PacketRecord, SimStats};
pub use telemetry::{
    CongestionHeatmap, EngineProfile, SimCounters, TelemetryConfig, TelemetryEvent,
    TelemetrySnapshot, TelemetryState, TimedEvent, TraceEmitter,
};
pub use tenant::{TenantMap, TenantMapError};
pub use topology::{Direction, Mesh2d, Topology, TopologyKind};
#[cfg(feature = "snapshot")]
pub use trace::{
    RecordingTraffic, TraceError, TraceEvent, TraceReader, TraceTraffic, TraceWriter,
};
pub use traffic::{BurstyTraffic, MatrixTraffic, SyntheticTraffic, TrafficPattern, TrafficSpec};
pub use units::{Cycles, FlitsPerCycle, Hertz, Picoseconds};
