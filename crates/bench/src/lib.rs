//! # noc-bench — figure regeneration harness
//!
//! This crate turns the experiment drivers of [`noc_dvfs::experiments`] into
//! printable tables: one table (or set of tables) per figure of the paper.
//! The `figures` binary is the entry point used to populate `EXPERIMENTS.md`;
//! the Criterion benches under `benches/` time representative slices of each
//! experiment so that performance regressions of the simulator itself are
//! caught.
//!
//! ```no_run
//! use noc_bench::render_comparison;
//! use noc_dvfs::experiments::{fig4_fig6_baseline_comparison, ExperimentQuality};
//!
//! let comparison = fig4_fig6_baseline_comparison(&ExperimentQuality::quick());
//! println!("{}", render_comparison(&comparison));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use noc_dvfs::experiments::PolicyComparison;
use noc_dvfs::sweep::PolicyCurve;
use noc_dvfs::TradeOffSummary;
use noc_power::OperatingPoint;
use std::fmt::Write as _;

/// Renders one policy comparison as an aligned text table with the series the
/// paper plots: latency (cycles), delay (ns), power (mW) and average
/// frequency (GHz) for every policy at every load.
pub fn render_comparison(comparison: &PolicyComparison) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "## {}  (lambda_max = {:.3} flits/cycle/node)", comparison.label, comparison.lambda_max);
    let _ = writeln!(
        out,
        "{:>10} {:>10} {:>14} {:>12} {:>10} {:>10}",
        "policy", "load", "latency(cyc)", "delay(ns)", "power(mW)", "freq(GHz)"
    );
    for curve in &comparison.curves {
        for p in &curve.points {
            let _ = writeln!(
                out,
                "{:>10} {:>10.4} {:>14.1} {:>12.1} {:>10.1} {:>10.3}",
                curve.policy,
                p.load,
                p.result.avg_latency_cycles,
                p.result.avg_delay_ns,
                p.result.power_mw,
                p.result.avg_frequency_ghz
            );
        }
    }
    out
}

/// Renders the Fig. 5 frequency-vs-voltage curve.
pub fn render_fig5(curve: &[OperatingPoint]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "## Fig. 5 — max router frequency vs Vdd (28-nm FDSOI model)");
    let _ = writeln!(out, "{:>10} {:>12}", "Vdd(V)", "Fmax(GHz)");
    for op in curve {
        let _ = writeln!(out, "{:>10.3} {:>12.3}", op.vdd.as_volts(), op.frequency.as_ghz());
    }
    out
}

/// Renders the headline trade-off ratios computed from one comparison.
///
/// Returns `None` when the comparison does not contain all three policies.
pub fn render_summary(comparison: &PolicyComparison, at_load: f64) -> Option<String> {
    let summary = summary_at(comparison, at_load)?;
    let mut out = String::new();
    let _ = writeln!(out, "## Headline ratios for '{}'", comparison.label);
    let _ = writeln!(out, "{summary}");
    let _ = writeln!(
        out,
        "DMSD wins the power-delay trade-off: {}",
        if summary.dmsd_wins_trade_off() { "yes" } else { "no" }
    );
    Some(out)
}

/// Computes the trade-off summary of a comparison at the sweep point nearest
/// to `at_load`, if the comparison holds all three policies.
pub fn summary_at(comparison: &PolicyComparison, at_load: f64) -> Option<TradeOffSummary> {
    let no_dvfs = comparison.curve("No-DVFS")?;
    let rmsd = comparison.curve("RMSD")?;
    let dmsd = comparison.curve("DMSD")?;
    Some(TradeOffSummary::at_load(at_load, no_dvfs, rmsd, dmsd))
}

/// Extracts a `(loads, values)` pair for one series of one policy, where
/// `series` selects among `"delay"`, `"latency"`, `"power"`, `"frequency"`.
///
/// Returns `None` if the policy is missing or the series name is unknown.
pub fn series(comparison: &PolicyComparison, policy: &str, series: &str) -> Option<(Vec<f64>, Vec<f64>)> {
    let curve: &PolicyCurve = comparison.curve(policy)?;
    let values = match series {
        "delay" => curve.delays_ns(),
        "latency" => curve.latencies_cycles(),
        "power" => curve.powers_mw(),
        "frequency" => curve.frequencies_ghz(),
        _ => return None,
    };
    Some((curve.loads(), values))
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_dvfs::experiments::{compare_policies_synthetic, ExperimentQuality};
    use noc_dvfs::ClosedLoopConfig;
    use noc_sim::{NetworkConfig, TrafficPattern};

    fn tiny_comparison() -> PolicyComparison {
        let quality = ExperimentQuality {
            loop_cfg: ClosedLoopConfig {
                control_period_cycles: 600,
                warmup_intervals: 2,
                measure_intervals: 3,
                max_settle_intervals: 15,
                settle_tolerance: 0.02,
            },
            load_points: 2,
            saturation_probe_cycles: 3_000,
            seed: 1,
        };
        let net = NetworkConfig::builder()
            .mesh(4, 4)
            .virtual_channels(2)
            .buffer_depth(4)
            .packet_length(5)
            .build()
            .unwrap();
        compare_policies_synthetic("tiny", &net, TrafficPattern::Uniform, &quality, None)
    }

    #[test]
    fn comparison_table_contains_every_policy_and_load() {
        let cmp = tiny_comparison();
        let table = render_comparison(&cmp);
        assert!(table.contains("No-DVFS"));
        assert!(table.contains("RMSD"));
        assert!(table.contains("DMSD"));
        assert!(table.contains("lambda_max"));
        // One data row per (policy, load) pair plus the two header lines.
        let rows = table.lines().count();
        assert_eq!(rows, 2 + 3 * cmp.loads().len());
    }

    #[test]
    fn fig5_table_renders_all_points() {
        let curve = noc_dvfs::experiments::fig5_frequency_vs_vdd(7);
        let table = render_fig5(&curve);
        assert_eq!(table.lines().count(), 2 + 7);
        assert!(table.contains("0.560"));
        assert!(table.contains("0.900"));
    }

    #[test]
    fn summary_requires_all_three_policies() {
        let cmp = tiny_comparison();
        assert!(summary_at(&cmp, 0.1).is_some());
        let mut partial = cmp.clone();
        partial.curves.retain(|c| c.policy != "DMSD");
        assert!(summary_at(&partial, 0.1).is_none());
        assert!(render_summary(&partial, 0.1).is_none());
    }

    #[test]
    fn series_extraction_matches_curve_accessors() {
        let cmp = tiny_comparison();
        let (loads, delays) = series(&cmp, "RMSD", "delay").unwrap();
        assert_eq!(loads, cmp.curve("RMSD").unwrap().loads());
        assert_eq!(delays, cmp.curve("RMSD").unwrap().delays_ns());
        assert!(series(&cmp, "RMSD", "nope").is_none());
        assert!(series(&cmp, "nope", "delay").is_none());
    }
}

/// Shared helpers for the Criterion benches: a reduced network and control
/// loop so that one benchmark iteration stays in the hundreds of milliseconds
/// while still exercising the full closed-loop stack. Figure fidelity comes
/// from the `figures` binary, not from the benches.
pub mod bench_support {
    use noc_dvfs::ClosedLoopConfig;
    use noc_sim::NetworkConfig;

    /// A 4×4 mesh with modest buffering used by the timing benches.
    pub fn bench_network() -> NetworkConfig {
        NetworkConfig::builder()
            .mesh(4, 4)
            .virtual_channels(2)
            .buffer_depth(4)
            .packet_length(5)
            .build()
            .expect("bench network configuration is valid")
    }

    /// A short control loop (same structure as the paper's, smaller budget).
    pub fn bench_loop() -> ClosedLoopConfig {
        ClosedLoopConfig {
            control_period_cycles: 800,
            warmup_intervals: 2,
            measure_intervals: 4,
            max_settle_intervals: 15,
            settle_tolerance: 0.01,
        }
    }
}
