//! Dual-clock bookkeeping: fixed node clock, scalable NoC clock.
//!
//! This is the mechanism the paper adds to Booksim: the network runs on its
//! own clock `F_noc ∈ [F_min, F_max]` while the injecting nodes keep running
//! at `F_node`. The simulator advances in NoC cycles; [`DualClock`] converts
//! each NoC cycle into elapsed wall-clock time and tells the traffic sources
//! how many *node* cycles elapsed in the meantime.

use crate::units::{Hertz, Picoseconds};
use serde::{Deserialize, Serialize};

/// Tracks the NoC clock, the node clock and the wall-clock time.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DualClock {
    node_frequency_hz: f64,
    noc_frequency_hz: f64,
    /// Cached `1e12 / noc_frequency_hz` — the per-cycle hot path adds this
    /// every NoC cycle and must not pay a division for it.
    noc_period_ps: f64,
    /// Cached `node_frequency_hz / 1e12` (node cycles per picosecond).
    node_cycles_per_ps: f64,
    noc_cycle: u64,
    wall_time_ps: f64,
    node_cycles_emitted: u64,
}

impl DualClock {
    /// Creates a clock pair with both domains starting at time zero.
    pub fn new(node_frequency: Hertz, noc_frequency: Hertz) -> Self {
        DualClock {
            node_frequency_hz: node_frequency.as_hz(),
            noc_frequency_hz: noc_frequency.as_hz(),
            noc_period_ps: 1.0e12 / noc_frequency.as_hz(),
            node_cycles_per_ps: node_frequency.as_hz() / 1.0e12,
            noc_cycle: 0,
            wall_time_ps: 0.0,
            node_cycles_emitted: 0,
        }
    }

    /// Current NoC clock frequency.
    pub fn noc_frequency(&self) -> Hertz {
        Hertz::new(self.noc_frequency_hz)
    }

    /// Fixed node clock frequency.
    pub fn node_frequency(&self) -> Hertz {
        Hertz::new(self.node_frequency_hz)
    }

    /// Changes the NoC clock frequency (takes effect from the next cycle).
    pub fn set_noc_frequency(&mut self, f: Hertz) {
        self.noc_frequency_hz = f.as_hz();
        self.noc_period_ps = 1.0e12 / self.noc_frequency_hz;
    }

    /// Number of NoC cycles elapsed since the start of the simulation.
    pub fn noc_cycle(&self) -> u64 {
        self.noc_cycle
    }

    /// Wall-clock time elapsed since the start of the simulation.
    pub fn wall_time(&self) -> Picoseconds {
        Picoseconds::new(self.wall_time_ps)
    }

    /// Total number of node-clock cycles handed out by
    /// [`advance_noc_cycle`](Self::advance_noc_cycle) so far.
    pub fn node_cycles_emitted(&self) -> u64 {
        self.node_cycles_emitted
    }

    /// Advances the simulation by one NoC cycle and returns the number of
    /// *node* clock cycles that completed during that NoC cycle.
    ///
    /// When the NoC runs slower than the nodes (the DVFS case), each NoC cycle
    /// spans more than one node cycle, so the return value is frequently
    /// larger than one; when the two clocks match it is exactly one on
    /// average.
    pub fn advance_noc_cycle(&mut self) -> u64 {
        self.noc_cycle += 1;
        self.wall_time_ps += self.noc_period_ps;
        // Node cycles completed up to the new wall-clock time.
        let total_node_cycles = (self.wall_time_ps * self.node_cycles_per_ps) as u64;
        let newly_completed = total_node_cycles.saturating_sub(self.node_cycles_emitted);
        self.node_cycles_emitted = total_node_cycles;
        newly_completed
    }

    /// Number of node cycles the *next* [`advance_noc_cycle`](Self::advance_noc_cycle)
    /// call would return, without advancing anything.
    ///
    /// Replicates the float operations of `advance_noc_cycle` in the same
    /// order (one addition, one multiplication, one truncation), so the
    /// prediction is bit-exact: the event-horizon skipping engine uses it to
    /// prove a future tick emits zero node cycles (and therefore draws no
    /// RNG) before committing to jump over it.
    pub fn peek_advance(&self) -> u64 {
        let wall = self.wall_time_ps + self.noc_period_ps;
        let total_node_cycles = (wall * self.node_cycles_per_ps) as u64;
        total_node_cycles.saturating_sub(self.node_cycles_emitted)
    }

    /// Ratio `F_node / F_noc`, i.e. how many node cycles fit in one NoC cycle.
    pub fn slowdown_factor(&self) -> f64 {
        self.node_frequency_hz / self.noc_frequency_hz
    }
}

#[cfg(feature = "snapshot")]
impl DualClock {
    /// Encodes the complete clock state — including the cached period and
    /// rate terms, whose exact bit patterns the wall-time accumulation
    /// depends on — for a checkpoint.
    pub(crate) fn save_state(&self, w: &mut crate::snapshot::SnapWriter) {
        w.put_f64(self.node_frequency_hz);
        w.put_f64(self.noc_frequency_hz);
        w.put_f64(self.noc_period_ps);
        w.put_f64(self.node_cycles_per_ps);
        w.put_u64(self.noc_cycle);
        w.put_f64(self.wall_time_ps);
        w.put_u64(self.node_cycles_emitted);
    }

    /// Replaces the clock state with the checkpointed one. The cached terms
    /// are restored verbatim rather than recomputed so that subsequent
    /// `advance_noc_cycle` arithmetic is bit-identical to the saved run.
    pub(crate) fn load_state(
        &mut self,
        r: &mut crate::snapshot::SnapReader<'_>,
    ) -> Result<(), crate::snapshot::SnapshotError> {
        self.node_frequency_hz = r.read_f64()?;
        self.noc_frequency_hz = r.read_f64()?;
        self.noc_period_ps = r.read_f64()?;
        self.node_cycles_per_ps = r.read_f64()?;
        self.noc_cycle = r.read_u64()?;
        self.wall_time_ps = r.read_f64()?;
        self.node_cycles_emitted = r.read_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_clocks_emit_one_node_cycle_per_noc_cycle() {
        let mut clk = DualClock::new(Hertz::from_ghz(1.0), Hertz::from_ghz(1.0));
        let mut total = 0;
        for _ in 0..1000 {
            total += clk.advance_noc_cycle();
        }
        assert_eq!(total, 1000);
        assert_eq!(clk.noc_cycle(), 1000);
        assert!((clk.wall_time().as_ns() - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn slow_noc_emits_multiple_node_cycles() {
        // NoC at 1/3 of node frequency: on average 3 node cycles per NoC cycle.
        let mut clk = DualClock::new(Hertz::from_ghz(1.0), Hertz::from_mhz(333.333_333));
        let mut total = 0;
        for _ in 0..1000 {
            total += clk.advance_noc_cycle();
        }
        assert!((total as f64 - 3000.0).abs() < 5.0, "expected about 3000 node cycles, got {total}");
        assert!((clk.slowdown_factor() - 3.0).abs() < 1e-3);
    }

    #[test]
    fn fast_noc_sometimes_emits_zero_node_cycles() {
        // If the NoC were faster than the nodes, node cycles would arrive
        // less than once per NoC cycle (not used by the paper, but the
        // bookkeeping must stay consistent).
        let mut clk = DualClock::new(Hertz::from_mhz(500.0), Hertz::from_ghz(1.0));
        let mut total = 0;
        for _ in 0..1000 {
            total += clk.advance_noc_cycle();
        }
        assert!((total as f64 - 500.0).abs() < 3.0);
    }

    #[test]
    fn frequency_change_affects_subsequent_wall_time() {
        let mut clk = DualClock::new(Hertz::from_ghz(1.0), Hertz::from_ghz(1.0));
        for _ in 0..100 {
            clk.advance_noc_cycle();
        }
        let t_fast = clk.wall_time().as_ns();
        clk.set_noc_frequency(Hertz::from_mhz(500.0));
        for _ in 0..100 {
            clk.advance_noc_cycle();
        }
        let t_total = clk.wall_time().as_ns();
        assert!((t_fast - 100.0).abs() < 1e-6);
        assert!((t_total - 300.0).abs() < 1e-6, "100 cycles at 2 ns each after the change");
    }

    #[test]
    fn node_cycle_count_is_monotonic_and_conserved() {
        let mut clk = DualClock::new(Hertz::from_ghz(1.0), Hertz::from_mhz(700.0));
        let mut sum = 0;
        for _ in 0..10_000 {
            sum += clk.advance_noc_cycle();
        }
        assert_eq!(sum, clk.node_cycles_emitted());
        let expected = clk.wall_time().as_secs() * 1.0e9;
        assert!((sum as f64 - expected).abs() <= 1.0);
    }
}
