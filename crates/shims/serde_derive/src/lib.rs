//! Offline stand-in for `serde_derive`.
//!
//! The companion `serde` shim gives every type a blanket `Serialize` /
//! `Deserialize` implementation, so the derive macros here only need to make
//! `#[derive(Serialize, Deserialize)]` *resolve* — they expand to nothing.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]` (blanket impl lives in the `serde` shim).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]` (blanket impl lives in the `serde` shim).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
