//! Routing algorithms.
//!
//! The paper uses deterministic dimension-ordered (XY) routing on the mesh,
//! provided here by [`XyRouting`]. The [`RoutingAlgorithm`] trait keeps the
//! router generic so that other deterministic algorithms (e.g. YX or
//! table-based routing) can be plugged in for ablation studies.

use crate::topology::{Direction, Mesh2d};
use std::fmt::Debug;

/// A deterministic routing function: which output port should a packet
/// residing at `current` take to reach `dst`?
pub trait RoutingAlgorithm: Debug + Send + Sync {
    /// Returns the output port to take at router `current` for a packet whose
    /// destination is `dst`. Returns [`Direction::Local`] when
    /// `current == dst`.
    fn route(&self, mesh: &Mesh2d, current: usize, dst: usize) -> Direction;

    /// The number of hops the algorithm takes from `src` to `dst`
    /// (used by tests and by zero-load latency estimates).
    fn path_length(&self, mesh: &Mesh2d, src: usize, dst: usize) -> usize {
        let mut hops = 0;
        let mut at = src;
        while at != dst {
            let dir = self.route(mesh, at, dst);
            at = mesh.neighbor(at, dir).expect("routing function must not route off the mesh");
            hops += 1;
            assert!(hops <= mesh.node_count() * 2, "routing loop detected");
        }
        hops
    }
}

/// Dimension-ordered routing: correct the X coordinate first, then Y.
///
/// XY routing on a mesh is minimal and deadlock-free, which is why it is the
/// default in Booksim and in the paper.
///
/// ```
/// use noc_sim::{Mesh2d, XyRouting, RoutingAlgorithm, Direction};
///
/// let mesh = Mesh2d::new(5, 5);
/// let routing = XyRouting::new();
/// // From node 0 (0,0) to node 24 (4,4) the first moves go east.
/// assert_eq!(routing.route(&mesh, 0, 24), Direction::East);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct XyRouting {
    _private: (),
}

impl XyRouting {
    /// Creates the XY routing function.
    pub fn new() -> Self {
        XyRouting { _private: () }
    }
}

impl RoutingAlgorithm for XyRouting {
    fn route(&self, mesh: &Mesh2d, current: usize, dst: usize) -> Direction {
        let (cx, cy) = mesh.coords(current);
        let (dx, dy) = mesh.coords(dst);
        if cx < dx {
            Direction::East
        } else if cx > dx {
            Direction::West
        } else if cy < dy {
            Direction::South
        } else if cy > dy {
            Direction::North
        } else {
            Direction::Local
        }
    }
}

/// Dimension-ordered routing that corrects Y first, then X.
///
/// Not used by the paper's experiments, but handy for checking that the
/// policy-level conclusions do not depend on the routing order (ablation).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct YxRouting {
    _private: (),
}

impl YxRouting {
    /// Creates the YX routing function.
    pub fn new() -> Self {
        YxRouting { _private: () }
    }
}

impl RoutingAlgorithm for YxRouting {
    fn route(&self, mesh: &Mesh2d, current: usize, dst: usize) -> Direction {
        let (cx, cy) = mesh.coords(current);
        let (dx, dy) = mesh.coords(dst);
        if cy < dy {
            Direction::South
        } else if cy > dy {
            Direction::North
        } else if cx < dx {
            Direction::East
        } else if cx > dx {
            Direction::West
        } else {
            Direction::Local
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xy_reaches_destination_with_minimal_hops() {
        let mesh = Mesh2d::new(5, 5);
        let routing = XyRouting::new();
        for src in 0..mesh.node_count() {
            for dst in 0..mesh.node_count() {
                assert_eq!(routing.path_length(&mesh, src, dst), mesh.hop_distance(src, dst));
            }
        }
    }

    #[test]
    fn yx_reaches_destination_with_minimal_hops() {
        let mesh = Mesh2d::new(4, 6);
        let routing = YxRouting::new();
        for src in 0..mesh.node_count() {
            for dst in 0..mesh.node_count() {
                assert_eq!(routing.path_length(&mesh, src, dst), mesh.hop_distance(src, dst));
            }
        }
    }

    #[test]
    fn xy_corrects_x_before_y() {
        let mesh = Mesh2d::new(5, 5);
        let routing = XyRouting::new();
        let src = mesh.node_at(0, 0);
        let dst = mesh.node_at(3, 3);
        assert_eq!(routing.route(&mesh, src, dst), Direction::East);
        let mid = mesh.node_at(3, 0);
        assert_eq!(routing.route(&mesh, mid, dst), Direction::South);
    }

    #[test]
    fn yx_corrects_y_before_x() {
        let mesh = Mesh2d::new(5, 5);
        let routing = YxRouting::new();
        let src = mesh.node_at(0, 0);
        let dst = mesh.node_at(3, 3);
        assert_eq!(routing.route(&mesh, src, dst), Direction::South);
    }

    #[test]
    fn destination_routes_to_local_port() {
        let mesh = Mesh2d::new(4, 4);
        let routing = XyRouting::new();
        for node in 0..mesh.node_count() {
            assert_eq!(routing.route(&mesh, node, node), Direction::Local);
        }
    }

    #[test]
    fn xy_route_never_leaves_mesh() {
        let mesh = Mesh2d::new(8, 8);
        let routing = XyRouting::new();
        for src in 0..mesh.node_count() {
            for dst in 0..mesh.node_count() {
                if src == dst {
                    continue;
                }
                let dir = routing.route(&mesh, src, dst);
                assert!(mesh.neighbor(src, dir).is_some(), "route must point at a real neighbor");
            }
        }
    }
}
