//! Offline stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its result and config
//! types but never performs actual (de)serialization inside the library code
//! — JSON artifacts are written by hand in the bench harness. This shim keeps
//! the derives and trait bounds compiling without the real dependency:
//! the traits are markers with blanket implementations, and the re-exported
//! derive macros (from the `serde_derive` shim) expand to nothing.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker replacement for `serde::Serialize`; satisfied by every type.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker replacement for `serde::Deserialize`; satisfied by every type.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Subset of `serde::de` used by the workspace.
pub mod de {
    /// Marker replacement for `serde::de::DeserializeOwned`.
    pub trait DeserializeOwned {}
    impl<T: ?Sized> DeserializeOwned for T {}
}
