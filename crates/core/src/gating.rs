//! Power-gating policies and combined DVFS + gating control.
//!
//! DVFS (the paper's contribution) scales dynamic power with load; power
//! gating attacks the remaining leakage and clock-tree power of routers that
//! are *idle*. This module closes the loop at the same per-island
//! granularity the DVFS controllers use:
//!
//! * [`GatingPolicyKind`] — how aggressively to sleep: [`ImmediateSleep`]
//!   (threshold 0), [`IdleThreshold(N)`] (fixed), or [`BreakEvenAware`] —
//!   sleep only when the predicted idle period exceeds the energy
//!   break-even time of a sleep/wake transition pair, using the same
//!   windowed measurements the DVFS policies consume;
//! * [`CombinedController`] — one DVFS policy instance *and* one gating
//!   decision per voltage-frequency island, advanced together from the
//!   per-island measurement windows;
//! * [`run_operating_point_gated`] — the closed loop: co-simulates the
//!   network (with its sleep state machines), the combined controller and
//!   the power model, and reports the aggregate operating point, the
//!   per-island summaries and the full
//!   [`GatingResidency`] (time gated, wake
//!   events, energy saved vs. transition cost).
//!
//! [`ImmediateSleep`]: GatingPolicyKind::ImmediateSleep
//! [`IdleThreshold(N)`]: GatingPolicyKind::IdleThreshold
//! [`BreakEvenAware`]: GatingPolicyKind::BreakEvenAware

use crate::closed_loop::ClosedLoopConfig;
use crate::island::{run_islands_loop, IslandSummary, MultiIslandController};
use crate::policy::PolicyKind;
use noc_power::{FdsoiTech, GatingResidency, RouterPowerModel, Volts};
use crate::closed_loop::OperatingPointResult;
use noc_sim::{GatingConfig, Hertz, NetworkConfig, TrafficSpec, WindowMeasurement, GATE_NEVER};
use serde::{Deserialize, Serialize};

/// Wakeup latency assumed when a gated run enables gating on a network whose
/// configuration left it off, in domain cycles. Real sleep-transistor
/// networks wake in a handful of cycles; 8 is a conservative mid-range
/// value.
pub const DEFAULT_WAKEUP_LATENCY: u64 = 8;

/// Parameters of the break-even-aware gating policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BreakEvenConfig {
    /// Safety margin: the predicted idle period must exceed
    /// `margin × break-even time` before the island's routers are allowed
    /// to sleep. 1.0 gates exactly at break-even; the default 2.0 absorbs
    /// prediction error on bursty traffic.
    pub margin: f64,
}

impl BreakEvenConfig {
    /// The default margin (2×).
    pub fn new() -> Self {
        BreakEvenConfig { margin: 2.0 }
    }

    /// A caller-chosen margin.
    pub fn with_margin(margin: f64) -> Self {
        BreakEvenConfig { margin }
    }
}

impl Default for BreakEvenConfig {
    fn default() -> Self {
        BreakEvenConfig::new()
    }
}

/// A value-level description of which gating policy to run (the gating
/// analogue of [`PolicyKind`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum GatingPolicyKind {
    /// Sleep as soon as a router drains (idle threshold 0). Maximum gated
    /// residency, but thrashes below break-even under sparse traffic.
    ImmediateSleep,
    /// Sleep after a fixed number of idle domain cycles.
    IdleThreshold(u64),
    /// Sleep only when the predicted idle period exceeds the energy
    /// break-even time at the island's current operating point; the idle
    /// threshold is then set to the break-even time itself (the classic
    /// timeout policy, 2-competitive with the offline optimum).
    BreakEvenAware(BreakEvenConfig),
}

impl GatingPolicyKind {
    /// A short lowercase name for labels (e.g. `"break-even"`).
    pub fn name(&self) -> &'static str {
        match self {
            GatingPolicyKind::ImmediateSleep => "imm-sleep",
            GatingPolicyKind::IdleThreshold(_) => "idle-thresh",
            GatingPolicyKind::BreakEvenAware(_) => "break-even",
        }
    }

    /// The idle threshold to configure before any measurement exists
    /// (applied at the maximum frequency, where the loop starts).
    pub fn initial_threshold(&self, model: &RouterPowerModel, tech: &FdsoiTech, net: &NetworkConfig) -> u64 {
        match self {
            GatingPolicyKind::ImmediateSleep => 0,
            GatingPolicyKind::IdleThreshold(n) => *n,
            GatingPolicyKind::BreakEvenAware(_) => {
                let f = net.max_frequency();
                break_even_cycles(model, tech, f).ceil() as u64
            }
        }
    }

    /// The idle threshold for the next control interval, given one island's
    /// measurement `window`, its `node_count`, and the break-even time (in
    /// the island's domain cycles) at the frequency the island is about to
    /// run at. Returns [`GATE_NEVER`] when the island should not sleep.
    pub fn next_threshold(
        &self,
        window: &WindowMeasurement,
        node_count: usize,
        break_even_cycles: f64,
    ) -> u64 {
        match self {
            GatingPolicyKind::ImmediateSleep => 0,
            GatingPolicyKind::IdleThreshold(n) => *n,
            GatingPolicyKind::BreakEvenAware(cfg) => {
                // Idle-period prediction from the same windowed measurements
                // the DVFS policies consume: traffic arrives as L-flit
                // packets (L read off the window's ejection counters), so at
                // a node-level utilisation λ (flits per NoC cycle per node)
                // the expected idle gap between packet bursts is
                // ≈ L·(1 − λ)/λ cycles. Gate only when that prediction
                // clears the break-even bar with margin.
                let lambda = window.noc_injection_rate(node_count);
                let avg_packet_flits = if window.packets_ejected > 0 {
                    window.flits_ejected as f64 / window.packets_ejected as f64
                } else {
                    1.0
                };
                let predicted_idle = if lambda <= 0.0 {
                    f64::INFINITY
                } else {
                    avg_packet_flits * (1.0 - lambda).max(0.0) / lambda
                };
                if predicted_idle >= cfg.margin * break_even_cycles {
                    break_even_cycles.ceil().max(1.0) as u64
                } else {
                    GATE_NEVER
                }
            }
        }
    }
}

/// The break-even time at frequency `f` expressed in that clock's cycles.
pub(crate) fn break_even_cycles(model: &RouterPowerModel, tech: &FdsoiTech, f: Hertz) -> f64 {
    let vdd = tech.vdd_for_frequency(f);
    model.break_even_ps(f, vdd) / f.period().as_ps()
}

/// The gating half of a combined control update — **the** single
/// implementation of the threshold rule, shared by [`CombinedController`]
/// and [`run_operating_point_gated`]: one idle threshold per island,
/// evaluated with the break-even time at the frequency that island is
/// *about to run at*.
fn next_thresholds_into(
    gating: &GatingPolicyKind,
    model: &RouterPowerModel,
    tech: &FdsoiTech,
    windows: &[WindowMeasurement],
    node_counts: &[usize],
    frequencies: &[Hertz],
    thresholds: &mut [u64],
) {
    for (island, window) in windows.iter().enumerate() {
        let be = break_even_cycles(model, tech, frequencies[island]);
        thresholds[island] = gating.next_threshold(window, node_counts[island], be);
    }
}

/// One DVFS policy instance **and** one gating decision per
/// voltage-frequency island, advanced together: the combined controller of
/// the issue's control stack. Each control update consumes the per-island
/// measurement windows once and produces the frequency vector (via
/// [`MultiIslandController`]) plus the idle-threshold vector (via
/// [`GatingPolicyKind::next_threshold`] at each island's *new* operating
/// point, so the break-even bar always matches the frequency about to run).
#[derive(Debug)]
pub struct CombinedController {
    dvfs: MultiIslandController,
    gating: GatingPolicyKind,
    thresholds: Vec<u64>,
    node_counts: Vec<usize>,
    model: RouterPowerModel,
    tech: FdsoiTech,
}

impl CombinedController {
    /// Builds the combined controller for `net`'s island partition.
    pub fn new(policy: &PolicyKind, gating: GatingPolicyKind, net: &NetworkConfig) -> Self {
        let model = RouterPowerModel::new();
        let tech = FdsoiTech::new();
        let node_counts = net.region_map().node_counts().to_vec();
        let initial = gating.initial_threshold(&model, &tech, net);
        CombinedController {
            dvfs: MultiIslandController::new(policy, net),
            gating,
            thresholds: vec![initial; node_counts.len()],
            node_counts,
            model,
            tech,
        }
    }

    /// Number of islands under control.
    pub fn island_count(&self) -> usize {
        self.node_counts.len()
    }

    /// The most recently chosen frequency per island.
    pub fn frequencies(&self) -> &[Hertz] {
        self.dvfs.frequencies()
    }

    /// The most recently chosen idle threshold per island
    /// ([`GATE_NEVER`] = the island must not initiate power-downs).
    pub fn thresholds(&self) -> &[u64] {
        &self.thresholds
    }

    /// Advances both control axes from the per-island windows and returns
    /// `(frequencies, idle thresholds)` for the next interval.
    ///
    /// # Panics
    ///
    /// Panics if `windows` does not hold one window per island.
    pub fn next_controls(&mut self, windows: &[WindowMeasurement]) -> (&[Hertz], &[u64]) {
        let freqs = self.dvfs.next_frequencies(windows).to_vec();
        next_thresholds_into(
            &self.gating,
            &self.model,
            &self.tech,
            windows,
            &self.node_counts,
            &freqs,
            &mut self.thresholds,
        );
        (self.dvfs.frequencies(), &self.thresholds)
    }

    /// Clears the DVFS state and restores every island to `initial`
    /// frequency; thresholds fall back to the gating policy's initial value.
    pub fn reset(&mut self, initial: Hertz, net: &NetworkConfig) {
        self.dvfs.reset(initial);
        let t = self.gating.initial_threshold(&self.model, &self.tech, net);
        self.thresholds.fill(t);
    }
}

/// Aggregate + per-island + gating-residency result of one gated operating
/// point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GatedOperatingPointResult {
    /// The network-level operating point (the shape every sweep consumes).
    pub aggregate: OperatingPointResult,
    /// Per-island DVFS measurements, indexed by island id.
    pub islands: Vec<IslandSummary>,
    /// Per-router + per-island gating residency over the measurement phase.
    pub gating: GatingResidency,
}

impl GatedOperatingPointResult {
    /// Fraction of router-cycles spent gated over the measurement phase.
    pub fn gated_fraction(&self) -> f64 {
        self.gating.total().gated_fraction()
    }
}

/// Runs one closed-loop operating point under **combined per-island DVFS and
/// power-gating control**: the gated analogue of
/// [`run_operating_point_islands`](crate::run_operating_point_islands).
///
/// If `net` does not already enable gating, it is enabled with the policy's
/// initial idle threshold and [`DEFAULT_WAKEUP_LATENCY`]; a network that
/// configures its own [`GatingConfig`] (custom wakeup latency, per-island
/// overrides) is used as-is. Each control interval re-tunes every island's
/// frequency *and* idle threshold; the measurement phase accumulates the
/// [`GatingResidency`] alongside the usual power/delay bookkeeping.
///
/// ```
/// use noc_dvfs::{run_operating_point_gated, ClosedLoopConfig, GatingPolicyKind, PolicyKind};
/// use noc_sim::{NetworkConfig, SyntheticTraffic, TrafficPattern};
///
/// let net = NetworkConfig::builder()
///     .mesh(4, 4)
///     .virtual_channels(2)
///     .buffer_depth(4)
///     .packet_length(5)
///     .build()
///     .unwrap();
/// let traffic = SyntheticTraffic::new(TrafficPattern::Uniform, 0.03, 5);
/// let point = run_operating_point_gated(
///     &net,
///     Box::new(traffic),
///     PolicyKind::NoDvfs,
///     GatingPolicyKind::BreakEvenAware(Default::default()),
///     &ClosedLoopConfig::quick(),
///     7,
/// );
/// // Light load: routers spend real time asleep and the books balance.
/// assert!(point.gated_fraction() > 0.0);
/// assert!(point.aggregate.packets_delivered > 0);
/// ```
///
/// # Panics
///
/// Panics if `loop_cfg` is invalid (zero intervals or period).
pub fn run_operating_point_gated(
    net: &NetworkConfig,
    traffic: Box<dyn TrafficSpec>,
    policy: PolicyKind,
    gating: GatingPolicyKind,
    loop_cfg: &ClosedLoopConfig,
    seed: u64,
) -> GatedOperatingPointResult {
    let model = RouterPowerModel::new();
    let tech = FdsoiTech::new();
    let initial_threshold = gating.initial_threshold(&model, &tech, net);
    let net = if net.gating().is_enabled() {
        net.clone()
    } else {
        net.to_builder()
            .gating(GatingConfig::enabled(initial_threshold, DEFAULT_WAKEUP_LATENCY))
            .build()
            .expect("enabling gating preserves config validity")
    };
    let region_map = net.region_map();
    let island_of = region_map.assignments().to_vec();
    let node_counts = region_map.node_counts().to_vec();
    let mut residency = GatingResidency::new(island_of);
    let gating_kind = gating;

    let result = run_islands_loop(
        &net,
        traffic,
        policy,
        loop_cfg,
        seed,
        |sim, freqs, windows| {
            let mut thresholds = vec![0u64; freqs.len()];
            next_thresholds_into(
                &gating_kind,
                &model,
                &tech,
                windows,
                &node_counts,
                freqs,
                &mut thresholds,
            );
            for (island, &threshold) in thresholds.iter().enumerate() {
                sim.set_island_idle_threshold(island, threshold);
            }
        },
        |activity, freqs, wall_ps| {
            let levels: Vec<(Hertz, Volts)> =
                freqs.iter().map(|&f| (f, tech.vdd_for_frequency(f))).collect();
            residency.record(&model, activity, &levels, wall_ps);
        },
    );

    GatedOperatingPointResult {
        aggregate: result.aggregate,
        islands: result.islands,
        gating: residency,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rmsd::RmsdConfig;
    use noc_sim::{RegionLayout, SyntheticTraffic, TrafficPattern};

    fn small_net() -> NetworkConfig {
        NetworkConfig::builder()
            .mesh(4, 4)
            .virtual_channels(2)
            .buffer_depth(4)
            .packet_length(5)
            .build()
            .unwrap()
    }

    fn traffic(rate: f64) -> Box<dyn TrafficSpec> {
        Box::new(SyntheticTraffic::new(TrafficPattern::Uniform, rate, 5))
    }

    fn window(rate: f64, cycles: u64, nodes: usize) -> WindowMeasurement {
        let flits = (rate * cycles as f64 * nodes as f64) as u64;
        WindowMeasurement {
            noc_cycles: cycles,
            node_cycles: cycles,
            flits_generated: flits,
            flits_injected: flits,
            ..WindowMeasurement::default()
        }
    }

    #[test]
    fn policy_kinds_produce_their_thresholds() {
        let w = window(0.01, 10_000, 16);
        assert_eq!(GatingPolicyKind::ImmediateSleep.next_threshold(&w, 16, 30.0), 0);
        assert_eq!(GatingPolicyKind::IdleThreshold(64).next_threshold(&w, 16, 30.0), 64);
        // λ = 0.01 → predicted idle ≈ 99 cycles ≥ 2×30: gate at break-even.
        let be = GatingPolicyKind::BreakEvenAware(BreakEvenConfig::new());
        assert_eq!(be.next_threshold(&w, 16, 30.0), 30);
        // λ = 0.2 → predicted idle 4 cycles < 60: do not gate.
        let busy = window(0.2, 10_000, 16);
        assert_eq!(be.next_threshold(&busy, 16, 30.0), GATE_NEVER);
        // A silent island always gates.
        let silent = window(0.0, 10_000, 16);
        assert_eq!(be.next_threshold(&silent, 16, 30.0), 30);
    }

    #[test]
    fn combined_controller_drives_both_axes_per_island() {
        let net = NetworkConfig::builder()
            .mesh(4, 4)
            .virtual_channels(2)
            .buffer_depth(4)
            .packet_length(5)
            .regions(RegionLayout::Quadrants)
            .build()
            .unwrap();
        let mut c = CombinedController::new(
            &PolicyKind::Rmsd(RmsdConfig::with_lambda_max(0.3)),
            GatingPolicyKind::BreakEvenAware(BreakEvenConfig::new()),
            &net,
        );
        assert_eq!(c.island_count(), 4);
        // Island 2 busy, the rest silent: island 2 must run faster and must
        // not gate, the silent islands slow down and gate.
        let windows = [
            window(0.0, 1_000, 4),
            window(0.0, 1_000, 4),
            window(0.5, 1_000, 4),
            window(0.0, 1_000, 4),
        ];
        let (freqs, thresholds) = c.next_controls(&windows);
        assert!(freqs[2] > freqs[0], "the loaded island runs faster");
        assert_eq!(thresholds[2], GATE_NEVER, "a busy island must not sleep");
        assert_ne!(thresholds[0], GATE_NEVER, "a silent island sleeps");
        assert!(thresholds[0] >= 1);
        c.reset(net.max_frequency(), &net);
        assert!(c.frequencies().iter().all(|&f| f == net.max_frequency()));
    }

    #[test]
    fn gated_points_are_reproducible_and_account_residency() {
        let net = small_net();
        let cfg = ClosedLoopConfig::quick();
        let a = run_operating_point_gated(
            &net,
            traffic(0.02),
            PolicyKind::NoDvfs,
            GatingPolicyKind::IdleThreshold(16),
            &cfg,
            11,
        );
        let b = run_operating_point_gated(
            &net,
            traffic(0.02),
            PolicyKind::NoDvfs,
            GatingPolicyKind::IdleThreshold(16),
            &cfg,
            11,
        );
        assert_eq!(a, b);
        assert!(a.gated_fraction() > 0.0, "a 2% load leaves routers asleep most of the time");
        let total = a.gating.total();
        assert!(total.sleep_events > 0 && total.wake_events > 0);
        assert!(total.saved_pj > 0.0);
        assert_eq!(a.gating.islands().len(), 1);
        assert!(a.aggregate.packets_delivered > 0);
    }

    #[test]
    fn break_even_gating_saves_energy_at_light_load() {
        // The acceptance setting of the issue, at test scale: light-load
        // mesh, BreakEvenAware gating vs the ungated baseline — strictly
        // lower power at unchanged accepted throughput.
        let net = small_net();
        let cfg = ClosedLoopConfig::quick();
        let baseline =
            crate::closed_loop::run_operating_point(&net, traffic(0.02), PolicyKind::NoDvfs, &cfg, 3);
        let gated = run_operating_point_gated(
            &net,
            traffic(0.02),
            PolicyKind::NoDvfs,
            GatingPolicyKind::BreakEvenAware(BreakEvenConfig::new()),
            &cfg,
            3,
        );
        assert!(
            gated.aggregate.power_mw < baseline.power_mw,
            "gating must cut total power ({} vs {} mW)",
            gated.aggregate.power_mw,
            baseline.power_mw
        );
        let t0 = baseline.throughput;
        let t1 = gated.aggregate.throughput;
        assert!(
            (t1 - t0).abs() <= 0.02 * t0.max(1e-12),
            "accepted throughput must be unchanged ({t0} vs {t1})"
        );
    }

    #[test]
    fn immediate_sleep_gates_more_but_thrashes_more() {
        let net = small_net();
        let cfg = ClosedLoopConfig::quick();
        let imm = run_operating_point_gated(
            &net,
            traffic(0.02),
            PolicyKind::NoDvfs,
            GatingPolicyKind::ImmediateSleep,
            &cfg,
            5,
        );
        let be = run_operating_point_gated(
            &net,
            traffic(0.02),
            PolicyKind::NoDvfs,
            GatingPolicyKind::BreakEvenAware(BreakEvenConfig::new()),
            &cfg,
            5,
        );
        // Immediate sleep thrashes: far more transitions, each bought below
        // break-even, and the wakeup stalls snowball into queueing delay —
        // the break-even-aware policy must beat it on every axis that
        // matters.
        assert!(
            imm.gating.total().sleep_events > 2 * be.gating.total().sleep_events,
            "immediate sleep must transition far more often ({} vs {})",
            imm.gating.total().sleep_events,
            be.gating.total().sleep_events
        );
        assert!(
            be.gating.total().net_saving_pj() > imm.gating.total().net_saving_pj(),
            "break-even awareness must net more energy than thrashing"
        );
        assert!(be.gating.total().net_saving_pj() > 0.0, "break-even gating must pay off");
        assert!(
            be.aggregate.power_mw < imm.aggregate.power_mw,
            "thrash shows up as power ({} vs {} mW)",
            imm.aggregate.power_mw,
            be.aggregate.power_mw
        );
        assert!(
            be.aggregate.avg_delay_ns < imm.aggregate.avg_delay_ns,
            "thrash shows up as wakeup-stall delay"
        );
    }
}
