//! Network configuration and its builder.
//!
//! [`NetworkConfig`] captures every micro-architectural parameter varied in the
//! paper's sensitivity analysis (Fig. 8): mesh size, number of virtual
//! channels, buffer depth per virtual channel, and packet size; plus the
//! frequency range of the NoC clock and the fixed node-clock frequency.

use crate::error::ConfigError;
use crate::fault::FaultConfig;
use crate::gating::GatingConfig;
use crate::region::{RegionMap, RegionScheme};
use crate::routing::RoutingKind;
use crate::topology::{Topology, TopologyKind};
use crate::traffic::{SyntheticTraffic, TrafficPattern};
use crate::units::Hertz;
use serde::{Deserialize, Serialize};

/// Default node clock frequency used throughout the paper (1 GHz).
pub const DEFAULT_NODE_FREQUENCY_HZ: f64 = 1.0e9;
/// Default minimum NoC frequency (333 MHz), the low end of the DVFS range.
pub const DEFAULT_MIN_FREQUENCY_HZ: f64 = 333.0e6;
/// Default maximum NoC frequency (1 GHz), the high end of the DVFS range.
pub const DEFAULT_MAX_FREQUENCY_HZ: f64 = 1.0e9;
/// Largest accepted link/credit latency in NoC cycles. The sparse simulation
/// core keeps a due-list slot per latency cycle, so latencies must be
/// bounded; the builder clamps to this value.
pub const MAX_CHANNEL_LATENCY: u64 = 4096;

/// Full configuration of a simulated NoC.
///
/// Construct one through [`NetworkConfig::builder`]; the builder validates the
/// parameters so that an existing `NetworkConfig` is always usable.
///
/// ```
/// use noc_sim::NetworkConfig;
///
/// # fn main() -> Result<(), noc_sim::ConfigError> {
/// let cfg = NetworkConfig::builder()
///     .mesh(5, 5)
///     .virtual_channels(8)
///     .buffer_depth(4)
///     .packet_length(20)
///     .build()?;
/// assert_eq!(cfg.node_count(), 25);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkConfig {
    topology: TopologyKind,
    width: usize,
    height: usize,
    virtual_channels: usize,
    buffer_depth: usize,
    packet_length: usize,
    link_latency: u64,
    credit_latency: u64,
    node_frequency_hz: f64,
    min_frequency_hz: f64,
    max_frequency_hz: f64,
    regions: RegionScheme,
    gating: GatingConfig,
    routing: RoutingKind,
    faults: FaultConfig,
}

impl NetworkConfig {
    /// Starts building a configuration with the paper's default parameters
    /// (5×5 mesh, 8 VCs, 4 buffers per VC, 20-flit packets, 1 GHz node clock,
    /// NoC clock range 333 MHz – 1 GHz).
    pub fn builder() -> NetworkConfigBuilder {
        NetworkConfigBuilder::new()
    }

    /// The configuration used for the paper's baseline experiments
    /// (Figs. 2, 4 and 6): 5×5 mesh, 8 VCs, 4 buffers per VC, 20-flit packets.
    pub fn paper_baseline() -> NetworkConfig {
        NetworkConfig::builder().build().expect("paper baseline configuration is valid")
    }

    /// Whether the grid is an open mesh or a wrap-around torus.
    pub fn topology_kind(&self) -> TopologyKind {
        self.topology
    }

    /// The grid described by this configuration.
    pub fn topology(&self) -> Topology {
        Topology::with_kind(self.topology, self.width, self.height)
    }

    /// Mesh width (number of columns).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Mesh height (number of rows).
    pub fn height(&self) -> usize {
        self.height
    }

    /// Total number of nodes (`width × height`).
    pub fn node_count(&self) -> usize {
        self.width * self.height
    }

    /// Number of virtual channels per input port.
    pub fn virtual_channels(&self) -> usize {
        self.virtual_channels
    }

    /// Buffer depth (in flits) of each virtual channel.
    pub fn buffer_depth(&self) -> usize {
        self.buffer_depth
    }

    /// Number of flits per packet.
    pub fn packet_length(&self) -> usize {
        self.packet_length
    }

    /// Link traversal latency in NoC cycles.
    pub fn link_latency(&self) -> u64 {
        self.link_latency
    }

    /// Credit return latency in NoC cycles.
    pub fn credit_latency(&self) -> u64 {
        self.credit_latency
    }

    /// Checks that a synthetic traffic pattern is well-defined on this
    /// configuration's grid.
    ///
    /// # Errors
    ///
    /// Returns the same rejections as [`TrafficPattern::validate_for`]:
    /// transpose on a non-square grid, bit permutations on a non-power-of-two
    /// node count.
    pub fn validate_pattern(&self, pattern: TrafficPattern) -> Result<(), ConfigError> {
        pattern.validate_for(&self.topology())
    }

    /// Builds a validated Bernoulli source for `pattern` at `injection_rate`
    /// flits per node cycle, using this configuration's packet length.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] when the pattern is undefined on this grid
    /// (see [`validate_pattern`](Self::validate_pattern)) — the checked
    /// alternative to constructing a [`SyntheticTraffic`] directly and
    /// hitting a silent no-inject or a runtime panic later.
    pub fn synthetic_traffic(
        &self,
        pattern: TrafficPattern,
        injection_rate: f64,
    ) -> Result<SyntheticTraffic, ConfigError> {
        self.validate_pattern(pattern)?;
        Ok(SyntheticTraffic::new(pattern, injection_rate, self.packet_length))
    }

    /// How the network is partitioned into voltage-frequency islands
    /// (the default is one island spanning the whole NoC).
    pub fn regions(&self) -> &RegionScheme {
        &self.regions
    }

    /// The power-gating parameters (disabled by default, in which case the
    /// gating machinery is a structural no-op in the simulator).
    pub fn gating(&self) -> &GatingConfig {
        &self.gating
    }

    /// The routing algorithm (dimension-ordered XY by default).
    pub fn routing(&self) -> RoutingKind {
        self.routing
    }

    /// The fault-injection configuration (no faults by default, in which
    /// case the fault machinery is a structural no-op in the simulator).
    pub fn faults(&self) -> &FaultConfig {
        &self.faults
    }

    /// The resolved `node → island` partition described by
    /// [`regions`](Self::regions).
    ///
    /// # Panics
    ///
    /// [`NetworkConfigBuilder::build`] validates the scheme, so this cannot
    /// fail for builder-made configurations. It panics only if a config was
    /// materialized behind the builder's back (e.g. deserialized from an
    /// untrusted source) with a custom map that skips validation.
    pub fn region_map(&self) -> RegionMap {
        self.regions
            .build(self.width, self.height)
            .expect("region scheme was validated by the config builder")
    }

    /// A builder pre-loaded with this configuration's values (for deriving
    /// variants, e.g. the same micro-architecture on a different topology).
    pub fn to_builder(&self) -> NetworkConfigBuilder {
        NetworkConfigBuilder {
            topology: self.topology,
            width: self.width,
            height: self.height,
            virtual_channels: self.virtual_channels,
            buffer_depth: self.buffer_depth,
            packet_length: self.packet_length,
            link_latency: self.link_latency,
            credit_latency: self.credit_latency,
            node_frequency_hz: self.node_frequency_hz,
            min_frequency_hz: self.min_frequency_hz,
            max_frequency_hz: self.max_frequency_hz,
            regions: self.regions.clone(),
            gating: self.gating.clone(),
            routing: self.routing,
            faults: self.faults.clone(),
        }
    }

    /// Fixed frequency of the injecting nodes.
    pub fn node_frequency(&self) -> Hertz {
        Hertz::new(self.node_frequency_hz)
    }

    /// Lower bound of the NoC clock frequency range.
    pub fn min_frequency(&self) -> Hertz {
        Hertz::new(self.min_frequency_hz)
    }

    /// Upper bound of the NoC clock frequency range.
    pub fn max_frequency(&self) -> Hertz {
        Hertz::new(self.max_frequency_hz)
    }
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig::paper_baseline()
    }
}

/// Builder for [`NetworkConfig`].
#[derive(Debug, Clone)]
pub struct NetworkConfigBuilder {
    topology: TopologyKind,
    width: usize,
    height: usize,
    virtual_channels: usize,
    buffer_depth: usize,
    packet_length: usize,
    link_latency: u64,
    credit_latency: u64,
    node_frequency_hz: f64,
    min_frequency_hz: f64,
    max_frequency_hz: f64,
    regions: RegionScheme,
    gating: GatingConfig,
    routing: RoutingKind,
    faults: FaultConfig,
}

impl NetworkConfigBuilder {
    /// Creates a builder pre-loaded with the paper's baseline parameters.
    pub fn new() -> Self {
        NetworkConfigBuilder {
            topology: TopologyKind::Mesh,
            width: 5,
            height: 5,
            virtual_channels: 8,
            buffer_depth: 4,
            packet_length: 20,
            link_latency: 1,
            credit_latency: 1,
            node_frequency_hz: DEFAULT_NODE_FREQUENCY_HZ,
            min_frequency_hz: DEFAULT_MIN_FREQUENCY_HZ,
            max_frequency_hz: DEFAULT_MAX_FREQUENCY_HZ,
            regions: RegionScheme::default(),
            gating: GatingConfig::disabled(),
            routing: RoutingKind::default(),
            faults: FaultConfig::none(),
        }
    }

    /// Sets an open-mesh grid of the given dimensions (columns × rows).
    pub fn mesh(mut self, width: usize, height: usize) -> Self {
        self.topology = TopologyKind::Mesh;
        self.width = width;
        self.height = height;
        self
    }

    /// Sets a wrap-around torus grid of the given dimensions.
    pub fn torus(mut self, width: usize, height: usize) -> Self {
        self.topology = TopologyKind::Torus;
        self.width = width;
        self.height = height;
        self
    }

    /// Sets the topology kind, keeping the current dimensions.
    pub fn topology(mut self, kind: TopologyKind) -> Self {
        self.topology = kind;
        self
    }

    /// Sets the number of virtual channels per input port.
    pub fn virtual_channels(mut self, vcs: usize) -> Self {
        self.virtual_channels = vcs;
        self
    }

    /// Sets the buffer depth (flits) of each virtual channel.
    pub fn buffer_depth(mut self, depth: usize) -> Self {
        self.buffer_depth = depth;
        self
    }

    /// Sets the packet length in flits.
    pub fn packet_length(mut self, flits: usize) -> Self {
        self.packet_length = flits;
        self
    }

    /// Sets the link traversal latency in NoC cycles (default 1).
    ///
    /// Clamped to `1..=`[`MAX_CHANNEL_LATENCY`], mirroring the existing
    /// clamp-to-one convention: the simulator's channel due-lists allocate
    /// one slot per latency cycle, so the latency must be bounded (4096
    /// cycles is orders of magnitude beyond any physical link).
    pub fn link_latency(mut self, cycles: u64) -> Self {
        self.link_latency = cycles.clamp(1, MAX_CHANNEL_LATENCY);
        self
    }

    /// Sets the credit return latency in NoC cycles (default 1).
    ///
    /// Clamped to `1..=`[`MAX_CHANNEL_LATENCY`] (see
    /// [`link_latency`](Self::link_latency)).
    pub fn credit_latency(mut self, cycles: u64) -> Self {
        self.credit_latency = cycles.clamp(1, MAX_CHANNEL_LATENCY);
        self
    }

    /// Sets the fixed node clock frequency.
    pub fn node_frequency(mut self, f: Hertz) -> Self {
        self.node_frequency_hz = f.as_hz();
        self
    }

    /// Sets the NoC clock frequency range available to the DVFS controller.
    pub fn frequency_range(mut self, min: Hertz, max: Hertz) -> Self {
        self.min_frequency_hz = min.as_hz();
        self.max_frequency_hz = max.as_hz();
        self
    }

    /// Partitions the network into voltage-frequency islands (default: one
    /// island spanning the whole NoC, i.e. global DVFS).
    ///
    /// Accepts a named [`RegionLayout`](crate::RegionLayout) or a full
    /// [`RegionScheme`] (for custom `node → island` maps); custom maps are
    /// validated by [`build`](Self::build).
    pub fn regions(mut self, regions: impl Into<RegionScheme>) -> Self {
        self.regions = regions.into();
        self
    }

    /// Sets the power-gating parameters (default:
    /// [`GatingConfig::disabled`]). Per-island overrides are validated
    /// against the island partition by [`build`](Self::build).
    pub fn gating(mut self, gating: GatingConfig) -> Self {
        self.gating = gating;
        self
    }

    /// Sets the routing algorithm (default: [`RoutingKind::Xy`]).
    /// [`RoutingKind::MinimalAdaptive`] requires at least two virtual
    /// channels, checked by [`build`](Self::build).
    pub fn routing(mut self, routing: RoutingKind) -> Self {
        self.routing = routing;
        self
    }

    /// Sets the fault-injection configuration (default:
    /// [`FaultConfig::none`]). Scheduled targets and hazard rates are
    /// validated against the topology by [`build`](Self::build).
    pub fn faults(mut self, faults: FaultConfig) -> Self {
        self.faults = faults;
        self
    }

    /// Validates the parameters and produces the configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if the mesh is smaller than 2×2, there are no
    /// virtual channels or buffer slots, packets are empty, or the frequency
    /// range is inverted.
    pub fn build(self) -> Result<NetworkConfig, ConfigError> {
        if self.width < 2 || self.height < 2 {
            return Err(ConfigError::MeshTooSmall { width: self.width, height: self.height });
        }
        if self.virtual_channels == 0 {
            return Err(ConfigError::NoVirtualChannels);
        }
        if self.buffer_depth == 0 {
            return Err(ConfigError::NoBufferSlots);
        }
        if self.packet_length == 0 {
            return Err(ConfigError::EmptyPacket);
        }
        if self.topology == TopologyKind::Torus && self.virtual_channels < 2 {
            return Err(ConfigError::TorusNeedsVcClasses {
                virtual_channels: self.virtual_channels,
            });
        }
        if self.routing == RoutingKind::MinimalAdaptive && self.virtual_channels < 2 {
            return Err(ConfigError::AdaptiveNeedsVcClasses {
                virtual_channels: self.virtual_channels,
            });
        }
        self.faults.validate(&Topology::with_kind(self.topology, self.width, self.height))?;
        if self.min_frequency_hz > self.max_frequency_hz {
            return Err(ConfigError::InvalidFrequencyRange {
                min_hz: self.min_frequency_hz,
                max_hz: self.max_frequency_hz,
            });
        }
        // Resolve once to validate custom maps (length, contiguous ids) and
        // to check gating overrides against the island count.
        let region_map = self.regions.build(self.width, self.height)?;
        self.gating.validate(region_map.island_count())?;
        Ok(NetworkConfig {
            topology: self.topology,
            width: self.width,
            height: self.height,
            virtual_channels: self.virtual_channels,
            buffer_depth: self.buffer_depth,
            packet_length: self.packet_length,
            link_latency: self.link_latency,
            credit_latency: self.credit_latency,
            node_frequency_hz: self.node_frequency_hz,
            min_frequency_hz: self.min_frequency_hz,
            max_frequency_hz: self.max_frequency_hz,
            regions: self.regions,
            gating: self.gating,
            routing: self.routing,
            faults: self.faults,
        })
    }
}

impl Default for NetworkConfigBuilder {
    fn default() -> Self {
        NetworkConfigBuilder::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_baseline_matches_section_iii() {
        let cfg = NetworkConfig::paper_baseline();
        assert_eq!(cfg.width(), 5);
        assert_eq!(cfg.height(), 5);
        assert_eq!(cfg.virtual_channels(), 8);
        assert_eq!(cfg.buffer_depth(), 4);
        assert_eq!(cfg.packet_length(), 20);
        assert_eq!(cfg.node_frequency().as_ghz(), 1.0);
        assert_eq!(cfg.min_frequency().as_mhz(), 333.0);
        assert_eq!(cfg.max_frequency().as_ghz(), 1.0);
    }

    #[test]
    fn default_equals_paper_baseline() {
        assert_eq!(NetworkConfig::default(), NetworkConfig::paper_baseline());
    }

    #[test]
    fn builder_rejects_tiny_mesh() {
        let err = NetworkConfig::builder().mesh(1, 4).build().unwrap_err();
        assert_eq!(err, ConfigError::MeshTooSmall { width: 1, height: 4 });
    }

    #[test]
    fn builder_rejects_zero_vcs() {
        let err = NetworkConfig::builder().virtual_channels(0).build().unwrap_err();
        assert_eq!(err, ConfigError::NoVirtualChannels);
    }

    #[test]
    fn builder_rejects_zero_buffers() {
        let err = NetworkConfig::builder().buffer_depth(0).build().unwrap_err();
        assert_eq!(err, ConfigError::NoBufferSlots);
    }

    #[test]
    fn builder_rejects_empty_packets() {
        let err = NetworkConfig::builder().packet_length(0).build().unwrap_err();
        assert_eq!(err, ConfigError::EmptyPacket);
    }

    #[test]
    fn builder_rejects_inverted_frequency_range() {
        let err = NetworkConfig::builder()
            .frequency_range(Hertz::from_ghz(2.0), Hertz::from_ghz(1.0))
            .build()
            .unwrap_err();
        assert!(matches!(err, ConfigError::InvalidFrequencyRange { .. }));
    }

    #[test]
    fn builder_customization_sticks() {
        let cfg = NetworkConfig::builder()
            .mesh(8, 8)
            .virtual_channels(2)
            .buffer_depth(16)
            .packet_length(10)
            .link_latency(2)
            .credit_latency(3)
            .node_frequency(Hertz::from_ghz(2.0))
            .frequency_range(Hertz::from_mhz(250.0), Hertz::from_ghz(2.0))
            .build()
            .unwrap();
        assert_eq!(cfg.node_count(), 64);
        assert_eq!(cfg.virtual_channels(), 2);
        assert_eq!(cfg.buffer_depth(), 16);
        assert_eq!(cfg.packet_length(), 10);
        assert_eq!(cfg.link_latency(), 2);
        assert_eq!(cfg.credit_latency(), 3);
        assert_eq!(cfg.node_frequency().as_ghz(), 2.0);
        assert_eq!(cfg.min_frequency().as_mhz(), 250.0);
    }

    #[test]
    fn link_latency_never_below_one() {
        let cfg = NetworkConfig::builder().link_latency(0).credit_latency(0).build().unwrap();
        assert_eq!(cfg.link_latency(), 1);
        assert_eq!(cfg.credit_latency(), 1);
    }

    #[test]
    fn channel_latencies_are_clamped_to_the_due_list_bound() {
        // The sparse core allocates one due-list slot per latency cycle, so
        // absurd latencies are clamped instead of exhausting memory at
        // simulation construction.
        let cfg = NetworkConfig::builder()
            .link_latency(u64::MAX)
            .credit_latency(1 << 40)
            .build()
            .unwrap();
        assert_eq!(cfg.link_latency(), MAX_CHANNEL_LATENCY);
        assert_eq!(cfg.credit_latency(), MAX_CHANNEL_LATENCY);
    }

    #[test]
    fn torus_builder_produces_a_torus_topology() {
        let cfg = NetworkConfig::builder().torus(4, 4).build().unwrap();
        assert_eq!(cfg.topology_kind(), TopologyKind::Torus);
        assert!(cfg.topology().is_torus());
        assert_eq!(cfg.topology().node_count(), 16);
        // `.mesh` resets the kind; `.topology` flips it back in place.
        let cfg = NetworkConfig::builder().torus(4, 4).mesh(4, 4).build().unwrap();
        assert_eq!(cfg.topology_kind(), TopologyKind::Mesh);
        let cfg =
            NetworkConfig::builder().mesh(4, 4).topology(TopologyKind::Torus).build().unwrap();
        assert!(cfg.topology().is_torus());
    }

    #[test]
    fn builder_rejects_torus_without_vc_classes() {
        let err = NetworkConfig::builder().torus(4, 4).virtual_channels(1).build().unwrap_err();
        assert_eq!(err, ConfigError::TorusNeedsVcClasses { virtual_channels: 1 });
        // The same single-VC configuration is fine on a mesh.
        assert!(NetworkConfig::builder().mesh(4, 4).virtual_channels(1).build().is_ok());
    }

    #[test]
    fn pattern_validation_surfaces_config_errors() {
        use crate::traffic::TrafficPattern;
        let rect = NetworkConfig::builder().mesh(5, 4).build().unwrap();
        assert_eq!(
            rect.validate_pattern(TrafficPattern::Transpose),
            Err(ConfigError::PatternNeedsSquare { pattern: "transpose", width: 5, height: 4 })
        );
        assert!(rect.validate_pattern(TrafficPattern::Uniform).is_ok());
        let five = NetworkConfig::paper_baseline();
        assert_eq!(
            five.validate_pattern(TrafficPattern::Shuffle),
            Err(ConfigError::PatternNeedsPowerOfTwoNodes { pattern: "shuffle", nodes: 25 })
        );
        assert_eq!(
            five.validate_pattern(TrafficPattern::BitReverse),
            Err(ConfigError::PatternNeedsPowerOfTwoNodes { pattern: "bitrev", nodes: 25 })
        );
        let square = NetworkConfig::builder().mesh(4, 4).build().unwrap();
        for pattern in TrafficPattern::ALL {
            assert!(square.validate_pattern(pattern).is_ok(), "{} on 4x4", pattern.name());
        }
    }

    #[test]
    fn synthetic_traffic_constructor_checks_the_pattern() {
        use crate::traffic::TrafficPattern;
        let rect = NetworkConfig::builder().mesh(5, 4).build().unwrap();
        assert!(rect.synthetic_traffic(TrafficPattern::Transpose, 0.1).is_err());
        let ok = rect.synthetic_traffic(TrafficPattern::Hotspot, 0.1).unwrap();
        assert_eq!(ok.pattern(), TrafficPattern::Hotspot);
        assert_eq!(ok.injection_rate(), 0.1);
    }

    #[test]
    fn to_builder_round_trips_every_field() {
        let cfg = NetworkConfig::builder()
            .torus(6, 3)
            .virtual_channels(4)
            .buffer_depth(8)
            .packet_length(10)
            .link_latency(2)
            .credit_latency(3)
            .node_frequency(Hertz::from_ghz(2.0))
            .frequency_range(Hertz::from_mhz(250.0), Hertz::from_ghz(2.0))
            .build()
            .unwrap();
        assert_eq!(cfg.to_builder().build().unwrap(), cfg);
    }

    #[test]
    fn regions_default_to_a_single_island_and_round_trip() {
        use crate::region::{RegionLayout, RegionScheme};
        let cfg = NetworkConfig::paper_baseline();
        assert_eq!(cfg.regions(), &RegionScheme::Layout(RegionLayout::Whole));
        assert_eq!(cfg.region_map().island_count(), 1);
        let cfg = NetworkConfig::builder()
            .mesh(4, 4)
            .regions(RegionLayout::Quadrants)
            .build()
            .unwrap();
        assert_eq!(cfg.region_map().island_count(), 4);
        assert_eq!(cfg.to_builder().build().unwrap(), cfg);
    }

    #[test]
    fn builder_rejects_invalid_custom_region_maps() {
        use crate::region::RegionScheme;
        let err = NetworkConfig::builder()
            .mesh(2, 2)
            .regions(RegionScheme::Custom(vec![0, 1, 2]))
            .build()
            .unwrap_err();
        assert_eq!(err, ConfigError::RegionMapWrongLength { expected: 4, got: 3 });
        let err = NetworkConfig::builder()
            .mesh(2, 2)
            .regions(RegionScheme::Custom(vec![0, 0, 3, 3]))
            .build()
            .unwrap_err();
        assert_eq!(err, ConfigError::RegionIdsNotContiguous { island_count: 4, missing: 1 });
        let ok = NetworkConfig::builder()
            .mesh(2, 2)
            .regions(RegionScheme::Custom(vec![1, 0, 1, 0]))
            .build()
            .unwrap();
        assert_eq!(ok.region_map().island_count(), 2);
    }

    #[test]
    fn gating_defaults_to_disabled_and_round_trips() {
        use crate::gating::GatingConfig;
        let cfg = NetworkConfig::paper_baseline();
        assert!(!cfg.gating().is_enabled());
        let cfg = NetworkConfig::builder()
            .mesh(4, 4)
            .gating(GatingConfig::enabled(24, 6))
            .build()
            .unwrap();
        assert!(cfg.gating().is_enabled());
        assert_eq!(cfg.gating().idle_threshold(), 24);
        assert_eq!(cfg.gating().wakeup_latency(), 6);
        assert_eq!(cfg.to_builder().build().unwrap(), cfg);
    }

    #[test]
    fn builder_rejects_gating_override_for_missing_island() {
        use crate::gating::GatingConfig;
        use crate::region::RegionLayout;
        let err = NetworkConfig::builder()
            .mesh(4, 4)
            .regions(RegionLayout::Quadrants)
            .gating(GatingConfig::enabled(16, 4).with_island_override(4, 8, 2))
            .build()
            .unwrap_err();
        assert_eq!(err, ConfigError::GatingIslandOutOfRange { island: 4, island_count: 4 });
        // The same override is valid on an island that exists.
        let ok = NetworkConfig::builder()
            .mesh(4, 4)
            .regions(RegionLayout::Quadrants)
            .gating(GatingConfig::enabled(16, 4).with_island_override(3, 8, 2))
            .build()
            .unwrap();
        assert_eq!(ok.gating().overrides().len(), 1);
    }

    #[test]
    fn routing_and_faults_default_to_inert_and_round_trip() {
        use crate::fault::{FaultConfig, FaultEvent, FaultTarget};
        use crate::routing::RoutingKind;
        use crate::topology::Direction;
        let cfg = NetworkConfig::paper_baseline();
        assert_eq!(cfg.routing(), RoutingKind::Xy);
        assert!(!cfg.faults().is_enabled());
        let cfg = NetworkConfig::builder()
            .mesh(4, 4)
            .routing(RoutingKind::MinimalAdaptive)
            .faults(FaultConfig::scheduled(vec![FaultEvent::permanent(
                FaultTarget::Link { node: 5, dir: Direction::East },
                100,
            )]))
            .build()
            .unwrap();
        assert_eq!(cfg.routing(), RoutingKind::MinimalAdaptive);
        assert!(cfg.faults().is_enabled());
        assert_eq!(cfg.to_builder().build().unwrap(), cfg);
    }

    #[test]
    fn builder_rejects_adaptive_without_vc_classes() {
        use crate::routing::RoutingKind;
        let err = NetworkConfig::builder()
            .mesh(4, 4)
            .virtual_channels(1)
            .routing(RoutingKind::MinimalAdaptive)
            .build()
            .unwrap_err();
        assert_eq!(err, ConfigError::AdaptiveNeedsVcClasses { virtual_channels: 1 });
        // Two VCs are enough, and dimension-ordered routing never needs them.
        assert!(NetworkConfig::builder()
            .mesh(4, 4)
            .virtual_channels(2)
            .routing(RoutingKind::MinimalAdaptive)
            .build()
            .is_ok());
        assert!(NetworkConfig::builder()
            .mesh(4, 4)
            .virtual_channels(1)
            .routing(RoutingKind::Yx)
            .build()
            .is_ok());
    }

    #[test]
    fn builder_validates_the_fault_schedule_against_the_topology() {
        use crate::fault::{FaultConfig, FaultEvent, FaultTarget};
        use crate::topology::Direction;
        // Node 3 is the top-right corner of a 4x4 mesh: no East link.
        let faults = FaultConfig::scheduled(vec![FaultEvent::permanent(
            FaultTarget::Link { node: 3, dir: Direction::East },
            0,
        )]);
        let err =
            NetworkConfig::builder().mesh(4, 4).faults(faults.clone()).build().unwrap_err();
        assert_eq!(err, ConfigError::FaultLinkMissing { node: 3, dir: Direction::East });
        // The same link exists once the grid wraps around.
        assert!(NetworkConfig::builder().torus(4, 4).faults(faults).build().is_ok());
    }

    #[test]
    fn config_is_serializable_send_and_sync() {
        fn assert_traits<T: serde::Serialize + serde::de::DeserializeOwned + Send + Sync>() {}
        assert_traits::<NetworkConfig>();
    }
}
