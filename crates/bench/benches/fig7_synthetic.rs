//! Fig. 7 bench: one closed-loop DMSD point per synthetic traffic pattern
//! (tornado, bit-complement, transpose, neighbor) on a reduced mesh.

use criterion::{criterion_group, criterion_main, Criterion};
use noc_bench::bench_support::{bench_loop, bench_network};
use noc_dvfs::{run_operating_point, DmsdConfig, PolicyKind};
use noc_sim::{SyntheticTraffic, TrafficPattern, TrafficSpec};
use std::time::Duration;

fn bench_fig7(c: &mut Criterion) {
    let net = bench_network();
    let loop_cfg = bench_loop();
    let mut group = c.benchmark_group("fig7_synthetic_patterns");
    group.sample_size(10).measurement_time(Duration::from_secs(4)).warm_up_time(Duration::from_secs(1));
    for pattern in [
        TrafficPattern::Tornado,
        TrafficPattern::BitComplement,
        TrafficPattern::Transpose,
        TrafficPattern::Neighbor,
    ] {
        group.bench_function(format!("dmsd_point_{}", pattern.name()), |b| {
            b.iter(|| {
                let traffic: Box<dyn TrafficSpec> =
                    Box::new(SyntheticTraffic::new(pattern, 0.12, 5));
                run_operating_point(
                    &net,
                    traffic,
                    PolicyKind::Dmsd(DmsdConfig::with_target_ns(150.0)),
                    &loop_cfg,
                    2,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig7);
criterion_main!(benches);
