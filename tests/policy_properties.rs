//! Property-based tests of the DVFS policies and the technology/power models
//! (pure computations — these run thousands of cases cheaply).

use noc_dvfs::{ControlMeasurement, Dmsd, DmsdConfig, DvfsPolicy, PiController, Rmsd, RmsdConfig};
use noc_power::{FdsoiTech, PowerParams, RouterPowerModel, Volts};
use noc_sim::{Hertz, NetworkConfig, RouterActivity, WindowMeasurement};
use proptest::prelude::*;

fn measurement(rate: f64, delay_ns: f64) -> ControlMeasurement {
    let node_count = 25usize;
    let node_cycles = 10_000u64;
    let packets = 200u64;
    ControlMeasurement {
        window: WindowMeasurement {
            noc_cycles: 10_000,
            node_cycles,
            wall_time_ps: 1.0e7,
            flits_generated: (rate * node_count as f64 * node_cycles as f64) as u64,
            flits_injected: (rate * node_count as f64 * node_cycles as f64) as u64,
            packets_ejected: packets,
            flits_ejected: packets * 20,
            latency_cycles_sum: packets * 60,
            delay_ps_sum: delay_ns * 1.0e3 * packets as f64,
            flits_dropped: 0,
        },
        node_count,
        current_frequency: Hertz::from_ghz(1.0),
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// The RMSD output frequency always stays inside the VCO range and is
    /// monotone in the measured injection rate.
    #[test]
    fn rmsd_output_is_clamped_and_monotone(
        lambda_max in 0.05f64..0.8,
        rate_a in 0.0f64..1.0,
        rate_b in 0.0f64..1.0,
    ) {
        let cfg = NetworkConfig::paper_baseline();
        let mut rmsd = Rmsd::new(&cfg, RmsdConfig::with_lambda_max(lambda_max));
        let fa = rmsd.next_frequency(&measurement(rate_a, 100.0));
        rmsd.reset();
        let fb = rmsd.next_frequency(&measurement(rate_b, 100.0));
        prop_assert!(fa >= cfg.min_frequency() && fa <= cfg.max_frequency());
        prop_assert!(fb >= cfg.min_frequency() && fb <= cfg.max_frequency());
        if rate_a <= rate_b {
            prop_assert!(fa <= fb);
        } else {
            prop_assert!(fa >= fb);
        }
    }

    /// The DMSD output frequency always stays inside the VCO range, for any
    /// sequence of delay measurements.
    #[test]
    fn dmsd_output_is_always_inside_the_vco_range(
        delays in prop::collection::vec(1.0f64..2_000.0, 1..50),
        target in 20.0f64..500.0,
    ) {
        let cfg = NetworkConfig::paper_baseline();
        let mut dmsd = Dmsd::new(&cfg, DmsdConfig::with_target_ns(target));
        for d in delays {
            let f = dmsd.next_frequency(&measurement(0.2, d));
            prop_assert!(f >= cfg.min_frequency() && f <= cfg.max_frequency());
        }
    }

    /// The PI controller's output never escapes its clamp range, whatever the
    /// error sequence and gains.
    #[test]
    fn pi_controller_respects_its_clamp(
        ki in 0.0f64..1.0,
        kp in 0.0f64..1.0,
        errors in prop::collection::vec(-100.0f64..100.0, 1..100),
    ) {
        let mut pi = PiController::new(ki, kp, 0.2, 1.0, 1.0);
        for e in errors {
            let u = pi.update(e);
            prop_assert!((0.2..=1.0).contains(&u));
        }
    }

    /// The technology model is internally consistent: the voltage chosen for
    /// a frequency always sustains that frequency, and higher frequencies
    /// never require lower voltages.
    #[test]
    fn tech_model_voltage_choice_is_sufficient_and_monotone(
        mhz_a in 333.0f64..1_000.0,
        mhz_b in 333.0f64..1_000.0,
    ) {
        let tech = FdsoiTech::new();
        let fa = Hertz::from_mhz(mhz_a);
        let fb = Hertz::from_mhz(mhz_b);
        let va = tech.vdd_for_frequency(fa);
        let vb = tech.vdd_for_frequency(fb);
        prop_assert!(tech.max_frequency(va).as_hz() >= fa.as_hz() * 0.999);
        if mhz_a <= mhz_b {
            prop_assert!(va.as_volts() <= vb.as_volts() + 1e-9);
        }
    }

    /// Power is monotone in voltage and in activity, and never negative.
    #[test]
    fn power_model_is_monotone(
        flits in 0u64..100_000,
        extra in 1u64..50_000,
        vdd in 0.56f64..0.9,
    ) {
        let model = RouterPowerModel::new();
        let f = Hertz::from_ghz(1.0);
        let mk = |n: u64| RouterActivity {
            buffer_writes: n,
            buffer_reads: n,
            crossbar_traversals: n,
            link_flits: n,
            cycles: 10_000,
            ..RouterActivity::new()
        };
        let duration_ps = 1.0e7;
        let p_low = model.router_power_mw(&mk(flits), f, Volts::new(vdd), duration_ps);
        let p_high = model.router_power_mw(&mk(flits + extra), f, Volts::new(vdd), duration_ps);
        let p_more_volts =
            model.router_power_mw(&mk(flits), f, Volts::new(0.9), duration_ps);
        prop_assert!(p_low >= 0.0);
        prop_assert!(p_high > p_low);
        prop_assert!(p_more_volts >= p_low - 1e-12);
    }

    /// Energy scales linearly with how long the window is when the activity
    /// is scaled alongside (power is intensive, energy is extensive).
    #[test]
    fn power_is_intensive_under_window_scaling(
        flits in 1u64..10_000,
        scale in 2u64..10,
    ) {
        let model = RouterPowerModel::new();
        let f = Hertz::from_mhz(700.0);
        let v = Volts::new(0.75);
        let base = RouterActivity {
            buffer_writes: flits,
            buffer_reads: flits,
            crossbar_traversals: flits,
            link_flits: flits,
            cycles: 5_000,
            ..RouterActivity::new()
        };
        let scaled = RouterActivity {
            buffer_writes: flits * scale,
            buffer_reads: flits * scale,
            crossbar_traversals: flits * scale,
            link_flits: flits * scale,
            cycles: 5_000 * scale,
            ..RouterActivity::new()
        };
        let duration = 5.0e6;
        let p1 = model.router_power_mw(&base, f, v, duration);
        let p2 = model.router_power_mw(&scaled, f, v, duration * scale as f64);
        prop_assert!((p1 - p2).abs() < 1e-9 * p1.max(1.0));
    }

    /// Custom power parameters are respected: doubling every per-event energy
    /// doubles the activity-driven part of the power.
    #[test]
    fn power_params_scale_event_energy(flits in 1u64..50_000) {
        let base_params = PowerParams::calibrated_28nm();
        let mut doubled = base_params;
        doubled.buffer_write_pj *= 2.0;
        doubled.buffer_read_pj *= 2.0;
        doubled.crossbar_pj *= 2.0;
        doubled.link_pj *= 2.0;
        doubled.eject_pj *= 2.0;
        doubled.vc_alloc_pj *= 2.0;
        doubled.sw_alloc_pj *= 2.0;
        let act = RouterActivity {
            buffer_writes: flits,
            buffer_reads: flits,
            crossbar_traversals: flits,
            link_flits: flits,
            cycles: 10_000,
            ..RouterActivity::new()
        };
        let f = Hertz::from_ghz(1.0);
        let v = Volts::new(0.9);
        let duration = 1.0e7;
        let p_base = RouterPowerModel::with_params(base_params).router_power_mw(&act, f, v, duration);
        let p_double = RouterPowerModel::with_params(doubled).router_power_mw(&act, f, v, duration);
        let static_part = base_params.clock_tree_mw + base_params.leakage_mw;
        let dyn_base = p_base - static_part;
        let dyn_double = p_double - static_part;
        prop_assert!((dyn_double - 2.0 * dyn_base).abs() < 1e-6 * dyn_base.max(1.0));
    }
}
