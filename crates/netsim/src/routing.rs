//! Routing algorithms.
//!
//! The paper uses deterministic dimension-ordered (XY) routing on the mesh,
//! provided here by [`XyRouting`]. The [`RoutingAlgorithm`] trait keeps the
//! router generic so that other deterministic algorithms (e.g. YX or
//! table-based routing) can be plugged in for ablation studies.
//!
//! # Torus routing and datelines
//!
//! On a [`Topology::torus`] the dimension-ordered algorithms take the
//! shortest way around each ring (ties broken towards East/South), which
//! closes a channel-dependency cycle inside every ring. Deadlock freedom is
//! restored with the classic *dateline* discipline (Dally & Seitz): each ring
//! places its dateline on the wrap-around link, packets start in virtual
//! channel class 0 and switch to class 1 once they cross the dateline of the
//! ring they are currently traversing. [`RoutingAlgorithm::next_vc_class`]
//! reports the class a packet must use downstream of its next hop; the router
//! restricts VC allocation to that class (see
//! [`Router`](crate::router::Router)). On a mesh the class is always 0 and no
//! restriction applies.

use crate::topology::{Direction, Topology};
use serde::{Deserialize, Serialize};
use std::fmt::Debug;

/// A deterministic routing function: which output port should a packet
/// residing at `current` take to reach `dst`?
pub trait RoutingAlgorithm: Debug + Send + Sync {
    /// Returns the output port to take at router `current` for a packet whose
    /// destination is `dst`. Returns [`Direction::Local`] when
    /// `current == dst`.
    fn route(&self, topo: &Topology, current: usize, dst: usize) -> Direction;

    /// The dateline virtual-channel class (0 or 1) the packet must use on the
    /// link chosen by [`route`](Self::route) at `current`.
    ///
    /// `src` is the packet's source (head flits carry it), which determines
    /// where the packet entered the ring it is currently traversing. The
    /// default implementation returns 0, which is correct for any topology
    /// without wrap-around links.
    fn next_vc_class(&self, topo: &Topology, src: usize, current: usize, dst: usize) -> u8 {
        let _ = (topo, src, current, dst);
        0
    }

    /// Routing with blockage context, consulted by the router's RC stage.
    ///
    /// `blocked` is a bitmask of output ports that are currently unusable at
    /// `current` (failed links, failed neighbours, fenced power-gated
    /// neighbours); `in_port` is the port the head flit arrived on and
    /// `in_class` the VC class (0 = escape, 1 = adaptive) of the input VC it
    /// occupies; `adaptive_full` is a bitmask of output ports with no free
    /// adaptive-class VC left. Returns the chosen output port together with
    /// the virtual-channel class the packet must use downstream.
    ///
    /// The default implementation ignores the blockage context entirely and
    /// delegates to [`route`](Self::route) / [`next_vc_class`](Self::next_vc_class):
    /// deterministic dimension-ordered algorithms keep their exact fault-free
    /// behaviour (bit-identical goldens) and visibly strand traffic at failed
    /// components instead of escaping them. Adaptive algorithms override this.
    #[allow(clippy::too_many_arguments)]
    fn route_around(
        &self,
        topo: &Topology,
        src: usize,
        current: usize,
        dst: usize,
        in_port: usize,
        in_class: u8,
        blocked: u8,
        adaptive_full: u8,
    ) -> (Direction, u8) {
        let _ = (in_port, in_class, blocked, adaptive_full);
        (self.route(topo, current, dst), self.next_vc_class(topo, src, current, dst))
    }

    /// Whether the router must split its virtual channels into an escape
    /// class (class 0) and an adaptive class (class 1) on *every* topology.
    ///
    /// Dimension-ordered algorithms return `false`: they only need the
    /// dateline split the torus already imposes. [`MinimalAdaptive`] returns
    /// `true` so that meshes also reserve a deadlock-free escape class.
    fn wants_escape_classes(&self) -> bool {
        false
    }

    /// The number of hops the algorithm takes from `src` to `dst`
    /// (used by tests and by zero-load latency estimates).
    fn path_length(&self, topo: &Topology, src: usize, dst: usize) -> usize {
        let mut hops = 0;
        let mut at = src;
        // Loop detector: a deterministic route that revisits a node repeats
        // forever, so `node_count` hops already imply a loop. The bound is
        // deliberately looser — wrap-around routes and future non-minimal
        // algorithms (Valiant-style detours traverse up to two full paths)
        // must not trip it.
        let bound = 2 * topo.node_count() + 2 * (topo.width() + topo.height());
        while at != dst {
            let dir = self.route(topo, at, dst);
            at = topo.neighbor(at, dir).expect("routing function must not route off the topology");
            hops += 1;
            assert!(hops <= bound, "routing loop detected");
        }
        hops
    }
}

/// The travel direction along one ring dimension: positive means increasing
/// coordinate (East/South).
///
/// `k` is the ring size, `c` the current coordinate, `d` the destination
/// coordinate (`c != d`). On a torus the shorter way around wins, with ties
/// broken towards positive; on a mesh wrap-around is not available so the
/// sign of `d - c` decides.
fn ring_positive(torus: bool, k: usize, c: usize, d: usize) -> bool {
    if !torus {
        return c < d;
    }
    let dpos = (d + k - c) % k;
    dpos <= k - dpos
}

/// Dateline class after the next hop along one torus ring.
///
/// `s` is the coordinate at which the packet entered this ring (its source
/// coordinate under dimension-ordered routing), `c` its current coordinate,
/// `d` its destination coordinate (`c != d`). The dateline sits on the
/// wrap-around link; a packet is in class 1 once its path from `s` has used
/// that link. Minimal ring routes keep a constant travel direction, so the
/// direction can be derived from `s` and matches [`ring_positive`] at every
/// intermediate hop.
fn ring_class_after_hop(k: usize, s: usize, c: usize, d: usize) -> u8 {
    let positive = ring_positive(true, k, s, d);
    if positive {
        let next = (c + 1) % k;
        u8::from(next < s)
    } else {
        let next = (c + k - 1) % k;
        u8::from(next > s)
    }
}

/// Dimension-ordered routing: correct the X coordinate first, then Y.
///
/// XY routing on a mesh is minimal and deadlock-free, which is why it is the
/// default in Booksim and in the paper. On a torus it takes the shortest way
/// around each ring and relies on the dateline VC discipline (see the module
/// docs) for deadlock freedom.
///
/// ```
/// use noc_sim::{Topology, XyRouting, RoutingAlgorithm, Direction};
///
/// let mesh = Topology::mesh(5, 5);
/// let routing = XyRouting::new();
/// // From node 0 (0,0) to node 24 (4,4) the first moves go east.
/// assert_eq!(routing.route(&mesh, 0, 24), Direction::East);
/// // On the torus the same pair is one wrap hop west, then one north.
/// let torus = Topology::torus(5, 5);
/// assert_eq!(routing.route(&torus, 0, 24), Direction::West);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct XyRouting {
    _private: (),
}

impl XyRouting {
    /// Creates the XY routing function.
    pub fn new() -> Self {
        XyRouting { _private: () }
    }
}

impl RoutingAlgorithm for XyRouting {
    fn route(&self, topo: &Topology, current: usize, dst: usize) -> Direction {
        let (cx, cy) = topo.coords(current);
        let (dx, dy) = topo.coords(dst);
        let torus = topo.is_torus();
        if cx != dx {
            if ring_positive(torus, topo.width(), cx, dx) {
                Direction::East
            } else {
                Direction::West
            }
        } else if cy != dy {
            if ring_positive(torus, topo.height(), cy, dy) {
                Direction::South
            } else {
                Direction::North
            }
        } else {
            Direction::Local
        }
    }

    fn next_vc_class(&self, topo: &Topology, src: usize, current: usize, dst: usize) -> u8 {
        if !topo.is_torus() {
            return 0;
        }
        let (cx, cy) = topo.coords(current);
        let (sx, sy) = topo.coords(src);
        let (dx, dy) = topo.coords(dst);
        if cx != dx {
            ring_class_after_hop(topo.width(), sx, cx, dx)
        } else if cy != dy {
            ring_class_after_hop(topo.height(), sy, cy, dy)
        } else {
            0
        }
    }
}

/// Dimension-ordered routing that corrects Y first, then X.
///
/// Not used by the paper's experiments, but handy for checking that the
/// policy-level conclusions do not depend on the routing order (ablation).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct YxRouting {
    _private: (),
}

impl YxRouting {
    /// Creates the YX routing function.
    pub fn new() -> Self {
        YxRouting { _private: () }
    }
}

impl RoutingAlgorithm for YxRouting {
    fn route(&self, topo: &Topology, current: usize, dst: usize) -> Direction {
        let (cx, cy) = topo.coords(current);
        let (dx, dy) = topo.coords(dst);
        let torus = topo.is_torus();
        if cy != dy {
            if ring_positive(torus, topo.height(), cy, dy) {
                Direction::South
            } else {
                Direction::North
            }
        } else if cx != dx {
            if ring_positive(torus, topo.width(), cx, dx) {
                Direction::East
            } else {
                Direction::West
            }
        } else {
            Direction::Local
        }
    }

    fn next_vc_class(&self, topo: &Topology, src: usize, current: usize, dst: usize) -> u8 {
        if !topo.is_torus() {
            return 0;
        }
        let (cx, cy) = topo.coords(current);
        let (sx, sy) = topo.coords(src);
        let (dx, dy) = topo.coords(dst);
        if cy != dy {
            ring_class_after_hop(topo.height(), sy, cy, dy)
        } else if cx != dx {
            ring_class_after_hop(topo.width(), sx, cx, dx)
        } else {
            0
        }
    }
}

/// The mesh-style (never wrap-around) XY direction from `current` to `dst`.
///
/// On a torus this deliberately ignores the wrap links, so the directed
/// channel-dependency graph it induces is acyclic on *both* topologies —
/// which is what makes it a valid Duato escape network.
fn mesh_xy(topo: &Topology, current: usize, dst: usize) -> Direction {
    let (cx, cy) = topo.coords(current);
    let (dx, dy) = topo.coords(dst);
    if cx != dx {
        if cx < dx {
            Direction::East
        } else {
            Direction::West
        }
    } else if cy != dy {
        if cy < dy {
            Direction::South
        } else {
            Direction::North
        }
    } else {
        Direction::Local
    }
}

/// Duato-style minimal-adaptive routing with escape virtual channels.
///
/// The virtual channels are split into two classes (see
/// [`Router`](crate::router::Router)): **class 0 — escape** — runs
/// dimension-ordered XY along mesh directions only (never a wrap-around
/// link), so its channel-dependency graph is acyclic on mesh *and* torus and
/// packets restricted to it always drain; **class 1 — adaptive** — carries
/// minimal-adaptive traffic and the deviations around failed links/routers
/// or fenced (power-gated) neighbours.
///
/// **The escape class is sticky** (Duato's condition for wormhole networks):
/// a packet travelling on an escape channel is only ever offered the next
/// escape channel, so an escape-channel holder never waits on adaptive
/// resources — a mixed-class wait would let adaptive credit cycles thread
/// through the escape network and deadlock it. The single exception is a
/// *faulted* escape hop: strict stickiness would strand the packet at a
/// permanent fault, so there (and only there) it re-enters the adaptive
/// class. Re-entry is **restricted**: the packet only leaves the escape
/// class for a port with a currently *free* adaptive VC (minimal ports
/// first, then detours); when every candidate's adaptive VCs are full it
/// stays committed to the faulted escape port and re-selects next cycle.
/// A re-entering packet therefore *takes* adaptive resources but never
/// *waits* on an adaptive holder while itself holding escape channels —
/// the wait edge that used to let a mixed-class cycle close (an earlier
/// revision fell through to the unrestricted adaptive selection and could
/// park an escape holder on a full adaptive VC; that hole is pinned by the
/// regression tests and by
/// [`with_unrestricted_reentry`](MinimalAdaptive::with_unrestricted_reentry),
/// which preserves the old behaviour for demonstration).
///
/// Port choice at each hop, in order:
/// 1. a packet already on the escape class continues on the escape (mesh-XY)
///    port — class 0 — unless that port is fault-blocked (see above);
/// 2. a minimal port (torus-aware, so wrap links are eligible) that is not
///    blocked and still has a free adaptive VC — class 1;
/// 3. the escape port, when it is not blocked and is not the port the packet
///    just arrived through (a deviated packet must not bounce straight back
///    — the U-turn ping-pong builds circular VC dependencies) — class 0;
///    this is the fallback Duato's argument requires every blocked header to
///    keep being offered, and the router re-runs this selection every cycle;
/// 4. a minimal unblocked port whose adaptive VCs are all busy — class 1 —
///    waiting there (the header re-selects, so escape is re-offered);
/// 5. a non-minimal detour: the unblocked port (never the local port and
///    never a U-turn back through `in_port`) whose neighbour is closest to
///    the destination, preferring ports perpendicular to the escape
///    direction over its reverse — class 1.
///
/// When every candidate is blocked the packet commits to the escape port and
/// waits; against a permanent fault it strands there, visibly, in the
/// drop/strand accounting rather than silently. The algorithm is stateless
/// and never U-turns onto the escape class, so it routes around isolated
/// faults but does not search its way out of dead-end corridors.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MinimalAdaptive {
    /// `true` → pre-fix fault re-entry: a packet leaving a faulted escape
    /// hop falls through to the unrestricted adaptive selection and may
    /// wait on a full adaptive VC (the mixed-class wait edge).
    unrestricted_reentry: bool,
}

impl MinimalAdaptive {
    /// Creates the minimal-adaptive routing function.
    pub fn new() -> Self {
        MinimalAdaptive { unrestricted_reentry: false }
    }

    /// The pre-fix fault re-entry semantics: a packet whose escape hop is
    /// faulted re-enters the adaptive class unconditionally, including the
    /// "wait on a full adaptive VC" step — the wait edge that lets a
    /// mixed-class cycle close. Retained **only** so the regression suite
    /// can demonstrate the deadlock the restricted re-entry rule closes;
    /// never use this in a real configuration.
    pub fn with_unrestricted_reentry() -> Self {
        MinimalAdaptive { unrestricted_reentry: true }
    }

    /// The torus-aware minimal direction along each still-uncorrected
    /// dimension, X first (up to two candidates).
    fn minimal_candidates(topo: &Topology, current: usize, dst: usize) -> [Option<Direction>; 2] {
        let (cx, cy) = topo.coords(current);
        let (dx, dy) = topo.coords(dst);
        let torus = topo.is_torus();
        let x = (cx != dx).then(|| {
            if ring_positive(torus, topo.width(), cx, dx) {
                Direction::East
            } else {
                Direction::West
            }
        });
        let y = (cy != dy).then(|| {
            if ring_positive(torus, topo.height(), cy, dy) {
                Direction::South
            } else {
                Direction::North
            }
        });
        [x, y]
    }
}

impl RoutingAlgorithm for MinimalAdaptive {
    /// The fault-free deterministic path: the escape network's mesh-XY route.
    fn route(&self, topo: &Topology, current: usize, dst: usize) -> Direction {
        mesh_xy(topo, current, dst)
    }

    /// Packets following [`route`](Self::route) stay on the escape class.
    fn next_vc_class(&self, _topo: &Topology, _src: usize, _current: usize, _dst: usize) -> u8 {
        0
    }

    fn wants_escape_classes(&self) -> bool {
        true
    }

    fn route_around(
        &self,
        topo: &Topology,
        _src: usize,
        current: usize,
        dst: usize,
        in_port: usize,
        in_class: u8,
        blocked: u8,
        adaptive_full: u8,
    ) -> (Direction, u8) {
        let escape = mesh_xy(topo, current, dst);
        if escape == Direction::Local {
            return (Direction::Local, 0);
        }
        let usable = |dir: Direction| {
            blocked & (1u8 << dir.index()) == 0 && topo.neighbor(current, dir).is_some()
        };
        // Non-minimal detour: closest-to-destination unblocked port, never a
        // U-turn. The reverse of the escape direction ranks behind the two
        // perpendicular ports at equal distance — walking *around* a fault
        // beats backing away from it, which tends to orbit the fault region
        // forever. Remaining ties break on port order (N < E < S < W).
        // `require_free` additionally demands a free adaptive VC (the
        // restricted re-entry rule).
        let detour = |require_free: bool| -> Option<Direction> {
            let reverse = escape.opposite();
            let mut best: Option<(usize, bool, Direction)> = None;
            for dir in [Direction::North, Direction::East, Direction::South, Direction::West] {
                if dir == escape || dir.index() == in_port || !usable(dir) {
                    continue;
                }
                if require_free && adaptive_full & (1u8 << dir.index()) != 0 {
                    continue;
                }
                let nbr = topo.neighbor(current, dir).expect("usable port has a neighbor");
                let dist = topo.hop_distance(nbr, dst);
                let backs_away = dir == reverse;
                if best.is_none_or(|(d, b, _)| (dist, backs_away) < (d, b)) {
                    best = Some((dist, backs_away, dir));
                }
            }
            best.map(|(_, _, dir)| dir)
        };
        // Sticky escape: a packet on an escape channel continues on the
        // escape network, whatever the congestion — only a *faulted* escape
        // hop sends it back into the adaptive class (see the type docs).
        // XY never reverses, so this continuation cannot ping-pong.
        let on_escape = in_class == 0 && in_port != Direction::Local.index();
        if on_escape && usable(escape) {
            return (escape, 0);
        }
        // Adaptive class. Minimal progress first (wrap links eligible): any
        // unblocked minimal port with a free adaptive VC, X-dimension first.
        let minimal = MinimalAdaptive::minimal_candidates(topo, current, dst);
        for dir in minimal.into_iter().flatten() {
            if usable(dir) && adaptive_full & (1u8 << dir.index()) == 0 {
                return (dir, 1);
            }
        }
        if on_escape && !self.unrestricted_reentry {
            // Restricted re-entry (the deadlock fix): this packet holds
            // escape channels upstream, so it may only *take* a free
            // adaptive VC (a detour counts), never *wait* on a full one —
            // that wait edge closes mixed-class cycles. With every adaptive
            // candidate full it stays committed to the faulted escape port;
            // the header re-selects every cycle, so it re-enters the moment
            // a VC frees (or the fence drops on a transient fault).
            if let Some(dir) = detour(true) {
                return (dir, 1);
            }
            return (escape, 0);
        }
        // All adaptive minimal VCs busy: offer the escape channel — the
        // fallback Duato's deadlock argument requires every blocked header
        // to see (the RC stage re-runs this selection each cycle). Never
        // through the port the packet arrived on: committing that U-turn to
        // the sticky escape class bounces the packet between two routers
        // forever and wedges both VCs.
        let ping_pong = escape.index() == in_port;
        if usable(escape) && !ping_pong {
            return (escape, 0);
        }
        // Escape blocked (or a bounce): wait minimally in the adaptive class
        // before considering a detour — the header keeps re-selecting.
        for dir in minimal.into_iter().flatten() {
            if usable(dir) {
                return (dir, 1);
            }
        }
        match detour(false) {
            Some(dir) => (dir, 1),
            // Fully blocked: commit to the escape port and wait (or strand).
            None => (escape, 0),
        }
    }
}

/// The routing-algorithm axis of a [`NetworkConfig`](crate::NetworkConfig):
/// a serialisable name that resolves to a [`RoutingAlgorithm`]
/// implementation at simulation construction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RoutingKind {
    /// Dimension-ordered XY (the paper's baseline).
    #[default]
    Xy,
    /// Dimension-ordered YX.
    Yx,
    /// Minimal-adaptive with dimension-ordered escape VCs
    /// ([`MinimalAdaptive`]); requires at least two virtual channels.
    MinimalAdaptive,
}

impl RoutingKind {
    /// All routing kinds, for sweeping.
    pub const ALL: [RoutingKind; 3] =
        [RoutingKind::Xy, RoutingKind::Yx, RoutingKind::MinimalAdaptive];

    /// Short lowercase name used in scenario labels and result files.
    pub fn name(&self) -> &'static str {
        match self {
            RoutingKind::Xy => "xy",
            RoutingKind::Yx => "yx",
            RoutingKind::MinimalAdaptive => "adaptive",
        }
    }

    /// Instantiates the algorithm.
    pub fn algorithm(&self) -> Box<dyn RoutingAlgorithm> {
        match self {
            RoutingKind::Xy => Box::new(XyRouting::new()),
            RoutingKind::Yx => Box::new(YxRouting::new()),
            RoutingKind::MinimalAdaptive => Box::new(MinimalAdaptive::new()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Mesh2d;

    #[test]
    fn xy_reaches_destination_with_minimal_hops() {
        let mesh = Mesh2d::new(5, 5);
        let routing = XyRouting::new();
        for src in 0..mesh.node_count() {
            for dst in 0..mesh.node_count() {
                assert_eq!(routing.path_length(&mesh, src, dst), mesh.hop_distance(src, dst));
            }
        }
    }

    #[test]
    fn yx_reaches_destination_with_minimal_hops() {
        let mesh = Mesh2d::new(4, 6);
        let routing = YxRouting::new();
        for src in 0..mesh.node_count() {
            for dst in 0..mesh.node_count() {
                assert_eq!(routing.path_length(&mesh, src, dst), mesh.hop_distance(src, dst));
            }
        }
    }

    #[test]
    fn xy_corrects_x_before_y() {
        let mesh = Mesh2d::new(5, 5);
        let routing = XyRouting::new();
        let src = mesh.node_at(0, 0);
        let dst = mesh.node_at(3, 3);
        assert_eq!(routing.route(&mesh, src, dst), Direction::East);
        let mid = mesh.node_at(3, 0);
        assert_eq!(routing.route(&mesh, mid, dst), Direction::South);
    }

    #[test]
    fn yx_corrects_y_before_x() {
        let mesh = Mesh2d::new(5, 5);
        let routing = YxRouting::new();
        let src = mesh.node_at(0, 0);
        let dst = mesh.node_at(3, 3);
        assert_eq!(routing.route(&mesh, src, dst), Direction::South);
    }

    #[test]
    fn destination_routes_to_local_port() {
        for topo in [Topology::mesh(4, 4), Topology::torus(4, 4)] {
            let routing = XyRouting::new();
            for node in 0..topo.node_count() {
                assert_eq!(routing.route(&topo, node, node), Direction::Local);
            }
        }
    }

    #[test]
    fn xy_route_never_leaves_mesh() {
        let mesh = Mesh2d::new(8, 8);
        let routing = XyRouting::new();
        for src in 0..mesh.node_count() {
            for dst in 0..mesh.node_count() {
                if src == dst {
                    continue;
                }
                let dir = routing.route(&mesh, src, dst);
                assert!(mesh.neighbor(src, dir).is_some(), "route must point at a real neighbor");
            }
        }
    }

    #[test]
    fn torus_routes_are_minimal_for_both_orders() {
        for topo in [Topology::torus(5, 5), Topology::torus(4, 6)] {
            for src in 0..topo.node_count() {
                for dst in 0..topo.node_count() {
                    assert_eq!(
                        XyRouting::new().path_length(&topo, src, dst),
                        topo.hop_distance(src, dst),
                        "xy {topo}: {src} -> {dst}"
                    );
                    assert_eq!(
                        YxRouting::new().path_length(&topo, src, dst),
                        topo.hop_distance(src, dst),
                        "yx {topo}: {src} -> {dst}"
                    );
                }
            }
        }
    }

    #[test]
    fn torus_prefers_the_wrap_link_when_shorter() {
        let t = Topology::torus(5, 5);
        let routing = XyRouting::new();
        // (0,0) -> (4,0): one hop west through the wrap link, not four east.
        assert_eq!(routing.route(&t, t.node_at(0, 0), t.node_at(4, 0)), Direction::West);
        // (0,0) -> (3,0): two hops west around the ring.
        assert_eq!(routing.route(&t, t.node_at(0, 0), t.node_at(3, 0)), Direction::West);
        // (0,0) -> (2,0): two hops east, no wrap.
        assert_eq!(routing.route(&t, t.node_at(0, 0), t.node_at(2, 0)), Direction::East);
    }

    #[test]
    fn even_ring_ties_break_towards_east_and_south() {
        let t = Topology::torus(4, 4);
        let routing = XyRouting::new();
        // Distance 2 both ways on a 4-ring: East wins.
        assert_eq!(routing.route(&t, t.node_at(0, 0), t.node_at(2, 0)), Direction::East);
        assert_eq!(routing.route(&t, t.node_at(0, 0), t.node_at(0, 2)), Direction::South);
    }

    #[test]
    fn vc_class_flips_after_the_dateline() {
        let t = Topology::torus(5, 5);
        let routing = XyRouting::new();
        let src = t.node_at(4, 0);
        let dst = t.node_at(1, 0);
        // Route goes East through the wrap link 4 -> 0 -> 1.
        assert_eq!(routing.route(&t, src, dst), Direction::East);
        // The very first hop crosses the dateline: downstream class is 1.
        assert_eq!(routing.next_vc_class(&t, src, src, dst), 1);
        // After the crossing the packet stays in class 1.
        assert_eq!(routing.next_vc_class(&t, src, t.node_at(0, 0), dst), 1);
        // A route that never wraps stays in class 0 throughout.
        let src2 = t.node_at(0, 0);
        let dst2 = t.node_at(2, 0);
        assert_eq!(routing.next_vc_class(&t, src2, src2, dst2), 0);
        assert_eq!(routing.next_vc_class(&t, src2, t.node_at(1, 0), dst2), 0);
    }

    #[test]
    fn vc_class_resets_when_switching_dimension() {
        let t = Topology::torus(5, 5);
        let routing = XyRouting::new();
        // X leg wraps (class 1), the subsequent Y leg does not: the class
        // must fall back to 0 when the packet enters the fresh ring.
        let src = t.node_at(4, 0);
        let dst = t.node_at(0, 2);
        let after_x = t.node_at(0, 0);
        assert_eq!(routing.next_vc_class(&t, src, src, dst), 1);
        assert_eq!(routing.route(&t, after_x, dst), Direction::South);
        assert_eq!(routing.next_vc_class(&t, src, after_x, dst), 0);
    }

    #[test]
    fn mesh_vc_class_is_always_zero() {
        let mesh = Mesh2d::new(4, 4);
        for routing in [&XyRouting::new() as &dyn RoutingAlgorithm, &YxRouting::new()] {
            for src in 0..mesh.node_count() {
                for dst in 0..mesh.node_count() {
                    assert_eq!(routing.next_vc_class(&mesh, src, src, dst), 0);
                }
            }
        }
    }

    #[test]
    fn adaptive_selection_is_minimal_and_escape_stays_mesh_xy() {
        for topo in [Topology::mesh(5, 5), Topology::torus(5, 5)] {
            let adaptive = MinimalAdaptive::new();
            let local = Direction::Local.index();
            for src in 0..topo.node_count() {
                for dst in 0..topo.node_count() {
                    // With adaptive VCs free, an injected packet makes
                    // minimal progress in the adaptive class.
                    let (dir, class) = adaptive.route_around(&topo, src, src, dst, local, 1, 0, 0);
                    if src == dst {
                        assert_eq!((dir, class), (Direction::Local, 0));
                        continue;
                    }
                    assert_eq!(class, 1, "fault-free traffic rides the adaptive class");
                    let nbr = topo.neighbor(src, dir).unwrap();
                    assert_eq!(
                        topo.hop_distance(nbr, dst),
                        topo.hop_distance(src, dst) - 1,
                        "{topo}: {src}->{dst} via {dir:?} must be minimal"
                    );
                    // With every adaptive VC busy, the fallback is the
                    // escape network: mesh-XY, class 0, never a wrap link.
                    let (dir, class) =
                        adaptive.route_around(&topo, src, src, dst, local, 1, 0, 0b1111);
                    assert_eq!(dir, mesh_xy(&topo, src, dst));
                    assert_eq!(class, 0, "blocked headers are offered the escape class");
                    let nbr = topo.neighbor(src, dir).unwrap();
                    let (sx, sy) = topo.coords(src);
                    let (nx, ny) = topo.coords(nbr);
                    assert!(
                        sx.abs_diff(nx) + sy.abs_diff(ny) == 1,
                        "escape hop {src}->{nbr} must not wrap"
                    );
                }
            }
        }
    }

    #[test]
    fn escape_class_is_sticky_until_faulted() {
        let mesh = Mesh2d::new(5, 5);
        let adaptive = MinimalAdaptive::new();
        let current = mesh.node_at(2, 2);
        let dst = mesh.node_at(4, 2);
        // Escape wants East; the packet arrived on an escape VC from the
        // West. It must continue on escape even though adaptive VCs are
        // free everywhere — an escape holder never waits on adaptive
        // resources (Duato's wormhole condition).
        let in_west = Direction::West.index();
        assert_eq!(
            adaptive.route_around(&mesh, 0, current, dst, in_west, 0, 0, 0),
            (Direction::East, 0)
        );
        // A *faulted* escape hop is the one exception: the packet re-enters
        // the adaptive class instead of stranding at the dead link.
        let blocked = 1u8 << Direction::East.index();
        let (dir, class) = adaptive.route_around(&mesh, 0, current, dst, in_west, 0, blocked, 0);
        assert_eq!(class, 1, "a dead escape hop re-enters the adaptive class");
        assert_ne!(dir, Direction::East);
        // An adaptive packet, by contrast, only takes escape when the
        // adaptive VCs of its minimal port are exhausted.
        let full_east = 1u8 << Direction::East.index();
        assert_eq!(
            adaptive.route_around(&mesh, 0, current, dst, in_west, 1, 0, full_east),
            (Direction::East, 0)
        );
    }

    #[test]
    fn adaptive_deviates_around_a_blocked_escape_port() {
        let mesh = Mesh2d::new(5, 5);
        let adaptive = MinimalAdaptive::new();
        let src = mesh.node_at(1, 2);
        let dst = mesh.node_at(3, 4);
        // Escape wants East; block it: the other minimal port (South) wins,
        // in the adaptive class.
        let blocked = 1u8 << Direction::East.index();
        assert_eq!(
            adaptive.route_around(&mesh, src, src, dst, Direction::Local.index(), 1, blocked, 0),
            (Direction::South, 1)
        );
        // Block both minimal ports: a detour (closest to dst, never a
        // U-turn) in the adaptive class.
        let blocked = blocked | 1u8 << Direction::South.index();
        let (dir, class) =
            adaptive.route_around(&mesh, src, src, dst, Direction::West.index(), 1, blocked, 0);
        assert_eq!(class, 1);
        assert_eq!(dir, Direction::North, "north neighbour (1,1) is closer than a U-turn west");
        // Fully blocked: commit to the escape port and wait there.
        assert_eq!(
            adaptive.route_around(&mesh, src, src, dst, Direction::Local.index(), 1, 0b1111, 0),
            (Direction::East, 0)
        );
    }

    #[test]
    fn adaptive_never_routes_off_the_topology_under_arbitrary_blockage() {
        for topo in [Topology::mesh(4, 4), Topology::torus(4, 4)] {
            let adaptive = MinimalAdaptive::new();
            for src in 0..topo.node_count() {
                for dst in 0..topo.node_count() {
                    if src == dst {
                        continue;
                    }
                    for blocked in 0u8..16 {
                        for in_port in 0..5 {
                            for in_class in 0..2u8 {
                                for adaptive_full in [0u8, 0b0101, 0b1111] {
                                    let (dir, class) = adaptive.route_around(
                                        &topo,
                                        src,
                                        src,
                                        dst,
                                        in_port,
                                        in_class,
                                        blocked,
                                        adaptive_full,
                                    );
                                    assert!(dir != Direction::Local);
                                    assert!(
                                        topo.neighbor(src, dir).is_some(),
                                        "{topo}: {src}->{dst} blocked {blocked:#06b} chose {dir:?}"
                                    );
                                    assert!(class <= 1);
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn dimension_ordered_route_around_ignores_blockage() {
        // The default trait impl must keep DO routing bit-identical with and
        // without blockage context — that is what makes DO visibly strand
        // traffic at faults.
        let t = Topology::torus(5, 5);
        let xy = XyRouting::new();
        for src in 0..t.node_count() {
            for dst in 0..t.node_count() {
                let (dir, class) = xy.route_around(&t, src, src, dst, 0, 1, 0b1111, 0b1111);
                assert_eq!(dir, xy.route(&t, src, dst));
                assert_eq!(class, xy.next_vc_class(&t, src, src, dst));
            }
        }
        assert!(!xy.wants_escape_classes());
        assert!(MinimalAdaptive::new().wants_escape_classes());
    }

    #[test]
    fn path_length_bound_admits_full_torus_wrap_routes() {
        // Regression for the loop-detector bound: the longest minimal torus
        // routes (half-way around both rings) and every mesh route must stay
        // clearly inside it — `path_length` must never panic on a legal route.
        for topo in [Topology::torus(8, 8), Topology::torus(2, 8), Topology::mesh(8, 8)] {
            let bound = 2 * topo.node_count() + 2 * (topo.width() + topo.height());
            for src in 0..topo.node_count() {
                for dst in 0..topo.node_count() {
                    let hops = XyRouting::new().path_length(&topo, src, dst);
                    assert!(hops <= bound, "{topo}: {src}->{dst} took {hops} hops");
                }
            }
        }
    }
}
