//! The Video Conference Encoder (VCE) task graph of Fig. 9(b), mapped on a
//! 5×5 mesh.
//!
//! The VCE combines three subsystems: an H.264-style video encoding pipeline,
//! an audio encoding pipeline (filter bank → MDCT → quantizer → Huffman), and
//! an OFDM modulator fed through a stream multiplexer and memories. The 30
//! edge weights (packets per encoded frame) are the values printed in the
//! paper's figure; endpoints and placement are a documented reconstruction
//! (see `DESIGN.md`). The original figure names 28 blocks including three
//! separate memories; to fit the 25-node mesh exactly one task per node, the
//! three memories are modelled as two (video memory and stream memory) and
//! the SRAM block absorbs the third, which preserves every published edge
//! weight and the hotspot structure.

use crate::task_graph::{TaskEdge, TaskGraph, TaskNode};

/// Builds the Video Conference Encoder task graph mapped on a 5×5 mesh.
///
/// ```
/// let app = noc_apps::video_conference_encoder();
/// assert_eq!(app.mesh_size(), (5, 5));
/// assert_eq!(app.edges().len(), 30);
/// ```
pub fn video_conference_encoder() -> TaskGraph {
    let tasks = vec![
        // Video front end (top rows).
        task("video in", 0),
        task("yuv generator", 1),
        task("padding for mv computation", 2),
        task("chroma resampler", 3),
        task("video memory", 4),
        task("motion estimation", 5),
        task("motion compensation", 6),
        task("transform dct", 7),
        task("quantization", 8),
        task("sample hold", 9),
        task("predictor", 10),
        task("de-blocking filter", 11),
        task("idct", 12),
        task("iq", 13),
        task("entropy encoder", 14),
        // Audio pipeline and stream aggregation (bottom rows).
        task("audio in", 15),
        task("filter bank", 16),
        task("mdct", 17),
        task("audio quantizer", 18),
        task("huffman encoding", 19),
        task("ps ts mux", 20),
        task("stream mux", 21),
        task("sram", 22),
        task("fft", 23),
        task("ifft", 24),
    ];
    let index = |name: &str| {
        tasks
            .iter()
            .position(|t| t.name == name)
            .unwrap_or_else(|| panic!("unknown task {name}"))
    };
    let edge = |src: &str, dst: &str, packets: f64| TaskEdge {
        src_task: index(src),
        dst_task: index(dst),
        packets_per_frame: packets,
    };
    // The 30 weights of Fig. 9(b), each used exactly once. The video pipeline
    // carries the large weights (thousands of packets per frame), the audio
    // pipeline and the modulator the small ones, as in the published figure.
    let edges = vec![
        // Video pipeline.
        edge("video in", "yuv generator", 4200.0),
        edge("yuv generator", "padding for mv computation", 8400.0),
        edge("yuv generator", "chroma resampler", 2800.0),
        edge("padding for mv computation", "motion estimation", 2800.0),
        edge("chroma resampler", "motion estimation", 2800.0),
        edge("motion estimation", "motion compensation", 5600.0),
        edge("motion compensation", "transform dct", 1400.0),
        edge("video memory", "motion estimation", 30.0),
        edge("motion compensation", "video memory", 4200.0),
        edge("transform dct", "quantization", 4200.0),
        edge("quantization", "iq", 2280.0),
        edge("quantization", "entropy encoder", 2280.0),
        edge("iq", "idct", 2210.0),
        edge("idct", "predictor", 240.0),
        edge("predictor", "motion compensation", 240.0),
        edge("idct", "de-blocking filter", 660.0),
        edge("de-blocking filter", "sample hold", 660.0),
        edge("sample hold", "predictor", 2100.0),
        edge("entropy encoder", "stream mux", 640.0),
        edge("de-blocking filter", "video memory", 30.0),
        // Audio pipeline.
        edge("audio in", "filter bank", 2000.0),
        edge("filter bank", "mdct", 600.0),
        edge("mdct", "audio quantizer", 640.0),
        edge("audio quantizer", "huffman encoding", 90.0),
        edge("huffman encoding", "ps ts mux", 620.0),
        // Stream aggregation and OFDM modulator.
        edge("ps ts mux", "stream mux", 90.0),
        edge("stream mux", "sram", 90.0),
        edge("sram", "ifft", 90.0),
        edge("fft", "ifft", 30.0),
        edge("ifft", "sram", 20.0),
    ];
    TaskGraph::new("vce", 5, 5, tasks, edges).expect("the built-in VCE graph is valid")
}

fn task(name: &str, mesh_node: usize) -> TaskNode {
    TaskNode { name: name.to_string(), mesh_node }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_sim::TrafficSpec;

    #[test]
    fn graph_matches_figure_9b_inventory() {
        let g = video_conference_encoder();
        assert_eq!(g.mesh_size(), (5, 5));
        assert_eq!(g.tasks().len(), 25, "one task per node of the 5x5 mesh");
        assert_eq!(g.edges().len(), 30, "Fig. 9(b) prints 30 edge weights");
    }

    #[test]
    fn all_published_weights_appear_exactly_once() {
        let g = video_conference_encoder();
        let mut weights: Vec<f64> = g.edges().iter().map(|e| e.packets_per_frame).collect();
        weights.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut expected = vec![
            4200.0, 8400.0, 2800.0, 2800.0, 5600.0, 2800.0, 1400.0, 30.0, 2280.0, 4200.0, 4200.0,
            2280.0, 2210.0, 240.0, 240.0, 660.0, 660.0, 2100.0, 640.0, 30.0, 2000.0, 600.0, 640.0,
            90.0, 620.0, 90.0, 90.0, 90.0, 30.0, 20.0,
        ];
        expected.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(weights, expected);
    }

    #[test]
    fn vce_is_heavier_than_h264() {
        // The VCE processes larger frames plus audio: roughly an order of
        // magnitude more packets per frame than the H.264 graph.
        let vce = video_conference_encoder();
        let h264 = crate::h264_encoder();
        assert!(vce.packets_per_frame() > 5.0 * h264.packets_per_frame());
    }

    #[test]
    fn mapping_covers_the_whole_mesh_without_collisions() {
        let g = video_conference_encoder();
        let mut nodes: Vec<usize> = g.tasks().iter().map(|t| t.mesh_node).collect();
        nodes.sort_unstable();
        nodes.dedup();
        assert_eq!(nodes.len(), 25);
        assert!(nodes.iter().all(|&n| n < 25));
    }

    #[test]
    fn heavy_video_edges_are_mapped_to_short_paths() {
        // The reconstruction places the heaviest producer/consumer pairs on
        // neighbouring nodes so that hotspot links resemble the original
        // mapping; check the top edge (8400 packets) spans at most 2 hops.
        let g = video_conference_encoder();
        let heaviest = g
            .edges()
            .iter()
            .max_by(|a, b| a.packets_per_frame.partial_cmp(&b.packets_per_frame).unwrap())
            .unwrap();
        let src = g.tasks()[heaviest.src_task].mesh_node;
        let dst = g.tasks()[heaviest.dst_task].mesh_node;
        let (sx, sy) = (src % 5, src / 5);
        let (dx, dy) = (dst % 5, dst / 5);
        let hops = sx.abs_diff(dx) + sy.abs_diff(dy);
        assert!(hops <= 2, "heaviest edge spans {hops} hops");
    }

    #[test]
    fn traffic_matrix_scales_and_keeps_audio_video_ratio() {
        let g = video_conference_encoder();
        let m = g.traffic_matrix(1.0, 20, 0.35);
        let audio_in = g.tasks()[g.task_index("audio in").unwrap()].mesh_node;
        let video_in = g.tasks()[g.task_index("video in").unwrap()].mesh_node;
        assert!(
            m.row_total(video_in) > m.row_total(audio_in),
            "video front-end must be busier than audio front-end"
        );
        assert!(m.offered_load() > 0.0);
        let slow = g.traffic_matrix(0.1, 20, 0.35);
        assert!((slow.offered_load() - 0.1 * m.offered_load()).abs() < 1e-12);
    }
}
