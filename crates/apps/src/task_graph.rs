//! Application task graphs and their conversion into NoC traffic matrices.

use noc_sim::MatrixTraffic;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// A computation block of the application, mapped onto one mesh node.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaskNode {
    /// Human-readable task name (e.g. `"motion estimation"`).
    pub name: String,
    /// Mesh node (row-major index) the task is mapped to.
    pub mesh_node: usize,
}

/// A directed communication between two tasks.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TaskEdge {
    /// Index of the producing task in [`TaskGraph::tasks`].
    pub src_task: usize,
    /// Index of the consuming task in [`TaskGraph::tasks`].
    pub dst_task: usize,
    /// Packets exchanged per encoded frame (the Fig. 9 edge weight).
    pub packets_per_frame: f64,
}

/// Errors returned while building a [`TaskGraph`].
#[derive(Debug, Clone, PartialEq)]
pub enum TaskGraphError {
    /// A task was mapped outside the mesh.
    MappingOutOfRange {
        /// Name of the offending task.
        task: String,
        /// Requested mesh node.
        mesh_node: usize,
        /// Number of nodes in the mesh.
        node_count: usize,
    },
    /// Two tasks were mapped onto the same mesh node.
    DuplicateMapping {
        /// The mesh node mapped twice.
        mesh_node: usize,
    },
    /// An edge references a task index that does not exist.
    UnknownTask {
        /// The offending task index.
        task_index: usize,
    },
    /// An edge weight was negative or not finite.
    InvalidWeight {
        /// The offending weight.
        weight: f64,
    },
}

impl fmt::Display for TaskGraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TaskGraphError::MappingOutOfRange { task, mesh_node, node_count } => write!(
                f,
                "task '{task}' mapped to node {mesh_node} but the mesh only has {node_count} nodes"
            ),
            TaskGraphError::DuplicateMapping { mesh_node } => {
                write!(f, "two tasks mapped onto mesh node {mesh_node}")
            }
            TaskGraphError::UnknownTask { task_index } => {
                write!(f, "edge references unknown task index {task_index}")
            }
            TaskGraphError::InvalidWeight { weight } => {
                write!(f, "edge weight {weight} is not a non-negative finite number")
            }
        }
    }
}

impl Error for TaskGraphError {}

/// A mapped application task graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskGraph {
    name: String,
    mesh_width: usize,
    mesh_height: usize,
    tasks: Vec<TaskNode>,
    edges: Vec<TaskEdge>,
}

impl TaskGraph {
    /// Builds and validates a task graph mapped on a `mesh_width × mesh_height`
    /// mesh.
    ///
    /// # Errors
    ///
    /// Returns a [`TaskGraphError`] if a task is mapped outside the mesh, two
    /// tasks share a node, an edge references a missing task, or a weight is
    /// invalid.
    pub fn new(
        name: impl Into<String>,
        mesh_width: usize,
        mesh_height: usize,
        tasks: Vec<TaskNode>,
        edges: Vec<TaskEdge>,
    ) -> Result<Self, TaskGraphError> {
        let node_count = mesh_width * mesh_height;
        let mut used = HashMap::new();
        for task in &tasks {
            if task.mesh_node >= node_count {
                return Err(TaskGraphError::MappingOutOfRange {
                    task: task.name.clone(),
                    mesh_node: task.mesh_node,
                    node_count,
                });
            }
            if used.insert(task.mesh_node, &task.name).is_some() {
                return Err(TaskGraphError::DuplicateMapping { mesh_node: task.mesh_node });
            }
        }
        for edge in &edges {
            if edge.src_task >= tasks.len() {
                return Err(TaskGraphError::UnknownTask { task_index: edge.src_task });
            }
            if edge.dst_task >= tasks.len() {
                return Err(TaskGraphError::UnknownTask { task_index: edge.dst_task });
            }
            if !edge.packets_per_frame.is_finite() || edge.packets_per_frame < 0.0 {
                return Err(TaskGraphError::InvalidWeight { weight: edge.packets_per_frame });
            }
        }
        Ok(TaskGraph { name: name.into(), mesh_width, mesh_height, tasks, edges })
    }

    /// The application name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Mesh dimensions `(width, height)` the application is mapped on.
    pub fn mesh_size(&self) -> (usize, usize) {
        (self.mesh_width, self.mesh_height)
    }

    /// Builds the paper-baseline network configuration this application is
    /// mapped on, with the grid dimensions of the mapping and the requested
    /// topology kind. The traffic matrix itself is placement-based and
    /// topology-agnostic, so the same application can be evaluated on a mesh
    /// (as in the paper) or on a torus (shorter wrap paths for edge-mapped
    /// tasks).
    ///
    /// # Errors
    ///
    /// Propagates [`noc_sim::ConfigError`]s from the validated builder (e.g.
    /// a torus with fewer than two virtual channels — impossible with the
    /// baseline parameters, but kept fallible for custom builders).
    pub fn network_config(
        &self,
        kind: noc_sim::TopologyKind,
    ) -> Result<noc_sim::NetworkConfig, noc_sim::ConfigError> {
        noc_sim::NetworkConfig::builder()
            .mesh(self.mesh_width, self.mesh_height)
            .topology(kind)
            .build()
    }

    /// The mapped tasks.
    pub fn tasks(&self) -> &[TaskNode] {
        &self.tasks
    }

    /// The communication edges.
    pub fn edges(&self) -> &[TaskEdge] {
        &self.edges
    }

    /// Total packets exchanged per frame (sum of edge weights).
    pub fn packets_per_frame(&self) -> f64 {
        self.edges.iter().map(|e| e.packets_per_frame).sum()
    }

    /// Looks up a task index by name.
    pub fn task_index(&self, name: &str) -> Option<usize> {
        self.tasks.iter().position(|t| t.name == name)
    }

    /// Per-mesh-node packet rates per frame: `rates[src_node][dst_node]`.
    pub fn node_packet_rates(&self) -> Vec<Vec<f64>> {
        let n = self.mesh_width * self.mesh_height;
        let mut rates = vec![vec![0.0; n]; n];
        for edge in &self.edges {
            let src = self.tasks[edge.src_task].mesh_node;
            let dst = self.tasks[edge.dst_task].mesh_node;
            if src != dst {
                rates[src][dst] += edge.packets_per_frame;
            }
        }
        rates
    }

    /// Builds the NoC traffic matrix for this application running at
    /// `speed` × the nominal frame rate.
    ///
    /// The paper plots results against a *relative* application speed
    /// (1.0 ≙ 75 frames/s); only the relative per-edge weights are published,
    /// so the absolute scale is set here by `peak_node_rate`: at `speed == 1.0`
    /// the busiest source node injects exactly `peak_node_rate` flits per node
    /// clock cycle, and all other nodes are scaled proportionally. Packets are
    /// `packet_length` flits long.
    ///
    /// # Panics
    ///
    /// Panics if `speed` or `peak_node_rate` is negative/not finite, if
    /// `packet_length` is zero, or if the graph has no traffic at all.
    pub fn traffic_matrix(
        &self,
        speed: f64,
        packet_length: usize,
        peak_node_rate: f64,
    ) -> MatrixTraffic {
        assert!(speed.is_finite() && speed >= 0.0, "speed must be non-negative");
        assert!(
            peak_node_rate.is_finite() && peak_node_rate > 0.0,
            "peak node rate must be positive"
        );
        assert!(packet_length > 0, "packet length must be positive");
        let packet_rates = self.node_packet_rates();
        let peak_packets: f64 = packet_rates
            .iter()
            .map(|row| row.iter().sum::<f64>())
            .fold(0.0, f64::max);
        assert!(peak_packets > 0.0, "application graph carries no traffic");
        // Flit rate of the busiest node at speed 1.0 must equal peak_node_rate.
        let scale = peak_node_rate / (peak_packets * packet_length as f64);
        let flit_rates: Vec<Vec<f64>> = packet_rates
            .iter()
            .map(|row| {
                row.iter().map(|p| p * packet_length as f64 * scale * speed).collect()
            })
            .collect();
        MatrixTraffic::new(flit_rates, packet_length)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_sim::TrafficSpec;

    fn simple_graph() -> TaskGraph {
        TaskGraph::new(
            "toy",
            2,
            2,
            vec![
                TaskNode { name: "a".into(), mesh_node: 0 },
                TaskNode { name: "b".into(), mesh_node: 1 },
                TaskNode { name: "c".into(), mesh_node: 3 },
            ],
            vec![
                TaskEdge { src_task: 0, dst_task: 1, packets_per_frame: 100.0 },
                TaskEdge { src_task: 1, dst_task: 2, packets_per_frame: 50.0 },
            ],
        )
        .unwrap()
    }

    #[test]
    fn valid_graph_builds() {
        let g = simple_graph();
        assert_eq!(g.name(), "toy");
        assert_eq!(g.tasks().len(), 3);
        assert_eq!(g.packets_per_frame(), 150.0);
        assert_eq!(g.task_index("b"), Some(1));
        assert_eq!(g.task_index("zz"), None);
    }

    #[test]
    fn network_config_follows_mapping_and_topology() {
        let g = simple_graph();
        let mesh = g.network_config(noc_sim::TopologyKind::Mesh).unwrap();
        assert_eq!((mesh.width(), mesh.height()), g.mesh_size());
        assert!(!mesh.topology().is_torus());
        let torus = g.network_config(noc_sim::TopologyKind::Torus).unwrap();
        assert!(torus.topology().is_torus());
        assert_eq!(torus.node_count(), 4);
    }

    #[test]
    fn out_of_range_mapping_rejected() {
        let err = TaskGraph::new(
            "bad",
            2,
            2,
            vec![TaskNode { name: "a".into(), mesh_node: 7 }],
            vec![],
        )
        .unwrap_err();
        assert!(matches!(err, TaskGraphError::MappingOutOfRange { .. }));
        assert!(err.to_string().contains("'a'"));
    }

    #[test]
    fn duplicate_mapping_rejected() {
        let err = TaskGraph::new(
            "bad",
            2,
            2,
            vec![
                TaskNode { name: "a".into(), mesh_node: 1 },
                TaskNode { name: "b".into(), mesh_node: 1 },
            ],
            vec![],
        )
        .unwrap_err();
        assert_eq!(err, TaskGraphError::DuplicateMapping { mesh_node: 1 });
    }

    #[test]
    fn dangling_edge_rejected() {
        let err = TaskGraph::new(
            "bad",
            2,
            2,
            vec![TaskNode { name: "a".into(), mesh_node: 0 }],
            vec![TaskEdge { src_task: 0, dst_task: 3, packets_per_frame: 1.0 }],
        )
        .unwrap_err();
        assert_eq!(err, TaskGraphError::UnknownTask { task_index: 3 });
    }

    #[test]
    fn negative_weight_rejected() {
        let err = TaskGraph::new(
            "bad",
            2,
            2,
            vec![
                TaskNode { name: "a".into(), mesh_node: 0 },
                TaskNode { name: "b".into(), mesh_node: 1 },
            ],
            vec![TaskEdge { src_task: 0, dst_task: 1, packets_per_frame: -2.0 }],
        )
        .unwrap_err();
        assert!(matches!(err, TaskGraphError::InvalidWeight { .. }));
    }

    #[test]
    fn node_rates_follow_the_mapping() {
        let g = simple_graph();
        let rates = g.node_packet_rates();
        assert_eq!(rates[0][1], 100.0);
        assert_eq!(rates[1][3], 50.0);
        assert_eq!(rates[0][3], 0.0);
    }

    #[test]
    fn traffic_matrix_peaks_at_the_requested_rate() {
        let g = simple_graph();
        let m = g.traffic_matrix(1.0, 10, 0.4);
        // Node 0 is the busiest source (100 packets/frame vs 50).
        assert!((m.row_total(0) - 0.4).abs() < 1e-12);
        assert!((m.row_total(1) - 0.2).abs() < 1e-12);
        // Speed scales everything linearly.
        let half = g.traffic_matrix(0.5, 10, 0.4);
        assert!((half.row_total(0) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn traffic_matrix_preserves_relative_weights() {
        let g = simple_graph();
        let m = g.traffic_matrix(1.0, 20, 0.3);
        let ratio = m.rate(0, 1) / m.rate(1, 3);
        assert!((ratio - 2.0).abs() < 1e-9);
        assert!(m.offered_load() > 0.0);
    }

    #[test]
    #[should_panic(expected = "no traffic")]
    fn empty_graph_cannot_make_traffic() {
        let g = TaskGraph::new(
            "empty",
            2,
            2,
            vec![TaskNode { name: "a".into(), mesh_node: 0 }],
            vec![],
        )
        .unwrap();
        let _ = g.traffic_matrix(1.0, 10, 0.4);
    }
}
