//! Invariant suite for the power-gating subsystem.
//!
//! Four contracts are pinned here:
//!
//! 1. **Differential equivalence under gating** — randomized scenarios
//!    (mesh/torus × pattern × Bernoulli/bursty × random thresholds, wakeup
//!    latencies and island layouts) stepped by the sparse and the dense
//!    engine produce bit-identical windows, stats, activity (including the
//!    gated-residency counters) and in-flight state.
//! 2. **Conservation through sleep/wake storms** — no flit and no credit is
//!    ever lost: at every pause point `generated = received + queued +
//!    buffered + in flight`, partial packets reassemble, and an aggressive
//!    ImmediateSleep configuration still delivers every packet.
//! 3. **Gating-off bit-identity** — a configuration with gating disabled
//!    (explicitly or by default) reproduces the ungated simulator's golden
//!    behaviour bit for bit (the golden window constants themselves are
//!    re-checked by `tests/determinism.rs`, which runs on the default —
//!    gating-disabled — configuration).
//! 4. **Wakeup-latency monotonicity** — a higher wakeup latency can only
//!    stall flits longer: average packet latency is non-decreasing in the
//!    configured wakeup latency, and the break-even-aware acceptance setting
//!    (light-load 8×8 mesh) burns strictly less energy than the ungated
//!    baseline at unchanged accepted throughput.

use noc_dvfs::{
    run_operating_point, run_operating_point_gated, BreakEvenConfig, ClosedLoopConfig,
    GatingPolicyKind, PolicyKind,
};
use noc_sim::{
    BurstyTraffic, GateState, GatingConfig, NetworkConfig, NocSimulation, RegionLayout,
    SyntheticTraffic, TopologyKind, TrafficPattern, TrafficSpec,
};
use proptest::prelude::*;

fn gated_grid_cfg(
    kind: TopologyKind,
    layout: RegionLayout,
    idle_threshold: u64,
    wakeup_latency: u64,
) -> NetworkConfig {
    NetworkConfig::builder()
        .mesh(4, 4)
        .topology(kind)
        .virtual_channels(2)
        .buffer_depth(4)
        .packet_length(4)
        .regions(layout)
        .gating(GatingConfig::enabled(idle_threshold, wakeup_latency))
        .build()
        .expect("4x4 gated grid configurations are valid")
}

fn scenario_traffic(
    pattern: TrafficPattern,
    rate: f64,
    packet_length: usize,
    bursty: bool,
) -> Box<dyn TrafficSpec> {
    if bursty {
        Box::new(BurstyTraffic::new(pattern, rate, packet_length, 200.0, 4.0))
    } else {
        Box::new(SyntheticTraffic::new(pattern, rate, packet_length))
    }
}

/// `generated = received + queued + buffered + in flight`, checked exactly.
fn assert_flit_conservation(sim: &NocSimulation, context: &str) {
    let accounted = sim.total_flits_received()
        + sim.queued_source_flits() as u64
        + sim.buffered_network_flits() as u64
        + sim.in_flight_flits() as u64;
    assert_eq!(accounted, sim.total_flits_generated(), "flits lost or duplicated: {context}");
}

proptest! {
    #![proptest_config(ProptestConfig::default())]

    /// Sparse and dense stepping stay bit-identical with gating enabled,
    /// across random thresholds, wakeup latencies and island layouts —
    /// including the gated-residency counters the power model consumes.
    #[test]
    fn sparse_and_dense_agree_under_gating(
        kind in prop_oneof![Just(TopologyKind::Mesh), Just(TopologyKind::Torus)],
        layout in prop_oneof![
            Just(RegionLayout::Whole),
            Just(RegionLayout::PerRow),
            Just(RegionLayout::Quadrants)
        ],
        pattern_idx in 0usize..TrafficPattern::ALL.len(),
        bursty in prop_oneof![Just(false), Just(true)],
        rate in 0.005f64..0.25,
        idle_threshold in 0u64..48,
        wakeup_latency in 1u64..24,
        seed in 0u64..1_000_000,
        chunk in 80u64..320,
    ) {
        let pattern = TrafficPattern::ALL[pattern_idx];
        let cfg = gated_grid_cfg(kind, layout, idle_threshold, wakeup_latency);
        let mut sparse = NocSimulation::new(
            cfg.clone(),
            scenario_traffic(pattern, rate, cfg.packet_length(), bursty),
            seed,
        );
        let mut dense = NocSimulation::new(
            cfg.clone(),
            scenario_traffic(pattern, rate, cfg.packet_length(), bursty),
            seed,
        );
        sparse.set_dense_stepping(false);
        dense.set_dense_stepping(true);
        for (i, &cycles) in [chunk, 2 * chunk, chunk / 2 + 1, chunk + 37].iter().enumerate() {
            if i == 2 && sparse.island_count() > 1 {
                // Mid-run per-island retune exercises gating across
                // non-firing ticks in both engines.
                sparse.set_island_frequency(1, noc_sim::Hertz::from_mhz(500.0));
                dense.set_island_frequency(1, noc_sim::Hertz::from_mhz(500.0));
            }
            sparse.run_cycles(cycles);
            dense.run_cycles(cycles);
            prop_assert_eq!(sparse.take_window(), dense.take_window(), "window {} diverged", i);
            prop_assert_eq!(
                sparse.take_activity(),
                dense.take_activity(),
                "activity (incl. gating residency) diverged in window {}",
                i
            );
            prop_assert_eq!(sparse.gated_router_count(), dense.gated_router_count());
            for node in 0..sparse.node_count() {
                prop_assert_eq!(sparse.router_gate_state(node), dense.router_gate_state(node));
            }
        }
        prop_assert_eq!(sparse.stats(), dense.stats());
        prop_assert_eq!(sparse.total_packets_delivered(), dense.total_packets_delivered());
        prop_assert_eq!(sparse.queued_source_flits(), dense.queued_source_flits());
        prop_assert_eq!(sparse.buffered_network_flits(), dense.buffered_network_flits());
        prop_assert_eq!(sparse.in_flight_flits(), dense.in_flight_flits());
        prop_assert_eq!(sparse.in_flight_credits(), dense.in_flight_credits());
    }

    /// Nothing is lost through sleep/wake storms: exact flit conservation at
    /// every pause point, and an aggressively gated network still delivers
    /// (wakeup requests always get through, fenced flits are held, credits
    /// into gated routers update retained state).
    #[test]
    fn conservation_through_sleep_wake_storms(
        kind in prop_oneof![Just(TopologyKind::Mesh), Just(TopologyKind::Torus)],
        layout in prop_oneof![Just(RegionLayout::Whole), Just(RegionLayout::Quadrants)],
        rate in 0.01f64..0.12,
        wakeup_latency in 1u64..32,
        seed in 0u64..1_000_000,
    ) {
        // Threshold 0 = ImmediateSleep at the simulator level: the maximum
        // possible number of sleep/wake transitions for the workload.
        let cfg = gated_grid_cfg(kind, layout, 0, wakeup_latency);
        let mut sim = NocSimulation::new(
            cfg.clone(),
            scenario_traffic(TrafficPattern::Uniform, rate, cfg.packet_length(), true),
            seed,
        );
        let mut delivered_last = 0;
        for pause in 0..6 {
            sim.run_cycles(1_500);
            assert_flit_conservation(&sim, &format!("pause {pause}"));
            let delivered = sim.total_packets_delivered();
            prop_assert!(delivered >= delivered_last);
            delivered_last = delivered;
        }
        let activity = sim.take_activity().total();
        prop_assert!(activity.sleep_events > 0, "storm setup must actually gate");
        prop_assert!(activity.wake_events > 0, "traffic must wake gated routers");
        prop_assert!(sim.total_packets_delivered() > 0, "the network must make progress");
        // Sleep/wake events balance up to the routers still asleep/waking.
        prop_assert!(activity.wake_events <= activity.sleep_events);
    }

    /// Gating disabled — explicitly or by default — is bit-identical to the
    /// ungated simulator, window by window.
    #[test]
    fn gating_off_is_bit_identical(
        kind in prop_oneof![Just(TopologyKind::Mesh), Just(TopologyKind::Torus)],
        rate in 0.02f64..0.3,
        seed in 0u64..1_000_000,
    ) {
        let plain = NetworkConfig::builder()
            .mesh(4, 4)
            .topology(kind)
            .virtual_channels(2)
            .buffer_depth(4)
            .packet_length(4)
            .build()
            .unwrap();
        let disabled = plain.to_builder().gating(GatingConfig::disabled()).build().unwrap();
        let mut a = NocSimulation::new(
            plain.clone(),
            scenario_traffic(TrafficPattern::Uniform, rate, 4, false),
            seed,
        );
        let mut b = NocSimulation::new(
            disabled,
            scenario_traffic(TrafficPattern::Uniform, rate, 4, false),
            seed,
        );
        for _ in 0..4 {
            a.run_cycles(400);
            b.run_cycles(400);
            prop_assert_eq!(a.take_window(), b.take_window());
            prop_assert_eq!(a.take_activity(), b.take_activity());
        }
        prop_assert_eq!(a.stats(), b.stats());
        prop_assert_eq!(b.gated_router_count(), 0);
    }
}

/// Higher wakeup latency ⇒ no lower average packet latency: each extra cycle
/// of power-up time can only stall fenced flits longer.
#[test]
fn wakeup_latency_is_monotone_in_packet_latency() {
    for (kind, seed) in
        [(TopologyKind::Mesh, 11u64), (TopologyKind::Mesh, 23), (TopologyKind::Torus, 7)]
    {
        let mut last = 0.0f64;
        for wakeup_latency in [1u64, 4, 16, 64] {
            let cfg = gated_grid_cfg(kind, RegionLayout::Whole, 4, wakeup_latency);
            let mut sim = NocSimulation::new(
                cfg.clone(),
                scenario_traffic(TrafficPattern::Uniform, 0.03, cfg.packet_length(), false),
                seed,
            );
            sim.run_cycles(20_000);
            let latency = sim.stats().avg_latency_cycles().expect("packets must complete");
            assert!(
                latency >= last,
                "{}/seed {seed}: latency fell from {last} to {latency} when the wakeup \
                 latency rose to {wakeup_latency}",
                kind.name()
            );
            last = latency;
        }
    }
}

/// A gated router refuses new route computation by construction: it is only
/// ever entered once drained, and the fence keeps flits out until it is
/// Active again — observable as zero buffered flits in any non-Active state.
#[test]
fn fenced_routers_never_hold_flits() {
    let cfg = gated_grid_cfg(TopologyKind::Mesh, RegionLayout::Whole, 2, 12);
    let mut sim = NocSimulation::new(
        cfg.clone(),
        scenario_traffic(TrafficPattern::Uniform, 0.05, cfg.packet_length(), true),
        3,
    );
    let mut saw_gated = false;
    for _ in 0..400 {
        sim.run_cycles(17);
        for node in 0..sim.node_count() {
            if sim.router_gate_state(node) != GateState::Active {
                saw_gated = true;
            }
        }
        if sim.gated_router_count() > 0 {
            // The quiescence contract extends to gating: gated routers are
            // excluded from the active worklist entirely.
            assert!(sim.active_router_count() <= sim.node_count() - sim.gated_router_count());
        }
    }
    assert!(saw_gated, "the scenario must exercise the state machine");
    assert_flit_conservation(&sim, "after the probe run");
}

/// The issue's acceptance criterion at full scale: BreakEvenAware gating on
/// a light-load 8×8 mesh reports strictly lower total energy than the
/// ungated baseline while the accepted throughput is unchanged.
#[test]
fn break_even_gating_on_8x8_saves_energy_at_unchanged_throughput() {
    let net = NetworkConfig::builder().mesh(8, 8).build().unwrap();
    let loop_cfg = ClosedLoopConfig::quick();
    let load = 0.03;
    let baseline = run_operating_point(
        &net,
        Box::new(SyntheticTraffic::new(TrafficPattern::Uniform, load, net.packet_length())),
        PolicyKind::NoDvfs,
        &loop_cfg,
        2015,
    );
    let gated = run_operating_point_gated(
        &net,
        Box::new(SyntheticTraffic::new(TrafficPattern::Uniform, load, net.packet_length())),
        PolicyKind::NoDvfs,
        GatingPolicyKind::BreakEvenAware(BreakEvenConfig::new()),
        &loop_cfg,
        2015,
    );
    let baseline_energy = baseline.power_mw * baseline.measurement_wall_ns;
    let gated_energy = gated.aggregate.power_mw * gated.aggregate.measurement_wall_ns;
    assert!(
        gated_energy < baseline_energy,
        "gating must cut total energy ({gated_energy} vs {baseline_energy} pJ)"
    );
    assert!(
        (gated.aggregate.throughput - baseline.throughput).abs()
            <= 0.02 * baseline.throughput.max(1e-12),
        "accepted throughput must be unchanged ({} vs {})",
        gated.aggregate.throughput,
        baseline.throughput
    );
    assert!(gated.gated_fraction() > 0.25, "a 3% load leaves most routers asleep");
    assert!(gated.gating.total().net_saving_pj() > 0.0);
}
