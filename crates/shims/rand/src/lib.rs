//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this shim provides
//! the exact API subset the workspace uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] extension methods
//! `gen_range` (over `Range<usize>` / `Range<f64>`), `gen_bool` and `gen`.
//!
//! The generator is **not** the upstream `StdRng` (ChaCha12); it is
//! xoshiro256++ seeded through SplitMix64. Every simulation result in this
//! repository is defined relative to this generator, which is deterministic,
//! portable and of more than sufficient statistical quality for Bernoulli
//! injection processes and uniform destination draws.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Types that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose entire stream is determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Random-value sampling, mirroring `rand::Rng`.
pub trait Rng {
    /// Advances the generator and returns 64 fresh bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform value in `[0, 1)` with 53 bits of precision.
    fn gen_f64(&mut self) -> f64 {
        // 53 high bits -> uniform double in [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability must be in [0, 1]");
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        self.gen_f64() < p
    }

    /// Uniform sample from a half-open range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }
}

/// Ranges that can be sampled uniformly (the `rand` `SampleRange` analogue).
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<usize> for Range<usize> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> usize {
        assert!(self.start < self.end, "cannot sample an empty range");
        let span = (self.end - self.start) as u64;
        // Lemire-style rejection-free-enough bounded sampling: multiply-shift.
        // The bias for spans < 2^32 is far below anything observable here.
        let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
        self.start + hi as usize
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample an empty range");
        self.start + (self.end - self.start) * rng.gen_f64()
    }
}

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256++ generator (offline `StdRng` stand-in).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion of the 64-bit seed into the 256-bit state,
            // as recommended by the xoshiro authors.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl StdRng {
        /// Returns the raw 256-bit xoshiro256++ state.
        ///
        /// Together with [`from_state`](Self::from_state) this allows a
        /// generator to be checkpointed and later resumed mid-stream: the
        /// restored generator produces exactly the remaining draws of the
        /// original stream.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a raw state captured by
        /// [`state`](Self::state).
        ///
        /// No seeding expansion is applied: the words are installed verbatim,
        /// so `from_state(r.state())` is a perfect clone of `r`.
        pub fn from_state(s: [u64; 4]) -> Self {
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "measured {rate}");
    }

    #[test]
    fn gen_range_usize_covers_and_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..10_000 {
            let v = rng.gen_range(0..10usize);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_range_f64_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = rng.gen_range(2.0..5.0);
            assert!((2.0..5.0).contains(&v));
        }
    }

    #[test]
    fn extreme_probabilities_short_circuit() {
        let mut rng = StdRng::seed_from_u64(4);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
