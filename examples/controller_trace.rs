//! Controller trace: watch the two DVFS controllers react to a load change.
//!
//! ```text
//! cargo run --release --example controller_trace
//! ```
//!
//! Drives the simulator directly (without the closed-loop harness) so that
//! the per-interval behaviour of the controllers is visible: the workload
//! steps from a light load to a heavy load halfway through the run, RMSD
//! re-tunes the frequency within one control period (it is feed-forward),
//! while the DMSD PI loop converges over several periods towards its 150 ns
//! delay target. This is the mechanism behind Figs. 1 and 3 of the paper.

use noc_dvfs_repro::dvfs::{ControlMeasurement, Dmsd, DmsdConfig, DvfsPolicy, Rmsd, RmsdConfig};
use noc_dvfs_repro::sim::{
    Hertz, NetworkConfig, NocSimulation, SyntheticTraffic, TrafficPattern,
};

fn run_trace(policy_name: &str, make_policy: &dyn Fn(&NetworkConfig) -> Box<dyn DvfsPolicy>) {
    let net = NetworkConfig::builder()
        .mesh(4, 4)
        .virtual_channels(4)
        .buffer_depth(4)
        .packet_length(10)
        .build()
        .expect("valid configuration");
    let intervals = 40usize;
    let period_cycles = 2_000u64;
    println!("--- {policy_name} ---");
    println!("{:>9} {:>12} {:>12} {:>12} {:>12}", "interval", "rate", "freq (GHz)", "lat (cyc)", "delay (ns)");

    // Two phases: light load then a step to a heavier load.
    for (phase, rate) in [(0usize, 0.06f64), (1, 0.24)] {
        let traffic = SyntheticTraffic::new(TrafficPattern::Uniform, rate, net.packet_length());
        let mut sim = NocSimulation::new(net.clone(), Box::new(traffic), 7 + phase as u64);
        let mut policy = make_policy(&net);
        let mut frequency = net.max_frequency();
        sim.set_noc_frequency(frequency);
        for interval in 0..intervals / 2 {
            let cycles =
                (period_cycles as f64 * frequency.as_hz() / net.max_frequency().as_hz()) as u64;
            sim.run_cycles(cycles.max(1));
            let window = sim.take_window();
            let measurement = ControlMeasurement {
                window,
                node_count: sim.node_count(),
                current_frequency: frequency,
            };
            if interval % 4 == 0 || interval == intervals / 2 - 1 {
                println!(
                    "{:>9} {:>12.3} {:>12.3} {:>12.1} {:>12.1}",
                    interval + phase * intervals / 2,
                    measurement.node_injection_rate(),
                    frequency.as_ghz(),
                    window.avg_latency_cycles().unwrap_or(0.0),
                    window.avg_delay_ns().unwrap_or(0.0),
                );
            }
            frequency = policy.next_frequency(&measurement);
            sim.set_noc_frequency(frequency);
        }
    }
    println!();
}

fn main() {
    let lambda_max = 0.4;
    run_trace("RMSD (rate-based, feed-forward)", &|net: &NetworkConfig| {
        Box::new(Rmsd::new(net, RmsdConfig::with_lambda_max(lambda_max))) as Box<dyn DvfsPolicy>
    });
    run_trace("DMSD (delay-based, PI feedback)", &|net: &NetworkConfig| {
        Box::new(Dmsd::new(net, DmsdConfig::with_target_ns(150.0))) as Box<dyn DvfsPolicy>
    });
    println!(
        "RMSD snaps to the frequency dictated by the measured rate; DMSD walks its frequency \
         down until the measured delay reaches the target, then holds (check Hertz::from_ghz \
         clamping in noc-sim for the actuator limits)."
    );
    let _ = Hertz::from_ghz(1.0);
}
