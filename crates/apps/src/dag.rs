//! Synthetic task graphs: layered series-parallel random DAGs with
//! Pareto-distributed communication rates.
//!
//! The H.264 and VCE graphs cover the paper's two published applications, but
//! multi-tenant experiments need *many* distinct applications to co-locate on
//! one fabric. This module generates them: a seeded random DAG whose tasks
//! are arranged in consecutive layers (every edge goes from a lower-numbered
//! task to a higher-numbered one, so the graph is acyclic by construction)
//! and whose edge weights follow a bounded Pareto distribution
//! `x_m · u^(-1/α)` — a long-tailed rate mix in which a few hot producer
//! edges dominate, matching the published encoder graphs' shape where a
//! handful of edges carry most of the traffic.
//!
//! Generation is fully deterministic: the same [`DagConfig`] always yields
//! the same [`TaskGraph`], so sweep scenarios can reference a tenant mix by
//! seed alone.

use crate::task_graph::{TaskEdge, TaskGraph, TaskGraphError, TaskNode};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Weights are clamped here so an aggressively small `pareto_shape` cannot
/// push a single edge to infinity (which [`TaskGraph::new`] would reject).
const MAX_EDGE_WEIGHT: f64 = 1e12;

/// Configuration for [`random_task_graph`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DagConfig {
    /// Number of tasks (DAG vertices). At least 2: one source, one sink.
    pub tasks: usize,
    /// Width of the mesh tile the tasks are mapped on.
    pub mesh_width: usize,
    /// Height of the mesh tile the tasks are mapped on.
    pub mesh_height: usize,
    /// Pareto shape parameter `α` (> 0). Smaller values give a heavier tail:
    /// a few edges carry far more traffic than the rest.
    pub pareto_shape: f64,
    /// Pareto scale parameter `x_m` (> 0): the minimum packets-per-frame
    /// weight of any edge.
    pub pareto_scale: f64,
    /// Probability of each optional forward "skip" edge between tasks in
    /// non-adjacent layers, in `[0, 1]`. `0.0` gives a pure series-parallel
    /// spine.
    pub extra_edge_prob: f64,
    /// Seed for the generator's private RNG stream.
    pub seed: u64,
}

impl DagConfig {
    /// A reasonable default parameterisation: Pareto shape 1.5 (finite mean,
    /// heavy tail), scale 10 packets/frame, 15 % skip-edge probability.
    pub fn new(tasks: usize, mesh_width: usize, mesh_height: usize, seed: u64) -> Self {
        DagConfig {
            tasks,
            mesh_width,
            mesh_height,
            pareto_shape: 1.5,
            pareto_scale: 10.0,
            extra_edge_prob: 0.15,
            seed,
        }
    }
}

/// Errors returned by [`random_task_graph`].
#[derive(Debug, Clone, PartialEq)]
pub enum DagError {
    /// Fewer than two tasks were requested.
    TooFewTasks {
        /// The requested task count.
        tasks: usize,
    },
    /// More tasks than mesh nodes: the one-task-per-node mapping cannot fit.
    TooManyTasks {
        /// The requested task count.
        tasks: usize,
        /// Nodes available on the mesh tile.
        node_count: usize,
    },
    /// A Pareto parameter was non-positive or not finite.
    InvalidPareto {
        /// The offending shape value.
        shape: f64,
        /// The offending scale value.
        scale: f64,
    },
    /// The skip-edge probability was outside `[0, 1]`.
    InvalidEdgeProbability {
        /// The offending probability.
        prob: f64,
    },
    /// The generated graph failed [`TaskGraph`] validation (unreachable for
    /// a valid config; kept so the constructor cannot panic).
    Graph(TaskGraphError),
}

impl fmt::Display for DagError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DagError::TooFewTasks { tasks } => {
                write!(f, "a DAG needs at least 2 tasks, got {tasks}")
            }
            DagError::TooManyTasks { tasks, node_count } => {
                write!(f, "{tasks} tasks cannot map 1:1 onto a {node_count}-node tile")
            }
            DagError::InvalidPareto { shape, scale } => {
                write!(f, "Pareto shape {shape} and scale {scale} must be positive and finite")
            }
            DagError::InvalidEdgeProbability { prob } => {
                write!(f, "skip-edge probability {prob} must be in [0, 1]")
            }
            DagError::Graph(err) => write!(f, "generated graph failed validation: {err}"),
        }
    }
}

impl Error for DagError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DagError::Graph(err) => Some(err),
            _ => None,
        }
    }
}

impl From<TaskGraphError> for DagError {
    fn from(err: TaskGraphError) -> Self {
        DagError::Graph(err)
    }
}

/// One bounded-Pareto draw: `x_m · u^(-1/α)` with `u` uniform in `(0, 1]`.
fn pareto(rng: &mut StdRng, shape: f64, scale: f64) -> f64 {
    // 1 - gen_f64() maps [0, 1) onto (0, 1], keeping the draw finite.
    let u = 1.0 - rng.gen_range(0.0..1.0);
    (scale * u.powf(-1.0 / shape)).min(MAX_EDGE_WEIGHT)
}

/// Generates a seeded random layered DAG mapped onto a
/// `mesh_width × mesh_height` tile.
///
/// Structure: tasks are split into consecutive layers (layer widths are
/// drawn uniformly up to `⌈√tasks⌉`, so depth and parallelism both grow with
/// the task count). Every task in layer `i+1` receives at least one edge
/// from layer `i` and every non-sink task sends at least one — the graph is
/// weakly connected along the spine. Optional forward skip edges between
/// non-adjacent layers are added with probability
/// [`extra_edge_prob`](DagConfig::extra_edge_prob) each. All edges point
/// from a lower task index to a higher one, so **the result is acyclic by
/// construction**. Tasks are mapped onto distinct mesh nodes by a partial
/// Fisher–Yates shuffle of the tile's node indices.
///
/// # Errors
///
/// Returns a [`DagError`] if the config is invalid (see the variants).
pub fn random_task_graph(name: impl Into<String>, cfg: &DagConfig) -> Result<TaskGraph, DagError> {
    let node_count = cfg.mesh_width * cfg.mesh_height;
    if cfg.tasks < 2 {
        return Err(DagError::TooFewTasks { tasks: cfg.tasks });
    }
    if cfg.tasks > node_count {
        return Err(DagError::TooManyTasks { tasks: cfg.tasks, node_count });
    }
    if !(cfg.pareto_shape.is_finite()
        && cfg.pareto_shape > 0.0
        && cfg.pareto_scale.is_finite()
        && cfg.pareto_scale > 0.0)
    {
        return Err(DagError::InvalidPareto { shape: cfg.pareto_shape, scale: cfg.pareto_scale });
    }
    if !(0.0..=1.0).contains(&cfg.extra_edge_prob) || !cfg.extra_edge_prob.is_finite() {
        return Err(DagError::InvalidEdgeProbability { prob: cfg.extra_edge_prob });
    }
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    // Partition task indices 0..tasks into consecutive layers.
    let max_width = (cfg.tasks as f64).sqrt().ceil() as usize;
    let mut layers: Vec<std::ops::Range<usize>> = Vec::new();
    let mut start = 0;
    while start < cfg.tasks {
        let cap = max_width.min(cfg.tasks - start).max(1);
        let width = 1 + rng.gen_range(0..cap);
        let width = width.min(cfg.tasks - start);
        layers.push(start..start + width);
        start += width;
    }

    // Spine: every consumer pulls from the previous layer, every producer
    // pushes to the next, so no task is isolated.
    let mut edge_set: Vec<(usize, usize)> = Vec::new();
    for pair in layers.windows(2) {
        let (prev, next) = (pair[0].clone(), pair[1].clone());
        for dst in next.clone() {
            let src = prev.start + rng.gen_range(0..prev.len());
            edge_set.push((src, dst));
        }
        for src in prev {
            if !edge_set.iter().any(|&(s, _)| s == src) || rng.gen_bool(0.5) {
                let dst = next.start + rng.gen_range(0..next.len());
                if !edge_set.contains(&(src, dst)) {
                    edge_set.push((src, dst));
                }
            }
        }
    }
    // Forward skip edges between non-adjacent layers.
    if cfg.extra_edge_prob > 0.0 {
        for (i, from) in layers.iter().enumerate() {
            for to in layers.iter().skip(i + 2) {
                for src in from.clone() {
                    for dst in to.clone() {
                        if rng.gen_bool(cfg.extra_edge_prob) && !edge_set.contains(&(src, dst)) {
                            edge_set.push((src, dst));
                        }
                    }
                }
            }
        }
    }

    // Map tasks onto distinct mesh nodes: partial Fisher–Yates shuffle.
    let mut nodes: Vec<usize> = (0..node_count).collect();
    for i in 0..cfg.tasks {
        let j = i + rng.gen_range(0..node_count - i);
        nodes.swap(i, j);
    }
    let tasks: Vec<TaskNode> = (0..cfg.tasks)
        .map(|t| TaskNode { name: format!("t{t}"), mesh_node: nodes[t] })
        .collect();

    let edges: Vec<TaskEdge> = edge_set
        .into_iter()
        .map(|(src_task, dst_task)| TaskEdge {
            src_task,
            dst_task,
            packets_per_frame: pareto(&mut rng, cfg.pareto_shape, cfg.pareto_scale),
        })
        .collect();

    Ok(TaskGraph::new(name, cfg.mesh_width, cfg.mesh_height, tasks, edges)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_graph_is_acyclic_by_index_order() {
        let g = random_task_graph("dag", &DagConfig::new(12, 4, 4, 42)).unwrap();
        assert_eq!(g.tasks().len(), 12);
        assert!(!g.edges().is_empty());
        for e in g.edges() {
            assert!(e.src_task < e.dst_task, "edge {}→{} breaks the DAG order", e.src_task, e.dst_task);
        }
    }

    #[test]
    fn rates_are_pareto_bounded_below_by_the_scale() {
        let cfg = DagConfig { pareto_scale: 7.5, ..DagConfig::new(10, 4, 4, 7) };
        let g = random_task_graph("dag", &cfg).unwrap();
        for e in g.edges() {
            assert!(e.packets_per_frame >= 7.5);
            assert!(e.packets_per_frame.is_finite());
        }
    }

    #[test]
    fn same_seed_same_graph_different_seed_different_graph() {
        let a = random_task_graph("dag", &DagConfig::new(9, 4, 4, 3)).unwrap();
        let b = random_task_graph("dag", &DagConfig::new(9, 4, 4, 3)).unwrap();
        let c = random_task_graph("dag", &DagConfig::new(9, 4, 4, 4)).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn mapping_is_distinct_and_in_range() {
        let g = random_task_graph("dag", &DagConfig::new(16, 4, 4, 11)).unwrap();
        let mut seen = std::collections::HashSet::new();
        for t in g.tasks() {
            assert!(t.mesh_node < 16);
            assert!(seen.insert(t.mesh_node), "node {} mapped twice", t.mesh_node);
        }
    }

    #[test]
    fn invalid_configs_are_rejected() {
        assert!(matches!(
            random_task_graph("x", &DagConfig::new(1, 4, 4, 0)),
            Err(DagError::TooFewTasks { .. })
        ));
        assert!(matches!(
            random_task_graph("x", &DagConfig::new(17, 4, 4, 0)),
            Err(DagError::TooManyTasks { .. })
        ));
        let bad_shape = DagConfig { pareto_shape: 0.0, ..DagConfig::new(4, 4, 4, 0) };
        assert!(matches!(
            random_task_graph("x", &bad_shape),
            Err(DagError::InvalidPareto { .. })
        ));
        let bad_prob = DagConfig { extra_edge_prob: 1.5, ..DagConfig::new(4, 4, 4, 0) };
        assert!(matches!(
            random_task_graph("x", &bad_prob),
            Err(DagError::InvalidEdgeProbability { .. })
        ));
    }

    #[test]
    fn generated_graph_feeds_the_traffic_matrix() {
        use noc_sim::TrafficSpec;
        let g = random_task_graph("dag", &DagConfig::new(8, 4, 4, 99)).unwrap();
        let m = g.traffic_matrix(1.0, 5, 0.2);
        assert!(m.offered_load() > 0.0);
    }
}
