//! Fig. 5 bench: the 28-nm FDSOI frequency/voltage model (curve sampling and
//! the bisection-based inverse used on every DVFS actuation).

use criterion::{criterion_group, criterion_main, Criterion};
use noc_power::FdsoiTech;
use noc_sim::Hertz;
use std::hint::black_box;

fn bench_fig5(c: &mut Criterion) {
    let tech = FdsoiTech::new();
    c.bench_function("fig5_frequency_voltage_curve_100_points", |b| {
        b.iter(|| black_box(tech.frequency_voltage_curve(100)))
    });
    c.bench_function("fig5_vdd_for_frequency_bisection", |b| {
        b.iter(|| {
            for mhz in [350.0, 450.0, 600.0, 750.0, 900.0, 1000.0] {
                black_box(tech.vdd_for_frequency(Hertz::from_mhz(mhz)));
            }
        })
    });
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
