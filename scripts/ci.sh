#!/usr/bin/env bash
# The full local CI gate: release build, the complete test suite, clippy with
# warnings promoted to errors, and the determinism goldens a second time on
# the dense reference stepping loop. Run before every push.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

# The property suites (tests/{routing,traffic,simulator,policy}_properties.rs
# and tests/sparse_equivalence.rs) run as part of the workspace test pass
# below. Their inputs are sampled from per-case fixed seeds (see the proptest
# shim), so runs are reproducible; PROPTEST_CASES pins the case budget
# explicitly so local and CI runs cover the same corpus.
echo "==> cargo test -q (property suites at PROPTEST_CASES=${PROPTEST_CASES:-64}, fixed seeds)"
PROPTEST_CASES="${PROPTEST_CASES:-64}" cargo test -q

# The sparse activity-tracked engine is the default; the dense O(nodes×ports)
# reference loop must never rot, so the determinism goldens, the differential
# suite, the island invariants, the power-gating invariants and the
# fault-injection invariants run a second time with NOC_DENSE_STEP=1 forcing
# every simulation (including the ones inside the sweep engines) onto the
# dense path. The golden window constants are engine-independent by contract,
# and so are the voltage-frequency island fire-gating, the router
# sleep/wakeup state machines, and the fault fence/purge/recovery protocol.
# The checkpoint invariants join both reference-engine passes: the snapshot
# bit-identity contract explicitly spans engines (a snapshot taken under one
# stepping mode must resume exactly under another). The trace invariants join
# them too: replay ≡ record bit-identity must hold on whichever engine the
# replay runs under — and so do the telemetry invariants: the observer layer
# must stay zero-perturbation on the dense reference exactly as it is on the
# sparse engine.
echo "==> NOC_DENSE_STEP=1 cargo test -q --test determinism --test sparse_equivalence --test island_invariants --test gating_invariants --test fault_invariants --test checkpoint_invariants --test trace_invariants --test telemetry_invariants (dense reference loop)"
NOC_DENSE_STEP=1 PROPTEST_CASES="${PROPTEST_CASES:-64}" cargo test -q --test determinism --test sparse_equivalence --test island_invariants --test gating_invariants --test fault_invariants --test checkpoint_invariants --test trace_invariants --test telemetry_invariants

# Event-horizon cycle-skipping is on by default, so the main test pass above
# already exercises it; the base-tick (non-skipping) path is the reference
# that must never rot. NOC_NO_SKIP=1 forces every simulation onto per-tick
# stepping and re-runs the determinism goldens plus the skip/no-skip and
# subsystem differentials — the golden windows are skip-independent by
# contract. NOC_SWEEP_THREADS=1 does the same for per-island parallel
# stepping: the threaded path clamps to the serial step, pinning that the
# serial reference still matches the goldens the parity tests compare
# against.
echo "==> NOC_NO_SKIP=1 cargo test -q --test determinism --test sparse_equivalence --test checkpoint_invariants --test trace_invariants --test telemetry_invariants (base-tick reference path)"
NOC_NO_SKIP=1 PROPTEST_CASES="${PROPTEST_CASES:-64}" cargo test -q --test determinism --test sparse_equivalence --test checkpoint_invariants --test trace_invariants --test telemetry_invariants

echo "==> NOC_SWEEP_THREADS=1 cargo test -q --test determinism --test sparse_equivalence (serial island stepping)"
NOC_SWEEP_THREADS=1 PROPTEST_CASES="${PROPTEST_CASES:-64}" cargo test -q --test determinism --test sparse_equivalence

# Documentation is part of the contract: every public item is documented
# (#![warn(missing_docs)] + clippy -D warnings below), rustdoc links must
# resolve, and the runnable examples in the docs must stay green.
echo "==> RUSTDOCFLAGS=\"-D warnings\" cargo doc --no-deps"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --quiet

echo "==> cargo test -q --doc"
cargo test -q --doc

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "CI gate passed."
