//! Zero-perturbation telemetry end to end: counter fabric, congestion
//! heatmap, Perfetto trace export and the engine profile.
//!
//! ```text
//! cargo run --release --example telemetry_heatmap
//! ```
//!
//! One 8×8 mesh runs a hotspot load with power gating, four
//! voltage-frequency islands and a transient fault storm — the busiest
//! observable scenario the simulator has — with the telemetry layer
//! installed. The example then:
//!
//! 1. prints the latest [`TelemetrySnapshot`]'s grant/stall census and
//!    buffer-occupancy histogram,
//! 2. renders the per-router congestion heatmap as ASCII plus JSON and CSV
//!    artifacts,
//! 3. exports the typed event trace as a Chrome/Perfetto `trace_events`
//!    JSON (open it at `ui.perfetto.dev`), and
//! 4. proves the zero-perturbation contract on the spot: a twin run
//!    *without* telemetry produces the bit-identical measurement window.
//!
//! [`TelemetrySnapshot`]: noc_dvfs_repro::sim::TelemetrySnapshot

use noc_dvfs_repro::sim::telemetry::OCC_BINS;
use noc_dvfs_repro::sim::{
    BurstyTraffic, FaultConfig, GatingConfig, HazardConfig, Hertz, NetworkConfig, NocSimulation,
    RegionLayout, RoutingKind, TelemetryConfig, TrafficPattern,
};

fn build_sim() -> NocSimulation {
    let cfg = NetworkConfig::builder()
        .mesh(8, 8)
        .virtual_channels(2)
        .routing(RoutingKind::MinimalAdaptive)
        .regions(RegionLayout::Quadrants)
        .gating(GatingConfig::enabled(24, 8))
        .faults(FaultConfig::none().with_hazard(HazardConfig {
            link_rate: 1e-4,
            router_rate: 5e-5,
            transient_fraction: 1.0,
            transient_duration: 150,
        }))
        .build()
        .expect("8x8 observability scenario is valid");
    let traffic =
        BurstyTraffic::new(TrafficPattern::Hotspot, 0.10, cfg.packet_length(), 200.0, 4.0);
    NocSimulation::new(cfg, Box::new(traffic), 2015)
}

fn main() {
    let out_dir = std::env::temp_dir().join(format!("telemetry-heatmap-{}", std::process::id()));
    std::fs::create_dir_all(&out_dir).expect("temp output dir");

    // --- 1. an instrumented run -------------------------------------------
    let mut sim = build_sim();
    sim.install_telemetry(
        TelemetryConfig::default().with_sample_interval(512).with_profile(true),
    );
    // Retune one island mid-run so the trace shows a set-frequency event.
    sim.run_cycles(4_000);
    sim.set_island_frequency(2, Hertz::from_mhz(500.0));
    sim.run_cycles(4_000);

    let counters = sim.counters();
    println!("=== run: 8x8 hotspot + gating + islands + fault storm ===\n");
    println!(
        "cycle {}  delivered {} packets  dropped {} flits  gated {} routers",
        counters.cycle, counters.packets_delivered, counters.flits_dropped, counters.gated_routers
    );

    let telemetry = sim.telemetry().expect("telemetry installed above");
    let snap = telemetry.latest_snapshot().expect("8000 cycles cover many sample windows");
    println!("\n--- latest sample window ({}..{}) ---", snap.start_cycle, snap.end_cycle);
    println!("grants          {:>8}", snap.grants);
    println!("link flits      {:>8}", snap.link_flits);
    println!("escape flits    {:>8}   adaptive {:>8}", snap.escape_flits, snap.adaptive_flits);
    println!(
        "stalls          {:>8}   (no-credit {}, fenced {}, escape-hold {}, route {}, va {})",
        snap.total_stalls(),
        snap.stall_no_credit,
        snap.stall_fenced,
        snap.stall_escape_hold,
        snap.stall_route_wait,
        snap.stall_va_wait
    );
    println!(
        "gating          {:>8} sleeps, {} wakes, {} gated at sample",
        snap.gate_sleeps, snap.gate_wakes, snap.gated_routers
    );
    println!(
        "faults          {:>8} transitions, {} flits dropped",
        snap.fault_events, snap.fault_drops
    );
    println!("mean worklist   {:>10.1} active routers/cycle", snap.mean_worklist_occupancy());
    let occupied: u64 = snap.occupancy_hist[1..].iter().sum();
    println!(
        "occupancy hist  {:>8} empty VCs, {} occupied (deepest bin {})",
        snap.occupancy_hist[0],
        occupied,
        (0..OCC_BINS).rev().find(|&b| snap.occupancy_hist[b] > 0).unwrap_or(0)
    );

    // --- 2. the congestion heatmap ----------------------------------------
    let heatmap = sim.telemetry_heatmap().expect("telemetry installed above");
    println!("\n--- congestion heatmap (flits/router/cycle; peak {:.3}) ---", heatmap.peak());
    let peak = heatmap.peak().max(1e-12);
    for y in 0..heatmap.height {
        let row: String = (0..heatmap.width)
            .map(|x| {
                let u = heatmap.utilization[y * heatmap.width + x] / peak;
                // Five-shade ASCII ramp, hottest router = '#'.
                b" .:*#"[((u * 4.0).round() as usize).min(4)] as char
            })
            .collect();
        println!("    {row}");
    }
    let json_path = out_dir.join("heatmap.json");
    let csv_path = out_dir.join("heatmap.csv");
    std::fs::write(&json_path, heatmap.to_json()).expect("write heatmap JSON");
    std::fs::write(&csv_path, heatmap.to_csv()).expect("write heatmap CSV");
    println!("\nwrote {} and {}", json_path.display(), csv_path.display());

    // --- 3. the Perfetto trace --------------------------------------------
    let trace_path = out_dir.join("trace.json");
    let telemetry = sim.telemetry().expect("telemetry installed above");
    telemetry.events().write_perfetto(&trace_path).expect("write Perfetto trace");
    println!(
        "wrote {} ({} events, {} evicted) — open at ui.perfetto.dev",
        trace_path.display(),
        telemetry.events().len(),
        telemetry.events().dropped_events()
    );

    // --- 4. the engine profile --------------------------------------------
    let profile = telemetry.profile();
    println!("\n--- engine profile ({} steps) ---", profile.steps);
    let total = profile.total_ns().max(1);
    println!(
        "pre {:>3}%  pipeline {:>3}%  post {:>3}%  skip {:>3}%",
        100 * profile.pre_ns / total,
        100 * profile.pipeline_ns / total,
        100 * profile.post_ns / total,
        100 * profile.skip_ns / total
    );

    // --- 5. the zero-perturbation proof -----------------------------------
    let window = sim.take_window();
    let mut plain = build_sim();
    plain.run_cycles(4_000);
    plain.set_island_frequency(2, Hertz::from_mhz(500.0));
    plain.run_cycles(4_000);
    let plain_window = plain.take_window();
    assert_eq!(window, plain_window, "telemetry must not perturb the simulation");
    println!("\nzero-perturbation check: instrumented window == plain window ✔");
}
