//! Closed-loop co-simulation of network, DVFS policy and power model.
//!
//! One [`run_operating_point`] call reproduces what the paper does for a
//! single point of any of its figures: run the cycle-accurate simulator under
//! a fixed workload while the chosen DVFS policy periodically observes the
//! network and re-tunes the clock frequency (and therefore the supply
//! voltage), then report the average latency, delay, power and frequency over
//! the measurement phase.

use crate::policy::{ControlMeasurement, PolicyKind};
use noc_power::{model::EnergyBreakdown, DegradedModeReport, FdsoiTech, RouterPowerModel};
use noc_sim::{Hertz, NetworkConfig, NocSimulation, TrafficSpec};
use serde::{Deserialize, Serialize};

/// Timing parameters of the closed control loop.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClosedLoopConfig {
    /// Control update period expressed in cycles *at the maximum frequency*
    /// (the paper uses 10 000). The wall-clock period is therefore constant
    /// regardless of the current frequency.
    pub control_period_cycles: u64,
    /// Number of control intervals used to warm the network and the
    /// controller up before measuring.
    pub warmup_intervals: usize,
    /// Number of control intervals over which latency, delay and power are
    /// averaged.
    pub measure_intervals: usize,
    /// After the fixed warm-up, keep running (still discarding measurements)
    /// until the controller's frequency settles — at most this many extra
    /// intervals. Feed-forward policies (No-DVFS, RMSD) settle immediately;
    /// the DMSD PI loop needs tens of intervals to converge on its delay
    /// target, and the paper reports steady-state behaviour.
    pub max_settle_intervals: usize,
    /// Relative frequency change below which the controller is considered
    /// settled (checked over three consecutive intervals).
    pub settle_tolerance: f64,
}

impl ClosedLoopConfig {
    /// The timing used for the paper-fidelity experiments: 10 000-cycle
    /// control period, 10 warm-up intervals, 30 measured intervals.
    pub fn paper() -> Self {
        ClosedLoopConfig {
            control_period_cycles: 10_000,
            warmup_intervals: 10,
            measure_intervals: 30,
            max_settle_intervals: 100,
            settle_tolerance: 0.004,
        }
    }

    /// A reduced-budget configuration for unit tests and smoke benches.
    pub fn quick() -> Self {
        ClosedLoopConfig {
            control_period_cycles: 1_500,
            warmup_intervals: 4,
            measure_intervals: 6,
            max_settle_intervals: 40,
            settle_tolerance: 0.006,
        }
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics if any field is zero.
    pub fn validate(&self) {
        assert!(self.control_period_cycles > 0, "control period must be positive");
        assert!(self.warmup_intervals > 0, "need at least one warm-up interval");
        assert!(self.measure_intervals > 0, "need at least one measured interval");
        assert!(
            self.settle_tolerance.is_finite() && self.settle_tolerance >= 0.0,
            "settle tolerance must be non-negative"
        );
    }
}

impl Default for ClosedLoopConfig {
    fn default() -> Self {
        ClosedLoopConfig::paper()
    }
}

/// The measured behaviour of one workload / policy combination — one point of
/// a paper figure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OperatingPointResult {
    /// Policy name (`"No-DVFS"`, `"RMSD"`, `"DMSD"`).
    pub policy: String,
    /// Offered load in flits per node-clock cycle per node.
    pub offered_load: f64,
    /// Injection rate actually measured over the run (flits per node cycle
    /// per node).
    pub measured_rate: f64,
    /// Average packet latency in NoC clock cycles.
    pub avg_latency_cycles: f64,
    /// Average end-to-end packet delay in nanoseconds of wall-clock time.
    pub avg_delay_ns: f64,
    /// Largest packet delay observed, nanoseconds.
    pub max_delay_ns: f64,
    /// Average total NoC power in milliwatts over the measurement phase.
    pub power_mw: f64,
    /// Dynamic component of the power, milliwatts.
    pub dynamic_power_mw: f64,
    /// Static (leakage) component of the power, milliwatts.
    pub static_power_mw: f64,
    /// Time-weighted average NoC clock frequency, gigahertz.
    pub avg_frequency_ghz: f64,
    /// Time-weighted average supply voltage, volts.
    pub avg_vdd: f64,
    /// Accepted throughput in flits per NoC cycle per node.
    pub throughput: f64,
    /// Packets delivered during the measurement phase.
    pub packets_delivered: u64,
    /// Wall-clock duration of the measurement phase, nanoseconds.
    pub measurement_wall_ns: f64,
    /// Flits dropped by fault-killed components during the measurement
    /// phase. Always zero unless the configuration injects faults
    /// ([`NetworkConfig::faults`]).
    pub flits_dropped: u64,
    /// Fraction of source–destination pairs still connected at the end of
    /// the run (1.0 on a fault-free network; see
    /// [`NocSimulation::reachable_pairs_fraction`]).
    pub reachability: f64,
}

impl OperatingPointResult {
    /// Energy per delivered flit in picojoules (power × time / flits), a
    /// convenient scalar for ablation tables.
    pub fn energy_per_flit_pj(&self) -> f64 {
        if self.packets_delivered == 0 {
            return 0.0;
        }
        let energy_pj = self.power_mw * self.measurement_wall_ns; // mW·ns = pJ
        let flits = self.throughput.max(f64::MIN_POSITIVE); // flits/cycle/node
        let _ = flits;
        energy_pj / (self.packets_delivered as f64)
    }
}

/// Summarises a faulted operating point against its fault-free reference
/// (same workload, load and seed, faults disabled) as a
/// [`DegradedModeReport`]: reachability of the surviving network, delivered
/// and dropped counts, latency inflation from detours, and the energy excess
/// attributable to rerouting.
pub fn degraded_mode_report(
    faulted: &OperatingPointResult,
    fault_free: &OperatingPointResult,
) -> DegradedModeReport {
    DegradedModeReport {
        reachability: faulted.reachability,
        packets_delivered: faulted.packets_delivered,
        flits_dropped: faulted.flits_dropped,
        avg_latency_cycles: faulted.avg_latency_cycles,
        fault_free_latency_cycles: fault_free.avg_latency_cycles,
        energy_per_flit_pj: faulted.energy_per_flit_pj(),
        fault_free_energy_per_flit_pj: fault_free.energy_per_flit_pj(),
    }
}

/// Runs one closed-loop operating point.
///
/// * `net` — micro-architectural configuration of the NoC;
/// * `traffic` — the workload (synthetic pattern or application matrix);
/// * `policy` — which DVFS policy to run;
/// * `loop_cfg` — control-loop timing (see [`ClosedLoopConfig`]);
/// * `seed` — RNG seed making the run reproducible.
///
/// This is the single-clock (global DVFS) loop of the paper; for per-island
/// control over a partitioned network see
/// [`run_operating_point_islands`](crate::run_operating_point_islands).
///
/// ```
/// use noc_dvfs::{run_operating_point, ClosedLoopConfig, PolicyKind, RmsdConfig};
/// use noc_sim::{NetworkConfig, SyntheticTraffic, TrafficPattern};
///
/// let net = NetworkConfig::builder()
///     .mesh(4, 4)
///     .virtual_channels(2)
///     .buffer_depth(4)
///     .packet_length(5)
///     .build()
///     .unwrap();
/// let traffic = SyntheticTraffic::new(TrafficPattern::Uniform, 0.08, 5);
/// let point = run_operating_point(
///     &net,
///     Box::new(traffic),
///     PolicyKind::Rmsd(RmsdConfig::with_lambda_max(0.35)),
///     &ClosedLoopConfig::quick(),
///     1,
/// );
/// // Light load: RMSD slows the clock below the 1 GHz maximum.
/// assert!(point.avg_frequency_ghz < 1.0);
/// assert!(point.packets_delivered > 0);
/// ```
///
/// # Panics
///
/// Panics if `loop_cfg` is invalid (zero intervals or period).
pub fn run_operating_point(
    net: &NetworkConfig,
    traffic: Box<dyn TrafficSpec>,
    policy: PolicyKind,
    loop_cfg: &ClosedLoopConfig,
    seed: u64,
) -> OperatingPointResult {
    loop_cfg.validate();
    let offered_load = traffic.offered_load();
    let tech = FdsoiTech::new();
    let power_model = RouterPowerModel::new();
    let mut sim = NocSimulation::new(net.clone(), traffic, seed);
    let mut controller = policy.build(net);

    // The control period is fixed in wall-clock time: `control_period_cycles`
    // cycles of the fastest clock.
    let period_ps = loop_cfg.control_period_cycles as f64 * net.max_frequency().period().as_ps();

    let mut frequency = net.max_frequency();
    sim.set_noc_frequency(frequency);

    // Warm-up: run the loop but discard the measurements. After the fixed
    // warm-up intervals, keep going (up to `max_settle_intervals`) until the
    // controller's output frequency stabilises, so that the measurement phase
    // captures steady-state behaviour (what the paper reports).
    let mut stable_checks = 0;
    for interval in 0..(loop_cfg.warmup_intervals + loop_cfg.max_settle_intervals) {
        if interval >= loop_cfg.warmup_intervals && stable_checks >= 3 {
            break;
        }
        let cycles = interval_cycles(period_ps, frequency);
        sim.run_cycles(cycles);
        let window = sim.take_window();
        // Warm-up windows are discarded: reset the activity counters in
        // place instead of materialising a per-router vector only to drop
        // it. Together with the simulator's sparse stepping (quiescent
        // routers and idle channels cost nothing per cycle) and the power
        // model's idle-router fast path, this keeps the controller's
        // between-window overhead proportional to traffic, not network size.
        sim.reset_activity();
        let measurement = ControlMeasurement {
            window,
            node_count: sim.node_count(),
            current_frequency: frequency,
        };
        let next = controller.next_frequency(&measurement);
        let relative_change = (next.as_hz() - frequency.as_hz()).abs() / frequency.as_hz();
        if relative_change <= loop_cfg.settle_tolerance {
            stable_checks += 1;
        } else {
            stable_checks = 0;
        }
        frequency = next;
        sim.set_noc_frequency(frequency);
    }

    // Measurement phase.
    sim.reset_stats();
    let mut energy = EnergyBreakdown::default();
    let mut freq_time_product = 0.0; // Hz · ps
    let mut vdd_time_product = 0.0; // V · ps
    let mut total_wall_ps = 0.0;
    let mut flits_generated = 0u64;
    let mut flits_ejected = 0u64;
    let mut flits_dropped = 0u64;
    let mut node_cycles = 0u64;
    let mut noc_cycles = 0u64;

    for _ in 0..loop_cfg.measure_intervals {
        let cycles = interval_cycles(period_ps, frequency);
        sim.run_cycles(cycles);
        let window = sim.take_window();
        let activity = sim.take_activity();
        let vdd = tech.vdd_for_frequency(frequency);
        energy += power_model.network_energy(&activity, frequency, vdd, window.wall_time_ps);

        freq_time_product += frequency.as_hz() * window.wall_time_ps;
        vdd_time_product += vdd.as_volts() * window.wall_time_ps;
        total_wall_ps += window.wall_time_ps;
        flits_generated += window.flits_generated;
        flits_ejected += window.flits_ejected;
        flits_dropped += window.flits_dropped;
        node_cycles += window.node_cycles;
        noc_cycles += window.noc_cycles;

        let measurement = ControlMeasurement {
            window,
            node_count: sim.node_count(),
            current_frequency: frequency,
        };
        frequency = controller.next_frequency(&measurement);
        sim.set_noc_frequency(frequency);
    }

    let stats = sim.stats();
    let node_count = sim.node_count() as f64;
    let measured_rate = if node_cycles > 0 {
        flits_generated as f64 / (node_cycles as f64 * node_count)
    } else {
        0.0
    };
    let throughput = if noc_cycles > 0 {
        flits_ejected as f64 / (noc_cycles as f64 * node_count)
    } else {
        0.0
    };
    let total_wall_ns = total_wall_ps / 1.0e3;

    OperatingPointResult {
        policy: policy.name().to_string(),
        offered_load,
        measured_rate,
        avg_latency_cycles: stats.avg_latency_cycles().unwrap_or(0.0),
        avg_delay_ns: stats.avg_delay_ns().unwrap_or(0.0),
        max_delay_ns: stats.max_delay_ps / 1.0e3,
        power_mw: if total_wall_ns > 0.0 { energy.total_pj() / total_wall_ns } else { 0.0 },
        dynamic_power_mw: if total_wall_ns > 0.0 { energy.dynamic_pj / total_wall_ns } else { 0.0 },
        static_power_mw: if total_wall_ns > 0.0 { energy.static_pj / total_wall_ns } else { 0.0 },
        avg_frequency_ghz: if total_wall_ps > 0.0 {
            freq_time_product / total_wall_ps / 1.0e9
        } else {
            0.0
        },
        avg_vdd: if total_wall_ps > 0.0 { vdd_time_product / total_wall_ps } else { 0.0 },
        throughput,
        packets_delivered: stats.packets,
        measurement_wall_ns: total_wall_ns,
        flits_dropped,
        reachability: sim.reachable_pairs_fraction(),
    }
}

/// Number of NoC cycles that fit in one control period at frequency `f`
/// (shared with the per-island loop in [`crate::island`], where `f` is the
/// base — fastest-island — clock).
pub(crate) fn interval_cycles(period_ps: f64, f: Hertz) -> u64 {
    ((period_ps / f.period().as_ps()).round() as u64).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dmsd::DmsdConfig;
    use crate::rmsd::RmsdConfig;
    use noc_sim::{SyntheticTraffic, TrafficPattern};

    fn small_net() -> NetworkConfig {
        NetworkConfig::builder()
            .mesh(4, 4)
            .virtual_channels(2)
            .buffer_depth(4)
            .packet_length(5)
            .build()
            .unwrap()
    }

    fn traffic(rate: f64) -> Box<dyn TrafficSpec> {
        Box::new(SyntheticTraffic::new(TrafficPattern::Uniform, rate, 5))
    }

    #[test]
    fn interval_cycle_count_scales_with_frequency() {
        let period_ps = 10_000.0 * 1_000.0; // 10 000 cycles at 1 GHz
        assert_eq!(interval_cycles(period_ps, Hertz::from_ghz(1.0)), 10_000);
        assert_eq!(interval_cycles(period_ps, Hertz::from_mhz(500.0)), 5_000);
        assert_eq!(interval_cycles(period_ps, Hertz::from_mhz(333.333)), 3_333);
    }

    #[test]
    fn no_dvfs_point_runs_at_full_speed() {
        let net = small_net();
        let p = run_operating_point(
            &net,
            traffic(0.1),
            PolicyKind::NoDvfs,
            &ClosedLoopConfig::quick(),
            1,
        );
        assert_eq!(p.policy, "No-DVFS");
        assert!((p.avg_frequency_ghz - 1.0).abs() < 1e-9);
        assert!((p.avg_vdd - 0.9).abs() < 1e-9);
        assert!(p.power_mw > 0.0);
        assert!(p.packets_delivered > 0);
        assert!((p.measured_rate - 0.1).abs() < 0.05);
    }

    #[test]
    fn rmsd_slows_down_at_light_load_and_saves_power() {
        let net = small_net();
        let loop_cfg = ClosedLoopConfig::quick();
        let baseline =
            run_operating_point(&net, traffic(0.08), PolicyKind::NoDvfs, &loop_cfg, 2);
        let rmsd = run_operating_point(
            &net,
            traffic(0.08),
            PolicyKind::Rmsd(RmsdConfig::with_lambda_max(0.35)),
            &loop_cfg,
            2,
        );
        assert!(rmsd.avg_frequency_ghz < 0.7, "RMSD must slow the clock at light load");
        assert!(rmsd.power_mw < baseline.power_mw, "slower clock must save power");
        assert!(
            rmsd.avg_delay_ns > baseline.avg_delay_ns,
            "the power saving is paid in delay"
        );
    }

    #[test]
    fn dmsd_runs_and_stays_within_the_frequency_range() {
        let net = small_net();
        let p = run_operating_point(
            &net,
            traffic(0.1),
            PolicyKind::Dmsd(DmsdConfig::with_target_ns(120.0)),
            &ClosedLoopConfig::quick(),
            3,
        );
        assert_eq!(p.policy, "DMSD");
        assert!(p.avg_frequency_ghz >= 0.332 && p.avg_frequency_ghz <= 1.001);
        assert!(p.avg_vdd >= 0.55 && p.avg_vdd <= 0.91);
    }

    #[test]
    fn results_are_reproducible_for_a_fixed_seed() {
        let net = small_net();
        let cfg = ClosedLoopConfig::quick();
        let a = run_operating_point(&net, traffic(0.12), PolicyKind::NoDvfs, &cfg, 7);
        let b = run_operating_point(&net, traffic(0.12), PolicyKind::NoDvfs, &cfg, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn power_breakdown_sums_to_total() {
        let net = small_net();
        let p = run_operating_point(
            &net,
            traffic(0.15),
            PolicyKind::NoDvfs,
            &ClosedLoopConfig::quick(),
            5,
        );
        assert!((p.dynamic_power_mw + p.static_power_mw - p.power_mw).abs() < 1e-9);
        assert!(p.dynamic_power_mw > p.static_power_mw, "dynamic power dominates at 1 GHz");
    }

    #[test]
    #[should_panic(expected = "warm-up")]
    fn invalid_loop_config_is_rejected() {
        let bad = ClosedLoopConfig { warmup_intervals: 0, ..ClosedLoopConfig::quick() };
        let net = small_net();
        let _ = run_operating_point(&net, traffic(0.1), PolicyKind::NoDvfs, &bad, 1);
    }

    #[test]
    fn dmsd_settles_close_to_its_target_delay() {
        // With the adaptive warm-up the PI loop must have converged before
        // measurement starts, so the measured delay is close to the target
        // whenever the target is reachable inside the frequency range.
        let net = small_net();
        let loop_cfg = ClosedLoopConfig {
            control_period_cycles: 1_500,
            warmup_intervals: 4,
            measure_intervals: 8,
            max_settle_intervals: 120,
            settle_tolerance: 0.01,
        };
        // On this small mesh with 5-flit packets the delay at the minimum
        // frequency is only ~70-100 ns, so a reachable target (80 ns) is used:
        // the loop must settle near it rather than rail at either end.
        let target = 80.0;
        let p = run_operating_point(
            &net,
            traffic(0.12),
            PolicyKind::Dmsd(DmsdConfig::with_target_ns(target)),
            &loop_cfg,
            11,
        );
        assert!(
            (p.avg_delay_ns - target).abs() < 0.35 * target,
            "DMSD steady-state delay {} ns should be near the {target} ns target",
            p.avg_delay_ns
        );
        assert!(p.avg_frequency_ghz < 0.95, "tracking the target must not require full speed");
    }
}
