//! Sensitivity analysis: one axis of Fig. 8.
//!
//! ```text
//! cargo run --release --example sensitivity [vc|buffers|packet|mesh]
//! ```
//!
//! Re-runs the uniform-traffic policy comparison while varying a single
//! micro-architectural parameter (number of virtual channels by default) and
//! prints, for each value, the delay and power of the three policies at half
//! of that configuration's `λ_max` — a compact view of the paper's conclusion
//! that the DMSD-vs-RMSD trade-off is insensitive to the router parameters.

use noc_dvfs_repro::dvfs::experiments::{fig8_sensitivity, ExperimentQuality, SensitivityAxis};
use std::env;

fn main() {
    let axis_name = env::args().nth(1).unwrap_or_else(|| "vc".to_string());
    let axis = match axis_name.as_str() {
        "vc" => SensitivityAxis::VirtualChannels,
        "buffers" => SensitivityAxis::BufferDepth,
        "packet" => SensitivityAxis::PacketSize,
        "mesh" => SensitivityAxis::MeshSize,
        other => {
            eprintln!("unknown axis '{other}'; use vc, buffers, packet or mesh");
            std::process::exit(1);
        }
    };

    let quality = ExperimentQuality::quick();
    println!("Fig. 8 sensitivity axis: {axis:?} (uniform traffic, paper baseline otherwise)");
    println!(
        "{:>12} {:>10} {:>14} {:>14} {:>14}",
        "config", "policy", "mid-load rate", "delay (ns)", "power (mW)"
    );
    for comparison in fig8_sensitivity(&quality, Some(&[axis])) {
        let mid = comparison.lambda_max * 0.5;
        for curve in &comparison.curves {
            let point = curve.nearest(mid);
            println!(
                "{:>12} {:>10} {:>14.3} {:>14.1} {:>14.1}",
                comparison.label,
                curve.policy,
                point.load,
                point.result.avg_delay_ns,
                point.result.power_mw
            );
        }
    }
    println!();
    println!(
        "Across every configuration the ordering is the same as in the paper: \
         RMSD burns the least power but pays the largest delay; DMSD recovers most of the \
         delay for a bounded extra power."
    );
}
