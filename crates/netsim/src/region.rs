//! Voltage-frequency island (VFI) regions.
//!
//! Real SoCs do not scale one global NoC clock: the fabric is partitioned
//! into **voltage-frequency islands**, each with its own clock domain and
//! DVFS controller, with inter-island links crossing domains through
//! synchronizing buffers. This module provides the partition itself:
//!
//! * [`RegionLayout`] — the named partitions (whole network, per row, per
//!   column, quadrants), cheap `Copy` values usable as a scenario axis;
//! * [`RegionScheme`] — a layout *or* an explicit custom node→island map,
//!   stored inside [`NetworkConfig`](crate::NetworkConfig);
//! * [`RegionMap`] — the resolved partition: a dense `node → island id`
//!   table plus per-island node counts, built once per simulation.
//!
//! The degenerate single-island partition ([`RegionLayout::Whole`], the
//! default) makes the island machinery a structural no-op: every golden
//! window sequence is bit-identical to the pre-VFI simulator. That contract
//! is pinned by `tests/island_invariants.rs`.
//!
//! ```
//! use noc_sim::{RegionLayout, RegionMap};
//!
//! let map = RegionLayout::Quadrants.build(4, 4);
//! assert_eq!(map.island_count(), 4);
//! // Node 0 (top-left corner) and node 15 (bottom-right) sit in different
//! // quadrants.
//! assert_ne!(map.island_of(0), map.island_of(15));
//! assert_eq!(map.node_counts().iter().sum::<usize>(), 16);
//! ```

use crate::error::ConfigError;
use serde::{Deserialize, Serialize};

/// The named voltage-frequency island partitions of a `width × height` grid.
///
/// These are the layouts worth crossing with the scenario grid (topology ×
/// pattern × injection); arbitrary partitions go through
/// [`RegionScheme::Custom`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum RegionLayout {
    /// One island spanning the whole network — the pre-VFI global-DVFS
    /// behaviour, and the default.
    #[default]
    Whole,
    /// One island per mesh row (`height` islands).
    PerRow,
    /// One island per mesh column (`width` islands).
    PerColumn,
    /// Four islands splitting the grid at `width/2` / `height/2`.
    ///
    /// On odd dimensions the extra row/column joins the lower-indexed half,
    /// so every quadrant is non-empty for any grid of at least 2×2.
    Quadrants,
}

impl RegionLayout {
    /// Every named layout, in scenario-grid order.
    pub const ALL: [RegionLayout; 4] =
        [RegionLayout::Whole, RegionLayout::PerRow, RegionLayout::PerColumn, RegionLayout::Quadrants];

    /// A short lowercase name for labels (e.g. `"quadrants"`).
    pub fn name(&self) -> &'static str {
        match self {
            RegionLayout::Whole => "whole",
            RegionLayout::PerRow => "rows",
            RegionLayout::PerColumn => "columns",
            RegionLayout::Quadrants => "quadrants",
        }
    }

    /// Number of islands this layout produces on a `width × height` grid.
    pub fn island_count(&self, width: usize, height: usize) -> usize {
        match self {
            RegionLayout::Whole => 1,
            RegionLayout::PerRow => height,
            RegionLayout::PerColumn => width,
            RegionLayout::Quadrants => 4,
        }
    }

    /// Builds the resolved node→island map for a `width × height` grid.
    ///
    /// Named layouts are total on every grid the
    /// [`NetworkConfig`](crate::NetworkConfig) builder accepts (≥ 2×2), so
    /// this cannot fail.
    pub fn build(&self, width: usize, height: usize) -> RegionMap {
        let island_of = (0..width * height)
            .map(|node| {
                let (x, y) = (node % width, node / width);
                match self {
                    RegionLayout::Whole => 0,
                    RegionLayout::PerRow => y as u32,
                    RegionLayout::PerColumn => x as u32,
                    RegionLayout::Quadrants => {
                        let right = (x >= width.div_ceil(2)) as u32;
                        let bottom = (y >= height.div_ceil(2)) as u32;
                        bottom * 2 + right
                    }
                }
            })
            .collect();
        RegionMap::from_assignments(island_of, self.island_count(width, height))
    }
}

/// How a network is partitioned into voltage-frequency islands: a named
/// [`RegionLayout`] or an explicit per-node map.
///
/// Stored inside [`NetworkConfig`](crate::NetworkConfig) (builder method
/// [`regions`](crate::NetworkConfigBuilder::regions)) and resolved into a
/// [`RegionMap`] when the simulation is built.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RegionScheme {
    /// A named layout (whole / rows / columns / quadrants).
    Layout(RegionLayout),
    /// An explicit `node → island id` assignment in node order
    /// (row-major: `node = y * width + x`).
    ///
    /// Island ids must be contiguous from zero — every id in
    /// `0..island_count` must own at least one node — and the vector length
    /// must equal the node count. Validated by
    /// [`build`](RegionScheme::build), and therefore by
    /// [`NetworkConfigBuilder::build`](crate::NetworkConfigBuilder::build).
    Custom(Vec<u32>),
}

impl RegionScheme {
    /// A short lowercase name for labels.
    pub fn name(&self) -> &'static str {
        match self {
            RegionScheme::Layout(layout) => layout.name(),
            RegionScheme::Custom(_) => "custom",
        }
    }

    /// Resolves the scheme on a `width × height` grid.
    ///
    /// # Errors
    ///
    /// For [`Custom`](RegionScheme::Custom) maps: [`ConfigError::RegionMapWrongLength`]
    /// when the assignment vector does not cover exactly `width × height`
    /// nodes, [`ConfigError::RegionIdsNotContiguous`] when some id below the
    /// maximum assigned id owns no node. Named layouts never fail.
    pub fn build(&self, width: usize, height: usize) -> Result<RegionMap, ConfigError> {
        match self {
            RegionScheme::Layout(layout) => Ok(layout.build(width, height)),
            RegionScheme::Custom(island_of) => {
                RegionMap::custom(island_of.clone(), width * height)
            }
        }
    }
}

impl Default for RegionScheme {
    fn default() -> Self {
        RegionScheme::Layout(RegionLayout::Whole)
    }
}

impl From<RegionLayout> for RegionScheme {
    fn from(layout: RegionLayout) -> Self {
        RegionScheme::Layout(layout)
    }
}

/// A resolved partition of the network's nodes into voltage-frequency
/// islands: the dense `node → island` table the simulator indexes on its hot
/// path, plus per-island membership counts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegionMap {
    island_of: Vec<u32>,
    node_counts: Vec<usize>,
}

impl RegionMap {
    /// The single-island map over `nodes` nodes (the pre-VFI behaviour).
    pub fn whole(nodes: usize) -> Self {
        RegionMap::from_assignments(vec![0; nodes], 1)
    }

    /// Builds a map from an explicit assignment, validating it.
    ///
    /// # Errors
    ///
    /// [`ConfigError::RegionMapWrongLength`] when `island_of.len() != nodes`;
    /// [`ConfigError::RegionIdsNotContiguous`] when the used ids are not
    /// exactly `0..island_count`.
    pub fn custom(island_of: Vec<u32>, nodes: usize) -> Result<Self, ConfigError> {
        if island_of.len() != nodes {
            return Err(ConfigError::RegionMapWrongLength {
                expected: nodes,
                got: island_of.len(),
            });
        }
        let island_count = island_of.iter().max().map_or(0, |&m| m as usize + 1);
        if island_count > nodes {
            // More islands than nodes ⇒ some island is necessarily empty, so
            // the map is invalid no matter what. Reject before sizing the
            // per-island counters by the (attacker-controllable) largest id:
            // by pigeonhole at least one id in 0..nodes owns no node.
            let mut node_counts = vec![0usize; nodes];
            for &island in &island_of {
                if let Some(count) = node_counts.get_mut(island as usize) {
                    *count += 1;
                }
            }
            let missing = node_counts.iter().position(|&c| c == 0).unwrap_or(nodes) as u32;
            return Err(ConfigError::RegionIdsNotContiguous { island_count, missing });
        }
        let mut node_counts = vec![0usize; island_count];
        for &island in &island_of {
            node_counts[island as usize] += 1;
        }
        if let Some(missing) = node_counts.iter().position(|&c| c == 0) {
            return Err(ConfigError::RegionIdsNotContiguous {
                island_count,
                missing: missing as u32,
            });
        }
        Ok(RegionMap { island_of, node_counts })
    }

    /// Internal constructor for assignments known to be contiguous.
    fn from_assignments(island_of: Vec<u32>, island_count: usize) -> Self {
        let mut node_counts = vec![0usize; island_count];
        for &island in &island_of {
            node_counts[island as usize] += 1;
        }
        debug_assert!(node_counts.iter().all(|&c| c > 0), "layouts produce no empty island");
        RegionMap { island_of, node_counts }
    }

    /// Number of islands in the partition (at least 1 for any non-empty map).
    pub fn island_count(&self) -> usize {
        self.node_counts.len()
    }

    /// Number of nodes covered by the map.
    pub fn node_count(&self) -> usize {
        self.island_of.len()
    }

    /// The island owning `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[inline]
    pub fn island_of(&self, node: usize) -> u32 {
        self.island_of[node]
    }

    /// The full `node → island` table, in node order.
    pub fn assignments(&self) -> &[u32] {
        &self.island_of
    }

    /// Per-island node counts, indexed by island id.
    pub fn node_counts(&self) -> &[usize] {
        &self.node_counts
    }

    /// The nodes of one island, in ascending node order.
    pub fn nodes_of(&self, island: u32) -> Vec<usize> {
        self.island_of
            .iter()
            .enumerate()
            .filter_map(|(node, &i)| (i == island).then_some(node))
            .collect()
    }

    /// Per-island membership bitmasks: for each island, one `u64` word per
    /// 64 nodes with bit `n & 63` of word `n >> 6` set iff node `n` belongs
    /// to the island. This is the shape the sparse stepping engine consumes
    /// to gate its worklists on the islands that fire in a given base tick.
    pub fn word_masks(&self) -> Vec<Vec<u64>> {
        let words = self.island_of.len().div_ceil(64);
        let mut masks = vec![vec![0u64; words]; self.island_count()];
        for (node, &island) in self.island_of.iter().enumerate() {
            masks[island as usize][node >> 6] |= 1u64 << (node & 63);
        }
        masks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn whole_layout_is_one_island() {
        let map = RegionLayout::Whole.build(5, 5);
        assert_eq!(map.island_count(), 1);
        assert!(map.assignments().iter().all(|&i| i == 0));
        assert_eq!(map.node_counts(), &[25]);
    }

    #[test]
    fn per_row_and_per_column_split_along_the_right_axis() {
        let rows = RegionLayout::PerRow.build(4, 3);
        assert_eq!(rows.island_count(), 3);
        // Nodes 0..4 are row 0.
        assert!((0..4).all(|n| rows.island_of(n) == 0));
        assert!((8..12).all(|n| rows.island_of(n) == 2));
        let cols = RegionLayout::PerColumn.build(4, 3);
        assert_eq!(cols.island_count(), 4);
        assert_eq!(cols.island_of(0), 0);
        assert_eq!(cols.island_of(5), 1);
        assert_eq!(cols.island_of(11), 3);
    }

    #[test]
    fn quadrants_are_non_empty_on_odd_grids() {
        for (w, h) in [(2, 2), (5, 5), (5, 4), (3, 7)] {
            let map = RegionLayout::Quadrants.build(w, h);
            assert_eq!(map.island_count(), 4);
            assert!(map.node_counts().iter().all(|&c| c > 0), "{w}x{h} has an empty quadrant");
            assert_eq!(map.node_counts().iter().sum::<usize>(), w * h);
        }
        // On 5x5 the extra row/column joins the low-indexed half: the
        // top-left quadrant is 3x3.
        let map = RegionLayout::Quadrants.build(5, 5);
        assert_eq!(map.node_counts()[0], 9);
    }

    #[test]
    fn custom_maps_are_validated() {
        assert!(RegionMap::custom(vec![0, 1, 0, 1], 4).is_ok());
        assert_eq!(
            RegionMap::custom(vec![0, 1, 0], 4),
            Err(ConfigError::RegionMapWrongLength { expected: 4, got: 3 })
        );
        assert_eq!(
            RegionMap::custom(vec![0, 2, 0, 2], 4),
            Err(ConfigError::RegionIdsNotContiguous { island_count: 3, missing: 1 })
        );
    }

    #[test]
    fn huge_island_ids_are_rejected_without_allocating_for_them() {
        // An id that could never be contiguous must come back as a clean
        // error (and must not size any allocation by the id value).
        assert_eq!(
            RegionMap::custom(vec![0, 0, 0, u32::MAX], 4),
            Err(ConfigError::RegionIdsNotContiguous {
                island_count: u32::MAX as usize + 1,
                missing: 1,
            })
        );
        // All ids out of range: the smallest missing id is 0.
        assert_eq!(
            RegionMap::custom(vec![9, 9, 9, 9], 4),
            Err(ConfigError::RegionIdsNotContiguous { island_count: 10, missing: 0 })
        );
    }

    #[test]
    fn nodes_of_inverts_island_of() {
        let map = RegionLayout::Quadrants.build(4, 4);
        let mut seen = 0;
        for island in 0..map.island_count() as u32 {
            let nodes = map.nodes_of(island);
            assert_eq!(nodes.len(), map.node_counts()[island as usize]);
            assert!(nodes.iter().all(|&n| map.island_of(n) == island));
            seen += nodes.len();
        }
        assert_eq!(seen, 16);
    }

    #[test]
    fn word_masks_partition_the_node_set() {
        let map = RegionLayout::PerRow.build(9, 9); // 81 nodes: two words
        let masks = map.word_masks();
        assert_eq!(masks.len(), 9);
        let mut union = [0u64; 2];
        for mask in &masks {
            assert_eq!(mask.len(), 2);
            for (w, &m) in mask.iter().enumerate() {
                assert_eq!(union[w] & m, 0, "islands must not overlap");
                union[w] |= m;
            }
        }
        assert_eq!(union[0], u64::MAX);
        assert_eq!(union[1], (1u64 << (81 - 64)) - 1);
    }

    #[test]
    fn scheme_round_trips_layouts_and_customs() {
        let scheme: RegionScheme = RegionLayout::Quadrants.into();
        assert_eq!(scheme.name(), "quadrants");
        assert_eq!(scheme.build(4, 4).unwrap(), RegionLayout::Quadrants.build(4, 4));
        let custom = RegionScheme::Custom(vec![1, 0, 1, 0]);
        assert_eq!(custom.name(), "custom");
        assert_eq!(custom.build(2, 2).unwrap().island_count(), 2);
        assert!(custom.build(3, 2).is_err());
        assert_eq!(RegionScheme::default(), RegionScheme::Layout(RegionLayout::Whole));
    }

    #[test]
    fn layout_island_counts_match_their_maps() {
        for layout in RegionLayout::ALL {
            for (w, h) in [(2, 2), (4, 4), (5, 3)] {
                assert_eq!(
                    layout.island_count(w, h),
                    layout.build(w, h).island_count(),
                    "{} on {w}x{h}",
                    layout.name()
                );
            }
        }
    }
}
